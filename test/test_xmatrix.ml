(* Tests for the crossing-matrix cache and the incremental evaluator:
   unit checks of Xmatrix against the raw geometry, property-style
   parity over Benchgen random designs (cached and uncached reads must
   be bit-identical through net_path_losses / worst_violation / the
   final LR and ILP choices, sequential and jobs=4), and the
   incremental-vs-full recompute equivalence of Selection.Eval. *)

open Operon_geom
open Operon_optical
open Operon_util
open Operon
open Operon_benchgen

let p = Point.make

let params = Params.default

let hnet_of_centers ~id ?(bits = 8) centers =
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 1; source_count = (if i = 0 then 1 else 0) })
      centers
  in
  Hypernet.make ~id ~group:0 ~bits ~pins

let simple_cands ?(bits = 8) id a b =
  let centers = [| a; b |] in
  let hnet = hnet_of_centers ~id ~bits centers in
  let topo =
    Operon_steiner.Topology.make ~positions:centers ~nterminals:2 ~edges:[ (0, 1) ]
      ~root:0
  in
  [ Candidate.of_labels params hnet topo [| Candidate.Electrical; Candidate.Optical |];
    Candidate.electrical params hnet topo ]

(* Two long nets crossing at the centre. *)
let crossing_pair () =
  [| simple_cands 0 (p 0.0 2.0) (p 4.0 2.0); simple_cands 1 (p 2.0 0.0) (p 2.0 4.0) |]

(* ------------------------------------------------------------------ *)
(* Xmatrix unit tests                                                 *)
(* ------------------------------------------------------------------ *)

(* Every (i,j,m,n) over actual neighbour pairs: the cached per-path
   counts equal a from-scratch Segment.count_crossings. *)
let check_counts_against_geometry ctx =
  let xmat = ctx.Selection.xmat in
  Array.iteri
    (fun i ms ->
      Array.iter
        (fun m ->
          Array.iteri
            (fun j (c : Candidate.t) ->
              Array.iteri
                (fun n (other : Candidate.t) ->
                  let got = Xmatrix.path_counts xmat ~i ~j ~m ~n in
                  let want =
                    Array.map
                      (fun (path : Candidate.path) ->
                        Segment.count_crossings path.Candidate.segments
                          other.Candidate.opt_segments)
                      c.Candidate.paths
                  in
                  Alcotest.(check (array int))
                    (Printf.sprintf "counts (%d,%d)x(%d,%d)" i j m n)
                    want got)
                ctx.Selection.cands.(m))
            ctx.Selection.cands.(i))
        ms)
    ctx.Selection.neighbors

let test_counts_match_geometry () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  Alcotest.(check bool) "cache built" true (Xmatrix.enabled ctx.Selection.xmat);
  check_counts_against_geometry ctx

let test_loss_matches_candidate_formula () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let xmat = ctx.Selection.xmat in
  Array.iteri
    (fun i ms ->
      Array.iter
        (fun m ->
          Array.iteri
            (fun j (c : Candidate.t) ->
              Array.iteri
                (fun n (other : Candidate.t) ->
                  Array.iteri
                    (fun pidx _ ->
                      Alcotest.(check (float 0.0))
                        "loss_on_path = Candidate.crossing_loss_on_path"
                        (Candidate.crossing_loss_on_path ctx.Selection.params c
                           pidx other)
                        (Xmatrix.loss_on_path xmat ctx.Selection.params ~i ~j
                           ~p:pidx ~m ~n))
                    c.Candidate.paths)
                ctx.Selection.cands.(m))
            ctx.Selection.cands.(i))
        ms)
    ctx.Selection.neighbors

let test_counters_and_modes () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let xmat = ctx.Selection.xmat in
  let s0 = Xmatrix.stats xmat in
  Alcotest.(check bool) "enabled" true s0.Xmatrix.enabled;
  Alcotest.(check bool) "pairs precomputed" true (s0.Xmatrix.pairs > 0);
  Alcotest.(check int) "fresh hits" 0 s0.Xmatrix.hits;
  ignore (Xmatrix.path_counts xmat ~i:0 ~j:0 ~m:1 ~n:0);
  let s1 = Xmatrix.stats xmat in
  Alcotest.(check int) "one hit" 1 s1.Xmatrix.hits;
  Xmatrix.reset_counters xmat;
  let s2 = Xmatrix.stats xmat in
  Alcotest.(check int) "reset hits" 0 s2.Xmatrix.hits;
  Alcotest.(check int) "build stats survive reset" s0.Xmatrix.pairs s2.Xmatrix.pairs;
  let direct = (Selection.uncached ctx).Selection.xmat in
  Alcotest.(check bool) "direct disabled" false (Xmatrix.enabled direct);
  ignore (Xmatrix.count direct ~i:0 ~j:0 ~p:0 ~m:1 ~n:0);
  Alcotest.(check int) "direct queries are misses" 1 (Xmatrix.stats direct).Xmatrix.misses

(* Parallel build (jobs=4) produces exactly the sequential matrix. *)
let test_parallel_build_deterministic () =
  let design = Cases.small ~seed:7 () in
  let cfg = Flow.Config.default params in
  let _, seq_ctx = Flow.prepare_with cfg design in
  let _, par_ctx = Flow.prepare_with (Flow.Config.with_jobs 4 cfg) design in
  let choice = Selection.greedy seq_ctx in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "net %d losses identical" i)
        true
        (Selection.net_path_losses seq_ctx choice i
        = Selection.net_path_losses par_ctx choice i))
    seq_ctx.Selection.cands;
  Alcotest.(check (float 0.0)) "worst_violation identical"
    (Selection.worst_violation seq_ctx choice)
    (Selection.worst_violation par_ctx choice)

(* ------------------------------------------------------------------ *)
(* Cached vs uncached parity on random designs                        *)
(* ------------------------------------------------------------------ *)

let check_losses_parity name ctx ctx_u choice =
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: net %d losses bit-identical" name i)
        true
        (Selection.net_path_losses ctx choice i
        = Selection.net_path_losses ctx_u choice i))
    ctx.Selection.cands;
  Alcotest.(check (float 0.0))
    (name ^ ": worst_violation bit-identical")
    (Selection.worst_violation ctx_u choice)
    (Selection.worst_violation ctx choice)

let check_design_parity ~ilp name design =
  let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let ctx_u = Selection.uncached ctx in
  check_counts_against_geometry ctx;
  List.iter
    (fun (cname, choice) -> check_losses_parity (name ^ "/" ^ cname) ctx ctx_u choice)
    [ ("greedy", Selection.greedy ctx);
      ("electrical", Selection.all_electrical ctx);
      ("polished", Selection.polish ctx (Selection.greedy ctx)) ];
  let lr = Lr_select.select ctx and lr_u = Lr_select.select ctx_u in
  Alcotest.(check (array int))
    (name ^ ": LR choice identical") lr_u.Lr_select.choice lr.Lr_select.choice;
  Alcotest.(check (float 0.0))
    (name ^ ": LR power identical") lr_u.Lr_select.power lr.Lr_select.power;
  if ilp then begin
    let r = Ilp_select.select ~budget_seconds:20.0 ctx in
    let r_u = Ilp_select.select ~budget_seconds:20.0 ctx_u in
    Alcotest.(check (array int))
      (name ^ ": ILP choice identical") r_u.Ilp_select.choice r.Ilp_select.choice;
    Alcotest.(check (float 0.0))
      (name ^ ": ILP power identical") r_u.Ilp_select.power r.Ilp_select.power
  end

let prop_random_design_parity =
  QCheck.Test.make ~name:"cached = uncached on random tiny designs" ~count:8
    QCheck.(int_range 1 10000)
    (fun seed ->
      check_design_parity ~ilp:true
        (Printf.sprintf "tiny/%d" seed)
        (Cases.tiny ~seed ());
      true)

let test_small_design_parity () =
  check_design_parity ~ilp:false "small" (Cases.small ~seed:3 ())

(* Full-flow identity: cache on vs off, sequential vs jobs=4, LR and
   ILP — the acceptance criterion of the PR. *)
let test_flow_cache_identity () =
  let design = Cases.tiny ~seed:5 () in
  List.iter
    (fun mode ->
      let result jobs cache =
        Flow.synthesize
          (Flow.Config.make ~mode ~ilp_budget:20.0 ~jobs ~cache params)
          design
      in
      let reference = result 1 true in
      List.iter
        (fun (jobs, cache) ->
          let r = result jobs cache in
          let tag =
            Printf.sprintf "%s jobs=%d cache=%b"
              (match mode with Flow.Lr -> "lr" | Flow.Ilp -> "ilp")
              jobs cache
          in
          Alcotest.(check (array int)) (tag ^ ": choice") reference.Flow.choice
            r.Flow.choice;
          Alcotest.(check (float 0.0)) (tag ^ ": power") reference.Flow.power
            r.Flow.power)
        [ (1, false); (4, true); (4, false) ];
      Alcotest.(check bool)
        "cache stats enabled on default path" true
        reference.Flow.cache.Xmatrix.enabled)
    [ Flow.Lr; Flow.Ilp ]

(* ------------------------------------------------------------------ *)
(* Incremental evaluation                                             *)
(* ------------------------------------------------------------------ *)

(* After any flip sequence, the Eval agrees bit-for-bit with a full
   recompute of its current assignment. *)
let check_eval_matches_full ctx ev =
  let choice = Selection.Eval.choice ev in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "eval losses of net %d" i)
        true
        (Selection.Eval.losses ev i = Selection.net_path_losses ctx choice i))
    ctx.Selection.cands;
  Alcotest.(check (float 0.0)) "eval worst_violation"
    (Selection.worst_violation ctx choice)
    (Selection.Eval.worst_violation ev);
  Alcotest.(check (float 0.0)) "eval power"
    (Selection.power ctx choice)
    (Selection.Eval.power ev)

let test_eval_incremental_equivalence () =
  let design = Cases.small ~seed:11 () in
  let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let ev = Selection.Eval.create ctx (Selection.greedy ctx) in
  check_eval_matches_full ctx ev;
  (* Walk every net through its fallback and back, checking equivalence
     after each flip. *)
  let n = Array.length ctx.Selection.cands in
  let rng = Prng.create 99 in
  for _ = 1 to 3 * n do
    let i = Prng.int rng n in
    let j = Prng.int rng (Array.length ctx.Selection.cands.(i)) in
    Selection.Eval.set ev i j;
    Alcotest.(check int) "get reflects set" j (Selection.Eval.get ev i)
  done;
  check_eval_matches_full ctx ev

let test_eval_recompute_locality () =
  let design = Cases.small ~seed:11 () in
  let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let n = Array.length ctx.Selection.cands in
  let ev = Selection.Eval.create ctx (Selection.greedy ctx) in
  ignore (Selection.Eval.worst_violation ev);
  let full = Selection.Eval.recomputes ev in
  Alcotest.(check int) "first evaluation touches every net" n full;
  (* Find a net with at least one neighbour and flip it: only the net
     and its neighbourhood may be re-derived. *)
  let i =
    let best = ref 0 in
    Array.iteri
      (fun k ms ->
        if Array.length ms > Array.length ctx.Selection.neighbors.(!best) then
          best := k)
      ctx.Selection.neighbors;
    !best
  in
  Selection.Eval.set ev i ctx.Selection.elec_idx.(i);
  ignore (Selection.Eval.worst_violation ev);
  let delta = Selection.Eval.recomputes ev - full in
  let bound = 1 + Array.length ctx.Selection.neighbors.(i) in
  Alcotest.(check bool)
    (Printf.sprintf "flip re-derives <= %d nets (got %d)" bound delta)
    true (delta <= bound)

let () =
  Alcotest.run "xmatrix"
    [ ( "unit",
        [ Alcotest.test_case "counts match geometry" `Quick
            test_counts_match_geometry;
          Alcotest.test_case "losses match candidate formula" `Quick
            test_loss_matches_candidate_formula;
          Alcotest.test_case "counters and modes" `Quick test_counters_and_modes;
          Alcotest.test_case "parallel build deterministic" `Quick
            test_parallel_build_deterministic ] );
      ( "parity",
        [ QCheck_alcotest.to_alcotest prop_random_design_parity;
          Alcotest.test_case "small design" `Slow test_small_design_parity;
          Alcotest.test_case "flow cache identity (jobs 1/4)" `Quick
            test_flow_cache_identity ] );
      ( "incremental",
        [ Alcotest.test_case "eval = full recompute" `Quick
            test_eval_incremental_equivalence;
          Alcotest.test_case "eval recompute locality" `Quick
            test_eval_recompute_locality ] ) ]
