(* Tests for the power-hotspot maps (paper Figure 9): grid deposits must
   conserve the deposited mass, so the map totals are checkable against
   independent sums over the selection, and the summary line (pasted into
   EXPERIMENTS.md) is pinned byte for byte. *)

open Operon_geom
open Operon_optical
open Operon
open Operon_benchgen

let params = Params.default

(* One tiny prepared selection shared by the map tests. *)
let prepared =
  lazy
    (let design = Cases.tiny ~seed:3 () in
     let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
     let flow = Flow.select_with (Flow.Config.default params) design hnets ctx in
     (design, ctx, flow))

let close name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.9f, got %.9f)" name expected got)
    true
    (Float.abs (expected -. got) <= 1e-6 *. Float.max 1.0 (Float.abs expected))

let test_of_selection_totals () =
  let design, ctx, flow = Lazy.force prepared in
  let maps =
    Hotspot.of_selection ~die:design.Signal.die ctx flow.Flow.choice
  in
  let p = ctx.Selection.params in
  let unit_e = Params.electrical_unit_energy p in
  (* Every modulator deposits p_mod, every detector p_det; electrical
     mass is bits * unit energy * rectilinear length per drawn wire. *)
  let optical = ref 0.0 and electrical = ref 0.0 in
  Array.iteri
    (fun i j ->
      let c = ctx.Selection.cands.(i).(j) in
      let bits = float_of_int c.Candidate.hnet.Hypernet.bits in
      optical :=
        !optical
        +. (float_of_int (Array.length c.Candidate.mod_nodes) *. p.Params.p_mod)
        +. (float_of_int (Array.length c.Candidate.det_nodes) *. p.Params.p_det);
      Array.iter
        (fun seg ->
          electrical := !electrical +. (bits *. unit_e *. Segment.length_l1 seg))
        c.Candidate.elec_segments)
    flow.Flow.choice;
  close "optical total" !optical (Gridmap.total maps.Hotspot.optical);
  close "electrical total" !electrical (Gridmap.total maps.Hotspot.electrical);
  Alcotest.(check bool)
    "optical peak positive" true
    (Gridmap.peak maps.Hotspot.optical > 0.0)

let test_electrical_of_design_total () =
  let design, _, _ = Lazy.force prepared in
  let grid = Hotspot.electrical_of_design params design in
  let unit_e = Params.electrical_unit_energy params in
  (* Same RSMT trees the map smears, summed without any grid in the
     way. *)
  let expected = ref 0.0 in
  Array.iter
    (fun (g : Signal.group) ->
      Array.iter
        (fun b ->
          let pins = Signal.bit_pins b in
          if Array.length pins > 1 then
            Array.iter
              (fun seg -> expected := !expected +. (unit_e *. Segment.length_l1 seg))
              (Operon_steiner.Topology.segments
                 (Operon_steiner.Rsmt.tree pins ~root:0)))
        g.Signal.bits)
    design.Signal.groups;
  close "design electrical total" !expected (Gridmap.total grid);
  Alcotest.(check bool) "non-trivial design" true (!expected > 0.0)

let test_summary_golden () =
  (* A hand-built pair of 2x2 grids pins the summary line exactly. *)
  let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let optical = Gridmap.create die ~nx:2 ~ny:2 in
  Gridmap.set optical 0 0 2.0;
  Gridmap.set optical 1 1 1.0;
  let electrical = Gridmap.create die ~nx:2 ~ny:2 in
  Gridmap.set electrical 1 0 4.0;
  Alcotest.(check string)
    "summary line"
    "optical: peak=2.000 total=3.000 | electrical: peak=4.000 total=4.000"
    (Hotspot.summary { Hotspot.optical; electrical })

let () =
  Alcotest.run "hotspot"
    [ ( "maps",
        [ Alcotest.test_case "of_selection totals" `Quick
            test_of_selection_totals;
          Alcotest.test_case "electrical_of_design total" `Quick
            test_electrical_of_design_total;
          Alcotest.test_case "summary golden" `Quick test_summary_golden ] ) ]
