(* Tests for the post-route loss signoff: physical route lengths, real
   waveguide crossing counts, and the estimate-vs-physical comparison. *)

open Operon_optical
open Operon
open Operon_benchgen

let params = Params.default

let signoff_of_flow (r : Flow.t) =
  Signoff.run r.Flow.ctx.Selection.params r.Flow.ctx r.Flow.choice r.Flow.placement
    r.Flow.assignment

let test_signoff_small_flow () =
  let design = Cases.small ~seed:3 () in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let s = signoff_of_flow r in
  Alcotest.(check bool) "checked some nets" true (s.Signoff.nets_checked > 0);
  Alcotest.(check bool) "paths >= nets" true
    (s.Signoff.paths_checked >= s.Signoff.nets_checked);
  Alcotest.(check bool) "detour >= 1" true (s.Signoff.mean_detour_ratio >= 1.0 -. 1e-9);
  Alcotest.(check bool) "worst loss positive" true (s.Signoff.worst_loss_db > 0.0)

let test_signoff_counts_crossings () =
  let design = Gen.generate { Cases.i1 with Gen.n_groups = 80 } in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let s = signoff_of_flow r in
  (* a corridor design with both H and V traffic has physical crossings *)
  Alcotest.(check bool) "waveguides cross" true (s.Signoff.waveguide_crossings >= 0);
  Alcotest.(check bool) "physical crossing loss tracked" true
    (s.Signoff.mean_physical_crossing_db >= 0.0);
  Alcotest.(check bool) "estimated crossing loss tracked" true
    (s.Signoff.mean_estimated_crossing_db >= 0.0)

let test_signoff_no_optical_nets () =
  (* a design so tight-budgeted everything is electrical: nothing to check *)
  let tight = { params with Params.l_max = 0.01 } in
  let design = Cases.tiny () in
  let r = Flow.synthesize (Flow.Config.default tight) design in
  let s = signoff_of_flow r in
  Alcotest.(check int) "no optical nets" 0 s.Signoff.nets_checked;
  Alcotest.(check int) "no paths" 0 s.Signoff.paths_checked;
  Alcotest.(check int) "no violations" 0 s.Signoff.violations

let test_signoff_deterministic () =
  let design = Cases.small ~seed:9 () in
  let r1 = Flow.synthesize (Flow.Config.default params) design in
  let r2 = Flow.synthesize (Flow.Config.default params) design in
  let s1 = signoff_of_flow r1 and s2 = signoff_of_flow r2 in
  Alcotest.(check (float 1e-9)) "same worst loss" s1.Signoff.worst_loss_db
    s2.Signoff.worst_loss_db;
  Alcotest.(check int) "same crossings" s1.Signoff.waveguide_crossings
    s2.Signoff.waveguide_crossings

let prop_signoff_sane =
  QCheck.Test.make ~name:"signoff invariants across seeds" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let design = Cases.small ~seed () in
      let r = Flow.synthesize (Flow.Config.make ~seed params) design in
      let s = signoff_of_flow r in
      s.Signoff.mean_detour_ratio >= 1.0 -. 1e-9
      && s.Signoff.violations <= s.Signoff.paths_checked
      && s.Signoff.worst_loss_db >= 0.0)

let () =
  Alcotest.run "signoff"
    [ ( "signoff",
        [ Alcotest.test_case "small flow" `Quick test_signoff_small_flow;
          Alcotest.test_case "crossing counts" `Quick test_signoff_counts_crossings;
          Alcotest.test_case "all electrical" `Quick test_signoff_no_optical_nets;
          Alcotest.test_case "deterministic" `Quick test_signoff_deterministic;
          QCheck_alcotest.to_alcotest prop_signoff_sane ] ) ]
