(* Tests for the optical device models: Eq. (1)/(2)/(6) arithmetic, the
   Y-branch cascade of Fig. 3(b), dB conversions, and WDM tracks. *)

open Operon_geom
open Operon_optical

let params = Params.default

let check_float = Alcotest.(check (float 1e-9))

let close name expected got =
  Alcotest.(check bool) name true (Float.abs (expected -. got) < 1e-6)

(* --- params --- *)

let test_default_valid () =
  match Params.validate params with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_paper_constants () =
  check_float "alpha" 1.5 params.Params.alpha;
  check_float "beta" 0.52 params.Params.beta;
  check_float "p_mod" 0.511 params.Params.p_mod;
  check_float "p_det" 0.374 params.Params.p_det;
  Alcotest.(check int) "capacity" 32 params.Params.wdm_capacity

let test_validate_catches () =
  let bad = { params with Params.alpha = -1.0 } in
  (match Params.validate bad with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "negative alpha accepted");
  let bad2 = { params with Params.dis_l = 1.0; dis_u = 0.5 } in
  match Params.validate bad2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dis_l > dis_u accepted"

let test_auto_bundle () =
  let p32 = Params.auto_bundle params ~mean_bits:32.0 in
  check_float "wide buses barely bundle" 1.5 p32.Params.bundle_factor;
  let p1 = Params.auto_bundle params ~mean_bits:1.0 in
  check_float "thin nets clamp at 16" 16.0 p1.Params.bundle_factor;
  Alcotest.check_raises "zero mean"
    (Invalid_argument "Params.auto_bundle: non-positive mean_bits") (fun () ->
      ignore (Params.auto_bundle params ~mean_bits:0.0))

(* --- loss --- *)

let test_propagation () =
  check_float "2 cm at 1.5 dB/cm" 3.0 (Loss.propagation params 2.0);
  check_float "zero" 0.0 (Loss.propagation params 0.0);
  Alcotest.check_raises "negative" (Invalid_argument "Loss.propagation: negative length")
    (fun () -> ignore (Loss.propagation params (-1.0)))

let test_crossing () =
  check_float "5 crossings" 2.6 (Loss.crossing params 5);
  check_float "bundled" (2.6 /. params.Params.bundle_factor) (Loss.crossing_bundled params 5)

let test_splitting () =
  check_float "no split" 0.0 (Loss.splitting_arm params 1);
  (* 2 arms: 10*log10(2) + 1 stage excess *)
  close "two arms" (3.0102999566 +. params.Params.splitter_excess) (Loss.splitting_arm params 2);
  (* 4 arms: 6.02 dB + 2 stages excess *)
  close "four arms"
    (6.0205999132 +. (2.0 *. params.Params.splitter_excess))
    (Loss.splitting_arm params 4)

let test_path_loss_composition () =
  let loss = Loss.path params ~wirelength:2.0 ~crossings:5 ~split_arms:[ 2; 2 ] in
  close "eq 2 sum"
    (3.0 +. 2.6 +. (2.0 *. (3.0102999566 +. params.Params.splitter_excess)))
    loss

let test_detectable () =
  Alcotest.(check bool) "within budget" true (Loss.detectable params (params.Params.l_max -. 1.0));
  Alcotest.(check bool) "over budget" false (Loss.detectable params (params.Params.l_max +. 1.0))

let test_db_fraction_roundtrip () =
  close "3 dB halves" 0.5011872336 (Loss.db_to_fraction 3.0);
  close "roundtrip" 7.5 (Loss.fraction_to_db (Loss.db_to_fraction 7.5));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Loss.fraction_to_db: non-positive fraction") (fun () ->
      ignore (Loss.fraction_to_db 0.0))

(* --- power --- *)

let test_optical_power_eq1 () =
  check_float "eq 1" ((3.0 *. 0.511) +. (2.0 *. 0.374))
    (Power.optical params ~n_mod:3 ~n_det:2);
  check_float "zero devices" 0.0 (Power.optical params ~n_mod:0 ~n_det:0)

let test_electrical_power () =
  let unit = Params.electrical_unit_energy params in
  check_float "per cm" unit (Power.electrical params ~wirelength:1.0);
  check_float "wiring scales with bits" (10.0 *. unit *. 2.0)
    (Power.wiring params ~bits:10 ~wirelength:2.0)

let test_electrical_watts () =
  (* 1 pJ/bit at 1 GHz = 1 mW *)
  let p1 = { params with Params.gamma = 1.0; vdd = 1.0; cap_per_cm = 1.0; freq = 1e9 } in
  close "watt conversion" 1e-3 (Power.electrical_watts p1 ~wirelength:1.0)

(* --- splitter cascade (Fig. 3b) --- *)

let test_cascade_two_stages () =
  let reports = Splitter.cascade params ~stages:2 in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  let s0 = List.nth reports 0 and s1 = List.nth reports 1 and s2 = List.nth reports 2 in
  Alcotest.(check int) "source" 1 s0.Splitter.outputs;
  check_float "source full power" 1.0 s0.Splitter.power_fraction;
  Alcotest.(check int) "first split" 2 s1.Splitter.outputs;
  Alcotest.(check int) "second split" 4 s2.Splitter.outputs;
  (* each 50-50 stage roughly halves per-arm power (excess makes it
     slightly less than half) *)
  Alcotest.(check bool) "halving" true
    (s1.Splitter.power_fraction < 0.5 +. 1e-9 && s1.Splitter.power_fraction > 0.45);
  Alcotest.(check bool) "quartering" true
    (s2.Splitter.power_fraction < 0.25 +. 1e-9 && s2.Splitter.power_fraction > 0.2)

let test_cascade_conserves_power () =
  (* Without excess loss, total output power equals input power. *)
  let ideal = { params with Params.splitter_excess = 0.0 } in
  List.iter
    (fun r ->
      close
        (Printf.sprintf "stage %d conserves" r.Splitter.stage)
        1.0
        (float_of_int r.Splitter.outputs *. r.Splitter.power_fraction))
    (Splitter.cascade ideal ~stages:4)

let test_cascade_invalid () =
  Alcotest.check_raises "negative stages"
    (Invalid_argument "Splitter.cascade: negative stage count") (fun () ->
      ignore (Splitter.cascade params ~stages:(-1)))

let test_fanout_tree () =
  check_float "single sink free" 0.0 (Splitter.fanout_tree params ~sinks:1);
  close "two sinks" (Loss.splitting_arm params 2) (Splitter.fanout_tree params ~sinks:2);
  close "four sinks" (Loss.splitting_arm params 4) (Splitter.fanout_tree params ~sinks:4);
  Alcotest.(check bool) "monotone" true
    (Splitter.fanout_tree params ~sinks:3 <= Splitter.fanout_tree params ~sinks:4 +. 1e-9)

(* --- wdm tracks --- *)

let seg x1 y1 x2 y2 = Segment.make (Point.make x1 y1) (Point.make x2 y2)

let conn id net s bits = { Wdm.id; net; seg = s; bits }

let test_orientation () =
  Alcotest.(check bool) "horizontal" true
    (Wdm.orientation_of (seg 0.0 0.0 5.0 0.1) = Wdm.Horizontal);
  Alcotest.(check bool) "vertical" true
    (Wdm.orientation_of (seg 0.0 0.0 0.1 5.0) = Wdm.Vertical)

let test_conn_coord_span () =
  let c = conn 0 0 (seg 1.0 2.0 5.0 2.2) 8 in
  Alcotest.(check bool) "coord is mid y" true (Float.abs (Wdm.conn_coord c -. 2.1) < 1e-9);
  let lo, hi = Wdm.conn_span c in
  check_float "lo" 1.0 lo;
  check_float "hi" 5.0 hi

let test_track_lifecycle () =
  let c1 = conn 0 0 (seg 0.0 1.0 3.0 1.0) 10 in
  let t = Wdm.track_of_conn ~capacity:32 c1 in
  Alcotest.(check int) "initial usage" 10 t.Wdm.used;
  let c2 = conn 1 1 (seg 2.0 1.05 6.0 1.05) 20 in
  Alcotest.(check bool) "fits" true (Wdm.track_fits t c2 ~max_dist:0.1);
  Wdm.track_add t c2;
  Alcotest.(check int) "usage" 30 t.Wdm.used;
  check_float "span extended" 6.0 t.Wdm.hi;
  let c3 = conn 2 2 (seg 0.0 1.0 1.0 1.0) 10 in
  Alcotest.(check bool) "capacity exceeded" false (Wdm.track_fits t c3 ~max_dist:0.1);
  Alcotest.check_raises "add raises" (Invalid_argument "Wdm.track_add: capacity exceeded")
    (fun () -> Wdm.track_add t c3)

let test_track_distance_gate () =
  let c1 = conn 0 0 (seg 0.0 1.0 3.0 1.0) 1 in
  let t = Wdm.track_of_conn ~capacity:32 c1 in
  let far = conn 1 1 (seg 0.0 2.0 3.0 2.0) 1 in
  Alcotest.(check bool) "too far" false (Wdm.track_fits t far ~max_dist:0.5);
  Alcotest.(check bool) "close enough" true (Wdm.track_fits t far ~max_dist:1.5)

let test_track_oversized_conn () =
  let big = conn 0 0 (seg 0.0 0.0 1.0 0.0) 64 in
  Alcotest.check_raises "exceeds capacity"
    (Invalid_argument "Wdm.track_of_conn: connection exceeds capacity") (fun () ->
      ignore (Wdm.track_of_conn ~capacity:32 big))

(* --- properties --- *)

let prop_splitting_monotone =
  QCheck.Test.make ~name:"splitting loss monotone in arms" ~count:50
    QCheck.(int_range 1 63)
    (fun ns -> Loss.splitting_arm params ns <= Loss.splitting_arm params (ns + 1) +. 1e-9)

let prop_db_fraction_inverse =
  QCheck.Test.make ~name:"db/fraction inverse" ~count:200
    QCheck.(float_range 0.0 40.0)
    (fun db -> Float.abs (Loss.fraction_to_db (Loss.db_to_fraction db) -. db) < 1e-6)

let prop_fraction_db_inverse =
  QCheck.Test.make ~name:"fraction/db inverse on (0,1]" ~count:200
    QCheck.(float_range 1e-6 1.0)
    (fun f ->
      Float.abs (Loss.db_to_fraction (Loss.fraction_to_db f) -. f) < 1e-9)

let prop_fraction_to_db_rejects =
  QCheck.Test.make ~name:"fraction_to_db rejects non-positive" ~count:100
    QCheck.(float_range (-40.0) 0.0)
    (fun f ->
      match Loss.fraction_to_db f with
      | _ -> false
      | exception Invalid_argument _ -> true)

let prop_path_loss_additive =
  QCheck.Test.make ~name:"eq2 additive in wirelength" ~count:200
    QCheck.(pair (float_range 0.0 5.0) (float_range 0.0 5.0))
    (fun (a, b) ->
      let f wl = Loss.path params ~wirelength:wl ~crossings:0 ~split_arms:[] in
      Float.abs (f (a +. b) -. (f a +. f b)) < 1e-9)

let () =
  Alcotest.run "optical"
    [ ( "params",
        [ Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "paper constants" `Quick test_paper_constants;
          Alcotest.test_case "validate catches" `Quick test_validate_catches;
          Alcotest.test_case "auto bundle" `Quick test_auto_bundle ] );
      ( "loss",
        [ Alcotest.test_case "propagation" `Quick test_propagation;
          Alcotest.test_case "crossing" `Quick test_crossing;
          Alcotest.test_case "splitting" `Quick test_splitting;
          Alcotest.test_case "eq2 composition" `Quick test_path_loss_composition;
          Alcotest.test_case "detectable" `Quick test_detectable;
          Alcotest.test_case "db roundtrip" `Quick test_db_fraction_roundtrip;
          QCheck_alcotest.to_alcotest prop_splitting_monotone;
          QCheck_alcotest.to_alcotest prop_db_fraction_inverse;
          QCheck_alcotest.to_alcotest prop_fraction_db_inverse;
          QCheck_alcotest.to_alcotest prop_fraction_to_db_rejects;
          QCheck_alcotest.to_alcotest prop_path_loss_additive ] );
      ( "power",
        [ Alcotest.test_case "eq1" `Quick test_optical_power_eq1;
          Alcotest.test_case "electrical" `Quick test_electrical_power;
          Alcotest.test_case "watts" `Quick test_electrical_watts ] );
      ( "splitter",
        [ Alcotest.test_case "two stages (fig 3b)" `Quick test_cascade_two_stages;
          Alcotest.test_case "power conservation" `Quick test_cascade_conserves_power;
          Alcotest.test_case "invalid" `Quick test_cascade_invalid;
          Alcotest.test_case "fanout tree" `Quick test_fanout_tree ] );
      ( "wdm",
        [ Alcotest.test_case "orientation" `Quick test_orientation;
          Alcotest.test_case "coord/span" `Quick test_conn_coord_span;
          Alcotest.test_case "track lifecycle" `Quick test_track_lifecycle;
          Alcotest.test_case "distance gate" `Quick test_track_distance_gate;
          Alcotest.test_case "oversized conn" `Quick test_track_oversized_conn ] ) ]
