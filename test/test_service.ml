(* Batch synthesis service: served results byte-identical to single-shot
   runs at any worker count, structured busy rejection on a full queue,
   cancellation and deadline expiry as error envelopes that leave the
   pool serving, and exact stats counters over a scripted session. *)

open Operon_optical
open Operon
open Operon_benchgen
open Operon_service

let params = Params.default

let resolve ~case ~seed =
  match String.lowercase_ascii case with
  | "tiny" -> Some (Cases.tiny ?seed ())
  | "small" -> Some (Cases.small ?seed ())
  | _ -> None

let make ?(workers = 1) ?(capacity = 8) () =
  Service.create ~workers ~capacity ~resolve ~params ()

let handle svc line =
  match Service.handle_line svc line with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no response to %s" line)

let parse line =
  match Protocol.Json.parse line with
  | Ok j -> j
  | Error (_, e) -> Alcotest.fail (Printf.sprintf "bad response %s: %s" line e)

let str_field k j =
  match Protocol.Json.member k j with
  | Some (Protocol.Json.Str s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string field %S" k)

let int_field k j =
  match Protocol.Json.member k j with
  | Some (Protocol.Json.Num n) -> int_of_float n
  | _ -> Alcotest.fail (Printf.sprintf "missing numeric field %S" k)

let ok_field j =
  match Protocol.Json.member "ok" j with
  | Some (Protocol.Json.Bool b) -> b
  | _ -> Alcotest.fail "missing ok field"

let error_kind j =
  match Protocol.Json.member "error" j with
  | Some e -> str_field "kind" e
  | None -> Alcotest.fail "expected an error envelope"

let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else go (i + 1)
  in
  go 0

(* The result document is the envelope's final field: everything between
   ["result":] and the envelope's closing brace, verbatim bytes. *)
let result_payload line =
  let marker = {|,"result":|} in
  match find_sub line marker with
  | None -> Alcotest.fail (Printf.sprintf "no result payload in %s" line)
  | Some i ->
      let start = i + String.length marker in
      String.sub line start (String.length line - start - 1)

(* ------------------------------------------------------------------ *)
(* (a) Served result bytes = single-shot Flow.synthesize bytes         *)
(* ------------------------------------------------------------------ *)

let serve_tiny ~workers =
  let svc = make ~workers () in
  Service.start svc;
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let sub = parse (handle svc {|{"op":"submit","case":"tiny","job":"a"}|}) in
      Alcotest.(check bool) "submit accepted" true (ok_field sub);
      Alcotest.(check string) "queued" "queued" (str_field "state" sub);
      let res = handle svc {|{"op":"result","job":"a"}|} in
      let j = parse res in
      Alcotest.(check bool) "result ok" true (ok_field j);
      Alcotest.(check string) "completed" "completed" (str_field "state" j);
      result_payload res)

let test_served_bytes_identical () =
  (* The submit defaults mirror the protocol: lr, 60 s budget, cache on,
     flow seed 42 — and "tiny" with no seed override. *)
  let config = Flow.Config.make ~mode:Flow.Lr ~ilp_budget:60.0 ~cache:true params in
  let single = Export.flow_to_json ~timings:false
      (Flow.synthesize config (Cases.tiny ())) in
  Alcotest.(check string) "1 worker = single-shot" single (serve_tiny ~workers:1);
  Alcotest.(check string) "4 workers = single-shot" single (serve_tiny ~workers:4)

let test_repeat_submit_reuses_registry () =
  let svc = make () in
  Service.start svc;
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      ignore (handle svc {|{"op":"submit","case":"tiny","job":"a"}|});
      let first = result_payload (handle svc {|{"op":"result","job":"a"}|}) in
      ignore (handle svc {|{"op":"submit","case":"tiny","job":"b"}|});
      let second = result_payload (handle svc {|{"op":"result","job":"b"}|}) in
      Alcotest.(check string) "reused prepare, identical bytes" first second;
      let stats = parse (handle svc {|{"op":"stats"}|}) in
      match Protocol.Json.member "registry" stats with
      | Some reg ->
          Alcotest.(check int) "one entry" 1 (int_field "entries" reg);
          Alcotest.(check int) "one hit" 1 (int_field "hits" reg);
          Alcotest.(check int) "one miss" 1 (int_field "misses" reg)
      | None -> Alcotest.fail "stats must carry registry counters")

(* ------------------------------------------------------------------ *)
(* (b) Full queue rejects with a structured busy response              *)
(* ------------------------------------------------------------------ *)

let test_full_queue_busy () =
  (* Capacity 1, workers not started: the first submit fills the queue
     deterministically, the second must bounce. *)
  let svc = make ~capacity:1 () in
  let a = parse (handle svc {|{"op":"submit","case":"tiny","job":"a"}|}) in
  Alcotest.(check bool) "first accepted" true (ok_field a);
  let b = parse (handle svc {|{"op":"submit","case":"tiny","job":"b"}|}) in
  Alcotest.(check bool) "second rejected" false (ok_field b);
  Alcotest.(check string) "busy kind" "busy" (error_kind b);
  Alcotest.(check string) "op echoed" "submit" (str_field "op" b);
  let stats = parse (handle svc {|{"op":"stats"}|}) in
  Alcotest.(check int) "rejected counted" 1 (int_field "rejected" stats);
  Alcotest.(check int) "queue depth" 1 (int_field "queue_depth" stats);
  (* The rejected id is free for reuse, and the pool drains fine. *)
  Service.start svc;
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let r = parse (handle svc {|{"op":"result","job":"a"}|}) in
      Alcotest.(check string) "queued job completes" "completed"
        (str_field "state" r);
      let b2 = parse (handle svc {|{"op":"submit","case":"tiny","job":"b"}|}) in
      Alcotest.(check bool) "rejected id reusable" true (ok_field b2);
      let r2 = parse (handle svc {|{"op":"result","job":"b"}|}) in
      Alcotest.(check string) "resubmit completes" "completed"
        (str_field "state" r2))

(* ------------------------------------------------------------------ *)
(* (c) Cancellation and deadline expiry leave the pool serving         *)
(* ------------------------------------------------------------------ *)

let test_cancel_and_deadline () =
  let svc = make () in
  ignore (handle svc {|{"op":"submit","case":"tiny","job":"a"}|});
  ignore (handle svc {|{"op":"submit","case":"tiny","job":"b"}|});
  let c = parse (handle svc {|{"op":"cancel","job":"b"}|}) in
  Alcotest.(check bool) "cancel ok" true (ok_field c);
  Alcotest.(check string) "cancelled state" "cancelled" (str_field "state" c);
  (* An already-expired deadline: the worker must fail the job, not run it. *)
  ignore
    (handle svc {|{"op":"submit","case":"tiny","job":"c","deadline":0}|});
  Alcotest.(check string) "status before start" "queued"
    (str_field "state" (parse (handle svc {|{"op":"status","job":"a"}|})));
  Service.start svc;
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let rb = parse (handle svc {|{"op":"result","job":"b"}|}) in
      Alcotest.(check bool) "cancelled result is an error" false (ok_field rb);
      Alcotest.(check string) "cancelled kind" "cancelled" (error_kind rb);
      let rc = parse (handle svc {|{"op":"result","job":"c"}|}) in
      Alcotest.(check bool) "expired result is an error" false (ok_field rc);
      Alcotest.(check string) "deadline kind" "deadline" (error_kind rc);
      let ra = parse (handle svc {|{"op":"result","job":"a"}|}) in
      Alcotest.(check string) "untouched job completes" "completed"
        (str_field "state" ra);
      (* Cancel after completion is a validation error, not a crash. *)
      let late = parse (handle svc {|{"op":"cancel","job":"a"}|}) in
      Alcotest.(check string) "late cancel" "validation" (error_kind late);
      (* The pool is still serving after every failure mode above. *)
      ignore (handle svc {|{"op":"submit","case":"tiny","job":"d"}|});
      let rd = parse (handle svc {|{"op":"result","job":"d"}|}) in
      Alcotest.(check string) "pool still serving" "completed"
        (str_field "state" rd);
      let stats = parse (handle svc {|{"op":"stats"}|}) in
      Alcotest.(check int) "expired counted" 1 (int_field "expired" stats);
      Alcotest.(check int) "cancelled counted" 1 (int_field "cancelled" stats))

(* ------------------------------------------------------------------ *)
(* Protocol errors                                                     *)
(* ------------------------------------------------------------------ *)

let test_protocol_errors () =
  let svc = make () in
  Alcotest.(check bool) "blank line ignored" true
    (Service.handle_line svc "   " = None);
  Alcotest.(check string) "malformed json" "parse_error"
    (error_kind (parse (handle svc "{nope")));
  (let r = parse (handle svc "{nope") in
   match
     Protocol.Json.(member "error" r |> Option.get |> member "offset")
   with
   | Some (Protocol.Json.Num n) ->
       Alcotest.(check bool) "parse offset in range" true
         (n >= 0.0 && n <= 5.0)
   | _ -> Alcotest.fail "parse_error envelope missing offset");
  (let long = "{\"op\":\"stats\"," ^ String.make Service.max_line_bytes ' ' in
   Alcotest.(check string) "oversized line" "parse_error"
     (error_kind (parse (handle svc long))));
  Alcotest.(check string) "unknown op" "validation"
    (error_kind (parse (handle svc {|{"op":"frobnicate"}|})));
  Alcotest.(check string) "unknown case" "validation"
    (error_kind (parse (handle svc {|{"op":"submit","case":"nosuch"}|})));
  Alcotest.(check string) "unknown job" "unknown_job"
    (error_kind (parse (handle svc {|{"op":"status","job":"ghost"}|})));
  Alcotest.(check int) "protocol version stamped" Protocol.schema_version
    (int_field "schema_version" (parse (handle svc {|{"op":"stats"}|})))

(* ------------------------------------------------------------------ *)
(* Registry eviction vs. held entry locks                              *)
(* ------------------------------------------------------------------ *)

(* Property: an entry whose lock is held (a preparation or selection in
   flight) is never the LRU victim, however much eviction pressure
   concurrent submits of other designs apply — and a racing submit of
   the {e same} content-hash reuses that very entry once the lock
   frees, instead of re-preparing a fresh one. *)
let prop_locked_entry_survives_eviction =
  QCheck.Test.make ~name:"locked entry survives eviction pressure" ~count:8
    QCheck.(pair (int_range 4 12) (int_range 0 1000))
    (fun (pressure, base_seed) ->
      let reg = Registry.create ~capacity:1 () in
      let cfg = Flow.Config.make ~jobs:1 params in
      let locked_design = Cases.tiny ~seed:base_seed () in
      let entry, _ = Registry.find_or_prepare reg ~config:cfg locked_design in
      let release = Mutex.create () in
      Mutex.lock release;
      let held = Atomic.make false in
      let holder =
        Thread.create
          (fun () ->
            Registry.with_prepared entry (fun _ ->
                Atomic.set held true;
                (* park until the main thread frees us *)
                Mutex.lock release;
                Mutex.unlock release))
          ()
      in
      while not (Atomic.get held) do
        Thread.yield ()
      done;
      (* A racing submit of the same content-hash: blocks on the entry
         lock, must land on the same (un-evicted) entry afterwards. *)
      let racer =
        Thread.create
          (fun () -> Registry.find_or_prepare reg ~config:cfg locked_design)
          ()
      in
      (* Eviction pressure: distinct designs against capacity 1. *)
      for i = 1 to pressure do
        ignore
          (Registry.find_or_prepare reg ~config:cfg
             (Cases.tiny ~seed:(base_seed + (1000 * i)) ()))
      done;
      (* The locked entry cannot be evicted, so the table overflows by
         exactly one: the held entry plus the latest pressure design. *)
      let during = Registry.stats reg in
      Mutex.unlock release;
      Thread.join holder;
      Thread.join racer;
      let after =
        Registry.find_or_prepare reg ~config:cfg locked_design |> snd
      in
      during.Registry.entries = 2 && after)

(* ------------------------------------------------------------------ *)
(* (d) Exact counters over a scripted session                          *)
(* ------------------------------------------------------------------ *)

let test_stats_exact () =
  let svc = make ~capacity:1 () in
  ignore (handle svc {|{"op":"submit","case":"tiny","job":"A"}|});
  ignore (handle svc {|{"op":"submit","case":"tiny","job":"B"}|});  (* busy *)
  ignore (handle svc {|{"op":"cancel","job":"A"}|});
  Service.start svc;
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      ignore (handle svc {|{"op":"submit","case":"tiny","job":"C"}|});
      ignore (handle svc {|{"op":"result","job":"C"}|});
      ignore (handle svc {|{"op":"submit","case":"tiny","job":"D"}|});
      ignore (handle svc {|{"op":"result","job":"D"}|});
      let s = parse (handle svc {|{"op":"stats"}|}) in
      Alcotest.(check int) "submitted" 3 (int_field "submitted" s);
      Alcotest.(check int) "completed" 2 (int_field "completed" s);
      Alcotest.(check int) "failed" 0 (int_field "failed" s);
      Alcotest.(check int) "rejected" 1 (int_field "rejected" s);
      Alcotest.(check int) "cancelled" 1 (int_field "cancelled" s);
      Alcotest.(check int) "expired" 0 (int_field "expired" s);
      Alcotest.(check int) "queue drained" 0 (int_field "queue_depth" s);
      Alcotest.(check int) "workers" 1 (int_field "workers" s);
      match Protocol.Json.member "registry" s with
      | Some reg ->
          Alcotest.(check int) "registry entries" 1 (int_field "entries" reg);
          Alcotest.(check int) "registry hits" 1 (int_field "hits" reg);
          Alcotest.(check int) "registry misses" 1 (int_field "misses" reg)
      | None -> Alcotest.fail "stats must carry registry counters")

let () =
  Alcotest.run "service"
    [ ( "identity",
        [ Alcotest.test_case "served = single-shot, any workers" `Quick
            test_served_bytes_identical;
          Alcotest.test_case "registry reuse, identical bytes" `Quick
            test_repeat_submit_reuses_registry ] );
      ( "backpressure",
        [ Alcotest.test_case "full queue rejects busy" `Quick
            test_full_queue_busy ] );
      ( "lifecycle",
        [ Alcotest.test_case "cancel + deadline leave pool serving" `Quick
            test_cancel_and_deadline ] );
      ( "protocol",
        [ Alcotest.test_case "error envelopes" `Quick test_protocol_errors ] );
      ( "registry",
        [ QCheck_alcotest.to_alcotest prop_locked_entry_survives_eviction ] );
      ( "stats",
        [ Alcotest.test_case "exact counters" `Quick test_stats_exact ] ) ]
