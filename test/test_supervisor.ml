(* Fault-isolated multi-process serving: round trips through the forked
   shard fleet, kill -9 of a shard mid-load losing zero accepted jobs,
   deadline shedding against the observed p95 window, and the socket
   transport's framing guarantees.

   This binary must never create a Domain in the parent process: the
   OCaml 5 runtime refuses [Unix.fork] once any domain has ever been
   created, and the supervisor forks its shards (and their restarts) for
   as long as it lives. The Domain pools live in the forked children
   only — so no in-process [Service] here. *)

open Operon_optical
open Operon_benchgen
open Operon_service
open Operon_util

let params = Params.default

let resolve ~case ~seed =
  match String.lowercase_ascii case with
  | "tiny" -> Some (Cases.tiny ?seed ())
  | "small" -> Some (Cases.small ?seed ())
  | _ -> None

let make ?(shards = 2) ?(workers = 1) () =
  let t = Supervisor.create ~shards ~workers ~resolve ~params () in
  Supervisor.start t;
  t

let handle t line =
  match Supervisor.handle_line t line with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no response to %s" line)

let parse line =
  match Protocol.Json.parse line with
  | Ok j -> j
  | Error (_, e) -> Alcotest.fail (Printf.sprintf "bad response %s: %s" line e)

let str_field k j =
  match Protocol.Json.member k j with
  | Some (Protocol.Json.Str s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string field %S" k)

let int_field k j =
  match Protocol.Json.member k j with
  | Some (Protocol.Json.Num n) -> int_of_float n
  | _ -> Alcotest.fail (Printf.sprintf "missing numeric field %S" k)

let ok_field j =
  match Protocol.Json.member "ok" j with
  | Some (Protocol.Json.Bool b) -> b
  | _ -> Alcotest.fail "missing ok field"

let error_kind j =
  match Protocol.Json.member "error" j with
  | Some e -> str_field "kind" e
  | None -> Alcotest.fail "expected an error envelope"

let supervisor_counter name j =
  match Protocol.Json.member "supervisor" j with
  | Some sup -> int_field name sup
  | None -> Alcotest.fail "stats envelope lacks a supervisor object"

(* Poll the stats envelope until [pred] holds or [timeout] elapses —
   crash detection and restart registration run on monitor threads. *)
let await_stats t ~timeout pred =
  let deadline = Timer.now () +. timeout in
  let rec go () =
    let j = parse (handle t {|{"op":"stats"}|}) in
    if pred j then j
    else if Timer.now () > deadline then
      Alcotest.fail "stats condition not reached before timeout"
    else begin
      Thread.delay 0.1;
      go ()
    end
  in
  go ()

let submit t ~job ~case ~seed ?deadline () =
  let d =
    match deadline with
    | None -> ""
    | Some d -> Printf.sprintf {|,"deadline":%g|} d
  in
  handle t
    (Printf.sprintf
       {|{"op":"submit","job":%S,"case":%S,"seed":%d,"mode":"lr"%s}|} job case
       seed d)

let result t ~job = handle t (Printf.sprintf {|{"op":"result","job":%S}|} job)

(* --------------------------------------------------------------- *)
(* Round trip                                                       *)
(* --------------------------------------------------------------- *)

let test_round_trip () =
  let t = make () in
  Fun.protect
    ~finally:(fun () -> Supervisor.shutdown t)
    (fun () ->
      Alcotest.(check int) "two shard pids" 2 (List.length (Supervisor.pids t));
      for i = 1 to 4 do
        let job = Printf.sprintf "rt%d" i in
        let ack = parse (submit t ~job ~case:"tiny" ~seed:i ()) in
        Alcotest.(check bool) "submit accepted" true (ok_field ack);
        Alcotest.(check string) "ack echoes job" job (str_field "job" ack)
      done;
      for i = 1 to 4 do
        let job = Printf.sprintf "rt%d" i in
        let r = parse (result t ~job) in
        Alcotest.(check bool) "job completed" true (ok_field r);
        Alcotest.(check string) "terminal state" "completed"
          (str_field "state" r)
      done;
      (* duplicate id, unknown case, unknown job *)
      ignore (submit t ~job:"dup" ~case:"tiny" ~seed:9 ());
      Alcotest.(check string) "duplicate id rejected" "validation"
        (error_kind (parse (submit t ~job:"dup" ~case:"tiny" ~seed:9 ())));
      Alcotest.(check string) "unknown case rejected" "validation"
        (error_kind (parse (submit t ~job:"x" ~case:"nope" ~seed:1 ())));
      Alcotest.(check string) "unknown job" "unknown_job"
        (error_kind (parse (result t ~job:"ghost")));
      (* protocol hardening is shared with the in-process service *)
      Alcotest.(check bool) "blank line ignored" true
        (Supervisor.handle_line t "   " = None);
      Alcotest.(check string) "garbage is parse_error" "parse_error"
        (error_kind (parse (handle t "{not json")));
      Alcotest.(check string) "oversized line is parse_error" "parse_error"
        (error_kind
           (parse (handle t (String.make (Service.max_line_bytes + 1) 'x'))));
      let stats = parse (handle t {|{"op":"stats"}|}) in
      Alcotest.(check int) "supervisor reports both shards" 2
        (supervisor_counter "shards" stats);
      Alcotest.(check int) "no crash yet" 0
        (supervisor_counter "crash_exits" stats + supervisor_counter "crash_signals" stats))

(* --------------------------------------------------------------- *)
(* Crash: kill -9 one shard mid-load                                *)
(* --------------------------------------------------------------- *)

let test_crash_loses_no_jobs () =
  let n = 40 in
  let t = make () in
  Fun.protect
    ~finally:(fun () -> Supervisor.shutdown t)
    (fun () ->
      for i = 1 to n do
        let ack =
          parse (submit t ~job:(Printf.sprintf "c%d" i) ~case:"small" ~seed:i ())
        in
        Alcotest.(check bool) "submit accepted" true (ok_field ack)
      done;
      (match Supervisor.pids t with
      | pid :: _ -> Unix.kill pid Sys.sigkill
      | [] -> Alcotest.fail "no running shard to kill");
      (* every accepted job must reach exactly one terminal; with a
         single kill, every orphan retries onto the survivor and
         completes — byte-identical to an undisturbed run *)
      let completed = ref 0 and crashed = ref 0 in
      for i = 1 to n do
        let r = parse (result t ~job:(Printf.sprintf "c%d" i)) in
        if ok_field r then begin
          Alcotest.(check string) "terminal state" "completed"
            (str_field "state" r);
          incr completed
        end
        else if error_kind r = "shard_crash" then incr crashed
        else
          Alcotest.fail
            (Printf.sprintf "job c%d: unexpected terminal kind %s" i
               (error_kind r))
      done;
      Alcotest.(check int) "no job lost" n (!completed + !crashed);
      Alcotest.(check int) "single kill: every orphan retried once" n
        !completed;
      let stats =
        await_stats t ~timeout:15.0 (fun j ->
            supervisor_counter "crash_signals" j >= 1
            && supervisor_counter "restarts" j >= 1)
      in
      Alcotest.(check bool) "restart counted" true
        (supervisor_counter "restarts" stats >= 1);
      (* the fleet is serving again after the restart *)
      ignore (submit t ~job:"after" ~case:"tiny" ~seed:99 ());
      let r = parse (result t ~job:"after") in
      Alcotest.(check bool) "fleet serves after restart" true (ok_field r))

(* --------------------------------------------------------------- *)
(* Deadline shedding                                                *)
(* --------------------------------------------------------------- *)

let test_shed () =
  (* one shard: every job routes to it, so its p95 window fills
     deterministically *)
  let t = make ~shards:1 () in
  Fun.protect
    ~finally:(fun () -> Supervisor.shutdown t)
    (fun () ->
      for i = 1 to 10 do
        let job = Printf.sprintf "w%d" i in
        ignore (submit t ~job ~case:"tiny" ~seed:i ());
        ignore (result t ~job)
      done;
      let shed =
        parse (submit t ~job:"late" ~case:"tiny" ~seed:77 ~deadline:1e-9 ())
      in
      Alcotest.(check string) "impossible deadline shed at dispatch" "shed"
        (error_kind shed);
      let stats = parse (handle t {|{"op":"stats"}|}) in
      Alcotest.(check bool) "shed counted" true
        (supervisor_counter "shed" stats >= 1);
      (* a feasible deadline still dispatches *)
      let ok = parse (submit t ~job:"fine" ~case:"tiny" ~seed:78 ~deadline:60.0 ()) in
      Alcotest.(check bool) "feasible deadline accepted" true (ok_field ok);
      ignore (result t ~job:"fine"))

(* --------------------------------------------------------------- *)
(* Transport framing                                                *)
(* --------------------------------------------------------------- *)

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let read_line_fd fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ ->
        if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
  in
  go ()

let expect_line fd what =
  match read_line_fd fd with
  | Some l -> l
  | None -> Alcotest.fail (Printf.sprintf "unexpected EOF reading %s" what)

let test_transport () =
  let path = Filename.temp_file "operon_transport" ".sock" in
  Sys.remove path;
  let listener = Transport.unix_listener path in
  let tr =
    Transport.start ~read_timeout:1.0 ~max_line:256
      ~listeners:[ listener ]
      ~handle:(fun line -> if line = "" then None else Some ("ack:" ^ line))
      ()
  in
  Fun.protect
    ~finally:(fun () -> Transport.stop tr)
    (fun () ->
      Alcotest.(check (list string)) "listener name" [ "unix:" ^ path ]
        (Transport.names tr);
      (* round trip over the socket *)
      let fd = connect_unix path in
      ignore (Unix.write_substring fd "hello\n" 0 6);
      Alcotest.(check string) "framed reply" "ack:hello"
        (expect_line fd "reply");
      (* a second request on the same connection *)
      ignore (Unix.write_substring fd "again\n" 0 6);
      Alcotest.(check string) "second reply" "ack:again"
        (expect_line fd "second reply");
      Unix.close fd;
      (* an unterminated line over max_line is answered with one
         parse_error envelope, then the connection closes *)
      let fd = connect_unix path in
      let big = String.make 300 'x' in
      ignore (Unix.write_substring fd big 0 (String.length big));
      let j = parse (expect_line fd "oversize envelope") in
      Alcotest.(check string) "oversize is parse_error" "parse_error"
        (error_kind j);
      Alcotest.(check bool) "connection closed after oversize" true
        (read_line_fd fd = None);
      Unix.close fd;
      (* an idle connection is answered with a timeout envelope *)
      let fd = connect_unix path in
      let j = parse (expect_line fd "timeout envelope") in
      Alcotest.(check string) "idle connection times out" "timeout"
        (error_kind j);
      Alcotest.(check bool) "connection closed after timeout" true
        (read_line_fd fd = None);
      Unix.close fd);
  if Sys.file_exists path then
    Alcotest.fail "stop did not unlink the unix socket"

let test_transport_tcp () =
  let listener = Transport.tcp_listener 0 in
  let port =
    match Transport.bound_port listener with
    | Some p -> p
    | None -> Alcotest.fail "tcp listener has no bound port"
  in
  let tr =
    Transport.start
      ~listeners:[ listener ]
      ~handle:(fun line -> Some ("tcp:" ^ line))
      ()
  in
  Fun.protect
    ~finally:(fun () -> Transport.stop tr)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring fd "ping\n" 0 5);
      Alcotest.(check string) "tcp round trip" "tcp:ping"
        (expect_line fd "tcp reply");
      Unix.close fd)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "supervisor"
    [ ( "transport",
        [ Alcotest.test_case "unix framing" `Quick test_transport;
          Alcotest.test_case "tcp round trip" `Quick test_transport_tcp ] );
      ( "supervisor",
        [ Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "kill -9 loses no jobs" `Quick
            test_crash_loses_no_jobs;
          Alcotest.test_case "deadline shed" `Quick test_shed ] ) ]
