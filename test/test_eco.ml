(* Incremental ECO re-synthesis: design-diff classification (QCheck),
   byte parity of ECO re-preparation against cold runs, warm-started
   selection parity, registry LRU capacity, the resubmit protocol op,
   and the incremental track-retirement rewrite of Assign. *)

open Operon_optical
open Operon
open Operon_benchgen
open Operon_service

let params = Params.default

let config ?(jobs = 1) () = Flow.Config.make ~jobs params

let export flow = Export.flow_to_json ~timings:false flow

(* ------------------------------------------------------------------ *)
(* Design_diff                                                        *)
(* ------------------------------------------------------------------ *)

let diff_against (prev : Flow.prepared) (cur : Flow.prepared) =
  Design_diff.diff ~neighbors:prev.Flow.p_ctx.Selection.neighbors
    prev.Flow.p_hnets cur.Flow.p_hnets

let test_identity_diff () =
  List.iter
    (fun design ->
      let prev = Flow.prepare (config ()) design in
      let d = diff_against prev prev in
      Alcotest.(check bool) "compatible" true d.Design_diff.compatible;
      Alcotest.(check int) "closure empty" 0 (Design_diff.closure_size d);
      Array.iter
        (fun s ->
          Alcotest.(check string) "all clean" "clean"
            (Design_diff.status_name s))
        d.Design_diff.status)
    [ Cases.tiny (); Cases.small () ]

(* The diff invariants every mutation must satisfy: changed content keys
   are Dirty, the previous interaction neighbourhood of every non-clean
   net is inside the recomputation closure, and the classification is
   independent of the preparing executor's worker count. *)
let prop_diff_classification =
  let design = Cases.small () in
  let prev1 = Flow.prepare (config ~jobs:1 ()) design in
  let prev4 = Flow.prepare (config ~jobs:4 ()) design in
  QCheck.Test.make ~name:"mutated nets dirty, neighbours in closure" ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 1 3))
    (fun (seed, r) ->
      let ratio = float_of_int r /. 10.0 in
      let revised = Mutate.design ~ratio ~seed design in
      let cur1 = Flow.prepare (config ~jobs:1 ()) revised in
      let cur4 = Flow.prepare (config ~jobs:4 ()) revised in
      let d1 = diff_against prev1 cur1 in
      let d4 = diff_against prev4 cur4 in
      if not d1.Design_diff.compatible then
        QCheck.Test.fail_report "diff incompatible on same-shape designs";
      (* jobs-independence: the classification is bit-identical. *)
      if d1.Design_diff.status <> d4.Design_diff.status then
        QCheck.Test.fail_report "diff depends on the worker count";
      let n = Array.length d1.Design_diff.status in
      for i = 0 to n - 1 do
        let key_changed =
          Design_diff.hnet_key prev1.Flow.p_hnets.(i)
          <> Design_diff.hnet_key cur1.Flow.p_hnets.(i)
        in
        (match (key_changed, d1.Design_diff.status.(i)) with
         | true, Design_diff.Dirty -> ()
         | true, s ->
             QCheck.Test.fail_reportf
               "net %d changed content but is %s, not dirty" i
               (Design_diff.status_name s)
         | false, Design_diff.Dirty ->
             QCheck.Test.fail_reportf "net %d unchanged but marked dirty" i
         | false, _ -> ());
        (* closure = everything not clean *)
        let expect_in_closure =
          d1.Design_diff.status.(i) <> Design_diff.Clean
        in
        if d1.Design_diff.closure.(i) <> expect_in_closure then
          QCheck.Test.fail_reportf "closure mismatch on net %d" i;
        (* the previous neighbourhood of a dirty net is interaction-dirty *)
        if d1.Design_diff.status.(i) = Design_diff.Dirty then
          Array.iter
            (fun j ->
              if not d1.Design_diff.closure.(j) then
                QCheck.Test.fail_reportf
                  "net %d neighbours dirty net %d but is outside the closure"
                  j i)
            prev1.Flow.p_ctx.Selection.neighbors.(i)
      done;
      true)

(* ------------------------------------------------------------------ *)
(* ECO re-preparation byte parity                                     *)
(* ------------------------------------------------------------------ *)

let test_eco_byte_parity () =
  List.iter
    (fun (name, design) ->
      let cfg = config () in
      let prev = Flow.prepare cfg design in
      let revised = Mutate.design ~ratio:0.1 ~seed:7 design in
      let cold = Flow.select_prepared cfg (Flow.prepare cfg revised) in
      let eco_p = Flow.prepare_eco ~prev cfg revised in
      let eco = Flow.select_prepared cfg eco_p in
      Alcotest.(check string)
        (name ^ ": eco export byte-identical to cold")
        (export cold) (export eco);
      let e =
        match eco_p.Flow.p_eco with
        | Some e -> e
        | None -> Alcotest.fail "prepare_eco returned no eco stats"
      in
      Alcotest.(check bool) (name ^ ": incremental path taken") false
        e.Flow.cold_fallback;
      Alcotest.(check bool)
        (name ^ ": recomputation bounded by the dirty closure") true
        (e.Flow.nets_recomputed <= e.Flow.dirty_closure);
      Alcotest.(check int)
        (name ^ ": reused + recomputed covers every net")
        (Array.length eco_p.Flow.p_hnets)
        (e.Flow.nets_reused + e.Flow.nets_recomputed))
    [ ("tiny", Cases.tiny ()); ("small", Cases.small ()) ]

let test_eco_cold_fallback () =
  let design = Cases.tiny () in
  let cfg = config () in
  let prev = Flow.prepare cfg design in
  let revised = Mutate.design ~ratio:0.2 ~seed:3 design in
  (* A preparation-relevant config change cannot reuse anything. *)
  let cfg2 = Flow.Config.make ~max_cands_per_net:6 params in
  let eco_p = Flow.prepare_eco ~prev cfg2 revised in
  (match eco_p.Flow.p_eco with
   | Some e ->
       Alcotest.(check bool) "fell back to cold" true e.Flow.cold_fallback;
       Alcotest.(check int) "recomputed everything"
         (Array.length eco_p.Flow.p_hnets)
         e.Flow.nets_recomputed
   | None -> Alcotest.fail "expected eco stats on the fallback path");
  let cold = Flow.select_prepared cfg2 (Flow.prepare cfg2 revised) in
  let eco = Flow.select_prepared cfg2 eco_p in
  Alcotest.(check string) "fallback still byte-identical" (export cold)
    (export eco)

(* ------------------------------------------------------------------ *)
(* Warm-started selection parity                                      *)
(* ------------------------------------------------------------------ *)

let warm_cases () =
  let base = [ ("tiny", Cases.tiny ()); ("small", Cases.small ()) ] in
  match Sys.getenv_opt "OPERON_HEAVY_TESTS" with
  | Some ("1" | "true") ->
      base
      @ List.filter_map
          (fun name ->
            Option.map
              (fun spec -> (name, Gen.generate spec))
              (Cases.by_name name))
          [ "I1"; "I2"; "I3" ]
  | _ -> base

let test_warm_start_parity () =
  List.iter
    (fun (name, design) ->
      let cfg = config () in
      let prev = Flow.prepare cfg design in
      let initial =
        (Flow.select_prepared cfg prev).Flow.choice
      in
      let revised = Mutate.design ~ratio:0.15 ~seed:11 design in
      let p = Flow.prepare_eco ~prev cfg revised in
      let ctx = p.Flow.p_ctx in
      let lr_cold = Lr_select.select ctx in
      let lr_warm = Lr_select.select ~initial ctx in
      Alcotest.(check (array int))
        (name ^ ": LR warm choice = cold")
        lr_cold.Lr_select.choice lr_warm.Lr_select.choice;
      Alcotest.(check (float 0.0))
        (name ^ ": LR warm power = cold")
        lr_cold.Lr_select.power lr_warm.Lr_select.power;
      let ilp_cold = Ilp_select.select ~budget_seconds:60.0 ctx in
      let ilp_warm = Ilp_select.select ~budget_seconds:60.0 ~initial ctx in
      Alcotest.(check (array int))
        (name ^ ": ILP warm choice = cold")
        ilp_cold.Ilp_select.choice ilp_warm.Ilp_select.choice;
      Alcotest.(check (float 0.0))
        (name ^ ": ILP warm power = cold")
        ilp_cold.Ilp_select.power ilp_warm.Ilp_select.power;
      (* A nonsense warm start must sanitize away, not crash or drift. *)
      let garbage = Array.make (Array.length initial) 9999 in
      let lr_garbage = Lr_select.select ~initial:garbage ctx in
      Alcotest.(check (array int))
        (name ^ ": garbage warm start sanitized")
        lr_cold.Lr_select.choice lr_garbage.Lr_select.choice)
    (warm_cases ())

(* ------------------------------------------------------------------ *)
(* Registry LRU                                                       *)
(* ------------------------------------------------------------------ *)

let test_registry_lru () =
  let reg = Registry.create ~capacity:2 () in
  let cfg = config () in
  let designs = List.map (fun s -> Cases.tiny ~seed:s ()) [ 1; 2; 3 ] in
  List.iter
    (fun d -> ignore (Registry.find_or_prepare reg ~config:cfg d))
    designs;
  let s = Registry.stats reg in
  Alcotest.(check int) "capacity recorded" 2 (Option.get s.Registry.capacity);
  Alcotest.(check bool) "evicted at least once" true (s.Registry.evictions >= 1);
  Alcotest.(check bool) "entries within capacity" true (s.Registry.entries <= 2);
  (* The newest design survived; the oldest was the LRU victim. *)
  Alcotest.(check bool) "newest still prepared" true
    (Registry.find_prepared reg ~config:cfg (List.nth designs 2) <> None);
  Alcotest.(check bool) "oldest evicted" true
    (Registry.find_prepared reg ~config:cfg (List.nth designs 0) = None)

(* ------------------------------------------------------------------ *)
(* Resubmit over the NDJSON protocol                                  *)
(* ------------------------------------------------------------------ *)

let resolve ~case ~seed =
  match String.lowercase_ascii case with
  | "tiny" -> Some (Cases.tiny ?seed ())
  | "small" -> Some (Cases.small ?seed ())
  | _ -> None

let handle svc line =
  match Service.handle_line svc line with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no response to %s" line)

let parse line =
  match Protocol.Json.parse line with
  | Ok j -> j
  | Error (_, e) -> Alcotest.fail (Printf.sprintf "bad response %s: %s" line e)

let ok_field j =
  match Protocol.Json.member "ok" j with
  | Some (Protocol.Json.Bool b) -> b
  | _ -> Alcotest.fail "missing ok field"

let error_kind j =
  match Protocol.Json.member "error" j with
  | Some e -> (
      match Protocol.Json.member "kind" e with
      | Some (Protocol.Json.Str s) -> s
      | _ -> Alcotest.fail "missing error.kind")
  | None -> Alcotest.fail "expected an error envelope"

let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else go (i + 1)
  in
  go 0

let test_resubmit () =
  let svc = Service.create ~workers:1 ~capacity:8 ~resolve ~params () in
  Service.start svc;
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let r1 = parse (handle svc {|{"op":"submit","case":"tiny","job":"a"}|}) in
      Alcotest.(check bool) "submit accepted" true (ok_field r1);
      Alcotest.(check bool) "parent completed" true
        (ok_field (parse (handle svc {|{"op":"result","job":"a"}|})));
      let line =
        handle svc
          {|{"op":"resubmit","parent_job":"a","job":"b","mutate":{"ratio":0.5,"seed":3},"warm":true}|}
      in
      Alcotest.(check bool) "resubmit accepted" true (ok_field (parse line));
      let result = handle svc {|{"op":"result","job":"b"}|} in
      let renv = parse result in
      Alcotest.(check bool) "resubmit job completed" true (ok_field renv);
      (* The envelope carries the eco stats... *)
      (match Protocol.Json.member "eco" renv with
       | Some eco -> (
           match Protocol.Json.member "cold_fallback" eco with
           | Some (Protocol.Json.Bool false) -> ()
           | _ -> Alcotest.fail "expected eco.cold_fallback = false")
       | None -> Alcotest.fail "expected an eco object in the result envelope");
      (* ...while the result document is byte-identical to a cold run of
         the same mutated design under the service's configuration. *)
      let served_cfg = Flow.Config.make ~mode:Flow.Lr ~ilp_budget:60.0 params in
      let revised = Mutate.design ~ratio:0.5 ~seed:3 (Cases.tiny ()) in
      let expected = export (Flow.synthesize served_cfg revised) in
      (match find_sub result expected with
       | Some _ -> ()
       | None ->
           Alcotest.fail "served resubmit result differs from the cold run");
      (* Validation corners. *)
      Alcotest.(check string) "unknown parent" "unknown_job"
        (error_kind
           (parse (handle svc {|{"op":"resubmit","parent_job":"nope"}|})));
      Alcotest.(check string) "bad mutate ratio" "validation"
        (error_kind
           (parse
              (handle svc
                 {|{"op":"resubmit","parent_job":"a","mutate":{"ratio":0.0}}|}))))

let test_resubmit_requires_completed_parent () =
  (* Workers never started: the parent stays queued, so resubmitting
     against it is a validation error, not a hang. *)
  let svc = Service.create ~workers:1 ~capacity:8 ~resolve ~params () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      Alcotest.(check bool) "parent queued" true
        (ok_field (parse (handle svc {|{"op":"submit","case":"tiny","job":"a"}|})));
      Alcotest.(check string) "parent not completed" "validation"
        (error_kind (parse (handle svc {|{"op":"resubmit","parent_job":"a"}|}))))

(* ------------------------------------------------------------------ *)
(* Incremental track retirement (Assign.survivors)                    *)
(* ------------------------------------------------------------------ *)

(* The pre-rewrite reference: retire lightest-first, rebuilding the
   feasibility max-flow from scratch for every trial subset. *)
let reference_survivors params conns orient all =
  let mine = ref [] in
  for i = Array.length all - 1 downto 0 do
    if all.(i).Wdm.orient = orient then mine := i :: !mine
  done;
  let ordered =
    List.sort (fun a b -> compare all.(a).Wdm.used all.(b).Wdm.used) !mine
  in
  List.fold_left
    (fun keep i ->
      let without = List.filter (fun j -> j <> i) keep in
      let live = List.map (fun j -> all.(j)) without in
      if Assign.feasible params conns orient (Array.of_list live) then without
      else keep)
    ordered ordered

let test_survivors_equivalence () =
  List.iter
    (fun (name, design) ->
      let flow = Flow.synthesize (config ()) design in
      let conns = flow.Flow.placement.Wdm_place.conns in
      let all = flow.Flow.placement.Wdm_place.tracks in
      let p = flow.Flow.ctx.Selection.params in
      List.iter
        (fun orient ->
          Alcotest.(check (list int))
            (name ^ ": incremental = rebuild-per-subset")
            (reference_survivors p conns orient all)
            (Assign.survivors p conns orient all))
        [ Wdm.Horizontal; Wdm.Vertical ])
    [ ("tiny", Cases.tiny ()); ("small", Cases.small ()) ]

let () =
  Alcotest.run "eco"
    [ ( "design-diff",
        [ Alcotest.test_case "identity diff all clean" `Quick
            test_identity_diff;
          QCheck_alcotest.to_alcotest prop_diff_classification ] );
      ( "parity",
        [ Alcotest.test_case "eco byte parity" `Quick test_eco_byte_parity;
          Alcotest.test_case "cold fallback on config change" `Quick
            test_eco_cold_fallback;
          Alcotest.test_case "warm start parity" `Quick test_warm_start_parity
        ] );
      ( "registry",
        [ Alcotest.test_case "LRU capacity + evictions" `Quick
            test_registry_lru ] );
      ( "resubmit",
        [ Alcotest.test_case "resubmit end-to-end" `Quick test_resubmit;
          Alcotest.test_case "parent must be completed" `Quick
            test_resubmit_requires_completed_parent ] );
      ( "assign",
        [ Alcotest.test_case "incremental survivors" `Quick
            test_survivors_equivalence ] ) ]
