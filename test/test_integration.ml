(* End-to-end integration tests: the full OPERON flow on small designs,
   cross-engine consistency, the headline power ordering of Table 1
   (OPERON <= GLOW-feasible <= electrical shape), WDM stage integration
   and hotspot maps. *)

open Operon_optical
open Operon
open Operon_benchgen

let params = Params.default

let run_small ?(mode = Flow.Lr) ?(seed = 7) () =
  let design = Cases.small ~seed () in
  Flow.synthesize (Flow.Config.make ~mode ~ilp_budget:20.0 params) design

let test_flow_runs_lr () =
  let r = run_small () in
  Alcotest.(check bool) "some hyper nets" true (Array.length r.Flow.hnets > 0);
  Alcotest.(check bool) "lr result present" true (r.Flow.lr <> None);
  Alcotest.(check bool) "power positive" true (r.Flow.power > 0.0)

let test_flow_runs_ilp () =
  let r = run_small ~mode:Flow.Ilp () in
  Alcotest.(check bool) "ilp result present" true (r.Flow.ilp <> None)

let test_selection_feasible () =
  let r = run_small () in
  Alcotest.(check bool) "lr selection feasible" true
    (Selection.feasible r.Flow.ctx r.Flow.choice)

let test_ilp_not_worse_than_lr () =
  let design = Cases.small ~seed:3 () in
  let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let lr = Flow.select_with (Flow.Config.default params) design hnets ctx in
  let ilp = Flow.select_with (Flow.Config.make ~mode:Flow.Ilp ~ilp_budget:30.0 params) design hnets ctx in
  Alcotest.(check bool)
    (Printf.sprintf "ilp %.2f <= lr %.2f" ilp.Flow.power lr.Flow.power)
    true
    (ilp.Flow.power <= lr.Flow.power +. 1e-6)

let test_power_ordering_table1_shape () =
  (* The headline Table 1 ordering: OPERON <= all-electrical always, and
     OPERON <= GLOW whenever GLOW's splitting-blind acceptance happens to
     be genuinely loss-feasible. (GLOW can report a lower number by
     accepting physically undetectable routes — the blind spot the paper
     calls out; comparing against an invalid configuration would be
     meaningless, so those seeds only check the electrical bound.) *)
  let checked_glow = ref 0 in
  List.iter
    (fun seed ->
      let design = Cases.small ~seed () in
      let r = Flow.synthesize (Flow.Config.default params) design in
      let adjusted = r.Flow.ctx.Selection.params in
      let electrical = Baseline.electrical_power adjusted design in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: operon %.1f <= electrical %.1f" seed r.Flow.power
           electrical)
        true
        (r.Flow.power <= electrical +. 1e-6);
      let glow = Baseline.glow adjusted r.Flow.hnets in
      if Selection.feasible glow.Baseline.ctx glow.Baseline.choice then begin
        incr checked_glow;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: operon %.1f <= feasible glow %.1f" seed
             r.Flow.power glow.Baseline.power)
          true
          (r.Flow.power <= glow.Baseline.power +. 1e-6)
      end)
    [ 2; 5; 8; 13; 21 ];
  Alcotest.(check bool) "at least one feasible-GLOW comparison ran" true
    (!checked_glow >= 1)

let test_operon_upper_bounded_by_hnet_electrical () =
  (* The all-electrical hyper-net selection is a feasible point of the
     same program, so the selector can never exceed it. *)
  let r = run_small () in
  let all_e = Selection.power r.Flow.ctx (Selection.all_electrical r.Flow.ctx) in
  Alcotest.(check bool) "bounded" true (r.Flow.power <= all_e +. 1e-6)

let test_wdm_stage_consistent () =
  let r = run_small () in
  let conns = r.Flow.placement.Wdm_place.conns in
  let a = r.Flow.assignment in
  Alcotest.(check bool) "no track increase" true
    (a.Assign.final_count <= a.Assign.initial_count);
  let total_bits = Array.fold_left (fun acc c -> acc + c.Operon_optical.Wdm.bits) 0 conns in
  let carried =
    Array.fold_left
      (fun acc flows -> List.fold_left (fun x (_, b) -> x + b) acc flows)
      0 a.Assign.flows
  in
  Alcotest.(check int) "all optical bits carried" total_bits carried

let test_hotspot_maps () =
  let design = Cases.small ~seed:5 () in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let maps =
    Hotspot.of_selection ~die:design.Signal.die r.Flow.ctx r.Flow.choice
  in
  (* optical mass = sum of conversion powers of selected candidates *)
  let expected_optical =
    Array.to_list r.Flow.choice
    |> List.mapi (fun i j -> r.Flow.ctx.Selection.cands.(i).(j).Candidate.conversion_power)
    |> List.fold_left ( +. ) 0.0
  in
  Alcotest.(check bool) "optical mass matches" true
    (Float.abs (Operon_geom.Gridmap.total maps.Hotspot.optical -. expected_optical) < 1e-6);
  Alcotest.(check bool) "electrical map non-negative" true
    (Operon_geom.Gridmap.total maps.Hotspot.electrical >= 0.0);
  let s = Hotspot.summary maps in
  Alcotest.(check bool) "summary text" true (String.length s > 10)

let test_hotspot_electrical_of_design () =
  let design = Cases.tiny () in
  let grid = Hotspot.electrical_of_design params design in
  let expected = Baseline.electrical_power params design in
  Alcotest.(check bool) "baseline map mass = baseline power" true
    (Float.abs (Operon_geom.Gridmap.total grid -. expected) < 1e-6)

let test_flow_deterministic () =
  let a = run_small ~seed:9 () in
  let b = run_small ~seed:9 () in
  Alcotest.(check (float 1e-9)) "same power" a.Flow.power b.Flow.power;
  Alcotest.(check int) "same wdm count" a.Flow.assignment.Assign.final_count
    b.Flow.assignment.Assign.final_count

let test_glow_vs_operon_hotspot_story () =
  (* Fig. 9's qualitative claims on a shrunken I1 floorplan: the optical
     conversion maps of GLOW and OPERON look alike (similar EO/OE
     deployment), OPERON's power never exceeds a feasible GLOW's, and
     OPERON's electrical layer stays near-cold wherever GLOW's is cold.
     The full-size contrast (hot GLOW copper vs relieved OPERON copper on
     I2) is produced by `bench/main.exe fig9` and recorded in
     EXPERIMENTS.md. *)
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let design = Gen.generate { Cases.i1 with Gen.n_groups = 60; seed } in
      let r = Flow.synthesize (Flow.Config.default params) design in
      let adjusted = r.Flow.ctx.Selection.params in
      let glow = Baseline.glow adjusted r.Flow.hnets in
      if Selection.feasible glow.Baseline.ctx glow.Baseline.choice then begin
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: operon %.1f <= glow %.1f" seed r.Flow.power
             glow.Baseline.power)
          true
          (r.Flow.power <= glow.Baseline.power +. 1e-6);
        let operon_maps =
          Hotspot.of_selection ~die:design.Signal.die r.Flow.ctx r.Flow.choice
        in
        let glow_maps =
          Hotspot.of_selection ~die:design.Signal.die glow.Baseline.ctx
            glow.Baseline.choice
        in
        let operon_e = Operon_geom.Gridmap.total operon_maps.Hotspot.electrical in
        let glow_e = Operon_geom.Gridmap.total glow_maps.Hotspot.electrical in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: operon elec %.2f near-cold vs glow elec %.2f" seed
             operon_e glow_e)
          true
          (operon_e <= glow_e +. (0.05 *. r.Flow.power));
        (* similar optical deployment (paper: Fig. 9a vs 9c) *)
        let corr =
          Operon_geom.Gridmap.correlation operon_maps.Hotspot.optical
            glow_maps.Hotspot.optical
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: optical maps correlate (%.2f)" seed corr)
          true (corr > 0.5)
      end)
    [ 2; 5; 8; 11; 13; 21 ];
  Alcotest.(check bool) "at least one comparison ran" true (!checked >= 1)

let test_trivial_design () =
  (* A single 2-bit local net exercises the trivial paths. *)
  let die = Operon_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let b =
    Signal.bit ~source:(Operon_geom.Point.make 0.1 0.1)
      ~sinks:[| Operon_geom.Point.make 0.9 0.9 |]
  in
  let design = Signal.design ~die ~groups:[| Signal.group ~name:"one" ~bits:[| b |] |] in
  let r = Flow.synthesize (Flow.Config.make ~seed:1 params) design in
  Alcotest.(check int) "one hnet" 1 (Array.length r.Flow.hnets);
  Alcotest.(check bool) "feasible" true (Selection.feasible r.Flow.ctx r.Flow.choice)

let prop_flow_feasible_many_seeds =
  QCheck.Test.make ~name:"flow feasible across seeds" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let design = Cases.tiny ~seed () in
      let r = Flow.synthesize (Flow.Config.make ~seed params) design in
      Selection.feasible r.Flow.ctx r.Flow.choice
      && r.Flow.assignment.Assign.final_count
         <= r.Flow.assignment.Assign.initial_count)

let () =
  Alcotest.run "integration"
    [ ( "flow",
        [ Alcotest.test_case "runs lr" `Quick test_flow_runs_lr;
          Alcotest.test_case "runs ilp" `Slow test_flow_runs_ilp;
          Alcotest.test_case "selection feasible" `Quick test_selection_feasible;
          Alcotest.test_case "ilp <= lr" `Slow test_ilp_not_worse_than_lr;
          Alcotest.test_case "table1 power ordering" `Quick test_power_ordering_table1_shape;
          Alcotest.test_case "bounded by electrical" `Quick test_operon_upper_bounded_by_hnet_electrical;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "trivial design" `Quick test_trivial_design;
          QCheck_alcotest.to_alcotest prop_flow_feasible_many_seeds ] );
      ( "wdm",
        [ Alcotest.test_case "stage consistent" `Quick test_wdm_stage_consistent ] );
      ( "hotspot",
        [ Alcotest.test_case "maps" `Quick test_hotspot_maps;
          Alcotest.test_case "electrical of design" `Quick test_hotspot_electrical_of_design;
          Alcotest.test_case "fig9 story" `Quick test_glow_vs_operon_hotspot_story ] ) ]
