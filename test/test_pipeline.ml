(* Staged pipeline engine: Domain-pool executor semantics (order
   preservation, exception propagation) and the headline determinism
   guarantee — a parallel run is bit-identical to a sequential one. *)

open Operon_util
open Operon_optical
open Operon
open Operon_benchgen
open Operon_engine

(* ------------------------------------------------------------------ *)
(* Executor unit tests                                                *)
(* ------------------------------------------------------------------ *)

let test_executor_jobs () =
  Alcotest.(check int) "sequential" 1 (Executor.jobs Executor.sequential);
  Alcotest.(check int) "jobs<=1 degrades" 1 (Executor.jobs (Executor.create ~jobs:1));
  Alcotest.(check int) "pool" 4 (Executor.jobs (Executor.create ~jobs:4));
  Alcotest.(check bool) "default jobs positive" true (Executor.default_jobs () > 0)

let test_executor_order () =
  let exec = Executor.create ~jobs:4 in
  let xs = Array.init 200 (fun i -> i) in
  (* Uneven task sizes so domains genuinely interleave. *)
  let f i =
    if i mod 7 = 0 then Unix.sleepf 0.002;
    (i * i) + 1
  in
  Alcotest.(check (array int)) "matches sequential map" (Array.map f xs)
    (Executor.parallel_map exec f xs)

let test_executor_mapi () =
  let exec = Executor.create ~jobs:3 in
  let xs = Array.init 50 (fun i -> 2 * i) in
  Alcotest.(check (array int)) "index-aware"
    (Array.mapi (fun i x -> i + x) xs)
    (Executor.parallel_mapi exec (fun i x -> i + x) xs)

let test_executor_empty_and_singleton () =
  let exec = Executor.create ~jobs:8 in
  Alcotest.(check (array int)) "empty" [||]
    (Executor.parallel_map exec (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |]
    (Executor.parallel_map exec (fun x -> x * 3) [| 3 |]);
  Alcotest.(check (array int)) "more jobs than work" [| 2; 4 |]
    (Executor.parallel_map exec (fun x -> 2 * x) [| 1; 2 |])

let test_executor_exception_propagates () =
  let exec = Executor.create ~jobs:4 in
  let xs = Array.init 64 (fun i -> i) in
  Alcotest.check_raises "task failure re-raised" (Failure "boom at 37")
    (fun () ->
      ignore
        (Executor.parallel_map exec
           (fun i -> if i = 37 then failwith "boom at 37" else i)
           xs))

let test_executor_first_exception_wins () =
  (* Several tasks fail; the lowest input index must be reported no
     matter which domain hit its failure first. *)
  let exec = Executor.create ~jobs:4 in
  let xs = Array.init 64 (fun i -> i) in
  for _ = 1 to 5 do
    Alcotest.check_raises "lowest index deterministic" (Failure "fail 11")
      (fun () ->
        ignore
          (Executor.parallel_map exec
             (fun i ->
               if i = 11 then failwith "fail 11"
               else if i >= 40 then failwith (Printf.sprintf "fail %d" i)
               else i)
             xs))
  done

exception Deep_failure of int

(* Raised from a named helper so the surviving backtrace has a frame to
   point at. [@inline never] keeps flambda from erasing it. *)
let[@inline never] raise_deep i = raise (Deep_failure i)

let test_executor_backtrace_survives () =
  (* The worker captures the raw backtrace at the raise site; the
     coordinator must re-raise with that backtrace, not a fresh one. *)
  let was_recording = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was_recording)
    (fun () ->
      let exec = Executor.create ~jobs:4 in
      let xs = Array.init 48 (fun i -> i) in
      match
        Executor.parallel_mapi exec
          (fun i () -> if i = 17 then raise_deep i else i)
          (Array.map (fun _ -> ()) xs)
      with
      | _ -> Alcotest.fail "expected Deep_failure"
      | exception Deep_failure i ->
          let bt = Printexc.get_backtrace () in
          Alcotest.(check int) "failing index" 17 i;
          Alcotest.(check bool) "backtrace non-empty" true
            (String.length (String.trim bt) > 0))

let test_try_parallel_mapi_partial_failure () =
  (* Per-item results: failures land as Error at their own index while
     every other item still yields Ok — on both backends. *)
  List.iter
    (fun (name, exec) ->
      let xs = Array.init 40 (fun i -> i) in
      let results =
        Executor.try_parallel_mapi exec
          (fun i x -> if i mod 13 = 5 then raise (Deep_failure i) else 2 * x)
          xs
      in
      Alcotest.(check int) (name ^ ": length") 40 (Array.length results);
      Array.iteri
        (fun i r ->
          match r with
          | Ok y ->
              Alcotest.(check bool) (name ^ ": no Ok at failing index") true
                (i mod 13 <> 5);
              Alcotest.(check int) (name ^ ": value") (2 * i) y
          | Error (Deep_failure j, _) ->
              Alcotest.(check int) (name ^ ": error index") i j;
              Alcotest.(check bool) (name ^ ": failing index") true
                (i mod 13 = 5)
          | Error (e, _) -> raise e)
        results)
    [ ("sequential", Executor.sequential); ("pool", Executor.create ~jobs:4) ]

let test_try_parallel_mapi_all_ok () =
  let exec = Executor.create ~jobs:3 in
  let xs = Array.init 25 (fun i -> i) in
  let results = Executor.try_parallel_mapi exec (fun i x -> i + x) xs in
  Alcotest.(check (array int)) "all Ok, in order"
    (Array.map (fun x -> 2 * x) xs)
    (Array.map (function Ok y -> y | Error (e, _) -> raise e) results)

let test_executor_batch_completes_after_failure () =
  (* A failing task must not abandon the rest of the batch: every other
     task still runs (exceptions are collected, then re-raised). *)
  let exec = Executor.create ~jobs:4 in
  let ran = Array.make 32 false in
  (try
     ignore
       (Executor.parallel_mapi exec
          (fun i () ->
            ran.(i) <- true;
            if i = 5 then failwith "early")
          (Array.make 32 ()))
   with Failure _ -> ());
  Alcotest.(check bool) "all tasks ran" true (Array.for_all (fun b -> b) ran)

(* ------------------------------------------------------------------ *)
(* Instrumentation sink                                               *)
(* ------------------------------------------------------------------ *)

let test_sink_accumulates () =
  let sink = Instrument.create () in
  Instrument.add_seconds sink Instrument.Codesign 0.25;
  Instrument.add_seconds sink Instrument.Codesign 0.5;
  Instrument.incr sink Instrument.Codesign "kept" 3;
  Instrument.incr sink Instrument.Codesign "kept" 4;
  Instrument.incr sink Instrument.Select "iterations" 2;
  Alcotest.(check (float 1e-9)) "seconds accumulate" 0.75
    (Instrument.seconds sink Instrument.Codesign);
  Alcotest.(check int) "counters accumulate" 7
    (Instrument.counter sink Instrument.Codesign "kept");
  Alcotest.(check int) "absent counter is 0" 0
    (Instrument.counter sink Instrument.Wdm "anything");
  Alcotest.(check int) "two stages recorded" 2
    (List.length (Instrument.records sink));
  let merged = Instrument.create () in
  Instrument.merge ~into:merged sink;
  Instrument.merge ~into:merged sink;
  Alcotest.(check int) "merge doubles" 14
    (Instrument.counter merged Instrument.Codesign "kept")

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel flow determinism                            *)
(* ------------------------------------------------------------------ *)

let run_with exec design =
  let params = Params.default in
  Flow.synthesize (Flow.Config.make ~jobs:(Executor.jobs exec) params) design

let check_identical name design =
  let seq = run_with Executor.sequential design in
  let par = run_with (Executor.create ~jobs:4) design in
  Alcotest.(check (float 0.0)) (name ^ ": power bit-identical") seq.Flow.power
    par.Flow.power;
  Alcotest.(check (array int)) (name ^ ": choice identical") seq.Flow.choice
    par.Flow.choice;
  Alcotest.(check int) (name ^ ": initial WDMs")
    seq.Flow.assignment.Assign.initial_count par.Flow.assignment.Assign.initial_count;
  Alcotest.(check int) (name ^ ": final WDMs")
    seq.Flow.assignment.Assign.final_count par.Flow.assignment.Assign.final_count;
  Alcotest.(check (float 0.0)) (name ^ ": displacement bit-identical")
    seq.Flow.assignment.Assign.displacement_cost
    par.Flow.assignment.Assign.displacement_cost;
  Alcotest.(check bool) (name ^ ": per-connection flows identical") true
    (seq.Flow.assignment.Assign.flows = par.Flow.assignment.Assign.flows)

let test_flow_small_deterministic () =
  check_identical "small" (Cases.small ~seed:7 ())

let test_flow_tiny_deterministic () =
  check_identical "tiny" (Cases.tiny ~seed:3 ())

let test_run_ctx_traces_all_stages () =
  let design = Cases.tiny () in
  let config =
    { (Runctx.default_config Params.default) with Runctx.jobs = 2 }
  in
  let rc = Runctx.create ~seed:42 config in
  let result = Flow.run_ctx rc design in
  Alcotest.(check bool) "trace is the context sink" true (result.Flow.trace == rc.Runctx.sink);
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Instrument.stage_name stage ^ " recorded")
        true
        (List.exists
           (fun (r : Instrument.record) -> r.Instrument.stage = stage)
           (Instrument.records rc.Runctx.sink)))
    Instrument.all_stages;
  let nets, hn, _ = Processing.stats result.Flow.hnets in
  Alcotest.(check int) "nets counter" nets
    (Instrument.counter rc.Runctx.sink Instrument.Processing "nets");
  Alcotest.(check int) "hnets counter" hn
    (Instrument.counter rc.Runctx.sink Instrument.Processing "hnets");
  Alcotest.(check bool) "codesign kept >= hnets" true
    (Instrument.counter rc.Runctx.sink Instrument.Codesign "kept" >= hn)

let test_prepared_matches_run () =
  (* The staged entry point and the prepare/run_prepared split agree. *)
  let design = Cases.tiny () in
  let params = Params.default in
  let exec = Executor.create ~jobs:4 in
  let hnets, ctx = Flow.prepare_with (Flow.Config.make ~jobs:(Executor.jobs exec) params) design in
  let a = Flow.select_with (Flow.Config.default params) design hnets ctx in
  let b = run_with Executor.sequential design in
  Alcotest.(check (float 0.0)) "same power" b.Flow.power a.Flow.power;
  Alcotest.(check (array int)) "same choice" b.Flow.choice a.Flow.choice

let () =
  Alcotest.run "pipeline"
    [ ( "executor",
        [ Alcotest.test_case "jobs accessor" `Quick test_executor_jobs;
          Alcotest.test_case "order preserved" `Quick test_executor_order;
          Alcotest.test_case "mapi" `Quick test_executor_mapi;
          Alcotest.test_case "empty/singleton" `Quick test_executor_empty_and_singleton;
          Alcotest.test_case "exception propagates" `Quick
            test_executor_exception_propagates;
          Alcotest.test_case "first exception wins" `Quick
            test_executor_first_exception_wins;
          Alcotest.test_case "backtrace survives re-raise" `Quick
            test_executor_backtrace_survives;
          Alcotest.test_case "try_parallel_mapi partial failure" `Quick
            test_try_parallel_mapi_partial_failure;
          Alcotest.test_case "try_parallel_mapi all ok" `Quick
            test_try_parallel_mapi_all_ok;
          Alcotest.test_case "batch completes after failure" `Quick
            test_executor_batch_completes_after_failure ] );
      ( "instrument",
        [ Alcotest.test_case "sink accumulates" `Quick test_sink_accumulates ] );
      ( "determinism",
        [ Alcotest.test_case "small: jobs 4 = sequential" `Slow
            test_flow_small_deterministic;
          Alcotest.test_case "tiny: jobs 4 = sequential" `Quick
            test_flow_tiny_deterministic;
          Alcotest.test_case "run_ctx traces all stages" `Quick
            test_run_ctx_traces_all_stages;
          Alcotest.test_case "prepare/run_prepared agree" `Quick
            test_prepared_matches_run ] ) ]
