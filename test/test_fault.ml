(* Fault-tolerance layer: injection-spec parsing, per-net quarantine
   with bit-identical healthy nets (sequential and parallel), the
   selection fallback chain, strict fail-fast, solver budgets and the
   structured Channels capacity error. *)

open Operon_optical
open Operon
open Operon_benchgen
open Operon_engine

(* ------------------------------------------------------------------ *)
(* Injection-spec parsing                                              *)
(* ------------------------------------------------------------------ *)

let test_injection_parsing () =
  (match Fault.injection_of_string "codesign:3:injected" with
   | Ok inj ->
       Alcotest.(check bool) "stage" true (inj.Fault.inj_stage = Instrument.Codesign);
       Alcotest.(check bool) "net" true (inj.Fault.inj_net = Some 3);
       Alcotest.(check bool) "kind" true (inj.Fault.inj_kind = Fault.Injected)
   | Error msg -> Alcotest.fail msg);
  (match Fault.injection_of_string "select:*:budget" with
   | Ok inj ->
       Alcotest.(check bool) "wildcard net" true (inj.Fault.inj_net = None);
       Alcotest.(check bool) "budget kind" true (inj.Fault.inj_kind = Fault.Budget)
   | Error msg -> Alcotest.fail msg);
  let bad spec =
    match Fault.injection_of_string spec with
    | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S should not parse" spec)
    | Error msg ->
        Alcotest.(check bool) (spec ^ ": diagnostic non-empty") true
          (String.length msg > 0)
  in
  bad "nosuchstage:1:injected";
  bad "codesign:-2:injected";
  bad "codesign:x:injected";
  bad "codesign:1:nosuchkind";
  bad "codesign:1";
  bad "justonefield"

let test_injections_list_parsing () =
  (match Fault.injections_of_string "codesign:1:injected, select:*:budget" with
   | Ok [ a; b ] ->
       Alcotest.(check bool) "first" true (a.Fault.inj_stage = Instrument.Codesign);
       Alcotest.(check bool) "second" true (b.Fault.inj_stage = Instrument.Select)
   | Ok _ -> Alcotest.fail "expected two injections"
   | Error msg -> Alcotest.fail msg);
  (match Fault.injections_of_string "" with
   | Ok [] -> ()
   | _ -> Alcotest.fail "empty spec must parse to no injections");
  match Fault.injections_of_string "codesign:1:injected,bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bad spec must fail the whole list"

let test_lenient_list_parsing () =
  (* Env-var policy: keep the well-formed specs, return each bad token
     with its diagnostic (the CLI warns by name on stderr). *)
  let oks, bads =
    Fault.injections_of_string_lenient
      "select:*:budget, bogus, codesign:3:crash, wdm:droids"
  in
  (match oks with
   | [ a; b ] ->
       Alcotest.(check bool) "first kept" true
         (a.Fault.inj_stage = Instrument.Select && a.Fault.inj_kind = Fault.Budget);
       Alcotest.(check bool) "second kept" true
         (b.Fault.inj_stage = Instrument.Codesign && b.Fault.inj_net = Some 3)
   | _ -> Alcotest.fail "expected exactly the two well-formed specs kept");
  (match bads with
   | [ (t1, m1); (t2, m2) ] ->
       Alcotest.(check string) "first bad token" "bogus" t1;
       Alcotest.(check string) "second bad token" "wdm:droids" t2;
       Alcotest.(check bool) "diagnostics non-empty" true
         (String.length m1 > 0 && String.length m2 > 0)
   | _ -> Alcotest.fail "expected exactly the two malformed tokens reported");
  (* Degenerate inputs. *)
  Alcotest.(check bool) "empty string" true
    (Fault.injections_of_string_lenient "" = ([], []));
  Alcotest.(check bool) "separators only" true
    (Fault.injections_of_string_lenient " , ," = ([], []));
  match Fault.injections_of_string_lenient "allbad" with
  | [], [ ("allbad", _) ] -> ()
  | _ -> Alcotest.fail "all-bad input keeps nothing and reports the token"

let test_injection_matching () =
  let injections =
    match Fault.injections_of_string "codesign:1:injected,select:*:budget" with
    | Ok l -> l
    | Error msg -> Alcotest.fail msg
  in
  let matches stage net =
    Fault.injection_matching injections ~stage ~net <> None
  in
  Alcotest.(check bool) "codesign net 1" true
    (matches Instrument.Codesign (Some 1));
  Alcotest.(check bool) "codesign net 2" false
    (matches Instrument.Codesign (Some 2));
  Alcotest.(check bool) "wildcard matches any net" true
    (matches Instrument.Select (Some 7));
  Alcotest.(check bool) "wildcard matches no net" true
    (matches Instrument.Select None);
  Alcotest.(check bool) "unlisted stage" false
    (matches Instrument.Wdm (Some 1))

(* ------------------------------------------------------------------ *)
(* Quarantine: one injected per-net fault, healthy nets bit-identical  *)
(* ------------------------------------------------------------------ *)

let run_tiny ?(strict = false) ?(injections = "") ~jobs () =
  let design = Cases.tiny ~seed:3 () in
  let injections =
    match Fault.injections_of_string injections with
    | Ok l -> l
    | Error msg -> Alcotest.fail msg
  in
  let config =
    { (Runctx.default_config Params.default) with
      Runctx.jobs; strict; injections }
  in
  let rc = Runctx.create ~seed:42 config in
  Flow.run_ctx rc design

let test_quarantine_codesign_fault () =
  let clean = run_tiny ~jobs:1 () in
  let faulted = run_tiny ~injections:"codesign:1:injected" ~jobs:1 () in
  Alcotest.(check (array int)) "exactly net 1 quarantined" [| 1 |]
    faulted.Flow.quarantined_nets;
  Alcotest.(check int) "one fault recorded" 1 (List.length faulted.Flow.faults);
  (match faulted.Flow.faults with
   | [ f ] ->
       Alcotest.(check bool) "fault stage" true (f.Fault.stage = Instrument.Codesign);
       Alcotest.(check bool) "fault net" true (f.Fault.net = Some 1);
       Alcotest.(check bool) "fault kind" true (f.Fault.kind = Fault.Injected)
   | _ -> Alcotest.fail "expected one fault");
  (* The quarantined net carries exactly the all-electrical fallback. *)
  let cands = faulted.Flow.ctx.Selection.cands.(1) in
  Alcotest.(check int) "fallback candidate list" 1 (Array.length cands);
  Alcotest.(check bool) "fallback is pure electrical" true
    cands.(0).Candidate.pure_electrical;
  Alcotest.(check int) "fallback selected" 0 faulted.Flow.choice.(1);
  (* Every healthy net's selection is bit-identical to the clean run. *)
  Alcotest.(check int) "same net count"
    (Array.length clean.Flow.choice) (Array.length faulted.Flow.choice);
  Array.iteri
    (fun i c ->
      if i <> 1 then
        Alcotest.(check int) (Printf.sprintf "net %d choice unchanged" i) c
          faulted.Flow.choice.(i))
    clean.Flow.choice;
  (* And the degradation summary/export both report it. *)
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  let json = Export.degradation_to_json faulted in
  Alcotest.(check bool) "export has quarantined net" true
    (contains json {|"quarantined_nets":[1]|});
  Alcotest.(check bool) "export has solver path" true
    (contains json {|"solver_path":"lr"|});
  match Report.degradation_summary faulted with
  | Some summary ->
      Alcotest.(check bool) "summary mentions codesign/net1" true
        (contains summary "codesign/net1")
  | None -> Alcotest.fail "degraded run must produce a summary"

let test_quarantine_parallel_identical () =
  let seq = run_tiny ~injections:"codesign:1:injected" ~jobs:1 () in
  let par = run_tiny ~injections:"codesign:1:injected" ~jobs:4 () in
  Alcotest.(check (float 0.0)) "power bit-identical" seq.Flow.power par.Flow.power;
  Alcotest.(check (array int)) "choice identical" seq.Flow.choice par.Flow.choice;
  Alcotest.(check (array int)) "quarantine identical" seq.Flow.quarantined_nets
    par.Flow.quarantined_nets;
  Alcotest.(check int) "fault count identical" (List.length seq.Flow.faults)
    (List.length par.Flow.faults);
  Alcotest.(check bool) "flows identical" true
    (seq.Flow.assignment.Assign.flows = par.Flow.assignment.Assign.flows)

let test_baselines_fault_quarantines () =
  (* A baselines fault must carry through: the net skips the co-design DP
     entirely and lands on the electrical fallback. *)
  let faulted = run_tiny ~injections:"baselines:2:crash" ~jobs:1 () in
  Alcotest.(check (array int)) "net 2 quarantined" [| 2 |]
    faulted.Flow.quarantined_nets;
  let cands = faulted.Flow.ctx.Selection.cands.(2) in
  Alcotest.(check int) "single fallback candidate" 1 (Array.length cands);
  Alcotest.(check bool) "pure electrical" true
    cands.(0).Candidate.pure_electrical

let test_strict_fails_fast () =
  (try
     ignore (run_tiny ~strict:true ~injections:"codesign:1:injected" ~jobs:1 ());
     Alcotest.fail "strict run must raise"
   with Fault.Error f ->
     Alcotest.(check bool) "stage" true (f.Fault.stage = Instrument.Codesign);
     Alcotest.(check bool) "net" true (f.Fault.net = Some 1));
  (* Strict + parallel: the pool variant must fail too, deterministically. *)
  try
    ignore (run_tiny ~strict:true ~injections:"codesign:1:injected" ~jobs:4 ());
    Alcotest.fail "strict parallel run must raise"
  with Fault.Error f ->
    Alcotest.(check bool) "parallel stage" true (f.Fault.stage = Instrument.Codesign)

(* ------------------------------------------------------------------ *)
(* Selection fallback chain                                            *)
(* ------------------------------------------------------------------ *)

let test_select_fallback_chain_lr () =
  let r = run_tiny ~injections:"select:*:budget" ~jobs:1 () in
  Alcotest.(check string) "lr falls back to greedy" "lr->greedy" r.Flow.solver_path;
  Alcotest.(check bool) "no quarantine from select faults" true
    (Array.length r.Flow.quarantined_nets = 0);
  Alcotest.(check bool) "selection still feasible" true
    (Selection.feasible r.Flow.ctx r.Flow.choice)

let test_select_fallback_chain_ilp () =
  let design = Cases.tiny ~seed:3 () in
  let injections =
    match Fault.injections_of_string "select:*:budget" with
    | Ok l -> l
    | Error msg -> Alcotest.fail msg
  in
  let config =
    { (Runctx.default_config Params.default) with
      Runctx.mode = Runctx.Ilp; injections }
  in
  let r = Flow.run_ctx (Runctx.create ~seed:42 config) design in
  Alcotest.(check string) "ilp walks the whole chain" "ilp->lr->greedy"
    r.Flow.solver_path;
  Alcotest.(check bool) "still feasible" true
    (Selection.feasible r.Flow.ctx r.Flow.choice)

let test_clean_run_reports_nothing () =
  let r = run_tiny ~jobs:1 () in
  Alcotest.(check int) "no faults" 0 (List.length r.Flow.faults);
  Alcotest.(check int) "no quarantine" 0 (Array.length r.Flow.quarantined_nets);
  Alcotest.(check string) "direct solver path" "lr" r.Flow.solver_path;
  match Report.degradation_summary r with
  | None -> ()
  | Some s -> Alcotest.fail ("clean run produced a summary: " ^ s)

(* ------------------------------------------------------------------ *)
(* Solver budgets                                                      *)
(* ------------------------------------------------------------------ *)

let make_ctx () =
  let design = Cases.tiny ~seed:3 () in
  let _, ctx = Flow.prepare_with (Flow.Config.default Params.default) design in
  ctx

let test_lr_wallclock_budget () =
  let ctx = make_ctx () in
  (* An already-expired budget stops the subgradient loop immediately;
     the greedy + repair base selection must still be feasible. *)
  let r = Lr_select.select ~budget_seconds:1e-9 ctx in
  Alcotest.(check int) "no iterations under expired budget" 0
    r.Lr_select.iterations;
  Alcotest.(check bool) "feasible anyway" true
    (Selection.feasible ctx r.Lr_select.choice)

let test_ilp_pivot_budget () =
  let ctx = make_ctx () in
  (* Starving the simplex of pivots must degrade (never crash, never
     claim proven optimality) and still return a feasible incumbent. *)
  let starved = Ilp_select.select ~max_pivots:1 ctx in
  Alcotest.(check bool) "feasible under pivot starvation" true
    (Selection.feasible ctx starved.Ilp_select.choice);
  Alcotest.(check bool) "not proven optimal" true
    (not starved.Ilp_select.proven || starved.Ilp_select.nodes = 0);
  let free = Ilp_select.select ctx in
  Alcotest.(check bool) "starved power no better than exact" true
    (starved.Ilp_select.power >= free.Ilp_select.power -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Channels.Capacity_error                                             *)
(* ------------------------------------------------------------------ *)

let seg x0 y0 x1 y1 =
  Operon_geom.Segment.make
    (Operon_geom.Point.make x0 y0)
    (Operon_geom.Point.make x1 y1)

let conn id net s bits = { Wdm.id; net; seg = s; bits }

let test_capacity_error_unknown_track () =
  let params = Params.default in
  let conns = [| conn 0 0 (seg 0.0 1.0 3.0 1.0) 4 |] in
  let placement = Wdm_place.place params conns in
  let result = Assign.run params placement in
  let broken =
    { result with Assign.flows = [| [ (99, 4) ] |] }
  in
  try
    ignore (Channels.assign params conns broken);
    Alcotest.fail "expected Capacity_error"
  with Channels.Capacity_error { track; demand; detail } ->
    Alcotest.(check int) "offending track" 99 track;
    Alcotest.(check int) "demand" 4 demand;
    Alcotest.(check bool) "detail non-empty" true (String.length detail > 0)

let test_capacity_error_overflow () =
  let params = Params.default in
  let over = params.Params.wdm_capacity + 1 in
  let conns = [| conn 0 0 (seg 0.0 1.0 3.0 1.0) 4 |] in
  let placement = Wdm_place.place params conns in
  let result = Assign.run params placement in
  (* Overstate the demand of the only flow so the colouring sweep runs
     out of channels on track 0. *)
  let overloaded =
    { result with
      Assign.flows = Array.map (fun _ -> [ (0, over) ]) result.Assign.flows }
  in
  try
    ignore (Channels.assign params conns overloaded);
    Alcotest.fail "expected Capacity_error"
  with Channels.Capacity_error { track; demand; _ } ->
    Alcotest.(check int) "offending track" 0 track;
    Alcotest.(check int) "demand is the overflow request" over demand

let () =
  Alcotest.run "fault"
    [ ( "injection",
        [ Alcotest.test_case "spec parsing" `Quick test_injection_parsing;
          Alcotest.test_case "list parsing" `Quick test_injections_list_parsing;
          Alcotest.test_case "lenient env-var parsing" `Quick
            test_lenient_list_parsing;
          Alcotest.test_case "matching" `Quick test_injection_matching ] );
      ( "quarantine",
        [ Alcotest.test_case "codesign fault quarantines one net" `Quick
            test_quarantine_codesign_fault;
          Alcotest.test_case "jobs 4 = sequential under faults" `Quick
            test_quarantine_parallel_identical;
          Alcotest.test_case "baselines fault quarantines" `Quick
            test_baselines_fault_quarantines;
          Alcotest.test_case "strict fails fast" `Quick test_strict_fails_fast;
          Alcotest.test_case "clean run reports nothing" `Quick
            test_clean_run_reports_nothing ] );
      ( "fallback-chain",
        [ Alcotest.test_case "lr -> greedy" `Quick test_select_fallback_chain_lr;
          Alcotest.test_case "ilp -> lr -> greedy" `Quick
            test_select_fallback_chain_ilp ] );
      ( "budgets",
        [ Alcotest.test_case "lr wall-clock budget" `Quick test_lr_wallclock_budget;
          Alcotest.test_case "ilp pivot budget" `Quick test_ilp_pivot_budget ] );
      ( "channels",
        [ Alcotest.test_case "unknown track" `Quick test_capacity_error_unknown_track;
          Alcotest.test_case "capacity overflow" `Quick test_capacity_error_overflow ] ) ]
