(* Tests for the extension modules: wavelength-channel assignment
   (Channels), the delay model (Delay/Timing), the JSON export and the
   Report table renderer. *)

open Operon_geom
open Operon_util
open Operon_optical
open Operon
open Operon_benchgen

let params = Params.default

let p = Point.make

let seg x1 y1 x2 y2 = Segment.make (p x1 y1) (p x2 y2)

let conn id net s bits = { Wdm.id; net; seg = s; bits }

(* --- channels --- *)

let fig6_conns () =
  [| conn 0 0 (seg 0.0 1.00 3.0 1.00) 20;
     conn 1 1 (seg 0.5 1.02 3.5 1.02) 20;
     conn 2 2 (seg 1.0 1.04 4.0 1.04) 20 |]

let test_channels_fig6 () =
  let conns = fig6_conns () in
  let placement = Wdm_place.place params conns in
  let result = Assign.run params placement in
  let plan = Channels.assign params conns result in
  (match Channels.verify params conns plan with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (* 60 bits over 2 tracks, all spans overlap: peaks sum to 60 *)
  let total_peak = Array.fold_left ( + ) 0 plan.Channels.peak_channels in
  Alcotest.(check int) "no reuse possible" 60 total_peak;
  Alcotest.(check (float 1e-9)) "zero spatial reuse" 0.0
    (Channels.spatial_reuse plan result)

let test_channels_spatial_reuse () =
  (* Two same-track connections with disjoint spans can share channels. *)
  let conns =
    [| conn 0 0 (seg 0.0 1.0 1.0 1.0) 16; conn 1 1 (seg 2.0 1.0 3.0 1.0) 16 |]
  in
  let placement = Wdm_place.place { params with Params.dis_u = 0.5 } conns in
  let result = Assign.run { params with Params.dis_u = 0.5 } placement in
  let plan = Channels.assign params conns result in
  (match Channels.verify params conns plan with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  if result.Assign.final_count = 1 then begin
    (* both rode one track: reuse halves the channel demand *)
    Alcotest.(check int) "peak 16" 16 plan.Channels.peak_channels.(0);
    Alcotest.(check bool) "reuse reported" true (Channels.spatial_reuse plan result > 0.4)
  end

let test_channels_bits_conserved () =
  let rng = Prng.create 5 in
  let conns =
    Array.init 10 (fun i ->
        conn i i
          (seg (Prng.float rng 1.0) 1.0 (2.0 +. Prng.float rng 1.0) 1.0)
          (1 + Prng.int rng 16))
  in
  let placement = Wdm_place.place params conns in
  let result = Assign.run params placement in
  let plan = Channels.assign params conns result in
  match Channels.verify params conns plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_channels_on_flow () =
  let design = Cases.small ~seed:3 () in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let conns = r.Flow.placement.Wdm_place.conns in
  let plan = Channels.assign params conns r.Flow.assignment in
  match Channels.verify params conns plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* --- delay --- *)

let d = Delay.default

let test_delay_basic () =
  Alcotest.(check (float 1e-9)) "electrical linear" 1100.0
    (Delay.electrical d ~length_cm:2.0);
  let flight = Delay.flight_ps_per_cm d in
  Alcotest.(check bool) "silicon flight ~140ps/cm" true
    (flight > 130.0 && flight < 150.0);
  Alcotest.(check (float 1e-6)) "link = conversion + flight"
    (d.Delay.t_conversion +. (2.0 *. flight))
    (Delay.optical_link d ~length_cm:2.0)

let test_delay_crossover () =
  let x = Delay.crossover_cm d in
  Alcotest.(check bool) "crossover in the mm range" true (x > 0.05 && x < 0.5);
  (* beyond the crossover optical is faster *)
  Alcotest.(check bool) "optical wins past crossover" true
    (Delay.optical_link d ~length_cm:(2.0 *. x) < Delay.electrical d ~length_cm:(2.0 *. x));
  Alcotest.(check bool) "copper wins below" true
    (Delay.optical_link d ~length_cm:(0.5 *. x) > Delay.electrical d ~length_cm:(0.5 *. x))

let test_timing_on_selection () =
  let design = Cases.small ~seed:3 () in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let sel = Timing.selection d r.Flow.ctx r.Flow.choice in
  let reference = Timing.electrical_reference d r.Flow.ctx in
  Alcotest.(check bool) "positive delays" true (sel.Timing.mean_worst_ps > 0.0);
  Alcotest.(check bool) "max >= mean" true
    (sel.Timing.max_worst_ps >= sel.Timing.mean_worst_ps);
  (* optics accelerates the long nets of this design *)
  Alcotest.(check bool) "mean no slower than copper reference" true
    (sel.Timing.mean_worst_ps <= reference.Timing.mean_worst_ps +. 1e-6)

let test_timing_two_pin_exact () =
  let centers = [| p 0.0 0.0; p 2.0 0.0 |] in
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 1; source_count = (if i = 0 then 1 else 0) })
      centers
  in
  let hnet = Hypernet.make ~id:0 ~group:0 ~bits:4 ~pins in
  let topo =
    Operon_steiner.Topology.make ~positions:centers ~nterminals:2 ~edges:[ (0, 1) ]
      ~root:0
  in
  let optical =
    Candidate.of_labels params hnet topo [| Candidate.Electrical; Candidate.Optical |]
  in
  Alcotest.(check (float 1e-6)) "optical worst = link delay"
    (Delay.optical_link d ~length_cm:2.0)
    (Timing.candidate_worst_ps d optical);
  let elec = Candidate.electrical params hnet topo in
  Alcotest.(check (float 1e-6)) "electrical worst = wire delay"
    (Delay.electrical d ~length_cm:2.0)
    (Timing.candidate_worst_ps d elec)

(* --- export --- *)

let test_export_structure () =
  let design = Cases.tiny () in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let conns = r.Flow.placement.Wdm_place.conns in
  let plan = Channels.assign params conns r.Flow.assignment in
  let json = Export.flow_to_json ~channels:plan r in
  (* balanced braces/brackets *)
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
      (match c with
       | '{' | '[' -> incr depth
       | '}' | ']' -> decr depth
       | _ -> ());
      if !depth < !min_depth then min_depth := !depth)
    json;
  Alcotest.(check int) "balanced" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth;
  (* key presence *)
  List.iter
    (fun key ->
      let needle = "\"" ^ key ^ "\":" in
      let found =
        let n = String.length json and m = String.length needle in
        let rec scan i = i + m <= n && (String.sub json i m = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("contains " ^ key) true found)
    [ "design"; "hypernets"; "routes"; "wdm"; "channels"; "power"; "tracks" ]

let test_export_escaping () =
  (* the writer must escape control characters and quotes *)
  let design = Cases.tiny () in
  let r = Flow.synthesize (Flow.Config.default params) design in
  let json = Export.flow_to_json r in
  String.iter
    (fun c -> Alcotest.(check bool) "no raw control chars" false (Char.code c < 0x20 && c <> '\n'))
    json

let test_export_write_file () =
  let path = Filename.temp_file "operon" ".json" in
  Export.write_file path "{\"ok\":true}";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "round trip" "{\"ok\":true}" line

(* --- report --- *)

let test_report_table () =
  let t =
    Report.table ~title:"demo" ~headers:[ "a"; "b" ]
      ~align:[ Report.Left; Report.Right ]
      [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim t) in
  Alcotest.(check int) "title + frame + header + 2 rows" 7 (List.length lines);
  (* all frame lines equal length *)
  let widths = List.map String.length (List.tl lines) in
  List.iter (fun w -> Alcotest.(check int) "rectangular" (List.hd widths) w) widths

let test_report_short_rows_padded () =
  let t = Report.table ~headers:[ "a"; "b"; "c" ] ~align:[] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length t > 0)

let test_report_cells () =
  Alcotest.(check string) "float" "3.14" (Report.float_cell ~decimals:2 3.14159);
  Alcotest.(check string) "ratio" "0.500" (Report.ratio_cell 1.0 2.0);
  Alcotest.(check string) "ratio by zero" "-" (Report.ratio_cell 1.0 0.0);
  Alcotest.(check string) "seconds capped" "> 3000" (Report.seconds_cell ~cap:3000.0 5000.0);
  Alcotest.(check string) "seconds plain" "12.3" (Report.seconds_cell ~cap:3000.0 12.3)

(* --- properties --- *)

(* Random connection bundles: the channel plan must always verify. *)
let prop_channels_always_valid =
  QCheck.Test.make ~name:"channel plans verify on random bundles" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed_v ->
      let rng = Prng.create seed_v in
      let n = 2 + Prng.int rng 10 in
      let conns =
        Array.init n (fun i ->
            let y = 1.0 +. (0.005 *. float_of_int (Prng.int rng 6)) in
            let x0 = Prng.float rng 3.0 in
            let len = 0.3 +. Prng.float rng 2.0 in
            conn i i (seg x0 y (x0 +. len) y) (1 + Prng.int rng 24))
      in
      let placement = Wdm_place.place params conns in
      let result = Assign.run params placement in
      let plan = Channels.assign params conns result in
      match Channels.verify params conns plan with Ok () -> true | Error _ -> false)

(* Peak concurrent channels can never exceed the track's bit usage. *)
let prop_channels_peak_bounded =
  QCheck.Test.make ~name:"peak channels bounded by usage" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed_v ->
      let rng = Prng.create seed_v in
      let n = 2 + Prng.int rng 8 in
      let conns =
        Array.init n (fun i ->
            let x0 = Prng.float rng 3.0 in
            conn i i (seg x0 1.0 (x0 +. 1.0) 1.0) (1 + Prng.int rng 16))
      in
      let placement = Wdm_place.place params conns in
      let result = Assign.run params placement in
      let plan = Channels.assign params conns result in
      Array.for_all2
        (fun peak t -> peak <= t.Wdm.used && peak <= t.Wdm.capacity)
        plan.Channels.peak_channels result.Assign.tracks)

(* Delay of a candidate never beats pure time-of-flight over the direct
   chord, and never loses to all-copper over the tree length. *)
let prop_timing_bounds =
  QCheck.Test.make ~name:"candidate delay within physical bounds" ~count:100
    QCheck.(int_range 0 100000)
    (fun seed_v ->
      let rng = Prng.create seed_v in
      let k = 2 + Prng.int rng 4 in
      let centers =
        Array.init k (fun i ->
            if i = 0 then p 0.0 0.0
            else p (0.5 +. Prng.float rng 3.0) (0.5 +. Prng.float rng 3.0))
      in
      let pins =
        Array.mapi
          (fun i c ->
            { Hypernet.center = c; pin_count = 1; source_count = (if i = 0 then 1 else 0) })
          centers
      in
      let hnet = Hypernet.make ~id:0 ~group:0 ~bits:(1 + Prng.int rng 31) ~pins in
      match Codesign.for_hypernet params hnet with
      | [] -> false
      | cands ->
          List.for_all
            (fun c ->
              let worst = Timing.candidate_worst_ps d c in
              let tree_l1 =
                Operon_steiner.Topology.length Operon_steiner.Topology.L1
                  c.Candidate.topo
              in
              let min_chord =
                Array.fold_left
                  (fun acc i -> Float.min acc (Point.l2 centers.(0) centers.(i)))
                  infinity
                  (Array.init (k - 1) (fun i -> i + 1))
              in
              let nodes =
                float_of_int (Operon_steiner.Topology.node_count c.Candidate.topo)
              in
              worst >= (Delay.flight_ps_per_cm d *. min_chord) -. 1e-6
              && worst
                 <= Delay.electrical d ~length_cm:tree_l1
                    +. (nodes *. d.Delay.t_conversion) +. 1e-6)
            cands)

let () =
  Alcotest.run "extensions"
    [ ( "channels",
        [ Alcotest.test_case "fig6 colouring" `Quick test_channels_fig6;
          Alcotest.test_case "spatial reuse" `Quick test_channels_spatial_reuse;
          Alcotest.test_case "bits conserved" `Quick test_channels_bits_conserved;
          Alcotest.test_case "on full flow" `Quick test_channels_on_flow ] );
      ( "delay",
        [ Alcotest.test_case "basic" `Quick test_delay_basic;
          Alcotest.test_case "crossover" `Quick test_delay_crossover;
          Alcotest.test_case "selection stats" `Quick test_timing_on_selection;
          Alcotest.test_case "two pin exact" `Quick test_timing_two_pin_exact ] );
      ( "export",
        [ Alcotest.test_case "structure" `Quick test_export_structure;
          Alcotest.test_case "escaping" `Quick test_export_escaping;
          Alcotest.test_case "write file" `Quick test_export_write_file ] );
      ( "report",
        [ Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "short rows" `Quick test_report_short_rows_padded;
          Alcotest.test_case "cells" `Quick test_report_cells ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_channels_always_valid;
          QCheck_alcotest.to_alcotest prop_channels_peak_bounded;
          QCheck_alcotest.to_alcotest prop_timing_bounds ] ) ]
