(* Golden-string tests for the Report renderers: the stage table and the
   degradation summary are part of the CLI's observable surface (CI greps
   them), so their exact layout is pinned here. *)

open Operon_optical
open Operon
open Operon_benchgen
open Operon_engine

let params = Params.default

(* ------------------------------------------------------------------ *)
(* Stage table                                                         *)
(* ------------------------------------------------------------------ *)

let test_stage_table_golden () =
  (* A hand-built sink with fixed seconds: the table must be a pure
     function of the recorded values, byte for byte. *)
  let sink = Instrument.create () in
  Instrument.add_seconds sink Instrument.Processing 0.012;
  Instrument.incr sink Instrument.Processing "nets" 5;
  Instrument.add_seconds sink Instrument.Select 1.5;
  Instrument.incr sink Instrument.Select "iterations" 42;
  Instrument.incr sink Instrument.Select "fallbacks" 1;
  let expected =
    String.concat "\n"
      [ "+------------+---------+----------------------------+";
        "| stage      | seconds | counters                   |";
        "+------------+---------+----------------------------+";
        "| processing |   0.012 | nets=5                     |";
        "| select     |   1.500 | iterations=42  fallbacks=1 |";
        "| total      |   1.512 |                            |";
        "+------------+---------+----------------------------+" ]
  in
  Alcotest.(check string) "stage table" expected (Report.stage_table sink)

let test_stage_table_title_and_serve () =
  (* The optional title is a plain first line, and the Serve stage (the
     service layer's counters) renders like any other stage. *)
  let sink = Instrument.create () in
  Instrument.add_seconds sink Instrument.Serve 2.25;
  Instrument.incr sink Instrument.Serve "submitted" 3;
  Instrument.incr sink Instrument.Serve "completed" 2;
  let expected =
    String.concat "\n"
      [ "jobs";
        "+-------+---------+--------------------------+";
        "| stage | seconds | counters                 |";
        "+-------+---------+--------------------------+";
        "| serve |   2.250 | submitted=3  completed=2 |";
        "| total |   2.250 |                          |";
        "+-------+---------+--------------------------+" ]
  in
  Alcotest.(check string) "titled serve table" expected
    (Report.stage_table ~title:"jobs" sink)

(* ------------------------------------------------------------------ *)
(* Degradation summary                                                 *)
(* ------------------------------------------------------------------ *)

let run_tiny injections =
  let design = Cases.tiny ~seed:3 () in
  let injections =
    match Fault.injections_of_string injections with
    | Ok l -> l
    | Error msg -> Alcotest.fail msg
  in
  Flow.synthesize (Flow.Config.make ~injections params) design

let test_degradation_summary_fallback_golden () =
  let r = run_tiny "select:*:budget" in
  let expected =
    "degraded run: 1 fault, 0 nets quarantined, solver path lr->greedy\n\
    \  - select: budget: deterministic fault injection at this site\n"
  in
  match Report.degradation_summary r with
  | Some summary -> Alcotest.(check string) "fallback summary" expected summary
  | None -> Alcotest.fail "degraded run must produce a summary"

let test_degradation_summary_quarantine_golden () =
  (* Singular forms: exactly one fault, one quarantined net. *)
  let r = run_tiny "codesign:1:crash" in
  let expected =
    "degraded run: 1 fault, 1 net quarantined, solver path lr\n\
    \  - codesign/net1: crash: deterministic fault injection at this site\n"
  in
  match Report.degradation_summary r with
  | Some summary -> Alcotest.(check string) "quarantine summary" expected summary
  | None -> Alcotest.fail "degraded run must produce a summary"

let test_degradation_summary_clean_none () =
  match Report.degradation_summary (run_tiny "") with
  | None -> ()
  | Some s -> Alcotest.fail ("clean run produced a summary: " ^ s)

let () =
  Alcotest.run "report"
    [ ( "stage-table",
        [ Alcotest.test_case "golden layout" `Quick test_stage_table_golden;
          Alcotest.test_case "title and serve stage" `Quick
            test_stage_table_title_and_serve ] );
      ( "degradation",
        [ Alcotest.test_case "fallback chain golden" `Quick
            test_degradation_summary_fallback_golden;
          Alcotest.test_case "quarantine golden" `Quick
            test_degradation_summary_quarantine_golden;
          Alcotest.test_case "clean run yields none" `Quick
            test_degradation_summary_clean_none ] ) ]
