(* Tests for the unified solver: the Problem model, both LP cores
   (sparse revised simplex and the dense tableau parity reference) on
   textbook programs, bounded variables without synthetic rows,
   branch-and-bound against exhaustive enumeration on random 0/1
   programs, and dense-vs-sparse parity on random LPs and ILPs. *)

open Operon_solver

let check_float = Alcotest.(check (float 1e-6))

let lp ?obj ?lower ?upper ?integer ~nvars rows =
  Solver.Problem.of_rows ~nvars ?obj ?lower ?upper ?integer rows

let solve ?(core = Solver.Sparse) ?budget ?max_pivots ?incumbent p =
  Solver.solve ~opts:(Solver.opts ~core ?budget ?max_pivots ?incumbent ()) p

let both name f =
  [ Alcotest.test_case (name ^ " (sparse)") `Quick (fun () -> f Solver.Sparse);
    Alcotest.test_case (name ^ " (dense)") `Quick (fun () -> f Solver.Dense) ]

let objective_of name r =
  match r.Solver.Result.status with
  | Solver.Optimal s -> s.Solver.objective
  | _ -> Alcotest.fail (name ^ ": expected optimal")

let values_of name r =
  match r.Solver.Result.status with
  | Solver.Optimal s -> s.Solver.values
  | _ -> Alcotest.fail (name ^ ": expected optimal")

(* --- problem model --- *)

let test_problem_model () =
  let p =
    lp ~nvars:3 ~obj:[ (0, 2.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Le, 4.0) ]
  in
  Alcotest.(check int) "nvars" 3 (Solver.Problem.nvars p);
  Alcotest.(check int) "nrows" 1 (Solver.Problem.nrows p);
  check_float "objective coeff" 2.0 (Solver.Problem.objective_coeff p 0);
  check_float "default lower" 0.0 (Solver.Problem.lower_bound p 1);
  Alcotest.(check bool) "default upper" true
    (Solver.Problem.upper_bound p 1 = infinity);
  check_float "eval" 2.0 (Solver.Problem.eval_objective p [| 1.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "feasible" true
    (Solver.Problem.feasible p [| 1.0; 3.0; 0.0 |]);
  Alcotest.(check bool) "row violated" false
    (Solver.Problem.feasible p [| 3.0; 3.0; 0.0 |]);
  Alcotest.(check bool) "below lower bound" false
    (Solver.Problem.feasible p [| -1.0; 0.0; 0.0 |])

let test_problem_invalid () =
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Problem.of_rows: variable out of range") (fun () ->
      ignore (lp ~nvars:2 [ ([ (5, 1.0) ], Solver.Problem.Le, 1.0) ]));
  Alcotest.check_raises "lower > upper"
    (Invalid_argument "Problem.column: lower > upper") (fun () ->
      ignore (lp ~nvars:1 ~lower:[ (0, 2.0) ] ~upper:[ (0, 1.0) ] []));
  Alcotest.check_raises "integer needs finite bounds"
    (Invalid_argument "Problem.column: integer variable needs finite bounds")
    (fun () -> ignore (lp ~nvars:1 ~integer:[ 0 ] []))

let test_problem_merges_duplicate_entries () =
  (* x + x <= 4 must behave as 2x <= 4. *)
  let p =
    lp ~nvars:1 ~obj:[ (0, -1.0) ] ~upper:[ (0, 10.0) ]
      [ ([ (0, 1.0); (0, 1.0) ], Solver.Problem.Le, 4.0) ]
  in
  check_float "merged coeff" (-2.0) (objective_of "merged" (solve p))

(* --- lp cores --- *)

(* max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18  => minimize -(3x+5y), optimum
   x=2,y=6, objective -36. The classic Dantzig example. *)
let test_classic core =
  let p =
    lp ~nvars:2 ~obj:[ (0, -3.0); (1, -5.0) ]
      [ ([ (0, 1.0) ], Solver.Problem.Le, 4.0);
        ([ (1, 2.0) ], Solver.Problem.Le, 12.0);
        ([ (0, 3.0); (1, 2.0) ], Solver.Problem.Le, 18.0) ]
  in
  let r = solve ~core p in
  check_float "objective" (-36.0) (objective_of "classic" r);
  let x = values_of "classic" r in
  check_float "x" 2.0 x.(0);
  check_float "y" 6.0 x.(1)

let test_equality core =
  (* min x + 2y st x + y = 3, x <= 1 => x=1, y=2, obj 5 *)
  let p =
    lp ~nvars:2 ~obj:[ (0, 1.0); (1, 2.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Eq, 3.0);
        ([ (0, 1.0) ], Solver.Problem.Le, 1.0) ]
  in
  check_float "objective" 5.0 (objective_of "equality" (solve ~core p))

let test_ge_rows core =
  (* min 2x + 3y st x + y >= 4, x <= 3 => y >= 1; optimum x=3,y=1 obj 9 *)
  let p =
    lp ~nvars:2 ~obj:[ (0, 2.0); (1, 3.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Ge, 4.0);
        ([ (0, 1.0) ], Solver.Problem.Le, 3.0) ]
  in
  check_float "objective" 9.0 (objective_of "ge" (solve ~core p))

let test_infeasible core =
  let p =
    lp ~nvars:1
      [ ([ (0, 1.0) ], Solver.Problem.Ge, 5.0);
        ([ (0, 1.0) ], Solver.Problem.Le, 2.0) ]
  in
  Alcotest.(check bool) "infeasible" true
    ((solve ~core p).Solver.Result.status = Solver.Infeasible)

let test_unbounded core =
  let p =
    lp ~nvars:1 ~obj:[ (0, -1.0) ] [ ([ (0, 1.0) ], Solver.Problem.Ge, 0.0) ]
  in
  Alcotest.(check bool) "unbounded" true
    ((solve ~core p).Solver.Result.status = Solver.Unbounded)

let test_no_rows core =
  let p = lp ~nvars:2 ~obj:[ (0, 1.0) ] [] in
  check_float "zero" 0.0 (objective_of "no rows" (solve ~core p));
  let q = lp ~nvars:2 ~obj:[ (0, 1.0); (1, -1.0) ] [] in
  Alcotest.(check bool) "unbounded down" true
    ((solve ~core q).Solver.Result.status = Solver.Unbounded)

let test_negative_rhs core =
  (* min x st -x <= -2  (i.e. x >= 2) *)
  let p =
    lp ~nvars:1 ~obj:[ (0, 1.0) ] [ ([ (0, -1.0) ], Solver.Problem.Le, -2.0) ]
  in
  check_float "x=2" 2.0 (objective_of "negative rhs" (solve ~core p))

let test_degenerate core =
  (* Degenerate vertex should still terminate (anti-cycling). *)
  let p =
    lp ~nvars:2 ~obj:[ (0, -1.0); (1, -1.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Le, 1.0);
        ([ (0, 1.0) ], Solver.Problem.Le, 1.0);
        ([ (1, 1.0) ], Solver.Problem.Le, 1.0);
        ([ (0, 1.0); (1, -1.0) ], Solver.Problem.Le, 0.0) ]
  in
  check_float "objective" (-1.0) (objective_of "degenerate" (solve ~core p))

let test_variable_bounds core =
  (* Bounds live on the variables, not on rows: min -x - y with
     x in [0, 2.5], y in [1, 3], one coupling row x + y <= 5. *)
  let p =
    lp ~nvars:2 ~obj:[ (0, -1.0); (1, -1.0) ]
      ~lower:[ (1, 1.0) ]
      ~upper:[ (0, 2.5); (1, 3.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Le, 5.0) ]
  in
  let r = solve ~core p in
  check_float "objective" (-5.0) (objective_of "bounds" r);
  Alcotest.(check bool) "respects bounds" true
    (Solver.Problem.feasible p (values_of "bounds" r))

let test_fixed_variable core =
  (* lo = up pins the variable. *)
  let p =
    lp ~nvars:2 ~obj:[ (0, 1.0); (1, 1.0) ]
      ~lower:[ (0, 2.0) ] ~upper:[ (0, 2.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Ge, 3.0) ]
  in
  let r = solve ~core p in
  check_float "objective" 3.0 (objective_of "fixed" r);
  check_float "pinned" 2.0 (values_of "fixed" r).(0)

(* Sparse-only: the dense parity core rejects negative lower bounds. *)
let test_negative_lower_bound () =
  let p =
    lp ~nvars:1 ~obj:[ (0, 1.0) ] ~lower:[ (0, -4.0) ] ~upper:[ (0, 4.0) ] []
  in
  check_float "objective" (-4.0) (objective_of "neg lower" (solve p));
  Alcotest.check_raises "dense rejects"
    (Invalid_argument "Dense_core: requires finite non-negative lower bounds")
    (fun () -> ignore (solve ~core:Solver.Dense p))

let test_refactorization_counter () =
  (* Enough pivots in one LP solve to overflow the eta file (64) and
     force at least one basis refactorization. *)
  let n = 100 in
  let p =
    lp ~nvars:n
      ~obj:(List.init n (fun v -> (v, 1.0)))
      (List.init n (fun v -> ([ (v, 1.0) ], Solver.Problem.Ge, 1.0)))
  in
  let r = solve p in
  check_float "objective" (float_of_int n) (objective_of "refactor" r);
  Alcotest.(check bool) "pivoted enough" true
    (r.Solver.Result.stats.Solver.pivots >= n);
  Alcotest.(check bool) "refactorized" true
    (r.Solver.Result.stats.Solver.refactorizations >= 1)

let test_max_pivots_aborts () =
  (* A pure LP that needs pivots but may spend none returns Unknown. *)
  let p =
    lp ~nvars:2 ~obj:[ (0, -3.0); (1, -5.0) ]
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Le, 4.0) ]
  in
  Alcotest.(check bool) "aborted" true
    ((solve ~max_pivots:0 p).Solver.Result.status = Solver.Unknown)

(* --- branch and bound --- *)

(* Knapsack-flavoured: min -(5a + 4b + 3c) st 2a + 3b + c <= 4, binary.
   Optimum a=1,c=1 -> -8 (b would exceed the budget). *)
let binaries n = (List.init n (fun v -> (v, 1.0)), List.init n Fun.id)

let test_knapsack core =
  let upper, integer = binaries 3 in
  let p =
    lp ~nvars:3 ~obj:[ (0, -5.0); (1, -4.0); (2, -3.0) ] ~upper ~integer
      [ ([ (0, 2.0); (1, 3.0); (2, 1.0) ], Solver.Problem.Le, 4.0) ]
  in
  let r = solve ~core p in
  check_float "objective" (-8.0) (objective_of "knapsack" r);
  let x = values_of "knapsack" r in
  check_float "a" 1.0 x.(0);
  check_float "b" 0.0 x.(1);
  check_float "c" 1.0 x.(2)

let test_integrality_gap core =
  (* LP relaxation would take fractional x=y=0.525; ILP must pick one. *)
  let upper, integer = binaries 2 in
  let p =
    lp ~nvars:2 ~obj:[ (0, -1.0); (1, -1.0) ] ~upper ~integer
      [ ([ (0, 2.0); (1, 2.0) ], Solver.Problem.Le, 2.1) ]
  in
  check_float "one selected" (-1.0) (objective_of "gap" (solve ~core p))

let test_ilp_infeasible core =
  let upper, integer = binaries 2 in
  let p =
    lp ~nvars:2 ~upper ~integer
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Ge, 3.0) ]
  in
  Alcotest.(check bool) "no solution" true
    ((solve ~core p).Solver.Result.status = Solver.Infeasible)

let test_general_integer core =
  (* Non-binary integer range: min -x st 3x <= 10, x in [0,5] integer. *)
  let p =
    lp ~nvars:1 ~obj:[ (0, -1.0) ] ~upper:[ (0, 5.0) ] ~integer:[ 0 ]
      [ ([ (0, 3.0) ], Solver.Problem.Le, 10.0) ]
  in
  check_float "x=3" (-3.0) (objective_of "general integer" (solve ~core p))

let test_incumbent_respected core =
  let upper, integer = binaries 1 in
  let p = lp ~nvars:1 ~obj:[ (0, 1.0) ] ~upper ~integer [] in
  let incumbent = { Solver.objective = 0.0; values = [| 0.0 |] } in
  check_float "keeps 0" 0.0
    (objective_of "incumbent" (solve ~core ~incumbent p))

let test_budget_expiry core =
  (* An already-expired budget returns the incumbent, unproven. *)
  let upper, integer = binaries 2 in
  let p =
    lp ~nvars:2 ~obj:[ (0, -1.0); (1, -1.0) ] ~upper ~integer
      [ ([ (0, 1.0); (1, 1.0) ], Solver.Problem.Le, 1.0) ]
  in
  let budget = Operon_util.Timer.budget 1e-9 in
  Unix.sleepf 0.01;
  let incumbent = { Solver.objective = 0.0; values = [| 0.0; 0.0 |] } in
  match (solve ~core ~budget ~incumbent p).Solver.Result.status with
  | Solver.Feasible { objective; _ } -> check_float "incumbent" 0.0 objective
  | Solver.Optimal _ -> Alcotest.fail "should not have had time to prove"
  | _ -> Alcotest.fail "expected Feasible"

let test_stats_accumulate () =
  let upper, integer = binaries 3 in
  let p =
    lp ~nvars:3 ~obj:[ (0, -5.0); (1, -4.0); (2, -3.0) ] ~upper ~integer
      [ ([ (0, 2.0); (1, 3.0); (2, 1.0) ], Solver.Problem.Le, 4.0) ]
  in
  let r = solve p in
  let s = r.Solver.Result.stats in
  Alcotest.(check bool) "nodes > 0" true (s.Solver.nodes > 0);
  Alcotest.(check bool) "one lp per node" true (s.Solver.lp_solves = s.Solver.nodes);
  Alcotest.(check bool) "pivots > 0" true (s.Solver.pivots > 0);
  Alcotest.(check bool) "elapsed >= 0" true (s.Solver.elapsed >= 0.0)

(* --- randomized cross-checks --- *)

(* Exhaustive enumeration on random small 0/1 programs. *)
let brute_force nvars objective rows =
  let best = ref None in
  for mask = 0 to (1 lsl nvars) - 1 do
    let x =
      Array.init nvars (fun v -> if mask land (1 lsl v) <> 0 then 1.0 else 0.0)
    in
    let ok =
      List.for_all
        (fun (coeffs, rhs) ->
          List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 coeffs
          <= rhs +. 1e-9)
        rows
    in
    if ok then begin
      let obj =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun v xv -> objective.(v) *. xv) x)
      in
      match !best with
      | Some b when b <= obj -> ()
      | _ -> best := Some obj
    end
  done;
  !best

let random_binary_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun nvars ->
    array_size (return nvars) (float_range (-5.0) 5.0) >>= fun objective ->
    list_size (int_range 0 4)
      (pair
         (list_size (int_range 1 nvars)
            (pair (int_range 0 (nvars - 1)) (float_range (-3.0) 3.0)))
         (float_range 0.0 5.0))
    >|= fun rows -> (nvars, objective, rows))

let binary_problem (nvars, objective, rows) =
  let upper, integer = binaries nvars in
  lp ~nvars
    ~obj:(Array.to_list (Array.mapi (fun v c -> (v, c)) objective))
    ~upper ~integer
    (List.map (fun (coeffs, rhs) -> (coeffs, Solver.Problem.Le, rhs)) rows)

let prop_ilp_matches_brute_force core =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "ilp matches brute force (%s)" (Solver.core_name core))
    ~count:150
    (QCheck.make
       ~print:(fun (n, _, rows) ->
         Printf.sprintf "n=%d rows=%d" n (List.length rows))
       random_binary_gen)
    (fun ((nvars, objective, rows) as case) ->
      let expected = brute_force nvars objective rows in
      match ((solve ~core (binary_problem case)).Solver.Result.status, expected)
      with
      | Solver.Optimal { objective = got; _ }, Some want ->
          Float.abs (got -. want) < 1e-5
      | Solver.Infeasible, None -> true
      | _ -> false)

let prop_relaxation_bounds_ilp =
  (* The continuous relaxation (same bounds, integrality dropped) is a
     valid lower bound for the 0/1 program. *)
  QCheck.Test.make ~name:"lp relaxation bounds ilp" ~count:100
    (QCheck.make ~print:(fun (n, _, _) -> string_of_int n) random_binary_gen)
    (fun (nvars, objective, rows) ->
      let obj = Array.to_list (Array.mapi (fun v c -> (v, c)) objective) in
      let upper, integer = binaries nvars in
      let rows =
        (List.init nvars (fun v -> (v, 1.0)), Solver.Problem.Ge, 1.0)
        :: List.map (fun (coeffs, rhs) -> (coeffs, Solver.Problem.Le, rhs)) rows
      in
      let relaxed = lp ~nvars ~obj ~upper rows in
      let integral = lp ~nvars ~obj ~upper ~integer rows in
      match
        ( (solve relaxed).Solver.Result.status,
          (solve integral).Solver.Result.status )
      with
      | Solver.Optimal { objective = cont; _ },
        Solver.Optimal { objective = ilp; _ } ->
          cont <= ilp +. 1e-6
      | _, Solver.Infeasible -> true
      | _ -> false)

(* Dense-vs-sparse parity: identical status and (where optimal) matching
   objective on random LPs and ILPs. The generators stay inside the
   dense core's domain (finite non-negative lower bounds). *)
let status_tag = function
  | Solver.Optimal _ -> "optimal"
  | Solver.Feasible _ -> "feasible"
  | Solver.Infeasible -> "infeasible"
  | Solver.Unbounded -> "unbounded"
  | Solver.Unknown -> "unknown"

let random_lp_gen =
  QCheck.Gen.(
    int_range 2 7 >>= fun nvars ->
    array_size (return nvars) (float_range (-4.0) 4.0) >>= fun objective ->
    array_size (return nvars)
      (oneof [ return infinity; float_range 0.5 6.0 ])
    >>= fun uppers ->
    list_size (int_range 1 5)
      (triple
         (list_size (int_range 1 nvars)
            (pair (int_range 0 (nvars - 1)) (float_range (-3.0) 3.0)))
         (oneofl [ `Le; `Ge; `Eq ])
         (float_range 0.0 5.0))
    >|= fun rows -> (nvars, objective, uppers, rows))

let parity_problem ?integer (nvars, objective, uppers, rows) =
  let upper =
    Array.to_list uppers
    |> List.mapi (fun v u -> (v, u))
    |> List.filter (fun (_, u) -> Float.is_finite u)
  in
  (* Integer variables need finite ranges: clamp them to [0, 3]. *)
  let upper, integer =
    match integer with
    | None -> (upper, [])
    | Some () ->
        let ints = List.init nvars Fun.id in
        ( List.map
            (fun (v, u) -> (v, Float.min 3.0 (Float.round u))) upper
          @ (List.filter
               (fun v -> not (Float.is_finite uppers.(v)))
               ints
            |> List.map (fun v -> (v, 3.0))),
          ints )
  in
  lp ~nvars
    ~obj:(Array.to_list (Array.mapi (fun v c -> (v, c)) objective))
    ~upper ~integer
    (List.map
       (fun (coeffs, rel, rhs) ->
         let rel =
           match rel with
           | `Le -> Solver.Problem.Le
           | `Ge -> Solver.Problem.Ge
           | `Eq -> Solver.Problem.Eq
         in
         (coeffs, rel, rhs))
       rows)

let parity_prop ?integer name =
  QCheck.Test.make ~name ~count:200
    (QCheck.make
       ~print:(fun (n, _, _, rows) ->
         Printf.sprintf "n=%d rows=%d" n (List.length rows))
       random_lp_gen)
    (fun case ->
      let p = parity_problem ?integer case in
      let s = (solve ~core:Solver.Sparse p).Solver.Result.status in
      let d = (solve ~core:Solver.Dense p).Solver.Result.status in
      String.equal (status_tag s) (status_tag d)
      &&
      match (s, d) with
      | Solver.Optimal a, Solver.Optimal b ->
          Float.abs (a.Solver.objective -. b.Solver.objective) < 1e-6
      | _ -> true)

let prop_parity_lp = parity_prop "dense/sparse parity on random LPs"

let prop_parity_ilp =
  parity_prop ~integer:() "dense/sparse parity on random ILPs"

let () =
  Alcotest.run "solver"
    ([ ( "problem",
         [ Alcotest.test_case "model" `Quick test_problem_model;
           Alcotest.test_case "invalid" `Quick test_problem_invalid;
           Alcotest.test_case "duplicate entries" `Quick
             test_problem_merges_duplicate_entries ] ) ]
    @ [ ( "lp",
          both "classic" test_classic
          @ both "equality" test_equality
          @ both "ge rows" test_ge_rows
          @ both "infeasible" test_infeasible
          @ both "unbounded" test_unbounded
          @ both "no rows" test_no_rows
          @ both "negative rhs" test_negative_rhs
          @ both "degenerate" test_degenerate
          @ both "variable bounds" test_variable_bounds
          @ both "fixed variable" test_fixed_variable
          @ [ Alcotest.test_case "negative lower bound" `Quick
                test_negative_lower_bound;
              Alcotest.test_case "refactorization counter" `Quick
                test_refactorization_counter;
              Alcotest.test_case "max pivots aborts" `Quick
                test_max_pivots_aborts ] ) ]
    @ [ ( "ilp",
          both "knapsack" test_knapsack
          @ both "integrality gap" test_integrality_gap
          @ both "infeasible" test_ilp_infeasible
          @ both "general integer" test_general_integer
          @ both "incumbent" test_incumbent_respected
          @ both "budget expiry" test_budget_expiry
          @ [ Alcotest.test_case "stats accumulate" `Quick
                test_stats_accumulate;
              QCheck_alcotest.to_alcotest
                (prop_ilp_matches_brute_force Solver.Sparse);
              QCheck_alcotest.to_alcotest
                (prop_ilp_matches_brute_force Solver.Dense);
              QCheck_alcotest.to_alcotest prop_relaxation_bounds_ilp;
              QCheck_alcotest.to_alcotest prop_parity_lp;
              QCheck_alcotest.to_alcotest prop_parity_ilp ] ) ])
