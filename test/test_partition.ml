(* Tests for the hierarchical partition-and-route layer: spatial-index
   parity against the naive O(n^2) pairwise sweep it replaced,
   decomposition invariants and determinism, and partitioned-vs-flat
   flow identity on a design whose cut severs no interacting pairs. *)

open Operon_geom
open Operon
open Operon_benchgen

let params = Operon_optical.Params.default

let rect x1 y1 x2 y2 = Rect.make ~xmin:x1 ~ymin:y1 ~xmax:x2 ~ymax:y2

(* The reference the spatial index replaced: every i < j whose boxes
   overlap, ascending lexicographic. *)
let naive_pairs boxes =
  let n = Array.length boxes in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if Rect.overlaps boxes.(i) boxes.(j) then acc := (i, j) :: !acc
    done
  done;
  !acc

let naive_components boxes =
  let n = Array.length boxes in
  let dsu = Operon_graph.Dsu.create n in
  List.iter
    (fun (i, j) -> ignore (Operon_graph.Dsu.union dsu i j))
    (naive_pairs boxes);
  let groups = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = Operon_graph.Dsu.find dsu i in
    let existing = try Hashtbl.find groups r with Not_found -> [] in
    Hashtbl.replace groups r (i :: existing)
  done;
  Hashtbl.fold (fun _ members acc -> Array.of_list members :: acc) groups []
  |> List.sort (fun a b -> compare a.(0) b.(0))
  |> Array.of_list

(* Random boxes plus the adversarial shapes the hash grid must survive:
   exact duplicates (the all-electrical placeholder cliques), degenerate
   point boxes piled on one far-away coordinate, and a lone outlier that
   would poison any global-bounds cell size. *)
let boxes_of_specs specs =
  let base =
    List.map (fun (x, y, w, h) -> rect x y (x +. w) (y +. h)) specs
  in
  let adversarial =
    match base with
    | [] -> []
    | first :: _ ->
        [ first; first; first ]
        @ [ rect (-1e9) (-1e9) (-1e9) (-1e9);
            rect (-1e9) (-1e9) (-1e9) (-1e9);
            rect (-1e9) (-1e9) (-1e9) (-1e9);
            rect 1e9 1e9 1e9 1e9 ]
  in
  Array.of_list (base @ adversarial)

let spec_gen =
  QCheck.(
    list_of_size Gen.(int_range 0 30)
      (quad (float_range 0.0 8.0) (float_range 0.0 8.0)
         (float_range 0.0 2.0) (float_range 0.0 2.0)))

let prop_pairs_match_naive =
  QCheck.Test.make ~name:"interacting_pairs = naive pairwise sweep"
    ~count:200 spec_gen (fun specs ->
      let boxes = boxes_of_specs specs in
      Crossing.interacting_pairs boxes = naive_pairs boxes)

let prop_components_match_naive =
  QCheck.Test.make ~name:"interaction_components = naive DSU" ~count:200
    spec_gen (fun specs ->
      let boxes = boxes_of_specs specs in
      Crossing.interaction_components boxes = naive_components boxes)

(* Neighbor rows of a real selection context: sorted ascending,
   symmetric, and a subset of the naive bbox-overlap relation — the
   index enumerates exactly the overlapping pairs, and the [linked]
   filter only removes pairs. *)
let test_ctx_neighbors () =
  let design = Cases.small ~seed:7 () in
  let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let neighbors = ctx.Selection.neighbors in
  let n = Array.length neighbors in
  let overlap i j =
    match (ctx.Selection.bboxes.(i), ctx.Selection.bboxes.(j)) with
    | Some a, Some b -> Rect.overlaps a b
    | _ -> false
  in
  for i = 0 to n - 1 do
    let row = neighbors.(i) in
    Array.iteri
      (fun k j ->
        if k > 0 then
          Alcotest.(check bool) "row ascending" true (row.(k - 1) < j);
        Alcotest.(check bool) "neighbor overlaps" true (overlap i j);
        Alcotest.(check bool) "symmetric" true
          (Array.exists (fun x -> x = i) neighbors.(j)))
      row
  done

let test_ctx_neighbors_cache_invariant () =
  let design = Cases.small ~seed:7 () in
  let base = Flow.Config.default params in
  let _, with_cache = Flow.prepare_with base design in
  let _, without = Flow.prepare_with (Flow.Config.with_cache false base) design in
  Alcotest.(check bool) "same neighbor sets" true
    (with_cache.Selection.neighbors = without.Selection.neighbors)

(* --- Partition.make --- *)

let neighbors_of_pairs n pairs =
  let rows = Array.make n [] in
  List.iter
    (fun (i, j) ->
      rows.(i) <- j :: rows.(i);
      rows.(j) <- i :: rows.(j))
    (List.rev pairs);
  Array.map (fun l -> Array.of_list (List.sort compare l)) rows

let prop_partition_invariants =
  QCheck.Test.make ~name:"Partition.make invariants" ~count:200
    QCheck.(pair (int_range 1 8) spec_gen)
    (fun (regions, specs) ->
      let boxes = boxes_of_specs specs in
      let n = Array.length boxes in
      let some_boxes = Array.map (fun b -> Some b) boxes in
      let pairs = naive_pairs boxes in
      let neighbors = neighbors_of_pairs n pairs in
      let plan = Partition.make ~regions some_boxes ~neighbors in
      let seen = Array.make n 0 in
      Array.iter
        (fun ids -> Array.iter (fun i -> seen.(i) <- seen.(i) + 1) ids)
        plan.Partition.regions;
      let covered = Array.for_all (fun c -> c = 1) seen in
      let consistent =
        Array.for_all
          (fun i ->
            Array.exists (fun x -> x = i)
              plan.Partition.regions.(plan.Partition.region_of.(i)))
          (Array.init n Fun.id)
      in
      let cut =
        List.filter
          (fun (i, j) ->
            plan.Partition.region_of.(i) <> plan.Partition.region_of.(j))
          pairs
      in
      let corridor_ref =
        List.concat_map (fun (i, j) -> [ i; j ]) cut
        |> List.sort_uniq compare |> Array.of_list
      in
      let boundary_members =
        Array.to_list plan.Partition.boundary
        |> List.concat_map Array.to_list |> List.sort compare
        |> Array.of_list
      in
      let deterministic =
        plan = Partition.make ~regions some_boxes ~neighbors
      in
      n = 0
      || (covered && consistent
          && Array.length plan.Partition.regions <= Stdlib.max 1 regions
          && plan.Partition.cut_pairs = List.length cut
          && plan.Partition.total_pairs = List.length pairs
          && plan.Partition.corridor = corridor_ref
          && boundary_members = corridor_ref
          && deterministic))

(* --- Partitioned flow vs flat flow --- *)

let ilp_config ?(jobs = 1) ?partition () =
  Flow.Config.make ~mode:Flow.Ilp ~ilp_budget:60.0 ~jobs ?partition params

let no_timings r = Export.flow_to_json ~timings:false r

(* The split case's two clusters never interact: a 2-region cut severs
   zero pairs, so region-local ILP solves compose into exactly the flat
   solution — whole exports byte-compare, at any worker count. *)
let test_split_bit_identity () =
  let design = Cases.split () in
  let flat = Flow.synthesize (ilp_config ()) design in
  let part1 =
    Flow.synthesize
      (ilp_config ~partition:(Flow.Config.Regions 2) ())
      design
  in
  let part4 =
    Flow.synthesize
      (ilp_config ~jobs:4 ~partition:(Flow.Config.Regions 2) ())
      design
  in
  (match part1.Flow.partition with
   | Some p ->
       Alcotest.(check int) "two regions" 2 p.Flow.pt_regions;
       Alcotest.(check int) "no cut pairs" 0 p.Flow.pt_cut_pairs;
       Alcotest.(check int) "no corridor" 0 p.Flow.pt_corridor_nets
   | None -> Alcotest.fail "partitioned run reported no partition stats");
  (* Selection-level identity: the partitioned choice, its power and the
     solver path reproduce the flat run exactly when the cut severs
     nothing. The WDM realization is decomposed per region too, and its
     eligibility is 1-D (perpendicular distance only), so even this
     geometrically split design shares tracks across the gap in flat
     mode — partitioned mode forfeits that sharing, which is why the
     track count is bounded rather than equal. *)
  Alcotest.(check (array int)) "partitioned choice = flat choice"
    flat.Flow.choice part1.Flow.choice;
  Alcotest.(check int64) "partitioned power = flat power, bit for bit"
    (Int64.bits_of_float flat.Flow.power)
    (Int64.bits_of_float part1.Flow.power);
  Alcotest.(check string) "solver path matches flat" flat.Flow.solver_path
    part1.Flow.solver_path;
  Alcotest.(check bool) "surviving track count within 15% of flat" true
    (float_of_int part1.Flow.assignment.Assign.final_count
    <= 1.15 *. float_of_int flat.Flow.assignment.Assign.final_count);
  Alcotest.(check string) "jobs 1 = jobs 4, byte for byte"
    (no_timings part1) (no_timings part4)

(* With real cut pairs the stitched result may differ from flat, but it
   must stay feasible and within the documented 5% power bound. *)
let test_interacting_quality_bound () =
  let design = Cases.small ~seed:7 () in
  let flat = Flow.synthesize (ilp_config ()) design in
  let part =
    Flow.synthesize
      (ilp_config ~partition:(Flow.Config.Regions 4) ())
      design
  in
  Alcotest.(check bool) "partition stats present" true
    (part.Flow.partition <> None);
  Alcotest.(check bool) "within 5% of flat power" true
    (part.Flow.power <= flat.Flow.power *. 1.05);
  Alcotest.(check bool) "solver path is still ilp" true
    (part.Flow.solver_path = "ilp")

let test_partitioned_jobs_determinism_interacting () =
  let design = Cases.small ~seed:7 () in
  let run jobs =
    Flow.synthesize
      (ilp_config ~jobs ~partition:(Flow.Config.Regions 4) ())
      design
  in
  Alcotest.(check string) "jobs 1 = jobs 4 with cut pairs"
    (no_timings (run 1)) (no_timings (run 4))

(* Below the activation threshold (or at Off) the flat flow runs and no
   stats are reported. *)
let test_inactive_partition () =
  let design = Cases.tiny () in
  let off = Flow.synthesize (ilp_config ()) design in
  let auto =
    Flow.synthesize (ilp_config ~partition:Flow.Config.Auto ()) design
  in
  Alcotest.(check bool) "off reports none" true (off.Flow.partition = None);
  Alcotest.(check bool) "auto under threshold reports none" true
    (auto.Flow.partition = None);
  Alcotest.(check string) "auto under threshold = flat" (no_timings off)
    (no_timings auto)

(* --- thermal support trim (satellite of the same PR) --- *)

let test_thermal_support () =
  let open Operon_thermal in
  let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:4.0 ~ymax:4.0 in
  let t_ref = params.Operon_optical.Params.t_ref in
  (* Whole map exactly at t_ref: empty support. *)
  let flat_grid = Gridmap.create die ~nx:8 ~ny:8 in
  let uniform = Thermal_map.make ~ambient:t_ref flat_grid in
  Alcotest.(check bool) "uniform map has empty support" true
    (Thermal_map.support ~t_ref uniform = None);
  (* One interior hot cell: support covers it, and sampling outside the
     support is exactly zero. *)
  let grid = Gridmap.create die ~nx:8 ~ny:8 in
  Gridmap.set grid 2 3 10.0;
  let map = Thermal_map.make ~ambient:t_ref grid in
  (match Thermal_map.support ~t_ref map with
   | None -> Alcotest.fail "hot cell must produce a support box"
   | Some s ->
       Alcotest.(check bool) "hot cell center inside" true
         (Rect.contains s (Thermal_map.cell_center map 2 3));
       let far =
         Segment.make (Point.make 3.9 0.1) (Point.make 3.9 3.9)
       in
       Alcotest.(check bool) "far segment outside support" true
         (not (Rect.overlaps s (Segment.bbox far)));
       Alcotest.(check (float 0.0)) "outside support detunes exactly 0" 0.0
         (Thermal_map.segment_detuning map ~t_ref far))

let () =
  Alcotest.run "partition"
    [ ( "spatial-index",
        [ QCheck_alcotest.to_alcotest prop_pairs_match_naive;
          QCheck_alcotest.to_alcotest prop_components_match_naive;
          Alcotest.test_case "ctx neighbor rows" `Quick test_ctx_neighbors;
          Alcotest.test_case "cache-invariant neighbors" `Quick
            test_ctx_neighbors_cache_invariant ] );
      ( "plan",
        [ QCheck_alcotest.to_alcotest prop_partition_invariants ] );
      ( "flow",
        [ Alcotest.test_case "split bit-identity" `Quick
            test_split_bit_identity;
          Alcotest.test_case "interacting quality bound" `Quick
            test_interacting_quality_bound;
          Alcotest.test_case "jobs determinism with cuts" `Quick
            test_partitioned_jobs_determinism_interacting;
          Alcotest.test_case "inactive partition" `Quick
            test_inactive_partition ] );
      ( "thermal-trim",
        [ Alcotest.test_case "support geometry" `Quick test_thermal_support ]
      ) ]
