(* Tests for the selection machinery: the shared context, the Formula (3)
   ILP selector, and Algorithm 1 (Lagrangian relaxation). Built around a
   crafted scenario where two crossing nets cannot both go optical, so
   the selectors must coordinate. *)

open Operon_geom
open Operon_optical
open Operon

let p = Point.make

let params = Params.default

let hnet_of_centers ~id ?(bits = 8) centers =
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 1; source_count = (if i = 0 then 1 else 0) })
      centers
  in
  Hypernet.make ~id ~group:0 ~bits ~pins

(* Candidate lists for a net: [all-optical; electrical]. *)
let simple_cands ?(bits = 8) id a b =
  let centers = [| a; b |] in
  let hnet = hnet_of_centers ~id ~bits centers in
  let topo =
    Operon_steiner.Topology.make ~positions:centers ~nterminals:2 ~edges:[ (0, 1) ]
      ~root:0
  in
  [ Candidate.of_labels params hnet topo [| Candidate.Electrical; Candidate.Optical |];
    Candidate.electrical params hnet topo ]

(* Two long nets crossing at the centre. *)
let crossing_pair () =
  [| simple_cands 0 (p 0.0 2.0) (p 4.0 2.0); simple_cands 1 (p 2.0 0.0) (p 2.0 4.0) |]

(* Independent parallel nets. *)
let parallel_pair () =
  [| simple_cands 0 (p 0.0 0.0) (p 4.0 0.0); simple_cands 1 (p 0.0 2.0) (p 4.0 2.0) |]

let test_ctx_structure () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  Alcotest.(check int) "two nets" 2 (Array.length ctx.Selection.cands);
  Alcotest.(check int) "elec fallback of net 0" 1 ctx.Selection.elec_idx.(0);
  Alcotest.(check (array int)) "net 0 neighbors" [| 1 |] ctx.Selection.neighbors.(0);
  Alcotest.(check (array int)) "net 1 neighbors" [| 0 |] ctx.Selection.neighbors.(1)

let test_ctx_parallel_nets_no_neighbors () =
  let ctx = Selection.make_ctx params (parallel_pair ()) in
  Alcotest.(check (array int)) "no coupling" [||] ctx.Selection.neighbors.(0);
  Alcotest.(check (array int)) "no coupling" [||] ctx.Selection.neighbors.(1)

let test_ctx_requires_fallback () =
  let centers = [| p 0.0 0.0; p 2.0 0.0 |] in
  let hnet = hnet_of_centers ~id:0 centers in
  let topo =
    Operon_steiner.Topology.make ~positions:centers ~nterminals:2 ~edges:[ (0, 1) ]
      ~root:0
  in
  let optical_only =
    [ Candidate.of_labels params hnet topo [| Candidate.Electrical; Candidate.Optical |] ]
  in
  try
    ignore (Selection.make_ctx params [| optical_only |]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_path_losses_include_crossing () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let both_optical = [| 0; 0 |] in
  let losses = Selection.net_path_losses ctx both_optical 0 in
  Alcotest.(check int) "one path" 1 (Array.length losses);
  let expected =
    Loss.propagation params 4.0 +. Loss.crossing_bundled params 1
  in
  Alcotest.(check bool) "loss includes coupling" true
    (Float.abs (losses.(0) -. expected) < 1e-9);
  (* demoting the neighbour removes the crossing term *)
  let alone = [| 0; 1 |] in
  let losses' = Selection.net_path_losses ctx alone 0 in
  Alcotest.(check bool) "no coupling once neighbour electrical" true
    (Float.abs (losses'.(0) -. Loss.propagation params 4.0) < 1e-9)

let test_all_electrical_feasible () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let choice = Selection.all_electrical ctx in
  Alcotest.(check bool) "feasible" true (Selection.feasible ctx choice);
  Alcotest.(check (float 1e-9)) "no violation" 0.0
    (Float.max 0.0 (Selection.worst_violation ctx choice))

let test_greedy_picks_cheapest () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let choice = Selection.greedy ctx in
  (* long 8-bit nets: optical (index 0) is cheaper per net *)
  Alcotest.(check (array int)) "both optical" [| 0; 0 |] choice

let test_polish_feasible_and_no_worse () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let start = Selection.greedy ctx in
  let out = Selection.polish ctx start in
  Alcotest.(check bool) "feasible" true (Selection.feasible ctx out);
  Alcotest.(check bool) "no worse than all-electrical" true
    (Selection.power ctx out <= Selection.power ctx (Selection.all_electrical ctx) +. 1e-9)

(* Force a conflict: shrink the loss budget so that exactly one of the two
   crossing nets can be optical. *)
let conflict_params =
  { params with
    Params.l_max = Loss.propagation params 4.0 +. (0.5 *. Loss.crossing_bundled params 1) }

let test_ilp_resolves_conflict () =
  let ctx = Selection.make_ctx conflict_params (crossing_pair ()) in
  let r = Ilp_select.select ~budget_seconds:30.0 ctx in
  Alcotest.(check bool) "feasible" true (Selection.feasible ctx r.Ilp_select.choice);
  Alcotest.(check bool) "proven" true r.Ilp_select.proven;
  (* exactly one optical, one electrical *)
  let opticals =
    Array.fold_left (fun acc j -> if j = 0 then acc + 1 else acc) 0 r.Ilp_select.choice
  in
  Alcotest.(check int) "one optical" 1 opticals

let test_ilp_no_conflict_both_optical () =
  let ctx = Selection.make_ctx params (parallel_pair ()) in
  let r = Ilp_select.select ~budget_seconds:30.0 ctx in
  Alcotest.(check (array int)) "both optical" [| 0; 0 |] r.Ilp_select.choice;
  Alcotest.(check int) "two singleton components" 2 r.Ilp_select.components

let test_ilp_power_not_above_lr () =
  (* On a shared context with a generous budget, the exact ILP must not
     lose to the heuristic LR. *)
  let ctx = Selection.make_ctx conflict_params (crossing_pair ()) in
  let ilp = Ilp_select.select ~budget_seconds:30.0 ctx in
  let lr = Lr_select.select ctx in
  Alcotest.(check bool) "ilp <= lr" true
    (ilp.Ilp_select.power <= lr.Lr_select.power +. 1e-6)

let test_lr_feasible_conflict () =
  let ctx = Selection.make_ctx conflict_params (crossing_pair ()) in
  let r = Lr_select.select ctx in
  Alcotest.(check bool) "feasible after repair" true
    (Selection.feasible ctx r.Lr_select.choice);
  Alcotest.(check bool) "iterations within paper cap" true (r.Lr_select.iterations <= 10)

let test_lr_improves_over_all_electrical () =
  let ctx = Selection.make_ctx params (crossing_pair ()) in
  let r = Lr_select.select ctx in
  let all_e = Selection.power ctx (Selection.all_electrical ctx) in
  Alcotest.(check bool) "beats all-electrical" true (r.Lr_select.power < all_e)

let test_lr_respects_max_iterations () =
  let ctx = Selection.make_ctx conflict_params (crossing_pair ()) in
  let r = Lr_select.select ~max_iterations:1 ctx in
  Alcotest.(check int) "one iteration" 1 r.Lr_select.iterations;
  Alcotest.(check bool) "still feasible" true (Selection.feasible ctx r.Lr_select.choice)

(* A chain of many crossing nets: both engines stay feasible, ILP <= LR. *)
let star_of_nets n =
  Array.init n (fun i ->
      let angle = Float.pi *. float_of_int i /. float_of_int n in
      let dx = 2.0 *. cos angle and dy = 2.0 *. sin angle in
      simple_cands ~bits:(4 + (i mod 8)) i
        (p (2.0 -. dx) (2.0 -. dy))
        (p (2.0 +. dx) (2.0 +. dy)))

let test_star_engines_consistent () =
  let nets = star_of_nets 7 in
  let ctx = Selection.make_ctx params nets in
  let ilp = Ilp_select.select ~budget_seconds:60.0 ctx in
  let lr = Lr_select.select ctx in
  Alcotest.(check bool) "ilp feasible" true (Selection.feasible ctx ilp.Ilp_select.choice);
  Alcotest.(check bool) "lr feasible" true (Selection.feasible ctx lr.Lr_select.choice);
  Alcotest.(check bool) "ilp <= lr + eps" true
    (ilp.Ilp_select.power <= lr.Lr_select.power +. 1e-6)

(* Golden core parity: the dense tableau and the sparse revised simplex
   must produce bit-identical selections end-to-end, at any worker
   count — the invariant the ILP redesign is required to preserve. *)
let test_core_parity () =
  let designs =
    [ ("tiny", Operon_benchgen.Cases.tiny ());
      ("small", Operon_benchgen.Cases.small ()) ]
  in
  List.iter
    (fun (name, design) ->
      let run core jobs =
        Flow.synthesize
          (Flow.Config.make ~mode:Flow.Ilp ~ilp_budget:60.0 ~jobs
             ~solver_core:core params)
          design
      in
      let reference = run Operon_solver.Solver.Sparse 1 in
      List.iter
        (fun (core, jobs) ->
          let r = run core jobs in
          let label =
            Printf.sprintf "%s: %s core, %d jobs" name
              (Operon_solver.Solver.core_name core) jobs
          in
          Alcotest.(check (array int)) (label ^ ": choice") reference.Flow.choice
            r.Flow.choice;
          Alcotest.(check (float 0.0)) (label ^ ": power") reference.Flow.power
            r.Flow.power)
        [ (Operon_solver.Solver.Sparse, 4);
          (Operon_solver.Solver.Dense, 1);
          (Operon_solver.Solver.Dense, 4) ])
    designs

let prop_engines_feasible_random =
  QCheck.Test.make ~name:"both engines feasible on random scenes" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Operon_util.Prng.create seed in
      let n = 3 + Operon_util.Prng.int rng 5 in
      let nets =
        Array.init n (fun i ->
            let a = p (Operon_util.Prng.float rng 4.0) (Operon_util.Prng.float rng 4.0) in
            let b = p (Operon_util.Prng.float rng 4.0) (Operon_util.Prng.float rng 4.0) in
            let b = if Point.l2 a b < 0.1 then Point.add b (p 0.5 0.5) else b in
            simple_cands ~bits:(1 + Operon_util.Prng.int rng 31) i a b)
      in
      let ctx = Selection.make_ctx params nets in
      let ilp = Ilp_select.select ~budget_seconds:10.0 ctx in
      let lr = Lr_select.select ctx in
      Selection.feasible ctx ilp.Ilp_select.choice
      && Selection.feasible ctx lr.Lr_select.choice
      && ilp.Ilp_select.power <= Selection.power ctx (Selection.all_electrical ctx) +. 1e-6)

let () =
  Alcotest.run "selection"
    [ ( "ctx",
        [ Alcotest.test_case "structure" `Quick test_ctx_structure;
          Alcotest.test_case "parallel no neighbors" `Quick test_ctx_parallel_nets_no_neighbors;
          Alcotest.test_case "requires fallback" `Quick test_ctx_requires_fallback;
          Alcotest.test_case "path losses with coupling" `Quick test_path_losses_include_crossing;
          Alcotest.test_case "all-electrical feasible" `Quick test_all_electrical_feasible;
          Alcotest.test_case "greedy cheapest" `Quick test_greedy_picks_cheapest;
          Alcotest.test_case "polish" `Quick test_polish_feasible_and_no_worse ] );
      ( "ilp",
        [ Alcotest.test_case "resolves conflict" `Quick test_ilp_resolves_conflict;
          Alcotest.test_case "no conflict both optical" `Quick test_ilp_no_conflict_both_optical;
          Alcotest.test_case "not above lr" `Quick test_ilp_power_not_above_lr ] );
      ( "lr",
        [ Alcotest.test_case "feasible conflict" `Quick test_lr_feasible_conflict;
          Alcotest.test_case "improves over electrical" `Quick test_lr_improves_over_all_electrical;
          Alcotest.test_case "max iterations" `Quick test_lr_respects_max_iterations ] );
      ( "engines",
        [ Alcotest.test_case "star consistent" `Quick test_star_engines_consistent;
          Alcotest.test_case "core parity" `Quick test_core_parity;
          QCheck_alcotest.to_alcotest prop_engines_feasible_random ] ) ]
