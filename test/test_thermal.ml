(* Tests for the thermal-reliability scenario mode: the map file format's
   exact round trip, the deterministic synthetic generator, temperature-
   aware selection context, the inert-spec bit-identity contract, and the
   Pareto front's monotonicity. *)

open Operon_geom
open Operon_util
open Operon_optical
open Operon
open Operon_benchgen
open Operon_thermal

let params = Params.default

let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:3.0 ~ymax:3.0

let synth ?(seed = 1) () =
  Thermal_map.synthetic ~nx:8 ~ny:8 ~hotspots:3 ~amplitude:30.0 ~decay:0.2
    ~die (Prng.create seed)

(* ------------------------------------------------------------------ *)
(* File format                                                         *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let m = synth () in
  let text = Thermal_map.to_string m in
  match Thermal_map.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok m' ->
      (* %.17g cell values reconstruct the exact binary64s, so the
         re-serialization is byte-identical. *)
      Alcotest.(check string) "exact round trip" text (Thermal_map.to_string m');
      Alcotest.(check string)
        "same summary" (Thermal_map.summary m) (Thermal_map.summary m')

let test_save_load () =
  let m = synth () in
  let path = Filename.temp_file "operon-thermal" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Thermal_map.save path m;
      match Thermal_map.load path with
      | Error msg -> Alcotest.fail msg
      | Ok m' ->
          Alcotest.(check string)
            "file round trip" (Thermal_map.to_string m) (Thermal_map.to_string m'))

let test_synthetic_deterministic () =
  Alcotest.(check string)
    "same seed, same field"
    (Thermal_map.to_string (synth ()))
    (Thermal_map.to_string (synth ()));
  Alcotest.(check bool)
    "different seed, different field" false
    (Thermal_map.to_string (synth ()) = Thermal_map.to_string (synth ~seed:2 ()))

let expect_error name text fragment =
  match Thermal_map.of_string text with
  | Ok _ -> Alcotest.failf "%s: malformed map accepted" name
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" name msg fragment)
        true (contains msg fragment)

let test_of_string_errors () =
  let good = Thermal_map.to_string (synth ()) in
  expect_error "bad header" ("nonsense\n" ^ good) "line 1";
  expect_error "truncated" "operon-thermal-map 1\ndie 0 0 1 1\n" "truncated";
  expect_error "bad die"
    "operon-thermal-map 1\ndie 0 0 zero 1\ngrid 2 2\nambient 40\n1 2\n3 4\n"
    "die xmax";
  expect_error "empty die"
    "operon-thermal-map 1\ndie 1 0 1 1\ngrid 2 2\nambient 40\n1 2\n3 4\n"
    "empty die";
  expect_error "bad grid"
    "operon-thermal-map 1\ndie 0 0 1 1\ngrid 0 2\nambient 40\n1 2\n3 4\n"
    "grid";
  expect_error "bad ambient"
    "operon-thermal-map 1\ndie 0 0 1 1\ngrid 2 2\nambient hot\n1 2\n3 4\n"
    "ambient";
  expect_error "missing row"
    "operon-thermal-map 1\ndie 0 0 1 1\ngrid 2 2\nambient 40\n1 2\n"
    "missing row";
  expect_error "extra row"
    "operon-thermal-map 1\ndie 0 0 1 1\ngrid 2 2\nambient 40\n1 2\n3 4\n5 6\n"
    "extra row";
  expect_error "short row"
    "operon-thermal-map 1\ndie 0 0 1 1\ngrid 2 2\nambient 40\n1\n3 4\n"
    "has 1 cells";
  expect_error "bad cell"
    "operon-thermal-map 1\ndie 0 0 1 1\ngrid 2 2\nambient 40\n1 x\n3 4\n"
    "bad cell value"

let test_sampling () =
  let m = synth () in
  (* temp_at is ambient plus the local rise; detuning along a segment is
     the worst |T - t_ref| over its samples, so it can never undershoot
     either endpoint's deviation. *)
  let a = Point.make 0.2 0.2 and b = Point.make 2.8 2.8 in
  let t_ref = params.Params.t_ref in
  let dev p = Float.abs (Thermal_map.temp_at m p -. t_ref) in
  let seg = Segment.make a b in
  let d = Thermal_map.segment_detuning m ~t_ref seg in
  Alcotest.(check bool) "detuning >= endpoint a" true (d >= dev a -. 1e-12);
  Alcotest.(check bool) "detuning >= endpoint b" true (d >= dev b -. 1e-12);
  Alcotest.(check bool)
    "ambient floor" true
    (Thermal_map.temp_at m (Point.make 0.01 0.01) >= Thermal_map.ambient m)

(* ------------------------------------------------------------------ *)
(* Temperature-aware selection                                         *)
(* ------------------------------------------------------------------ *)

let prepared =
  lazy
    (let design = Cases.tiny ~seed:3 () in
     let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
     (design, hnets, ctx))

let test_with_thermal () =
  let _, _, ctx = Lazy.force prepared in
  let map = synth () in
  let profile = Selection.thermal_profile ctx map in
  let tctx = Selection.with_thermal ctx profile ~weight:2.0 in
  let plain = Selection.greedy ctx in
  (* Penalties are non-negative, so thermal path losses can only grow
     and the margin can only shrink relative to the raw loss check. *)
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun p loss ->
          let tloss = (Selection.net_path_losses tctx plain i).(p) in
          Alcotest.(check bool) "penalty >= 0" true (tloss >= loss -. 1e-12))
        (Selection.net_path_losses ctx plain i))
    plain;
  let obj_plain = Selection.objective ctx 0 plain.(0) in
  let obj_thermal = Selection.objective tctx 0 plain.(0) in
  Alcotest.(check bool) "objective grows" true (obj_thermal >= obj_plain -. 1e-12);
  Alcotest.(check bool)
    "margin consistent" true
    (Selection.thermal_margin tctx plain
    <= ctx.Selection.params.Params.l_max +. 1e-12);
  Alcotest.check_raises "negative weight"
    (Invalid_argument
       "Selection.with_thermal: weight must be finite and non-negative")
    (fun () -> ignore (Selection.with_thermal ctx profile ~weight:(-1.0)))

let test_inert_bit_identity () =
  let design, hnets, ctx = Lazy.force prepared in
  let map = synth () in
  let plain =
    Flow.select_with (Flow.Config.default params) design hnets ctx
  in
  let inert =
    Flow.select_with
      (Flow.Config.with_thermal ~weights:[| 0.0 |] map
         (Flow.Config.default params))
      design hnets ctx
  in
  Alcotest.(check bool) "same choice" true (inert.Flow.choice = plain.Flow.choice);
  Alcotest.(check bool) "no thermal block" true (inert.Flow.thermal = None);
  Alcotest.(check string)
    "byte-identical export"
    (Export.flow_to_json ~timings:false plain)
    (Export.flow_to_json ~timings:false inert)

let test_pareto_front () =
  let design, hnets, ctx = Lazy.force prepared in
  let map = synth () in
  let swept =
    Flow.select_with
      (Flow.Config.with_thermal map (Flow.Config.default params))
      design hnets ctx
  in
  match swept.Flow.thermal with
  | None -> Alcotest.fail "thermal sweep produced no result"
  | Some tr ->
      Alcotest.(check int)
        "swept the default ladder"
        (Array.length Flow.Config.default_thermal_weights)
        tr.Flow.tr_swept;
      Alcotest.(check bool) "front non-empty" true (tr.Flow.tr_front <> []);
      Alcotest.(check int)
        "front + dropped = swept" tr.Flow.tr_swept
        (List.length tr.Flow.tr_front + tr.Flow.tr_dropped);
      (* Strict monotonicity in both coordinates is the front's defining
         contract: every kept point trades real power for real margin. *)
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            a.Flow.tp_power < b.Flow.tp_power
            && a.Flow.tp_margin < b.Flow.tp_margin
            && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone front" true (monotone tr.Flow.tr_front);
      (* Each point's power is recomputable from its choice alone. *)
      List.iter
        (fun (p : Flow.thermal_point) ->
          Alcotest.(check (float 1e-9))
            "power recomputes" p.Flow.tp_power
            (Selection.power ctx p.Flow.tp_choice))
        tr.Flow.tr_front

let test_jobs_invariance () =
  let map = synth () in
  let design = Cases.tiny ~seed:3 () in
  let run jobs =
    let config =
      Flow.Config.with_thermal map
        (Flow.Config.make ~jobs params)
    in
    Export.flow_to_json ~timings:false (Flow.synthesize config design)
  in
  Alcotest.(check string) "jobs 1 = jobs 4" (run 1) (run 4)

let () =
  Alcotest.run "thermal"
    [ ( "format",
        [ Alcotest.test_case "round trip" `Quick test_roundtrip;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "sampling" `Quick test_sampling ] );
      ( "selection",
        [ Alcotest.test_case "with_thermal" `Quick test_with_thermal;
          Alcotest.test_case "inert bit-identity" `Quick test_inert_bit_identity;
          Alcotest.test_case "pareto front" `Quick test_pareto_front;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance ] ) ]
