(* Quickstart: build a tiny design by hand, run the full OPERON flow, and
   inspect the result.

     dune exec examples/quickstart.exe

   The design has three signal groups on a 3x3 cm die: a wide 24-bit bus
   crossing the chip (optical territory), a short 2-bit control pair
   (electrical territory), and an 8-bit bus with two destinations (where
   hybrid routes shine). *)

open Operon_geom
open Operon_optical
open Operon

let pt = Point.make

(* A bus: [bits] parallel bits from [src] to each destination, pins at a
   2 um pitch. *)
let bus name ~src ~dsts ~bits =
  let make_bits =
    Array.init bits (fun b ->
        let off = pt (0.002 *. float_of_int b) 0.0 in
        Signal.bit
          ~source:(Point.add src off)
          ~sinks:(Array.map (fun d -> Point.add d off) (Array.of_list dsts)))
  in
  Signal.group ~name ~bits:make_bits

let () =
  let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:3.0 ~ymax:3.0 in
  let design =
    Signal.design ~die
      ~groups:
        [| bus "ddr_data" ~src:(pt 0.2 0.2) ~dsts:[ pt 2.6 2.6 ] ~bits:24;
           bus "ctrl" ~src:(pt 1.0 1.0) ~dsts:[ pt 1.2 1.1 ] ~bits:2;
           bus "noc_flit" ~src:(pt 0.3 2.5) ~dsts:[ pt 2.5 0.4; pt 2.7 1.8 ] ~bits:8 |]
  in
  let params = Params.default in

  (* One call runs the whole paper flow: clustering, baseline topologies,
     co-design DP, Lagrangian selection, WDM placement + assignment. *)
  let result = Flow.synthesize (Flow.Config.make ~seed:2024 params) design in

  let nets, hnets, hpins = Processing.stats result.Flow.hnets in
  Printf.printf "design: %d bits -> %d hyper nets, %d hyper pins\n\n" nets hnets hpins;

  Printf.printf "%-10s %5s %8s  %s\n" "group" "bits" "power" "route";
  Array.iteri
    (fun i j ->
      let c = result.Flow.ctx.Selection.cands.(i).(j) in
      let h = c.Candidate.hnet in
      let group = design.Signal.groups.(h.Hypernet.group).Signal.name in
      let route =
        if c.Candidate.pure_electrical then "electrical"
        else if c.Candidate.elec_wirelength > 1e-9 then
          Printf.sprintf "hybrid (%d mod, %d det, %.2f cm copper)"
            c.Candidate.n_mod c.Candidate.n_det c.Candidate.elec_wirelength
        else Printf.sprintf "optical (%d mod, %d det)" c.Candidate.n_mod c.Candidate.n_det
      in
      Printf.printf "%-10s %5d %8.3f  %s\n" group h.Hypernet.bits c.Candidate.power route)
    result.Flow.choice;

  let electrical = Baseline.electrical_power params design in
  Printf.printf "\ntotal OPERON power:     %8.3f pJ/bit-units\n" result.Flow.power;
  Printf.printf "all-electrical power:   %8.3f  (%.1fx more)\n" electrical
    (electrical /. result.Flow.power);
  Printf.printf "WDM waveguides:         %d placed, %d after assignment\n"
    result.Flow.assignment.Assign.initial_count
    result.Flow.assignment.Assign.final_count
