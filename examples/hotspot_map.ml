(* Power hotspot maps (the paper's Figure 9), rendered as ASCII heat
   maps for a shrunken I1-style floorplan.

     dune exec examples/hotspot_map.exe

   Left-to-right reading order follows the paper: GLOW's optical and
   electrical layers first, then OPERON's. OPERON's electrical layer
   should be visibly cooler while the optical layers look alike. *)

open Operon_optical
open Operon
open Operon_benchgen

let () =
  let params = Params.default in
  let design = Gen.generate { Cases.i1 with Gen.n_groups = 120; seed = 42 } in
  let result = Flow.synthesize (Flow.Config.default params) design in
  let adjusted = result.Flow.ctx.Selection.params in
  let glow = Baseline.glow adjusted result.Flow.hnets in

  let die = design.Signal.die in
  let operon_maps = Hotspot.of_selection ~nx:32 ~ny:16 ~die result.Flow.ctx result.Flow.choice in
  let glow_maps =
    Hotspot.of_selection ~nx:32 ~ny:16 ~die glow.Baseline.ctx glow.Baseline.choice
  in

  Printf.printf "GLOW   total power %.1f (optical nets %d, electrical %d)\n"
    glow.Baseline.power glow.Baseline.optical_nets glow.Baseline.electrical_nets;
  Printf.printf "OPERON total power %.1f\n\n" result.Flow.power;

  Printf.printf "GLOW optical layer (EO/OE conversion energy):\n%s\n"
    (Operon_geom.Gridmap.render glow_maps.Hotspot.optical);
  Printf.printf "OPERON optical layer:\n%s\n"
    (Operon_geom.Gridmap.render operon_maps.Hotspot.optical);
  Printf.printf "GLOW electrical layer (copper dissipation):\n%s\n"
    (Operon_geom.Gridmap.render glow_maps.Hotspot.electrical);
  Printf.printf "OPERON electrical layer:\n%s\n"
    (Operon_geom.Gridmap.render operon_maps.Hotspot.electrical);

  Printf.printf "optical-layer correlation GLOW vs OPERON: %.3f\n"
    (Operon_geom.Gridmap.correlation glow_maps.Hotspot.optical operon_maps.Hotspot.optical);
  Printf.printf "electrical totals: GLOW %.2f vs OPERON %.2f\n"
    (Operon_geom.Gridmap.total glow_maps.Hotspot.electrical)
    (Operon_geom.Gridmap.total operon_maps.Hotspot.electrical)
