(* The full backend, end to end: synthesis -> wavelength channels ->
   post-route signoff -> delay analysis -> JSON export.

     dune exec examples/full_backend.exe

   This is the workflow a physical-design team would script: run OPERON,
   pin every bus bit to a concrete wavelength, re-verify detection margins
   on the physical waveguide geometry, check the timing win, and hand the
   result to downstream tooling as JSON. *)

open Operon_optical
open Operon
open Operon_benchgen

let () =
  let params = Params.default in
  let design = Cases.small ~seed:2024 () in
  Printf.printf "synthesizing %d bits in %d groups...\n"
    (Signal.net_count design)
    (Array.length design.Signal.groups);

  (* 1. synthesis *)
  let result = Flow.synthesize (Flow.Config.default params) design in
  let adjusted = result.Flow.ctx.Selection.params in
  Printf.printf "power %.2f across %d hyper nets; %d WDM waveguides\n\n"
    result.Flow.power
    (Array.length result.Flow.hnets)
    result.Flow.assignment.Assign.final_count;

  (* 2. wavelength channels *)
  let conns = result.Flow.placement.Wdm_place.conns in
  let plan = Channels.assign adjusted conns result.Flow.assignment in
  (match Channels.verify adjusted conns plan with
   | Ok () -> print_endline "wavelength plan: valid"
   | Error msg -> failwith msg);
  Printf.printf "wavelength spatial reuse: %.1f%%\n\n"
    (100.0 *. Channels.spatial_reuse plan result.Flow.assignment);

  (* 3. post-route signoff *)
  let s =
    Signoff.run adjusted result.Flow.ctx result.Flow.choice result.Flow.placement
      result.Flow.assignment
  in
  Printf.printf
    "signoff: %d optical paths, worst physical loss %.2f dB (budget %.0f dB), %d violations\n"
    s.Signoff.paths_checked s.Signoff.worst_loss_db adjusted.Params.l_max
    s.Signoff.violations;
  Printf.printf "  routing detour x%.2f, crossing loss est %.2f dB vs physical %.2f dB\n\n"
    s.Signoff.mean_detour_ratio s.Signoff.mean_estimated_crossing_db
    s.Signoff.mean_physical_crossing_db;

  (* 4. timing *)
  let d = Delay.default in
  let sel = Timing.selection d result.Flow.ctx result.Flow.choice in
  let reference = Timing.electrical_reference d result.Flow.ctx in
  Printf.printf "delay: mean worst-sink %.0f ps (all-copper %.0f ps, %.1fx faster)\n\n"
    sel.Timing.mean_worst_ps reference.Timing.mean_worst_ps
    (reference.Timing.mean_worst_ps /. Float.max 1e-9 sel.Timing.mean_worst_ps);

  (* 5. export *)
  let json = Export.flow_to_json ~channels:plan result in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "operon_backend.json" in
  Export.write_file path json;
  Printf.printf "exported %d bytes of JSON to %s\n" (String.length json) path
