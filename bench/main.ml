(* OPERON benchmark harness — regenerates every table and figure of the
   paper's evaluation (Section 5).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # Table 1
     dune exec bench/main.exe fig3b      # Fig. 3(b) splitter cascade
     dune exec bench/main.exe fig5       # Fig. 5 co-design candidates
     dune exec bench/main.exe fig8       # Fig. 8 WDM counts
     dune exec bench/main.exe fig9       # Fig. 9 hotspot maps (case I2)
     dune exec bench/main.exe serve      # batch service throughput/latency
     dune exec bench/main.exe sustained  # multi-shard saturation + kill -9 scenario
     dune exec bench/main.exe eco        # incremental ECO vs cold re-synthesis
     dune exec bench/main.exe solver     # dense tableau vs sparse revised simplex
     dune exec bench/main.exe scale      # 10k-100k-net scale tiers vs wall-clock targets
     dune exec bench/main.exe thermal    # thermal Pareto sweep: power vs worst-case margin
     dune exec bench/main.exe micro      # Bechamel kernel micro-benchmarks

   The ILP wall-clock budget per case defaults to 120 s (the paper used
   3000 s on GUROBI); override with OPERON_ILP_BUDGET=<seconds>. *)

open Operon_util
open Operon_optical
open Operon
open Operon_benchgen
open Operon_engine

let params = Params.default

let ilp_budget =
  match Sys.getenv_opt "OPERON_ILP_BUDGET" with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v -> v
      | None ->
          Printf.eprintf
            "bench: ignoring malformed OPERON_ILP_BUDGET=%S (using 120 s)\n%!" s;
          120.0)
  | None -> 120.0

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  name : string;
  nets : int;
  hnets : int;
  hpins : int;
  p_elec : float;
  p_glow : float;
  p_ilp : float;
  cpu_ilp : float;
  ilp_timed_out : bool;
  p_lr : float;
  cpu_lr : float;
  prep_sink : Instrument.sink;  (** processing/baselines/codesign stages *)
  lr_sink : Instrument.sink;  (** select/wdm/assign under LR *)
  ilp_sink : Instrument.sink;  (** select/wdm/assign under ILP *)
  faults : int;  (** degradations across the LR and ILP runs *)
  quarantined_nets : int;  (** nets on the all-electrical fallback *)
  lr_degradation : string;  (** Export.degradation_to_json of the LR run *)
  ilp_degradation : string;  (** same for the ILP run *)
}

let run_case spec =
  let design = Gen.generate spec in
  let p_elec = Baseline.electrical_power params design in
  let prep_sink = Instrument.create () in
  let hnets, ctx = Flow.prepare_with ~sink:prep_sink (Flow.Config.default params) design in
  let adjusted = ctx.Selection.params in
  let nets, hn, hp = Processing.stats hnets in
  let glow = Baseline.glow adjusted hnets in
  let lr_sink = Instrument.create () in
  let lr =
    Flow.select_with ~sink:lr_sink
      (Flow.Config.make ~mode:Flow.Lr params)
      design hnets ctx
  in
  let ilp_sink = Instrument.create () in
  let ilp =
    Flow.select_with ~sink:ilp_sink
      (Flow.Config.make ~mode:Flow.Ilp ~ilp_budget params)
      design hnets ctx
  in
  let ilp_r = Option.get ilp.Flow.ilp in
  { name = spec.Gen.name;
    nets;
    hnets = hn;
    hpins = hp;
    p_elec;
    p_glow = glow.Baseline.power;
    p_ilp = ilp.Flow.power;
    cpu_ilp = ilp.Flow.select_seconds;
    ilp_timed_out = ilp_r.Ilp_select.timed_out > 0;
    p_lr = lr.Flow.power;
    cpu_lr = lr.Flow.select_seconds;
    prep_sink;
    lr_sink;
    ilp_sink;
    faults = List.length lr.Flow.faults + List.length ilp.Flow.faults;
    quarantined_nets =
      Array.length lr.Flow.quarantined_nets
      + Array.length ilp.Flow.quarantined_nets;
    lr_degradation = Export.degradation_to_json lr;
    ilp_degradation = Export.degradation_to_json ilp }

(* ------------------------------------------------------------------ *)
(* Machine-readable results (bench/results/latest.json)               *)
(* ------------------------------------------------------------------ *)

let results_dir = Filename.concat "bench" "results"

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    ensure_dir (Filename.dirname path);
    (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let stage_seconds sink stage = Instrument.seconds sink stage

let run_stamp =
  lazy
    (let tm = Unix.gmtime (Unix.time ()) in
     Printf.sprintf "%04d-%02d-%02dT%02d%02d%02dZ.json" (tm.Unix.tm_year + 1900)
       (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
       tm.Unix.tm_sec)

(* Rows of the cached-vs-uncached selection comparison (the "cache"
   target); serialized into latest.json next to the Table 1 cases. *)
type cache_row = {
  c_name : string;
  c_cached_s : float;
  c_uncached_s : float;
  c_hits : int;
  c_misses : int;
  c_uncached_queries : int;
  c_pairs : int;
  c_entries : int;
  c_build_s : float;
  c_identical : bool;  (** cached and uncached selections agree bit-for-bit *)
}

(* Rows of the batch-service benchmark (the "serve" target). *)
type serve_row = {
  s_name : string;
  s_workers : int;
  s_jobs : int;  (** repeat jobs measured (after the cold first submit) *)
  s_wall_s : float;  (** wall-clock of the repeat batch *)
  s_throughput : float;  (** repeat jobs per second *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_first_s : float;  (** cold submit->result latency (registry miss) *)
  s_repeat_s : float;  (** mean repeat latency (registry hits) *)
  s_hits : int;
  s_misses : int;
}

(* Rows of the sustained-load serving benchmark (the "sustained"
   target): the multi-shard server driven as a subprocess at
   saturation, per shard count, with an optional kill-one-shard-mid-load
   scenario. Serialized into the same "serve" section of latest.json as
   the in-process rows. *)
type sustained_row = {
  u_shards : int;
  u_jobs : int;
  u_wall_s : float;  (** submit of the first job to last terminal *)
  u_throughput : float;  (** terminals per second at saturation *)
  u_p50_ms : float;  (** completion-time percentiles from batch start *)
  u_p95_ms : float;
  u_p99_ms : float;
  u_killed : bool;  (** one shard was kill -9'd mid-batch *)
  u_completed : int;
  u_crashed : int;  (** shard_crash terminals (retried-then-died) *)
  u_restarts : int;  (** supervisor restart counter after the batch *)
  u_crash_signals : int;
}

(* Rows of the incremental-ECO benchmark (the "eco" target). *)
type eco_row = {
  e_name : string;
  e_ratio : float;  (** fraction of signal groups displaced *)
  e_nets : int;
  e_reused : int;
  e_recomputed : int;
  e_xrows : int;  (** crossing-matrix rows aliased from the baseline *)
  e_cold_s : float;  (** cold prepare + select wall-clock *)
  e_eco_s : float;  (** incremental prepare + select wall-clock *)
  e_identical : bool;  (** ECO and cold exports agree byte-for-byte *)
  e_cold_fallback : bool;
}

(* Rows of the solver-core comparison (the "solver" target): dense
   tableau vs sparse revised simplex on the same prepared case. *)
type solver_row = {
  v_name : string;
  v_nets : int;
  v_dense_s : float;
  v_sparse_s : float;
  v_dense_pivots : int;
  v_sparse_pivots : int;
  v_refactorizations : int;  (** sparse-core basis rebuilds *)
  v_dense_to : bool;  (** dense run hit the ILP budget *)
  v_sparse_to : bool;
  v_identical : bool;  (** choice and power agree bit-for-bit *)
}

(* Rows of the scale-tier benchmark (the "scale" target): end-to-end LR
   synthesis wall-clock on the 10k-100k-net tiers, against each tier's
   declared budget. *)
type scale_row = {
  g_name : string;
  g_target_nets : int;
  g_target_s : float;
  g_nets : int;
  g_hnets : int;
  g_gen_s : float;
  g_prep_s : float;
  g_select_s : float;
  g_power : float;
  g_met : bool;  (** total wall-clock within the tier target *)
  g_part_regions : int;  (** regions the partitioned run formed *)
  g_part_prep_s : float;  (** partitioned-mode preparation wall-clock *)
  g_part_select_s : float;  (** partitioned selection incl. stitch *)
  g_part_power : float;
  g_part_speedup : float;  (** flat / partitioned (prepare + select) *)
  g_part_power_delta_pct : float;
      (** partitioned power vs flat, percent (positive = worse) *)
}

(* Rows of the thermal Pareto-sweep benchmark (the "thermal" target):
   power/margin trade-off of the weight ladder on a synthetic hotspot
   map, per Table 1 case. *)
type thermal_row = {
  t_name : string;
  t_nets : int;
  t_map : string;  (** Thermal_map.summary of the synthetic field *)
  t_swept : int;
  t_front : int;
  t_dropped : int;
  t_sweep_s : float;
  t_base_power : float;  (** temperature-blind selection's power *)
  t_base_margin : float;  (** its worst-case thermal margin, dB *)
  t_best_power : float;  (** power of the front's best-margin point *)
  t_best_margin : float;
  t_identical : bool;
      (** an inert (weight-0-only) thermal run reproduces the plain
          selection bit-for-bit *)
}

(* One results file serves every target: whichever ran last rewrites
   latest.json with every section accumulated so far this process. *)
let table1_results : table1_row list ref = ref []
let cache_results : cache_row list ref = ref []
let serve_results : serve_row list ref = ref []
let sustained_results : sustained_row list ref = ref []
let eco_results : eco_row list ref = ref []
let solver_results : solver_row list ref = ref []
let scale_results : scale_row list ref = ref []
let thermal_results : thermal_row list ref = ref []

let write_results () =
  let jf = Printf.sprintf "%.6f" in
  let case_json r =
    Printf.sprintf
      {|    {"name":"%s","nets":%d,"hnets":%d,"hpins":%d,
     "power":{"electrical":%s,"glow":%s,"operon_ilp":%s,"operon_lr":%s},
     "cpu":{"ilp_select":%s,"lr_select":%s,"ilp_timed_out":%b},
     "faults":%d,"quarantined_nets":%d,
     "degradation":{"lr":%s,"ilp":%s},
     "stages":{"prepare":%s,"lr":%s,"ilp":%s}}|}
      r.name r.nets r.hnets r.hpins (jf r.p_elec) (jf r.p_glow) (jf r.p_ilp)
      (jf r.p_lr) (jf r.cpu_ilp) (jf r.cpu_lr) r.ilp_timed_out r.faults
      r.quarantined_nets r.lr_degradation r.ilp_degradation
      (Export.trace_to_json r.prep_sink)
      (Export.trace_to_json r.lr_sink)
      (Export.trace_to_json r.ilp_sink)
  in
  let cache_json r =
    Printf.sprintf
      {|    {"name":"%s","cached_seconds":%s,"uncached_seconds":%s,"speedup":%s,
     "hits":%d,"misses":%d,"uncached_queries":%d,
     "pairs":%d,"entries":%d,"build_seconds":%s,"choice_identical":%b}|}
      r.c_name (jf r.c_cached_s) (jf r.c_uncached_s)
      (jf (r.c_uncached_s /. Float.max 1e-9 r.c_cached_s))
      r.c_hits r.c_misses r.c_uncached_queries r.c_pairs r.c_entries
      (jf r.c_build_s) r.c_identical
  in
  let serve_json r =
    Printf.sprintf
      {|    {"name":"%s","workers":%d,"jobs":%d,"wall_seconds":%s,
     "throughput_jobs_per_s":%s,"p50_ms":%s,"p95_ms":%s,
     "first_submit_seconds":%s,"repeat_submit_seconds":%s,"registry_speedup":%s,
     "registry":{"hits":%d,"misses":%d}}|}
      r.s_name r.s_workers r.s_jobs (jf r.s_wall_s) (jf r.s_throughput)
      (jf r.s_p50_ms) (jf r.s_p95_ms) (jf r.s_first_s) (jf r.s_repeat_s)
      (jf (r.s_first_s /. Float.max 1e-9 r.s_repeat_s))
      r.s_hits r.s_misses
  in
  let sustained_json r =
    Printf.sprintf
      {|    {"name":"sustained","shards":%d,"jobs":%d,"wall_seconds":%s,
     "throughput_jobs_per_s":%s,"p50_ms":%s,"p95_ms":%s,"p99_ms":%s,
     "kill_one_shard":%b,"completed":%d,"shard_crash":%d,
     "supervisor":{"restarts":%d,"crash_signals":%d}}|}
      r.u_shards r.u_jobs (jf r.u_wall_s) (jf r.u_throughput) (jf r.u_p50_ms)
      (jf r.u_p95_ms) (jf r.u_p99_ms) r.u_killed r.u_completed r.u_crashed
      r.u_restarts r.u_crash_signals
  in
  let eco_json r =
    Printf.sprintf
      {|    {"name":"%s","mutate_ratio":%s,"nets":%d,
     "nets_reused":%d,"nets_recomputed":%d,"xrows_reused":%d,
     "cold_seconds":%s,"eco_seconds":%s,"speedup":%s,
     "identical":%b,"cold_fallback":%b}|}
      r.e_name (jf r.e_ratio) r.e_nets r.e_reused r.e_recomputed r.e_xrows
      (jf r.e_cold_s) (jf r.e_eco_s)
      (jf (r.e_cold_s /. Float.max 1e-9 r.e_eco_s))
      r.e_identical r.e_cold_fallback
  in
  let solver_json r =
    Printf.sprintf
      {|    {"name":"%s","nets":%d,"dense_seconds":%s,"sparse_seconds":%s,
     "speedup":%s,"pivots":{"dense":%d,"sparse":%d},"refactorizations":%d,
     "timed_out":{"dense":%b,"sparse":%b},"choice_identical":%b}|}
      r.v_name r.v_nets (jf r.v_dense_s) (jf r.v_sparse_s)
      (jf (r.v_dense_s /. Float.max 1e-9 r.v_sparse_s))
      r.v_dense_pivots r.v_sparse_pivots r.v_refactorizations r.v_dense_to
      r.v_sparse_to r.v_identical
  in
  let scale_json r =
    Printf.sprintf
      {|    {"name":"%s","target_nets":%d,"target_seconds":%s,
     "nets":%d,"hnets":%d,"power":%s,
     "generate_seconds":%s,"prepare_seconds":%s,"select_seconds":%s,
     "total_seconds":%s,"target_met":%b,
     "partitioned":{"regions":%d,"prepare_seconds":%s,"select_seconds":%s,
       "power":%s,"speedup":%s,"power_delta_pct":%s}}|}
      r.g_name r.g_target_nets (jf r.g_target_s) r.g_nets r.g_hnets
      (jf r.g_power) (jf r.g_gen_s) (jf r.g_prep_s) (jf r.g_select_s)
      (jf (r.g_gen_s +. r.g_prep_s +. r.g_select_s))
      r.g_met r.g_part_regions (jf r.g_part_prep_s) (jf r.g_part_select_s)
      (jf r.g_part_power) (jf r.g_part_speedup)
      (jf r.g_part_power_delta_pct)
  in
  let thermal_json r =
    Printf.sprintf
      {|    {"name":"%s","nets":%d,"map":"%s",
     "swept":%d,"front":%d,"dropped":%d,"sweep_seconds":%s,
     "baseline":{"power":%s,"margin_db":%s},
     "best_margin":{"power":%s,"margin_db":%s},
     "inert_identical":%b}|}
      r.t_name r.t_nets r.t_map r.t_swept r.t_front r.t_dropped
      (jf r.t_sweep_s) (jf r.t_base_power) (jf r.t_base_margin)
      (jf r.t_best_power) (jf r.t_best_margin) r.t_identical
  in
  let json =
    Printf.sprintf
      "{\n  \"ilp_budget\": %s,\n  \"cases\": [\n%s\n  ],\n  \"cache_bench\": [\n%s\n  ],\n  \"serve\": [\n%s\n  ],\n  \"eco\": [\n%s\n  ],\n  \"solver\": [\n%s\n  ],\n  \"scale_tiers\": [\n%s\n  ],\n  \"thermal\": [\n%s\n  ]\n}\n"
      (jf ilp_budget)
      (String.concat ",\n" (List.map case_json !table1_results))
      (String.concat ",\n" (List.map cache_json !cache_results))
      (String.concat ",\n"
         (List.map serve_json !serve_results
         @ List.map sustained_json !sustained_results))
      (String.concat ",\n" (List.map eco_json !eco_results))
      (String.concat ",\n" (List.map solver_json !solver_results))
      (String.concat ",\n" (List.map scale_json !scale_results))
      (String.concat ",\n" (List.map thermal_json !thermal_results))
  in
  ensure_dir results_dir;
  let path = Filename.concat results_dir "latest.json" in
  Export.write_file path json;
  (* Also keep a per-run timestamped copy alongside latest.json, so
     successive bench runs remain comparable after the fact. The stamp
     is fixed once per process: every target of one run accumulates
     into the same file. *)
  let stamped = Filename.concat results_dir (Lazy.force run_stamp) in
  Export.write_file stamped json;
  Printf.printf "wrote %s and %s (%d bytes)\n\n%!" path stamped
    (String.length json)

let stage_timing_table rows =
  print_endline "=== per-stage wall-clock seconds (candidate stages shared by both engines) ===";
  let cell s = Printf.sprintf "%.3f" s in
  let render r =
    [ r.name;
      cell (stage_seconds r.prep_sink Instrument.Processing);
      cell (stage_seconds r.prep_sink Instrument.Baselines);
      cell (stage_seconds r.prep_sink Instrument.Codesign);
      cell (stage_seconds r.lr_sink Instrument.Select);
      cell (stage_seconds r.ilp_sink Instrument.Select);
      cell (stage_seconds r.lr_sink Instrument.Wdm);
      cell (stage_seconds r.lr_sink Instrument.Assign) ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "processing"; "baselines"; "codesign"; "select(LR)";
           "select(ILP)"; "wdm"; "assign" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline ""

let table1 () =
  print_endline "=== Table 1: Performance Comparisons among Different Designs ===";
  Printf.printf "(ILP budget %.0f s per case; the paper capped GUROBI at 3000 s)\n" ilp_budget;
  let rows = List.map run_case Cases.all in
  let avg f = Stats.mean (Array.of_list (List.map f rows)) in
  let avg_elec = avg (fun r -> r.p_elec) in
  let avg_glow = avg (fun r -> r.p_glow) in
  let avg_ilp = avg (fun r -> r.p_ilp) in
  let avg_lr = avg (fun r -> r.p_lr) in
  let render_row r =
    [ r.name; string_of_int r.nets; string_of_int r.hnets; string_of_int r.hpins;
      Report.float_cell r.p_elec; Report.float_cell r.p_glow; Report.float_cell r.p_ilp;
      (if r.ilp_timed_out then Printf.sprintf "> %.0f" ilp_budget
       else Report.float_cell ~decimals:1 r.cpu_ilp);
      Report.float_cell r.p_lr; Report.float_cell ~decimals:1 r.cpu_lr ]
  in
  let avg_row =
    [ "average"; "-"; "-"; "-"; Report.float_cell avg_elec; Report.float_cell avg_glow;
      Report.float_cell avg_ilp; "-"; Report.float_cell avg_lr; "-" ]
  in
  let ratio_row =
    [ "ratio"; "-"; "-"; "-"; Report.ratio_cell avg_elec avg_glow; "1.000";
      Report.ratio_cell avg_ilp avg_glow; "-"; Report.ratio_cell avg_lr avg_glow; "-" ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "#Net"; "#HNet"; "#HPin"; "Electrical"; "Optical"; "OPERON(ILP)";
           "CPU(s)"; "OPERON(LR)"; "CPU(s)" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.map render_row rows @ [ avg_row; ratio_row ]));
  Printf.printf
    "\npaper reference ratios (vs Optical): electrical 3.565, ILP 0.860, LR 0.889\n\n%!";
  stage_timing_table rows;
  table1_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Crossing-matrix cache: cached vs uncached selection wall-clock     *)
(* ------------------------------------------------------------------ *)

(* Named-case selection from an env var; unknown entries are warned
   about by name and skipped, defaults apply when unset/empty. *)
let designs_of_env var default =
  match Sys.getenv_opt var with
  | None | Some "" -> default ()
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun name ->
             let name = String.trim name in
             if name = "" then None
             else
               match Cases.by_name name with
               | Some spec -> Some (spec.Gen.name, Gen.generate spec)
               | None -> (
                   match String.lowercase_ascii name with
                   | "small" -> Some ("small", Cases.small ())
                   | "tiny" -> Some ("tiny", Cases.tiny ())
                   | _ ->
                       Printf.eprintf "bench: unknown %s entry %S (skipped)\n%!"
                         var name;
                       None))

(* Cases to compare; OPERON_CACHE_CASES=<name,name,...> (I1..I5, small,
   tiny) restricts the sweep — CI uses a small subset. *)
let cache_designs () =
  designs_of_env "OPERON_CACHE_CASES" (fun () ->
      List.map (fun spec -> (spec.Gen.name, Gen.generate spec)) Cases.all)

let cache_bench () =
  print_endline "=== crossing-matrix cache: cached vs uncached LR selection ===";
  let rows =
    List.map
      (fun (name, design) ->
        let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
        let build = Xmatrix.stats ctx.Selection.xmat in
        (* Attribute hit/miss counters to the selection runs only. *)
        Xmatrix.reset_counters ctx.Selection.xmat;
        let cached = Lr_select.select ctx in
        let after = Xmatrix.stats ctx.Selection.xmat in
        let ctx_u = Selection.uncached ctx in
        let uncached = Lr_select.select ctx_u in
        let ustats = Xmatrix.stats ctx_u.Selection.xmat in
        let identical =
          cached.Lr_select.choice = uncached.Lr_select.choice
          && cached.Lr_select.power = uncached.Lr_select.power
        in
        if not identical then
          Printf.eprintf "bench: cache parity violation on %s!\n%!" name;
        { c_name = name;
          c_cached_s = cached.Lr_select.elapsed;
          c_uncached_s = uncached.Lr_select.elapsed;
          c_hits = after.Xmatrix.hits;
          c_misses = after.Xmatrix.misses;
          c_uncached_queries = ustats.Xmatrix.misses;
          c_pairs = build.Xmatrix.pairs;
          c_entries = build.Xmatrix.entries;
          c_build_s = build.Xmatrix.build_seconds;
          c_identical = identical })
      (cache_designs ())
  in
  let render r =
    [ r.c_name;
      Printf.sprintf "%.3f" r.c_build_s;
      string_of_int r.c_pairs;
      string_of_int r.c_entries;
      Printf.sprintf "%.3f" r.c_cached_s;
      Printf.sprintf "%.3f" r.c_uncached_s;
      Printf.sprintf "%.2fx" (r.c_uncached_s /. Float.max 1e-9 r.c_cached_s);
      string_of_int r.c_hits;
      string_of_int r.c_misses;
      (if r.c_identical then "yes" else "NO") ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "build(s)"; "pairs"; "entries"; "cached(s)"; "uncached(s)";
           "speedup"; "hits"; "misses"; "identical" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline "";
  cache_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Incremental ECO re-synthesis: cold vs eco wall-clock               *)
(* ------------------------------------------------------------------ *)

(* Cases via OPERON_ECO_CASES (default I2 — big enough that preparation
   dominates and per-net reuse pays). Each case is prepared cold once,
   then re-synthesized at several mutation ratios both cold and
   incrementally; exports must agree byte-for-byte. *)
let eco_designs () =
  designs_of_env "OPERON_ECO_CASES" (fun () ->
      match Cases.by_name "I2" with
      | Some spec -> [ (spec.Gen.name, Gen.generate spec) ]
      | None -> [ ("small", Cases.small ()) ])

let eco_bench () =
  print_endline "=== incremental ECO re-synthesis: cold vs eco wall-clock ===";
  let config = Flow.Config.default params in
  let ratios = [ 0.05; 0.1; 0.25 ] in
  let rows =
    List.concat_map
      (fun (name, design) ->
        let prev = Flow.prepare config design in
        List.map
          (fun ratio ->
            let revised = Mutate.design ~ratio ~seed:9001 design in
            let t0 = Timer.now () in
            let cold_p = Flow.prepare config revised in
            let cold_flow = Flow.select_prepared config cold_p in
            let cold_s = Timer.now () -. t0 in
            let t1 = Timer.now () in
            let eco_p = Flow.prepare_eco ~prev config revised in
            let eco_flow = Flow.select_prepared config eco_p in
            let eco_s = Timer.now () -. t1 in
            let identical =
              Export.flow_to_json ~timings:false cold_flow
              = Export.flow_to_json ~timings:false eco_flow
            in
            if not identical then
              Printf.eprintf "bench: ECO parity violation on %s @ %g!\n%!" name
                ratio;
            let e = Option.get eco_p.Flow.p_eco in
            { e_name = name;
              e_ratio = ratio;
              e_nets = Array.length eco_p.Flow.p_hnets;
              e_reused = e.Flow.nets_reused;
              e_recomputed = e.Flow.nets_recomputed;
              e_xrows = e.Flow.xrows_reused;
              e_cold_s = cold_s;
              e_eco_s = eco_s;
              e_identical = identical;
              e_cold_fallback = e.Flow.cold_fallback })
          ratios)
      (eco_designs ())
  in
  let render r =
    [ r.e_name;
      Printf.sprintf "%g" r.e_ratio;
      Printf.sprintf "%d/%d" r.e_recomputed r.e_nets;
      string_of_int r.e_xrows;
      Printf.sprintf "%.3f" r.e_cold_s;
      Printf.sprintf "%.3f" r.e_eco_s;
      Printf.sprintf "%.2fx" (r.e_cold_s /. Float.max 1e-9 r.e_eco_s);
      (if r.e_identical then "yes" else "NO") ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "ratio"; "recomputed"; "xrows"; "cold(s)"; "eco(s)";
           "speedup"; "identical" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline "";
  eco_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Solver cores: dense tableau vs sparse revised simplex              *)
(* ------------------------------------------------------------------ *)

(* Cases via OPERON_SOLVER_CASES (default I1..I5). Each case is
   prepared once, then ILP-selected with both cores against the same
   context; choice and power must agree bit-for-bit whenever neither
   run hit the wall-clock budget. *)
let solver_designs () =
  designs_of_env "OPERON_SOLVER_CASES" (fun () ->
      List.map (fun spec -> (spec.Gen.name, Gen.generate spec)) Cases.all)

let solver_bench () =
  print_endline
    "=== solver cores: dense tableau vs sparse revised simplex (ILP select) ===";
  let rows =
    List.map
      (fun (name, design) ->
        let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
        let nets, _, _ = Processing.stats hnets in
        let run core =
          Flow.select_with
            (Flow.Config.make ~mode:Flow.Ilp ~ilp_budget ~solver_core:core
               params)
            design hnets ctx
        in
        let dense = run Operon_solver.Solver.Dense in
        let sparse = run Operon_solver.Solver.Sparse in
        let stats r = Option.get r.Flow.ilp in
        let timed_out r = (stats r).Ilp_select.timed_out > 0 in
        let identical =
          dense.Flow.choice = sparse.Flow.choice
          && dense.Flow.power = sparse.Flow.power
        in
        if (not identical) && not (timed_out dense || timed_out sparse) then
          Printf.eprintf "bench: solver core parity violation on %s!\n%!" name;
        { v_name = name;
          v_nets = nets;
          v_dense_s = dense.Flow.select_seconds;
          v_sparse_s = sparse.Flow.select_seconds;
          v_dense_pivots = (stats dense).Ilp_select.pivots;
          v_sparse_pivots = (stats sparse).Ilp_select.pivots;
          v_refactorizations = (stats sparse).Ilp_select.refactorizations;
          v_dense_to = timed_out dense;
          v_sparse_to = timed_out sparse;
          v_identical = identical })
      (solver_designs ())
  in
  let render r =
    [ r.v_name;
      string_of_int r.v_nets;
      Printf.sprintf "%.3f%s" r.v_dense_s (if r.v_dense_to then "*" else "");
      Printf.sprintf "%.3f%s" r.v_sparse_s (if r.v_sparse_to then "*" else "");
      Printf.sprintf "%.2fx" (r.v_dense_s /. Float.max 1e-9 r.v_sparse_s);
      string_of_int r.v_dense_pivots;
      string_of_int r.v_sparse_pivots;
      string_of_int r.v_refactorizations;
      (if r.v_identical then "yes"
       else if r.v_dense_to || r.v_sparse_to then "n/a"
       else "NO") ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "#Net"; "dense(s)"; "sparse(s)"; "speedup"; "dense piv";
           "sparse piv"; "refact"; "identical" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline "(* = run hit the ILP wall-clock budget)\n";
  solver_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Scale tiers: end-to-end wall-clock at 10k-100k nets                *)
(* ------------------------------------------------------------------ *)

(* Tiers via OPERON_SCALE_TIERS=<t10k,t30k,t100k> (default t10k — the
   larger tiers are opt-in; t100k takes tens of minutes). Each tier is
   synthesized end-to-end under LR and compared to its declared
   wall-clock target. *)
let scale_tiers_of_env () =
  match Sys.getenv_opt "OPERON_SCALE_TIERS" with
  | None | Some "" -> [ Cases.t10k ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun name ->
             let name = String.trim name in
             if name = "" then None
             else
               match Cases.tier_by_name name with
               | Some t -> Some t
               | None ->
                   Printf.eprintf
                     "bench: unknown OPERON_SCALE_TIERS entry %S (skipped)\n%!"
                     name;
                   None)

let scale_bench () =
  print_endline
    "=== scale tiers: end-to-end LR synthesis wall-clock vs tier targets, \
     flat vs partitioned ===";
  let config = Flow.Config.make ~mode:Flow.Lr params in
  (* Partitioned contender: same flow, Auto region count, the worker
     pool sized to the machine. Preparation is re-run under the
     partitioned config because the two modes prepare differently (the
     flat design-wide crossing cache is skipped when per-region caches
     will be built instead). *)
  let part_config =
    Flow.Config.make ~mode:Flow.Lr ~jobs:(Executor.default_jobs ())
      ~partition:Flow.Config.Auto params
  in
  let rows =
    List.map
      (fun (t : Cases.tier) ->
        let t0 = Timer.now () in
        let design = Gen.generate t.Cases.t_spec in
        let gen_s = Timer.now () -. t0 in
        let t1 = Timer.now () in
        let hnets, ctx = Flow.prepare_with config design in
        let prep_s = Timer.now () -. t1 in
        let nets, hn, _ = Processing.stats hnets in
        let t2 = Timer.now () in
        let r = Flow.select_with config design hnets ctx in
        let select_s = Timer.now () -. t2 in
        let total = gen_s +. prep_s +. select_s in
        let t3 = Timer.now () in
        let p_hnets, p_ctx = Flow.prepare_with part_config design in
        let part_prep_s = Timer.now () -. t3 in
        let t4 = Timer.now () in
        let pr = Flow.select_with part_config design p_hnets p_ctx in
        let part_select_s = Timer.now () -. t4 in
        let part_regions =
          match pr.Flow.partition with
          | Some p -> p.Flow.pt_regions
          | None -> 1
        in
        { g_name = t.Cases.t_name;
          g_target_nets = t.Cases.t_target_nets;
          g_target_s = t.Cases.t_target_seconds;
          g_nets = nets;
          g_hnets = hn;
          g_gen_s = gen_s;
          g_prep_s = prep_s;
          g_select_s = select_s;
          g_power = r.Flow.power;
          g_met = total <= t.Cases.t_target_seconds;
          g_part_regions = part_regions;
          g_part_prep_s = part_prep_s;
          g_part_select_s = part_select_s;
          g_part_power = pr.Flow.power;
          g_part_speedup =
            (prep_s +. select_s)
            /. Float.max 1e-9 (part_prep_s +. part_select_s);
          g_part_power_delta_pct =
            (if r.Flow.power = 0.0 then 0.0
             else
               100.0 *. (pr.Flow.power -. r.Flow.power)
               /. r.Flow.power) })
      (scale_tiers_of_env ())
  in
  let render r =
    [ r.g_name;
      string_of_int r.g_nets;
      string_of_int r.g_hnets;
      Printf.sprintf "%.2f" r.g_gen_s;
      Printf.sprintf "%.2f" r.g_prep_s;
      Printf.sprintf "%.2f" r.g_select_s;
      Printf.sprintf "%.2f" (r.g_gen_s +. r.g_prep_s +. r.g_select_s);
      Printf.sprintf "%.0f" r.g_target_s;
      (if r.g_met then "yes" else "NO");
      string_of_int r.g_part_regions;
      Printf.sprintf "%.2f" (r.g_part_prep_s +. r.g_part_select_s);
      Printf.sprintf "%.2fx" r.g_part_speedup;
      Printf.sprintf "%+.2f%%" r.g_part_power_delta_pct ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "tier"; "#Net"; "#HNet"; "gen(s)"; "prepare(s)"; "select(s)";
           "total(s)"; "target(s)"; "met"; "regions"; "part(s)"; "speedup";
           "dPower" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline "";
  scale_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Batch synthesis service: throughput, latency, registry reuse       *)
(* ------------------------------------------------------------------ *)

(* Cases via OPERON_SERVE_CASES (default tiny + small — the service adds
   orchestration around the same flow Table 1 already times); repeat-job
   count via OPERON_SERVE_JOBS. *)
let serve_designs () =
  designs_of_env "OPERON_SERVE_CASES" (fun () ->
      [ ("tiny", Cases.tiny ()); ("small", Cases.small ()) ])

let serve_bench () =
  print_endline
    "=== batch synthesis service: throughput / latency / registry reuse ===";
  let open Operon_service in
  let n_jobs =
    match Sys.getenv_opt "OPERON_SERVE_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v > 0 -> v
        | _ ->
            Printf.eprintf
              "bench: ignoring malformed OPERON_SERVE_JOBS=%S (using 12)\n%!" s;
            12)
    | None -> 12
  in
  let workers = Stdlib.min 4 (Executor.default_jobs ()) in
  let config = Flow.Config.make ~mode:Flow.Lr params in
  let rows =
    List.map
      (fun (name, design) ->
        let sch = Scheduler.create ~workers ~capacity:(n_jobs + 1) () in
        Scheduler.start sch;
        let submit () =
          match Scheduler.submit sch ~config design with
          | Ok id -> id
          | Error _ -> failwith "bench: serve submit rejected"
        in
        (* Cold first job: pays the prepare (registry miss). *)
        let t0 = Timer.now () in
        ignore (Scheduler.wait sch (submit ()));
        let first_s = Timer.now () -. t0 in
        (* Repeat batch: every job reuses the prepared entry. *)
        let t1 = Timer.now () in
        let ids = List.init n_jobs (fun _ -> submit ()) in
        List.iter (fun id -> ignore (Scheduler.wait sch id)) ids;
        let wall = Timer.now () -. t1 in
        let c = Scheduler.counters sch in
        Scheduler.shutdown sch;
        let lat = Scheduler.latencies sch in
        (* latencies are completion-ordered; the cold job finished alone
           first, so the repeat jobs are everything after index 0. *)
        let repeat = Array.sub lat 1 (Array.length lat - 1) in
        { s_name = name;
          s_workers = workers;
          s_jobs = n_jobs;
          s_wall_s = wall;
          s_throughput = float_of_int n_jobs /. Float.max 1e-9 wall;
          s_p50_ms = 1000.0 *. Stats.percentile repeat 50.0;
          s_p95_ms = 1000.0 *. Stats.percentile repeat 95.0;
          s_first_s = first_s;
          s_repeat_s = Stats.mean repeat;
          s_hits = c.Scheduler.registry.Registry.hits;
          s_misses = c.Scheduler.registry.Registry.misses })
      (serve_designs ())
  in
  let render r =
    [ r.s_name;
      string_of_int r.s_workers;
      string_of_int r.s_jobs;
      Printf.sprintf "%.1f" r.s_throughput;
      Printf.sprintf "%.1f" r.s_p50_ms;
      Printf.sprintf "%.1f" r.s_p95_ms;
      Printf.sprintf "%.3f" r.s_first_s;
      Printf.sprintf "%.3f" r.s_repeat_s;
      Printf.sprintf "%.2fx" (r.s_first_s /. Float.max 1e-9 r.s_repeat_s);
      Printf.sprintf "%d/%d" r.s_hits (r.s_hits + r.s_misses) ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "workers"; "jobs"; "jobs/s"; "p50(ms)"; "p95(ms)";
           "first(s)"; "repeat(s)"; "reuse speedup"; "reg hits" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline "";
  serve_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Sustained multi-shard serving: saturation latency per shard count   *)
(* ------------------------------------------------------------------ *)

(* The fleet is driven as a subprocess ([operon serve --shards N] over
   stdio) rather than in-process: the supervisor must be able to fork,
   and this harness creates Domains for the other targets. Shard counts
   via OPERON_SUSTAINED_SHARDS=<n,n,...>, batch size via
   OPERON_SUSTAINED_JOBS, CLI binary via OPERON_CLI. *)

let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else go (i + 1)
  in
  go 0

let sustained_cli () =
  match Sys.getenv_opt "OPERON_CLI" with
  | Some p -> p
  | None ->
      (* _build/default/bench/main.exe -> _build/default/bin/operon_cli.exe *)
      Filename.concat
        (Filename.dirname (Filename.dirname Sys.executable_name))
        (Filename.concat "bin" "operon_cli.exe")

let sustained_shard_counts () =
  match Sys.getenv_opt "OPERON_SUSTAINED_SHARDS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some n when n > 0 -> Some n
             | _ ->
                 Printf.eprintf
                   "bench: ignoring malformed OPERON_SUSTAINED_SHARDS entry %S\n%!"
                   x;
                 None)

(* One server run: submit [jobs] distinct small cases up front, then
   drain every terminal, timing each completion from the batch start.
   [kill_one] additionally kill -9s one shard child right after the
   last accept. *)
let sustained_run ~cli ~shards ~jobs ~kill_one =
  (* cloexec: the server must not inherit the write end of its own
     stdin pipe, or it will never see EOF at shutdown
     ([Unix.create_process] dup2s the ends it is given onto 0/1) *)
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--shards"; string_of_int shards |]
      in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  let oc = Unix.out_channel_of_descr in_w in
  let ic = Unix.in_channel_of_descr out_r in
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let field_of line key =
    (* minimal scrape of one top-level "key":int field *)
    let needle = Printf.sprintf "\"%s\":" key in
    match find_sub line needle with
    | None -> None
    | Some i ->
        let start = i + String.length needle in
        let stop = ref start in
        while
          !stop < String.length line
          && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr stop
        done;
        int_of_string_opt (String.sub line start (!stop - start))
  in
  let t0 = Timer.now () in
  for i = 1 to jobs do
    send
      (Printf.sprintf
         {|{"op":"submit","job":"u%d","case":"small","seed":%d,"mode":"lr"}|} i
         i);
    ignore (input_line ic)
  done;
  if kill_one then begin
    (* direct children of the server are its shard processes *)
    let children =
      try
        let f =
          open_in (Printf.sprintf "/proc/%d/task/%d/children" pid pid)
        in
        let line = try input_line f with End_of_file -> "" in
        close_in f;
        String.split_on_char ' ' line
        |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
      with Sys_error _ -> []
    in
    match children with
    | victim :: _ -> Unix.kill victim Sys.sigkill
    | [] -> Printf.eprintf "bench: no shard child found to kill\n%!"
  end;
  let completions = Array.make jobs 0.0 in
  let completed = ref 0 and crashed = ref 0 in
  for i = 1 to jobs do
    send (Printf.sprintf {|{"op":"result","job":"u%d"}|} i);
    let reply = input_line ic in
    completions.(i - 1) <- Timer.now () -. t0;
    if find_sub reply "\"ok\":true" <> None then incr completed
    else if find_sub reply "\"kind\":\"shard_crash\"" <> None then
      incr crashed
  done;
  let wall = Timer.now () -. t0 in
  (* restart registration runs on a monitor thread behind the backoff
     delay; poll stats briefly rather than racing it *)
  let restarts = ref 0 and crash_signals = ref 0 in
  let deadline = Timer.now () +. if kill_one then 15.0 else 0.0 in
  let rec poll () =
    send {|{"op":"stats"}|};
    let line = input_line ic in
    restarts := Option.value ~default:0 (field_of line "restarts");
    crash_signals := Option.value ~default:0 (field_of line "crash_signals");
    if kill_one && !restarts < 1 && Timer.now () < deadline then begin
      Unix.sleepf 0.2;
      poll ()
    end
  in
  poll ();
  close_out oc;
  (try close_in ic with Sys_error _ -> ());
  ignore (Unix.waitpid [] pid);
  let pct p = 1000.0 *. Stats.percentile completions p in
  { u_shards = shards;
    u_jobs = jobs;
    u_wall_s = wall;
    u_throughput = float_of_int jobs /. Float.max 1e-9 wall;
    u_p50_ms = pct 50.0;
    u_p95_ms = pct 95.0;
    u_p99_ms = pct 99.0;
    u_killed = kill_one;
    u_completed = !completed;
    u_crashed = !crashed;
    u_restarts = !restarts;
    u_crash_signals = !crash_signals }

let sustained_bench () =
  print_endline
    "=== sustained multi-shard serving: saturation latency per shard count ===";
  let cli = sustained_cli () in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf
      "bench: CLI binary %s not found (set OPERON_CLI); skipping sustained\n%!"
      cli;
    sustained_results := []
  end
  else begin
    let jobs =
      match Sys.getenv_opt "OPERON_SUSTAINED_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some v when v > 0 -> v
          | _ ->
              Printf.eprintf
                "bench: ignoring malformed OPERON_SUSTAINED_JOBS=%S (using 24)\n%!"
                s;
              24)
      | None -> 24
    in
    let counts = sustained_shard_counts () in
    let rows =
      List.map (fun n -> sustained_run ~cli ~shards:n ~jobs ~kill_one:false)
        counts
    in
    (* crash scenario at the widest fleet: same load, one shard killed *)
    let rows =
      match List.rev counts with
      | [] -> rows
      | widest :: _ ->
          rows @ [ sustained_run ~cli ~shards:widest ~jobs ~kill_one:true ]
    in
    let render r =
      [ string_of_int r.u_shards;
        string_of_int r.u_jobs;
        (if r.u_killed then "kill -9" else "-");
        Printf.sprintf "%.1f" r.u_throughput;
        Printf.sprintf "%.0f" r.u_p50_ms;
        Printf.sprintf "%.0f" r.u_p95_ms;
        Printf.sprintf "%.0f" r.u_p99_ms;
        Printf.sprintf "%d/%d" r.u_completed r.u_jobs;
        string_of_int r.u_restarts ]
    in
    print_endline
      (Report.table
         ~headers:
           [ "shards"; "jobs"; "fault"; "jobs/s"; "p50(ms)"; "p95(ms)";
             "p99(ms)"; "completed"; "restarts" ]
         ~align:
           [ Report.Right; Report.Right; Report.Left; Report.Right;
             Report.Right; Report.Right; Report.Right; Report.Right;
             Report.Right ]
         (List.map render rows));
    print_endline "";
    sustained_results := rows
  end;
  write_results ()

(* ------------------------------------------------------------------ *)
(* Fig. 3(b)                                                          *)
(* ------------------------------------------------------------------ *)

let fig3b () =
  print_endline "=== Fig. 3(b): normalized power in cascaded 50-50 Y-branch splitters ===";
  let rows =
    Splitter.cascade params ~stages:4
    |> List.map (fun r ->
           [ string_of_int r.Splitter.stage;
             string_of_int r.Splitter.outputs;
             Printf.sprintf "%.4f" r.Splitter.power_fraction;
             Printf.sprintf "%.2f" r.Splitter.loss_db ])
  in
  print_endline
    (Report.table
       ~headers:[ "stage"; "outputs"; "power/arm"; "loss (dB)" ]
       ~align:[ Report.Right; Report.Right; Report.Right; Report.Right ]
       rows);
  print_endline
    "(two cascaded 50-50 stages leave ~1/4 of the input power per arm, as in the paper)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 5                                                             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  print_endline "=== Fig. 5: optical-electrical co-design candidates of one hyper net ===";
  let centers =
    [| Operon_geom.Point.make 0.0 2.0; Operon_geom.Point.make (-1.2) 0.0;
       Operon_geom.Point.make 1.2 0.0 |]
  in
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 8; source_count = (if i = 0 then 8 else 0) })
      centers
  in
  let hnet = Hypernet.make ~id:0 ~group:0 ~bits:8 ~pins in
  let cands = Codesign.for_hypernet params hnet in
  let rows =
    List.mapi
      (fun i (c : Candidate.t) ->
        [ string_of_int i;
          Report.float_cell ~decimals:3 c.Candidate.power;
          string_of_int c.Candidate.n_mod;
          string_of_int c.Candidate.n_det;
          Printf.sprintf "%.2f" c.Candidate.elec_wirelength;
          Printf.sprintf "%.2f" c.Candidate.max_intrinsic_loss;
          (if c.Candidate.pure_electrical then "all-electrical"
           else if Array.length c.Candidate.elec_segments = 0 then "all-optical"
           else "hybrid") ])
      cands
  in
  print_endline
    (Report.table
       ~headers:[ "#"; "power"; "n_mod"; "n_det"; "copper(cm)"; "loss(dB)"; "kind" ]
       ~align:
         [ Report.Right; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Left ]
       rows);
  print_endline ""

(* ------------------------------------------------------------------ *)
(* Fig. 8                                                             *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  print_endline "=== Fig. 8: WDMs before placement, before and after assignment ===";
  let rows, reductions =
    List.fold_left
      (fun (rows, reds) spec ->
        let design = Gen.generate spec in
        let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
        let lr = Flow.select_with (Flow.Config.default params) design hnets ctx in
        let conns = Array.length lr.Flow.placement.Wdm_place.conns in
        let a = lr.Flow.assignment in
        let norm v =
          if conns = 0 then "-"
          else Printf.sprintf "%.1f%%" (100.0 *. float_of_int v /. float_of_int conns)
        in
        let row =
          [ spec.Gen.name; string_of_int conns;
            Printf.sprintf "%d (%s)" a.Assign.initial_count (norm a.Assign.initial_count);
            Printf.sprintf "%d (%s)" a.Assign.final_count (norm a.Assign.final_count);
            Printf.sprintf "-%.1f%%" (100.0 *. Assign.reduction_ratio a) ]
        in
        (row :: rows, Assign.reduction_ratio a :: reds))
      ([], []) Cases.all
  in
  print_endline
    (Report.table
       ~headers:[ "Bench"; "#Connections"; "#Initial WDMs"; "#Final WDMs"; "assignment" ]
       ~align:[ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.rev rows));
  Printf.printf "average assignment reduction: -%.1f%% (paper: -8.9%%)\n\n%!"
    (100.0 *. Stats.mean (Array.of_list reductions))

(* ------------------------------------------------------------------ *)
(* Fig. 9                                                             *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  print_endline "=== Fig. 9: power hotspot maps of I2 (GLOW vs OPERON) ===";
  let design = Gen.generate Cases.i2 in
  let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let adjusted = ctx.Selection.params in
  let lr = Flow.select_with (Flow.Config.default params) design hnets ctx in
  let glow = Baseline.glow adjusted hnets in
  let die = design.Signal.die in
  let operon_maps = Hotspot.of_selection ~nx:48 ~ny:24 ~die ctx lr.Flow.choice in
  let glow_maps =
    Hotspot.of_selection ~nx:48 ~ny:24 ~die glow.Baseline.ctx glow.Baseline.choice
  in
  Printf.printf "(a) GLOW optical layer:\n%s\n"
    (Operon_geom.Gridmap.render glow_maps.Hotspot.optical);
  Printf.printf "(b) GLOW electrical layer:\n%s\n"
    (Operon_geom.Gridmap.render glow_maps.Hotspot.electrical);
  Printf.printf "(c) OPERON optical layer:\n%s\n"
    (Operon_geom.Gridmap.render operon_maps.Hotspot.optical);
  Printf.printf "(d) OPERON electrical layer:\n%s\n"
    (Operon_geom.Gridmap.render operon_maps.Hotspot.electrical);
  Printf.printf "optical-layer correlation (a vs c): %.3f (paper: 'very similar manner')\n"
    (Operon_geom.Gridmap.correlation glow_maps.Hotspot.optical operon_maps.Hotspot.optical);
  Printf.printf "electrical totals: GLOW %.1f -> OPERON %.1f  peaks: %.2f -> %.2f\n"
    (Operon_geom.Gridmap.total glow_maps.Hotspot.electrical)
    (Operon_geom.Gridmap.total operon_maps.Hotspot.electrical)
    (Operon_geom.Gridmap.peak glow_maps.Hotspot.electrical)
    (Operon_geom.Gridmap.peak operon_maps.Hotspot.electrical);
  Printf.printf "(GLOW kept %d/%d nets optical; OPERON power %.1f vs GLOW %.1f)\n\n%!"
    glow.Baseline.optical_nets (Array.length hnets) lr.Flow.power glow.Baseline.power

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "=== Bechamel micro-benchmarks of the per-table kernels ===";
  let open Bechamel in
  let open Toolkit in
  (* Fixed small workloads exercising each experiment's kernel. *)
  let design = Cases.small ~seed:7 () in
  let micro_hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let micro_bboxes =
    Array.map (fun h -> Hypernet.bbox h) micro_hnets
  in
  let centers =
    [| Operon_geom.Point.make 0.0 2.0; Operon_geom.Point.make (-1.2) 0.0;
       Operon_geom.Point.make 1.2 0.0; Operon_geom.Point.make 2.0 2.5 |]
  in
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 8; source_count = (if i = 0 then 8 else 0) })
      centers
  in
  let hnet = Hypernet.make ~id:0 ~group:0 ~bits:8 ~pins in
  let mk_conn id x0 y =
    { Wdm.id; net = id;
      seg =
        Operon_geom.Segment.make
          (Operon_geom.Point.make x0 y)
          (Operon_geom.Point.make (x0 +. 3.0) y);
      bits = 20 }
  in
  let fig6_conns = [| mk_conn 0 0.0 1.0; mk_conn 1 0.5 1.02; mk_conn 2 1.0 1.04 |] in
  let tests =
    Test.make_grouped ~name:"operon"
      [ Test.make ~name:"table1/codesign-dp" (Staged.stage (fun () ->
            ignore (Codesign.for_hypernet params hnet)));
        Test.make ~name:"table1/lr-select" (Staged.stage (fun () ->
            ignore (Lr_select.select ~max_iterations:3 ctx)));
        Test.make ~name:"table1/bi1s-steiner" (Staged.stage (fun () ->
            ignore
              (Operon_steiner.Bi1s.build Operon_steiner.Topology.L2
                 (Hypernet.centers hnet) ~root:0)));
        Test.make ~name:"fig3b/splitter-cascade" (Staged.stage (fun () ->
            ignore (Splitter.cascade params ~stages:4)));
        Test.make ~name:"fig8/wdm-place-assign" (Staged.stage (fun () ->
            let placement = Wdm_place.place params fig6_conns in
            ignore (Assign.run params placement)));
        Test.make ~name:"fig9/hotspot-maps" (Staged.stage (fun () ->
            ignore
              (Hotspot.of_selection ~die:design.Signal.die ctx
                 (Selection.all_electrical ctx))));
        Test.make ~name:"partition/interacting-pairs" (Staged.stage (fun () ->
            ignore (Crossing.interacting_pairs micro_bboxes))) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_endline
    (Report.table
       ~headers:[ "kernel"; "time/run" ]
       ~align:[ Report.Left; Report.Right ]
       (List.map
          (fun (name, ns) ->
            let cell =
              if Float.is_nan ns then "n/a"
              else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; cell ])
          rows));
  print_endline ""

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                    *)
(* ------------------------------------------------------------------ *)

let ablate () =
  print_endline "=== Ablations of the design choices (DESIGN.md section 5) ===";

  (* 1. DP candidate-pruning cap: does aggressive pruning cost power? *)
  print_endline "--- (1) co-design DP pruning cap (per-node state budget) ---";
  let rng = Prng.create 4242 in
  let nets =
    List.init 40 (fun k ->
        let n = 3 + Prng.int rng 4 in
        let centers =
          Array.init n (fun i ->
              if i = 0 then Operon_geom.Point.make 0.0 0.0
              else Operon_geom.Point.make (Prng.float rng 4.0) (Prng.float rng 4.0))
        in
        let pins =
          Array.mapi
            (fun i c ->
              { Hypernet.center = c; pin_count = 1;
                source_count = (if i = 0 then 1 else 0) })
            centers
        in
        Hypernet.make ~id:k ~group:0 ~bits:(1 + Prng.int rng 31) ~pins)
  in
  let best_at cap =
    let t0 = Unix.gettimeofday () in
    let total =
      List.fold_left
        (fun acc hnet ->
          match Codesign.for_hypernet ~max_cands:cap params hnet with
          | best :: _ -> acc +. best.Candidate.power
          | [] -> acc)
        0.0 nets
    in
    (total, Unix.gettimeofday () -. t0)
  in
  let reference, _ = best_at 64 in
  let rows =
    List.map
      (fun cap ->
        let total, dt = best_at cap in
        [ string_of_int cap; Report.float_cell total;
          Printf.sprintf "+%.2f%%" (100.0 *. ((total /. reference) -. 1.0));
          Printf.sprintf "%.3f" dt ])
      [ 1; 2; 4; 8; 16; 64 ]
  in
  print_endline
    (Report.table
       ~headers:[ "max_cands"; "best-power sum"; "gap vs 64"; "seconds" ]
       ~align:[ Report.Right; Report.Right; Report.Right; Report.Right ]
       rows);

  (* 2. Section 3.3 crossing-variable reduction. *)
  print_endline "--- (2) interaction reduction (bbox overlap -> geometry-refined) ---";
  let design = Gen.generate { Cases.i1 with Gen.n_groups = 150 } in
  let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let n = Array.length ctx.Selection.cands in
  let all_pairs = n * (n - 1) / 2 in
  let bbox_pairs =
    let count = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match (ctx.Selection.bboxes.(i), ctx.Selection.bboxes.(j)) with
        | Some a, Some b when Operon_geom.Rect.overlaps a b -> incr count
        | _ -> ()
      done
    done;
    !count
  in
  let refined_pairs =
    Array.fold_left (fun acc l -> acc + Array.length l) 0 ctx.Selection.neighbors / 2
  in
  Printf.printf
    "  %d nets: all pairs %d -> bbox-overlapping %d -> actually-crossing %d\n"
    n all_pairs bbox_pairs refined_pairs;
  Printf.printf
    "  (quadratic coupling terms kept: %.1f%% of the naive formulation)\n\n"
    (100.0 *. float_of_int refined_pairs /. float_of_int (Stdlib.max 1 all_pairs));

  (* 3. LR iteration budget (Algorithm 1's <=10 rule). *)
  print_endline "--- (3) Lagrangian-relaxation iteration budget (case I1) ---";
  let design = Gen.generate Cases.i1 in
  let _, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let rows =
    List.map
      (fun k ->
        let r = Lr_select.select ~max_iterations:k ctx in
        [ string_of_int k; Report.float_cell r.Lr_select.power;
          string_of_int r.Lr_select.demoted;
          Printf.sprintf "%.2f" r.Lr_select.elapsed ])
      [ 1; 2; 3; 5; 10 ]
  in
  print_endline
    (Report.table
       ~headers:[ "iterations"; "power"; "demoted"; "seconds" ]
       ~align:[ Report.Right; Report.Right; Report.Right; Report.Right ]
       rows);

  (* 4. WDM stages: sweep placement alone vs + flow-based assignment,
     plus the wavelength-level spatial reuse of the Channels extension. *)
  print_endline "--- (4) WDM sharing stages (case I1) ---";
  let lr =
    Flow.select_with (Flow.Config.default params) design
      (Processing.run (Prng.create 42) params design) ctx
  in
  let a = lr.Flow.assignment in
  let conns = lr.Flow.placement.Wdm_place.conns in
  let plan = Channels.assign ctx.Selection.params conns a in
  Printf.printf "  connections %d -> placement %d WDMs -> assignment %d WDMs (-%.1f%%)\n"
    (Array.length conns) a.Assign.initial_count a.Assign.final_count
    (100.0 *. Assign.reduction_ratio a);
  Printf.printf "  wavelength channels: %d used, %d concurrent peak (spatial reuse %.1f%%)\n\n"
    (Array.fold_left (fun acc t -> acc + t.Operon_optical.Wdm.used) 0 a.Assign.tracks)
    (Array.fold_left ( + ) 0 plan.Channels.peak_channels)
    (100.0 *. Channels.spatial_reuse plan a);

  (* 5. Crossing bundle-factor sensitivity (the one free calibration). *)
  print_endline "--- (5) crossing bundle-factor sensitivity (case I1, LR power) ---";
  let rows =
    List.map
      (fun bf ->
        let p = { params with Params.bundle_factor = bf } in
        let design = Gen.generate Cases.i1 in
        let hnets = Processing.run (Prng.create 42) p design in
        (* bypass auto_bundle by selecting against these exact params *)
        let cand_lists =
          Array.map (fun h -> Codesign.for_hypernet p h) hnets
        in
        let ctx = Selection.make_ctx p cand_lists in
        let r = Lr_select.select ctx in
        [ Printf.sprintf "%.1f" bf; Report.float_cell r.Lr_select.power;
          string_of_int r.Lr_select.demoted ])
      [ 1.0; 2.0; 6.0; 16.0 ]
  in
  print_endline
    (Report.table
       ~headers:[ "bundle"; "LR power"; "demoted" ]
       ~align:[ Report.Right; Report.Right; Report.Right ]
       rows);

  (* 6. Timing extension: does the power-driven selection also help delay? *)
  print_endline "--- (6) worst source-to-sink delay (extension; ps) ---";
  let d = Operon_optical.Delay.default in
  let rows =
    List.map
      (fun spec ->
        let design = Gen.generate spec in
        let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
        let lr = Flow.select_with (Flow.Config.default params) design hnets ctx in
        let sel = Timing.selection d ctx lr.Flow.choice in
        let reference = Timing.electrical_reference d ctx in
        [ spec.Gen.name;
          Report.float_cell ~decimals:0 reference.Timing.mean_worst_ps;
          Report.float_cell ~decimals:0 sel.Timing.mean_worst_ps;
          Report.ratio_cell sel.Timing.mean_worst_ps reference.Timing.mean_worst_ps ])
      [ Cases.i1; Cases.i3 ]
  in
  print_endline
    (Report.table
       ~headers:[ "case"; "copper mean"; "OPERON mean"; "ratio" ]
       ~align:[ Report.Left; Report.Right; Report.Right; Report.Right ]
       rows);

  (* 7. Post-route signoff: does the bundled crossing estimate hold up
     against the physical waveguide geometry? *)
  print_endline "--- (7) post-route loss signoff (case I1) ---";
  let design = Gen.generate Cases.i1 in
  let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
  let lr = Flow.select_with (Flow.Config.default params) design hnets ctx in
  let s =
    Signoff.run ctx.Selection.params ctx lr.Flow.choice lr.Flow.placement
      lr.Flow.assignment
  in
  Printf.printf
    "  %d optical nets / %d paths: worst physical loss %.2f dB (budget %.0f), %d violations\n"
    s.Signoff.nets_checked s.Signoff.paths_checked s.Signoff.worst_loss_db
    ctx.Selection.params.Params.l_max s.Signoff.violations;
  Printf.printf "  mean routing detour x%.2f, %d physical waveguide crossings\n"
    s.Signoff.mean_detour_ratio s.Signoff.waveguide_crossings;
  Printf.printf
    "  mean per-path crossing loss: estimated %.2f dB vs physical %.2f dB\n"
    s.Signoff.mean_estimated_crossing_db s.Signoff.mean_physical_crossing_db;
  print_endline ""

(* ------------------------------------------------------------------ *)
(* Thermal Pareto sweep: power vs worst-case thermal margin           *)
(* ------------------------------------------------------------------ *)

let thermal_bench () =
  print_endline
    "=== thermal: power vs worst-case thermal margin (synthetic hotspot maps) ===";
  let rows =
    List.map
      (fun spec ->
        let design = Gen.generate spec in
        let map =
          Operon_thermal.Thermal_map.synthetic ~hotspots:6 ~amplitude:25.0
            ~decay:0.15 ~die:design.Signal.die (Prng.create 1)
        in
        let hnets, ctx = Flow.prepare_with (Flow.Config.default params) design in
        let plain =
          Flow.select_with (Flow.Config.default params) design hnets ctx
        in
        (* The inert spec (no positive weight) must reproduce the plain
           selection exactly — the bit-identity contract of the mode. *)
        let inert =
          Flow.select_with
            (Flow.Config.with_thermal ~weights:[| 0.0 |] map
               (Flow.Config.default params))
            design hnets ctx
        in
        let swept =
          Flow.select_with
            (Flow.Config.with_thermal map (Flow.Config.default params))
            design hnets ctx
        in
        let tr = Option.get swept.Flow.thermal in
        let eval_ctx =
          Selection.with_thermal ctx (Selection.thermal_profile ctx map)
            ~weight:0.0
        in
        let base_margin = Selection.thermal_margin eval_ctx plain.Flow.choice in
        let best =
          List.fold_left
            (fun acc (p : Flow.thermal_point) ->
              match acc with
              | Some (b : Flow.thermal_point) when b.Flow.tp_margin >= p.Flow.tp_margin ->
                  acc
              | _ -> Some p)
            None tr.Flow.tr_front
        in
        let best_power, best_margin =
          match best with
          | Some p -> (p.Flow.tp_power, p.Flow.tp_margin)
          | None -> (plain.Flow.power, base_margin)
        in
        let nets, _, _ = Processing.stats hnets in
        { t_name = spec.Gen.name;
          t_nets = nets;
          t_map = Operon_thermal.Thermal_map.summary map;
          t_swept = tr.Flow.tr_swept;
          t_front = List.length tr.Flow.tr_front;
          t_dropped = tr.Flow.tr_dropped;
          t_sweep_s = tr.Flow.tr_seconds;
          t_base_power = plain.Flow.power;
          t_base_margin = base_margin;
          t_best_power = best_power;
          t_best_margin = best_margin;
          t_identical = inert.Flow.choice = plain.Flow.choice })
      [ Cases.i1; Cases.i2 ]
  in
  let render r =
    [ r.t_name; string_of_int r.t_nets;
      Printf.sprintf "%d/%d" r.t_front r.t_swept;
      Report.float_cell ~decimals:3 r.t_base_power;
      Report.float_cell ~decimals:3 r.t_base_margin;
      Report.float_cell ~decimals:3 r.t_best_power;
      Report.float_cell ~decimals:3 r.t_best_margin;
      Report.float_cell ~decimals:1 r.t_sweep_s;
      string_of_bool r.t_identical ]
  in
  print_endline
    (Report.table
       ~headers:
         [ "Bench"; "#Net"; "front"; "P(w=0)"; "margin(w=0)"; "P(best)";
           "margin(best)"; "sweep(s)"; "inert=plain" ]
       ~align:
         [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
           Report.Right; Report.Right; Report.Right; Report.Right ]
       (List.map render rows));
  print_endline "";
  thermal_results := rows;
  write_results ()

(* ------------------------------------------------------------------ *)

let () =
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ ->
        [ "fig3b"; "fig5"; "table1"; "cache"; "serve"; "sustained"; "eco";
          "solver"; "scale"; "thermal"; "fig8"; "fig9"; "ablate"; "micro" ]
  in
  List.iter
    (fun t ->
      match String.lowercase_ascii t with
      | "table1" -> table1 ()
      | "cache" -> cache_bench ()
      | "serve" -> serve_bench ()
      | "sustained" -> sustained_bench ()
      | "eco" -> eco_bench ()
      | "solver" -> solver_bench ()
      | "scale" -> scale_bench ()
      | "thermal" -> thermal_bench ()
      | "fig3b" -> fig3b ()
      | "fig5" -> fig5 ()
      | "fig8" -> fig8 ()
      | "fig9" -> fig9 ()
      | "ablate" -> ablate ()
      | "micro" -> micro ()
      | other ->
          Printf.eprintf
            "unknown target %S (table1 cache serve sustained eco solver scale thermal fig3b fig5 fig8 fig9 ablate micro)\n"
            other;
          exit 2)
    targets
