open Operon_geom
open Operon_util

(* An on-chip temperature field on the same grid geometry as the
   [Hotspot] power maps. Cells store the temperature *rise* above
   ambient in degrees Celsius; [temp_at] returns absolute temperature.
   The map is static per run: routes react to heat, they do not produce
   it (the GLOW scenario's one-way coupling). *)

type t = {
  grid : Gridmap.t;  (* cell value: rise above ambient, degC *)
  ambient : float;   (* degC *)
}

let grid t = t.grid

let ambient t = t.ambient

let bounds t = Gridmap.bounds t.grid

let nx t = Gridmap.nx t.grid

let ny t = Gridmap.ny t.grid

let make ~ambient grid = { grid; ambient }

let peak_rise t = Gridmap.peak t.grid

let peak t = t.ambient +. peak_rise t

let cell_center t i j =
  let b = bounds t in
  let w = Rect.width b /. float_of_int (nx t) in
  let h = Rect.height b /. float_of_int (ny t) in
  Point.make
    (b.Rect.xmin +. ((float_of_int i +. 0.5) *. w))
    (b.Rect.ymin +. ((float_of_int j +. 0.5) *. h))

let temp_at t p =
  let i, j = Gridmap.cell_of t.grid p in
  t.ambient +. Gridmap.get t.grid i j

(* ------------------------------------------------------------------ *)
(* Synthetic generator                                                *)
(* ------------------------------------------------------------------ *)

(* Gaussian hotspots: [hotspots] centers drawn uniformly over the die,
   each with a rise in (amplitude/2, amplitude] and a sigma scaled by
   [decay] (fraction of the shorter die dimension). Draw order is fixed
   (cx, cy, amp, sigma per hotspot in sequence), so a given PRNG stream
   always produces the same field. *)
let synthetic ?(nx = 24) ?(ny = 24) ?(ambient = 45.0) ~hotspots ~amplitude
    ~decay ~die rng =
  if nx <= 0 || ny <= 0 then
    invalid_arg "Thermal_map.synthetic: non-positive grid size";
  if hotspots < 0 then invalid_arg "Thermal_map.synthetic: negative hotspots";
  if amplitude < 0.0 then
    invalid_arg "Thermal_map.synthetic: negative amplitude";
  if decay <= 0.0 then invalid_arg "Thermal_map.synthetic: non-positive decay";
  let grid = Gridmap.create die ~nx ~ny in
  let t = { grid; ambient } in
  let scale = Float.min (Rect.width die) (Rect.height die) in
  let spots =
    Array.init hotspots (fun _ ->
        let cx = Prng.float_range rng die.Rect.xmin die.Rect.xmax in
        let cy = Prng.float_range rng die.Rect.ymin die.Rect.ymax in
        let amp = amplitude *. (0.5 +. (0.5 *. Prng.float rng 1.0)) in
        let sigma = decay *. scale *. (0.5 +. (0.5 *. Prng.float rng 1.0)) in
        (cx, cy, amp, sigma))
  in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let c = cell_center t i j in
      let rise =
        Array.fold_left
          (fun acc (cx, cy, amp, sigma) ->
            let dx = c.Point.x -. cx and dy = c.Point.y -. cy in
            let d2 = (dx *. dx) +. (dy *. dy) in
            acc +. (amp *. Float.exp (-.d2 /. (2.0 *. sigma *. sigma))))
          0.0 spots
      in
      Gridmap.set grid i j rise
    done
  done;
  t

(* ------------------------------------------------------------------ *)
(* Thermal support                                                    *)
(* ------------------------------------------------------------------ *)

(* Bounding box of the cells that detune at all: every cell whose
   absolute temperature differs from [t_ref] (by the exact expression
   [segment_detuning] evaluates). [None] when the whole map sits at
   t_ref. Outside this box every sample detunes by exactly 0.0, so
   callers may skip sampling entirely — two details make the skip exact
   rather than approximate:

   - [Gridmap.cell_of] clamps out-of-die points into the edge cells, so
     a support cell on the die boundary is extended to infinity on its
     outward sides;
   - finite sides are padded by one cell pitch, absorbing any ulp-level
     disagreement between the cell-boundary arithmetic here and the
     truncating division in [cell_of]. *)
let support ~t_ref t =
  let b = bounds t in
  let gnx = nx t and gny = ny t in
  let w = Rect.width b /. float_of_int gnx in
  let h = Rect.height b /. float_of_int gny in
  let found = ref false in
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  for j = 0 to gny - 1 do
    for i = 0 to gnx - 1 do
      if Float.abs (t.ambient +. Gridmap.get t.grid i j -. t_ref) <> 0.0 then begin
        found := true;
        let x0 =
          if i = 0 then neg_infinity
          else b.Rect.xmin +. (float_of_int i *. w) -. w
        and x1 =
          if i = gnx - 1 then infinity
          else b.Rect.xmin +. (float_of_int (i + 1) *. w) +. w
        and y0 =
          if j = 0 then neg_infinity
          else b.Rect.ymin +. (float_of_int j *. h) -. h
        and y1 =
          if j = gny - 1 then infinity
          else b.Rect.ymin +. (float_of_int (j + 1) *. h) +. h
        in
        if x0 < !xmin then xmin := x0;
        if x1 > !xmax then xmax := x1;
        if y0 < !ymin then ymin := y0;
        if y1 > !ymax then ymax := y1
      end
    done
  done;
  if not !found then None
  else Some (Rect.make ~xmin:!xmin ~ymin:!ymin ~xmax:!xmax ~ymax:!ymax)

(* ------------------------------------------------------------------ *)
(* Path sampling                                                      *)
(* ------------------------------------------------------------------ *)

(* Worst detuning |T - t_ref| along a segment, sampled at a third of the
   cell pitch — the same stride [Gridmap.deposit_segment] uses, so no
   traversed cell is skipped. *)
let segment_detuning t ~t_ref (s : Segment.t) =
  let dev p = Float.abs (temp_at t p -. t_ref) in
  let len = Segment.length s in
  if len <= 0.0 then dev s.Segment.a
  else begin
    let b = bounds t in
    let pitch =
      Float.min
        (Rect.width b /. float_of_int (nx t))
        (Rect.height b /. float_of_int (ny t))
    in
    let step = if pitch > 0.0 then pitch /. 3.0 else len in
    let samples = Stdlib.max 1 (int_of_float (Float.ceil (len /. step))) in
    let dir = Point.sub s.Segment.b s.Segment.a in
    let worst = ref 0.0 in
    for k = 0 to samples do
      let tparam = float_of_int k /. float_of_int samples in
      let d = dev (Point.add s.Segment.a (Point.scale tparam dir)) in
      if d > !worst then worst := d
    done;
    !worst
  end

(* ------------------------------------------------------------------ *)
(* Text file format                                                   *)
(* ------------------------------------------------------------------ *)

(* Line-oriented, human-editable, exact:

     operon-thermal-map 1
     die <xmin> <ymin> <xmax> <ymax>
     grid <nx> <ny>
     ambient <degC>
     <ny rows of nx cell rises, bottom row (j = 0) first>

   Floats are printed with %.17g, so a synthetic map survives a
   save/load round trip bit-identically — serve-side generated maps and
   CLI-side loaded ones evaluate the same penalties. *)

let magic = "operon-thermal-map 1"

let to_string t =
  let buf = Buffer.create 4096 in
  let b = bounds t in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "die %.17g %.17g %.17g %.17g\n" b.Rect.xmin b.Rect.ymin
       b.Rect.xmax b.Rect.ymax);
  Buffer.add_string buf (Printf.sprintf "grid %d %d\n" (nx t) (ny t));
  Buffer.add_string buf (Printf.sprintf "ambient %.17g\n" t.ambient);
  for j = 0 to ny t - 1 do
    for i = 0 to nx t - 1 do
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%.17g" (Gridmap.get t.grid i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let of_string s =
  let lines = String.split_on_char '\n' s |> List.map String.trim in
  (* Trailing blank lines are noise; internal ones are row errors. *)
  let rec drop_trailing = function "" :: rest -> drop_trailing rest | l -> l in
  let lines = List.rev (drop_trailing (List.rev lines)) in
  let err lineno fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let float_tok lineno name tok k =
    match float_of_string_opt tok with
    | Some v when Float.is_finite v -> k v
    | _ -> err lineno "bad %s %S (expected a finite number)" name tok
  in
  match lines with
  | header :: die_line :: grid_line :: ambient_line :: rows ->
      if header <> magic then
        Error (Printf.sprintf "line 1: bad header %S (expected %S)" header magic)
      else begin
        match split_ws die_line with
        | [ "die"; xmin; ymin; xmax; ymax ] ->
            float_tok 2 "die xmin" xmin (fun xmin ->
                float_tok 2 "die ymin" ymin (fun ymin ->
                    float_tok 2 "die xmax" xmax (fun xmax ->
                        float_tok 2 "die ymax" ymax (fun ymax ->
                            if xmax <= xmin || ymax <= ymin then
                              err 2 "empty die [%g,%g]x[%g,%g]" xmin xmax ymin
                                ymax
                            else begin
                              match split_ws grid_line with
                              | [ "grid"; snx; sny ] -> (
                                  match
                                    (int_of_string_opt snx, int_of_string_opt sny)
                                  with
                                  | Some gnx, Some gny
                                    when gnx > 0 && gny > 0 -> (
                                      match split_ws ambient_line with
                                      | [ "ambient"; amb ] ->
                                          float_tok 4 "ambient" amb (fun ambient ->
                                              let die =
                                                Rect.make ~xmin ~ymin ~xmax ~ymax
                                              in
                                              let grid =
                                                Gridmap.create die ~nx:gnx ~ny:gny
                                              in
                                              let rec fill j = function
                                                | [] ->
                                                    if j < gny then
                                                      err (5 + j)
                                                        "missing row %d of %d" (j + 1)
                                                        gny
                                                    else Ok { grid; ambient }
                                                | row :: rest ->
                                                    if j >= gny then
                                                      err (5 + j)
                                                        "extra row beyond grid %d %d"
                                                        gnx gny
                                                    else begin
                                                      let toks = split_ws row in
                                                      if List.length toks <> gnx then
                                                        err (5 + j)
                                                          "row %d has %d cells \
                                                           (expected %d)"
                                                          (j + 1) (List.length toks)
                                                          gnx
                                                      else begin
                                                        let bad = ref None in
                                                        List.iteri
                                                          (fun i tok ->
                                                            if !bad = None then
                                                              match
                                                                float_of_string_opt tok
                                                              with
                                                              | Some v
                                                                when Float.is_finite v
                                                                ->
                                                                  Gridmap.set grid i j v
                                                              | _ -> bad := Some tok)
                                                          toks;
                                                        match !bad with
                                                        | Some tok ->
                                                            err (5 + j)
                                                              "bad cell value %S" tok
                                                        | None -> fill (j + 1) rest
                                                      end
                                                    end
                                              in
                                              fill 0 rows)
                                      | _ ->
                                          err 4 "bad ambient line %S" ambient_line)
                                  | _ ->
                                      err 3 "bad grid size %S (expected grid NX NY)"
                                        grid_line)
                              | _ -> err 3 "bad grid line %S" grid_line
                            end))))
        | _ -> err 2 "bad die line %S" die_line
      end
  | _ -> Error "truncated thermal map (need header, die, grid, ambient, rows)"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let summary t =
  Printf.sprintf "thermal map: %dx%d ambient=%.1f peak=%.1f (rise %.1f)"
    (nx t) (ny t) t.ambient (peak t) (peak_rise t)

let render ?levels t = Gridmap.render ?levels t.grid
