(** On-chip temperature maps for the thermal-reliability scenario mode
    (the GLOW workload, DESIGN.md §15).

    A map is a {!Operon_geom.Gridmap} of temperature {e rises} above an
    ambient on the die bounds — the same grid geometry as the Figure 9
    power-hotspot maps. The field is static per run: heat shapes routes,
    routes do not (yet) produce heat. Maps come from the seeded
    {!synthetic} generator or from the exact line-oriented text format
    ({!of_string}/{!to_string}), and selection consumes them only
    through {!segment_detuning}. *)

open Operon_geom

type t

val make : ambient:float -> Gridmap.t -> t
(** Wrap a grid of rises (degC above [ambient]). *)

val grid : t -> Gridmap.t
val ambient : t -> float
val bounds : t -> Rect.t
val nx : t -> int
val ny : t -> int

val peak_rise : t -> float
(** Largest cell rise, degC. *)

val peak : t -> float
(** [ambient +. peak_rise], the hottest absolute temperature. *)

val cell_center : t -> int -> int -> Point.t

val temp_at : t -> Point.t -> float
(** Absolute temperature at a point (nearest cell; points outside the
    bounds clamp to the border cells). *)

val synthetic :
  ?nx:int ->
  ?ny:int ->
  ?ambient:float ->
  hotspots:int ->
  amplitude:float ->
  decay:float ->
  die:Rect.t ->
  Operon_util.Prng.t ->
  t
(** A field of [hotspots] Gaussian hotspots on a [nx] x [ny] grid
    (default 24x24, ambient 45 degC): centers uniform over the die,
    each rise in [(amplitude/2, amplitude]], each sigma scaled by
    [decay] (as a fraction of the shorter die side). The per-hotspot
    draw order is fixed, so one PRNG stream always reproduces the same
    field — the serve path ships generator parameters instead of cell
    values and relies on this. Raises [Invalid_argument] on a
    non-positive grid size or decay, or a negative hotspot count or
    amplitude. *)

val support : t_ref:float -> t -> Rect.t option
(** Bounding box of the cells whose absolute temperature differs from
    [t_ref] at all — outside it every {!segment_detuning} sample is
    exactly 0.0, so callers may skip sampling without changing a bit.
    Boundary support cells are extended to infinity on their outward
    sides (out-of-die points clamp into them), and finite sides carry
    one cell pitch of slack against rounding. [None] when the whole map
    sits at [t_ref]. *)

val segment_detuning : t -> t_ref:float -> Segment.t -> float
(** Worst [|T -. t_ref|] along the segment, sampled at a third of the
    cell pitch — the stride {!Operon_geom.Gridmap.deposit_segment}
    uses, so no traversed cell is skipped. *)

val to_string : t -> string
(** The exact text format: [operon-thermal-map 1] header, [die]/[grid]/
    [ambient] lines, then one row of [%.17g] cell rises per grid row
    (bottom row first). Round-trips through {!of_string}
    byte-identically. *)

val of_string : string -> (t, string) result
(** Parse the text format. Errors are one line, prefixed with the
    offending [line N] — the CLI surfaces them verbatim. *)

val save : string -> t -> unit
val load : string -> (t, string) result

val summary : t -> string
(** One line: grid size, ambient, peak, rise — embedded in the export's
    [thermal.map] field and the report table title. *)

val render : ?levels:string -> t -> string
(** ASCII-art rendering of the rise field (see
    {!Operon_geom.Gridmap.render}). *)
