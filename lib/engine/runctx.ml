open Operon_util
open Operon_optical

type mode = Ilp | Lr

let mode_name = function Ilp -> "ilp" | Lr -> "lr"

type config = {
  params : Params.t;
  mode : mode;
  ilp_budget : float;
  max_cands_per_net : int;
  jobs : int;
  strict : bool;
  injections : Fault.injection list;
  cache : bool;
  solver_core : Operon_solver.Solver.core;
}

let default_config params =
  { params;
    mode = Lr;
    ilp_budget = 3000.0;
    max_cands_per_net = 10;
    jobs = 1;
    strict = false;
    injections = [];
    cache = true;
    solver_core = Operon_solver.Solver.Sparse }

type t = {
  config : config;
  rng : Prng.t;
  exec : Executor.t;
  sink : Instrument.sink;
  faults : Fault.log;
}

let create ?rng ?(seed = 42) config =
  let rng = match rng with Some r -> r | None -> Prng.create seed in
  { config;
    rng;
    exec = Executor.create ~jobs:config.jobs;
    sink = Instrument.create ();
    faults = Fault.create_log () }

let record_fault t (f : Fault.t) =
  Fault.record t.faults f;
  Instrument.incr t.sink f.Fault.stage "faults" 1

let faults t = Fault.faults t.faults

let quarantined t =
  Fault.faults t.faults
  |> List.filter_map (fun (f : Fault.t) ->
         match (f.Fault.stage, f.Fault.net) with
         | (Instrument.Baselines | Instrument.Codesign), Some id -> Some id
         | _ -> None)
  |> List.sort_uniq compare |> Array.of_list

let check_inject t ~stage ?net () =
  match Fault.injection_matching t.config.injections ~stage ~net with
  | None -> ()
  | Some inj ->
      raise
        (Fault.Error
           (Fault.make ~stage ?net inj.Fault.inj_kind
              "deterministic fault injection at this site"))
