open Operon_util
open Operon_optical

type mode = Ilp | Lr

let mode_name = function Ilp -> "ilp" | Lr -> "lr"

type config = {
  params : Params.t;
  mode : mode;
  ilp_budget : float;
  max_cands_per_net : int;
  jobs : int;
}

let default_config params =
  { params; mode = Lr; ilp_budget = 3000.0; max_cands_per_net = 10; jobs = 1 }

type t = {
  config : config;
  rng : Prng.t;
  exec : Executor.t;
  sink : Instrument.sink;
}

let create ?rng ?(seed = 42) config =
  let rng = match rng with Some r -> r | None -> Prng.create seed in
  { config; rng; exec = Executor.create ~jobs:config.jobs; sink = Instrument.create () }
