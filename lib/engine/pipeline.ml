type ('a, 'b) t = Runctx.t -> 'a -> 'b

let stage label f rc x = Instrument.timed rc.Runctx.sink label (fun () -> f rc x)

let ( >>> ) p q rc x = q rc (p rc x)

let run rc p x = p rc x
