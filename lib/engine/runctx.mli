(** The run-context threaded through every pipeline stage.

    One value carries everything a stage may consult: the immutable
    {!config} (optical parameters, selection mode, solver budgets,
    candidate caps, worker count), the deterministic PRNG the run was
    seeded with, the {!Operon_util.Executor.t} parallel backend, and the
    {!Instrument.sink} the stage reports into. Later scaling work
    (sharding, caching, async) extends this record rather than adding
    parameters to every stage signature. *)

open Operon_util
open Operon_optical

type mode = Ilp | Lr
(** Candidate-selection engine: exact ILP or Lagrangian relaxation. *)

val mode_name : mode -> string

type config = {
  params : Params.t;  (** optical device/loss parameters *)
  mode : mode;
  ilp_budget : float;  (** ILP wall-clock cap, seconds *)
  max_cands_per_net : int;  (** co-design candidates kept per hyper net *)
  jobs : int;  (** executor workers; 1 = sequential *)
}

val default_config : Params.t -> config
(** LR mode, 3000 s ILP budget (the paper's cap), 10 candidates per net,
    sequential execution. *)

type t = {
  config : config;
  rng : Prng.t;
  exec : Executor.t;
  sink : Instrument.sink;
}

val create : ?rng:Prng.t -> ?seed:int -> config -> t
(** Fresh context: an executor built from [config.jobs] and an empty
    sink. The PRNG is [rng] when given, else [Prng.create seed]
    ([seed] defaults to 42, the repo-wide reproducibility seed). *)
