(** The run-context threaded through every pipeline stage.

    One value carries everything a stage may consult: the immutable
    {!config} (optical parameters, selection mode, solver budgets,
    candidate caps, worker count, fault policy), the deterministic PRNG
    the run was seeded with, the {!Operon_util.Executor.t} parallel
    backend, the {!Instrument.sink} the stage reports into, and the
    {!Fault.log} the run's degradations accumulate in. Later scaling work
    (sharding, caching, async) extends this record rather than adding
    parameters to every stage signature. *)

open Operon_util
open Operon_optical

type mode = Ilp | Lr
(** Candidate-selection engine: exact ILP or Lagrangian relaxation. *)

val mode_name : mode -> string

type config = {
  params : Params.t;  (** optical device/loss parameters *)
  mode : mode;
  ilp_budget : float;  (** selection wall-clock cap, seconds *)
  max_cands_per_net : int;  (** co-design candidates kept per hyper net *)
  jobs : int;  (** executor workers; 1 = sequential *)
  strict : bool;
      (** fail fast with {!Fault.Error} instead of degrading gracefully *)
  injections : Fault.injection list;
      (** deterministic fault-injection sites (tests/CI) *)
  cache : bool;
      (** precompute the crossing-matrix cache during candidate-context
          construction (numbers are bit-identical either way) *)
  solver_core : Operon_solver.Solver.core;
      (** LP engine behind ILP selection: [Sparse] (revised simplex,
          the default) or [Dense] (pre-redesign tableau, parity runs) *)
}

val default_config : Params.t -> config
(** LR mode, 3000 s ILP budget (the paper's cap), 10 candidates per net,
    sequential execution, graceful degradation, no injections, crossing
    cache enabled, sparse solver core. *)

type t = {
  config : config;
  rng : Prng.t;
  exec : Executor.t;
  sink : Instrument.sink;
  faults : Fault.log;
}

val create : ?rng:Prng.t -> ?seed:int -> config -> t
(** Fresh context: an executor built from [config.jobs], an empty sink
    and an empty fault log. The PRNG is [rng] when given, else
    [Prng.create seed] ([seed] defaults to 42, the repo-wide
    reproducibility seed). *)

val record_fault : t -> Fault.t -> unit
(** Append to the fault log and bump the stage's ["faults"] counter in
    the instrumentation sink. Coordinator-domain only. *)

val faults : t -> Fault.t list
(** Chronological fault log of the run so far. *)

val quarantined : t -> int array
(** Sorted, deduplicated ids of hyper nets quarantined by a per-net
    fault in the Baselines or Codesign stages. *)

val check_inject : t -> stage:Instrument.stage -> ?net:int -> unit -> unit
(** Raise {!Fault.Error} if a configured injection matches this
    (stage, net) site; otherwise a no-op. Safe to call from worker
    domains — it only reads the immutable config. *)
