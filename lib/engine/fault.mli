(** Structured fault taxonomy for the staged pipeline.

    A fault-tolerant run never aborts on an ad-hoc [failwith]: every
    failure crossing a stage boundary is captured as a {!t} carrying the
    stage it happened in, the hyper net concerned (when the failure is
    per-net), a machine-readable {!kind} and a human-readable detail.
    Faults are accumulated in the run-context's {!log}; non-strict runs
    degrade (a quarantined net falls back to its all-electrical route,
    a failed solver falls down the ILP → LR → greedy chain) while strict
    runs re-raise the structured {!Error} immediately.

    Deterministic fault {e injection} ([--inject-fault stage:net:kind],
    env [OPERON_FAULTS]) exercises every degradation path in tests and CI
    without depending on real failures. *)

type kind =
  | Injected  (** raised by the seeded fault-injection harness *)
  | Crash  (** an unexpected exception escaping a stage task *)
  | Capacity  (** a resource capacity violated (tracks, channels) *)
  | Budget  (** an iteration/pivot/wall-clock budget exhausted *)
  | Validation  (** malformed input rejected by a stage *)
  | Shard_crash
      (** a serving shard process died (signal or non-zero exit) with
          this job in flight and the retry-once budget exhausted *)
  | Shed
      (** rejected at dispatch: the job's remaining deadline could not
          cover the target shard's observed p95 service time *)

val all_kinds : kind list

val kind_name : kind -> string

val kind_of_string : string -> kind option
(** Case-insensitive inverse of {!kind_name}. *)

type t = {
  stage : Instrument.stage;
  net : int option;  (** the hyper net concerned, when per-net *)
  kind : kind;
  detail : string;
  backtrace : string;  (** may be empty *)
}

exception Error of t
(** The structured replacement for bare [failwith] at stage boundaries;
    what a [--strict] run fails fast with. *)

val make : ?net:int -> ?backtrace:string -> stage:Instrument.stage -> kind -> string -> t

val of_exn : stage:Instrument.stage -> ?net:int -> exn -> Printexc.raw_backtrace -> t
(** Wrap an arbitrary exception as a {!Crash} fault; an {!Error} payload
    passes through unchanged (preserving its original stage and net). *)

val to_string : t -> string
(** One line: ["codesign/net3: injected: ..."]. *)

(** {2 Deterministic injection} *)

type injection = {
  inj_stage : Instrument.stage;
  inj_net : int option;  (** [None] matches any net (the ["*"] spec) *)
  inj_kind : kind;
}

val injection_of_string : string -> (injection, string) result
(** Parse one ["stage:net:kind"] spec, e.g. ["codesign:3:crash"] or
    ["select:*:budget"]. *)

val injections_of_string : string -> (injection list, string) result
(** Comma-separated list of specs; the empty string parses to []. *)

val injections_of_string_lenient : string -> injection list * (string * string) list
(** Like {!injections_of_string}, but a malformed token never poisons the
    whole list: well-formed specs are kept and each bad token is returned
    as [(token, parse error)] so the caller can warn about it by name.
    This is the policy for environment-variable input ([OPERON_FAULTS]),
    mirroring the bench harness's [OPERON_ILP_BUDGET] handling — a typo'd
    env var degrades to a warning instead of silently injecting nothing
    (or aborting a run the variable may not even have been meant for). *)

val injection_matching :
  injection list -> stage:Instrument.stage -> net:int option -> injection option
(** First injection matching a (stage, net) site, if any. *)

(** {2 Fault log}

    Plain mutable state owned by the coordinating domain — {e not}
    domain-safe. Parallel stages record faults on the coordinator after
    the fan-out drains (the executor collects per-item results in input
    order first), so logging stays deterministic. *)

type log

val create_log : unit -> log

val record : log -> t -> unit

val faults : log -> t list
(** Chronological order. *)

val count : log -> int
