(** Typed staged-pipeline combinators.

    A pipeline is a composition of stages, each tagged with the
    {!Instrument.stage} it reports as. Running a pipeline threads one
    {!Runctx.t} through every stage and charges each stage's wall-clock
    time to the context's sink automatically — a stage body never touches
    the timer itself. [Flow] assembles the six OPERON stages with
    [(>>>)]; future subsystems plug in the same way. *)

type ('a, 'b) t
(** A pipeline from ['a] to ['b]. *)

val stage : Instrument.stage -> (Runctx.t -> 'a -> 'b) -> ('a, 'b) t
(** [stage label f] lifts [f] into a timed pipeline stage. Counters are
    reported by [f] itself via [rc.sink]. *)

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Left-to-right composition. *)

val run : Runctx.t -> ('a, 'b) t -> 'a -> 'b
