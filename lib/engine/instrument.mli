(** Instrumentation sink threaded through the staged pipeline.

    Each flow stage reports wall-clock seconds and named integer counters
    (candidates generated, states pruned, selection iterations, WDM track
    counts, ...) into the run-context's sink. The sink is what [--trace]
    renders and what the bench harness serializes.

    The sink is plain mutable state owned by the coordinating domain: it
    is {e not} domain-safe. Parallel stages accumulate their counts on the
    coordinator after the fan-out completes (the executor merges results
    in input order first), so recording stays deterministic. *)

type stage =
  | Processing
  | Baselines
  | Codesign
  | Select
  | Wdm
  | Assign
  | Serve
  | Eco
  | Pareto
  | Partition
(** The six pipeline stages of the OPERON flow (paper Figure 2) — signal
    processing, BI1S baseline generation, co-design DP candidates,
    candidate selection, WDM sweep placement, network-flow assignment —
    plus [Serve], the batch-synthesis service layer that schedules whole
    flows as jobs (per-job and queue counters live under it), [Eco],
    the incremental re-preparation layer (design-diff seconds and
    nets_reused / nets_recomputed / xrows_reused counters live under
    it), [Pareto], the thermal-scenario weight sweep (profile
    seconds plus weights / front / dropped counters), and [Partition],
    the hierarchical region decomposition of the partitioned flow (plan
    and stitch seconds plus regions / corridor_nets / cut_pairs /
    boundary_components / cut-quality counters). *)

val all_stages : stage list
(** The pipeline stages in pipeline order. [Serve], [Eco], [Pareto] and
    [Partition] are not pipeline stages and are deliberately excluded (a
    single cold flat flow run never touches them); {!stage_of_string}
    still parses ["serve"], ["eco"], ["pareto"] and ["partition"]. *)

val stage_name : stage -> string

val stage_of_string : string -> stage option
(** Case-insensitive inverse of {!stage_name} — used by the fault
    injection spec parser. *)

type record = {
  stage : stage;
  mutable seconds : float;
  mutable counters : (string * int) list;
}

type sink

val create : unit -> sink
(** A fresh, empty sink. *)

val timed : sink -> stage -> (unit -> 'a) -> 'a
(** [timed sink stage f] runs [f] and charges its wall-clock time to
    [stage]. Repeated calls accumulate. *)

val add_seconds : sink -> stage -> float -> unit

val incr : sink -> stage -> string -> int -> unit
(** [incr sink stage key n] adds [n] to the [key] counter of [stage],
    creating it at 0 first. *)

val records : sink -> record list
(** Records in first-touched order — pipeline order when stages ran in
    pipeline order. *)

val counters : record -> (string * int) list
(** Counters in first-touched order. *)

val seconds : sink -> stage -> float
(** Accumulated seconds of a stage (0 if it never ran). *)

val counter : sink -> stage -> string -> int
(** Counter value (0 if absent). *)

val total_seconds : sink -> float

val merge : into:sink -> sink -> unit
(** Fold one sink's seconds and counters into another — used when a
    sub-flow ran with its own sink. *)
