type stage =
  | Processing
  | Baselines
  | Codesign
  | Select
  | Wdm
  | Assign
  | Serve
  | Eco
  | Pareto
  | Partition

let all_stages = [ Processing; Baselines; Codesign; Select; Wdm; Assign ]

let stage_name = function
  | Processing -> "processing"
  | Baselines -> "baselines"
  | Codesign -> "codesign"
  | Select -> "select"
  | Wdm -> "wdm"
  | Assign -> "assign"
  | Serve -> "serve"
  | Eco -> "eco"
  | Pareto -> "pareto"
  | Partition -> "partition"

let stage_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt
    (fun stage -> stage_name stage = s)
    (all_stages @ [ Serve; Eco; Pareto; Partition ])

type record = {
  stage : stage;
  mutable seconds : float;
  mutable counters : (string * int) list;  (* newest-first internally *)
}

type sink = { mutable records : record list (* newest-first *) }

let create () = { records = [] }

let find_or_add sink stage =
  match List.find_opt (fun r -> r.stage = stage) sink.records with
  | Some r -> r
  | None ->
      let r = { stage; seconds = 0.0; counters = [] } in
      sink.records <- r :: sink.records;
      r

let add_seconds sink stage s =
  let r = find_or_add sink stage in
  r.seconds <- r.seconds +. s

let incr sink stage key n =
  let r = find_or_add sink stage in
  match List.assoc_opt key r.counters with
  | Some _ ->
      r.counters <-
        List.map (fun (k, x) -> if k = key then (k, x + n) else (k, x)) r.counters
  | None -> r.counters <- (key, n) :: r.counters

let timed sink stage f =
  let result, dt = Operon_util.Timer.time f in
  add_seconds sink stage dt;
  result

let records sink = List.rev sink.records

let counters r = List.rev r.counters

let seconds sink stage =
  match List.find_opt (fun r -> r.stage = stage) sink.records with
  | Some r -> r.seconds
  | None -> 0.0

let counter sink stage key =
  match List.find_opt (fun r -> r.stage = stage) sink.records with
  | Some r -> ( match List.assoc_opt key r.counters with Some v -> v | None -> 0)
  | None -> 0

let total_seconds sink =
  List.fold_left (fun acc r -> acc +. r.seconds) 0.0 sink.records

let merge ~into src =
  List.iter
    (fun r ->
      add_seconds into r.stage r.seconds;
      List.iter (fun (k, v) -> incr into r.stage k v) (counters r))
    (records src)
