type kind =
  | Injected
  | Crash
  | Capacity
  | Budget
  | Validation
  | Shard_crash
  | Shed

let all_kinds =
  [ Injected; Crash; Capacity; Budget; Validation; Shard_crash; Shed ]

let kind_name = function
  | Injected -> "injected"
  | Crash -> "crash"
  | Capacity -> "capacity"
  | Budget -> "budget"
  | Validation -> "validation"
  | Shard_crash -> "shard_crash"
  | Shed -> "shed"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "injected" -> Some Injected
  | "crash" -> Some Crash
  | "capacity" -> Some Capacity
  | "budget" -> Some Budget
  | "validation" -> Some Validation
  | "shard_crash" -> Some Shard_crash
  | "shed" -> Some Shed
  | _ -> None

type t = {
  stage : Instrument.stage;
  net : int option;
  kind : kind;
  detail : string;
  backtrace : string;
}

exception Error of t

let make ?net ?(backtrace = "") ~stage kind detail =
  { stage; net; kind; detail; backtrace }

let to_string f =
  Printf.sprintf "%s%s: %s: %s"
    (Instrument.stage_name f.stage)
    (match f.net with Some n -> Printf.sprintf "/net%d" n | None -> "")
    (kind_name f.kind) f.detail

let () =
  Printexc.register_printer (function
    | Error f -> Some (Printf.sprintf "Fault.Error(%s)" (to_string f))
    | _ -> None)

let of_exn ~stage ?net exn bt =
  match exn with
  | Error f -> f
  | exn ->
      { stage;
        net;
        kind = Crash;
        detail = Printexc.to_string exn;
        backtrace = Printexc.raw_backtrace_to_string bt }

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                      *)
(* ------------------------------------------------------------------ *)

type injection = {
  inj_stage : Instrument.stage;
  inj_net : int option;  (* None matches any net (the "*" spec) *)
  inj_kind : kind;
}

let injection_of_string s =
  match String.split_on_char ':' s with
  | [ stage; net; kind ] -> (
      match Instrument.stage_of_string stage with
      | None -> Stdlib.Error (Printf.sprintf "unknown stage %S in fault spec %S" stage s)
      | Some inj_stage -> (
          let net_spec =
            if String.trim net = "*" then Ok None
            else
              match int_of_string_opt (String.trim net) with
              | Some n when n >= 0 -> Ok (Some n)
              | _ ->
                  Stdlib.Error
                    (Printf.sprintf
                       "bad net %S in fault spec %S (expected a non-negative id or *)" net s)
          in
          match net_spec with
          | Stdlib.Error _ as e -> e
          | Ok inj_net -> (
              match kind_of_string kind with
              | None ->
                  Stdlib.Error (Printf.sprintf "unknown fault kind %S in fault spec %S" kind s)
              | Some inj_kind -> Ok { inj_stage; inj_net; inj_kind })))
  | _ -> Stdlib.Error (Printf.sprintf "bad fault spec %S (expected stage:net:kind)" s)

let injections_of_string s =
  let specs =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun spec -> spec <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match injection_of_string spec with
        | Ok inj -> go (inj :: acc) rest
        | Stdlib.Error _ as e -> e)
  in
  go [] specs

let injections_of_string_lenient s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun spec -> spec <> "")
  |> List.fold_left
       (fun (oks, bads) spec ->
         match injection_of_string spec with
         | Ok inj -> (inj :: oks, bads)
         | Stdlib.Error msg -> (oks, (spec, msg) :: bads))
       ([], [])
  |> fun (oks, bads) -> (List.rev oks, List.rev bads)

let injection_matching injections ~stage ~net =
  List.find_opt
    (fun inj ->
      inj.inj_stage = stage
      &&
      match (inj.inj_net, net) with
      | None, _ -> true
      | Some a, Some b -> a = b
      | Some _, None -> false)
    injections

(* ------------------------------------------------------------------ *)
(* Fault log                                                          *)
(* ------------------------------------------------------------------ *)

type log = { mutable items : t list (* newest-first *) }

let create_log () = { items = [] }

let record log f = log.items <- f :: log.items

let faults log = List.rev log.items

let count log = List.length log.items
