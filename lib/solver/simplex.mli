(** Two-phase primal simplex on a dense tableau.

    Exact LP solving for the Formula (3) relaxations inside the
    branch-and-bound ILP. Dense is appropriate: after the Section 3.3
    variable reduction and interaction-component decomposition the
    per-component programs are small (tens to a few hundred rows). Bland's
    anti-cycling rule is engaged automatically after a degeneracy streak. *)

type status =
  | Optimal of { objective : float; solution : float array }
      (** Minimizing objective value and a primal solution point. *)
  | Infeasible
  | Unbounded
  | Aborted
      (** The pivot budget ran out before either phase converged. The
          model is undecided — callers must treat this as "no proof",
          never as infeasibility. *)

val solve : ?max_pivots:int -> Lp.t -> status
(** Solve the minimization model (variables implicitly >= 0).
    [max_pivots] (default unlimited) caps the total pivot count across
    both phases — the fault-tolerance budget that bounds a degenerate or
    adversarial model instead of spinning the whole run. *)
