module Problem = Problem

type core = Sparse | Dense

let core_name = function Sparse -> "sparse" | Dense -> "dense"

let core_of_name = function
  | "sparse" -> Some Sparse
  | "dense" -> Some Dense
  | _ -> None

type solution = { objective : float; values : float array }

type status =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unbounded
  | Unknown

type stats = {
  nodes : int;
  lp_solves : int;
  pivots : int;
  refactorizations : int;
  elapsed : float;
}

module Result = struct
  type t = { status : status; stats : stats }
end

type opts = {
  o_core : core;
  o_budget : Operon_util.Timer.budget;
  o_max_pivots : int;
  o_incumbent : solution option;
}

let opts ?(core = Sparse) ?(budget = Operon_util.Timer.budget 0.0)
    ?(max_pivots = max_int) ?incumbent () =
  { o_core = core; o_budget = budget; o_max_pivots = max_pivots;
    o_incumbent = incumbent }

let default_opts = opts ()

let integral_eps = 1e-6

(* Core-independent view of one LP solve. *)
type lp_outcome =
  | Lp_optimal of float array
  | Lp_infeasible
  | Lp_unbounded
  | Lp_aborted

let most_fractional ints x =
  let best_var = ref (-1) and best_gap = ref 0.0 in
  List.iter
    (fun v ->
      let frac = Float.abs (x.(v) -. Float.round x.(v)) in
      if frac > integral_eps && frac > !best_gap then begin
        best_gap := frac;
        best_var := v
      end)
    ints;
  !best_var

let snap_integers ints x =
  let y = Array.copy x in
  List.iter (fun v -> y.(v) <- Float.round y.(v)) ints;
  y

let solve ?(opts = default_opts) problem =
  let t0 = Operon_util.Timer.now () in
  let pivots = ref 0 and refactors = ref 0 in
  let nodes = ref 0 and lp_solves = ref 0 in
  (* Standardize once per solve; every B&B node reuses the matrix and
     only overlays bounds. *)
  let std =
    match opts.o_core with
    | Sparse -> Some (Sparse_core.prepare problem)
    | Dense -> None
  in
  let solve_lp ~lower ~upper start =
    incr lp_solves;
    match opts.o_core with
    | Sparse ->
        let res, basis =
          Sparse_core.solve (Option.get std) ~lower ~upper ?start
            ~max_pivots:opts.o_max_pivots ~pivots ~refactors ()
        in
        let out =
          match res with
          | Sparse_core.Optimal x -> Lp_optimal x
          | Sparse_core.Infeasible -> Lp_infeasible
          | Sparse_core.Unbounded -> Lp_unbounded
          | Sparse_core.Aborted -> Lp_aborted
        in
        (out, Some basis)
    | Dense ->
        let out =
          match
            Dense_core.solve problem ~lower ~upper
              ~max_pivots:opts.o_max_pivots ~pivots
          with
          | Dense_core.Optimal x -> Lp_optimal x
          | Dense_core.Infeasible -> Lp_infeasible
          | Dense_core.Unbounded -> Lp_unbounded
          | Dense_core.Aborted -> Lp_aborted
        in
        (out, None)
  in
  let finish status =
    { Result.status;
      stats =
        { nodes = !nodes;
          lp_solves = !lp_solves;
          pivots = !pivots;
          refactorizations = !refactors;
          elapsed = Operon_util.Timer.now () -. t0 } }
  in
  let base_lo, base_up = Problem.bounds_copy problem in
  let ints = Problem.integer_vars problem in
  if ints = [] then begin
    match solve_lp ~lower:base_lo ~upper:base_up None with
    | Lp_optimal x, _ ->
        finish (Optimal { objective = Problem.eval_objective problem x;
                          values = x })
    | Lp_infeasible, _ -> finish Infeasible
    | Lp_unbounded, _ -> finish Unbounded
    | Lp_aborted, _ -> finish Unknown
  end
  else begin
    (* Branch and bound: DFS diving on the most fractional integer,
       bound tightenings instead of pinning rows, incumbent pruning,
       and — on the sparse core — each child LP warm-started from its
       parent's final basis. *)
    let best = ref opts.o_incumbent in
    let degraded = ref false and out_of_time = ref false in
    let root_unbounded = ref false in
    (* A node is its bound-tightening list (newest first; applied oldest
       first so a re-branched variable keeps the tighter range) plus the
       parent basis snapshot. *)
    let stack = ref [ ([], None) ] in
    let exhausted = ref false in
    while not (!exhausted || !out_of_time) do
      match !stack with
      | [] -> exhausted := true
      | (fixings, start) :: rest ->
          stack := rest;
          incr nodes;
          if Operon_util.Timer.expired opts.o_budget then out_of_time := true
          else begin
            let lower = Array.copy base_lo and upper = Array.copy base_up in
            List.iter
              (fun (v, l, u) ->
                lower.(v) <- l;
                upper.(v) <- u)
              (List.rev fixings);
            match solve_lp ~lower ~upper start with
            | Lp_infeasible, _ -> ()
            | Lp_unbounded, _ -> if fixings = [] then root_unbounded := true
            | Lp_aborted, _ -> degraded := true
            | Lp_optimal x, basis ->
                let objective = Problem.eval_objective problem x in
                let beaten =
                  match !best with
                  | Some b -> objective >= b.objective -. 1e-9
                  | None -> false
                in
                if not beaten then begin
                  let branch_var = most_fractional ints x in
                  if branch_var = -1 then begin
                    (* Integral: snap, validate against the true problem,
                       adopt. *)
                    let snapped = snap_integers ints x in
                    if Problem.feasible ~eps:1e-5 problem snapped then
                      best :=
                        Some
                          { objective = Problem.eval_objective problem snapped;
                            values = snapped }
                  end
                  else begin
                    let v = branch_var in
                    let frac = x.(v) in
                    let down = (v, lower.(v), Float.floor frac) in
                    let up = (v, Float.ceil frac, upper.(v)) in
                    let near, far =
                      if frac -. Float.floor frac >= 0.5 then (up, down)
                      else (down, up)
                    in
                    (* The diving child (nearest the LP fraction) is
                       pushed last so it is explored first; both inherit
                       this node's final basis. *)
                    stack :=
                      (near :: fixings, basis)
                      :: (far :: fixings, basis)
                      :: !stack
                  end
                end
          end
    done;
    match (!best, !out_of_time || !degraded) with
    | Some b, false -> finish (Optimal b)
    | Some b, true -> finish (Feasible b)
    | None, false -> finish (if !root_unbounded then Unbounded else Infeasible)
    | None, true -> finish Unknown
  end
