type relation = Le | Ge | Eq

type column = {
  c_obj : float;
  c_lower : float;
  c_upper : float;
  c_integer : bool;
  c_entries : (int * float) list; (* ascending row, deduplicated *)
}

let column ?(obj = 0.0) ?(lower = 0.0) ?(upper = infinity) ?(integer = false)
    entries =
  if Float.is_nan obj || Float.is_nan lower || Float.is_nan upper then
    invalid_arg "Problem.column: NaN objective or bound";
  if lower > upper then invalid_arg "Problem.column: lower > upper";
  if integer && not (Float.is_finite lower && Float.is_finite upper) then
    invalid_arg "Problem.column: integer variable needs finite bounds";
  List.iter
    (fun (_, c) ->
      if Float.is_nan c then invalid_arg "Problem.column: NaN coefficient")
    entries;
  (* Sort by row and merge duplicates so the CSC column is canonical. *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let merged =
    List.fold_left
      (fun acc (r, c) ->
        match acc with
        | (r', c') :: rest when r' = r -> (r', c' +. c) :: rest
        | _ -> (r, c) :: acc)
      [] sorted
    |> List.rev
  in
  { c_obj = obj; c_lower = lower; c_upper = upper; c_integer = integer;
    c_entries = merged }

type t = {
  nvars : int;
  nrows : int;
  obj : float array;
  lower : float array;
  upper : float array;
  integer : bool array;
  col_ptr : int array; (* nvars + 1 *)
  row_ind : int array;
  values : float array;
  rel : relation array;
  rhs : float array;
}

let make ~rows cols =
  let nvars = Array.length cols in
  if nvars = 0 then invalid_arg "Problem.make: need at least one variable";
  let nrows = Array.length rows in
  let nnz = Array.fold_left (fun acc c -> acc + List.length c.c_entries) 0 cols in
  let col_ptr = Array.make (nvars + 1) 0 in
  let row_ind = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun v c ->
      col_ptr.(v) <- !k;
      List.iter
        (fun (r, coeff) ->
          if r < 0 || r >= nrows then
            invalid_arg "Problem.make: row index out of range";
          row_ind.(!k) <- r;
          values.(!k) <- coeff;
          incr k)
        c.c_entries)
    cols;
  col_ptr.(nvars) <- !k;
  Array.iter
    (fun (_, b) ->
      if Float.is_nan b then invalid_arg "Problem.make: NaN right-hand side")
    rows;
  { nvars;
    nrows;
    obj = Array.map (fun c -> c.c_obj) cols;
    lower = Array.map (fun c -> c.c_lower) cols;
    upper = Array.map (fun c -> c.c_upper) cols;
    integer = Array.map (fun c -> c.c_integer) cols;
    col_ptr;
    row_ind;
    values;
    rel = Array.map fst rows;
    rhs = Array.map snd rows }

let of_rows ~nvars ?(obj = []) ?(lower = []) ?(upper = []) ?(integer = [])
    rows =
  if nvars <= 0 then invalid_arg "Problem.of_rows: need at least one variable";
  let objs = Array.make nvars 0.0 in
  let lowers = Array.make nvars 0.0 in
  let uppers = Array.make nvars infinity in
  let ints = Array.make nvars false in
  let check v =
    if v < 0 || v >= nvars then
      invalid_arg "Problem.of_rows: variable out of range"
  in
  List.iter (fun (v, c) -> check v; objs.(v) <- c) obj;
  List.iter (fun (v, b) -> check v; lowers.(v) <- b) lower;
  List.iter (fun (v, b) -> check v; uppers.(v) <- b) upper;
  List.iter (fun v -> check v; ints.(v) <- true) integer;
  (* Transpose the row list into per-variable entry lists. *)
  let entries = Array.make nvars [] in
  List.iteri
    (fun r (coeffs, _, _) ->
      List.iter (fun (v, c) -> check v; entries.(v) <- (r, c) :: entries.(v)) coeffs)
    rows;
  let cols =
    Array.init nvars (fun v ->
        column ~obj:objs.(v) ~lower:lowers.(v) ~upper:uppers.(v)
          ~integer:ints.(v) (List.rev entries.(v)))
  in
  let row_meta = Array.of_list (List.map (fun (_, rel, rhs) -> (rel, rhs)) rows) in
  make ~rows:row_meta cols

let nvars t = t.nvars
let nrows t = t.nrows

let check_var t v =
  if v < 0 || v >= t.nvars then invalid_arg "Problem: variable out of range"

let check_row t r =
  if r < 0 || r >= t.nrows then invalid_arg "Problem: row out of range"

let objective_coeff t v = check_var t v; t.obj.(v)
let lower_bound t v = check_var t v; t.lower.(v)
let upper_bound t v = check_var t v; t.upper.(v)
let is_integer t v = check_var t v; t.integer.(v)

let integer_vars t =
  let acc = ref [] in
  for v = t.nvars - 1 downto 0 do
    if t.integer.(v) then acc := v :: !acc
  done;
  !acc

let row_relation t r = check_row t r; t.rel.(r)
let row_rhs t r = check_row t r; t.rhs.(r)

let iter_col t v f =
  check_var t v;
  for k = t.col_ptr.(v) to t.col_ptr.(v + 1) - 1 do
    f t.row_ind.(k) t.values.(k)
  done

let bounds_copy t = (Array.copy t.lower, Array.copy t.upper)

let rows_list t =
  (* Transpose CSC back to rows; within a row, walking variables in
     ascending order yields ascending variable order for free. *)
  let acc = Array.make t.nrows [] in
  for v = t.nvars - 1 downto 0 do
    for k = t.col_ptr.(v + 1) - 1 downto t.col_ptr.(v) do
      let r = t.row_ind.(k) in
      acc.(r) <- (v, t.values.(k)) :: acc.(r)
    done
  done;
  List.init t.nrows (fun r -> (acc.(r), t.rel.(r), t.rhs.(r)))

let eval_objective t x =
  let acc = ref 0.0 in
  for v = 0 to t.nvars - 1 do
    acc := !acc +. (t.obj.(v) *. x.(v))
  done;
  !acc

let feasible ?(eps = 1e-6) t x =
  Array.length x = t.nvars
  && (let ok = ref true in
      for v = 0 to t.nvars - 1 do
        if x.(v) < t.lower.(v) -. eps || x.(v) > t.upper.(v) +. eps then
          ok := false
      done;
      !ok)
  && (let lhs = Array.make t.nrows 0.0 in
      for v = 0 to t.nvars - 1 do
        if x.(v) <> 0.0 then
          for k = t.col_ptr.(v) to t.col_ptr.(v + 1) - 1 do
            lhs.(t.row_ind.(k)) <- lhs.(t.row_ind.(k)) +. (t.values.(k) *. x.(v))
          done
      done;
      let ok = ref true in
      for r = 0 to t.nrows - 1 do
        (match t.rel.(r) with
         | Le -> if lhs.(r) > t.rhs.(r) +. eps then ok := false
         | Ge -> if lhs.(r) < t.rhs.(r) -. eps then ok := false
         | Eq -> if Float.abs (lhs.(r) -. t.rhs.(r)) > eps then ok := false)
      done;
      !ok)
