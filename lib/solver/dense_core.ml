(* The pre-redesign dense-tableau two-phase simplex, retargeted at
   Problem.t. Kept verbatim in spirit as the parity reference for the
   sparse revised core: same tolerances, same Dantzig/Bland pricing,
   same phase-1 artificial scheme.

   The dense tableau assumes x >= 0, so variable bounds are lowered onto
   rows here — exactly the synthetic-bound-row representation the sparse
   core eliminates: a finite upper bound becomes [x <= u], a positive
   lower bound [x >= l], and a fixed variable [x = l]. Negative or
   infinite lower bounds are outside this core's domain and raise. *)

type status =
  | Optimal of float array
  | Infeasible
  | Unbounded
  | Aborted

let eps = 1e-9

type tableau = {
  m : int;
  total : int;
  a : float array array; (* m rows x (total + 1) columns *)
  basis : int array;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let pv = arow.(col) in
  for j = 0 to t.total do
    arow.(j) <- arow.(j) /. pv
  done;
  for r = 0 to t.m - 1 do
    if r <> row then begin
      let factor = t.a.(r).(col) in
      if Float.abs factor > 0.0 then begin
        let target = t.a.(r) in
        for j = 0 to t.total do
          target.(j) <- target.(j) -. (factor *. arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* One simplex phase: minimize cost^T x over the current tableau,
   maintaining the reduced-cost row. Dantzig pricing, with Bland's
   least-index rule after a degeneracy streak. *)
let run_phase ~max_pivots ~pivots t cost =
  let z = Array.make (t.total + 1) 0.0 in
  let recompute_z () =
    Array.fill z 0 (t.total + 1) 0.0;
    Array.blit cost 0 z 0 t.total;
    for r = 0 to t.m - 1 do
      let cb = cost.(t.basis.(r)) in
      if Float.abs cb > 0.0 then
        for j = 0 to t.total do
          z.(j) <- z.(j) -. (cb *. t.a.(r).(j))
        done
    done
  in
  recompute_z ();
  let degenerate_streak = ref 0 in
  let rec iterate () =
    let use_bland = !degenerate_streak > 2 * (t.total + t.m) in
    let enter = ref (-1) in
    if use_bland then begin
      let j = ref 0 in
      while !enter = -1 && !j < t.total do
        if z.(!j) < -.eps then enter := !j;
        incr j
      done
    end
    else begin
      let best = ref (-.eps) in
      for j = 0 to t.total - 1 do
        if z.(j) < !best then begin
          best := z.(j);
          enter := j
        end
      done
    end;
    if !enter = -1 then `Optimal
    else begin
      let col = !enter in
      let leave = ref (-1) and best_ratio = ref infinity in
      for r = 0 to t.m - 1 do
        let arc = t.a.(r).(col) in
        if arc > eps then begin
          let ratio = t.a.(r).(t.total) /. arc in
          if ratio < !best_ratio -. eps
             || (use_bland && Float.abs (ratio -. !best_ratio) <= eps
                 && (!leave = -1 || t.basis.(r) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := r
          end
        end
      done;
      if !leave = -1 then `Unbounded
      else if !pivots >= max_pivots then `Aborted
      else begin
        if !best_ratio <= eps then incr degenerate_streak
        else degenerate_streak := 0;
        incr pivots;
        pivot t ~row:!leave ~col;
        recompute_z ();
        iterate ()
      end
    end
  in
  iterate ()

(* Bound rows derived from the (possibly branch-tightened) overlays, in
   variable order after the problem's own rows. *)
let bound_rows problem ~lower ~upper =
  let n = Problem.nvars problem in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    let lo = lower.(v) and up = upper.(v) in
    if not (Float.is_finite lo) || lo < 0.0 then
      invalid_arg "Dense_core: requires finite non-negative lower bounds";
    if lo = up then acc := ([ (v, 1.0) ], Problem.Eq, lo) :: !acc
    else begin
      if Float.is_finite up then acc := ([ (v, 1.0) ], Problem.Le, up) :: !acc;
      if lo > 0.0 then acc := ([ (v, 1.0) ], Problem.Ge, lo) :: !acc
    end
  done;
  !acc

let solve problem ~lower ~upper ~max_pivots ~pivots =
  let local = ref 0 in
  let n = Problem.nvars problem in
  let rows = Problem.rows_list problem @ bound_rows problem ~lower ~upper in
  let m = List.length rows in
  let finish st =
    pivots := !pivots + !local;
    st
  in
  if m = 0 then begin
    (* Unconstrained non-negative minimization: 0 if all costs >= 0. *)
    let solution = Array.make n 0.0 in
    let unbounded = ref false in
    for v = 0 to n - 1 do
      if Problem.objective_coeff problem v < -.eps then unbounded := true
    done;
    finish (if !unbounded then Unbounded else Optimal solution)
  end
  else begin
    let nslack =
      List.fold_left
        (fun acc (_, rel, _) ->
          match rel with Problem.Le | Problem.Ge -> acc + 1 | Problem.Eq -> acc)
        0 rows
    in
    let total = n + nslack + m in (* one artificial per row, some unused *)
    let t =
      { m;
        total;
        a = Array.init m (fun _ -> Array.make (total + 1) 0.0);
        basis = Array.make m (-1) }
    in
    let art_start = n + nslack in
    let slack_idx = ref n in
    List.iteri
      (fun r (coeffs, rel, rhs) ->
        let arow = t.a.(r) in
        List.iter (fun (v, c) -> arow.(v) <- arow.(v) +. c) coeffs;
        arow.(total) <- rhs;
        (match rel with
         | Problem.Le ->
             arow.(!slack_idx) <- 1.0;
             incr slack_idx
         | Problem.Ge ->
             arow.(!slack_idx) <- -1.0;
             incr slack_idx
         | Problem.Eq -> ());
        if arow.(total) < 0.0 then
          for j = 0 to total do
            arow.(j) <- -.arow.(j)
          done;
        arow.(art_start + r) <- 1.0;
        t.basis.(r) <- art_start + r)
      rows;
    (* Phase 1: minimize the sum of artificials. *)
    let cost1 = Array.make total 0.0 in
    for j = art_start to total - 1 do
      cost1.(j) <- 1.0
    done;
    match run_phase ~max_pivots ~pivots:local t cost1 with
    | `Unbounded -> finish Infeasible (* cannot happen: phase-1 obj >= 0 *)
    | `Aborted -> finish Aborted
    | `Optimal ->
        let phase1_value =
          let acc = ref 0.0 in
          for r = 0 to t.m - 1 do
            if t.basis.(r) >= art_start then acc := !acc +. t.a.(r).(total)
          done;
          !acc
        in
        if phase1_value > 1e-6 then finish Infeasible
        else begin
          (* Drive any residual artificial out of the basis. *)
          for r = 0 to t.m - 1 do
            if t.basis.(r) >= art_start then begin
              let col = ref (-1) in
              for j = 0 to art_start - 1 do
                if !col = -1 && Float.abs t.a.(r).(j) > eps then col := j
              done;
              if !col >= 0 then pivot t ~row:r ~col:!col
            end
          done;
          (* Phase 2: original objective, artificials barred by a huge
             cost so they never re-enter. *)
          let cost2 = Array.make total 0.0 in
          for v = 0 to n - 1 do
            cost2.(v) <- Problem.objective_coeff problem v
          done;
          for j = art_start to total - 1 do
            cost2.(j) <- 1e18
          done;
          match run_phase ~max_pivots ~pivots:local t cost2 with
          | `Unbounded -> finish Unbounded
          | `Aborted -> finish Aborted
          | `Optimal ->
              let solution = Array.make n 0.0 in
              for r = 0 to t.m - 1 do
                if t.basis.(r) < n then solution.(t.basis.(r)) <- t.a.(r).(total)
              done;
              for v = 0 to n - 1 do
                if solution.(v) < 0.0 && solution.(v) > -1e-7 then
                  solution.(v) <- 0.0
              done;
              finish (Optimal solution)
        end
  end
