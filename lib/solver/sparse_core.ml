(* Revised primal simplex on sparse columns with implicitly bounded
   variables.

   The problem arrives as Problem.t (CSC columns, per-variable bounds).
   [prepare] standardizes it once per solve tree: one slack column per
   row turns every relation into an equality

     A x + s = b      with   Le: s in [0, +inf)
                             Ge: s in (-inf, 0]
                             Eq: s fixed at [0, 0]

   so a basis is any m-subset of the n = nvars + m columns. The basis
   inverse is never formed: it is an LU factorization (left-looking,
   partial pivoting, sparse column storage) composed with a product-form
   eta file. Each pivot appends one eta; after [max_etas] updates — or
   on a numerically small pivot — the basis is refactorized from
   scratch and the basic values are recomputed to flush drift.

   Feasibility is reached by a composite (artificial-free) phase 1: the
   infeasibility cost g (+/-1 per out-of-bound basic variable, re-derived
   every iteration) is minimized until no basic variable violates its
   bounds. Because phase 1 starts from *any* basis, the same entry point
   serves cold starts (all-slack basis) and branch-and-bound warm starts
   from the parent node's basis after a bound tightening.

   Pricing is Dantzig (most negative reduced cost) with Bland's
   least-index rule as the anti-cycling fallback after a degeneracy
   streak, mirroring the dense core. Bound flips (a nonbasic variable
   jumping to its opposite finite bound without a basis change) count as
   pivots so the [max_pivots] fault-tolerance budget keeps its meaning. *)

type std = {
  m : int; (* rows *)
  nstruct : int; (* structural variables *)
  n : int; (* nstruct + m columns including slacks *)
  colp : int array; (* n + 1 *)
  rowi : int array;
  vals : float array;
  obj : float array; (* length n, slacks 0 *)
  base_lo : float array; (* length n: structural bounds + slack bounds *)
  base_up : float array;
  rhs : float array;
}

let prepare problem =
  let m = Problem.nrows problem in
  let nstruct = Problem.nvars problem in
  let n = nstruct + m in
  (* Count structural nonzeros. *)
  let nnz = ref 0 in
  for v = 0 to nstruct - 1 do
    Problem.iter_col problem v (fun _ _ -> incr nnz)
  done;
  let colp = Array.make (n + 1) 0 in
  let rowi = Array.make (!nnz + m) 0 in
  let vals = Array.make (!nnz + m) 0.0 in
  let k = ref 0 in
  for v = 0 to nstruct - 1 do
    colp.(v) <- !k;
    Problem.iter_col problem v (fun r c ->
        rowi.(!k) <- r;
        vals.(!k) <- c;
        incr k)
  done;
  for r = 0 to m - 1 do
    colp.(nstruct + r) <- !k;
    rowi.(!k) <- r;
    vals.(!k) <- 1.0;
    incr k
  done;
  colp.(n) <- !k;
  let obj = Array.make n 0.0 in
  let base_lo = Array.make n 0.0 in
  let base_up = Array.make n 0.0 in
  for v = 0 to nstruct - 1 do
    obj.(v) <- Problem.objective_coeff problem v;
    base_lo.(v) <- Problem.lower_bound problem v;
    base_up.(v) <- Problem.upper_bound problem v
  done;
  let rhs = Array.make m 0.0 in
  for r = 0 to m - 1 do
    rhs.(r) <- Problem.row_rhs problem r;
    let j = nstruct + r in
    match Problem.row_relation problem r with
    | Problem.Le ->
        base_lo.(j) <- 0.0;
        base_up.(j) <- infinity
    | Problem.Ge ->
        base_lo.(j) <- neg_infinity;
        base_up.(j) <- 0.0
    | Problem.Eq ->
        base_lo.(j) <- 0.0;
        base_up.(j) <- 0.0
  done;
  { m; nstruct; n; colp; rowi; vals; obj; base_lo; base_up; rhs }

(* --- basis state --- *)

let st_lower = 0
let st_upper = 1
let st_basic = 2
let st_free = 3

type basis = { basic : int array; (* m *) stat : int array (* n *) }

type result =
  | Optimal of float array (* structural values *)
  | Infeasible
  | Unbounded
  | Aborted

(* --- LU factorization of the basis (P B = L U) --- *)

exception Singular

type lu = {
  perm : int array; (* elimination position -> pivot row *)
  pos_of_row : int array; (* inverse of perm *)
  lcol : (int * float) array array; (* multipliers per position, raw rows *)
  ucol : (int * float) array array; (* strictly-upper entries (pos, val) *)
  udiag : float array;
}

let factorize m get_col basic =
  let perm = Array.make m (-1) in
  let pos_of_row = Array.make m (-1) in
  let lcol = Array.make m [||] in
  let ucol = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  let w = Array.make m 0.0 in
  for j = 0 to m - 1 do
    Array.fill w 0 m 0.0;
    get_col basic.(j) (fun r v -> w.(r) <- w.(r) +. v);
    (* Apply previous eliminations in order. *)
    for k = 0 to j - 1 do
      let t = w.(perm.(k)) in
      if t <> 0.0 then
        Array.iter (fun (r, l) -> w.(r) <- w.(r) -. (l *. t)) lcol.(k)
    done;
    let ul = ref [] in
    for k = j - 1 downto 0 do
      let v = w.(perm.(k)) in
      if v <> 0.0 then ul := (k, v) :: !ul
    done;
    ucol.(j) <- Array.of_list !ul;
    (* Partial pivoting among rows without a pivot yet. *)
    let p = ref (-1) and best = ref 0.0 in
    for r = 0 to m - 1 do
      if pos_of_row.(r) = -1 then begin
        let a = Float.abs w.(r) in
        if a > !best then begin
          best := a;
          p := r
        end
      end
    done;
    if !p = -1 || !best < 1e-11 then raise Singular;
    let p = !p in
    udiag.(j) <- w.(p);
    perm.(j) <- p;
    pos_of_row.(p) <- j;
    let ll = ref [] in
    for r = m - 1 downto 0 do
      if pos_of_row.(r) = -1 && w.(r) <> 0.0 then
        ll := (r, w.(r) /. w.(p)) :: !ll
    done;
    lcol.(j) <- Array.of_list !ll
  done;
  { perm; pos_of_row; lcol; ucol; udiag }

(* Solve B x = v. [v] is row-indexed and consumed; the result is indexed
   by basis position. *)
let lu_ftran lu v =
  let m = Array.length lu.perm in
  for k = 0 to m - 1 do
    let t = v.(lu.perm.(k)) in
    if t <> 0.0 then
      Array.iter (fun (r, l) -> v.(r) <- v.(r) -. (l *. t)) lu.lcol.(k)
  done;
  let y = Array.make m 0.0 in
  for k = 0 to m - 1 do
    y.(k) <- v.(lu.perm.(k))
  done;
  let x = Array.make m 0.0 in
  for j = m - 1 downto 0 do
    let xj = y.(j) /. lu.udiag.(j) in
    x.(j) <- xj;
    if xj <> 0.0 then
      Array.iter (fun (k, u) -> y.(k) <- y.(k) -. (u *. xj)) lu.ucol.(j)
  done;
  x

(* Solve B^T y = c. [c] is indexed by basis position and consumed; the
   result is row-indexed. *)
let lu_btran lu c =
  let m = Array.length lu.perm in
  let w = Array.make m 0.0 in
  for j = 0 to m - 1 do
    let s = ref c.(j) in
    Array.iter (fun (k, u) -> s := !s -. (u *. w.(k))) lu.ucol.(j);
    w.(j) <- !s /. lu.udiag.(j)
  done;
  let t = Array.make m 0.0 in
  for k = m - 1 downto 0 do
    let s = ref w.(k) in
    Array.iter
      (fun (r, l) -> s := !s -. (l *. t.(lu.pos_of_row.(r))))
      lu.lcol.(k);
    t.(k) <- !s
  done;
  let y = Array.make m 0.0 in
  for k = 0 to m - 1 do
    y.(lu.perm.(k)) <- t.(k)
  done;
  y

(* --- product-form eta updates (B_new = B_old * E) --- *)

type eta = {
  e_pos : int;
  e_piv : float;
  e_ents : (int * float) array; (* positions <> e_pos *)
}

let eta_ftran e x =
  let xr = x.(e.e_pos) /. e.e_piv in
  x.(e.e_pos) <- xr;
  if xr <> 0.0 then
    Array.iter (fun (i, w) -> x.(i) <- x.(i) -. (w *. xr)) e.e_ents

let eta_btran e y =
  let s = ref y.(e.e_pos) in
  Array.iter (fun (i, w) -> s := !s -. (w *. y.(i))) e.e_ents;
  y.(e.e_pos) <- !s /. e.e_piv

(* --- tolerances --- *)

let feas_tol = 1e-7
let dj_eps = 1e-9
let step_eps = 1e-9
let pivot_tol = 1e-8 (* below this, refactorize before trusting the pivot *)
let max_etas = 64

let solve std ~lower ~upper ?start ~max_pivots ~pivots ~refactors () =
  let m = std.m and n = std.n and nstruct = std.nstruct in
  let lo = Array.copy std.base_lo and up = Array.copy std.base_up in
  Array.blit lower 0 lo 0 nstruct;
  Array.blit upper 0 up 0 nstruct;
  let iter_col j f =
    for k = std.colp.(j) to std.colp.(j + 1) - 1 do
      f std.rowi.(k) std.vals.(k)
    done
  in
  (* Default nonbasic status for the current bounds. *)
  let default_stat j =
    if Float.is_finite lo.(j) then st_lower
    else if Float.is_finite up.(j) then st_upper
    else st_free
  in
  if m = 0 then begin
    (* No rows: each variable sits at its cheapest bound. *)
    let x = Array.make nstruct 0.0 in
    let unbounded = ref false in
    for v = 0 to nstruct - 1 do
      let c = std.obj.(v) in
      if c > dj_eps then
        if Float.is_finite lo.(v) then x.(v) <- lo.(v) else unbounded := true
      else if c < -.dj_eps then
        if Float.is_finite up.(v) then x.(v) <- up.(v) else unbounded := true
      else x.(v) <- (if Float.is_finite lo.(v) then lo.(v)
                     else if Float.is_finite up.(v) then Float.min up.(v) 0.0
                     else 0.0)
    done;
    let st = Array.init n default_stat in
    let b = { basic = [||]; stat = st } in
    if !unbounded then (Unbounded, b) else (Optimal x, b)
  end
  else begin
    (* ---- basis setup: warm start when the snapshot is coherent ---- *)
    let cold () =
      let basic = Array.init m (fun r -> nstruct + r) in
      let stat = Array.init n default_stat in
      for r = 0 to m - 1 do
        stat.(nstruct + r) <- st_basic
      done;
      (basic, stat)
    in
    let basic, stat =
      match start with
      | Some b when Array.length b.basic = m && Array.length b.stat = n ->
          let basic = Array.copy b.basic and stat = Array.copy b.stat in
          let ok = ref true in
          let seen = Array.make n false in
          Array.iter
            (fun j ->
              if j < 0 || j >= n || seen.(j) then ok := false
              else begin
                seen.(j) <- true;
                if stat.(j) <> st_basic then ok := false
              end)
            basic;
          if !ok then begin
            (* Re-anchor nonbasic statuses to the (possibly tightened)
               bounds of this node. *)
            for j = 0 to n - 1 do
              if stat.(j) <> st_basic then
                if stat.(j) = st_lower && Float.is_finite lo.(j) then ()
                else if stat.(j) = st_upper && Float.is_finite up.(j) then ()
                else stat.(j) <- default_stat j
              else if not seen.(j) then stat.(j) <- default_stat j
            done;
            (basic, stat)
          end
          else cold ()
      | _ -> cold ()
    in
    let nb_value j =
      if stat.(j) = st_lower then lo.(j)
      else if stat.(j) = st_upper then up.(j)
      else 0.0
    in
    let refactorize () = factorize m iter_col basic in
    let lu = ref (try refactorize () with Singular ->
        (* A stale warm-start basis can be singular under the new bounds'
           numerics; restart cold (the slack basis is diagonal). *)
        let b, s = cold () in
        Array.blit b 0 basic 0 m;
        Array.blit s 0 stat 0 n;
        refactorize ())
    in
    let etas = ref [] in (* newest first *)
    let neta = ref 0 in
    let ftran v =
      let x = lu_ftran !lu v in
      List.iter (fun e -> eta_ftran e x) (List.rev !etas);
      x
    in
    let btran c =
      List.iter (fun e -> eta_btran e c) !etas;
      lu_btran !lu c
    in
    let xb = Array.make m 0.0 in
    let recompute_xb () =
      let v = Array.copy std.rhs in
      for j = 0 to n - 1 do
        if stat.(j) <> st_basic then begin
          let xj = nb_value j in
          if xj <> 0.0 then iter_col j (fun r a -> v.(r) <- v.(r) -. (a *. xj))
        end
      done;
      Array.blit (ftran v) 0 xb 0 m
    in
    recompute_xb ();
    let refresh () =
      (match (try Some (refactorize ()) with Singular -> None) with
       | Some f -> lu := f
       | None ->
           (* Should not happen for a basis we just pivoted into; restart
              cold rather than loop on a broken factorization. *)
           let b, s = cold () in
           Array.blit b 0 basic 0 m;
           Array.blit s 0 stat 0 n;
           lu := refactorize ());
      etas := [];
      neta := 0;
      incr refactors;
      recompute_xb ()
    in
    let local_pivots = ref 0 in
    let degen_streak = ref 0 in
    let result = ref None in
    (* Hard iteration ceiling: Bland's rule rules out exact cycling, but
       tolerance interplay after a refactorization could still stall; a
       stall degrades to Aborted, never to a wrong answer. *)
    let max_iters = (100 * (n + m)) + 1000 in
    let iters = ref 0 in
    let exception Next in
    while !result = None do
      (try
         incr iters;
         if !iters > max_iters then begin
           result := Some Aborted;
           raise Next
         end;
         (* Phase detection: any basic variable out of bounds puts the
            iteration in (composite) phase 1. *)
         let g = Array.make m 0.0 in
         let any_infeas = ref false in
         for p = 0 to m - 1 do
           let j = basic.(p) in
           if xb.(p) < lo.(j) -. feas_tol then begin
             g.(p) <- -1.0;
             any_infeas := true
           end
           else if xb.(p) > up.(j) +. feas_tol then begin
             g.(p) <- 1.0;
             any_infeas := true
           end
         done;
         let phase1 = !any_infeas in
         let cb =
           if phase1 then g
           else Array.init m (fun p -> std.obj.(basic.(p)))
         in
         let y = btran cb in
         (* ---- pricing ---- *)
         let cost_of j = if phase1 then 0.0 else std.obj.(j) in
         let use_bland = !degen_streak > 2 * (n + m) in
         let enter = ref (-1) and enter_d = ref 0.0 in
         let best_score = ref dj_eps in
         (for j = 0 to n - 1 do
            if !enter >= 0 && use_bland then ()
            else if stat.(j) <> st_basic
                    && (stat.(j) = st_free || up.(j) > lo.(j))
            then begin
              let d = ref (cost_of j) in
              iter_col j (fun r a -> d := !d -. (y.(r) *. a));
              let d = !d in
              let eligible =
                (stat.(j) = st_lower && d < -.dj_eps)
                || (stat.(j) = st_upper && d > dj_eps)
                || (stat.(j) = st_free && Float.abs d > dj_eps)
              in
              if eligible then
                if use_bland then begin
                  enter := j;
                  enter_d := d
                end
                else if Float.abs d > !best_score then begin
                  best_score := Float.abs d;
                  enter := j;
                  enter_d := d
                end
            end
          done);
         if !enter = -1 then begin
           if phase1 then result := Some Infeasible
           else begin
             (* Optimal: materialize the full point and clamp round-off. *)
             let x = Array.make nstruct 0.0 in
             for v = 0 to nstruct - 1 do
               if stat.(v) <> st_basic then x.(v) <- nb_value v
             done;
             for p = 0 to m - 1 do
               if basic.(p) < nstruct then x.(basic.(p)) <- xb.(p)
             done;
             for v = 0 to nstruct - 1 do
               if x.(v) < lo.(v) then x.(v) <- lo.(v)
               else if x.(v) > up.(v) then x.(v) <- up.(v);
               if Float.abs x.(v) < 1e-11 then x.(v) <- 0.0
             done;
             result := Some (Optimal x)
           end;
           raise Next
         end;
         let q = !enter in
         let dirn =
           if stat.(q) = st_upper then -1.0
           else if stat.(q) = st_free && !enter_d > 0.0 then -1.0
           else 1.0
         in
         let v = Array.make m 0.0 in
         iter_col q (fun r a -> v.(r) <- v.(r) +. a);
         let w = ftran v in
         (* ---- ratio test ----
            The entering variable moves by t >= 0 in direction [dirn];
            basic position p changes at rate [-dirn * w.(p)]. In phase 1
            an infeasible basic variable blocks where it *reaches* the
            bound it violates (the point where its infeasibility cost
            flips), and a basic variable moving deeper past a violated
            bound does not block — total infeasibility still falls at
            rate |d|. *)
         let t_own =
           if stat.(q) = st_free then infinity else up.(q) -. lo.(q)
         in
         let best_t = ref t_own in
         let leave = ref (-1) in
         let leave_to_upper = ref false in
         let leave_w = ref 0.0 in
         for p = 0 to m - 1 do
           let alpha = dirn *. w.(p) in
           if Float.abs alpha > 1e-9 then begin
             let j = basic.(p) in
             let t, to_upper =
               if alpha > 0.0 then begin
                 (* x_B(p) decreases as t grows. *)
                 if phase1 && xb.(p) > up.(j) +. feas_tol then
                   (Float.max 0.0 ((xb.(p) -. up.(j)) /. alpha), true)
                 else if Float.is_finite lo.(j)
                         && not (phase1 && xb.(p) < lo.(j) -. feas_tol)
                 then (Float.max 0.0 ((xb.(p) -. lo.(j)) /. alpha), false)
                 else (infinity, false)
               end
               else begin
                 (* x_B(p) increases as t grows. *)
                 if phase1 && xb.(p) < lo.(j) -. feas_tol then
                   (Float.max 0.0 ((lo.(j) -. xb.(p)) /. -.alpha), false)
                 else if Float.is_finite up.(j)
                         && not (phase1 && xb.(p) > up.(j) +. feas_tol)
                 then (Float.max 0.0 ((up.(j) -. xb.(p)) /. -.alpha), true)
                 else (infinity, false)
               end
             in
             if t < !best_t -. step_eps then begin
               best_t := t;
               leave := p;
               leave_to_upper := to_upper;
               leave_w := Float.abs w.(p)
             end
             else if t <= !best_t +. step_eps && !leave >= 0 then begin
               (* Tie: Bland prefers the least leaving index; otherwise
                  the larger |w| pivot is numerically safer. *)
               if use_bland then begin
                 if basic.(p) < basic.(!leave) then begin
                   best_t := Float.min !best_t t;
                   leave := p;
                   leave_to_upper := to_upper;
                   leave_w := Float.abs w.(p)
                 end
               end
               else if Float.abs w.(p) > !leave_w then begin
                 best_t := Float.min !best_t t;
                 leave := p;
                 leave_to_upper := to_upper;
                 leave_w := Float.abs w.(p)
               end
             end
           end
         done;
         if Float.is_finite !best_t = false then begin
           (* No block in any row and no opposite bound: unbounded ray.
              In phase 1 this is numerically impossible (total
              infeasibility is bounded below); degrade rather than lie. *)
           result := Some (if phase1 then Aborted else Unbounded);
           raise Next
         end;
         if !local_pivots >= max_pivots then begin
           result := Some Aborted;
           raise Next
         end;
         let t = !best_t in
         if !leave = -1 then begin
           (* Bound flip: no basis change. *)
           for p = 0 to m - 1 do
             if w.(p) <> 0.0 then xb.(p) <- xb.(p) -. (t *. dirn *. w.(p))
           done;
           stat.(q) <- (if stat.(q) = st_lower then st_upper else st_lower);
           incr local_pivots;
           incr pivots;
           if t > step_eps then degen_streak := 0 else incr degen_streak
         end
         else begin
           let r = !leave in
           if Float.abs w.(r) < pivot_tol && !neta > 0 then begin
             (* Numerically fragile pivot on a stale eta file: rebuild
                the factorization and retry the iteration. *)
             refresh ();
             raise Next
           end;
           if Float.abs w.(r) < 1e-11 then begin
             result := Some Aborted;
             raise Next
           end;
           let entering_from = if stat.(q) = st_free then 0.0 else nb_value q in
           for p = 0 to m - 1 do
             if w.(p) <> 0.0 then xb.(p) <- xb.(p) -. (t *. dirn *. w.(p))
           done;
           let j_out = basic.(r) in
           stat.(j_out) <- (if !leave_to_upper then st_upper else st_lower);
           basic.(r) <- q;
           stat.(q) <- st_basic;
           xb.(r) <- entering_from +. (dirn *. t);
           (* Eta column is B^-1 A_q = w, independent of direction. *)
           let ents = ref [] in
           for p = m - 1 downto 0 do
             if p <> r && Float.abs w.(p) > 1e-12 then
               ents := (p, w.(p)) :: !ents
           done;
           etas :=
             { e_pos = r; e_piv = w.(r); e_ents = Array.of_list !ents }
             :: !etas;
           incr neta;
           incr local_pivots;
           incr pivots;
           if t > step_eps then degen_streak := 0 else incr degen_streak;
           if !neta >= max_etas then refresh ()
         end
       with Next -> ())
    done;
    (Option.get !result, { basic; stat })
  end
