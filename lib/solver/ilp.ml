type solution = { objective : float; values : float array }

type outcome =
  | Proven of solution
  | Best of solution
  | No_solution
  | Timed_out

type stats = { nodes : int; lp_solves : int; elapsed : float }

let integral_eps = 1e-6

(* Rebuild a model equal to [base] plus equality rows pinning the given
   binaries. Fixings are (var, value) with value 0 or 1. *)
let with_fixings base fixings =
  let child = Lp.create ~nvars:(Lp.nvars base) in
  for v = 0 to Lp.nvars base - 1 do
    Lp.set_objective child v (Lp.objective_coeff base v)
  done;
  List.iter
    (fun row -> Lp.add_constraint child row.Lp.coeffs row.Lp.rel row.Lp.rhs)
    (Lp.constraints base);
  List.iter
    (fun (v, value) -> Lp.add_constraint child [ (v, 1.0) ] Lp.Eq value)
    fixings;
  child

let most_fractional binaries x =
  let best_var = ref (-1) and best_gap = ref 0.0 in
  List.iter
    (fun v ->
      let frac = Float.abs (x.(v) -. Float.round x.(v)) in
      if frac > integral_eps && frac > !best_gap then begin
        best_gap := frac;
        best_var := v
      end)
    binaries;
  !best_var

let snap_binaries binaries x =
  let y = Array.copy x in
  List.iter (fun v -> y.(v) <- Float.round y.(v)) binaries;
  y

let solve ?(budget = Operon_util.Timer.budget 0.0) ?(max_pivots = max_int) ?incumbent
    model ~binary =
  let t0 = Operon_util.Timer.now () in
  (* Base model: the caller's rows plus x <= 1 for each binary. *)
  let base = with_fixings model [] in
  List.iter (fun v -> Lp.add_constraint base [ (v, 1.0) ] Lp.Le 1.0) binary;
  let best = ref incumbent in
  let nodes = ref 0 and lp_solves = ref 0 in
  let out_of_time = ref false in
  (* A node LP that hit its pivot budget is undecided: the node is
     dropped without branching, so the search can no longer certify
     optimality — same downgrade as running out of wall-clock. *)
  let degraded = ref false in
  (* DFS over fixing lists. The diving child (value nearest to the LP
     fraction) is pushed last so it is explored first. *)
  let stack = ref [ [] ] in
  let exhausted = ref false in
  while not (!exhausted || !out_of_time) do
    match !stack with
    | [] -> exhausted := true
    | fixings :: rest ->
        stack := rest;
        incr nodes;
        if Operon_util.Timer.expired budget then out_of_time := true
        else begin
          incr lp_solves;
          match Simplex.solve ~max_pivots (with_fixings base fixings) with
          | Simplex.Infeasible | Simplex.Unbounded -> ()
          | Simplex.Aborted -> degraded := true
          | Simplex.Optimal { objective; solution } ->
              let beaten =
                match !best with
                | Some b -> objective >= b.objective -. 1e-9
                | None -> false
              in
              if not beaten then begin
                let branch_var = most_fractional binary solution in
                if branch_var = -1 then begin
                  (* Integral: snap, validate against the true model, adopt. *)
                  let snapped = snap_binaries binary solution in
                  if Lp.feasible ~eps:1e-5 model snapped then
                    best :=
                      Some
                        { objective = Lp.eval_objective model snapped;
                          values = snapped }
                end
                else begin
                  let frac = solution.(branch_var) in
                  let near, far = if frac >= 0.5 then (1.0, 0.0) else (0.0, 1.0) in
                  stack :=
                    ((branch_var, near) :: fixings)
                    :: ((branch_var, far) :: fixings)
                    :: !stack
                end
              end
        end
  done;
  let elapsed = Operon_util.Timer.now () -. t0 in
  let stats = { nodes = !nodes; lp_solves = !lp_solves; elapsed } in
  let outcome =
    match (!best, !out_of_time || !degraded) with
    | Some b, false -> Proven b
    | Some b, true -> Best b
    | None, false -> No_solution
    | None, true -> Timed_out
  in
  (outcome, stats)
