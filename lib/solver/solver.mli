(** The single entry point of [operon_solver].

    One immutable {!Problem.t} (sparse columns, per-variable bounds,
    integrality flags) goes in; one {!Result.t} (unified status plus
    unified stats) comes out of {!solve}. Continuous problems run a
    single LP; problems with integer variables run branch-and-bound with
    most-fractional branching, incumbent pruning and bound-tightening
    dives.

    Two interchangeable LP cores sit underneath:

    - [Sparse] (the default): revised simplex on sparse columns — basis
      kept as an LU factorization with an eta file and periodic
      refactorization, bounds handled implicitly, and each B&B dive
      warm-started from its parent's basis.
    - [Dense]: the pre-redesign dense-tableau two-phase simplex, kept
      for parity testing. Bounds become synthetic rows internally;
      it requires finite non-negative lower bounds and never warm
      starts.

    Both cores honour the [max_pivots] budget per LP solve — the
    fault-tolerance contract callers like the selection fallback chain
    rely on — and share Bland's least-index anti-cycling fallback. *)

module Problem = Problem

type core = Sparse | Dense

val core_name : core -> string
val core_of_name : string -> core option

type solution = { objective : float; values : float array }

type status =
  | Optimal of solution  (** proven optimal (B&B: search exhausted) *)
  | Feasible of solution
      (** best incumbent, optimality not certified: the wall-clock
          budget expired or a node LP hit [max_pivots] *)
  | Infeasible  (** proven infeasible *)
  | Unbounded  (** LP relaxation unbounded (continuous or at the root) *)
  | Unknown  (** budget or pivot cap hit with no incumbent found *)

type stats = {
  nodes : int;  (** branch-and-bound nodes (0 for pure LPs) *)
  lp_solves : int;
  pivots : int;  (** simplex pivots incl. bound flips, all LPs summed *)
  refactorizations : int;  (** sparse-core basis rebuilds (eta-file resets) *)
  elapsed : float;  (** seconds *)
}

module Result : sig
  type t = { status : status; stats : stats }
end

type opts

val opts :
  ?core:core ->
  ?budget:Operon_util.Timer.budget ->
  ?max_pivots:int ->
  ?incumbent:solution ->
  unit ->
  opts
(** Defaults: [core Sparse], infinite budget, unlimited pivots, no
    incumbent. [budget] bounds the whole solve (checked per B&B node);
    [max_pivots] bounds each individual LP solve, and hitting it
    downgrades the result to [Feasible]/[Unknown] exactly as a budget
    expiry does. [incumbent] seeds the B&B bound (ECO warm starts). *)

val solve : ?opts:opts -> Problem.t -> Result.t
