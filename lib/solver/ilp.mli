(** Branch-and-bound 0/1 integer programming over the {!Simplex} relaxation.

    Stands in for GUROBI in the OPERON flow. Depth-first diving with
    most-fractional branching, LP-bound pruning against the incumbent, an
    optional warm-start incumbent (OPERON seeds it with the greedy
    LR-style solution), and a wall-clock budget that reproduces the paper's
    ">3000 s" time-out behaviour on the large cases. *)

type solution = {
  objective : float;
  values : float array;  (** binaries snapped to exact 0.0 / 1.0 *)
}

type outcome =
  | Proven of solution  (** optimality certificate (search exhausted) *)
  | Best of solution  (** budget expired; best incumbent so far *)
  | No_solution  (** proven infeasible *)
  | Timed_out  (** budget expired with no incumbent found *)

type stats = { nodes : int; lp_solves : int; elapsed : float }

val solve :
  ?budget:Operon_util.Timer.budget ->
  ?max_pivots:int ->
  ?incumbent:solution ->
  Lp.t ->
  binary:int list ->
  outcome * stats
(** [solve model ~binary] minimizes, requiring the listed variables to be 0
    or 1 (upper-bound rows for them are added internally; remaining
    variables stay continuous and non-negative). An [incumbent] must be
    feasible for [model]; it is returned unchanged if nothing better is
    found. [max_pivots] (default unlimited) caps each node LP's simplex
    pivots; a node whose LP aborts is dropped without branching and the
    outcome is downgraded from {!Proven} to {!Best}, exactly like a
    wall-clock time-out. *)
