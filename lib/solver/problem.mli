(** Immutable sparse problem description shared by every solver core.

    A problem is

    {v minimize c.x  subject to  A x (<= | >= | =) b,  l <= x <= u v}

    stored column-major (CSC): each variable carries its objective
    coefficient, bounds, an integrality flag and its sparse column of
    constraint coefficients. Bounds live on the variables themselves —
    binary variables are [lower:0.] [upper:1.] [integer:true], with no
    synthetic [x <= 1] rows in the row set.

    Values of type {!t} are immutable; the branch-and-bound driver
    derives per-node bound overlays without copying the matrix. *)

type relation = Le | Ge | Eq

type column
(** One variable: objective coefficient, bounds, integrality and its
    sparse constraint-coefficient column. *)

val column :
  ?obj:float ->
  ?lower:float ->
  ?upper:float ->
  ?integer:bool ->
  (int * float) list ->
  column
(** [column entries] builds a variable from its [(row, coeff)] list.
    Defaults: [obj 0.], [lower 0.], [upper infinity], [integer false].
    Duplicate row entries are summed. Raises [Invalid_argument] on
    [lower > upper], a non-finite bound pair for an integer variable,
    or NaN anywhere. *)

type t

val make : rows:(relation * float) array -> column array -> t
(** [make ~rows cols] assembles a problem from per-row relations/RHS and
    per-variable columns. Raises [Invalid_argument] on an out-of-range
    row index or an empty variable set. *)

val of_rows :
  nvars:int ->
  ?obj:(int * float) list ->
  ?lower:(int * float) list ->
  ?upper:(int * float) list ->
  ?integer:int list ->
  ((int * float) list * relation * float) list ->
  t
(** Row-major convenience constructor (the shape the old [Lp] builder
    exposed): [of_rows ~nvars rows] with sparse objective/bound
    overrides. Unlisted variables keep the {!column} defaults. *)

(* --- accessors --- *)

val nvars : t -> int
val nrows : t -> int
val objective_coeff : t -> int -> float
val lower_bound : t -> int -> float
val upper_bound : t -> int -> float
val is_integer : t -> int -> bool
val integer_vars : t -> int list
(** Indices of integer-flagged variables, ascending. *)

val row_relation : t -> int -> relation
val row_rhs : t -> int -> float

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col t v f] calls [f row coeff] for each structural entry of
    variable [v]'s column, in ascending row order. *)

val bounds_copy : t -> float array * float array
(** Fresh [(lower, upper)] arrays — the per-node overlay the B&B driver
    tightens. *)

val rows_list : t -> ((int * float) list * relation * float) list
(** Rows in row order, each as [(coeffs, rel, rhs)] with coefficients in
    ascending variable order. Materialized on demand (used by the dense
    core and by {!feasible}). *)

val eval_objective : t -> float array -> float

val feasible : ?eps:float -> t -> float array -> bool
(** Bounds plus every row hold within [eps] (default 1e-6). Integrality
    is not checked — this validates candidate points (incumbent seeds,
    snapped B&B leaves) against the continuous relaxation only. *)
