external monotonic_seconds : unit -> float = "operon_monotonic_seconds"

(* Deadlines, budgets and latency measurement all read the monotonic
   clock: a wall-clock step (NTP, DST, manual reset) must never expire a
   job early or keep a budget alive forever. The epoch is arbitrary —
   only differences between two [now] readings are meaningful. *)
let now () = monotonic_seconds ()

(* Export timestamps and anything user-facing keep real time. *)
let wall_clock () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

type budget = { deadline : float }

let budget s =
  if s <= 0.0 then { deadline = infinity } else { deadline = now () +. s }

let expired b = now () > b.deadline

let remaining b =
  if b.deadline = infinity then infinity else Float.max 0.0 (b.deadline -. now ())
