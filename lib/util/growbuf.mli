(** Preallocated growable int buffer.

    A plain [int array] that doubles in place — the accumulator used by
    the spatial-index pair sweeps, where list cells and per-pair tuples
    would dominate the profile. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh buffer; [capacity] (default 64) preallocates the backing
    array. *)

val length : t -> int

val clear : t -> unit
(** Reset to empty without releasing the backing array. *)

val push : t -> int -> unit
(** Append one value, growing the backing array by doubling when full. *)

val get : t -> int -> int
(** Random access; raises [Invalid_argument] out of bounds. *)

val sort : t -> unit
(** Sort the live contents ascending, in place. *)

val iter : (int -> unit) -> t -> unit

val to_array : t -> int array
(** Copy of the live contents. *)
