(* Preallocated growable int buffer: the accumulation half of the
   spatial-index pair sweeps. Amortized O(1) push with doubling growth,
   no per-element boxing (plain int array), and an in-place sort so the
   callers that need a deterministic order pay one O(k log k) pass
   instead of building and reversing lists. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 64) () =
  { data = Array.make (Stdlib.max 1 capacity) 0; len = 0 }

let length t = t.len

let clear t = t.len <- 0

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Growbuf.get: out of bounds";
  t.data.(i)

let sort t =
  (* Sort only the live prefix; the spare capacity holds zeros that must
     not participate. *)
  let live = Array.sub t.data 0 t.len in
  Array.sort compare live;
  Array.blit live 0 t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_array t = Array.sub t.data 0 t.len
