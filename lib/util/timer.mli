(** Timing for the Table 1 CPU columns, budgeted solver runs (the ILP's
    3000 s cap) and the serving layer's deadlines and backoff. *)

val now : unit -> float
(** Monotonic seconds ([clock_gettime CLOCK_MONOTONIC]), sub-millisecond
    resolution. The epoch is arbitrary: only differences are meaningful.
    Immune to wall-clock jumps, which makes it the correct base for
    deadlines, retry backoff and latency measurement. *)

val wall_clock : unit -> float
(** Seconds since the Unix epoch ([gettimeofday]) — for export
    timestamps and other user-facing absolute times, never for
    deadlines. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)

type budget
(** A deadline that solvers poll to honour wall-clock caps. *)

val budget : float -> budget
(** [budget s] expires [s] seconds from now. Non-positive [s] never expires
    (an unlimited budget). *)

val expired : budget -> bool
(** Has the deadline passed? *)

val remaining : budget -> float
(** Seconds left; [infinity] for unlimited budgets. *)
