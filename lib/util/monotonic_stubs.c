/* Monotonic clock for deadlines, backoff and latency measurement.
 *
 * Unix.gettimeofday is wall-clock time: an NTP step or a manual clock
 * change moves it arbitrarily, which would expire (or immortalize) any
 * in-flight deadline derived from it.  CLOCK_MONOTONIC only ever moves
 * forward at one second per second. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value operon_monotonic_seconds(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
