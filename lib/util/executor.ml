type t = Sequential | Pool of int

let sequential = Sequential

let create ~jobs = if jobs <= 1 then Sequential else Pool jobs

let default_jobs () = Domain.recommended_domain_count ()

let jobs = function Sequential -> 1 | Pool j -> j

(* One cell per input index: workers write disjoint cells, so no two
   domains ever race on the same element. *)
type 'b cell = Empty | Value of 'b | Failed of exn * Printexc.raw_backtrace

let pool_cells njobs f xs =
  let n = Array.length xs in
  let cells = Array.make n Empty in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (cells.(i) <-
           (match f i xs.(i) with
            | y -> Value y
            | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (Stdlib.min njobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  cells

let pool_mapi njobs f xs =
  let cells = pool_cells njobs f xs in
  (* Deterministic propagation: the lowest-index failure wins, whatever
     domain happened to hit it. *)
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty | Value _ -> ())
    cells;
  Array.map (function Value y -> y | Empty | Failed _ -> assert false) cells

let parallel_mapi exec f xs =
  match exec with
  | Pool j when j > 1 && Array.length xs > 1 -> pool_mapi j f xs
  | Sequential | Pool _ -> Array.mapi f xs

let parallel_map exec f xs = parallel_mapi exec (fun _ x -> f x) xs

let parallel_iter exec f xs =
  ignore (parallel_map exec (fun x -> f x) xs)

let try_parallel_mapi exec f xs =
  let of_cell = function
    | Value y -> Ok y
    | Failed (e, bt) -> Error (e, bt)
    | Empty -> assert false
  in
  match exec with
  | Pool j when j > 1 && Array.length xs > 1 -> Array.map of_cell (pool_cells j f xs)
  | Sequential | Pool _ ->
      Array.mapi
        (fun i x ->
          match f i x with
          | y -> Ok y
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        xs
