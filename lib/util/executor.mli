(** Pluggable work executor: sequential or an OCaml 5 [Domain] pool.

    The pipeline engine hands an executor to every stage whose work is
    embarrassingly parallel (one task per hyper net). Results are always
    merged in input order, so a run is bit-identical whichever backend
    executes it — parallelism never changes what is computed, only how
    fast. Tasks must therefore be self-contained: any randomness a task
    needs is derived from a per-task seed split off {e before} the fan-out
    (see [Flow.prepare]), never drawn from shared mutable state.

    Scheduling is dynamic (an atomic next-index counter), so uneven task
    sizes balance across domains. Exceptions raised by tasks are caught on
    the worker, and after the batch completes the failure with the lowest
    input index is re-raised with its original backtrace — deterministic
    no matter which domain ran it. *)

type t
(** An executor backend. Immutable and reusable across calls; domains are
    spawned per batch, so an idle executor holds no threads. *)

val sequential : t
(** Runs every task inline on the calling domain. *)

val create : jobs:int -> t
(** [create ~jobs] is a pool of [jobs] domains ([jobs <= 1] degrades to
    {!sequential}). The calling domain itself works as one of the [jobs]
    workers, so [jobs = 4] spawns three extra domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [--jobs] default. *)

val jobs : t -> int
(** Worker count (1 for {!sequential}). *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map exec f xs] maps [f] over [xs]; [Array.map f xs] but
    distributed. Output order matches input order. If any task raises, the
    batch still runs to completion and the lowest-index exception is
    re-raised. *)

val parallel_mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Index-aware {!parallel_map}. *)

val try_parallel_mapi :
  t -> (int -> 'a -> 'b) -> 'a array -> ('b, exn * Printexc.raw_backtrace) result array
(** Like {!parallel_mapi}, but never re-raises: each item's outcome is
    returned as [Ok y] or [Error (exn, backtrace)] in input order. This
    is the fault-tolerant fan-out primitive — callers decide per item
    whether to quarantine (substitute a fallback) or propagate, instead
    of losing the whole batch to its lowest-index failure. *)

val parallel_iter : t -> ('a -> unit) -> 'a array -> unit
(** [parallel_map] for effects only. *)
