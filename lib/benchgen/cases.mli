(** The five synthetic industrial cases standing in for the paper's I1-I5.

    Each spec is tuned so that the generated design reproduces the
    published #Net count and, after processing, lands near the published
    #HNet/#HPin statistics (Table 1 left columns):

    {v
      case   #Net   #HNet  #HPin   character
      I1     2660    356   1306    medium buses, 1-4 sink blocks, mixed reach
      I2     1782    837   1701    many tiny nets, chip-crossing, point-to-point
      I3     5072    168    336    few wide buses (~60 bits), short local links
      I4     3224    403   1474    medium buses, multi-sink, moderate locality
      I5     1994    933   1897    many tiny nets, chip-crossing (largest power)
    v} *)

val i1 : Gen.spec
val i2 : Gen.spec
val i3 : Gen.spec
val i4 : Gen.spec
val i5 : Gen.spec

val all : Gen.spec list
(** I1..I5 in order. *)

val by_name : string -> Gen.spec option
(** Case lookup by (case-insensitive) name. *)

type tier = {
  t_name : string;
  t_target_nets : int;  (** approximate #Net the spec generates *)
  t_target_seconds : float;
      (** end-to-end (generate + prepare + LR select) wall-clock budget
          the tier is expected to meet on commodity hardware *)
  t_spec : Gen.spec;
}
(** A scale tier: a synthetic design well beyond Table 1, paired with
    the wall-clock target the bench harness's [scale] target checks. *)

val t10k : tier
(** ~10k nets (2500 groups of 3-5 bits, 12x12 die, 80% local). *)

val t30k : tier
(** ~30k nets — same structure, 3x the groups. *)

val t100k : tier
(** ~100k nets — the stress tier; preparation's pairwise crossing
    filter and selection both become visible at this size. *)

val tiers : tier list
(** [t10k; t30k; t100k] in ascending order. *)

val tier_by_name : string -> tier option
(** Tier lookup by (case-insensitive) name. *)

val small : ?seed:int -> unit -> Operon.Signal.design
(** A miniature design (a few dozen nets) for unit tests, examples and
    quick smoke runs. *)

val tiny : ?seed:int -> unit -> Operon.Signal.design
(** An even smaller design (a handful of groups) whose ILP is solvable
    exactly within milliseconds. *)

val split : ?seed:int -> unit -> Operon.Signal.design
(** Two small clusters at opposite ends of a wide die with no
    interacting pair between them — a 2-region partition severs zero
    pairs, so a partitioned ILP run is byte-identical to the flat flow
    (the partition-smoke CI case). *)
