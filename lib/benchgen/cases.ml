open Operon_geom

let die_large = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:6.0 ~ymax:6.0
let die_small = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:3.0 ~ymax:3.0

let i1 =
  { Gen.name = "I1";
    seed = 101;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 356;
    bits_min = 3;
    bits_max = 12;
    sink_blocks_min = 1;
    sink_blocks_max = 4;
    pitch = 0.002;
    local_fraction = 0.65 }

let i2 =
  { Gen.name = "I2";
    seed = 102;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 837;
    bits_min = 1;
    bits_max = 3;
    sink_blocks_min = 1;
    sink_blocks_max = 1;
    pitch = 0.002;
    local_fraction = 0.10 }

let die_i3 = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.2 ~ymax:2.2

let i3 =
  { Gen.name = "I3";
    seed = 103;
    die = die_i3;
    n_blocks = 49;
    partners_near = 4;
    far_partner_prob = 0.1;
    block_size = 0.15;
    n_groups = 84;
    bits_min = 55;
    bits_max = 65;
    sink_blocks_min = 1;
    sink_blocks_max = 1;
    pitch = 0.002;
    local_fraction = 1.0 }

let i4 =
  { Gen.name = "I4";
    seed = 104;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 403;
    bits_min = 4;
    bits_max = 12;
    sink_blocks_min = 1;
    sink_blocks_max = 4;
    pitch = 0.002;
    local_fraction = 0.78 }

let i5 =
  { Gen.name = "I5";
    seed = 105;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 933;
    bits_min = 1;
    bits_max = 3;
    sink_blocks_min = 1;
    sink_blocks_max = 1;
    pitch = 0.002;
    local_fraction = 0.30 }

let all = [ i1; i2; i3; i4; i5 ]

(* Scale tiers: synthetic designs one to two orders of magnitude beyond
   Table 1 (#Net counts of ~10k/30k/100k), used by the bench harness's
   "scale" target to track end-to-end wall-clock against a per-tier
   budget. A mostly-local mix (80%) on a big die keeps the crossing
   structure sparse enough that selection stays the dominant cost
   rather than the candidate explosion. #Net ~ n_groups * mean bits
   (the same relation the I1-I5 specs were tuned by). *)

type tier = {
  t_name : string;
  t_target_nets : int;
  t_target_seconds : float;
  t_spec : Gen.spec;
}

let die_scale = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:12.0 ~ymax:12.0

let scale_spec ~name ~seed ~n_groups =
  { Gen.name;
    seed;
    die = die_scale;
    n_blocks = 144;
    partners_near = 4;
    far_partner_prob = 0.25;
    block_size = 0.3;
    n_groups;
    bits_min = 3;
    bits_max = 5;
    sink_blocks_min = 1;
    sink_blocks_max = 2;
    pitch = 0.002;
    local_fraction = 0.8 }

let t10k =
  { t_name = "t10k";
    t_target_nets = 10_000;
    t_target_seconds = 120.0;
    t_spec = scale_spec ~name:"t10k" ~seed:210 ~n_groups:2500 }

let t30k =
  { t_name = "t30k";
    t_target_nets = 30_000;
    t_target_seconds = 400.0;
    t_spec = scale_spec ~name:"t30k" ~seed:230 ~n_groups:7500 }

let t100k =
  { t_name = "t100k";
    t_target_nets = 100_000;
    t_target_seconds = 1800.0;
    t_spec = scale_spec ~name:"t100k" ~seed:2100 ~n_groups:25_000 }

let tiers = [ t10k; t30k; t100k ]

let tier_by_name name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.t_name = target) tiers

let by_name name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.Gen.name = target) all

let small ?(seed = 7) () =
  Gen.generate
    { Gen.name = "small";
      seed;
      die = die_small;
      n_blocks = 9;
      partners_near = 3;
      far_partner_prob = 0.5;
      block_size = 0.2;
      n_groups = 12;
      bits_min = 2;
      bits_max = 8;
      sink_blocks_min = 1;
      sink_blocks_max = 3;
      pitch = 0.002;
      local_fraction = 0.5 }

(* Two copies of a small-ish cluster spec, generated on sub-dies far
   apart on a wide die and merged into one design. Every pin — and so
   every candidate topology, which stays inside its net's pin bbox —
   lives in its own cluster, so the interaction graph has no edge
   between the halves: a 2-region partition severs zero pairs, which is
   the case the partition-smoke CI job byte-diffs partitioned-vs-flat
   exports on. *)
let split ?(seed = 5) () =
  let cluster name seed xmin =
    Gen.generate
      { Gen.name;
        seed;
        die = Rect.make ~xmin ~ymin:0.0 ~xmax:(xmin +. 2.0) ~ymax:2.0;
        n_blocks = 9;
        partners_near = 3;
        far_partner_prob = 0.5;
        block_size = 0.2;
        n_groups = 16;
        bits_min = 2;
        bits_max = 6;
        sink_blocks_min = 1;
        sink_blocks_max = 2;
        pitch = 0.002;
        local_fraction = 0.5 }
  in
  let left = cluster "splitL" seed 0.0 in
  let right = cluster "splitR" (seed + 1) 8.0 in
  Operon.Signal.design
    ~die:(Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:10.0 ~ymax:2.0)
    ~groups:
      (Array.append left.Operon.Signal.groups right.Operon.Signal.groups)

let tiny ?(seed = 11) () =
  Gen.generate
    { Gen.name = "tiny";
      seed;
      die = die_small;
      n_blocks = 4;
      partners_near = 2;
      far_partner_prob = 0.0;
      block_size = 0.2;
      n_groups = 4;
      bits_min = 2;
      bits_max = 4;
      sink_blocks_min = 1;
      sink_blocks_max = 2;
      pitch = 0.002;
      local_fraction = 0.5 }
