module Token = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled t = Atomic.get t
end

type 'a item = {
  priority : int;
  seq : int;  (* tie-breaker: FIFO within a priority *)
  token : Token.t;
  value : 'a;
}

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  mutable items : 'a item list;  (* sorted: priority desc, seq asc *)
  mutable next_seq : int;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Jobq.create: capacity must be >= 1 (got %d)" capacity);
  { mu = Mutex.create ();
    nonempty = Condition.create ();
    capacity;
    items = [];
    next_seq = 0;
    is_closed = false }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Drop cancelled items so they neither occupy capacity nor reach a
   worker. Called under the lock. *)
let purge t =
  t.items <- List.filter (fun it -> not (Token.cancelled it.token)) t.items

let length t = with_lock t (fun () -> purge t; List.length t.items)

let insert items it =
  let rec go = function
    | [] -> [ it ]
    | head :: _ as rest
      when it.priority > head.priority
           || (it.priority = head.priority && it.seq < head.seq) ->
        it :: rest
    | head :: rest -> head :: go rest
  in
  go items

let push t ~priority ~token value =
  with_lock t (fun () ->
      if t.is_closed then `Closed
      else begin
        purge t;
        if List.length t.items >= t.capacity then `Rejected
        else begin
          let it = { priority; seq = t.next_seq; token; value } in
          t.next_seq <- t.next_seq + 1;
          t.items <- insert t.items it;
          Condition.signal t.nonempty;
          `Queued
        end
      end)

let pop t =
  with_lock t (fun () ->
      let rec go () =
        purge t;
        match t.items with
        | it :: rest ->
            t.items <- rest;
            Some it.value
        | [] ->
            if t.is_closed then None
            else begin
              Condition.wait t.nonempty t.mu;
              go ()
            end
      in
      go ())

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let closed t = with_lock t (fun () -> t.is_closed)
