open Operon
open Operon_engine

type t = {
  scheduler : Scheduler.t;
  resolve : case:string -> seed:int option -> Signal.design option;
  params : Operon_optical.Params.t;
}

let create ?workers ?capacity ?registry_capacity ~resolve ~params () =
  { scheduler = Scheduler.create ?workers ?capacity ?registry_capacity ();
    resolve;
    params }

let scheduler t = t.scheduler

let start t = Scheduler.start t.scheduler

let shutdown t = Scheduler.shutdown t.scheduler

(* ------------------------------------------------------------------ *)
(* Request handlers                                                   *)
(* ------------------------------------------------------------------ *)

let config_of_submit t ~design (s : Protocol.submit) =
  (* Mirrors the single-shot CLI defaults ([make_runctx]): seed 42 for
     the flow PRNG (the submit seed reshapes the generated case, exactly
     like [--seed]), sequential execution inside the job. *)
  let config =
    Flow.Config.make ~mode:s.Protocol.sub_mode
      ~ilp_budget:s.Protocol.sub_budget ~cache:s.Protocol.sub_cache t.params
  in
  match s.Protocol.sub_thermal with
  | None -> config
  | Some th ->
      (* The map is synthesized from the (possibly mutated) design's die,
         the same way [operon thermal-map] does CLI-side. Thermal lives
         outside the preparation slice, so the registry still shares
         prepared artifacts with plain jobs on the same case. *)
      let rng = Operon_util.Prng.create th.Protocol.th_seed in
      let map =
        Operon_thermal.Thermal_map.synthetic ~nx:th.Protocol.th_grid
          ~ny:th.Protocol.th_grid ~ambient:th.Protocol.th_ambient
          ~hotspots:th.Protocol.th_hotspots
          ~amplitude:th.Protocol.th_amplitude ~decay:th.Protocol.th_decay
          ~die:design.Signal.die rng
      in
      let weights =
        match th.Protocol.th_weights with
        | [] -> Flow.Config.default_thermal_weights
        | ws -> Array.of_list ws
      in
      Flow.Config.with_thermal ~weights map config

let apply_mutate design = function
  | None -> design
  | Some m ->
      Mutate.design ~ratio:m.Protocol.mut_ratio ~seed:m.Protocol.mut_seed
        design

let enqueue t ~op ?job ?parent ?initial ~priority ?deadline ~config design =
  match
    Scheduler.submit t.scheduler ?job ~priority ?deadline ?parent ?initial
      ~config design
  with
  | Ok id ->
      let c = Scheduler.counters t.scheduler in
      Protocol.ok ~job:id ~op
        [ ("state", Protocol.jstr "queued");
          ("queue_depth", Protocol.jint c.Scheduler.queue_depth) ]
  | Error (`Busy detail) -> Protocol.error ?job ~op ~kind:"busy" ~detail ()
  | Error (`Duplicate id) ->
      Protocol.error ~job:id ~op ~kind:"validation"
        ~detail:(Printf.sprintf "job id %S already exists" id)
        ()

let handle_submit t (s : Protocol.submit) =
  match t.resolve ~case:s.Protocol.sub_case ~seed:s.Protocol.sub_seed with
  | None ->
      Protocol.error ?job:s.Protocol.sub_job ~op:"submit" ~kind:"validation"
        ~detail:(Printf.sprintf "unknown case %S" s.Protocol.sub_case)
        ()
  | Some design ->
      let design = apply_mutate design s.Protocol.sub_mutate in
      let config = config_of_submit t ~design s in
      enqueue t ~op:"submit" ?job:s.Protocol.sub_job
        ~priority:s.Protocol.sub_priority ?deadline:s.Protocol.sub_deadline
        ~config design

let handle_resubmit t (r : Protocol.resubmit) =
  let op = "resubmit" in
  let fail detail =
    Protocol.error ?job:r.Protocol.re_job ~op ~kind:"validation" ~detail ()
  in
  (* The parent must have completed: its design anchors the ECO diff and
     its choice vector is the warm start. *)
  match Scheduler.state t.scheduler r.Protocol.re_parent with
  | None ->
      Protocol.error ?job:r.Protocol.re_job ~op ~kind:"unknown_job"
        ~detail:(Printf.sprintf "no such parent job %S" r.Protocol.re_parent)
        ()
  | Some st -> (
      match Scheduler.result t.scheduler r.Protocol.re_parent with
      | None ->
          fail
            (Printf.sprintf "parent job %S is %s, not completed"
               r.Protocol.re_parent
               (Scheduler.state_name st))
      | Some parent_flow -> (
          let base =
            match r.Protocol.re_case with
            | Some case -> t.resolve ~case ~seed:r.Protocol.re_seed
            | None ->
                Option.map snd
                  (Scheduler.job_spec t.scheduler r.Protocol.re_parent)
          in
          match base with
          | None ->
              fail
                (match r.Protocol.re_case with
                | Some case -> Printf.sprintf "unknown case %S" case
                | None -> "parent job's design is no longer available")
          | Some design ->
              let design = apply_mutate design r.Protocol.re_mutate in
              let config =
                Flow.Config.make ~mode:r.Protocol.re_mode
                  ~ilp_budget:r.Protocol.re_budget
                  ~cache:r.Protocol.re_cache t.params
              in
              let initial =
                if r.Protocol.re_warm then Some parent_flow.Flow.choice
                else None
              in
              enqueue t ~op ?job:r.Protocol.re_job
                ~parent:r.Protocol.re_parent ?initial
                ~priority:r.Protocol.re_priority
                ?deadline:r.Protocol.re_deadline ~config design))

let unknown_job ~op id =
  Protocol.error ~job:id ~op ~kind:"unknown_job"
    ~detail:(Printf.sprintf "no such job %S" id)
    ()

let handle_status t id =
  match Scheduler.state t.scheduler id with
  | None -> unknown_job ~op:"status" id
  | Some st ->
      Protocol.ok ~job:id ~op:"status"
        [ ("state", Protocol.jstr (Scheduler.state_name st)) ]

let handle_result t id =
  match Scheduler.wait t.scheduler id with
  | None -> unknown_job ~op:"result" id
  | Some (Scheduler.Completed flow) ->
      (* ECO statistics ride in the envelope, never inside [result]: the
         result document of an ECO resubmission is byte-identical to a
         cold run's, and these fields are what varies. *)
      let eco_fields =
        match Scheduler.eco_stats t.scheduler id with
        | None -> []
        | Some e ->
            [ ( "eco",
                Printf.sprintf
                  "{\"nets_reused\":%d,\"nets_recomputed\":%d,\
                   \"xrows_reused\":%d,\"dirty\":%d,\"interaction_dirty\":%d,\
                   \"added\":%d,\"removed\":%d,\"closure\":%d,\
                   \"cold_fallback\":%b}"
                  e.Flow.nets_reused e.Flow.nets_recomputed e.Flow.xrows_reused
                  e.Flow.dirty e.Flow.interaction_dirty e.Flow.added
                  e.Flow.removed e.Flow.dirty_closure e.Flow.cold_fallback ) ]
      in
      Protocol.ok ~job:id ~op:"result"
        ([ ("state", Protocol.jstr "completed");
           ("power", Protocol.jfloat flow.Flow.power);
           ("solver_path", Protocol.jstr flow.Flow.solver_path) ]
        @ eco_fields
        @ [ ("result", Export.flow_to_json ~timings:false flow) ])
  | Some (Scheduler.Failed fault) ->
      Protocol.error ~job:id ~op:"result" ~kind:"fault"
        ~detail:(Fault.to_string fault) ()
  | Some Scheduler.Cancelled ->
      Protocol.error ~job:id ~op:"result" ~kind:"cancelled"
        ~detail:"job was cancelled before a worker ran it" ()
  | Some (Scheduler.Expired late) ->
      Protocol.error ~job:id ~op:"result" ~kind:"deadline"
        ~detail:
          (Printf.sprintf "deadline expired %.3f s before the job started" late)
        ()

let handle_cancel t id =
  match Scheduler.cancel t.scheduler id with
  | `Cancelled ->
      Protocol.ok ~job:id ~op:"cancel" [ ("state", Protocol.jstr "cancelled") ]
  | `Already st ->
      Protocol.error ~job:id ~op:"cancel" ~kind:"validation"
        ~detail:
          (Printf.sprintf "job is already %s" (Scheduler.state_name st))
        ()
  | `Unknown -> unknown_job ~op:"cancel" id

let handle_stats t =
  let c = Scheduler.counters t.scheduler in
  Protocol.ok ~op:"stats"
    [ ("submitted", Protocol.jint c.Scheduler.submitted);
      ("completed", Protocol.jint c.Scheduler.completed);
      ("failed", Protocol.jint c.Scheduler.failed);
      ("rejected", Protocol.jint c.Scheduler.rejected);
      ("cancelled", Protocol.jint c.Scheduler.cancelled);
      ("expired", Protocol.jint c.Scheduler.expired);
      ("queue_depth", Protocol.jint c.Scheduler.queue_depth);
      ("workers", Protocol.jint (Scheduler.workers t.scheduler));
      ( "registry",
        Printf.sprintf
          "{\"entries\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d,\
           \"capacity\":%s}"
          c.Scheduler.registry.Registry.entries
          c.Scheduler.registry.Registry.hits
          c.Scheduler.registry.Registry.misses
          c.Scheduler.registry.Registry.evictions
          (match c.Scheduler.registry.Registry.capacity with
          | None -> "null"
          | Some cap -> string_of_int cap) ) ]

let max_line_bytes = 1 lsl 20

let handle_line t line =
  if String.trim line = "" then None
  else if String.length line > max_line_bytes then
    Some
      (Protocol.error ~kind:"parse_error" ~offset:max_line_bytes
         ~detail:
           (Printf.sprintf "request line exceeds %d bytes" max_line_bytes)
         ())
  else
    Some
      (try
         match Protocol.parse_request line with
         | Error e ->
             Protocol.error ?op:e.Protocol.err_op
               ?offset:e.Protocol.err_offset ~kind:e.Protocol.err_kind
               ~detail:e.Protocol.err_detail ()
         | Ok (Protocol.Submit s) -> handle_submit t s
         | Ok (Protocol.Resubmit r) -> handle_resubmit t r
         | Ok (Protocol.Status id) -> handle_status t id
         | Ok (Protocol.Result id) -> handle_result t id
         | Ok (Protocol.Cancel id) -> handle_cancel t id
         | Ok Protocol.Stats -> handle_stats t
       with exn ->
         (* the "never raise" guarantee the transport layer relies on: an
            unexpected exception becomes a fault envelope, not a dropped
            connection *)
         Protocol.error ~kind:"fault" ~detail:(Printexc.to_string exn) ())

let serve t ic oc =
  start t;
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            (match handle_line t line with
             | Some response ->
                 output_string oc response;
                 output_char oc '\n';
                 flush oc
             | None -> ());
            loop ()
      in
      loop ())
