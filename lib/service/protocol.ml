let schema_version = 4

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (the Export writer's missing half)             *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  type cursor = { src : string; mutable pos : int }

  let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

  let advance c = c.pos <- c.pos + 1

  let rec skip_ws c =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        skip_ws c
    | _ -> ()

  let expect c ch =
    match peek c with
    | Some x when x = ch -> advance c
    | Some x -> fail "expected %C at offset %d, got %C" ch c.pos x
    | None -> fail "expected %C at offset %d, got end of input" ch c.pos

  let literal c word value =
    let n = String.length word in
    if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
      c.pos <- c.pos + n;
      value
    end
    else fail "bad literal at offset %d" c.pos

  (* UTF-8 encode one code point (surrogate pairs already combined). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end

  let hex4 c =
    let v = ref 0 in
    for _ = 1 to 4 do
      (match peek c with
       | Some ch ->
           let d =
             match ch with
             | '0' .. '9' -> Char.code ch - Char.code '0'
             | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
             | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
             | _ -> fail "bad \\u escape at offset %d" c.pos
           in
           v := (!v * 16) + d
       | None -> fail "truncated \\u escape at offset %d" c.pos);
      advance c
    done;
    !v

  let parse_string c =
    expect c '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek c with
      | None -> fail "unterminated string at offset %d" c.pos
      | Some '"' -> advance c
      | Some '\\' -> (
          advance c;
          match peek c with
          | None -> fail "truncated escape at offset %d" c.pos
          | Some e ->
              advance c;
              (match e with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   let cp = hex4 c in
                   let cp =
                     (* Combine a UTF-16 surrogate pair when present. *)
                     if cp >= 0xD800 && cp <= 0xDBFF
                        && c.pos + 1 < String.length c.src
                        && c.src.[c.pos] = '\\'
                        && c.src.[c.pos + 1] = 'u'
                     then begin
                       advance c;
                       advance c;
                       let lo = hex4 c in
                       if lo >= 0xDC00 && lo <= 0xDFFF then
                         0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                       else fail "unpaired surrogate at offset %d" c.pos
                     end
                     else cp
                   in
                   add_utf8 buf cp
               | _ -> fail "bad escape '\\%c' at offset %d" e c.pos);
              go ()
          )
      | Some ch ->
          advance c;
          Buffer.add_char buf ch;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number c =
    let start = c.pos in
    let consume_while pred =
      let rec go () =
        match peek c with
        | Some ch when pred ch ->
            advance c;
            go ()
        | _ -> ()
      in
      go ()
    in
    (match peek c with Some '-' -> advance c | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false);
    (match peek c with
     | Some '.' ->
         advance c;
         consume_while (function '0' .. '9' -> true | _ -> false)
     | _ -> ());
    (match peek c with
     | Some ('e' | 'E') ->
         advance c;
         (match peek c with Some ('+' | '-') -> advance c | _ -> ());
         consume_while (function '0' .. '9' -> true | _ -> false)
     | _ -> ());
    let text = String.sub c.src start (c.pos - start) in
    match float_of_string_opt text with
    | Some v -> v
    | None -> fail "bad number %S at offset %d" text start

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | None -> fail "unexpected end of input at offset %d" c.pos
    | Some '{' ->
        advance c;
        skip_ws c;
        if peek c = Some '}' then begin
          advance c;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws c;
            let key = parse_string c in
            skip_ws c;
            expect c ':';
            let v = parse_value c in
            skip_ws c;
            match peek c with
            | Some ',' ->
                advance c;
                members ((key, v) :: acc)
            | Some '}' ->
                advance c;
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}' at offset %d" c.pos
          in
          Obj (members [])
        end
    | Some '[' ->
        advance c;
        skip_ws c;
        if peek c = Some ']' then begin
          advance c;
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value c in
            skip_ws c;
            match peek c with
            | Some ',' ->
                advance c;
                items (v :: acc)
            | Some ']' ->
                advance c;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at offset %d" c.pos
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string c)
    | Some 't' -> literal c "true" (Bool true)
    | Some 'f' -> literal c "false" (Bool false)
    | Some 'n' -> literal c "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number c)
    | Some ch -> fail "unexpected %C at offset %d" ch c.pos

  let parse s =
    let c = { src = s; pos = 0 } in
    match parse_value c with
    | v ->
        skip_ws c;
        if c.pos <> String.length s then
          Error (c.pos, Printf.sprintf "trailing garbage at offset %d" c.pos)
        else Ok v
    (* [fail] raises at the offending position, so the cursor still
       points at (or just past) it — close enough for a client to show a
       caret into the line it sent. *)
    | exception Bad msg -> Error (c.pos, msg)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Raw-fragment writers (same conventions as the Export writer)       *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ escape s ^ "\""

let jint = string_of_int

let jfloat v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let jbool = string_of_bool

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type mutate_spec = { mut_ratio : float; mut_seed : int }

type thermal_spec = {
  th_hotspots : int;
  th_amplitude : float;
  th_decay : float;
  th_grid : int;
  th_ambient : float;
  th_seed : int;
  th_weights : float list;
}

type submit = {
  sub_job : string option;
  sub_case : string;
  sub_seed : int option;
  sub_mode : Operon_engine.Runctx.mode;
  sub_budget : float;
  sub_priority : int;
  sub_deadline : float option;
  sub_cache : bool;
  sub_mutate : mutate_spec option;
  sub_thermal : thermal_spec option;
}

type resubmit = {
  re_parent : string;
  re_job : string option;
  re_case : string option;
  re_seed : int option;
  re_mode : Operon_engine.Runctx.mode;
  re_budget : float;
  re_priority : int;
  re_deadline : float option;
  re_cache : bool;
  re_mutate : mutate_spec option;
  re_warm : bool;
}

type request =
  | Submit of submit
  | Resubmit of resubmit
  | Status of string
  | Result of string
  | Cancel of string
  | Stats

type error = {
  err_op : string option;
  err_kind : string;
  err_detail : string;
  err_offset : int option;  (* byte offset into the line, parse errors only *)
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let str_field ?default json key =
  match Json.member key json with
  | Some (Json.Str s) -> s
  | Some _ -> invalid "field %S must be a string" key
  | None -> (
      match default with
      | Some d -> d
      | None -> invalid "missing required field %S" key)

let opt_str_field json key =
  match Json.member key json with
  | Some (Json.Str s) -> Some s
  | Some Json.Null | None -> None
  | Some _ -> invalid "field %S must be a string" key

let opt_num_field json key =
  match Json.member key json with
  | Some (Json.Num v) -> Some v
  | Some Json.Null | None -> None
  | Some _ -> invalid "field %S must be a number" key

let opt_int_field json key =
  match opt_num_field json key with
  | None -> None
  | Some v ->
      if Float.is_integer v then Some (int_of_float v)
      else invalid "field %S must be an integer" key

let bool_field ~default json key =
  match Json.member key json with
  | Some (Json.Bool b) -> b
  | None -> default
  | Some _ -> invalid "field %S must be a boolean" key

(* The submission fields shared between [submit] and [resubmit]. *)
let parse_job_fields json =
  let job = opt_str_field json "job" in
  (match job with
   | Some "" -> invalid "field \"job\" must not be empty"
   | _ -> ());
  let seed =
    match opt_int_field json "seed" with
    | Some s when s <= 0 -> invalid "field \"seed\" must be positive (got %d)" s
    | seed -> seed
  in
  let mode =
    match String.lowercase_ascii (str_field ~default:"lr" json "mode") with
    | "lr" -> Operon_engine.Runctx.Lr
    | "ilp" -> Operon_engine.Runctx.Ilp
    | other -> invalid "unknown mode %S (expected lr or ilp)" other
  in
  let budget =
    match opt_num_field json "ilp_budget" with
    | Some v when v <= 0.0 -> invalid "field \"ilp_budget\" must be positive"
    | Some v -> v
    | None -> 60.0
  in
  let priority =
    match opt_int_field json "priority" with Some p -> p | None -> 0
  in
  let deadline =
    match opt_num_field json "deadline" with
    | Some v when v < 0.0 -> invalid "field \"deadline\" must be >= 0"
    | d -> d
  in
  let cache = bool_field ~default:true json "cache" in
  (job, seed, mode, budget, priority, deadline, cache)

let parse_mutate json =
  match Json.member "mutate" json with
  | None | Some Json.Null -> None
  | Some (Json.Obj _ as m) ->
      let mut_ratio =
        match opt_num_field m "ratio" with
        | Some r when r > 0.0 && r <= 1.0 -> r
        | Some _ -> invalid "field \"mutate.ratio\" must be in (0, 1]"
        | None -> invalid "missing required field \"mutate.ratio\""
      in
      let mut_seed =
        match opt_int_field m "seed" with
        | Some s when s <= 0 ->
            invalid "field \"mutate.seed\" must be positive (got %d)" s
        | Some s -> s
        | None -> 1
      in
      Some { mut_ratio; mut_seed }
  | Some _ -> invalid "field \"mutate\" must be an object"

(* The thermal scenario ships as generator parameters, not as the map
   itself: the server re-synthesizes the field from the design's die and
   the spec's seed, so a few scalars over the wire reproduce the exact
   map a CLI-side [operon thermal-map] run with the same knobs writes. *)
let parse_thermal json =
  match Json.member "thermal" json with
  | None | Some Json.Null -> None
  | Some (Json.Obj _ as th) ->
      let pos_int ~default key =
        match opt_int_field th key with
        | Some v when v <= 0 ->
            invalid "field \"thermal.%s\" must be positive (got %d)" key v
        | Some v -> v
        | None -> default
      in
      let th_hotspots =
        match opt_int_field th "hotspots" with
        | Some v when v < 0 ->
            invalid "field \"thermal.hotspots\" must be >= 0 (got %d)" v
        | Some v -> v
        | None -> 6
      in
      let pos_float ~default key =
        match opt_num_field th key with
        | Some v when v <= 0.0 || not (Float.is_finite v) ->
            invalid "field \"thermal.%s\" must be positive and finite" key
        | Some v -> v
        | None -> default
      in
      let th_amplitude =
        match opt_num_field th "amplitude" with
        | Some v when v < 0.0 || not (Float.is_finite v) ->
            invalid "field \"thermal.amplitude\" must be >= 0 and finite"
        | Some v -> v
        | None -> 25.0
      in
      let th_decay = pos_float ~default:0.15 "decay" in
      let th_grid = pos_int ~default:24 "grid" in
      let th_ambient =
        match opt_num_field th "ambient" with
        | Some v when not (Float.is_finite v) ->
            invalid "field \"thermal.ambient\" must be finite"
        | Some v -> v
        | None -> 45.0
      in
      let th_seed = pos_int ~default:1 "map_seed" in
      let th_weights =
        match Json.member "weights" th with
        | None | Some Json.Null -> []
        | Some (Json.Arr items) ->
            if items = [] then
              invalid "field \"thermal.weights\" must not be empty"
            else
              List.map
                (function
                  | Json.Num w when Float.is_finite w && w >= 0.0 -> w
                  | Json.Num _ ->
                      invalid
                        "field \"thermal.weights\" entries must be finite and \
                         >= 0"
                  | _ -> invalid "field \"thermal.weights\" must hold numbers")
                items
        | Some _ -> invalid "field \"thermal.weights\" must be an array"
      in
      Some
        { th_hotspots; th_amplitude; th_decay; th_grid; th_ambient; th_seed;
          th_weights }
  | Some _ -> invalid "field \"thermal\" must be an object"

let parse_submit json =
  let sub_case = str_field json "case" in
  let sub_job, sub_seed, sub_mode, sub_budget, sub_priority, sub_deadline,
      sub_cache =
    parse_job_fields json
  in
  let sub_mutate = parse_mutate json in
  let sub_thermal = parse_thermal json in
  Submit
    { sub_job; sub_case; sub_seed; sub_mode; sub_budget; sub_priority;
      sub_deadline; sub_cache; sub_mutate; sub_thermal }

let parse_resubmit json =
  let re_parent =
    match str_field json "parent_job" with
    | "" -> invalid "field \"parent_job\" must not be empty"
    | p -> p
  in
  let re_job, re_seed, re_mode, re_budget, re_priority, re_deadline, re_cache =
    parse_job_fields json
  in
  let re_case = opt_str_field json "case" in
  let re_mutate = parse_mutate json in
  let re_warm = bool_field ~default:false json "warm" in
  Resubmit
    { re_parent; re_job; re_case; re_seed; re_mode; re_budget; re_priority;
      re_deadline; re_cache; re_mutate; re_warm }

let parse_request line =
  match Json.parse line with
  | Error (off, msg) ->
      Error
        { err_op = None; err_kind = "parse_error"; err_detail = msg;
          err_offset = Some off }
  | Ok json -> (
      match
        match json with
        | Json.Obj _ -> (
            let op = str_field json "op" in
            ( Some op,
              match String.lowercase_ascii op with
              | "submit" -> parse_submit json
              | "resubmit" -> parse_resubmit json
              | "status" -> Status (str_field json "job")
              | "result" -> Result (str_field json "job")
              | "cancel" -> Cancel (str_field json "job")
              | "stats" -> Stats
              | other ->
                  invalid
                    "unknown op %S (expected submit, resubmit, status, result, \
                     cancel or stats)"
                    other ))
        | _ -> invalid "request must be a JSON object"
      with
      | _, request -> Ok request
      | exception Invalid detail ->
          let err_op =
            match Json.member "op" json with Some (Json.Str s) -> Some s | _ -> None
          in
          Error { err_op; err_kind = "validation"; err_detail = detail;
                  err_offset = None })

(* ------------------------------------------------------------------ *)
(* Response envelopes                                                 *)
(* ------------------------------------------------------------------ *)

let envelope ?job ?op ~ok fields =
  jobj
    ([ ("schema_version", jint schema_version); ("ok", jbool ok) ]
    @ (match op with Some op -> [ ("op", jstr op) ] | None -> [])
    @ (match job with Some j -> [ ("job", jstr j) ] | None -> [])
    @ fields)

let ok ?job ~op fields = envelope ?job ~op ~ok:true fields

let error ?job ?op ?offset ~kind ~detail () =
  envelope ?job ?op ~ok:false
    [ ( "error",
        jobj
          ([ ("kind", jstr kind); ("detail", jstr detail) ]
          @
          match offset with
          | Some o -> [ ("offset", jint o) ]
          | None -> []) ) ]

(* ------------------------------------------------------------------ *)
(* Canonical request writers                                          *)
(* ------------------------------------------------------------------ *)

(* The shard supervisor re-renders a parsed submission before forwarding
   it: the shard must see the job id the parent assigned, and a retry
   after a shard crash must replay byte-identical submission semantics
   whatever quoting the client used. *)

let mode_name = function
  | Operon_engine.Runctx.Lr -> "lr"
  | Operon_engine.Runctx.Ilp -> "ilp"

let opt_field name render = function
  | None -> []
  | Some v -> [ (name, render v) ]

let mutate_fields m =
  opt_field "mutate"
    (fun (m : mutate_spec) ->
      jobj [ ("ratio", jfloat m.mut_ratio); ("seed", jint m.mut_seed) ])
    m

let thermal_fields th =
  opt_field "thermal"
    (fun (th : thermal_spec) ->
      jobj
        ([ ("hotspots", jint th.th_hotspots);
           ("amplitude", jfloat th.th_amplitude);
           ("decay", jfloat th.th_decay);
           ("grid", jint th.th_grid);
           ("ambient", jfloat th.th_ambient);
           ("map_seed", jint th.th_seed) ]
        @
        match th.th_weights with
        | [] -> []
        | ws -> [ ("weights", "[" ^ String.concat "," (List.map jfloat ws) ^ "]") ]))
    th

let submit_to_json ~job (s : submit) =
  jobj
    ([ ("op", jstr "submit"); ("job", jstr job); ("case", jstr s.sub_case) ]
    @ opt_field "seed" jint s.sub_seed
    @ [ ("mode", jstr (mode_name s.sub_mode));
        ("ilp_budget", jfloat s.sub_budget);
        ("priority", jint s.sub_priority) ]
    @ opt_field "deadline" jfloat s.sub_deadline
    @ [ ("cache", jbool s.sub_cache) ]
    @ mutate_fields s.sub_mutate
    @ thermal_fields s.sub_thermal)

let resubmit_to_json ~job (r : resubmit) =
  jobj
    ([ ("op", jstr "resubmit"); ("job", jstr job);
       ("parent_job", jstr r.re_parent) ]
    @ opt_field "case" jstr r.re_case
    @ opt_field "seed" jint r.re_seed
    @ [ ("mode", jstr (mode_name r.re_mode));
        ("ilp_budget", jfloat r.re_budget);
        ("priority", jint r.re_priority) ]
    @ opt_field "deadline" jfloat r.re_deadline
    @ [ ("cache", jbool r.re_cache) ]
    @ mutate_fields r.re_mutate
    @ [ ("warm", jbool r.re_warm) ])
