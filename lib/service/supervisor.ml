open Operon
open Operon_engine
open Operon_util

(* Fault-isolated serving: the parent process forks N shard workers and
   consistent-hashes design content-hashes across them. The parent runs
   systhreads only — never Domains — because the OCaml 5 runtime refuses
   [Unix.fork] once any domain has ever been created in a process. Each
   forked shard is free to spawn its Domain worker pool: domains created
   after the fork are the child's own.

   Wire protocol to a shard (NDJSON over a pipe pair):
   - the parent forwards submit/resubmit/status/cancel/stats lines and
     reads one sync reply per line, matched FIFO — every op a shard
     answers synchronously is non-blocking, so there is no head-of-line
     blocking on the pipe;
   - the parent NEVER forwards the blocking [result] op. The shard
     spawns a waiter thread per accepted job that pushes the terminal
     result envelope asynchronously when the job finishes; the parent's
     reader recognizes those pushes by their ["op":"result"] stamp and
     parks/wakes its own clients.

   The parent is the single answer point, which is what makes crash
   retries idempotent: a job re-forwarded to a survivor shard recomputes
   a byte-identical result (synthesis is a pure function of the
   canonical request line), and whichever terminal envelope arrives
   first wins. *)

let serve_stage = Instrument.Serve

(* ------------------------------------------------------------------ *)
(* Consistent hash ring                                                *)
(* ------------------------------------------------------------------ *)

let vnodes_per_shard = 64

let ring_hash s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type sync_waiter = {
  mutable sw_reply : string option;
  mutable sw_dead : bool;  (* the shard died before answering *)
}

type proc = {
  pr_pid : int;
  pr_wfd : Unix.file_descr;  (* parent -> shard requests *)
  pr_ic : in_channel;  (* shard -> parent responses *)
  pr_started : float;  (* Timer.now at fork *)
  pr_wmu : Mutex.t;  (* serializes enqueue-waiter + write *)
  pr_pending : sync_waiter Queue.t;  (* guarded by the supervisor mutex *)
}

type shard_state =
  | Starting  (* (re)start scheduled; not accepting work *)
  | Running of proc
  | Broken  (* circuit breaker open: crash-looped *)

let window_size = 64

type shard = {
  sh_index : int;
  mutable sh_state : shard_state;
  mutable sh_restarts : int;
  mutable sh_consecutive : int;  (* fast crashes in a row *)
  mutable sh_crash_exits : int;
  mutable sh_crash_signals : int;
  mutable sh_retries : int;  (* jobs adopted from or lost by a crash *)
  mutable sh_shed : int;
  sh_times : float array;  (* service-time window, circular *)
  mutable sh_ntimes : int;  (* total ever recorded *)
}

type job = {
  j_id : string;
  j_line : string;  (* canonical request line, replayable verbatim *)
  j_fp : string;  (* design fingerprint: the routing key *)
  mutable j_shard : int;
  mutable j_retried : bool;
  mutable j_started : float;
  mutable j_terminal : string option;  (* the result envelope *)
}

type t = {
  shards : shard array;
  ring : (int * int) array;  (* (point, shard index), sorted *)
  workers : int;
  queue_capacity : int option;
  registry_capacity : int option;
  min_uptime : float;
  max_consecutive : int;
  backoff_base : float;
  backoff_cap : float;
  resolve : case:string -> seed:int option -> Signal.design option;
  params : Operon_optical.Params.t;
  sink : Instrument.sink;
  mu : Mutex.t;
  cond : Condition.t;
  jobs : (string, job) Hashtbl.t;
  mutable next_job : int;
  mutable stopping : bool;
  mutable fork_hooks : (unit -> unit) list;
  mutable monitor : Thread.t option;
  mutable readers : Thread.t list;  (* ever-created shard reader threads *)
}

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ------------------------------------------------------------------ *)
(* Shard child                                                        *)
(* ------------------------------------------------------------------ *)

let shard_write wmu wfd line =
  Mutex.lock wmu;
  let ok = Transport.write_all wfd (line ^ "\n") in
  Mutex.unlock wmu;
  ok

let envelope_ok line =
  match Protocol.Json.parse line with
  | Ok j -> (
      match Protocol.Json.member "ok" j with
      | Some (Protocol.Json.Bool b) -> b
      | _ -> false)
  | Error _ -> false

let line_op_job line =
  match Protocol.Json.parse line with
  | Ok j ->
      let str k =
        match Protocol.Json.member k j with
        | Some (Protocol.Json.Str s) -> Some s
        | _ -> None
      in
      (str "op", str "job")
  | Error _ -> (None, None)

(* The forked child's main loop: a full in-process [Service] (its Domain
   pool is created after the fork, which the runtime allows) answering
   sync ops in arrival order and pushing each accepted job's terminal
   result envelope from a dedicated waiter thread. EOF on the request
   pipe is the shutdown signal: drain accepted jobs, flush their
   results, exit 0. *)
let shard_main ~workers ~queue_capacity ~registry_capacity ~resolve ~params
    ~rfd ~wfd =
  let svc =
    Service.create ~workers ?capacity:queue_capacity
      ?registry_capacity ~resolve ~params ()
  in
  Service.start svc;
  let wmu = Mutex.create () in
  let waiters_mu = Mutex.create () in
  let waiters = ref [] in
  let push_result job =
    let req = Printf.sprintf {|{"op":"result","job":%s}|} (Protocol.jstr job) in
    match Service.handle_line svc req with
    | Some env -> ignore (shard_write wmu wfd env)
    | None -> ()
  in
  let ic = Unix.in_channel_of_descr rfd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
        match Service.handle_line svc line with
        | None -> loop ()
        | Some reply ->
            ignore (shard_write wmu wfd reply);
            (match line_op_job line with
            | Some ("submit" | "resubmit"), Some id when envelope_ok reply ->
                let th = Thread.create push_result id in
                Mutex.lock waiters_mu;
                waiters := th :: !waiters;
                Mutex.unlock waiters_mu
            | _ -> ());
            loop ())
  in
  loop ();
  Service.shutdown svc;
  Mutex.lock waiters_mu;
  let ws = !waiters in
  Mutex.unlock waiters_mu;
  List.iter Thread.join ws

(* ------------------------------------------------------------------ *)
(* Fork / reader / monitor                                             *)
(* ------------------------------------------------------------------ *)

let record_service_time shard dt =
  shard.sh_times.(shard.sh_ntimes mod window_size) <- dt;
  shard.sh_ntimes <- shard.sh_ntimes + 1

let observed_p95 shard =
  let n = min shard.sh_ntimes window_size in
  if n < 8 then None
  else Some (Stats.percentile (Array.sub shard.sh_times 0 n) 95.0)

(* Reader thread: demultiplex one shard's output. ["op":"result"] lines
   are asynchronous terminal pushes (the parent never forwards the
   [result] op, so no sync reply can carry it); everything else answers
   the oldest pending sync request. *)
let reader_loop t shard proc =
  let ic = proc.pr_ic in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        (match line_op_job line with
        | Some "result", Some id ->
            with_mu t (fun () ->
                (match Hashtbl.find_opt t.jobs id with
                | Some j when j.j_terminal = None ->
                    j.j_terminal <- Some line;
                    record_service_time shard (Timer.now () -. j.j_started)
                | _ -> ());
                Condition.broadcast t.cond)
        | _ ->
            with_mu t (fun () ->
                (match Queue.take_opt proc.pr_pending with
                | Some sw -> sw.sw_reply <- Some line
                | None -> ());
                Condition.broadcast t.cond));
        loop ()
  in
  loop ();
  (* EOF: the shard is gone (or shutting down). Sync requesters must
     not wait for replies that will never come. *)
  with_mu t (fun () ->
      Queue.iter (fun sw -> sw.sw_dead <- true) proc.pr_pending;
      Queue.clear proc.pr_pending;
      Condition.broadcast t.cond);
  try close_in ic with Sys_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A forked child inherits the parent's heap, including mutexes locked
   by threads that do not exist on its side of the fork. If the child's
   GC ever collects such a mutex, its finalizer ([pthread_mutex_destroy]
   on a locked mutex) aborts the process. Anchoring the supervisor state
   in a global root keeps every inherited mutex reachable for the
   child's whole life, so none is ever finalized. *)
let child_anchor : Obj.t ref = ref (Obj.repr ())

(* Must hold [t.mu] (the fork snapshots sibling fds and publishes the
   new proc atomically). The child never touches supervisor state: the
   mutexes it inherits may be held by threads that do not exist on its
   side of the fork. *)
let spawn_locked t shard =
  let req_r, req_w = Unix.pipe () in
  let rsp_r, rsp_w = Unix.pipe () in
  let sibling_fds =
    Array.to_list t.shards
    |> List.concat_map (fun s ->
           match s.sh_state with
           | Running p -> [ p.pr_wfd; Unix.descr_of_in_channel p.pr_ic ]
           | _ -> [])
  in
  let hooks = t.fork_hooks in
  match Unix.fork () with
  | 0 ->
      (try
         child_anchor := Obj.repr t;
         close_quiet req_w;
         close_quiet rsp_r;
         List.iter close_quiet sibling_fds;
         List.iter (fun f -> try f () with _ -> ()) hooks;
         Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
         shard_main ~workers:t.workers ~queue_capacity:t.queue_capacity
           ~registry_capacity:t.registry_capacity ~resolve:t.resolve
           ~params:t.params ~rfd:req_r ~wfd:rsp_w
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      close_quiet req_r;
      close_quiet rsp_w;
      let proc =
        { pr_pid = pid;
          pr_wfd = req_w;
          pr_ic = Unix.in_channel_of_descr rsp_r;
          pr_started = Timer.now ();
          pr_wmu = Mutex.create ();
          pr_pending = Queue.create () }
      in
      shard.sh_state <- Running proc;
      t.readers <-
        Thread.create (fun () -> reader_loop t shard proc) () :: t.readers;
      proc

(* Route a fingerprint to a live shard: the ring owner when it is
   Running, else the next distinct Running shard clockwise. *)
let route_locked t fp =
  let n = Array.length t.ring in
  if n = 0 then None
  else begin
    let h = ring_hash fp in
    (* first ring point >= h, else wrap to 0 *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    let start = if !lo = n then 0 else !lo in
    let rec walk i steps =
      if steps >= n then None
      else
        let shard = t.shards.(snd t.ring.((start + i) mod n)) in
        match shard.sh_state with
        | Running proc -> Some (shard, proc)
        | _ -> walk (i + 1) (steps + 1)
    in
    walk 0 0
  end

let crash_terminal ~job detail =
  Protocol.error ~job ~op:"result"
    ~kind:(Fault.kind_name Fault.Shard_crash)
    ~detail ()

(* Send one line to a shard and register a sync waiter for its reply.
   The per-proc write mutex is held across enqueue+write so concurrent
   senders cannot interleave their queue positions and their bytes in
   different orders. Returns [None] when the shard is no longer that
   incarnation. *)
let send_sync t shard proc line =
  Mutex.lock proc.pr_wmu;
  let sw =
    with_mu t (fun () ->
        match shard.sh_state with
        | Running p when p == proc ->
            let sw = { sw_reply = None; sw_dead = false } in
            Queue.push sw proc.pr_pending;
            Some sw
        | _ -> None)
  in
  let sent =
    match sw with
    | None -> None
    | Some sw ->
        if Transport.write_all proc.pr_wfd (line ^ "\n") then Some sw
        else begin
          (* broken pipe: the reader/monitor will fail the waiter *)
          Some sw
        end
  in
  Mutex.unlock proc.pr_wmu;
  sent

let await_sync t sw =
  with_mu t (fun () ->
      while sw.sw_reply = None && not sw.sw_dead do
        Condition.wait t.cond t.mu
      done;
      sw.sw_reply)

(* Re-forward a crash-orphaned job to a survivor, at most once. Runs in
   a detached thread (the monitor must not block on pipe writes). The
   ack is consumed here: no client waits on it — clients wait on the
   job's terminal envelope. *)
let retry_job t job =
  let target = with_mu t (fun () -> route_locked t job.j_fp) in
  match target with
  | None ->
      with_mu t (fun () ->
          if job.j_terminal = None then begin
            job.j_terminal <-
              Some (crash_terminal ~job:job.j_id "shard died; no live shard to retry on");
            Condition.broadcast t.cond
          end)
  | Some (shard, proc) ->
      with_mu t (fun () ->
          job.j_shard <- shard.sh_index;
          job.j_started <- Timer.now ());
      let reply =
        match send_sync t shard proc job.j_line with
        | None -> None
        | Some sw -> await_sync t sw
      in
      with_mu t (fun () ->
          match reply with
          | Some r when envelope_ok r -> ()  (* requeued; terminal will come *)
          | Some r ->
              (* the survivor rejected the replay (e.g. full queue):
                 that rejection is the job's terminal answer *)
              if job.j_terminal = None then begin
                job.j_terminal <- Some r;
                Condition.broadcast t.cond
              end
          | None ->
              if job.j_terminal = None then begin
                job.j_terminal <-
                  Some (crash_terminal ~job:job.j_id "shard died during retry");
                Condition.broadcast t.cond
              end)

let backoff_delay t consecutive =
  Float.min t.backoff_cap (t.backoff_base *. (2.0 ** float_of_int (consecutive - 1)))

let rec schedule_restart t shard delay =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay delay;
         with_mu t (fun () ->
             if (not t.stopping) && shard.sh_state = Starting then begin
               shard.sh_restarts <- shard.sh_restarts + 1;
               Instrument.incr t.sink serve_stage "shard_restarts" 1;
               ignore (spawn_locked t shard)
             end))
       ())

(* One shard death, as observed by [waitpid]: classify the crash, trip
   or arm the breaker, re-route the shard's in-flight jobs (each at most
   once — [j_retried] — so a poison-pill job cannot cascade through the
   fleet), and schedule the restart. *)
and handle_death t pid status =
  let actions =
    with_mu t (fun () ->
        let found = ref None in
        Array.iter
          (fun s ->
            match s.sh_state with
            | Running p when p.pr_pid = pid -> found := Some (s, p)
            | _ -> ())
          t.shards;
        match !found with
        | None -> None
        | Some (shard, proc) ->
            close_quiet proc.pr_wfd;
            Queue.iter (fun sw -> sw.sw_dead <- true) proc.pr_pending;
            Queue.clear proc.pr_pending;
            if t.stopping then begin
              shard.sh_state <- Starting;
              Condition.broadcast t.cond;
              None
            end
            else begin
              (match status with
              | Unix.WEXITED _ ->
                  shard.sh_crash_exits <- shard.sh_crash_exits + 1;
                  Instrument.incr t.sink serve_stage "crash_exits" 1
              | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
                  shard.sh_crash_signals <- shard.sh_crash_signals + 1;
                  Instrument.incr t.sink serve_stage "crash_signals" 1);
              let uptime = Timer.now () -. proc.pr_started in
              shard.sh_consecutive <-
                (if uptime < t.min_uptime then shard.sh_consecutive + 1 else 1);
              let broken = shard.sh_consecutive > t.max_consecutive in
              shard.sh_state <- (if broken then Broken else Starting);
              (* Orphans: this shard's in-flight jobs. *)
              let orphans =
                Hashtbl.fold
                  (fun _ j acc ->
                    if j.j_shard = shard.sh_index && j.j_terminal = None then
                      j :: acc
                    else acc)
                  t.jobs []
              in
              let retry, fail =
                List.partition (fun j -> not j.j_retried) orphans
              in
              List.iter
                (fun j ->
                  j.j_retried <- true;
                  shard.sh_retries <- shard.sh_retries + 1;
                  Instrument.incr t.sink serve_stage "shard_retries" 1)
                retry;
              List.iter
                (fun j ->
                  j.j_terminal <-
                    Some
                      (crash_terminal ~job:j.j_id
                         "shard died re-running this job (retried once)"))
                fail;
              Condition.broadcast t.cond;
              Some (shard, broken, retry)
            end)
  in
  match actions with
  | None -> ()
  | Some (shard, broken, retry) ->
      List.iter (fun j -> ignore (Thread.create (fun () -> retry_job t j) ())) retry;
      if not broken then
        schedule_restart t shard (backoff_delay t shard.sh_consecutive)

let all_reaped t =
  with_mu t (fun () ->
      Array.for_all
        (fun s -> match s.sh_state with Running _ -> false | _ -> true)
        t.shards)

let monitor_loop t =
  let rec loop () =
    match Unix.wait () with
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        if not t.stopping then begin
          (* no children yet (all restarts pending): poll gently *)
          Thread.delay 0.05;
          loop ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | pid, status ->
        handle_death t pid status;
        if not (t.stopping && all_reaped t) then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(shards = 2) ?(workers = 1) ?queue_capacity ?registry_capacity
    ?(min_uptime = 1.0) ?(max_consecutive = 5) ?(backoff_base = 0.25)
    ?(backoff_cap = 8.0) ~resolve ~params () =
  if shards < 1 then invalid_arg "Supervisor.create: shards must be >= 1";
  let shard i =
    { sh_index = i;
      sh_state = Starting;
      sh_restarts = 0;
      sh_consecutive = 0;
      sh_crash_exits = 0;
      sh_crash_signals = 0;
      sh_retries = 0;
      sh_shed = 0;
      sh_times = Array.make window_size 0.0;
      sh_ntimes = 0 }
  in
  let ring =
    Array.init (shards * vnodes_per_shard) (fun k ->
        let i = k / vnodes_per_shard and v = k mod vnodes_per_shard in
        (ring_hash (Printf.sprintf "shard:%d:vnode:%d" i v), i))
  in
  Array.sort compare ring;
  { shards = Array.init shards shard;
    ring;
    workers;
    queue_capacity;
    registry_capacity;
    min_uptime;
    max_consecutive;
    backoff_base;
    backoff_cap;
    resolve;
    params;
    sink = Instrument.create ();
    mu = Mutex.create ();
    cond = Condition.create ();
    jobs = Hashtbl.create 64;
    next_job = 0;
    stopping = false;
    fork_hooks = [];
    monitor = None;
    readers = [] }

let on_child_fork t f = with_mu t (fun () -> t.fork_hooks <- f :: t.fork_hooks)

let start t =
  with_mu t (fun () ->
      Array.iter
        (fun s -> if s.sh_state = Starting then ignore (spawn_locked t s))
        t.shards);
  t.monitor <- Some (Thread.create (fun () -> monitor_loop t) ())

let sink t = t.sink

let pids t =
  with_mu t (fun () ->
      Array.to_list t.shards
      |> List.filter_map (fun s ->
             match s.sh_state with Running p -> Some p.pr_pid | _ -> None))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let fresh_job_id_locked t =
  let rec go () =
    t.next_job <- t.next_job + 1;
    let id = Printf.sprintf "job-%d" t.next_job in
    if Hashtbl.mem t.jobs id then go () else id
  in
  go ()

let duplicate_id ~op id =
  Protocol.error ~job:id ~op ~kind:"validation"
    ~detail:(Printf.sprintf "job id %S already exists" id)
    ()

let no_live_shard ~op ?job () =
  Protocol.error ?job ~op ~kind:"busy" ~detail:"no live shard" ()

(* Deadline-aware shedding: reject at dispatch when the job's whole
   deadline cannot even cover the target shard's observed p95 service
   time — the job would all but surely expire after consuming a shard
   slot. Needs >= 8 observations before it trusts the window. *)
let shed_check_locked t shard ~op ~job deadline =
  match deadline with
  | None -> None
  | Some d -> (
      match observed_p95 shard with
      | Some p95 when d < p95 ->
          shard.sh_shed <- shard.sh_shed + 1;
          Instrument.incr t.sink serve_stage "jobs_shed" 1;
          Some
            (Protocol.error ~job ~op
               ~kind:(Fault.kind_name Fault.Shed)
               ~detail:
                 (Printf.sprintf
                    "deadline %.3fs below shard %d's observed p95 service \
                     time %.3fs"
                    d shard.sh_index p95)
               ())
      | _ -> None)

(* Forward a registered job's canonical line and relay the shard's ack.
   If the shard dies before acking, the monitor has either retried the
   job (answer: accepted) or set its terminal (answer: that failure). *)
let dispatch t shard proc job ~op =
  let reply =
    match send_sync t shard proc job.j_line with
    | None -> None
    | Some sw -> await_sync t sw
  in
  with_mu t (fun () ->
      match reply with
      | Some r ->
          if not (envelope_ok r) then Hashtbl.remove t.jobs job.j_id;
          r
      | None -> (
          match job.j_terminal with
          | Some term when not (envelope_ok term) ->
              Hashtbl.remove t.jobs job.j_id;
              term
          | _ ->
              (* retried onto a survivor: accepted after all *)
              Protocol.ok ~job:job.j_id ~op
                [ ("state", Protocol.jstr "queued");
                  ("retried", Protocol.jbool true) ]))

let handle_submit t (s : Protocol.submit) =
  let op = "submit" in
  match t.resolve ~case:s.Protocol.sub_case ~seed:s.Protocol.sub_seed with
  | None ->
      Protocol.error ?job:s.Protocol.sub_job ~op ~kind:"validation"
        ~detail:(Printf.sprintf "unknown case %S" s.Protocol.sub_case)
        ()
  | Some design ->
      let design =
        match s.Protocol.sub_mutate with
        | None -> design
        | Some m ->
            Mutate.design ~ratio:m.Protocol.mut_ratio ~seed:m.Protocol.mut_seed
              design
      in
      let fp = Registry.fingerprint design in
      let outcome =
        with_mu t (fun () ->
            match s.Protocol.sub_job with
            | Some id when Hashtbl.mem t.jobs id -> `Reply (duplicate_id ~op id)
            | chosen -> (
                match route_locked t fp with
                | None -> `Reply (no_live_shard ~op ?job:chosen ())
                | Some (shard, proc) -> (
                    let id =
                      match chosen with
                      | Some id -> id
                      | None -> fresh_job_id_locked t
                    in
                    match
                      shed_check_locked t shard ~op ~job:id
                        s.Protocol.sub_deadline
                    with
                    | Some shed -> `Reply shed
                    | None ->
                        let job =
                          { j_id = id;
                            j_line = Protocol.submit_to_json ~job:id s;
                            j_fp = fp;
                            j_shard = shard.sh_index;
                            j_retried = false;
                            j_started = Timer.now ();
                            j_terminal = None }
                        in
                        Hashtbl.replace t.jobs id job;
                        `Dispatch (shard, proc, job))))
      in
      (match outcome with
      | `Reply r -> r
      | `Dispatch (shard, proc, job) -> dispatch t shard proc job ~op)

let handle_resubmit t (r : Protocol.resubmit) =
  let op = "resubmit" in
  let outcome =
    with_mu t (fun () ->
        match Hashtbl.find_opt t.jobs r.Protocol.re_parent with
        | None ->
            `Reply
              (Protocol.error ?job:r.Protocol.re_job ~op ~kind:"unknown_job"
                 ~detail:
                   (Printf.sprintf "no such parent job %S" r.Protocol.re_parent)
                 ())
        | Some parent -> (
            match r.Protocol.re_job with
            | Some id when Hashtbl.mem t.jobs id -> `Reply (duplicate_id ~op id)
            | chosen -> (
                (* Affinity: the parent's shard holds the prepared
                   artifacts the ECO path warm-starts from. *)
                let home = t.shards.(parent.j_shard) in
                match home.sh_state with
                | Running proc -> (
                    let id =
                      match chosen with
                      | Some id -> id
                      | None -> fresh_job_id_locked t
                    in
                    match
                      shed_check_locked t home ~op ~job:id
                        r.Protocol.re_deadline
                    with
                    | Some shed -> `Reply shed
                    | None ->
                        let job =
                          { j_id = id;
                            j_line = Protocol.resubmit_to_json ~job:id r;
                            j_fp = parent.j_fp;
                            j_shard = home.sh_index;
                            j_retried = false;
                            j_started = Timer.now ();
                            j_terminal = None }
                        in
                        Hashtbl.replace t.jobs id job;
                        `Dispatch (home, proc, job))
                | Starting | Broken ->
                    `Reply
                      (Protocol.error ?job:chosen ~op
                         ~kind:(Fault.kind_name Fault.Shard_crash)
                         ~detail:
                           (Printf.sprintf
                              "parent job %S's shard %d is down; its \
                               artifacts are lost"
                              r.Protocol.re_parent parent.j_shard)
                         ()))))
  in
  match outcome with
  | `Reply r -> r
  | `Dispatch (shard, proc, job) -> dispatch t shard proc job ~op

let unknown_job ~op id =
  Protocol.error ~job:id ~op ~kind:"unknown_job"
    ~detail:(Printf.sprintf "no such job %S" id)
    ()

(* Status/cancel of a finished job is answered from the parent's own
   terminal record — a restarted shard has a fresh scheduler that no
   longer knows jobs from before its crash. *)
let terminal_state env =
  if envelope_ok env then "completed"
  else
    match Protocol.Json.parse env with
    | Ok j -> (
        match Protocol.Json.member "error" j with
        | Some e -> (
            match Protocol.Json.member "kind" e with
            | Some (Protocol.Json.Str "cancelled") -> "cancelled"
            | Some (Protocol.Json.Str "deadline") -> "expired"
            | _ -> "failed")
        | None -> "failed")
    | Error _ -> "failed"

let forward_simple t ~op id =
  let target =
    with_mu t (fun () ->
        match Hashtbl.find_opt t.jobs id with
        | None -> `Unknown
        | Some j -> (
            match j.j_terminal with
            | Some env -> `Terminal env
            | None -> (
                let shard = t.shards.(j.j_shard) in
                match shard.sh_state with
                | Running proc -> `Forward (shard, proc)
                | Starting | Broken -> `Down)))
  in
  match target with
  | `Unknown -> unknown_job ~op id
  | `Terminal env -> (
      let state = terminal_state env in
      match op with
      | "status" ->
          Protocol.ok ~job:id ~op [ ("state", Protocol.jstr state) ]
      | _ ->
          Protocol.error ~job:id ~op ~kind:"validation"
            ~detail:(Printf.sprintf "job is already %s" state)
            ())
  | `Down ->
      Protocol.error ~job:id ~op ~kind:"busy"
        ~detail:"job's shard is restarting; try again" ()
  | `Forward (shard, proc) -> (
      let line =
        Printf.sprintf {|{"op":%s,"job":%s}|} (Protocol.jstr op)
          (Protocol.jstr id)
      in
      match send_sync t shard proc line with
      | None ->
          Protocol.error ~job:id ~op ~kind:"busy"
            ~detail:"job's shard is restarting; try again" ()
      | Some sw -> (
          match await_sync t sw with
          | Some reply -> reply
          | None ->
              Protocol.error ~job:id ~op
                ~kind:(Fault.kind_name Fault.Shard_crash)
                ~detail:"shard died while answering" ()))

let handle_result t id =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> unknown_job ~op:"result" id
      | Some j ->
          while j.j_terminal = None do
            Condition.wait t.cond t.mu
          done;
          Option.get j.j_terminal)

(* Aggregated stats: the sum of every live shard's service counters,
   plus the supervisor's own fault-tolerance counters (global and per
   shard). Shards are queried synchronously one by one — every shard op
   is non-blocking, so this is bounded by pipe round-trips. *)
let handle_stats t =
  let procs =
    with_mu t (fun () ->
        Array.to_list t.shards
        |> List.filter_map (fun s ->
               match s.sh_state with
               | Running p -> Some (s, p)
               | _ -> None))
  in
  let int_field j k =
    match Protocol.Json.member k j with
    | Some (Protocol.Json.Num n) -> int_of_float n
    | _ -> 0
  in
  let totals = Hashtbl.create 8 in
  let add k v = Hashtbl.replace totals k (v + Option.value ~default:0 (Hashtbl.find_opt totals k)) in
  let reg_totals = Hashtbl.create 4 in
  let add_reg k v = Hashtbl.replace reg_totals k (v + Option.value ~default:0 (Hashtbl.find_opt reg_totals k)) in
  List.iter
    (fun (shard, proc) ->
      match send_sync t shard proc {|{"op":"stats"}|} with
      | None -> ()
      | Some sw -> (
          match await_sync t sw with
          | None -> ()
          | Some line -> (
              match Protocol.Json.parse line with
              | Error _ -> ()
              | Ok j ->
                  List.iter
                    (fun k -> add k (int_field j k))
                    [ "submitted"; "completed"; "failed"; "rejected";
                      "cancelled"; "expired"; "queue_depth"; "workers" ];
                  (match Protocol.Json.member "registry" j with
                  | Some reg ->
                      List.iter
                        (fun k -> add_reg k (int_field reg k))
                        [ "entries"; "hits"; "misses"; "evictions" ]
                  | None -> ()))))
    procs;
  let total k = Option.value ~default:0 (Hashtbl.find_opt totals k) in
  let reg k = Option.value ~default:0 (Hashtbl.find_opt reg_totals k) in
  let shard_json s =
    let state =
      match s.sh_state with
      | Running _ -> "running"
      | Starting -> "restarting"
      | Broken -> "broken"
    in
    Printf.sprintf
      "{\"index\":%d,\"state\":%s,\"restarts\":%d,\"retries\":%d,\"shed\":%d,\
       \"crash_exits\":%d,\"crash_signals\":%d,\"samples\":%d,\"p95_seconds\":%s}"
      s.sh_index (Protocol.jstr state) s.sh_restarts s.sh_retries s.sh_shed
      s.sh_crash_exits s.sh_crash_signals
      (min s.sh_ntimes window_size)
      (match observed_p95 s with
      | Some p -> Protocol.jfloat p
      | None -> "null")
  in
  let shards_json, counters =
    with_mu t (fun () ->
        ( "["
          ^ String.concat ","
              (Array.to_list (Array.map shard_json t.shards))
          ^ "]",
          List.map
            (fun name -> (name, Instrument.counter t.sink serve_stage name))
            [ "shard_restarts"; "shard_retries"; "jobs_shed"; "crash_exits";
              "crash_signals" ] ))
  in
  let counter name = List.assoc name counters in
  Protocol.ok ~op:"stats"
    ([ ("submitted", Protocol.jint (total "submitted"));
       ("completed", Protocol.jint (total "completed"));
       ("failed", Protocol.jint (total "failed"));
       ("rejected", Protocol.jint (total "rejected"));
       ("cancelled", Protocol.jint (total "cancelled"));
       ("expired", Protocol.jint (total "expired"));
       ("queue_depth", Protocol.jint (total "queue_depth"));
       ("workers", Protocol.jint (total "workers"));
       ( "registry",
         Printf.sprintf
           "{\"entries\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d,\
            \"capacity\":%s}"
           (reg "entries") (reg "hits") (reg "misses") (reg "evictions")
           (match t.registry_capacity with
           | None -> "null"
           | Some c -> string_of_int c) );
       ( "supervisor",
         Printf.sprintf
           "{\"shards\":%d,\"restarts\":%d,\"retries\":%d,\"shed\":%d,\
            \"crash_exits\":%d,\"crash_signals\":%d}"
           (Array.length t.shards)
           (counter "shard_restarts")
           (counter "shard_retries")
           (counter "jobs_shed")
           (counter "crash_exits")
           (counter "crash_signals") );
       ("shards", shards_json) ])

let handle_line t line =
  if String.trim line = "" then None
  else if String.length line > Service.max_line_bytes then
    Some
      (Protocol.error ~kind:"parse_error" ~offset:Service.max_line_bytes
         ~detail:
           (Printf.sprintf "request line exceeds %d bytes"
              Service.max_line_bytes)
         ())
  else
    Some
      (try
         match Protocol.parse_request line with
         | Error e ->
             Protocol.error ?op:e.Protocol.err_op
               ?offset:e.Protocol.err_offset ~kind:e.Protocol.err_kind
               ~detail:e.Protocol.err_detail ()
         | Ok (Protocol.Submit s) -> handle_submit t s
         | Ok (Protocol.Resubmit r) -> handle_resubmit t r
         | Ok (Protocol.Status id) -> forward_simple t ~op:"status" id
         | Ok (Protocol.Result id) -> handle_result t id
         | Ok (Protocol.Cancel id) -> forward_simple t ~op:"cancel" id
         | Ok Protocol.Stats -> handle_stats t
       with exn ->
         Protocol.error ~kind:"fault" ~detail:(Printexc.to_string exn) ())

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

let shutdown t =
  let procs =
    with_mu t (fun () ->
        t.stopping <- true;
        Array.to_list t.shards
        |> List.filter_map (fun s ->
               match s.sh_state with
               | Running p -> Some p
               | _ -> None))
  in
  (* EOF on the request pipes: each shard drains its accepted jobs,
     pushes their terminal envelopes and exits 0. *)
  List.iter (fun p -> close_quiet p.pr_wfd) procs;
  (match t.monitor with
  | Some th -> Thread.join th
  | None ->
      List.iter
        (fun p -> try ignore (Unix.waitpid [] p.pr_pid) with Unix.Unix_error _ -> ())
        procs);
  (* Readers see EOF once their shard exits; join them so no thread is
     still inside supervisor state when the process tears down. *)
  List.iter Thread.join t.readers;
  (* Unblock any residual result waiters (jobs whose terminal never
     arrived — e.g. a shard that died during the drain). *)
  with_mu t (fun () ->
      Hashtbl.iter
        (fun _ j ->
          if j.j_terminal = None then
            j.j_terminal <-
              Some (crash_terminal ~job:j.j_id "service shut down"))
        t.jobs;
      Condition.broadcast t.cond)
