(** The batch synthesis service: {!Protocol} front-end over a
    {!Scheduler}.

    A service reads newline-delimited JSON requests, translates them
    into scheduler operations and renders response envelopes. It is
    transport-free: {!handle_line} maps one request line to one
    response line, and {!serve} merely loops that over a channel pair —
    which is what [operon serve] runs on stdin/stdout, keeping the
    whole stack exercisable in CI without sockets.

    Designs are named by {e case}: the [resolve] callback maps a
    submitted case name (plus optional seed) to a design, so the
    service layer stays independent of the benchmark generator.

    Result JSON is rendered with [Export.flow_to_json ~timings:false] —
    a pure function of (design, configuration) — so a served result is
    byte-identical to a single-shot [Flow.synthesize] of the same job,
    whatever worker count executed it and whether or not the registry
    reused a prepared design. *)

open Operon

type t

val create :
  ?workers:int ->
  ?capacity:int ->
  ?registry_capacity:int ->
  resolve:(case:string -> seed:int option -> Signal.design option) ->
  params:Operon_optical.Params.t ->
  unit ->
  t
(** A service over a fresh {!Scheduler.create}[ ~workers ~capacity
    ~registry_capacity]. Workers are not started yet — tests drive
    {!handle_line} against a stopped pool to exercise queueing
    deterministically; {!serve} starts them itself. *)

val scheduler : t -> Scheduler.t

val start : t -> unit

val max_line_bytes : int
(** Longest request line accepted (1 MiB). Longer lines are answered
    with a ["parse_error"] envelope instead of being parsed; socket
    transports use the same cap to bound buffering before a newline. *)

val handle_line : t -> string -> string option
(** One request line to one response line. [None] for blank lines.
    Never raises: every failure becomes an error envelope — malformed
    JSON a ["parse_error"] with its byte offset, an over-long line the
    same without parsing, an unexpected exception a ["fault"].
    Blocking semantics follow the protocol — [result] waits for the
    job's terminal state, everything else answers immediately. *)

val serve : t -> in_channel -> out_channel -> unit
(** Start the workers, answer requests until end-of-input, then drain
    and shut down. Responses are flushed per line. *)

val shutdown : t -> unit
(** Graceful drain: accepted jobs finish, workers are joined. *)
