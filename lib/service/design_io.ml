open Operon
open Operon_geom

(* Reading is structural, not positional: only the "design" block's
   shape matters, so any export with a schema-4 design block loads,
   whatever else the document carries. *)

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let member ctx key json =
  match Protocol.Json.member key json with
  | Some v -> Ok v
  | None -> fail "%s: missing field %S" ctx key

let number ctx = function
  | Protocol.Json.Num v -> Ok v
  | _ -> fail "%s: expected a number" ctx

let string_ ctx = function
  | Protocol.Json.Str s -> Ok s
  | _ -> fail "%s: expected a string" ctx

let list_ ctx = function
  | Protocol.Json.Arr items -> Ok items
  | _ -> fail "%s: expected an array" ctx

let point ctx = function
  | Protocol.Json.Arr [ Protocol.Json.Num x; Protocol.Json.Num y ] ->
      Ok { Point.x; Point.y }
  | _ -> fail "%s: expected a [x,y] pair" ctx

let map_result f items =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* v = f item in
        go (v :: acc) rest
  in
  go [] items

let bit_of_json ctx json =
  let* source = member ctx "source" json in
  let* source = point (ctx ^ ".source") source in
  let* sinks = member ctx "sinks" json in
  let* sinks = list_ (ctx ^ ".sinks") sinks in
  let* sinks = map_result (point (ctx ^ ".sinks")) sinks in
  if sinks = [] then fail "%s: a bit needs at least one sink" ctx
  else Ok (Signal.bit ~source ~sinks:(Array.of_list sinks))

let group_of_json i json =
  let ctx = Printf.sprintf "design.groups[%d]" i in
  let* name = member ctx "name" json in
  let* name = string_ (ctx ^ ".name") name in
  let* bits = member ctx "bits" json in
  let* bits = list_ (ctx ^ ".bits") bits in
  let* bits = map_result (bit_of_json (ctx ^ ".bits")) bits in
  if bits = [] then fail "%s: a group needs at least one bit" ctx
  else Ok (Signal.group ~name ~bits:(Array.of_list bits))

let design_of_export json =
  let* design = member "export" "design" json in
  let* die = member "design" "die" design in
  let* xmin = Result.bind (member "design.die" "xmin" die) (number "xmin") in
  let* ymin = Result.bind (member "design.die" "ymin" die) (number "ymin") in
  let* xmax = Result.bind (member "design.die" "xmax" die) (number "xmax") in
  let* ymax = Result.bind (member "design.die" "ymax" die) (number "ymax") in
  let* groups = member "design" "groups" design in
  let* groups =
    match groups with
    | Protocol.Json.Arr items ->
        let* gs = map_result (fun (i, g) -> group_of_json i g)
            (List.mapi (fun i g -> (i, g)) items)
        in
        if gs = [] then fail "design.groups: must not be empty" else Ok gs
    | Protocol.Json.Num _ ->
        fail
          "design.groups is a count, not an array — this export predates \
           schema 4 and cannot seed an ECO run"
    | _ -> fail "design.groups: expected an array"
  in
  match Rect.make ~xmin ~ymin ~xmax ~ymax with
  | exception Invalid_argument m -> fail "design.die: %s" m
  | die -> (
      match Signal.design ~die ~groups:(Array.of_list groups) with
      | exception Invalid_argument m -> fail "design: %s" m
      | d -> Ok d)

let load_export path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> (
      match Protocol.Json.parse text with
      | Error (_, m) -> Error (Printf.sprintf "%s: %s" path m)
      | Ok json -> (
          match design_of_export json with
          | Error m -> Error (Printf.sprintf "%s: %s" path m)
          | Ok d -> Ok d))
