(** Reading a design back out of an {!Operon.Export} document.

    Schema 4 exports carry the full design — die rectangle plus every
    group's exact pin coordinates ([%.17g], bit-exact round-trip) — so
    a result file doubles as an ECO baseline: [operon run --eco-from
    old-export.json] re-prepares the current design incrementally
    against the design recorded in the export. This module is that
    reader; it is the inverse of the export writer's [design] block and
    ignores every other field of the document. *)

open Operon

val design_of_export : Protocol.Json.t -> (Signal.design, string) result
(** Extract the [design] block from a parsed export document. Exports
    older than schema 4 (where [design.groups] was a count, not an
    array) are rejected with an explanatory error. *)

val load_export : string -> (Signal.design, string) result
(** Read and parse the file at [path], then {!design_of_export}. I/O
    and parse failures come back as [Error] — never an exception. *)
