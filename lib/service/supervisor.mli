(** Fault-isolated multi-process serving: a parent that forks N shard
    worker processes and consistent-hashes design content-hashes across
    them.

    Each shard is a forked child running a full in-process {!Service}
    (scheduler, Domain worker pool, registry) behind a pipe pair; a
    crash — segfault, OOM kill, uncaught exception — loses that shard
    only. The parent:

    - routes [submit] by the design's {!Registry.fingerprint} on a
      consistent hash ring (virtual nodes), so repeated submissions of
      one design land on the shard that already holds it prepared, at
      any shard count; [resubmit] follows its parent job's shard (the
      ECO artifacts live there);
    - detects shard death via [waitpid], classifies the crash (exit vs.
      signal), restarts with exponential backoff and trips a circuit
      breaker after [max_consecutive] crash-loop deaths (uptime below
      [min_uptime]);
    - re-forwards a dead shard's in-flight jobs to a survivor {e at most
      once} per job — idempotent because synthesis is a pure function
      of the canonical request line, so a retried job's result is
      byte-identical to a single-shot run;
    - sheds at dispatch: a job whose whole deadline is below the target
      shard's observed p95 service time (last 64 completions, at least
      8 observed) is rejected with a ["shed"] envelope instead of
      consuming a shard slot;
    - accounts per-shard restarts, retries, sheds and crash kinds in an
      {!Operon_engine.Instrument} sink (stage [Serve]) and in the
      [stats] envelope ([supervisor] and [shards] fields).

    Concurrency rule: the parent runs {e systhreads only}. The OCaml 5
    runtime refuses [Unix.fork] once any domain has ever been created
    in a process, and the parent must fork restarts for as long as it
    lives; the forked children create their own Domain pools, which is
    permitted. *)

open Operon

type t

val create :
  ?shards:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?registry_capacity:int ->
  ?min_uptime:float ->
  ?max_consecutive:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  resolve:(case:string -> seed:int option -> Signal.design option) ->
  params:Operon_optical.Params.t ->
  unit ->
  t
(** Defaults: 2 shards, 1 worker domain per shard, unbounded queue and
    registry per shard, circuit breaker after 5 consecutive crashes
    with under 1 s uptime, restart backoff 0.25 s doubling up to 8 s.
    [resolve] and [params] are inherited by every shard's service. *)

val on_child_fork : t -> (unit -> unit) -> unit
(** Register a hook run inside each freshly forked shard child, before
    its service starts — used to close inherited fds the child must not
    hold ({!Transport.close_in_child}). *)

val start : t -> unit
(** Fork the shards and start the [waitpid] monitor. *)

val handle_line : t -> string -> string option
(** One request line to one response line — the same contract as
    {!Service.handle_line}, same envelopes byte-for-byte for jobs that
    run undisturbed. [None] for blank lines; never raises. [result]
    blocks until the job's terminal envelope arrives from its shard (or
    the crash-retry path resolves it). *)

val sink : t -> Operon_engine.Instrument.sink
(** The supervisor's counters under stage [Serve]: [shard_restarts],
    [shard_retries], [jobs_shed], [crash_exits], [crash_signals]. *)

val pids : t -> int list
(** The pids of the currently {e running} shard children, in shard
    order — restarting and broken shards are absent. For operational
    introspection and crash-injection tests. *)

val shutdown : t -> unit
(** Close every shard's request pipe (EOF = graceful drain: accepted
    jobs finish and their terminal envelopes are flushed), reap the
    children, join the monitor and fail any still-parked [result]
    waiters with a ["shard_crash"] envelope. *)
