(** Versioned newline-delimited JSON protocol of the batch synthesis
    service.

    One request per line on the way in, one response per line on the way
    out. Every response is an {e envelope} stamped with the protocol's
    [schema_version] and an [ok] flag; failures carry an [error] object
    with a machine-readable [kind] and a human-readable [detail] —
    exactly the shape {!Operon.Export} uses for per-fault records, so a
    client parses degradations and protocol errors with one code path.

    The six operations:

    {v
      {"op":"submit","case":"tiny", ...}           enqueue a synthesis job
      {"op":"resubmit","parent_job":"job-1", ...}  ECO re-run against a parent
      {"op":"status","job":"job-1"}                non-blocking state probe
      {"op":"result","job":"job-1"}                block until done, return JSON
      {"op":"cancel","job":"job-1"}                cancel a still-queued job
      {"op":"stats"}                               service counters
    v}

    The protocol is transport-free (the CLI speaks it over stdin/stdout)
    and its parser is hand-rolled like the {!Operon.Export} writer — no
    external JSON dependency. *)

val schema_version : int
(** Version of the request/response layout, echoed in every response.
    History: 1 = initial protocol (submit/status/result/cancel/stats);
    2 = [resubmit] op, [mutate] design perturbation on submit/resubmit,
    registry eviction/capacity stats;
    3 = socket/multi-shard serving: ["parse_error"] kind (with byte
    [offset]) replaces ["parse"], new ["shed"] and ["shard_crash"]
    error kinds, per-shard restart/retry/shed counters in [stats];
    4 = [thermal] scenario spec on submit — the server synthesizes the
    temperature map from the design's die and runs the Pareto sweep,
    so the job's [result] carries the schema-6 export [thermal]
    block. *)

(** {2 Minimal JSON values} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, int * string) result
  (** Parse one complete JSON document; trailing garbage is an error.
      [Error (offset, msg)] carries the byte offset the parse failed
      at, for the ["parse_error"] envelope. *)

  val member : string -> t -> t option
  (** Field lookup on an [Obj]; [None] otherwise. *)
end

(** {2 Requests} *)

type mutate_spec = {
  mut_ratio : float;  (** fraction of signal groups to displace, (0, 1] *)
  mut_seed : int;  (** PRNG seed of the perturbation (default 1) *)
}
(** A deterministic design perturbation ({!Operon.Mutate.design}) applied
    server-side before synthesis — the ECO test loop's way of deriving a
    revised design from a registered case without shipping coordinates
    over the protocol. *)

type thermal_spec = {
  th_hotspots : int;  (** Gaussian hotspot count (default 6) *)
  th_amplitude : float;  (** peak rise scale, degC (default 25) *)
  th_decay : float;
      (** hotspot sigma as a fraction of the shorter die side
          (default 0.15) *)
  th_grid : int;  (** map resolution per axis (default 24) *)
  th_ambient : float;  (** ambient temperature, degC (default 45) *)
  th_seed : int;  (** PRNG seed of the map generator (default 1) *)
  th_weights : float list;
      (** sweep ladder; [[]] = {!Operon.Flow.Config.default_thermal_weights} *)
}
(** A thermal-reliability scenario, shipped as generator parameters: the
    server re-synthesizes the temperature field from the design's die
    ({!Operon_thermal.Thermal_map.synthetic}), so a few scalars reproduce
    the exact map a CLI-side [operon thermal-map] run with the same knobs
    writes, and the sweep result is byte-comparable between the two. *)

type submit = {
  sub_job : string option;  (** client-chosen job id ([None] = server picks) *)
  sub_case : string;  (** design case name (registry key source) *)
  sub_seed : int option;  (** case generation seed override *)
  sub_mode : Operon_engine.Runctx.mode;
  sub_budget : float;  (** selection wall-clock budget, seconds *)
  sub_priority : int;  (** higher runs first; FIFO within a priority *)
  sub_deadline : float option;
      (** seconds from submission the job must finish within *)
  sub_cache : bool;  (** build the crossing-matrix cache *)
  sub_mutate : mutate_spec option;  (** perturb the design before synthesis *)
  sub_thermal : thermal_spec option;
      (** run a thermal Pareto sweep instead of a plain selection *)
}

type resubmit = {
  re_parent : string;  (** parent job id; its artifacts seed the ECO path *)
  re_job : string option;
  re_case : string option;  (** [None] = inherit the parent's design *)
  re_seed : int option;
  re_mode : Operon_engine.Runctx.mode;
  re_budget : float;
  re_priority : int;
  re_deadline : float option;
  re_cache : bool;
  re_mutate : mutate_spec option;
  re_warm : bool;
      (** warm-start selection from the parent's choice vector
          (default [false]; never changes the result, only its speed) *)
}

type request =
  | Submit of submit
  | Resubmit of resubmit
  | Status of string
  | Result of string
  | Cancel of string
  | Stats

type error = {
  err_op : string option;  (** the request's [op], when it parsed that far *)
  err_kind : string;  (** ["parse_error"] or ["validation"] *)
  err_detail : string;
  err_offset : int option;
      (** byte offset into the request line, for ["parse_error"] *)
}

val parse_request : string -> (request, error) result
(** Parse and validate one request line. Unknown fields are ignored;
    wrong types, unknown [op]s and out-of-range values are
    ["validation"] errors, malformed JSON is a ["parse_error"] with the
    failing byte offset. *)

(** {2 Response envelopes}

    Field values are raw JSON fragments — pass them through {!jstr} /
    {!jint} / {!jfloat} / {!jbool}, or embed a pre-rendered document
    (e.g. [Export.flow_to_json]) verbatim. *)

val ok : ?job:string -> op:string -> (string * string) list -> string
(** [{"schema_version":V,"ok":true,"op":...,"job":...,<fields>}] *)

val error :
  ?job:string ->
  ?op:string ->
  ?offset:int ->
  kind:string ->
  detail:string ->
  unit ->
  string
(** [{"schema_version":V,"ok":false,...,"error":{"kind":...,"detail":...}}].
    Kinds used by the service: ["parse_error"] (with ["offset"]),
    ["validation"], ["busy"], ["unknown_job"], ["cancelled"],
    ["deadline"], ["fault"], ["shed"], ["shard_crash"]. *)

(** {2 Canonical request writers}

    The shard supervisor re-renders a parsed request before forwarding it
    to a worker shard: the shard must see the job id the parent assigned,
    and a retry after a shard crash must replay identical submission
    semantics regardless of the client's original quoting. *)

val submit_to_json : job:string -> submit -> string
val resubmit_to_json : job:string -> resubmit -> string

val jstr : string -> string
val jint : int -> string
val jfloat : float -> string
val jbool : bool -> string
