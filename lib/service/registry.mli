(** In-memory store of prepared designs, keyed by content hash.

    The expensive front half of the flow — signal processing, BI1S
    baselines, the co-design DP and the crossing-matrix build
    ([Flow.prepare_with]) — depends only on the design's content and the
    preparation-relevant slice of the configuration (seed, candidate
    cap, cache flag, optical parameters). The registry computes that key
    once per submission and hands repeated requests the already-prepared
    [(hnets, ctx)], so a fleet of jobs against the same design pays for
    candidate generation once.

    Thread model: the registry itself is guarded by one mutex (cheap
    lookups only); each entry carries its own lock, held while the entry
    is being prepared and while a selection runs on its shared
    {!Operon.Selection.ctx}. The context's crossing matrix keeps plain
    mutable hit/miss counters, so selections on the {e same} entry are
    serialized by that lock; jobs on different designs run fully in
    parallel. Selection results are bit-identical to a fresh
    single-shot run — the cache never changes what is computed. *)

open Operon

type t

type entry
(** One prepared design. *)

type stats = {
  entries : int;  (** designs currently held *)
  hits : int;  (** submissions that reused a prepared design *)
  misses : int;  (** submissions that had to prepare *)
}

val create : unit -> t

val fingerprint : Signal.design -> string
(** Content hash (hex digest) of a design: die rectangle plus every
    group's name and exact pin coordinates. Equal designs — however they
    were produced — share a fingerprint. *)

val key : Flow.Config.t -> Signal.design -> string
(** Registry key: the design {!fingerprint} combined with the
    preparation-relevant configuration (seed, candidate cap, cache flag,
    optical parameters, processing overrides). Selection-only settings
    (mode, budget) deliberately do not participate, so an ILP and an LR
    job against one design share the prepared entry. *)

val find_or_prepare :
  ?sink:Operon_engine.Instrument.sink ->
  t ->
  config:Flow.Config.t ->
  Signal.design ->
  entry * bool
(** Look the design up, preparing it on first sight (the preparation
    runs outside the registry mutex, under the entry's own lock, so
    other designs are not blocked). Returns [(entry, reused)]; [reused]
    is [false] for the submission that performed the preparation.
    [sink] receives the preparation stages' instrumentation when this
    call prepares. *)

val with_prepared :
  entry -> (Hypernet.t array * Selection.ctx -> 'a) -> 'a
(** Run [f] on the entry's prepared data while holding the entry lock —
    the required discipline for anything that queries the shared
    crossing matrix (selection, signoff). *)

val stats : t -> stats
