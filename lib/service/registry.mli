(** In-memory store of prepared designs, keyed by content hash.

    The expensive front half of the flow — signal processing, BI1S
    baselines, the co-design DP and the crossing-matrix build
    ([Flow.prepare]) — depends only on the design's content and the
    preparation-relevant slice of the configuration (seed, candidate
    cap, cache flag, optical parameters). The registry computes that key
    once per submission and hands repeated requests the already-prepared
    {!Operon.Flow.prepared}, so a fleet of jobs against the same design
    pays for candidate generation once. ECO resubmissions go through
    {!find_or_prepare_eco}, which re-prepares a revised design
    incrementally against a previous entry's artifacts.

    Capacity: by default the registry is unbounded. With
    [create ~capacity], inserting past the cap evicts the
    least-recently-used entries (the just-inserted entry is never the
    victim). An entry whose lock is held — mid-preparation, or running
    a selection — is never evicted either: evicting it would let a
    concurrent submit of the same content hash re-create and re-prepare
    a design already being prepared. When every candidate is locked the
    table overflows temporarily rather than drop one. Eviction only
    drops the registry's reference — jobs still running on an evicted
    entry keep it alive and are unaffected.

    Thread model: the registry itself is guarded by one mutex (cheap
    lookups only); each entry carries its own lock, held while the entry
    is being prepared and while a selection runs on its shared
    {!Operon.Selection.ctx}. The context's crossing matrix keeps plain
    mutable hit/miss counters, so selections on the {e same} entry are
    serialized by that lock; jobs on different designs run fully in
    parallel. Selection results are bit-identical to a fresh
    single-shot run — the cache never changes what is computed. *)

open Operon

type t

type entry
(** One prepared design. *)

type stats = {
  entries : int;  (** designs currently held *)
  hits : int;  (** submissions that reused a prepared design *)
  misses : int;  (** submissions that had to prepare *)
  evictions : int;  (** entries dropped by the LRU capacity cap *)
  capacity : int option;  (** the cap; [None] = unbounded *)
}

val create : ?capacity:int -> unit -> t
(** [capacity], when given, must be at least 1. *)

val fingerprint : Signal.design -> string
(** Content hash (hex digest) of a design: die rectangle plus every
    group's name and exact pin coordinates. Equal designs — however they
    were produced — share a fingerprint. *)

val key : Flow.Config.t -> Signal.design -> string
(** Registry key: the design {!fingerprint} combined with the
    preparation-relevant configuration (seed, candidate cap, cache flag,
    optical parameters, processing overrides). Selection-only settings
    (mode, budget) deliberately do not participate, so an ILP and an LR
    job against one design share the prepared entry. *)

val find_or_prepare :
  ?sink:Operon_engine.Instrument.sink ->
  t ->
  config:Flow.Config.t ->
  Signal.design ->
  entry * bool
(** Look the design up, preparing it on first sight (the preparation
    runs outside the registry mutex, under the entry's own lock, so
    other designs are not blocked). Returns [(entry, reused)]; [reused]
    is [false] for the submission that performed the preparation.
    [sink] receives the preparation stages' instrumentation when this
    call prepares. *)

val find_or_prepare_eco :
  ?sink:Operon_engine.Instrument.sink ->
  t ->
  config:Flow.Config.t ->
  prev:Flow.prepared ->
  Signal.design ->
  entry * bool
(** Like {!find_or_prepare}, but a first-sight design is prepared with
    {!Operon.Flow.prepare_eco} against [prev] — per-net incremental,
    bit-identical to the cold preparation. A revised design already in
    the registry is reused as-is ([reused = true]) without consulting
    [prev]. *)

val find_prepared : t -> config:Flow.Config.t -> Signal.design -> Flow.prepared option
(** Peek: the prepared artifacts for this (config, design) key if the
    registry holds them, bumping the entry's recency but not the
    hit/miss counters. This is how a resubmission locates its parent's
    artifacts. *)

val with_prepared : entry -> (Flow.prepared -> 'a) -> 'a
(** Run [f] on the entry's prepared data while holding the entry lock —
    the required discipline for anything that queries the shared
    crossing matrix (selection, signoff). *)

val stats : t -> stats
