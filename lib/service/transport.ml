(* Socket front-end of the NDJSON service: a listener accepts
   connections and runs one line-oriented session per client thread.
   Everything here is systhreads — never Domains — because the shard
   supervisor must be able to [Unix.fork] for as long as it lives, and
   the OCaml runtime refuses to fork once any domain has been created. *)

type listener = {
  l_fd : Unix.file_descr;
  l_name : string;
  l_cleanup : unit -> unit;  (* e.g. unlink a unix-socket path *)
}

type conn = { c_fd : Unix.file_descr; mutable c_open : bool }

type t = {
  listeners : listener list;
  handle : string -> string option;
  read_timeout : float;
  max_line : int;
  mu : Mutex.t;
  mutable conns : conn list;
  mutable accepting : bool;
  mutable accept_threads : Thread.t list;
}

let unix_listener path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  { l_fd = fd;
    l_name = "unix:" ^ path;
    l_cleanup = (fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
  }

let tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  { l_fd = fd;
    l_name = Printf.sprintf "tcp:%d" port;
    l_cleanup = ignore }

let bound_port l =
  match Unix.getsockname l.l_fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | _ -> None

(* EOF/SIGPIPE-safe write of a whole buffer. The caller must have
   SIGPIPE ignored process-wide (the serve entry points do); a peer
   that hung up turns into [false] instead of a signal or an
   exception. *)
let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | 0 -> false
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

exception Line_too_long
exception Timed_out

(* Line reader bounded by [max_line]: a client that streams a megabyte
   with no newline is answered with one parse_error envelope and
   dropped, instead of growing an unbounded buffer. *)
let session t conn =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let read_more () =
    match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise Timed_out
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> false
  in
  let take_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)
    | None ->
        if String.length s > t.max_line then raise Line_too_long else None
  in
  let respond line =
    match t.handle line with
    | None -> true
    | Some reply -> write_all conn.c_fd (reply ^ "\n")
  in
  let rec loop () =
    match take_line () with
    | Some line -> if respond line then loop ()
    | None -> if read_more () then loop ()
  in
  try loop () with
  | Line_too_long ->
      ignore
        (write_all conn.c_fd
           (Protocol.error ~kind:"parse_error" ~offset:t.max_line
              ~detail:
                (Printf.sprintf "request line exceeds %d bytes" t.max_line)
              ()
           ^ "\n"))
  | Timed_out ->
      ignore
        (write_all conn.c_fd
           (Protocol.error ~kind:"timeout"
              ~detail:
                (Printf.sprintf "no request within %gs; closing" t.read_timeout)
              ()
           ^ "\n"))

let close_conn t conn =
  Mutex.lock t.mu;
  let still_open = conn.c_open in
  conn.c_open <- false;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.mu;
  if still_open then try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

let accept_loop t l =
  let rec loop () =
    match Unix.accept ~cloexec:true l.l_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if t.accepting then loop ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        if not t.accepting then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          if t.read_timeout > 0.0 then
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.read_timeout
             with Unix.Unix_error _ -> ());
          let conn = { c_fd = fd; c_open = true } in
          Mutex.lock t.mu;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.mu;
          ignore
            (Thread.create
               (fun () ->
                 Fun.protect
                   ~finally:(fun () -> close_conn t conn)
                   (fun () -> session t conn))
               ());
          loop ()
        end
  in
  loop ()

let start ?(read_timeout = 300.0) ?(max_line = Service.max_line_bytes)
    ~listeners ~handle () =
  let t =
    { listeners;
      handle;
      read_timeout;
      max_line;
      mu = Mutex.create ();
      conns = [];
      accepting = true;
      accept_threads = [] }
  in
  t.accept_threads <-
    List.map (fun l -> Thread.create (fun () -> accept_loop t l) ()) listeners;
  t

let stop t =
  t.accepting <- false;
  List.iter
    (fun l ->
      (try Unix.shutdown l.l_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
      l.l_cleanup ())
    t.listeners;
  Mutex.lock t.mu;
  let conns = t.conns in
  Mutex.unlock t.mu;
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join t.accept_threads

(* Fork hygiene: a forked shard child must not hold the listening
   sockets or any client connection open — a crashed-then-restarted
   sibling could otherwise never rebind, and clients would never see
   EOF. Registered via {!Supervisor.on_child_fork}. Best-effort: a
   connection accepted concurrently with the fork can slip through;
   it is closed when that client disconnects from the parent. *)
let close_in_child t =
  List.iter
    (fun l -> try Unix.close l.l_fd with Unix.Unix_error _ -> ())
    t.listeners;
  List.iter
    (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    t.conns

let names t = List.map (fun l -> l.l_name) t.listeners
