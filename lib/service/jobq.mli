(** Bounded, priority-ordered job queue with backpressure.

    A mutex+condition queue shared between the submission side (the
    protocol loop) and the {!Scheduler} worker domains. Capacity is a
    hard bound: a push against a full queue is {e rejected} immediately
    (the service answers a structured [busy] envelope) instead of
    blocking the protocol loop — under overload the service degrades by
    shedding load, never by stalling.

    Ordering is highest priority first, FIFO within one priority (a
    monotonic sequence number breaks ties), so equal-priority traffic is
    served in submission order.

    Every item is pushed with a {!Token.t}. Cancelling the token makes
    the item invisible: it is purged before capacity checks and never
    returned by {!pop}, so a cancelled job both frees its queue slot and
    never reaches a worker. *)

(** Cancellation token — an atomic flag shared by submitter and workers. *)
module Token : sig
  type t

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool
end

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Live (uncancelled) items currently queued. *)

val push : 'a t -> priority:int -> token:Token.t -> 'a -> [ `Queued | `Rejected | `Closed ]
(** Non-blocking. [`Rejected] when the queue already holds [capacity]
    live items; [`Closed] after {!close}. *)

val pop : 'a t -> 'a option
(** Block until an item is available, skipping cancelled items. [None]
    once the queue is closed {e and} drained — the worker's signal to
    exit. Items still queued at close time are drained first (graceful
    shutdown finishes accepted work). *)

val close : 'a t -> unit
(** Stop accepting pushes and wake every blocked {!pop}. Idempotent. *)

val closed : 'a t -> bool
