(** Socket transport of the NDJSON protocol.

    A transport owns one or more listening sockets (Unix-domain and/or
    loopback TCP) and runs one session thread per accepted client. Each
    session reads newline-delimited requests and answers through the
    [handle] callback — {!Service.handle_line} for an in-process
    service, {!Supervisor.handle_line} for the multi-shard server — so
    the protocol semantics are identical on stdio and on sockets.

    Robustness guarantees:
    - a request line longer than [max_line] is answered with one
      ["parse_error"] envelope and the connection is closed (the stream
      cannot be resynchronized);
    - a connection idle longer than [read_timeout] seconds is answered
      with a ["timeout"] envelope and closed;
    - writes to a hung-up peer are EOF/SIGPIPE-safe: the session ends
      quietly (callers must ignore [SIGPIPE] process-wide, which the
      [operon serve] entry point does).

    Implementation note: sessions are {e systhreads}, never Domains —
    the shard supervisor forks for as long as it lives and the OCaml 5
    runtime refuses [Unix.fork] once any domain has ever been created
    in the process. *)

val write_all : Unix.file_descr -> string -> bool
(** Write a whole buffer, retrying short writes and [EINTR]. [false] if
    the peer hung up ([EPIPE]/[ECONNRESET] or zero-length write) —
    never raises for a dead peer. Requires [SIGPIPE] to be ignored
    process-wide. Shared with {!Supervisor} for its shard pipes. *)

type listener

val unix_listener : string -> listener
(** Bind and listen on a Unix-domain socket path. A stale socket file
    left by a previous run is unlinked first; {!stop} unlinks it
    again. *)

val tcp_listener : int -> listener
(** Bind and listen on loopback TCP ([127.0.0.1]); port 0 lets the
    kernel pick (see {!bound_port}). *)

val bound_port : listener -> int option
(** The actual TCP port, for [tcp_listener 0]. [None] for Unix-domain
    listeners. *)

type t

val start :
  ?read_timeout:float ->
  ?max_line:int ->
  listeners:listener list ->
  handle:(string -> string option) ->
  unit ->
  t
(** Start accepting. [read_timeout] defaults to 300 s (0 disables);
    [max_line] defaults to {!Service.max_line_bytes}. [handle] may
    block (the [result] op does) — each connection has its own
    thread. *)

val stop : t -> unit
(** Close listeners (unlinking Unix-socket paths), shut down live
    connections and join the accept threads. Session threads finish on
    their own once their sockets are shut down. *)

val close_in_child : t -> unit
(** Fork hygiene: close every listener and connection fd inherited by a
    forked shard child. Registered with {!Supervisor.on_child_fork}. *)

val names : t -> string list
(** Human-readable listener names (["unix:/path"], ["tcp:8080"]). *)
