(** Worker pool executing synthesis jobs over OCaml 5 [Domain]s.

    One scheduler owns a {!Registry}, a bounded {!Jobq} and [workers]
    long-lived domains. Each worker loops: pop a job, run the selection
    half of the flow on the registry's prepared context ([jobs = 1]
    inside a worker — parallelism is {e across} jobs, and flow results
    are bit-identical at any worker count), publish the outcome, repeat.
    This inverts the {!Operon_util.Executor} pattern — per-batch domains
    fanning out inside one flow — into persistent domains amortized
    across many flows.

    Deadlines degrade, they don't kill: a job's remaining deadline is
    clamped onto its selection budget, so an overrunning solver walks
    the ILP → LR → greedy → electrical fallback chain (PR 2 machinery)
    inside the worker instead of being aborted; only a deadline that
    expires {e before} the job starts is failed outright, with a
    structured [Serve]-stage budget fault. A worker survives any job
    outcome and immediately serves the next job.

    Shutdown is a graceful drain: the queue closes, already-accepted
    jobs finish, then the domains are joined. *)

open Operon

type outcome =
  | Completed of Flow.t
  | Failed of Operon_engine.Fault.t  (** job raised; worker survived *)
  | Cancelled  (** cancelled while still queued *)
  | Expired of float  (** deadline passed [s] seconds before the job started *)

type state = Queued | Running | Finished of outcome

val state_name : state -> string
(** ["queued"], ["running"], ["completed"], ["failed"], ["cancelled"]
    or ["expired"]. *)

type counters = {
  submitted : int;  (** accepted into the queue *)
  completed : int;
  failed : int;
  rejected : int;  (** refused with [busy] — queue was full *)
  cancelled : int;
  expired : int;
  queue_depth : int;  (** live queued jobs right now *)
  registry : Registry.stats;
}

type t

val create :
  ?workers:int -> ?capacity:int -> ?registry_capacity:int -> unit -> t
(** [workers] domains (default 1; at least 1) over a queue bounded at
    [capacity] (default 64). [registry_capacity] bounds the design
    registry with LRU eviction (default unbounded). Workers are not
    spawned until {!start}. *)

val workers : t -> int

val start : t -> unit
(** Spawn the worker domains. Idempotent; a no-op after {!shutdown}. *)

val submit :
  t ->
  ?job:string ->
  ?priority:int ->
  ?deadline:float ->
  ?parent:string ->
  ?initial:int array ->
  config:Flow.Config.t ->
  Signal.design ->
  (string, [ `Busy of string | `Duplicate of string ]) result
(** Enqueue a job; returns its id ([job] when given, else generated).
    [`Busy] when the queue is full or the scheduler is shutting down —
    the caller maps it to the protocol's [busy] envelope. [`Duplicate]
    when [job] names an existing job. [deadline] is seconds from now.

    ECO resubmission: [parent] names an earlier job whose prepared
    artifacts (if still registered) seed an incremental re-preparation
    of this job's design; [initial] warm-starts the selection solver
    from the parent's choice vector. Both are accelerators only — the
    result is bit-identical with or without them, and a vanished parent
    entry degrades silently to a cold preparation. *)

val state : t -> string -> state option
(** Non-blocking probe; [None] for an unknown id. *)

val wait : t -> string -> outcome option
(** Block until the job reaches a terminal state; [None] for an unknown
    id. Only sensible after {!start} (a queued job cannot finish
    otherwise). *)

val cancel : t -> string -> [ `Cancelled | `Already of state | `Unknown ]
(** Cancel a still-queued job: frees its queue slot and guarantees no
    worker will run it. Running or finished jobs are [`Already]. *)

val result : t -> string -> Flow.t option
(** The flow of a completed job, if it is one. *)

val job_spec : t -> string -> (Flow.Config.t * Signal.design) option
(** The configuration and design a job was submitted with — how a
    resubmission inherits its parent's design. *)

val eco_stats : t -> string -> Flow.eco_stats option
(** The ECO re-preparation statistics of a job, when its preparation
    ran (rather than reused a registry hit) via the ECO path. *)

val counters : t -> counters

val latencies : t -> float array
(** Submit-to-completion seconds of every completed job, in completion
    order — the bench harness derives throughput and p50/p95 from it. *)

val trace : t -> Operon_engine.Instrument.sink
(** Snapshot of the merged instrumentation: every job's per-stage
    seconds/counters folded together, plus the [Serve]-stage job
    counters (submitted/completed/...). *)

val shutdown : t -> unit
(** Close the queue, drain accepted jobs, join the workers. Idempotent;
    subsequent submits are [`Busy]. *)
