open Operon
open Operon_util
open Operon_engine

type outcome =
  | Completed of Flow.t
  | Failed of Fault.t
  | Cancelled
  | Expired of float

type state = Queued | Running | Finished of outcome

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Finished (Completed _) -> "completed"
  | Finished (Failed _) -> "failed"
  | Finished Cancelled -> "cancelled"
  | Finished (Expired _) -> "expired"

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  cancelled : int;
  expired : int;
  queue_depth : int;
  registry : Registry.stats;
}

type job = {
  id : string;
  config : Flow.Config.t;
  design : Signal.design;
  deadline : float option;
  submitted_at : float;
  token : Jobq.Token.t;
  parent : string option;  (* ECO resubmission: reuse this job's artifacts *)
  initial : int array option;  (* warm-start selection vector *)
  mutable state : state;
  mutable eco : Flow.eco_stats option;  (* set when the job ran the ECO path *)
}

type t = {
  mu : Mutex.t;  (** guards jobs, counters, sink, latencies, domains *)
  finished : Condition.t;  (** broadcast on every terminal transition *)
  queue : job Jobq.t;
  registry : Registry.t;
  jobs : (string, job) Hashtbl.t;
  n_workers : int;
  sink : Instrument.sink;  (** merged per-job instrumentation, under [mu] *)
  mutable domains : unit Domain.t list;
  mutable started : bool;
  mutable stopped : bool;
  mutable next_id : int;
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_rejected : int;
  mutable n_cancelled : int;
  mutable n_expired : int;
  mutable latency_log : float list;  (* newest-first *)
}

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let create ?(workers = 1) ?(capacity = 64) ?registry_capacity () =
  let workers = Stdlib.max 1 workers in
  { mu = Mutex.create ();
    finished = Condition.create ();
    queue = Jobq.create ~capacity;
    registry = Registry.create ?capacity:registry_capacity ();
    jobs = Hashtbl.create 64;
    n_workers = workers;
    sink = Instrument.create ();
    domains = [];
    started = false;
    stopped = false;
    next_id = 0;
    n_submitted = 0;
    n_completed = 0;
    n_failed = 0;
    n_rejected = 0;
    n_cancelled = 0;
    n_expired = 0;
    latency_log = [] }

let workers t = t.n_workers

(* Terminal transition: update the job, the counters and the merged
   instrumentation in one critical section, then wake waiters. *)
let finish t job outcome ~job_sink =
  with_lock t (fun () ->
      job.state <- Finished outcome;
      (match job_sink with
       | Some s -> Instrument.merge ~into:t.sink s
       | None -> ());
      (match outcome with
       | Completed _ ->
           t.n_completed <- t.n_completed + 1;
           t.latency_log <- (Timer.now () -. job.submitted_at) :: t.latency_log;
           Instrument.incr t.sink Instrument.Serve "completed" 1
       | Failed _ ->
           t.n_failed <- t.n_failed + 1;
           Instrument.incr t.sink Instrument.Serve "failed" 1
       | Cancelled ->
           t.n_cancelled <- t.n_cancelled + 1;
           Instrument.incr t.sink Instrument.Serve "cancelled" 1
       | Expired _ ->
           t.n_expired <- t.n_expired + 1;
           Instrument.incr t.sink Instrument.Serve "expired" 1);
      Condition.broadcast t.finished)

let run_job t job =
  let proceed =
    with_lock t (fun () ->
        match job.state with
        | Queued ->
            job.state <- Running;
            true
        | _ -> false (* cancelled between pop and here *))
  in
  if proceed then
    match job.deadline with
    | Some d when Timer.now () >= job.submitted_at +. d ->
        let late = Timer.now () -. (job.submitted_at +. d) in
        finish t job (Expired late) ~job_sink:None
    | deadline -> (
        (* Route the remaining deadline through the solver budgets: the
           selection engines poll their wall-clock caps and fall down
           the PR 2 chain, so an overrun degrades instead of killing
           this worker. *)
        let config =
          match deadline with
          | None -> job.config
          | Some d ->
              let remaining = job.submitted_at +. d -. Timer.now () in
              { job.config with
                Flow.Config.ilp_budget =
                  Float.min job.config.Flow.Config.ilp_budget remaining }
        in
        let job_sink = Instrument.create () in
        match
          (* An ECO resubmission carries its parent job's id: when the
             parent's prepared artifacts are still registered, a revised
             design is prepared incrementally against them. A missing
             parent entry (evicted, or never prepared) silently degrades
             to a cold preparation — results are identical either way. *)
          let prev =
            match job.parent with
            | None -> None
            | Some pid -> (
                match
                  with_lock t (fun () -> Hashtbl.find_opt t.jobs pid)
                with
                | None -> None
                | Some pj ->
                    Registry.find_prepared t.registry ~config:pj.config
                      pj.design)
          in
          let entry, _reused =
            match prev with
            | Some prev ->
                Registry.find_or_prepare_eco ~sink:job_sink t.registry ~config
                  ~prev job.design
            | None ->
                Registry.find_or_prepare ~sink:job_sink t.registry ~config
                  job.design
          in
          Registry.with_prepared entry (fun p ->
              job.eco <- p.Flow.p_eco;
              Flow.select_with ~sink:job_sink ?initial:job.initial config
                job.design p.Flow.p_hnets p.Flow.p_ctx)
        with
        | flow -> finish t job (Completed flow) ~job_sink:(Some job_sink)
        | exception Fault.Error f ->
            finish t job (Failed f) ~job_sink:(Some job_sink)
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            finish t job
              (Failed (Fault.of_exn ~stage:Instrument.Serve e bt))
              ~job_sink:(Some job_sink))

let worker_loop t =
  let rec go () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some job ->
        run_job t job;
        go ()
  in
  go ()

let start t =
  let spawn =
    with_lock t (fun () ->
        if t.started || t.stopped then false
        else begin
          t.started <- true;
          true
        end)
  in
  if spawn then begin
    let domains =
      List.init t.n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t))
    in
    with_lock t (fun () -> t.domains <- domains)
  end

let submit t ?job ?(priority = 0) ?deadline ?parent ?initial ~config design =
  let now = Timer.now () in
  let token = Jobq.Token.create () in
  let prepared =
    with_lock t (fun () ->
        let id =
          match job with
          | Some id -> id
          | None ->
              t.next_id <- t.next_id + 1;
              Printf.sprintf "job-%d" t.next_id
        in
        if Hashtbl.mem t.jobs id then Error (`Duplicate id)
        else begin
          let j =
            { id; config; design; deadline; submitted_at = now; token;
              parent; initial; state = Queued; eco = None }
          in
          Hashtbl.add t.jobs id j;
          Ok j
        end)
  in
  match prepared with
  | Error _ as e -> e
  | Ok j -> (
      match Jobq.push t.queue ~priority ~token j with
      | `Queued ->
          with_lock t (fun () ->
              t.n_submitted <- t.n_submitted + 1;
              Instrument.incr t.sink Instrument.Serve "submitted" 1);
          Ok j.id
      | (`Rejected | `Closed) as why ->
          let detail =
            match why with
            | `Rejected ->
                Printf.sprintf "queue full (%d/%d jobs queued)"
                  (Jobq.length t.queue) (Jobq.capacity t.queue)
            | `Closed -> "service is shutting down"
          in
          with_lock t (fun () ->
              Hashtbl.remove t.jobs j.id;
              t.n_rejected <- t.n_rejected + 1;
              Instrument.incr t.sink Instrument.Serve "rejected" 1);
          Error (`Busy detail))

let state t id = with_lock t (fun () ->
    Option.map (fun j -> j.state) (Hashtbl.find_opt t.jobs id))

let wait t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> None
      | Some j ->
          let rec await () =
            match j.state with
            | Finished o -> Some o
            | Queued | Running ->
                Condition.wait t.finished t.mu;
                await ()
          in
          await ())

let cancel t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> `Unknown
      | Some j -> (
          match j.state with
          | Queued ->
              Jobq.Token.cancel j.token;
              j.state <- Finished Cancelled;
              t.n_cancelled <- t.n_cancelled + 1;
              Instrument.incr t.sink Instrument.Serve "cancelled" 1;
              Condition.broadcast t.finished;
              `Cancelled
          | (Running | Finished _) as s -> `Already s))

let result t id =
  match state t id with
  | Some (Finished (Completed flow)) -> Some flow
  | _ -> None

let job_spec t id =
  with_lock t (fun () ->
      Option.map
        (fun j -> (j.config, j.design))
        (Hashtbl.find_opt t.jobs id))

let eco_stats t id =
  with_lock t (fun () ->
      Option.bind (Hashtbl.find_opt t.jobs id) (fun j -> j.eco))

let counters t =
  let registry = Registry.stats t.registry in
  let queue_depth = Jobq.length t.queue in
  with_lock t (fun () ->
      { submitted = t.n_submitted;
        completed = t.n_completed;
        failed = t.n_failed;
        rejected = t.n_rejected;
        cancelled = t.n_cancelled;
        expired = t.n_expired;
        queue_depth;
        registry })

let latencies t =
  with_lock t (fun () -> Array.of_list (List.rev t.latency_log))

let trace t =
  with_lock t (fun () ->
      let snapshot = Instrument.create () in
      Instrument.merge ~into:snapshot t.sink;
      snapshot)

let shutdown t =
  Jobq.close t.queue;
  let domains =
    with_lock t (fun () ->
        let ds = t.domains in
        t.domains <- [];
        t.stopped <- true;
        ds)
  in
  List.iter Domain.join domains
