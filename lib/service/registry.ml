open Operon
open Operon_geom

type entry = {
  e_design : Signal.design;
  e_config : Flow.Config.t;  (* the preparing submission's config *)
  e_lock : Mutex.t;
  mutable e_prepared : (Hypernet.t array * Selection.ctx) option;
  mutable e_uses : int;
}

type t = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { entries : int; hits : int; misses : int }

let create () =
  { mu = Mutex.create (); tbl = Hashtbl.create 16; hits = 0; misses = 0 }

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* %h renders the exact bit pattern of a float, so the fingerprint can
   never identify two designs that differ by less than a print format. *)
let add_point buf (p : Point.t) =
  Buffer.add_string buf (Printf.sprintf "%h,%h;" p.Point.x p.Point.y)

let fingerprint (design : Signal.design) =
  let buf = Buffer.create 4096 in
  let die = design.Signal.die in
  Buffer.add_string buf
    (Printf.sprintf "die:%h,%h,%h,%h\n" die.Rect.xmin die.Rect.ymin
       die.Rect.xmax die.Rect.ymax);
  Array.iter
    (fun (g : Signal.group) ->
      Buffer.add_string buf "group:";
      Buffer.add_string buf g.Signal.name;
      Buffer.add_char buf '\n';
      Array.iter
        (fun (b : Signal.bit) ->
          Buffer.add_string buf "bit:";
          add_point buf b.Signal.source;
          Array.iter (add_point buf) b.Signal.sinks;
          Buffer.add_char buf '\n')
        g.Signal.bits)
    design.Signal.groups;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let key (config : Flow.Config.t) design =
  (* Only the preparation-relevant configuration participates: what
     [Flow.prepare_with] reads. Params and processing overrides are
     records of immediates, so the polymorphic hash is stable within a
     process — the registry never outlives one. *)
  let prep_bits =
    Printf.sprintf "seed=%d;cands=%d;cache=%b;params=%d;processing=%d"
      config.Flow.Config.seed config.Flow.Config.max_cands_per_net
      config.Flow.Config.cache
      (Hashtbl.hash config.Flow.Config.params)
      (Hashtbl.hash config.Flow.Config.processing)
  in
  fingerprint design ^ ":" ^ Digest.to_hex (Digest.string prep_bits)

let find_or_prepare ?sink t ~config design =
  let key = key config design in
  let entry, reused =
    with_lock t.mu (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
            e.e_uses <- e.e_uses + 1;
            t.hits <- t.hits + 1;
            (e, true)
        | None ->
            t.misses <- t.misses + 1;
            let e =
              { e_design = design;
                e_config = config;
                e_lock = Mutex.create ();
                e_prepared = None;
                e_uses = 1 }
            in
            Hashtbl.add t.tbl key e;
            (e, false))
  in
  (* Prepare outside the registry mutex: a slow first-sight design must
     not stall lookups (or preparations) of other designs. Concurrent
     submissions of the same design block here until the first one's
     preparation lands. *)
  (try
     with_lock entry.e_lock (fun () ->
         match entry.e_prepared with
         | Some _ -> ()
         | None ->
             entry.e_prepared <-
               Some (Flow.prepare_with ?sink entry.e_config entry.e_design))
   with e ->
     (* A faulting preparation must not leave a poisoned entry behind:
        evict it so a later submission retries from scratch. *)
     let bt = Printexc.get_raw_backtrace () in
     with_lock t.mu (fun () ->
         match Hashtbl.find_opt t.tbl key with
         | Some cur when cur == entry && cur.e_prepared = None ->
             Hashtbl.remove t.tbl key
         | _ -> ());
     Printexc.raise_with_backtrace e bt);
  (entry, reused)

let with_prepared entry f =
  with_lock entry.e_lock (fun () ->
      match entry.e_prepared with
      | Some prepared -> f prepared
      | None ->
          (* Unreachable through [find_or_prepare], which never publishes
             an unprepared entry. *)
          invalid_arg "Registry.with_prepared: entry not prepared")

let stats t =
  with_lock t.mu (fun () ->
      { entries = Hashtbl.length t.tbl; hits = t.hits; misses = t.misses })
