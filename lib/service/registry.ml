open Operon
open Operon_geom

type entry = {
  e_design : Signal.design;
  e_config : Flow.Config.t;  (* the preparing submission's config *)
  e_key : string;
  e_lock : Mutex.t;
  mutable e_prepared : Flow.prepared option;
  mutable e_uses : int;
  mutable e_last_use : int;  (* registry tick of the latest lookup *)
}

type t = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  capacity : int option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  capacity : int option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Registry.create: capacity must be >= 1"
  | _ -> ());
  { mu = Mutex.create ();
    tbl = Hashtbl.create 16;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* %h renders the exact bit pattern of a float, so the fingerprint can
   never identify two designs that differ by less than a print format. *)
let add_point buf (p : Point.t) =
  Buffer.add_string buf (Printf.sprintf "%h,%h;" p.Point.x p.Point.y)

let fingerprint (design : Signal.design) =
  let buf = Buffer.create 4096 in
  let die = design.Signal.die in
  Buffer.add_string buf
    (Printf.sprintf "die:%h,%h,%h,%h\n" die.Rect.xmin die.Rect.ymin
       die.Rect.xmax die.Rect.ymax);
  Array.iter
    (fun (g : Signal.group) ->
      Buffer.add_string buf "group:";
      Buffer.add_string buf g.Signal.name;
      Buffer.add_char buf '\n';
      Array.iter
        (fun (b : Signal.bit) ->
          Buffer.add_string buf "bit:";
          add_point buf b.Signal.source;
          Array.iter (add_point buf) b.Signal.sinks;
          Buffer.add_char buf '\n')
        g.Signal.bits)
    design.Signal.groups;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let key (config : Flow.Config.t) design =
  (* Only the preparation-relevant configuration participates: what
     [Flow.prepare] reads. Params and processing overrides are
     records of immediates, so the polymorphic hash is stable within a
     process — the registry never outlives one. *)
  let prep_bits =
    Printf.sprintf "seed=%d;cands=%d;cache=%b;params=%d;processing=%d"
      config.Flow.Config.seed config.Flow.Config.max_cands_per_net
      config.Flow.Config.cache
      (Hashtbl.hash config.Flow.Config.params)
      (Hashtbl.hash config.Flow.Config.processing)
  in
  fingerprint design ^ ":" ^ Digest.to_hex (Digest.string prep_bits)

(* Must hold [t.mu]. Evicts least-recently-used entries (never [keep])
   until the table fits the capacity. An entry whose [e_lock] is held —
   a preparation or a prepared-artifact user in flight — is not
   evictable: removing it mid-preparation would let a concurrent submit
   of the same content-hash re-create and re-prepare the design the
   first thread is already preparing. The victim's lock is acquired
   with [try_lock] and held across the [Hashtbl.remove] so nobody can
   start using the entry between selection and removal. When every
   candidate is locked the table temporarily overflows instead. *)
let enforce_capacity (t : t) ~keep =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.tbl > cap do
        let victim = ref None in
        Hashtbl.iter
          (fun _ e ->
            if e != keep then
              match !victim with
              | Some v when v.e_last_use <= e.e_last_use -> ()
              | prev ->
                  if Mutex.try_lock e.e_lock then begin
                    (match prev with
                    | Some v -> Mutex.unlock v.e_lock
                    | None -> ());
                    victim := Some e
                  end)
          t.tbl;
        match !victim with
        | None -> raise Exit (* nothing evictable: overflow until free *)
        | Some v ->
            Hashtbl.remove t.tbl v.e_key;
            t.evictions <- t.evictions + 1;
            Mutex.unlock v.e_lock
      done

let enforce_capacity t ~keep =
  try enforce_capacity t ~keep with Exit -> ()

let lookup t ~config design ~count design_key =
  with_lock t.mu (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl design_key with
      | Some e ->
          e.e_uses <- e.e_uses + 1;
          e.e_last_use <- t.tick;
          if count then t.hits <- t.hits + 1;
          Some (e, true)
      | None ->
          if not count then None
          else begin
            t.misses <- t.misses + 1;
            let e =
              { e_design = design;
                e_config = config;
                e_key = design_key;
                e_lock = Mutex.create ();
                e_prepared = None;
                e_uses = 1;
                e_last_use = t.tick }
            in
            Hashtbl.add t.tbl design_key e;
            enforce_capacity t ~keep:e;
            Some (e, false)
          end)

let prepare_entry t ~key:design_key entry prep =
  (* Prepare outside the registry mutex: a slow first-sight design must
     not stall lookups (or preparations) of other designs. Concurrent
     submissions of the same design block here until the first one's
     preparation lands. *)
  try
    with_lock entry.e_lock (fun () ->
        match entry.e_prepared with
        | Some _ -> ()
        | None -> entry.e_prepared <- Some (prep ()))
  with e ->
    (* A faulting preparation must not leave a poisoned entry behind:
       evict it so a later submission retries from scratch. *)
    let bt = Printexc.get_raw_backtrace () in
    with_lock t.mu (fun () ->
        match Hashtbl.find_opt t.tbl design_key with
        | Some cur when cur == entry && cur.e_prepared = None ->
            Hashtbl.remove t.tbl design_key
        | _ -> ());
    Printexc.raise_with_backtrace e bt

let find_or_prepare ?sink t ~config design =
  let design_key = key config design in
  let entry, reused =
    Option.get (lookup t ~config design ~count:true design_key)
  in
  prepare_entry t ~key:design_key entry (fun () ->
      Flow.prepare ?sink entry.e_config entry.e_design);
  (entry, reused)

let find_or_prepare_eco ?sink t ~config ~prev design =
  let design_key = key config design in
  let entry, reused =
    Option.get (lookup t ~config design ~count:true design_key)
  in
  prepare_entry t ~key:design_key entry (fun () ->
      Flow.prepare_eco ?sink ~prev entry.e_config entry.e_design);
  (entry, reused)

let find_prepared t ~config design =
  match lookup t ~config design ~count:false (key config design) with
  | None -> None
  | Some (entry, _) ->
      with_lock entry.e_lock (fun () -> entry.e_prepared)

let with_prepared entry f =
  with_lock entry.e_lock (fun () ->
      match entry.e_prepared with
      | Some prepared -> f prepared
      | None ->
          (* Unreachable through [find_or_prepare], which never publishes
             an unprepared entry. *)
          invalid_arg "Registry.with_prepared: entry not prepared")

let stats (t : t) =
  with_lock t.mu (fun () ->
      { entries = Hashtbl.length t.tbl;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        capacity = t.capacity })
