type t = {
  alpha : float;
  beta : float;
  bundle_factor : float;
  splitter_excess : float;
  p_mod : float;
  p_det : float;
  l_max : float;
  wdm_capacity : int;
  dis_l : float;
  dis_u : float;
  gamma : float;
  freq : float;
  vdd : float;
  cap_per_cm : float;
  t_ref : float;         (* ring calibration temperature, degC *)
  thermal_sens : float;  (* added loss per waveguide segment, dB/degC of detuning *)
}

let default =
  { alpha = 1.5;
    beta = 0.52;
    bundle_factor = 6.0;
    splitter_excess = 0.1;
    p_mod = 0.511;
    p_det = 0.374;
    l_max = 22.0;
    wdm_capacity = 32;
    dis_l = 5e-4;
    dis_u = 0.10;
    gamma = 0.3;
    freq = 1e9;
    vdd = 1.0;
    cap_per_cm = 3.0;
    t_ref = 45.0;
    thermal_sens = 0.05 }

let auto_bundle p ~mean_bits =
  if mean_bits <= 0.0 then invalid_arg "Params.auto_bundle: non-positive mean_bits";
  let raw = 1.5 *. float_of_int p.wdm_capacity /. mean_bits in
  { p with bundle_factor = Float.max 1.0 (Float.min 16.0 raw) }

let electrical_unit_energy p = p.gamma *. p.vdd *. p.vdd *. p.cap_per_cm

let validate p =
  let checks =
    [ (p.alpha > 0.0, "alpha must be positive");
      (p.beta >= 0.0, "beta must be non-negative");
      (p.bundle_factor >= 1.0, "bundle_factor must be at least 1");
      (p.splitter_excess >= 0.0, "splitter_excess must be non-negative");
      (p.p_mod > 0.0, "p_mod must be positive");
      (p.p_det > 0.0, "p_det must be positive");
      (p.l_max > 0.0, "l_max must be positive");
      (p.wdm_capacity > 0, "wdm_capacity must be positive");
      (p.dis_l >= 0.0, "dis_l must be non-negative");
      (p.dis_l <= p.dis_u, "dis_l must not exceed dis_u");
      (p.gamma > 0.0 && p.gamma <= 1.0, "gamma must be in (0, 1]");
      (p.freq > 0.0, "freq must be positive");
      (p.vdd > 0.0, "vdd must be positive");
      (p.cap_per_cm > 0.0, "cap_per_cm must be positive");
      (Float.is_finite p.t_ref, "t_ref must be finite");
      (p.thermal_sens >= 0.0, "thermal_sens must be non-negative") ]
  in
  match List.find_opt (fun (ok, _) -> not ok) checks with
  | Some (_, msg) -> Error msg
  | None -> Ok ()
