(** Physical and technology parameters of the optical-electrical platform.

    Values follow the paper's experimental setup: propagation and crossing
    loss from PROTON (Boos et al.), modulator/detector energies from the
    45 nm monolithic photonics link (Sun et al.), WDM capacity 32 from GLOW.
    Parameters the paper leaves implicit (detection budget, electrical
    constants, WDM spacing bounds) use the calibration recorded in
    DESIGN.md Section 6. Distances are centimetres, losses dB, energies
    pJ/bit. *)

type t = {
  alpha : float;  (** propagation loss, dB/cm (paper: 1.5) *)
  beta : float;  (** loss per waveguide crossing, dB (paper: 0.52) *)
  bundle_factor : float;
      (** average hyper nets sharing one physical waveguide at a crossing.
          Crossing loss is a waveguide-level phenomenon, but selection
          reasons about hyper-net geometry; dividing net-level crossing
          counts by this factor recovers the physical count (parallel
          bus traffic between the same block pair rides the same WDM).
          See DESIGN.md Section 6. *)
  splitter_excess : float;  (** excess loss per Y-branch stage, dB *)
  p_mod : float;  (** modulator energy, pJ/bit (paper: 0.511) *)
  p_det : float;  (** detector energy, pJ/bit (paper: 0.374) *)
  l_max : float;  (** detection budget: max source-to-sink loss, dB *)
  wdm_capacity : int;  (** channels per WDM waveguide (paper: 32) *)
  dis_l : float;  (** min spacing between neighbouring WDMs, cm *)
  dis_u : float;  (** max connection-to-WDM assignment distance, cm *)
  gamma : float;  (** electrical switching activity factor *)
  freq : float;  (** system frequency, Hz (for Watt conversions only) *)
  vdd : float;  (** supply voltage, V *)
  cap_per_cm : float;  (** wire capacitance, pF/cm *)
  t_ref : float;
      (** ring calibration temperature, degC — detuning is measured as
          deviation from this point (GLOW's thermal model) *)
  thermal_sens : float;
      (** added loss per waveguide segment per degC of detuning, dB/degC *)
}

val default : t
(** alpha=1.5, beta=0.52, bundle_factor=2.0, splitter_excess=0.1, p_mod=0.511, p_det=0.374,
    l_max=22.0, wdm_capacity=32, dis_l=5e-4, dis_u=0.10, gamma=0.3,
    freq=1e9, vdd=1.0, cap_per_cm=3.0 (the last two calibrated as per
    DESIGN.md Section 6), t_ref=45.0, thermal_sens=0.05. *)

val auto_bundle : t -> mean_bits:float -> t
(** Derive the waveguide bundling factor from the design's mean hyper-net
    width: [bundle_factor = clamp 1 16 (1.5 * capacity / mean_bits)] —
    the expected number of hyper nets sharing a physical waveguide
    (channel occupancy), with a 1.5x allowance for co-bundled corridor
    traffic. Raises [Invalid_argument] on non-positive [mean_bits]. *)

val electrical_unit_energy : t -> float
(** Energy per bit per centimetre of electrical wire, pJ/(bit*cm):
    [gamma * vdd^2 * cap_per_cm]. Eq. 6 divided by the bit rate, so
    optical (Eq. 1) and electrical powers are compared in the same
    pJ/bit unit; the common frequency factor cancels in every ratio the
    paper reports. *)

val validate : t -> (unit, string) result
(** Check that every parameter is physically sensible (positive losses and
    energies, [dis_l <= dis_u], positive capacity). *)
