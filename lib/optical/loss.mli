(** Optical loss model — Eq. (2) of the paper:

    [loss = alpha * WL + beta * n_x + 10 * sum(log10 n_s)]

    Propagation loss is proportional to waveguide length, crossing loss to
    the number of waveguide crossings, and splitting loss accumulates
    [10*log10(n_s)] decibels at every splitter with [n_s] output arms —
    the term prior optical-routing work neglected and OPERON models. *)

val propagation : Params.t -> float -> float
(** [propagation p wl] = alpha * wl (dB) for [wl] centimetres. *)

val crossing : Params.t -> int -> float
(** [crossing p n] = beta * n (dB) for [n] physical waveguide
    crossings. *)

val crossing_bundled : Params.t -> int -> float
(** Crossing loss from [n] {e hyper-net-level} crossing counts:
    [beta * n / bundle_factor]. Selection reasons about hyper-net chords,
    which over-count physical waveguide crossings by the WDM sharing
    factor. *)

val splitting_arm : Params.t -> int -> float
(** Loss through one splitter with [ns] arms: [10*log10 ns] plus the
    excess loss of the Y-branch cascade realising it
    ([ceil(log2 ns)] stages). [ns <= 1] means no split: 0 dB. *)

val path :
  Params.t -> wirelength:float -> crossings:int -> split_arms:int list -> float
(** Total loss of one source-to-sink path: propagation over the optical
    length, crossings met on the way, and one [splitting_arm] term per
    splitter traversed (the paper's [10 * sum log(ns)]). *)

val detuning : Params.t -> dt:float -> float
(** Thermal detuning penalty of one waveguide segment whose worst local
    temperature deviates by [dt] degC from the ring calibration point:
    [thermal_sens * |dt|] dB (GLOW's linearized model). *)

val path_thermal : Params.t -> base:float -> dts:float array -> float
(** Temperature-aware path loss: [base] (the nominal {!path} loss) plus
    one {!detuning} term per segment, [dts.(k)] being the worst
    temperature deviation sampled along segment [k]. *)

val detectable : Params.t -> float -> bool
(** Is a path loss within the detection budget [l_max]? *)

val db_to_fraction : float -> float
(** Convert a dB loss to the remaining power fraction: [10^(-db/10)]. *)

val fraction_to_db : float -> float
(** Inverse of {!db_to_fraction}; raises [Invalid_argument] on
    non-positive fractions. *)
