let propagation (p : Params.t) wl =
  if wl < 0.0 then invalid_arg "Loss.propagation: negative length";
  p.Params.alpha *. wl

let crossing (p : Params.t) n =
  if n < 0 then invalid_arg "Loss.crossing: negative count";
  p.Params.beta *. float_of_int n

let crossing_bundled (p : Params.t) n =
  if n < 0 then invalid_arg "Loss.crossing_bundled: negative count";
  p.Params.beta *. float_of_int n /. p.Params.bundle_factor

let splitting_arm (p : Params.t) ns =
  if ns <= 1 then 0.0
  else begin
    let stages = int_of_float (Float.ceil (Float.log2 (float_of_int ns))) in
    (10.0 *. Float.log10 (float_of_int ns))
    +. (p.Params.splitter_excess *. float_of_int stages)
  end

let path p ~wirelength ~crossings ~split_arms =
  propagation p wirelength
  +. crossing p crossings
  +. List.fold_left (fun acc ns -> acc +. splitting_arm p ns) 0.0 split_arms

let detectable (p : Params.t) loss = loss <= p.Params.l_max

(* Thermal detuning (GLOW's linearized model): a ring device whose local
   temperature deviates from the calibration point t_ref drifts off its
   resonance, and the added insertion loss grows with |deltaT|. The
   per-segment sensitivity folds ring count per unit length into one
   dB/degC coefficient. *)
let detuning (p : Params.t) ~dt = p.Params.thermal_sens *. Float.abs dt

(* Temperature-aware path loss: the nominal loss plus one detuning
   penalty per waveguide segment, [dts.(k)] being the worst temperature
   deviation sampled along segment [k]. *)
let path_thermal (p : Params.t) ~base ~dts =
  Array.fold_left (fun acc dt -> acc +. detuning p ~dt) base dts

let db_to_fraction db = Float.pow 10.0 (-.db /. 10.0)

let fraction_to_db f =
  if f <= 0.0 then invalid_arg "Loss.fraction_to_db: non-positive fraction";
  -10.0 *. Float.log10 f
