type t = {
  bounds : Rect.t;
  nx : int;
  ny : int;
  cells : float array; (* row-major: index = j * nx + i *)
}

let create bounds ~nx ~ny =
  if nx <= 0 || ny <= 0 then invalid_arg "Gridmap.create: non-positive size";
  { bounds; nx; ny; cells = Array.make (nx * ny) 0.0 }

let nx g = g.nx

let ny g = g.ny

let bounds g = g.bounds

let get g i j =
  if i < 0 || i >= g.nx || j < 0 || j >= g.ny then
    invalid_arg "Gridmap.get: out of bounds";
  g.cells.((j * g.nx) + i)

let set g i j v =
  if i < 0 || i >= g.nx || j < 0 || j >= g.ny then
    invalid_arg "Gridmap.set: out of bounds";
  g.cells.((j * g.nx) + i) <- v

let total g = Array.fold_left ( +. ) 0.0 g.cells

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let cell_of g { Point.x; y } =
  let r = g.bounds in
  let w = Rect.width r and h = Rect.height r in
  let fx = if w <= 0.0 then 0.0 else (x -. r.Rect.xmin) /. w in
  let fy = if h <= 0.0 then 0.0 else (y -. r.Rect.ymin) /. h in
  let i = clamp (int_of_float (fx *. float_of_int g.nx)) 0 (g.nx - 1) in
  let j = clamp (int_of_float (fy *. float_of_int g.ny)) 0 (g.ny - 1) in
  (i, j)

let deposit_point g p mass =
  let i, j = cell_of g p in
  g.cells.((j * g.nx) + i) <- g.cells.((j * g.nx) + i) +. mass

let deposit_segment g s mass =
  let len = Segment.length s in
  if len <= 0.0 then deposit_point g s.Segment.a mass
  else
    (* Sample at roughly a third of the cell pitch so no traversed cell is
       skipped, and split the mass evenly over the samples. *)
    let pitch =
      Float.min
        (Rect.width g.bounds /. float_of_int g.nx)
        (Rect.height g.bounds /. float_of_int g.ny)
    in
    let step = if pitch > 0.0 then pitch /. 3.0 else len in
    let samples = Stdlib.max 1 (int_of_float (Float.ceil (len /. step))) in
    let per_sample = mass /. float_of_int (samples + 1) in
    let dir = Point.sub s.Segment.b s.Segment.a in
    for k = 0 to samples do
      let tparam = float_of_int k /. float_of_int samples in
      deposit_point g (Point.add s.Segment.a (Point.scale tparam dir)) per_sample
    done

let peak g = Array.fold_left Float.max 0.0 g.cells

let normalized g =
  let hi = peak g in
  let scale = if hi > 0.0 then 1.0 /. hi else 0.0 in
  Array.init g.ny (fun j ->
      Array.init g.nx (fun i -> g.cells.((j * g.nx) + i) *. scale))

let correlation a b =
  if a.nx <> b.nx || a.ny <> b.ny then
    invalid_arg "Gridmap.correlation: shape mismatch";
  let n = float_of_int (Array.length a.cells) in
  let ma = total a /. n and mb = total b /. n in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  Array.iteri
    (fun idx va ->
      let xa = va -. ma and xb = b.cells.(idx) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb))
    a.cells;
  if !da <= 0.0 || !db <= 0.0 then 0.0 else !num /. sqrt (!da *. !db)

let render ?(levels = " .:-=+*#%@") g =
  let hi = peak g in
  let nlev = String.length levels in
  let buf = Buffer.create (g.nx * g.ny + g.ny) in
  for j = g.ny - 1 downto 0 do
    for i = 0 to g.nx - 1 do
      let v = g.cells.((j * g.nx) + i) in
      let idx =
        if hi <= 0.0 then 0
        else clamp (int_of_float (v /. hi *. float_of_int (nlev - 1))) 0 (nlev - 1)
      in
      Buffer.add_char buf levels.[idx]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
