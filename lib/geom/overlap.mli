(** Spatial overlap index over axis-aligned rectangles.

    Replaces the O(n²) pairwise bbox sweeps in preparation: build once
    in O(n), then enumerate all overlapping pairs in O(n + k) expected
    (k = number of overlapping pairs) or query one rectangle against
    the set. Internally a hash grid with exact-duplicate collapsing and
    an overflow list for oversized rects, so adversarial inputs — many
    identical placeholder points, one far outlier — degrade gracefully
    instead of re-creating the quadratic sweep.

    Iteration order is unspecified for every function here; callers
    that need a deterministic order must sort what they collect. The
    reported {e sets} are exact: every overlapping pair (respectively
    every overlapping index) exactly once, under the closed-boundary
    overlap test of {!Rect.overlaps}. *)

type t

val build : Rect.t array -> t
(** Index the given rectangles; indices reported by the other functions
    refer to positions in this array. The array is copied. *)

val iter_pairs : t -> (int -> int -> unit) -> unit
(** [iter_pairs t f] calls [f i j] with [i < j] exactly once for every
    pair of overlapping rectangles. *)

val iter_groups : t -> (int array -> unit) -> unit
(** Iterate over groups of indices whose rectangles are exactly equal
    (members ascending). Every index appears in exactly one group;
    groups may be singletons. Members of one group mutually overlap. *)

val iter_group_pairs : t -> (int array -> int array -> unit) -> unit
(** Group-level version of {!iter_pairs}: called exactly once per
    unordered pair of {e distinct} overlapping rectangles, with the
    member groups of each side. Together with {!iter_groups} this lets
    union-find callers add one edge per group pair plus a chain per
    group instead of materializing every member-level pair. *)

val query : t -> Rect.t -> (int -> unit) -> unit
(** [query t r f] calls [f i] exactly once for every indexed rectangle
    overlapping [r]. [r] need not be finite. *)

val overlaps_any : t -> Rect.t -> bool
(** Does any indexed rectangle overlap [r]? *)
