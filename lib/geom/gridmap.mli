(** Uniform density grids over the die.

    Used to build the Figure 9 power-hotspot maps: power is deposited either
    at points (EO/OE conversion sites) or smeared along wire segments, then
    the grid is normalized and rendered. *)

type t

val create : Rect.t -> nx:int -> ny:int -> t
(** A zeroed [nx] x [ny] grid covering the given die rectangle. *)

val nx : t -> int

val ny : t -> int

val bounds : t -> Rect.t

val get : t -> int -> int -> float
(** [get g i j] reads cell (column [i], row [j]). *)

val set : t -> int -> int -> float -> unit
(** [set g i j v] overwrites cell (column [i], row [j]). *)

val cell_of : t -> Point.t -> int * int
(** Covering cell (column, row) of a point; points outside the bounds are
    clamped to the border cell. *)

val total : t -> float
(** Sum of all cells. *)

val deposit_point : t -> Point.t -> float -> unit
(** Add a point mass into the covering cell (points outside the bounds are
    clamped to the border cell). *)

val deposit_segment : t -> Segment.t -> float -> unit
(** Distribute a mass uniformly along a segment by sampling at sub-cell
    resolution, so long wires heat every cell they traverse. *)

val peak : t -> float
(** Maximum cell value. *)

val normalized : t -> float array array
(** Copy of the cells scaled so the peak is 1.0 ([row][col] indexed). *)

val correlation : t -> t -> float
(** Pearson correlation of two same-shape grids; used to check that GLOW and
    OPERON have similar optical hotspot layouts (Fig. 9a vs 9c). Raises
    [Invalid_argument] on shape mismatch. *)

val render : ?levels:string -> t -> string
(** ASCII-art heat map: characters of [levels] (default " .:-=+*#%@") by
    increasing intensity, one row per line, row 0 at the bottom. *)
