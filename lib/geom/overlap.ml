(* Spatial overlap index over a set of axis-aligned rectangles.

   A hash grid keyed by integer cell coordinates, with two defenses that
   keep it robust on the inputs the pipeline actually produces:

   - Exact-duplicate collapsing. Rects are grouped by exact coordinates
     and the grid stores one entry per distinct rect. The ILP engine
     hands [Crossing.interaction_components] thousands of identical
     placeholder points for electrical-only nets; without collapsing,
     those would pile into one bucket and re-create the O(n²) sweep this
     index exists to kill. Duplicate groups are cliques (equal rects
     always overlap), so connectivity and pair enumeration recover the
     full answer from group-level results.

   - Cell size from the mean distinct-rect dimensions, not the global
     bounds. A single far outlier (the -1e9 placeholder point) would
     otherwise stretch a bounds-derived grid until every real rect
     shared one cell. With a size-derived cell, outliers just occupy
     far-away hash cells of their own.

   Each overlapping pair is reported exactly once: a pair is attributed
   to the unique cell containing the min corner of the intersection
   (max of the xmins, max of the ymins) — the same dedup trick as the
   segment grid in [Crossing]. Rects spanning more than [max_span]
   cells go to a small overflow list checked linearly, bounding insert
   cost.

   Below [flat_threshold] rects the index is a plain array and every
   operation is the direct double loop — cheaper than hashing at small
   n. Iteration order is unspecified everywhere; callers that need a
   deterministic order sort what they collect. *)

type grid = {
  g_rects : Rect.t array;     (* original rects, by caller index *)
  g_groups : int array array; (* distinct id -> member indices, ascending *)
  g_reps : Rect.t array;      (* distinct id -> the shared rect *)
  g_cell : float;             (* cell edge length, > 0 and finite *)
  g_table : (int * int, int array) Hashtbl.t; (* cell -> distinct ids *)
  g_large : int array;        (* distinct ids too big for the grid *)
  g_is_large : bool array;    (* by distinct id *)
}

type t = Flat of Rect.t array | Grid of grid

let flat_threshold = 64

(* A rect covering more cells than this is checked linearly instead of
   being inserted everywhere it touches. *)
let max_span = 1024

(* A query rect covering more cells than this walks the distinct list
   instead of visiting cells (also the safe path for infinite rects). *)
let query_span = 4096

let cell_coord cell v = int_of_float (Float.floor (v /. cell))

let cell_size reps =
  let d = Array.length reps in
  let sw = ref 0.0 and sh = ref 0.0 in
  Array.iter
    (fun r ->
      sw := !sw +. Rect.width r;
      sh := !sh +. Rect.height r)
    reps;
  let mean = Float.max (!sw /. float_of_int d) (!sh /. float_of_int d) in
  if Float.is_finite mean && mean > 0.0 then mean
  else begin
    (* Degenerate rects (points): size cells by the spread instead, so
       roughly sqrt d cells per side cover the occupied extent. *)
    let xmin = ref infinity and xmax = ref neg_infinity in
    let ymin = ref infinity and ymax = ref neg_infinity in
    Array.iter
      (fun r ->
        if r.Rect.xmin < !xmin then xmin := r.Rect.xmin;
        if r.Rect.xmax > !xmax then xmax := r.Rect.xmax;
        if r.Rect.ymin < !ymin then ymin := r.Rect.ymin;
        if r.Rect.ymax > !ymax then ymax := r.Rect.ymax)
      reps;
    let extent = Float.max (!xmax -. !xmin) (!ymax -. !ymin) in
    let s = extent /. Float.sqrt (float_of_int d) in
    if Float.is_finite s && s > 0.0 then s else 1.0
  end

let build rects =
  let n = Array.length rects in
  if n <= flat_threshold then Flat (Array.copy rects)
  else begin
    (* Collapse exact duplicates. Generic hashing of float records is
       deterministic for a given input, which is all we rely on. *)
    let by_rect : (Rect.t, int) Hashtbl.t = Hashtbl.create (2 * n) in
    let members : int list array = Array.make n [] in
    let reps_rev = ref [] and d = ref 0 in
    for i = 0 to n - 1 do
      let r = rects.(i) in
      match Hashtbl.find_opt by_rect r with
      | Some id -> members.(id) <- i :: members.(id)
      | None ->
          let id = !d in
          incr d;
          Hashtbl.add by_rect r id;
          reps_rev := r :: !reps_rev;
          members.(id) <- [ i ]
    done;
    let d = !d in
    let reps = Array.of_list (List.rev !reps_rev) in
    let groups =
      Array.init d (fun id -> Array.of_list (List.rev members.(id)))
    in
    let cell = cell_size reps in
    let cells : (int * int, int list ref) Hashtbl.t = Hashtbl.create (4 * d) in
    let is_large = Array.make d false in
    let large_rev = ref [] in
    for id = 0 to d - 1 do
      let r = reps.(id) in
      let cx0 = cell_coord cell r.Rect.xmin
      and cx1 = cell_coord cell r.Rect.xmax
      and cy0 = cell_coord cell r.Rect.ymin
      and cy1 = cell_coord cell r.Rect.ymax in
      let span = (cx1 - cx0 + 1) * (cy1 - cy0 + 1) in
      if span > max_span then begin
        is_large.(id) <- true;
        large_rev := id :: !large_rev
      end
      else
        for cx = cx0 to cx1 do
          for cy = cy0 to cy1 do
            let key = (cx, cy) in
            match Hashtbl.find_opt cells key with
            | Some ids -> ids := id :: !ids
            | None -> Hashtbl.add cells key (ref [ id ])
          done
        done
    done;
    let table = Hashtbl.create (Hashtbl.length cells) in
    Hashtbl.iter
      (fun key ids -> Hashtbl.add table key (Array.of_list (List.rev !ids)))
      cells;
    Grid
      {
        g_rects = Array.copy rects;
        g_groups = groups;
        g_reps = reps;
        g_cell = cell;
        g_table = table;
        g_large = Array.of_list (List.rev !large_rev);
        g_is_large = is_large;
      }
  end

let iter_groups t f =
  match t with
  | Flat rects -> Array.iteri (fun i _ -> f [| i |]) rects
  | Grid g -> Array.iter f g.g_groups

(* Group-level pair sweep: [f ga gb] once per unordered pair of distinct
   rects that overlap. In the flat case every index is its own group. *)
let iter_group_pairs t f =
  match t with
  | Flat rects ->
      let n = Array.length rects in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Rect.overlaps rects.(i) rects.(j) then f [| i |] [| j |]
        done
      done
  | Grid g ->
      Hashtbl.iter
        (fun (cx, cy) bucket ->
          let m = Array.length bucket in
          for p = 0 to m - 1 do
            for q = p + 1 to m - 1 do
              let da = bucket.(p) and db = bucket.(q) in
              let ra = g.g_reps.(da) and rb = g.g_reps.(db) in
              if Rect.overlaps ra rb then begin
                (* Attribute the pair to the cell holding the min corner
                   of the intersection, so multi-cell overlaps fire
                   exactly once. *)
                let px = Float.max ra.Rect.xmin rb.Rect.xmin
                and py = Float.max ra.Rect.ymin rb.Rect.ymin in
                if
                  cell_coord g.g_cell px = cx && cell_coord g.g_cell py = cy
                then f g.g_groups.(da) g.g_groups.(db)
              end
            done
          done)
        g.g_table;
      (* Overflow rects pair with everything; large-large pairs are taken
         from the lower distinct id only. *)
      Array.iter
        (fun da ->
          let ra = g.g_reps.(da) in
          for db = 0 to Array.length g.g_reps - 1 do
            if
              db <> da
              && ((not g.g_is_large.(db)) || db > da)
              && Rect.overlaps ra g.g_reps.(db)
            then f g.g_groups.(da) g.g_groups.(db)
          done)
        g.g_large

(* Every overlapping pair (i, j) with i < j, exactly once. *)
let iter_pairs t f =
  let emit i j = if i < j then f i j else f j i in
  (* Duplicate groups are cliques: equal rects always overlap. *)
  iter_groups t (fun g ->
      let m = Array.length g in
      for k = 0 to m - 1 do
        for l = k + 1 to m - 1 do
          emit g.(k) g.(l)
        done
      done);
  iter_group_pairs t (fun ga gb ->
      Array.iter (fun i -> Array.iter (fun j -> emit i j) gb) ga)

(* All indices whose rect overlaps [r], exactly once each. *)
let query t r f =
  match t with
  | Flat rects ->
      Array.iteri (fun i ri -> if Rect.overlaps ri r then f i) rects
  | Grid g ->
      let linear () =
        Array.iteri
          (fun id rep ->
            if Rect.overlaps rep r then Array.iter f g.g_groups.(id))
          g.g_reps
      in
      let fx0 = Float.floor (r.Rect.xmin /. g.g_cell)
      and fx1 = Float.floor (r.Rect.xmax /. g.g_cell)
      and fy0 = Float.floor (r.Rect.ymin /. g.g_cell)
      and fy1 = Float.floor (r.Rect.ymax /. g.g_cell) in
      let span = (fx1 -. fx0 +. 1.0) *. (fy1 -. fy0 +. 1.0) in
      if not (Float.is_finite span) || span > float_of_int query_span then
        linear ()
      else begin
        let cx0 = int_of_float fx0
        and cx1 = int_of_float fx1
        and cy0 = int_of_float fy0
        and cy1 = int_of_float fy1 in
        for cx = cx0 to cx1 do
          for cy = cy0 to cy1 do
            match Hashtbl.find_opt g.g_table (cx, cy) with
            | None -> ()
            | Some bucket ->
                Array.iter
                  (fun id ->
                    let rep = g.g_reps.(id) in
                    if Rect.overlaps rep r then begin
                      let px = Float.max rep.Rect.xmin r.Rect.xmin
                      and py = Float.max rep.Rect.ymin r.Rect.ymin in
                      if
                        cell_coord g.g_cell px = cx
                        && cell_coord g.g_cell py = cy
                      then Array.iter f g.g_groups.(id)
                    end)
                  bucket
          done
        done;
        Array.iter
          (fun id ->
            if Rect.overlaps g.g_reps.(id) r then Array.iter f g.g_groups.(id))
          g.g_large
      end

exception Found

let overlaps_any t r =
  match t with
  | Flat rects -> Array.exists (fun ri -> Rect.overlaps ri r) rects
  | Grid _ -> (
      try
        query t r (fun _ -> raise Found);
        false
      with Found -> true)
