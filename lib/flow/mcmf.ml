type t = {
  n : int;
  heads : int array;
  mutable nexts : int array;
  mutable dsts : int array;
  mutable caps : int array;
  mutable costs : float array;
  mutable orig_caps : int array;
  mutable arcs : int;
}

let create n =
  if n <= 0 then invalid_arg "Mcmf.create: non-positive size";
  { n;
    heads = Array.make n (-1);
    nexts = Array.make 16 (-1);
    dsts = Array.make 16 0;
    caps = Array.make 16 0;
    costs = Array.make 16 0.0;
    orig_caps = Array.make 16 0;
    arcs = 0 }

let ensure_capacity t =
  if t.arcs + 2 > Array.length t.nexts then begin
    let cap = Array.length t.nexts * 2 in
    let grow_i a = let b = Array.make cap 0 in Array.blit a 0 b 0 t.arcs; b in
    let nexts = Array.make cap (-1) in
    Array.blit t.nexts 0 nexts 0 t.arcs;
    let costs = Array.make cap 0.0 in
    Array.blit t.costs 0 costs 0 t.arcs;
    t.nexts <- nexts;
    t.dsts <- grow_i t.dsts;
    t.caps <- grow_i t.caps;
    t.orig_caps <- grow_i t.orig_caps;
    t.costs <- costs
  end

let push_arc t u v c cost =
  let idx = t.arcs in
  t.dsts.(idx) <- v;
  t.caps.(idx) <- c;
  t.orig_caps.(idx) <- c;
  t.costs.(idx) <- cost;
  t.nexts.(idx) <- t.heads.(u);
  t.heads.(u) <- idx;
  t.arcs <- idx + 1

let add_edge t ~src ~dst ~cap ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: vertex out of range";
  if cap < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  ensure_capacity t;
  let handle = t.arcs in
  push_arc t src dst cap cost;
  push_arc t dst src 0 (-.cost);
  handle

let flow_on t handle =
  if handle < 0 || handle >= t.arcs then invalid_arg "Mcmf.flow_on: bad handle";
  t.orig_caps.(handle) - t.caps.(handle)

(* Bellman-Ford over residual arcs to initialise the potentials; needed only
   when some arc cost is negative. *)
let initial_potentials t source =
  let pot = Array.make t.n infinity in
  pot.(source) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > t.n then failwith "Mcmf: negative cycle";
    for u = 0 to t.n - 1 do
      if pot.(u) < infinity then begin
        let a = ref t.heads.(u) in
        while !a <> -1 do
          if t.caps.(!a) > 0 && pot.(u) +. t.costs.(!a) < pot.(t.dsts.(!a)) -. 1e-12
          then begin
            pot.(t.dsts.(!a)) <- pot.(u) +. t.costs.(!a);
            changed := true
          end;
          a := t.nexts.(!a)
        done
      end
    done
  done;
  Array.map (fun d -> if d = infinity then 0.0 else d) pot

let has_negative_cost t =
  let rec scan i = i < t.arcs && (t.costs.(i) < 0.0 && t.caps.(i) > 0 || scan (i + 1)) in
  scan 0

let solve_bounded t ~source ~sink ~max_flow =
  if source = sink then invalid_arg "Mcmf.solve: source = sink";
  let pot =
    if has_negative_cost t then initial_potentials t source
    else Array.make t.n 0.0
  in
  let dist = Array.make t.n infinity in
  let prev_arc = Array.make t.n (-1) in
  let visited = Array.make t.n false in
  (* Lazy binary min-heap over (dist, vertex), ordered lexicographically —
     the same selection order as an array scan (minimum distance, lowest
     vertex on ties), so the augmenting paths and therefore the final
     flows are identical, at O(E log V) per round instead of O(V^2).
     Improvements push duplicates; stale entries are skipped on pop via
     the visited flag (a vertex's first pop always carries its final
     distance, since later improvements pushed strictly smaller keys). *)
  let hd = ref (Array.make 256 0.0) in
  let hv = ref (Array.make 256 0) in
  let hsize = ref 0 in
  let hless i j =
    let d = !hd and v = !hv in
    d.(i) < d.(j) || (d.(i) = d.(j) && v.(i) < v.(j))
  in
  let hswap i j =
    let d = !hd and v = !hv in
    let td = d.(i) and tv = v.(i) in
    d.(i) <- d.(j); v.(i) <- v.(j);
    d.(j) <- td; v.(j) <- tv
  in
  let hpush key vertex =
    if !hsize = Array.length !hd then begin
      let cap = 2 * !hsize in
      let nd = Array.make cap 0.0 and nv = Array.make cap 0 in
      Array.blit !hd 0 nd 0 !hsize;
      Array.blit !hv 0 nv 0 !hsize;
      hd := nd;
      hv := nv
    end;
    !hd.(!hsize) <- key;
    !hv.(!hsize) <- vertex;
    incr hsize;
    let i = ref (!hsize - 1) in
    while !i > 0 && hless !i ((!i - 1) / 2) do
      hswap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let hpop () =
    let top = !hv.(0) in
    decr hsize;
    !hd.(0) <- !hd.(!hsize);
    !hv.(0) <- !hv.(!hsize);
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < !hsize && hless l !m then m := l;
      if r < !hsize && hless r !m then m := r;
      if !m = !i then stop := true
      else begin
        hswap !i !m;
        i := !m
      end
    done;
    top
  in
  let total_flow = ref 0 and total_cost = ref 0.0 in
  let continue = ref true in
  while !continue && !total_flow < max_flow do
    (* Dijkstra with reduced costs cost + pot(u) - pot(v) >= 0. *)
    Array.fill dist 0 t.n infinity;
    Array.fill prev_arc 0 t.n (-1);
    Array.fill visited 0 t.n false;
    dist.(source) <- 0.0;
    hsize := 0;
    hpush 0.0 source;
    while !hsize > 0 do
      let u = hpop () in
      if not visited.(u) then begin
        visited.(u) <- true;
        let a = ref t.heads.(u) in
        while !a <> -1 do
          let v = t.dsts.(!a) in
          if t.caps.(!a) > 0 && not visited.(v) then begin
            let reduced = t.costs.(!a) +. pot.(u) -. pot.(v) in
            let nd = dist.(u) +. Float.max 0.0 reduced in
            if nd < dist.(v) -. 1e-15 then begin
              dist.(v) <- nd;
              prev_arc.(v) <- !a;
              hpush nd v
            end
          end;
          a := t.nexts.(!a)
        done
      end
    done;
    if dist.(sink) = infinity then continue := false
    else begin
      for v = 0 to t.n - 1 do
        if dist.(v) < infinity then pot.(v) <- pot.(v) +. dist.(v)
      done;
      (* Bottleneck along the shortest path. *)
      let bottleneck = ref (max_flow - !total_flow) in
      let v = ref sink in
      while !v <> source do
        let a = prev_arc.(!v) in
        if t.caps.(a) < !bottleneck then bottleneck := t.caps.(a);
        v := t.dsts.(a lxor 1)
      done;
      let v = ref sink in
      while !v <> source do
        let a = prev_arc.(!v) in
        t.caps.(a) <- t.caps.(a) - !bottleneck;
        t.caps.(a lxor 1) <- t.caps.(a lxor 1) + !bottleneck;
        total_cost := !total_cost +. (t.costs.(a) *. float_of_int !bottleneck);
        v := t.dsts.(a lxor 1)
      done;
      total_flow := !total_flow + !bottleneck
    end
  done;
  (!total_flow, !total_cost)

let solve t ~source ~sink = solve_bounded t ~source ~sink ~max_flow:max_int
