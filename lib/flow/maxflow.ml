type t = {
  n : int;
  mutable heads : int array; (* head arc index per vertex, -1 = none *)
  mutable nexts : int array; (* next arc in the vertex's list *)
  mutable dsts : int array;
  mutable caps : int array; (* residual capacities *)
  mutable arcs : int; (* number of arcs (forward + residual) *)
  mutable orig_caps : int array; (* original capacity, for flow readback *)
}

let create n =
  if n <= 0 then invalid_arg "Maxflow.create: non-positive size";
  { n;
    heads = Array.make n (-1);
    nexts = Array.make 16 (-1);
    dsts = Array.make 16 0;
    caps = Array.make 16 0;
    orig_caps = Array.make 16 0;
    arcs = 0 }

let vertex_count t = t.n

let ensure_capacity t =
  if t.arcs + 2 > Array.length t.nexts then begin
    let cap = Array.length t.nexts * 2 in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.arcs;
      b
    in
    t.nexts <- grow t.nexts (-1);
    t.dsts <- grow t.dsts 0;
    t.caps <- grow t.caps 0;
    t.orig_caps <- grow t.orig_caps 0
  end

let push_arc t u v c =
  let idx = t.arcs in
  t.dsts.(idx) <- v;
  t.caps.(idx) <- c;
  t.orig_caps.(idx) <- c;
  t.nexts.(idx) <- t.heads.(u);
  t.heads.(u) <- idx;
  t.arcs <- idx + 1

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  ensure_capacity t;
  let handle = t.arcs in
  push_arc t src dst cap;
  push_arc t dst src 0;
  handle

let flow_on t handle =
  if handle < 0 || handle >= t.arcs then invalid_arg "Maxflow.flow_on: bad handle";
  t.orig_caps.(handle) - t.caps.(handle)

let snapshot t = Array.sub t.caps 0 t.arcs

let restore t saved =
  if Array.length saved <> t.arcs then
    invalid_arg "Maxflow.restore: snapshot taken on a different arc count";
  Array.blit saved 0 t.caps 0 t.arcs

let cancel t handle units =
  if handle < 0 || handle >= t.arcs then invalid_arg "Maxflow.cancel: bad handle";
  if units < 0 || units > flow_on t handle then
    invalid_arg "Maxflow.cancel: units exceed the arc's flow";
  t.caps.(handle) <- t.caps.(handle) + units;
  t.caps.(handle lxor 1) <- t.caps.(handle lxor 1) - units

let disable t handle =
  if handle < 0 || handle >= t.arcs then invalid_arg "Maxflow.disable: bad handle";
  t.caps.(handle) <- 0;
  t.caps.(handle lxor 1) <- 0

(* Dinic: BFS level graph + DFS blocking flows. *)
let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n (-1) in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 t.n (-1);
    Queue.clear queue;
    level.(source) <- 0;
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let a = ref t.heads.(u) in
      while !a <> -1 do
        let v = t.dsts.(!a) in
        if t.caps.(!a) > 0 && level.(v) = -1 then begin
          level.(v) <- level.(u) + 1;
          Queue.push v queue
        end;
        a := t.nexts.(!a)
      done
    done;
    level.(sink) <> -1
  in
  let rec dfs u limit =
    if u = sink then limit
    else begin
      let pushed = ref 0 in
      while !pushed = 0 && iter.(u) <> -1 do
        let a = iter.(u) in
        let v = t.dsts.(a) in
        if t.caps.(a) > 0 && level.(v) = level.(u) + 1 then begin
          let got = dfs v (min limit t.caps.(a)) in
          if got > 0 then begin
            t.caps.(a) <- t.caps.(a) - got;
            (* Residual twin is the arc paired at construction: forward arcs
               are even indices, twins odd — a lxor 1 flips between them. *)
            t.caps.(a lxor 1) <- t.caps.(a lxor 1) + got;
            pushed := got
          end
          else iter.(u) <- t.nexts.(a)
        end
        else iter.(u) <- t.nexts.(a)
      done;
      !pushed
    end
  in
  let total = ref 0 in
  while bfs () do
    Array.blit t.heads 0 iter 0 t.n;
    let rec drain () =
      let got = dfs source max_int in
      if got > 0 then begin
        total := !total + got;
        drain ()
      end
    in
    drain ()
  done;
  !total
