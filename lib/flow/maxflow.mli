(** Dinic's maximum-flow algorithm on directed networks with integer
    capacities. Used for feasibility checks of the WDM assignment network
    (can every connection be covered at all?) before costs are considered. *)

type t

val create : int -> t
(** [create n] builds an empty network on vertices 0..n-1. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Add a directed arc and its residual twin; returns an arc handle usable
    with {!flow_on}. Raises [Invalid_argument] on bad vertices or negative
    capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Value of a maximum source-sink flow. Can be called once per network
    state; subsequent calls continue from the current residual network. *)

val flow_on : t -> int -> int
(** Flow currently routed through an arc handle. *)

(** {2 Incremental editing}

    These let a caller retire edges from a solved network and re-solve
    from the residual state instead of rebuilding the graph — {!max_flow}
    already continues from the current residuals, and the max-flow value
    is a function of the (capacity-edited) graph alone, so a resumed
    solve is exact. *)

val snapshot : t -> int array
(** Copy of the current residual capacities. Only valid for {!restore}
    on the same network with the same arc count. *)

val restore : t -> int array -> unit
(** Reset the residual capacities to a {!snapshot}. Raises
    [Invalid_argument] if arcs were added since the snapshot. *)

val cancel : t -> int -> int -> unit
(** [cancel t h units] removes [units] of flow from arc [h] (refunds the
    forward capacity, debits the residual twin). The caller is
    responsible for restoring conservation by cancelling matching units
    on adjacent arcs. Raises [Invalid_argument] when [units] exceeds the
    arc's current flow. *)

val disable : t -> int -> unit
(** Zero both an arc's forward and residual capacity, so no flow can
    traverse it in either direction. Meant for arcs whose flow was first
    {!cancel}led to zero. *)

val vertex_count : t -> int
