(** Plain-text table rendering for the benchmark harness and CLI. *)

type align = Left | Right

val table :
  ?title:string -> headers:string list -> align:align list -> string list list -> string
(** Render rows as an ASCII table with column alignment. Rows shorter than
    the header are right-padded with empty cells. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point cell (default 2 decimals). *)

val ratio_cell : float -> float -> string
(** [ratio_cell x base] as "0.860"-style 3-decimal ratio; "-" when the
    base is zero. *)

val seconds_cell : ?cap:float -> float -> string
(** Runtime cell; values at or above [cap] print as "> cap" like the
    paper's ">3000" entries. *)

val stage_table : ?title:string -> Operon_engine.Instrument.sink -> string
(** Render a pipeline instrumentation sink as the per-stage
    seconds/counters table the CLI prints under [--trace]. *)

val degradation_summary : Flow.t -> string option
(** Multi-line summary of a degraded run — fault count, quarantined
    nets, solver fallback path, then one line per fault. [None] when
    the run completed without any fault, so callers can print nothing
    on the happy path. *)

val thermal_table : Flow.t -> string option
(** Render the thermal Pareto front — one row per non-dominated point,
    weight / physical power / worst-case margin / choice hash — with the
    map summary as the title. [None] when the run swept no thermal
    scenario. *)
