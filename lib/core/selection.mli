(** Shared machinery for the two candidate-selection engines (Formula 3).

    A {!ctx} precomputes, for the whole design: the candidate arrays, the
    optical bounding box of every hyper net, the Section 3.3 interaction
    neighbourhoods (only nets with overlapping boxes can cross), each
    net's electrical fallback, and the {!Xmatrix} crossing-count cache
    shared by every consumer of the pairwise crossing term. Both the ILP
    and the Lagrangian solver evaluate selections through this context,
    so "feasible" and "power" mean exactly the same thing to both.

    Evaluation comes in two forms: the stateless {!net_path_losses} /
    {!worst_violation} full recompute, and the incremental {!Eval}
    evaluator that tracks one assignment and re-derives only the nets a
    flip actually touched (the flipped net and its neighbours). Both read
    crossing counts through [ctx.xmat] and both produce bit-identical
    floats, cache on or off. *)

open Operon_geom
open Operon_optical

(** Thermal scenario state: per-(net, candidate, path) detuning
    penalties precomputed against a static {!Operon_thermal.Thermal_map},
    the per-candidate worst-path penalty, and the objective weight
    trading power against thermal cost. Path penalties never depend on
    the neighbours' choices (the map is fixed per run), so one profile
    serves a whole Pareto weight ladder and the crossing cache stays
    valid across it. *)
type thermal = {
  penalty : float array array array;
      (** [(i)(j)(p)]: detuning dB added to path [p] of candidate [j] of
          net [i] *)
  tcost : float array array;
      (** [(i)(j)]: worst path penalty of the candidate *)
  weight : float;  (** objective weight on [tcost]; non-negative *)
}

type ctx = {
  params : Params.t;
  cands : Candidate.t array array;  (** candidates per hyper net *)
  bboxes : Rect.t option array;
      (** optical bounding box per net ([None] if no candidate has optical
          geometry) *)
  neighbors : int array array;
      (** nets whose optical boxes overlap this net's box *)
  elec_idx : int array;  (** per net: index of its cheapest pure-electrical
                             candidate — the Formula (3) [a_ie] variable *)
  xmat : Xmatrix.t;
      (** shared crossing-count matrix over the neighbour pairs; a direct
          (uncached) oracle when the context was built with [~cache:false] *)
  thermal : thermal option;
      (** thermal scenario of this context ([None] = the historical,
          temperature-blind model — bit-identical to pre-thermal runs) *)
}

val make_ctx :
  ?exec:Operon_util.Executor.t ->
  ?cache:bool ->
  ?reuse:ctx * bool array ->
  Params.t ->
  Candidate.t list array ->
  ctx
(** Build the selection context. With [cache] (default [true]) the
    crossing matrix is precomputed for every neighbour pair, fanning the
    per-pair work out on [exec] (default sequential — pass the run's
    executor to parallelize). Raises [Invalid_argument] if some net has
    no candidates or lacks a pure-electrical fallback.

    [reuse = (prev, ok)] is the ECO fast path: [ok.(i)] certifies that
    net [i]'s candidate list is physically carried over from the
    preparation that built [prev]. Pairs of carried-over nets answer the
    neighbour test from [prev]'s adjacency (binary search on its sorted
    rows) and share [prev]'s Xmatrix rows; pairs touching a recomputed
    net evaluate the geometry as a cold build would. The resulting
    context is bit-identical to a cold [make_ctx] on the same candidate
    lists. Ignored when the array lengths disagree. *)

val uncached : ctx -> ctx
(** The same context with the crossing cache replaced by a direct
    (recompute-per-query) oracle with fresh counters — identical numbers,
    none of the speed. Used by parity tests and the cache benchmark. *)

val thermal_profile : ctx -> Operon_thermal.Thermal_map.t -> thermal
(** Precompute the detuning penalties of every candidate path against a
    thermal map: per path, one {!Operon_optical.Loss.detuning} term per
    segment, with the worst deviation from [params.t_ref] sampled along
    the segment. The returned profile carries weight 0; attach it with
    {!with_thermal}. Pure-electrical candidates have no optical paths
    and cost 0. *)

val with_thermal : ctx -> thermal -> weight:float -> ctx
(** The same context with the thermal scenario attached at the given
    objective weight. Candidate arrays, neighbourhoods and the crossing
    cache are shared (the penalties are choice-independent). Raises
    [Invalid_argument] on a negative or non-finite weight, or a profile
    built for a different candidate set. *)

val selected : ctx -> int array -> int -> Candidate.t
(** Candidate currently chosen for a net. *)

val power : ctx -> int array -> float
(** Total power of a selection (sum over nets of candidate power). *)

val objective : ctx -> int -> int -> float
(** Selection objective of candidate [j] of net [i]: physical power,
    plus [weight * tcost] when the context carries a thermal scenario.
    Without one this is exactly the candidate's power, so thermal-free
    optimization is bit-identical to the historical behaviour. *)

val total_objective : ctx -> int array -> float
(** Sum of {!objective} over a selection (equals {!power} on a context
    without thermal state). *)

val net_path_losses : ctx -> int array -> int -> float array
(** Actual loss per optical path of a net's chosen candidate: intrinsic
    plus crossing loss against the neighbours' current choices. *)

val worst_violation : ctx -> int array -> float
(** Max over all nets and paths of [loss - l_max]; <= 0 means the whole
    selection meets the detection constraints. *)

val feasible : ctx -> int array -> bool

val worst_path_loss : ctx -> int array -> float
(** Worst single-path loss of a selection under this context's loss
    model (thermal-aware when a scenario is attached); 0.0 when the
    selection has no optical paths. *)

val thermal_margin : ctx -> int array -> float
(** [l_max - worst_path_loss]: how much detection budget the worst path
    leaves unspent. On a thermal context this is the worst-case thermal
    margin the Pareto sweep trades power against. *)

val all_electrical : ctx -> int array
(** The always-feasible selection that picks every net's fallback. *)

val greedy : ctx -> int array
(** Min-power candidate per net, ignoring crossing coupling (intrinsic
    feasibility is guaranteed by construction). May be infeasible. *)

val sanitize_initial : ctx -> int array -> int array option
(** Map a warm-start vector from a previous run onto this context: wrong
    length is unusable ([None]); out-of-range candidate indices (a net
    whose candidate set shrank since) fall back to that net's electrical
    candidate. Shared by the ILP and LR selectors' ECO warm starts. *)

(** Incremental evaluation of one evolving assignment.

    An {!Eval.t} owns a private copy of a choice vector together with the
    per-net path-loss arrays of that assignment. {!Eval.set} flips one
    net's candidate and marks just the affected nets — the flipped net
    and its neighbours — for re-derivation; every read re-derives a dirty
    net with the {e same} canonical function the full recompute uses, so
    an [Eval] never disagrees with {!net_path_losses} /
    {!worst_violation} on the same assignment, bit for bit. The LR
    subgradient loop and the greedy repair both run on top of this. *)
module Eval : sig
  type t

  val create : ctx -> int array -> t
  (** Evaluator positioned at a copy of the given assignment. *)

  val set : t -> int -> int -> unit
  (** [set t i j] flips net [i] to candidate [j] (no-op when already
      there), invalidating the stored losses of [i] and its neighbours. *)

  val get : t -> int -> int
  (** Current candidate index of a net. *)

  val choice : t -> int array
  (** Copy of the current assignment. *)

  val losses : t -> int -> float array
  (** Path losses of a net under the current assignment (re-derived on
      demand if a neighbour flipped). Shared with the evaluator — do not
      mutate. *)

  val power : t -> float

  val worst_violation : t -> float
  (** Equals [worst_violation ctx (choice t)] exactly. *)

  val feasible : t -> bool

  val net_ok : t -> int -> bool
  (** No path of net [i] or of its neighbours exceeds the loss budget. *)

  val recomputes : t -> int
  (** Per-net loss re-derivations performed so far — the incremental
      work metric (a full recompute costs one per net). *)
end

val polish : ?rounds:int -> ?only:int array -> ctx -> int array -> int array
(** Local improvement: first repair (nets on violated paths revert to
    their electrical fallback until feasible), then greedily retry
    cheaper candidates per net while global feasibility holds. Runs on an
    incremental {!Eval}, so each trial flip re-evaluates only the flipped
    net's neighbourhood. The result is always feasible.

    [only] restricts both passes to the given nets, in the given order —
    no other net is ever flipped, though every net's losses participate
    in the feasibility checks. This is the corridor-stitch fix-up of the
    partitioned flow: regional solutions are feasible within their
    regions, so repairing the corridor nets alone restores global
    feasibility. *)
