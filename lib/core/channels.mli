(** Wavelength-channel assignment within WDM waveguides.

    Section 4 of the paper stops at deciding {e which} waveguide carries
    each connection; a physical WDM link additionally needs every bit of
    every connection pinned to a concrete wavelength channel, such that no
    channel of a waveguide is used twice where connections' longitudinal
    spans overlap. Channels may be reused along one waveguide by
    connections whose spans do not overlap (spatial reuse) — this is the
    classic interval-graph colouring, solved optimally by the greedy
    sweep over interval left endpoints.

    This module is an extension beyond the paper's evaluation (the paper
    treats capacity as a scalar), provided because any RTL-down
    implementation needs it; `bench/main.exe ablate` quantifies how much
    spatial reuse buys. *)

open Operon_optical

type grant = {
  conn : int;  (** connection id *)
  track : int;  (** index into the assignment's track array *)
  channels : int array;  (** wavelength indices granted on that track *)
}

type plan = {
  grants : grant array;  (** one per (connection, track) flow *)
  peak_channels : int array;  (** per track: highest channel index + 1 *)
}

exception
  Capacity_error of {
    track : int;  (** offending track index; [-1] when the inconsistency
                      spans a connection's tracks *)
    demand : int;  (** channels demanded at the failing site *)
    detail : string;  (** human-readable description *)
  }
(** Structured capacity failure — what every inconsistency in this
    module raises, so callers (and the pipeline's fault layer) can tell
    a WDM capacity overflow from a programming error and report which
    track overflowed under how much demand. A printer is registered with
    {!Printexc}. *)

val assign : Params.t -> Wdm.conn array -> Assign.result -> plan
(** Colour every flow of the Section 4 result. Guarantees:
    no two overlapping spans on one track share a channel; every granted
    channel index is below the track capacity; a connection split across
    tracks receives exactly its bit count in total. Raises
    {!Capacity_error} if the assignment result is inconsistent with the
    capacities (cannot happen for results produced by {!Assign.run}). *)

val verify : Params.t -> Wdm.conn array -> plan -> (unit, string) result
(** Independent checker used by the tests: re-validates all guarantees
    from scratch. *)

val spatial_reuse : plan -> Assign.result -> float
(** Channels saved by span-aware reuse: [1 - sum(peak) / sum(used)]
    computed against the reuse-free channel demand; 0 when every pair of
    co-track connections overlaps. *)
