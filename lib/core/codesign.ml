open Operon_optical
open Operon_steiner

type state = {
  pow_e : float;
  pow_o : float;
  up_loss : float;
  choices : (int * Candidate.label * int) list;
      (* (child node, edge label, child state index) *)
}

(* Partial accumulator while merging the children of one node. *)
type partial = {
  psum : float;  (* power accumulated from processed children *)
  branch_max : float;  (* worst optical branch loss so far (neg_infinity if none) *)
  n_o : int;  (* optical child edges so far *)
  has_e : bool;  (* any electrical child so far — forces a detector tap in
                    the parent-optical scenario, so partials with and
                    without electrical children are incomparable *)
  pchoices : (int * Candidate.label * int) list;
}

let dominates a b =
  a.pow_e <= b.pow_e && a.pow_o <= b.pow_o && a.up_loss <= b.up_loss

let partial_dominates a b =
  a.psum <= b.psum && a.branch_max <= b.branch_max && a.n_o <= b.n_o
  && ((not a.has_e) || b.has_e)

(* First [n] elements in one traversal — no List.length/List.filteri
   quadratic rescan of the (possibly long) sorted list. *)
let rec take n l =
  if n <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl

(* Keep a Pareto frontier, then cap the list size by ascending score. *)
let prune_generic dominates score cap items =
  let kept =
    List.filter
      (fun x ->
        not
          (List.exists (fun y -> y != x && dominates y x && not (dominates x y)) items))
      items
  in
  (* Among mutually-dominating duplicates keep one representative. *)
  let deduped =
    List.fold_left
      (fun acc x -> if List.exists (fun y -> dominates y x && dominates x y) acc then acc else x :: acc)
      [] kept
  in
  let sorted = List.sort (fun a b -> Float.compare (score a) (score b)) deduped in
  take cap sorted

let state_score s = Float.min s.pow_e s.pow_o

let partial_score p = p.psum

let enumerate ?(max_cands = 16) ?(edge_crossings = fun _ -> 0) params hnet topo =
  let l_max = params.Params.l_max in
  (* Electrical edges cost one wire per bit; conversion sites are shared
     by the whole WDM (see Power). *)
  let unit_e =
    Params.electrical_unit_energy params *. float_of_int hnet.Hypernet.bits
  in
  let n = Topology.node_count topo in
  if n = 1 then [ Candidate.electrical params hnet topo ]
  else begin
    let states = Array.make n [||] in
    List.iter
      (fun v ->
        let children = Topology.children topo v in
        (* Merge children one at a time, expanding each partial by every
           (child state, edge label) pair and pruning dominated partials. *)
        let partials =
          List.fold_left
            (fun partials c ->
              let elec_len = Topology.edge_length Topology.L1 topo c in
              let opt_len = Topology.edge_length Topology.L2 topo c in
              let edge_loss =
                Loss.propagation params opt_len
                +. Loss.crossing_bundled params (edge_crossings c)
              in
              let expanded =
                List.concat_map
                  (fun p ->
                    let opts = ref [] in
                    Array.iteri
                      (fun k (s : state) ->
                        (* electrical edge to child c *)
                        if s.pow_e < infinity then
                          opts :=
                            { psum = p.psum +. s.pow_e +. (unit_e *. elec_len);
                              branch_max = p.branch_max;
                              n_o = p.n_o;
                              has_e = true;
                              pchoices = (c, Candidate.Electrical, k) :: p.pchoices }
                            :: !opts;
                        (* optical edge to child c *)
                        if s.pow_o < infinity then begin
                          let branch = edge_loss +. s.up_loss in
                          if branch <= l_max then
                            opts :=
                              { psum = p.psum +. s.pow_o;
                                branch_max = Float.max p.branch_max branch;
                                n_o = p.n_o + 1;
                                has_e = p.has_e;
                                pchoices = (c, Candidate.Optical, k) :: p.pchoices }
                              :: !opts
                        end)
                      states.(c);
                    !opts)
                  partials
              in
              prune_generic partial_dominates partial_score (4 * max_cands) expanded)
            [ { psum = 0.0; branch_max = neg_infinity; n_o = 0; has_e = false;
                pchoices = [] } ]
            children
        in
        (* Finalize: attach the conversion devices at v for each scenario. *)
        let is_term = Topology.is_terminal topo v in
        let finalized =
          List.map
            (fun p ->
              let pow_e =
                if p.n_o = 0 then p.psum
                else begin
                  let closed = p.branch_max +. Loss.splitting_arm params p.n_o in
                  if closed > l_max then infinity
                  else p.psum +. params.Params.p_mod
                end
              in
              let tap = is_term || p.has_e in
              let arms = p.n_o + if tap then 1 else 0 in
              let pow_o, up_loss =
                if arms = 0 then (infinity, infinity)
                else begin
                  let base = if tap then Float.max p.branch_max 0.0 else p.branch_max in
                  let up = Loss.splitting_arm params arms +. base in
                  if up > l_max then (infinity, infinity)
                  else (p.psum +. (if tap then params.Params.p_det else 0.0), up)
                end
              in
              { pow_e; pow_o; up_loss; choices = p.pchoices })
            partials
        in
        let live = List.filter (fun s -> s.pow_e < infinity || s.pow_o < infinity) finalized in
        states.(v) <- Array.of_list (prune_generic dominates state_score max_cands live))
      (Topology.postorder topo);
    (* Harvest the root's parent-electrical scenarios and rebuild labels. *)
    let root = Topology.root topo in
    let labelings = ref [] in
    Array.iter
      (fun s ->
        if s.pow_e < infinity then begin
          let labels = Array.make n Candidate.Electrical in
          let rec apply (s : state) =
            List.iter
              (fun (c, lbl, k) ->
                labels.(c) <- lbl;
                apply states.(c).(k))
              s.choices
          in
          apply s;
          labelings := (s.pow_e, Array.copy labels) :: !labelings
        end)
      states.(root);
    let cands =
      List.map
        (fun (_, labels) -> Candidate.of_labels params hnet topo labels)
        !labelings
    in
    List.sort (fun a b -> Float.compare a.Candidate.power b.Candidate.power) cands
  end

let dp_power_of (c : Candidate.t) = c.Candidate.power

let label_key (c : Candidate.t) =
  let buf = Buffer.create (Array.length c.labels + 8) in
  Buffer.add_string buf (string_of_int (Topology.node_count c.topo));
  Buffer.add_char buf ':';
  Array.iter
    (fun l -> Buffer.add_char buf (match l with Candidate.Optical -> 'O' | Candidate.Electrical -> 'E'))
    c.labels;
  (* Distinguish same label strings on different topologies. *)
  Buffer.add_string buf (Printf.sprintf ":%0.6f" (Topology.length Topology.L2 c.topo));
  Buffer.contents buf

type gen_stats = { raw : int; deduped : int; kept : int }

type xcounts = int array array

(* The queried segments of one hyper net are a pure function of its
   terminals: every non-root node's parent edge, over every baseline
   topology, in Bi1s.baselines order. Materializing the counts up front
   (instead of letting the DP query lazily) pins that order down, which
   is what lets an ECO re-preparation patch a cached count table with
   only the changed nets' contributions and replay the DP bit-exactly. *)
let crossing_counts ~crossing_est (hnet : Hypernet.t) : xcounts =
  let terminals = Hypernet.centers hnet in
  if Array.length terminals <= 1 then [||]
  else
    Array.of_list
      (List.map
         (fun topo ->
           let root = Topology.root topo in
           Array.init (Topology.node_count topo) (fun v ->
               if v = root then 0
               else crossing_est (Topology.segment_of_edge topo v)))
         (Bi1s.baselines terminals ~root:0))

let adjust_counts ~sub ~add (hnet : Hypernet.t) (cached : xcounts) =
  let terminals = Hypernet.centers hnet in
  if Array.length terminals <= 1 then
    if cached = [||] then Some [||] else None
  else begin
    let baselines = Bi1s.baselines terminals ~root:0 in
    if List.length baselines <> Array.length cached then None
    else
      try
        Some
          (Array.of_list
             (List.mapi
                (fun ti topo ->
                  let xc = cached.(ti) in
                  let n = Topology.node_count topo in
                  if Array.length xc <> n then raise Exit;
                  let root = Topology.root topo in
                  Array.init n (fun v ->
                      if v = root then xc.(v)
                      else
                        let s = Topology.segment_of_edge topo v in
                        xc.(v) - sub s + add s))
                baselines))
      with Exit -> None
  end

let for_hypernet_counted ?(max_cands = 16) ?(max_total = 10) ~(counts : xcounts)
    params hnet =
  let terminals = Hypernet.centers hnet in
  if Array.length terminals <= 1 then begin
    let topo = Bi1s.mst_tree Topology.L2 terminals ~root:0 in
    ([ Candidate.electrical params hnet topo ], { raw = 1; deduped = 1; kept = 1 })
  end
  else begin
    let baselines = Bi1s.baselines terminals ~root:0 in
    if List.length baselines <> Array.length counts then
      invalid_arg "Codesign.for_hypernet_counted: counts shape mismatch";
    let from_dp =
      List.concat
        (List.mapi
           (fun ti topo ->
             let xc = counts.(ti) in
             if Array.length xc <> Topology.node_count topo then
               invalid_arg "Codesign.for_hypernet_counted: counts shape mismatch";
             enumerate ~max_cands ~edge_crossings:(fun v -> xc.(v)) params hnet
               topo)
           baselines)
    in
    (* Dedicated rectilinear-Steiner electrical fallback: the best
       realisation of the a_ie variable. *)
    let rsmt_elec = Candidate.electrical params hnet (Rsmt.tree terminals ~root:0) in
    let all = rsmt_elec :: from_dp in
    (* Deduplicate identical labellings. *)
    let seen = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun c ->
          let key = label_key c in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        all
    in
    let sorted =
      List.sort (fun a b -> Float.compare a.Candidate.power b.Candidate.power) uniq
    in
    let best_electrical =
      List.fold_left
        (fun acc (c : Candidate.t) ->
          if not c.Candidate.pure_electrical then acc
          else
            match acc with
            | Some (b : Candidate.t) when b.Candidate.power <= c.Candidate.power -> acc
            | _ -> Some c)
        None sorted
    in
    let truncated = take max_total sorted in
    (* Guarantee the electrical fallback survives truncation. *)
    let kept =
      match best_electrical with
      | Some e when not (List.memq e truncated) -> truncated @ [ e ]
      | _ -> truncated
    in
    ( kept,
      { raw = List.length all;
        deduped = List.length uniq;
        kept = List.length kept } )
  end

let for_hypernet_stats ?max_cands ?max_total ?(crossing_est = fun _ -> 0)
    params hnet =
  let counts = crossing_counts ~crossing_est hnet in
  for_hypernet_counted ?max_cands ?max_total ~counts params hnet

let for_hypernet ?max_cands ?max_total ?crossing_est params hnet =
  fst (for_hypernet_stats ?max_cands ?max_total ?crossing_est params hnet)

let electrical_only params hnet =
  let terminals = Hypernet.centers hnet in
  if Array.length terminals <= 1 then
    [ Candidate.electrical params hnet (Bi1s.mst_tree Topology.L2 terminals ~root:0) ]
  else [ Candidate.electrical params hnet (Rsmt.tree terminals ~root:0) ]
