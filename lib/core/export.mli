(** JSON export of a synthesized design.

    Serializes a {!Flow.t} — selected routes with their labels, conversion
    sites, power breakdown, loss, WDM tracks and per-connection flows —
    into a self-contained JSON document that downstream tooling (layout
    viewers, power integrity, scripts) can consume. Hand-rolled writer,
    no external dependencies; numbers use enough digits to round-trip. *)

val flow_to_json : ?channels:Channels.plan -> Flow.t -> string
(** The full result as a JSON object with fields [design], [hypernets],
    [routes], [wdm], [trace], [degradation] and optionally [channels]. *)

val degradation_to_json : Flow.t -> string
(** Just the degradation summary object: [faults] (stage, net, kind,
    detail per entry), [quarantined_nets] and [solver_path]. Also
    embedded in {!flow_to_json} and reused by the bench results file. *)

val trace_to_json : Operon_engine.Instrument.sink -> string
(** Instrumentation sink as a JSON array of per-stage records
    ([stage], [seconds], [counters]) — also reused by the bench
    harness's machine-readable results file. *)

val write_file : string -> string -> unit
(** [write_file path contents] — convenience used by the CLI. *)
