(** JSON export of a synthesized design.

    Serializes a {!Flow.t} — selected routes with their labels, conversion
    sites, power breakdown, loss, WDM tracks and per-connection flows —
    into a self-contained JSON document that downstream tooling (layout
    viewers, power integrity, scripts) can consume. Hand-rolled writer,
    no external dependencies; numbers use enough digits to round-trip. *)

val schema_version : int
(** Version of the export document layout, emitted as the
    [schema_version] field. History: 1 = original export, 2 = added
    [degradation], 3 = added [schema_version] itself and the [cache]
    block, 4 = the [design] block carries the full pin coordinates with
    exact ([%.17g]) round-trip, making an export a self-contained ECO
    baseline ([--eco-from]), 5 = ILP runs emit a [solver] block
    ([proven], [components], [timed_out], [nodes], [lp_solves],
    [pivots], [refactorizations], [seconds]) alongside the trace,
    6 = thermal Pareto sweeps emit a [thermal] block ([map], [swept],
    [dropped], [front] with one (weight, power, margin_db, hash, choice)
    object per non-dominated point); absent on plain runs,
    7 = partitioned runs emit a timings-gated [partition] block
    ([regions], [largest_region], [corridor_nets], [cut_pairs],
    [total_pairs], [boundary_components], [cut_fraction],
    [stitch_changed], [plan_seconds], [stitch_seconds]); absent on flat
    runs and on [~timings:false] exports. Bump
    on any breaking change; see README for the full schema. *)

val flow_to_json : ?channels:Channels.plan -> ?timings:bool -> Flow.t -> string
(** The full result as a JSON object with fields [schema_version],
    [design], [hypernets], [routes], [wdm], [trace], [solver] (ILP runs
    only), [thermal] (Pareto-swept runs only), [partition] (partitioned
    runs with timings only), [degradation], [cache]
    and optionally [channels]. With
    [~timings:false] the wall-clock-dependent parts are omitted — no
    [trace], [solver] or [partition] fields (pivot counts are
    core-specific; partitioned no-timings exports byte-compare to flat
    ones), no [seconds] inside the [thermal] block, and the
    [cache] block carries only [enabled]/[pairs]/[entries] — so the
    document is a pure function of (design, configuration): two runs of
    the same job, whether single-shot or served from the batch service,
    produce byte-identical output, whichever [jobs] count or solver core
    ran them. *)

val cache_to_json : ?timings:bool -> Xmatrix.stats -> string
(** The crossing-matrix statistics block: [enabled], [pairs], [entries],
    [build_seconds], [hits], [misses]. Embedded in {!flow_to_json} and
    reused by the bench results file. [~timings:false] keeps only the
    deterministic [enabled]/[pairs]/[entries] fields. *)

val degradation_to_json : Flow.t -> string
(** Just the degradation summary object: [faults] (stage, net, kind,
    detail per entry), [quarantined_nets] and [solver_path]. Also
    embedded in {!flow_to_json} and reused by the bench results file. *)

val trace_to_json : Operon_engine.Instrument.sink -> string
(** Instrumentation sink as a JSON array of per-stage records
    ([stage], [seconds], [counters]) — also reused by the bench
    harness's machine-readable results file. *)

val write_file : string -> string -> unit
(** [write_file path contents] — convenience used by the CLI. *)
