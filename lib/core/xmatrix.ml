open Operon_geom
open Operon_optical
open Operon_util

type stats = {
  enabled : bool;
  pairs : int;
  entries : int;
  build_seconds : float;
  hits : int;
  misses : int;
}

(* Live counters; [stats] snapshots them. Coordinator-domain only. *)
type counters = { mutable hits : int; mutable misses : int }

type table = {
  (* rows.(i).(k).(j).(n) = per-path crossing counts of candidate (i, j)
     against candidate (neighbors.(i).(k), n); [None] rows are all-zero
     and resolve to the shared [zeros.(i).(j)] array. *)
  rows : int array option array array array array;
  pos : (int, int) Hashtbl.t array;  (* net i -> neighbour id -> slot k *)
  zeros : int array array array;  (* i -> j -> canonical all-zero counts *)
  pairs : int;
  entries : int;
  reused : int;  (* directed pairs whose row came from a previous table *)
  build_seconds : float;
}

type t = {
  cands : Candidate.t array array;
  table : table option;  (* [None] = direct (uncached) mode *)
  counters : counters;
}

let compute_counts cands i j m n =
  let c = cands.(i).(j) and other = cands.(m).(n) in
  Array.init (Array.length c.Candidate.paths) (fun p ->
      Segment.count_crossings c.Candidate.paths.(p).Candidate.segments
        other.Candidate.opt_segments)

(* One directed pair (i, m): counts for every candidate pair, sparsified. *)
let build_pair cands i m =
  let ni = Array.length cands.(i) and nm = Array.length cands.(m) in
  Array.init ni (fun j ->
      let c = cands.(i).(j) in
      let npaths = Array.length c.Candidate.paths in
      Array.init nm (fun n ->
          let other = cands.(m).(n) in
          if npaths = 0 || Array.length other.Candidate.opt_segments = 0 then None
          else
            let counts = compute_counts cands i j m n in
            if Array.for_all (fun x -> x = 0) counts then None else Some counts))

let build ?(exec = Executor.sequential) ?reuse cands neighbors =
  let t0 = Timer.now () in
  (* ECO row sharing: a directed pair (i, m) whose two candidate arrays
     were carried over unchanged has bit-identical crossing geometry, so
     the previous table's row (an immutable array, safe to alias) is the
     row a fresh build would produce. Pairs absent from the previous
     adjacency — or involving any recomputed net — are built from the
     geometry as usual. *)
  let prev_row =
    match reuse with
    | Some ({ table = Some ptb; _ }, keep) ->
        fun i m ->
          if keep i m then
            match Hashtbl.find_opt ptb.pos.(i) m with
            | Some k -> Some ptb.rows.(i).(k)
            | None -> None
          else None
    | _ -> fun _ _ -> None
  in
  let tasks =
    Array.concat
      (Array.to_list
         (Array.mapi (fun i ms -> Array.map (fun m -> (i, m)) ms) neighbors))
  in
  let reused =
    Array.fold_left
      (fun acc (i, m) -> if Option.is_some (prev_row i m) then acc + 1 else acc)
      0 tasks
  in
  let built =
    Executor.parallel_map exec
      (fun (i, m) ->
        match prev_row i m with
        | Some row -> row
        | None -> build_pair cands i m)
      tasks
  in
  let n = Array.length cands in
  let rows = Array.map (fun ms -> Array.make (Array.length ms) [||]) neighbors in
  let pos =
    Array.map
      (fun ms ->
        let h = Hashtbl.create (Stdlib.max 1 (Array.length ms)) in
        Array.iteri (fun k m -> Hashtbl.replace h m k) ms;
        h)
      neighbors
  in
  let entries = ref 0 in
  Array.iteri
    (fun t (i, m) ->
      let k = Hashtbl.find pos.(i) m in
      rows.(i).(k) <- built.(t);
      Array.iter
        (Array.iter (function Some _ -> incr entries | None -> ()))
        built.(t))
    tasks;
  let zeros =
    Array.init n (fun i ->
        Array.map
          (fun (c : Candidate.t) -> Array.make (Array.length c.Candidate.paths) 0)
          cands.(i))
  in
  { cands;
    table =
      Some
        { rows;
          pos;
          zeros;
          pairs = Array.length tasks;
          entries = !entries;
          reused;
          build_seconds = Timer.now () -. t0 };
    counters = { hits = 0; misses = 0 } }

let direct cands = { cands; table = None; counters = { hits = 0; misses = 0 } }

let enabled t = t.table <> None

let path_counts t ~i ~j ~m ~n =
  match t.table with
  | Some tb -> (
      match Hashtbl.find_opt tb.pos.(i) m with
      | Some k ->
          t.counters.hits <- t.counters.hits + 1;
          (match tb.rows.(i).(k).(j).(n) with
           | Some counts -> counts
           | None -> tb.zeros.(i).(j))
      | None ->
          (* Not a neighbour pair: fall through to the geometry. *)
          t.counters.misses <- t.counters.misses + 1;
          compute_counts t.cands i j m n)
  | None ->
      t.counters.misses <- t.counters.misses + 1;
      compute_counts t.cands i j m n

let count t ~i ~j ~p ~m ~n =
  match t.table with
  | Some _ -> (path_counts t ~i ~j ~m ~n).(p)
  | None ->
      t.counters.misses <- t.counters.misses + 1;
      Segment.count_crossings
        t.cands.(i).(j).Candidate.paths.(p).Candidate.segments
        t.cands.(m).(n).Candidate.opt_segments

let loss_on_path t params ~i ~j ~p ~m ~n =
  Loss.crossing_bundled params (count t ~i ~j ~p ~m ~n)

let stats t =
  let pairs, entries, build_seconds =
    match t.table with
    | Some tb -> (tb.pairs, tb.entries, tb.build_seconds)
    | None -> (0, 0, 0.0)
  in
  { enabled = t.table <> None;
    pairs;
    entries;
    build_seconds;
    hits = t.counters.hits;
    misses = t.counters.misses }

let reused_rows t = match t.table with Some tb -> tb.reused | None -> 0

let reset_counters t =
  t.counters.hits <- 0;
  t.counters.misses <- 0
