open Operon_geom

type status = Clean | Dirty | InteractionDirty | Added

let status_name = function
  | Clean -> "clean"
  | Dirty -> "dirty"
  | InteractionDirty -> "interaction_dirty"
  | Added -> "added"

type t = {
  compatible : bool;
  status : status array;
  closure : bool array;
  n_clean : int;
  n_dirty : int;
  n_interaction : int;
  n_added : int;
  n_removed : int;
}

(* Content key of one hyper net. %h renders the exact bit pattern of
   every float, mirroring the Registry fingerprint discipline: two hyper
   nets share a key iff they are indistinguishable to every downstream
   stage (baselines, co-design, selection all read only these fields). *)
let hnet_key (h : Hypernet.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "id=%d;group=%d;bits=%d;root=%d" h.Hypernet.id
       h.Hypernet.group h.Hypernet.bits h.Hypernet.root);
  Array.iter
    (fun (p : Hypernet.hyper_pin) ->
      Buffer.add_string buf
        (Printf.sprintf "|%h,%h,%d,%d" p.Hypernet.center.Point.x
           p.Hypernet.center.Point.y p.Hypernet.pin_count
           p.Hypernet.source_count))
    h.Hypernet.pins;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let closure_size t =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.closure

let diff ?neighbors (old_hnets : Hypernet.t array) (new_hnets : Hypernet.t array) =
  let n_old = Array.length old_hnets in
  let n_new = Array.length new_hnets in
  let matched = Stdlib.min n_old n_new in
  let status = Array.make n_new Added in
  let changed_matched = ref [] in
  for i = 0 to matched - 1 do
    if hnet_key old_hnets.(i) = hnet_key new_hnets.(i) then status.(i) <- Clean
    else begin
      status.(i) <- Dirty;
      changed_matched := i :: !changed_matched
    end
  done;
  (* Geometry that appeared, moved or vanished. A clean net whose pin
     bbox overlaps any of these regions may see different baseline
     segments in its crossing estimates, so it joins the closure. *)
  let changed_boxes = ref [] in
  List.iter
    (fun i ->
      changed_boxes :=
        Hypernet.bbox old_hnets.(i) :: Hypernet.bbox new_hnets.(i)
        :: !changed_boxes)
    !changed_matched;
  for i = matched to n_new - 1 do
    changed_boxes := Hypernet.bbox new_hnets.(i) :: !changed_boxes
  done;
  for i = matched to n_old - 1 do
    changed_boxes := Hypernet.bbox old_hnets.(i) :: !changed_boxes
  done;
  let interaction = Array.make n_new false in
  (* Crossing-pair closure, part 1: every previous Xmatrix neighbour of a
     changed or removed net interacted with geometry that moved. *)
  (match neighbors with
   | None -> ()
   | Some nb ->
       let mark_neighbors_of i =
         if i < Array.length nb then
           Array.iter
             (fun m -> if m < n_new && status.(m) = Clean then interaction.(m) <- true)
             nb.(i)
       in
       List.iter mark_neighbors_of !changed_matched;
       for i = matched to n_old - 1 do
         mark_neighbors_of i
       done);
  (* Part 2: bbox overlap against any changed region (old or new),
     covering nets whose baseline-crossing estimates could shift even
     without a previously cached crossing pair. The changed regions go
     into a spatial index queried once per clean net, replacing the
     clean-nets × changed-boxes linear product. *)
  (match !changed_boxes with
   | [] -> ()
   | boxes ->
       let cidx = Overlap.build (Array.of_list boxes) in
       Array.iteri
         (fun i s ->
           if s = Clean && not interaction.(i) then
             let bi = Hypernet.bbox new_hnets.(i) in
             if Overlap.overlaps_any cidx bi then interaction.(i) <- true)
         status);
  let closure =
    Array.mapi (fun i s -> s <> Clean || interaction.(i)) status
  in
  let n_clean = ref 0 and n_dirty = ref 0 and n_interaction = ref 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Clean -> if interaction.(i) then incr n_interaction else incr n_clean
      | Dirty -> incr n_dirty
      | InteractionDirty | Added -> ())
    status;
  let status =
    Array.mapi
      (fun i s -> if s = Clean && interaction.(i) then InteractionDirty else s)
      status
  in
  { compatible = n_old = n_new;
    status;
    closure;
    n_clean = !n_clean;
    n_dirty = !n_dirty;
    n_interaction = !n_interaction;
    n_added = n_new - matched;
    n_removed = n_old - matched }
