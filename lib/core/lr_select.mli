(** Lagrangian-Relaxation candidate selection (paper Section 3.4,
    Algorithm 1).

    The detection constraints (3c) are relaxed into the objective with one
    Lagrangian multiplier per source-to-sink path (Formula 4). Each
    iteration:

    + every hyper net independently picks the candidate with the best
      weighted cost — its own power plus multiplier-weighted intrinsic
      loss plus the crossing terms linearized around the previous
      iterate per Eq. (5) [a*b ~ a'*b + a*b'];
    + path violations are measured against the actual selection;
    + multipliers are updated by a diminishing-step subgradient rule.

    Convergence follows the paper: stop when both the power and the
    violation total change by less than a preset ratio, or after 10
    iterations. A final repair pass demotes any still-violating net to
    its electrical fallback, so the result is always feasible; because
    subgradient iterates are not monotone, the best feasible selection
    seen across iterations is returned when it beats the repaired final
    iterate. *)

type result = {
  choice : int array;
  power : float;
  iterations : int;
  final_violation : float;  (** worst path violation before repair, dB *)
  demoted : int;  (** nets forced to electrical by the repair pass *)
  elapsed : float;
}

val select :
  ?max_iterations:int ->
  ?budget_seconds:float ->
  ?initial_multiplier_scale:float ->
  ?step_scale:float ->
  ?converge_ratio:float ->
  ?initial:int array ->
  Selection.ctx ->
  result
(** [initial] warm-starts the subgradient trajectory from a previous
    selection (ECO resubmission): indices out of range for this context
    fall back to the net's electrical candidate, and a warm start that is
    not feasible here is discarded in favour of the cold greedy start.

    Defaults follow the paper: [max_iterations]=10, multipliers
    initialised proportionally to the electrical power of each net
    ([initial_multiplier_scale]=0.01 of [p_e] per dB), subgradient step
    [step_scale]=0.05 diminishing as 1/k, [converge_ratio]=0.01.
    [budget_seconds] additionally caps the subgradient loop by
    wall-clock (0, the default, means unlimited); the repair pass always
    runs, so the result is feasible even at 0 completed iterations. *)
