open Operon_geom
open Operon_optical
open Operon_steiner

(* --- minimal JSON writer --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ escape s ^ "\""

let jfloat v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let jlist items = "[" ^ String.concat "," items ^ "]"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let jpoint (p : Point.t) = jobj [ ("x", jfloat p.Point.x); ("y", jfloat p.Point.y) ]

let jsegment (s : Segment.t) =
  jobj [ ("a", jpoint s.Segment.a); ("b", jpoint s.Segment.b) ]

(* --- serialization --- *)

let jcandidate (c : Candidate.t) =
  let labels =
    Topology.edges c.Candidate.topo
    |> List.map (fun (parent, child) ->
           jobj
             [ ("from", jpoint (Topology.position c.Candidate.topo parent));
               ("to", jpoint (Topology.position c.Candidate.topo child));
               ( "medium",
                 jstr
                   (match c.Candidate.labels.(child) with
                    | Candidate.Optical -> "optical"
                    | Candidate.Electrical -> "electrical") ) ])
  in
  let sites nodes =
    Array.to_list nodes
    |> List.map (fun v -> jpoint (Topology.position c.Candidate.topo v))
  in
  jobj
    [ ("power", jfloat c.Candidate.power);
      ("conversion_power", jfloat c.Candidate.conversion_power);
      ("wiring_power", jfloat c.Candidate.wiring_power);
      ("max_intrinsic_loss_db", jfloat c.Candidate.max_intrinsic_loss);
      ("pure_electrical", string_of_bool c.Candidate.pure_electrical);
      ("modulators", jlist (sites c.Candidate.mod_nodes));
      ("detectors", jlist (sites c.Candidate.det_nodes));
      ("edges", jlist labels) ]

let jtrack (t : Wdm.track) =
  jobj
    [ ( "orientation",
        jstr (match t.Wdm.orient with Wdm.Horizontal -> "horizontal" | Wdm.Vertical -> "vertical") );
      ("coord", jfloat t.Wdm.coord);
      ("span", jlist [ jfloat t.Wdm.lo; jfloat t.Wdm.hi ]);
      ("capacity", string_of_int t.Wdm.capacity);
      ("used", string_of_int t.Wdm.used) ]

let trace_to_json sink =
  let open Operon_engine in
  jlist
    (Instrument.records sink
    |> List.map (fun (r : Instrument.record) ->
           jobj
             [ ("stage", jstr (Instrument.stage_name r.Instrument.stage));
               ("seconds", jfloat r.Instrument.seconds);
               ( "counters",
                 jobj
                   (List.map
                      (fun (k, v) -> (k, string_of_int v))
                      (Instrument.counters r)) ) ]))

let jfault (f : Operon_engine.Fault.t) =
  let open Operon_engine in
  jobj
    ([ ("stage", jstr (Instrument.stage_name f.Fault.stage)) ]
    @ (match f.Fault.net with
       | Some id -> [ ("net", string_of_int id) ]
       | None -> [])
    @ [ ("kind", jstr (Fault.kind_name f.Fault.kind));
        ("detail", jstr f.Fault.detail) ])

let degradation_to_json (r : Flow.t) =
  jobj
    [ ("faults", jlist (List.map jfault r.Flow.faults));
      ( "quarantined_nets",
        jlist (Array.to_list r.Flow.quarantined_nets |> List.map string_of_int) );
      ("solver_path", jstr r.Flow.solver_path) ]

(* Schema history: 1 = original export, 2 = added "degradation",
   3 = added "schema_version" itself and the "cache" block,
   4 = the "design" block carries the full pin coordinates (exact %.17g
   round-trip), so an export is a self-contained ECO baseline,
   5 = ILP runs emit a "solver" block (nodes/lp_solves/pivots/
   refactorizations) alongside the trace,
   6 = thermal Pareto sweeps emit a "thermal" block (map summary plus
   the (power, margin, hash, choice) front); absent on plain runs, so
   weight-0 / map-free exports stay byte-comparable to historical
   ones,
   7 = partitioned runs emit a "partition" block (region/corridor/cut
   shape plus plan and stitch seconds). The block rides with the
   timings: a no-timings partitioned export stays byte-comparable to
   the flat flow's, which is exactly the parity the partition-smoke CI
   job diffs. *)
let schema_version = 7

(* Exact float round-trip: 17 significant decimal digits reconstruct any
   binary64 bit pattern, so a re-imported design fingerprints (and
   diffs) identically to the original. *)
let jcoord v = Printf.sprintf "%.17g" v

let jexact_point (p : Point.t) =
  Printf.sprintf "[%s,%s]" (jcoord p.Point.x) (jcoord p.Point.y)

let cache_to_json ?(timings = true) (s : Xmatrix.stats) =
  jobj
    ([ ("enabled", string_of_bool s.Xmatrix.enabled);
       ("pairs", string_of_int s.Xmatrix.pairs);
       ("entries", string_of_int s.Xmatrix.entries) ]
    @
    if timings then
      [ ("build_seconds", jfloat s.Xmatrix.build_seconds);
        ("hits", string_of_int s.Xmatrix.hits);
        ("misses", string_of_int s.Xmatrix.misses) ]
    else [])

let flow_to_json ?channels ?(timings = true) (r : Flow.t) =
  let die = r.Flow.design.Signal.die in
  let design =
    let groups =
      Array.to_list r.Flow.design.Signal.groups
      |> List.map (fun (g : Signal.group) ->
             jobj
               [ ("name", jstr g.Signal.name);
                 ( "bits",
                   jlist
                     (Array.to_list g.Signal.bits
                     |> List.map (fun (b : Signal.bit) ->
                            jobj
                              [ ("source", jexact_point b.Signal.source);
                                ( "sinks",
                                  jlist
                                    (Array.to_list b.Signal.sinks
                                    |> List.map jexact_point) ) ])) ) ])
    in
    jobj
      [ ( "die",
          jobj
            [ ("xmin", jcoord die.Rect.xmin); ("ymin", jcoord die.Rect.ymin);
              ("xmax", jcoord die.Rect.xmax); ("ymax", jcoord die.Rect.ymax) ] );
        ("nets", string_of_int (Signal.net_count r.Flow.design));
        ("groups", jlist groups) ]
  in
  let hypernets =
    Array.to_list r.Flow.hnets
    |> List.map (fun h ->
           jobj
             [ ("id", string_of_int h.Hypernet.id);
               ("group", string_of_int h.Hypernet.group);
               ("bits", string_of_int h.Hypernet.bits);
               ( "pins",
                 jlist
                   (Array.to_list h.Hypernet.pins
                   |> List.map (fun pin -> jpoint pin.Hypernet.center)) ) ])
  in
  let routes =
    Array.to_list r.Flow.choice
    |> List.mapi (fun i j -> jcandidate r.Flow.ctx.Selection.cands.(i).(j))
  in
  let wdm =
    let conns =
      Array.to_list r.Flow.placement.Wdm_place.conns
      |> List.map (fun c ->
             jobj
               [ ("id", string_of_int c.Wdm.id);
                 ("net", string_of_int c.Wdm.net);
                 ("bits", string_of_int c.Wdm.bits);
                 ("segment", jsegment c.Wdm.seg) ])
    in
    let flows =
      Array.to_list r.Flow.assignment.Assign.flows
      |> List.mapi (fun ci f ->
             jobj
               [ ("conn", string_of_int ci);
                 ( "tracks",
                   jlist
                     (List.map
                        (fun (w, bits) ->
                          jobj [ ("track", string_of_int w); ("bits", string_of_int bits) ])
                        f) ) ])
    in
    jobj
      [ ("connections", jlist conns);
        ("tracks", jlist (Array.to_list r.Flow.assignment.Assign.tracks |> List.map jtrack));
        ("flows", jlist flows);
        ("initial_tracks", string_of_int r.Flow.assignment.Assign.initial_count);
        ("final_tracks", string_of_int r.Flow.assignment.Assign.final_count) ]
  in
  let base =
    [ ("schema_version", string_of_int schema_version);
      ("design", design);
      ("mode", jstr (match r.Flow.mode with Flow.Ilp -> "ilp" | Flow.Lr -> "lr"));
      ("power", jfloat r.Flow.power);
      ("hypernets", jlist hypernets);
      ("routes", jlist routes);
      ("wdm", wdm) ]
    @ (if timings then [ ("trace", trace_to_json r.Flow.trace) ] else [])
    (* Solver stats ride with the timings: pivot and refactorization
       counts are core-specific, and no-timings exports must stay
       byte-comparable across cores (the parity CI job diffs them). *)
    @ (match r.Flow.ilp with
       | Some ilp when timings ->
           [ ( "solver",
               jobj
                 [ ("proven", string_of_bool ilp.Ilp_select.proven);
                   ("components", string_of_int ilp.Ilp_select.components);
                   ("timed_out", string_of_int ilp.Ilp_select.timed_out);
                   ("nodes", string_of_int ilp.Ilp_select.nodes);
                   ("lp_solves", string_of_int ilp.Ilp_select.lp_solves);
                   ("pivots", string_of_int ilp.Ilp_select.pivots);
                   ( "refactorizations",
                     string_of_int ilp.Ilp_select.refactorizations );
                   ("seconds", jfloat ilp.Ilp_select.elapsed) ] ) ]
       | _ -> [])
    (* Seconds are timings-gated like the trace; everything else in the
       thermal block is deterministic, so no-timings thermal exports
       byte-compare across job counts. *)
    @ (match r.Flow.thermal with
       | Some th ->
           let jpoint_t (p : Flow.thermal_point) =
             jobj
               ([ ("weight", jfloat p.Flow.tp_weight);
                  ("power", jfloat p.Flow.tp_power);
                  ("margin_db", jfloat p.Flow.tp_margin);
                  ("hash", jstr p.Flow.tp_hash);
                  ( "choice",
                    jlist
                      (Array.to_list p.Flow.tp_choice |> List.map string_of_int)
                  ) ]
               @
               if timings then [ ("seconds", jfloat p.Flow.tp_seconds) ]
               else [])
           in
           [ ( "thermal",
               jobj
                 ([ ("map", jstr th.Flow.tr_map);
                    ("swept", string_of_int th.Flow.tr_swept);
                    ("dropped", string_of_int th.Flow.tr_dropped);
                    ("front", jlist (List.map jpoint_t th.Flow.tr_front)) ]
                 @
                 if timings then [ ("seconds", jfloat th.Flow.tr_seconds) ]
                 else []) ) ]
       | None -> [])
    (* Timings-gated like the trace: region counts are deterministic,
       but the block as a whole exists to explain where the wall-clock
       went, and dropping it keeps no-timings partitioned exports
       byte-identical to flat ones. *)
    @ (match r.Flow.partition with
       | Some p when timings ->
           let cut_fraction =
             if p.Flow.pt_total_pairs = 0 then 0.0
             else
               float_of_int p.Flow.pt_cut_pairs
               /. float_of_int p.Flow.pt_total_pairs
           in
           [ ( "partition",
               jobj
                 [ ("regions", string_of_int p.Flow.pt_regions);
                   ("largest_region", string_of_int p.Flow.pt_largest_region);
                   ("corridor_nets", string_of_int p.Flow.pt_corridor_nets);
                   ("cut_pairs", string_of_int p.Flow.pt_cut_pairs);
                   ("total_pairs", string_of_int p.Flow.pt_total_pairs);
                   ( "boundary_components",
                     string_of_int p.Flow.pt_boundary_components );
                   ("cut_fraction", jfloat cut_fraction);
                   ("stitch_changed", string_of_int p.Flow.pt_stitch_changed);
                   ("plan_seconds", jfloat p.Flow.pt_plan_seconds);
                   ("stitch_seconds", jfloat p.Flow.pt_stitch_seconds) ] ) ]
       | _ -> [])
    @ [ ("degradation", degradation_to_json r);
        ("cache", cache_to_json ~timings r.Flow.cache) ]
  in
  let with_channels =
    match channels with
    | None -> base
    | Some plan ->
        base
        @ [ ( "channels",
              jlist
                (Array.to_list plan.Channels.grants
                |> List.map (fun g ->
                       jobj
                         [ ("conn", string_of_int g.Channels.conn);
                           ("track", string_of_int g.Channels.track);
                           ( "wavelengths",
                             jlist
                               (Array.to_list g.Channels.channels
                               |> List.map string_of_int) ) ])) ) ]
  in
  jobj with_channels

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
