open Operon_optical
open Operon_util

type result = {
  choice : int array;
  power : float;
  iterations : int;
  final_violation : float;
  demoted : int;
  elapsed : float;
}

let select ?(max_iterations = 10) ?(budget_seconds = 0.0)
    ?(initial_multiplier_scale = 0.01) ?(step_scale = 0.05)
    ?(converge_ratio = 0.01) ?initial ctx =
  let t0 = Timer.now () in
  let budget = Timer.budget budget_seconds in
  let params = ctx.Selection.params in
  let l_max = params.Params.l_max in
  let n = Array.length ctx.Selection.cands in
  let xmat = ctx.Selection.xmat in
  let thermal = ctx.Selection.thermal in
  (* One multiplier per (net, candidate, path) — the paths P(Hsol) of
     Formula (4). Initialised proportional to each net's electrical
     power, as Algorithm 1 line 1 prescribes. *)
  let lambda =
    Array.init n (fun i ->
        let pe = ctx.Selection.cands.(i).(ctx.Selection.elec_idx.(i)).Candidate.power in
        Array.map
          (fun (c : Candidate.t) ->
            Array.make (Array.length c.Candidate.paths) (initial_multiplier_scale *. pe))
          ctx.Selection.cands.(i))
  in
  (* Warm start (ECO): a sanitized previous selection replaces the greedy
     start when it is still feasible under this context; an infeasible or
     unmappable one falls back to the cold start, so warm starting can
     never degrade below the cold behaviour. *)
  let start =
    match Option.map (Selection.sanitize_initial ctx) initial with
    | Some (Some w) when Selection.feasible ctx w -> w
    | _ -> Selection.greedy ctx
  in
  let choice = ref start in
  (* Persistent incremental evaluator: across subgradient iterations only
     the nets whose selection actually flipped (plus their neighbours)
     get their path losses re-derived. *)
  let ev = Selection.Eval.create ctx !choice in
  let prev_power = ref (Selection.power ctx !choice) in
  let prev_violation = ref infinity in
  (* The subgradient iterates are not monotone; keep the best feasible
     selection seen along the way. *)
  let best_feasible = ref None in
  let consider candidate =
    if Selection.feasible ctx candidate then begin
      let obj = Selection.total_objective ctx candidate in
      match !best_feasible with
      | Some (best_obj, _) when best_obj <= obj -> ()
      | _ -> best_feasible := Some (obj, Array.copy candidate)
    end
  in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations && not (Timer.expired budget) do
    incr iterations;
    let prev = Array.copy !choice in
    (* Candidate re-selection with the relaxed weighted objective. *)
    let next = Array.make n 0 in
    for i = 0 to n - 1 do
      let best = ref 0 and best_w = ref infinity in
      Array.iteri
        (fun j (c : Candidate.t) ->
          (* Own paths: multiplier-weighted intrinsic loss plus crossing
             against the neighbours' previous selections (the a'_mn * a_ij
             half of Eq. 5). *)
          let own = ref 0.0 in
          Array.iteri
            (fun p (path : Candidate.path) ->
              let crossing =
                Array.fold_left
                  (fun acc m ->
                    acc +. Xmatrix.loss_on_path xmat params ~i ~j ~p ~m ~n:prev.(m))
                  0.0 ctx.Selection.neighbors.(i)
              in
              let path_loss =
                match thermal with
                | None -> path.Candidate.intrinsic_loss +. crossing
                | Some t ->
                    path.Candidate.intrinsic_loss +. crossing
                    +. t.Selection.penalty.(i).(j).(p)
              in
              own := !own +. (lambda.(i).(j).(p) *. path_loss))
            c.Candidate.paths;
          (* Foreign paths: picking (i,j) adds crossings onto neighbours'
             previously selected paths (the a_mn * a'_ij half). *)
          let foreign = ref 0.0 in
          Array.iter
            (fun m ->
              let nsel = prev.(m) in
              let counts = Xmatrix.path_counts xmat ~i:m ~j:nsel ~m:i ~n:j in
              Array.iteri
                (fun p cnt ->
                  foreign :=
                    !foreign +. (lambda.(m).(nsel).(p) *. Loss.crossing_bundled params cnt))
                counts)
            ctx.Selection.neighbors.(i);
          let w = Selection.objective ctx i j +. !own +. !foreign in
          if w < !best_w then begin
            best_w := w;
            best := j
          end)
        ctx.Selection.cands.(i);
      next.(i) <- !best
    done;
    choice := next;
    Array.iteri (fun i j -> Selection.Eval.set ev i j) next;
    (* Subgradient step on every multiplier. A path of the selected
       candidate sees its actual loss; a path of an unselected candidate
       has LHS = 0 in constraint (3c), so its subgradient is -l_max and
       its multiplier decays — without this, an inflated initial
       multiplier would repel a perfectly feasible candidate forever. *)
    let step = step_scale /. float_of_int !iterations in
    let total_violation = ref 0.0 in
    for i = 0 to n - 1 do
      let j = next.(i) in
      let losses = Selection.Eval.losses ev i in
      Array.iteri
        (fun j' paths ->
          Array.iteri
            (fun p mult ->
              let v = if j' = j then losses.(p) -. l_max else -.l_max in
              if v > 0.0 then total_violation := !total_violation +. v;
              paths.(p) <- Float.max 0.0 (mult +. (step *. v)))
            paths)
        lambda.(i)
    done;
    (* Track the best answer this iterate yields once its violations are
       repaired away (repair is a no-op on feasible iterates). *)
    if !total_violation <= 0.0 then consider next
    else consider (Selection.polish ~rounds:0 ctx next);
    let power = Selection.total_objective ctx next in
    let power_stable =
      Float.abs (power -. !prev_power) <= converge_ratio *. Float.max power 1e-9
    in
    let violation_stable =
      Float.abs (!total_violation -. !prev_violation)
      <= converge_ratio *. Float.max !total_violation 1e-9
    in
    if power_stable && violation_stable then converged := true;
    prev_power := power;
    prev_violation := !total_violation
  done;
  let final_violation = Float.max 0.0 (Selection.worst_violation ctx !choice) in
  (* Repair only (rounds=0): any net still on a violated path falls back
     to electrical wires, as the paper's residual-net handling does. *)
  let repaired = Selection.polish ~rounds:0 ctx !choice in
  let demoted =
    let count = ref 0 in
    Array.iteri (fun i j -> if j <> !choice.(i) then incr count) repaired;
    !count
  in
  (* Return the better of the final repaired iterate and the best
     feasible iterate seen during the subgradient loop. *)
  let repaired =
    match !best_feasible with
    | Some (best_obj, best)
      when best_obj < Selection.total_objective ctx repaired -> best
    | _ -> repaired
  in
  { choice = repaired;
    power = Selection.power ctx repaired;
    iterations = !iterations;
    final_violation;
    demoted;
    elapsed = Timer.now () -. t0 }
