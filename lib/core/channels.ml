open Operon_optical

type grant = { conn : int; track : int; channels : int array }

type plan = { grants : grant array; peak_channels : int array }

exception Capacity_error of { track : int; demand : int; detail : string }

let capacity_error ~track ~demand fmt =
  Printf.ksprintf
    (fun detail -> raise (Capacity_error { track; demand; detail }))
    fmt

let () =
  Printexc.register_printer (function
    | Capacity_error { track; demand; detail } ->
        Some
          (Printf.sprintf "Channels.Capacity_error(track %d, demand %d): %s"
             track demand detail)
    | _ -> None)

(* Flows of one track sorted by span start; channels are granted with the
   classic interval-colouring sweep: a channel is reusable once the span
   that last used it has ended. *)
let colour_track params ~track conns flows =
  let capacity = params.Params.wdm_capacity in
  let ordered =
    List.sort
      (fun (c1, _) (c2, _) ->
        let lo1, _ = Wdm.conn_span conns.(c1) in
        let lo2, _ = Wdm.conn_span conns.(c2) in
        Float.compare lo1 lo2)
      flows
  in
  (* free_at.(ch) = longitudinal coordinate after which channel ch is
     reusable; grows on demand up to the capacity. *)
  let free_at = Array.make capacity neg_infinity in
  let peak = ref 0 in
  let grants =
    List.map
      (fun (ci, bits) ->
        let lo, hi = Wdm.conn_span conns.(ci) in
        let granted = ref [] in
        let remaining = ref bits in
        let ch = ref 0 in
        while !remaining > 0 && !ch < capacity do
          if free_at.(!ch) <= lo +. 1e-12 then begin
            granted := !ch :: !granted;
            free_at.(!ch) <- hi;
            decr remaining;
            if !ch + 1 > !peak then peak := !ch + 1
          end;
          incr ch
        done;
        if !remaining > 0 then
          capacity_error ~track ~demand:bits
            "connection %d demands %d channels but track has capacity %d" ci
            bits capacity;
        (ci, Array.of_list (List.rev !granted)))
      ordered
  in
  (grants, !peak)

let assign params conns (result : Assign.result) =
  let ntracks = Array.length result.Assign.tracks in
  (* Regroup the Section 4 flows by track. *)
  let per_track = Array.make ntracks [] in
  Array.iteri
    (fun ci flows ->
      List.iter
        (fun (wi, bits) ->
          if wi < 0 || wi >= ntracks then
            capacity_error ~track:wi ~demand:bits
              "connection %d flow references unknown track %d (of %d)" ci wi
              ntracks;
          per_track.(wi) <- (ci, bits) :: per_track.(wi))
        flows)
    result.Assign.flows;
  let grants = ref [] in
  let peaks = Array.make ntracks 0 in
  Array.iteri
    (fun wi flows ->
      let coloured, peak = colour_track params ~track:wi conns flows in
      peaks.(wi) <- peak;
      List.iter
        (fun (ci, channels) -> grants := { conn = ci; track = wi; channels } :: !grants)
        coloured)
    per_track;
  { grants = Array.of_list (List.rev !grants); peak_channels = peaks }

let verify params conns plan =
  let capacity = params.Params.wdm_capacity in
  let check () =
    (* channel indices within capacity *)
    Array.iter
      (fun g ->
        Array.iter
          (fun ch ->
            if ch < 0 || ch >= capacity then
              capacity_error ~track:g.track ~demand:(Array.length g.channels)
                "connection %d granted out-of-range channel %d" g.conn ch)
          g.channels)
      plan.grants;
    (* no overlapping spans sharing a channel on one track *)
    let by_track = Hashtbl.create 16 in
    Array.iter
      (fun g ->
        let existing = try Hashtbl.find by_track g.track with Not_found -> [] in
        Hashtbl.replace by_track g.track (g :: existing))
      plan.grants;
    Hashtbl.iter
      (fun track grants ->
        let rec pairs = function
          | [] -> ()
          | g :: rest ->
              List.iter
                (fun g' ->
                  let lo, hi = Wdm.conn_span conns.(g.conn) in
                  let lo', hi' = Wdm.conn_span conns.(g'.conn) in
                  let overlap = lo < hi' -. 1e-12 && lo' < hi -. 1e-12 in
                  if overlap then
                    Array.iter
                      (fun ch ->
                        if Array.exists (fun ch' -> ch = ch') g'.channels then
                          capacity_error ~track
                            ~demand:(Array.length g.channels
                                    + Array.length g'.channels)
                            "channel %d shared by overlapping connections %d and %d"
                            ch g.conn g'.conn)
                      g.channels)
                rest;
              pairs rest
        in
        pairs grants)
      by_track;
    (* every connection receives its bit count in total *)
    let received = Hashtbl.create 16 in
    Array.iter
      (fun g ->
        let sofar = try Hashtbl.find received g.conn with Not_found -> 0 in
        Hashtbl.replace received g.conn (sofar + Array.length g.channels))
      plan.grants;
    Hashtbl.iter
      (fun ci got ->
        if got <> conns.(ci).Wdm.bits then
          (* A bit-count mismatch spans the connection's tracks, so no
             single track is at fault: track -1 by convention. *)
          capacity_error ~track:(-1) ~demand:conns.(ci).Wdm.bits
            "connection %d granted %d channels for %d bits" ci got
            conns.(ci).Wdm.bits)
      received
  in
  match check () with
  | () -> Ok ()
  | exception Capacity_error { detail; _ } -> Error detail

let spatial_reuse plan (result : Assign.result) =
  let used = Array.fold_left (fun acc t -> acc + t.Wdm.used) 0 result.Assign.tracks in
  let peak = Array.fold_left ( + ) 0 plan.peak_channels in
  if used <= 0 then 0.0 else 1.0 -. (float_of_int peak /. float_of_int used)
