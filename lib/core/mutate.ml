open Operon_geom
open Operon_util

let group_count ~ratio n =
  if ratio <= 0.0 || n = 0 then 0
  else Stdlib.min n (Stdlib.max 1 (int_of_float (Float.ceil (ratio *. float_of_int n))))

let design ~ratio ~seed (d : Signal.design) =
  let groups = d.Signal.groups in
  let n = Array.length groups in
  let k = group_count ~ratio n in
  if k = 0 then d
  else begin
    let rng = Prng.create seed in
    let order = Array.init n (fun i -> i) in
    Prng.shuffle rng order;
    let chosen = Array.make n false in
    for i = 0 to k - 1 do
      chosen.(order.(i)) <- true
    done;
    let die = d.Signal.die in
    let w = die.Rect.xmax -. die.Rect.xmin in
    let h = die.Rect.ymax -. die.Rect.ymin in
    let clamp lo hi v = Float.min hi (Float.max lo v) in
    let jitter g_rng (p : Point.t) =
      let dx = Prng.float_range g_rng (-0.02 *. w) (0.02 *. w) in
      let dy = Prng.float_range g_rng (-0.02 *. h) (0.02 *. h) in
      { Point.x = clamp die.Rect.xmin die.Rect.xmax (p.Point.x +. dx);
        Point.y = clamp die.Rect.ymin die.Rect.ymax (p.Point.y +. dy) }
    in
    (* Every group gets its own split stream whether or not it is chosen,
       so a chosen group's displacement depends only on (seed, group),
       never on which other groups the ratio swept in. *)
    let groups =
      Array.mapi
        (fun i (g : Signal.group) ->
          let g_rng = Prng.split rng in
          if not chosen.(i) then g
          else
            { g with
              Signal.bits =
                Array.map
                  (fun (b : Signal.bit) ->
                    { Signal.source = jitter g_rng b.Signal.source;
                      Signal.sinks = Array.map (jitter g_rng) b.Signal.sinks })
                  g.Signal.bits })
        groups
    in
    Signal.design ~die ~groups
  end
