type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let table ?title ~headers ~align rows =
  let ncols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let aligns =
    if List.length align >= ncols then align
    else align @ List.init (ncols - List.length align) (fun _ -> Left)
  in
  let render_row cells =
    let parts =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        cells
    in
    "| " ^ String.concat " | " parts ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  (match title with
   | Some t ->
       Buffer.add_string buf t;
       Buffer.add_char buf '\n'
   | None -> ());
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let float_cell ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let ratio_cell x base =
  if base = 0.0 then "-" else Printf.sprintf "%.3f" (x /. base)

let seconds_cell ?(cap = infinity) v =
  if v >= cap then Printf.sprintf "> %.0f" cap else Printf.sprintf "%.1f" v

let degradation_summary (r : Flow.t) =
  match r.Flow.faults with
  | [] -> None
  | faults ->
      let open Operon_engine in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "degraded run: %d fault%s, %d net%s quarantined, solver path %s\n"
           (List.length faults)
           (if List.length faults = 1 then "" else "s")
           (Array.length r.Flow.quarantined_nets)
           (if Array.length r.Flow.quarantined_nets = 1 then "" else "s")
           r.Flow.solver_path);
      List.iter
        (fun f ->
          Buffer.add_string buf "  - ";
          Buffer.add_string buf (Fault.to_string f);
          Buffer.add_char buf '\n')
        faults;
      Some (Buffer.contents buf)

let stage_table ?title sink =
  let open Operon_engine in
  let rows =
    Instrument.records sink
    |> List.map (fun (r : Instrument.record) ->
           [ Instrument.stage_name r.Instrument.stage;
             Printf.sprintf "%.3f" r.Instrument.seconds;
             String.concat "  "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                  (Instrument.counters r)) ])
  in
  let total =
    [ "total"; Printf.sprintf "%.3f" (Instrument.total_seconds sink); "" ]
  in
  table ?title
    ~headers:[ "stage"; "seconds"; "counters" ]
    ~align:[ Left; Right; Left ]
    (rows @ [ total ])

let thermal_table (r : Flow.t) =
  match r.Flow.thermal with
  | None -> None
  | Some th ->
      let rows =
        List.map
          (fun (p : Flow.thermal_point) ->
            [ float_cell ~decimals:2 p.Flow.tp_weight;
              float_cell ~decimals:3 p.Flow.tp_power;
              float_cell ~decimals:3 p.Flow.tp_margin;
              p.Flow.tp_hash ])
          th.Flow.tr_front
      in
      let title =
        Printf.sprintf "%s | front %d/%d (%d dropped)" th.Flow.tr_map
          (List.length th.Flow.tr_front)
          th.Flow.tr_swept th.Flow.tr_dropped
      in
      Some
        (table ~title
           ~headers:[ "weight"; "power"; "margin_db"; "choice" ]
           ~align:[ Right; Right; Right; Left ]
           rows)
