(** Design-wide crossing-matrix cache.

    Crossing loss ([beta * n_x], paper Eq. 2) couples every pair of
    candidate selections in Formula (3): each optical path of a chosen
    candidate pays for the waveguide crossings against every neighbour's
    chosen candidate. The same (path, candidate) crossing counts are
    queried over and over — by the ILP linearization, by every Lagrangian
    subgradient iteration, by the greedy feasibility repair and by the
    post-route signoff. This module computes them {e once}: for every
    neighbour pair of the selection context, the per-path crossing counts
    between every candidate pair are precomputed (Domain-parallel over
    neighbour pairs via {!Operon_util.Executor}) and stored sparsely —
    all-zero rows share one canonical zero array.

    Counts are exact integers, so a loss derived from a cached count
    ([Loss.crossing_bundled] of it) is bit-identical to recomputing the
    geometry from scratch; consumers reading through the matrix make the
    same floating-point decisions as the uncached path, at any [--jobs]
    setting.

    A {!direct} matrix answers the same queries by recomputing the
    geometry per query (every query counts as a miss) — the uncached
    reference mode used by the parity tests and the cache benchmark.

    Like {!Operon_engine.Instrument}, the hit/miss statistics are plain
    mutable state owned by the coordinating domain: queries must not be
    issued from worker domains (the selection engines run on the
    coordinator only; the parallel {e build} mutates nothing shared). *)

open Operon_optical

type t

type stats = {
  enabled : bool;  (** false for a {!direct} matrix *)
  pairs : int;  (** directed neighbour pairs precomputed at build time *)
  entries : int;  (** non-zero candidate-pair rows actually stored *)
  build_seconds : float;  (** wall-clock spent precomputing *)
  hits : int;  (** queries answered from the table *)
  misses : int;  (** queries that recomputed the geometry *)
}

val build :
  ?exec:Operon_util.Executor.t ->
  ?reuse:t * (int -> int -> bool) ->
  Candidate.t array array ->
  int array array ->
  t
(** [build ~exec cands neighbors] precomputes the matrix for every
    directed neighbour pair [(i, m)] with [m] in [neighbors.(i)]. The
    per-pair work fans out on [exec] (default sequential); results are
    merged in deterministic order, so the matrix contents do not depend
    on the backend. [neighbors] must be symmetric (as built by
    [Selection.make_ctx]).

    [reuse = (prev, keep)] is the ECO fast path: when [keep i m] holds —
    the caller certifies both nets' candidate arrays are carried over
    from [prev] unchanged — and [prev] has a row for [(i, m)], that row
    is aliased instead of recomputed. Contents are bit-identical either
    way; only {!reused_rows} and the build time differ. A [direct]
    [prev] contributes nothing. *)

val direct : Candidate.t array array -> t
(** A cache-free matrix over the same candidates: every query recomputes
    [Segment.count_crossings] on the spot and is counted as a miss. *)

val enabled : t -> bool

val path_counts : t -> i:int -> j:int -> m:int -> n:int -> int array
(** Crossings between each optical path of candidate [(i, j)] and the
    optical segments of candidate [(m, n)]; length equals the path count
    of [(i, j)]. The returned array is shared with the cache — do not
    mutate it. *)

val count : t -> i:int -> j:int -> p:int -> m:int -> n:int -> int
(** Single-path variant of {!path_counts}. *)

val loss_on_path : t -> Params.t -> i:int -> j:int -> p:int -> m:int -> n:int -> float
(** [Loss.crossing_bundled params (count ...)] — the Formula (3c) term
    [l_x(i,j,m,n,p)], bit-identical to [Candidate.crossing_loss_on_path]. *)

val stats : t -> stats
(** Immutable snapshot of the matrix statistics at this instant. *)

val reused_rows : t -> int
(** Directed pairs whose row was carried over from a previous matrix via
    [build ~reuse] (0 for a cold build or a {!direct} matrix). Kept out
    of {!stats} deliberately: stats feed the export, and an ECO run's
    export must stay byte-identical to a cold run's. *)

val reset_counters : t -> unit
(** Zero the hit/miss counters (build statistics are kept) — used by the
    cache benchmark to attribute queries to one selection run. *)
