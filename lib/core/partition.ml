open Operon_geom
open Operon_graph

(* Region decomposition of the selection problem: recursive bisection of
   the net set by optical-bbox centers, plus the corridor — the nets
   whose interactions the cut severs — and its boundary components, the
   units the stitching pass repairs.

   Everything here is a pure function of (bboxes, neighbors, regions):
   no PRNG, no parallelism, ties broken by net id. The partitioned flow
   runs one selection per region on the Domain pool and merges in region
   order, so determinism of the plan is what makes `--jobs 1` and
   `--jobs 4` byte-identical. *)

type t = {
  regions : int array array;  (* member ids, ascending; regions in
                                 spatial (bisection) order *)
  region_of : int array;      (* net id -> index into [regions] *)
  corridor : int array;       (* nets with a neighbor in another region,
                                 ascending *)
  boundary : int array array; (* connected components of the interaction
                                 graph restricted to corridor nets; same
                                 ordering conventions as
                                 [Crossing.interaction_components] *)
  cut_pairs : int;            (* interacting pairs split across regions *)
  total_pairs : int;          (* all interacting pairs *)
}

let center_of bboxes i =
  (* A net without optical geometry has no bbox and no neighbors; where
     it lands is irrelevant to the cut, so the origin is as good a
     placeholder as any. *)
  match bboxes.(i) with Some r -> Rect.center r | None -> Point.origin

(* Split [ids] into [r] regions: sort by center coordinate along the
   wider axis of the current extent (ties by id), cut at the proportional
   index, recurse with the region budget split evenly. Uneven budgets
   land arbitrary region counts, not just powers of two. *)
let bisect centers ids r =
  let rec go ids r acc =
    let len = Array.length ids in
    if r <= 1 || len <= 1 then ids :: acc
    else begin
      let xmin = ref infinity and xmax = ref neg_infinity in
      let ymin = ref infinity and ymax = ref neg_infinity in
      Array.iter
        (fun i ->
          let c : Point.t = centers.(i) in
          if c.Point.x < !xmin then xmin := c.Point.x;
          if c.Point.x > !xmax then xmax := c.Point.x;
          if c.Point.y < !ymin then ymin := c.Point.y;
          if c.Point.y > !ymax then ymax := c.Point.y)
        ids;
      let along_x = !xmax -. !xmin >= !ymax -. !ymin in
      let key i =
        let c : Point.t = centers.(i) in
        if along_x then c.Point.x else c.Point.y
      in
      let sorted = Array.copy ids in
      Array.sort
        (fun a b ->
          let c = compare (key a) (key b) in
          if c <> 0 then c else compare a b)
        sorted;
      let rl = r / 2 in
      let cut = Stdlib.max 1 (Stdlib.min (len - 1) (len * rl / r)) in
      let left = Array.sub sorted 0 cut in
      let right = Array.sub sorted cut (len - cut) in
      go left rl (go right (r - rl) acc)
    end
  in
  go ids r []

let make ~regions bboxes ~neighbors =
  let n = Array.length bboxes in
  let centers = Array.init n (center_of bboxes) in
  let parts =
    bisect centers (Array.init n (fun i -> i)) (Stdlib.max 1 regions)
    |> List.filter (fun ids -> Array.length ids > 0)
    |> Array.of_list
  in
  Array.iter (fun ids -> Array.sort compare ids) parts;
  let region_of = Array.make n 0 in
  Array.iteri
    (fun r ids -> Array.iter (fun i -> region_of.(i) <- r) ids)
    parts;
  let in_corridor = Array.make n false in
  let cut_pairs = ref 0 and total_pairs = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun j ->
          if j > i then begin
            incr total_pairs;
            if region_of.(i) <> region_of.(j) then begin
              incr cut_pairs;
              in_corridor.(i) <- true;
              in_corridor.(j) <- true
            end
          end)
        row)
    neighbors;
  let corridor = ref [] in
  for i = n - 1 downto 0 do
    if in_corridor.(i) then corridor := i :: !corridor
  done;
  let corridor = Array.of_list !corridor in
  (* Boundary components: the interaction graph restricted to corridor
     nets, grouped exactly like [Crossing.interaction_components] so the
     stitch pass sees familiar units. *)
  let dsu = Dsu.create n in
  Array.iter
    (fun i ->
      Array.iter
        (fun j -> if j > i && in_corridor.(j) then ignore (Dsu.union dsu i j))
        neighbors.(i))
    corridor;
  let groups = Hashtbl.create 16 in
  for k = Array.length corridor - 1 downto 0 do
    let i = corridor.(k) in
    let r = Dsu.find dsu i in
    let existing = try Hashtbl.find groups r with Not_found -> [] in
    Hashtbl.replace groups r (i :: existing)
  done;
  let boundary =
    Hashtbl.fold (fun _ members acc -> Array.of_list members :: acc) groups []
    |> List.sort (fun a b -> compare a.(0) b.(0))
    |> Array.of_list
  in
  {
    regions = parts;
    region_of;
    corridor;
    boundary;
    cut_pairs = !cut_pairs;
    total_pairs = !total_pairs;
  }

let cut_fraction t =
  if t.total_pairs = 0 then 0.0
  else float_of_int t.cut_pairs /. float_of_int t.total_pairs
