open Operon_optical
open Operon_flow

type result = {
  tracks : Wdm.track array;
  flows : (int * int) list array;
  initial_count : int;
  final_count : int;
  displacement_cost : float;
}

(* Total bits that must be carried for one orientation. *)
let demand conns orient =
  Array.fold_left
    (fun acc c -> if Wdm.orientation_of c.Wdm.seg = orient then acc + c.Wdm.bits else acc)
    0 conns

(* Can [live] (a track subset, same orientation) carry every connection? *)
let feasible params conns orient live =
  let nc = Array.length conns and nw = Array.length live in
  let total = demand conns orient in
  if total = 0 then true
  else begin
    let source = 0 and sink = nc + nw + 1 in
    let g = Maxflow.create (nc + nw + 2) in
    Array.iteri
      (fun ci c ->
        if Wdm.orientation_of c.Wdm.seg = orient then begin
          ignore (Maxflow.add_edge g ~src:source ~dst:(1 + ci) ~cap:c.Wdm.bits);
          Array.iteri
            (fun wi t ->
              if Wdm.track_distance t c <= params.Params.dis_u then
                ignore
                  (Maxflow.add_edge g ~src:(1 + ci) ~dst:(1 + nc + wi) ~cap:c.Wdm.bits))
            live
        end)
      conns;
    Array.iteri
      (fun wi t ->
        ignore (Maxflow.add_edge g ~src:(1 + nc + wi) ~dst:sink ~cap:t.Wdm.capacity))
      live;
    Maxflow.max_flow g ~source ~sink = total
  end

(* Min-cost assignment of one orientation's connections onto the
   surviving tracks. [live] are that orientation's surviving tracks and
   [positions.(wi)] is the index of [live.(wi)] in the final track array.
   Returns per-connection flows and the total displacement cost. *)
let assign params conns orient live positions =
  let nc = Array.length conns and nw = Array.length live in
  let flows = Array.make nc [] in
  let total = demand conns orient in
  if total = 0 then (flows, 0.0)
  else begin
    let source = 0 and sink = nc + nw + 1 in
    let g = Mcmf.create (nc + nw + 2) in
    (* Usage cost per channel on the sink arcs: proportional to track
       length so packed short waveguides are preferred; scaled small so
       displacement dominates tie-breaks only. *)
    let handles = ref [] in
    Array.iteri
      (fun ci c ->
        if Wdm.orientation_of c.Wdm.seg = orient then begin
          ignore (Mcmf.add_edge g ~src:source ~dst:(1 + ci) ~cap:c.Wdm.bits ~cost:0.0);
          Array.iteri
            (fun wi t ->
              let dist = Wdm.track_distance t c in
              if dist <= params.Params.dis_u then begin
                let h =
                  Mcmf.add_edge g ~src:(1 + ci) ~dst:(1 + nc + wi) ~cap:c.Wdm.bits
                    ~cost:dist
                in
                handles := (h, ci, wi, dist) :: !handles
              end)
            live
        end)
      conns;
    Array.iteri
      (fun wi t ->
        let usage = 1e-3 *. (1.0 +. Wdm.track_length t) in
        ignore (Mcmf.add_edge g ~src:(1 + nc + wi) ~dst:sink ~cap:t.Wdm.capacity ~cost:usage))
      live;
    let flow, _cost = Mcmf.solve g ~source ~sink in
    assert (flow = total);
    let displacement = ref 0.0 in
    List.iter
      (fun (h, ci, wi, dist) ->
        let f = Mcmf.flow_on g h in
        if f > 0 then begin
          flows.(ci) <- (positions.(wi), f) :: flows.(ci);
          displacement := !displacement +. (dist *. float_of_int f)
        end)
      !handles;
    (flows, !displacement)
  end

(* Retire tracks lightest-first while a max-flow certificate shows the
   rest still carries everything. Orientations are independent. Tracks
   are handled by index so identical-looking tracks stay distinct.

   One flow network serves the whole retirement pass: retiring track [w]
   cancels the flow it carries (and the matching units on the arcs
   feeding it, so conservation holds), zeroes its sink arc, and resumes
   Dinic from the residual state. The max-flow value is a function of
   the capacity-edited graph alone, so the resumed solve answers exactly
   the question the old per-track rebuild asked — "do the remaining
   tracks still carry every bit?" — at a fraction of the cost. A track
   that carries no flow is retired outright (removing it cannot lower
   the max flow below its current, already-maximal value); a failed
   retirement restores the pre-edit snapshot. *)
let survivors params conns orient all =
  let mine = ref [] in
  for i = Array.length all - 1 downto 0 do
    if all.(i).Wdm.orient = orient then mine := i :: !mine
  done;
  let ordered =
    List.sort (fun a b -> compare all.(a).Wdm.used all.(b).Wdm.used) !mine
  in
  let total = demand conns orient in
  if total = 0 then []
  else begin
    let ord = Array.of_list ordered in
    let nw = Array.length ord in
    let nc = Array.length conns in
    let source = 0 and sink = nc + nw + 1 in
    let g = Maxflow.create (nc + nw + 2) in
    let src_arc = Array.make nc (-1) in
    let into = Array.make nw [] in
    Array.iteri
      (fun ci c ->
        if Wdm.orientation_of c.Wdm.seg = orient then begin
          src_arc.(ci) <-
            Maxflow.add_edge g ~src:source ~dst:(1 + ci) ~cap:c.Wdm.bits;
          Array.iteri
            (fun wi i ->
              if Wdm.track_distance all.(i) c <= params.Params.dis_u then
                let h =
                  Maxflow.add_edge g ~src:(1 + ci) ~dst:(1 + nc + wi)
                    ~cap:c.Wdm.bits
                in
                into.(wi) <- (h, ci) :: into.(wi))
            ord
        end)
      conns;
    let sink_arc =
      Array.mapi
        (fun wi i ->
          Maxflow.add_edge g ~src:(1 + nc + wi) ~dst:sink
            ~cap:all.(i).Wdm.capacity)
        ord
    in
    let flow0 = Maxflow.max_flow g ~source ~sink in
    if flow0 < total then ordered (* infeasible even with every track: no
                                     subset can do better, keep all *)
    else begin
      let live = Array.make nw true in
      for wi = 0 to nw - 1 do
        let f_w = Maxflow.flow_on g sink_arc.(wi) in
        if f_w = 0 then begin
          Maxflow.disable g sink_arc.(wi);
          live.(wi) <- false
        end
        else begin
          let saved = Maxflow.snapshot g in
          List.iter
            (fun (h, ci) ->
              let f = Maxflow.flow_on g h in
              if f > 0 then begin
                Maxflow.cancel g h f;
                Maxflow.cancel g src_arc.(ci) f
              end)
            into.(wi);
          Maxflow.cancel g sink_arc.(wi) f_w;
          Maxflow.disable g sink_arc.(wi);
          let rerouted = Maxflow.max_flow g ~source ~sink in
          if rerouted = f_w then live.(wi) <- false
          else Maxflow.restore g saved
        end
      done;
      let keep = ref [] in
      for wi = nw - 1 downto 0 do
        if live.(wi) then keep := ord.(wi) :: !keep
      done;
      !keep
    end
  end

let run params (placement : Wdm_place.placement) =
  let conns = placement.Wdm_place.conns in
  let all = placement.Wdm_place.tracks in
  let initial_count = Array.length all in
  let kept_h = survivors params conns Wdm.Horizontal all in
  let kept_v = survivors params conns Wdm.Vertical all in
  let final_idx = Array.of_list (kept_h @ kept_v) in
  let final_tracks = Array.map (fun i -> all.(i)) final_idx in
  let positions_of kept offset =
    Array.init (List.length kept) (fun k -> offset + k)
  in
  let live_h = Array.map (fun i -> all.(i)) (Array.of_list kept_h) in
  let live_v = Array.map (fun i -> all.(i)) (Array.of_list kept_v) in
  let flows_h, cost_h =
    assign params conns Wdm.Horizontal live_h (positions_of kept_h 0)
  in
  let flows_v, cost_v =
    assign params conns Wdm.Vertical live_v (positions_of kept_v (List.length kept_h))
  in
  let flows =
    Array.init (Array.length conns) (fun i ->
        match flows_h.(i) with [] -> flows_v.(i) | l -> l)
  in
  (* Refresh usage counters on the surviving tracks. *)
  Array.iter (fun t -> t.Wdm.used <- 0) final_tracks;
  Array.iteri
    (fun _ assigned ->
      List.iter
        (fun (wi, bits) -> final_tracks.(wi).Wdm.used <- final_tracks.(wi).Wdm.used + bits)
        assigned)
    flows;
  { tracks = final_tracks;
    flows;
    initial_count;
    final_count = Array.length final_tracks;
    displacement_cost = cost_h +. cost_v }

let reduction_ratio r =
  if r.initial_count = 0 then 0.0
  else float_of_int (r.initial_count - r.final_count) /. float_of_int r.initial_count
