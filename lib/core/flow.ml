open Operon_util
open Operon_steiner
open Operon_engine

type mode = Runctx.mode = Ilp | Lr

module Config = struct
  (* Thermal-reliability scenario: a static temperature map of the die
     plus the objective-weight ladder the Pareto sweep runs selection
     over. The spec deliberately lives outside the preparation slice
     (candidate generation never reads it), so prepared artifacts and
     registry entries are shared between thermal and plain jobs. *)
  type thermal = {
    map : Operon_thermal.Thermal_map.t;
    weights : float array;  (* sweep ladder; first entry drives the
                               returned flow's selection *)
  }

  (* Hierarchical partition-and-route: [Off] is the flat flow (the
     default and the parity oracle), [Regions n] decomposes selection
     into [n] spatial regions solved independently on the Domain pool
     with a corridor-stitch fix-up, [Auto] picks a region count from the
     design size (and stays flat below the profitable scale). *)
  type partition = Off | Auto | Regions of int

  type t = {
    params : Operon_optical.Params.t;
    processing : Processing.config option;
    mode : mode;
    ilp_budget : float;
    max_cands_per_net : int;
    jobs : int;
    strict : bool;
    injections : Fault.injection list;
    cache : bool;
    seed : int;
    solver_core : Operon_solver.Solver.core;
    thermal : thermal option;
    partition : partition;
  }

  let default_thermal_weights = [| 0.0; 0.5; 1.0; 2.0; 4.0; 8.0 |]

  let default params =
    { params;
      processing = None;
      mode = Lr;
      ilp_budget = 3000.0;
      max_cands_per_net = 10;
      jobs = 1;
      strict = false;
      injections = [];
      cache = true;
      seed = 42;
      solver_core = Operon_solver.Solver.Sparse;
      thermal = None;
      partition = Off }

  let make ?processing ?(mode = Lr) ?(ilp_budget = 3000.0)
      ?(max_cands_per_net = 10) ?(jobs = 1) ?(strict = false)
      ?(injections = []) ?(cache = true) ?(seed = 42)
      ?(solver_core = Operon_solver.Solver.Sparse) ?thermal
      ?(partition = Off) params =
    { params; processing; mode; ilp_budget; max_cands_per_net; jobs; strict;
      injections; cache; seed; solver_core; thermal; partition }

  let with_mode mode t = { t with mode }
  let with_jobs jobs t = { t with jobs }
  let with_cache cache t = { t with cache }
  let with_processing processing t = { t with processing = Some processing }
  let with_seed seed t = { t with seed }
  let with_solver_core solver_core t = { t with solver_core }
  let with_partition partition t = { t with partition }

  let with_thermal ?(weights = default_thermal_weights) map t =
    if Array.length weights = 0 then
      invalid_arg "Config.with_thermal: empty weight ladder";
    Array.iter
      (fun w ->
        if not (Float.is_finite w) || w < 0.0 then
          invalid_arg
            (Printf.sprintf
               "Config.with_thermal: weight %g must be finite and non-negative"
               w))
      weights;
    { t with thermal = Some { map; weights = Array.copy weights } }

  let to_runctx_config t =
    { Runctx.params = t.params;
      mode = t.mode;
      ilp_budget = t.ilp_budget;
      max_cands_per_net = t.max_cands_per_net;
      jobs = t.jobs;
      strict = t.strict;
      injections = t.injections;
      cache = t.cache;
      solver_core = t.solver_core }
end

(* One evaluated point of the thermal Pareto sweep: the selection found
   at one objective weight, with its physical power and its worst-case
   thermal margin (both recomputable from [tp_choice] alone). *)
type thermal_point = {
  tp_weight : float;
  tp_power : float;  (* physical power of the selection, pJ/bit *)
  tp_margin : float;
      (* l_max minus the worst temperature-aware path loss, dB *)
  tp_hash : string;  (* FNV-1a 64 of the choice vector, 16 hex digits *)
  tp_choice : int array;
  tp_seconds : float;  (* selection wall-clock of this weight *)
}

type thermal_result = {
  tr_front : thermal_point list;
      (* Pareto-optimal points, power strictly ascending and margin
         strictly ascending *)
  tr_swept : int;  (* weights evaluated *)
  tr_dropped : int;  (* points removed as duplicate or dominated *)
  tr_map : string;  (* Thermal_map.summary of the scenario map *)
  tr_seconds : float;  (* whole-sweep wall-clock *)
}

(* Shape of one partitioned selection, surfaced through the export's
   [partition] block and the Partition instrument counters. *)
type partition_stats = {
  pt_regions : int;
  pt_corridor_nets : int;  (* nets with a neighbor across the cut *)
  pt_cut_pairs : int;  (* interacting pairs the cut severed *)
  pt_total_pairs : int;
  pt_boundary_components : int;
  pt_largest_region : int;
  pt_stitch_changed : int;  (* nets the corridor fix-up re-decided *)
  pt_plan_seconds : float;
  pt_stitch_seconds : float;
}

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;
  power : float;
  select_seconds : float;
  ilp : Ilp_select.result option;
  lr : Lr_select.result option;
  placement : Wdm_place.placement;
  assignment : Assign.result;
  trace : Instrument.sink;
  faults : Fault.t list;
  quarantined_nets : int array;
  solver_path : string;
  cache : Xmatrix.stats;
  thermal : thermal_result option;
  partition : partition_stats option;
}

(* Region-count policy. [Auto] aims for [auto_region_nets] nets per
   region and stays flat (returns [None]) below two regions' worth —
   partitioning a small design buys nothing and costs a stitch. An
   explicit [Regions n] is honored whenever at least two non-trivial
   regions are possible. *)
let auto_region_nets = 1024

let resolve_partition (p : Config.partition) ~nets =
  match p with
  | Config.Off -> None
  | Config.Regions r ->
      let r = Stdlib.min r nets in
      if r >= 2 then Some r else None
  | Config.Auto ->
      let r = Stdlib.min 64 (nets / auto_region_nets) in
      if r >= 2 then Some r else None

(* ------------------------------------------------------------------ *)
(* Fault handling at stage boundaries.                                *)
(* ------------------------------------------------------------------ *)

(* Per-item failure policy of the fan-out stages: strict runs re-raise
   the structured fault (lowest-index first, since results arrive in
   input order), degraded runs record it and let the caller substitute a
   deterministic fallback. *)
let degrade_or_raise rc ~stage ?net e bt =
  let fault = Fault.of_exn ~stage ?net e bt in
  if rc.Runctx.config.Runctx.strict then
    Printexc.raise_with_backtrace (Fault.Error fault) bt;
  Runctx.record_fault rc fault

(* ------------------------------------------------------------------ *)
(* The six pipeline stages (paper Figure 2).                          *)
(* ------------------------------------------------------------------ *)

let stage_processing processing =
  Pipeline.stage Instrument.Processing (fun rc design ->
      let params = rc.Runctx.config.Runctx.params in
      let hnets = Processing.run ?config:processing rc.Runctx.rng params design in
      let nets, hn, hpins = Processing.stats hnets in
      (* Crossing loss is bundled by the design's expected waveguide channel
         occupancy; the adjusted parameters travel inside the ctx. *)
      let params =
        if hn = 0 then params
        else
          Operon_optical.Params.auto_bundle params
            ~mean_bits:(float_of_int nets /. float_of_int hn)
      in
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Processing "nets" nets;
      Instrument.incr sink Instrument.Processing "hnets" hn;
      Instrument.incr sink Instrument.Processing "hpins" hpins;
      (design, params, hnets))

(* Optical baseline segments of every hyper net feed the crossing
   estimator used while pruning the co-design DP. One task per net;
   the executor preserves net order, so the concatenated segment array —
   and hence the crossing index — is identical whichever backend ran it.
   A net whose baseline task faults is quarantined: it contributes no
   optical segments and the codesign stage will route it all-electrical. *)
(* The per-net contribution to the design-wide crossing index. Also the
   unit of the ECO delta indices, so both paths share one definition. *)
let baseline_tree_segments (hnet : Hypernet.t) =
  let terminals = Hypernet.centers hnet in
  if Array.length terminals <= 1 then [||]
  else
    let topo = Bi1s.build Topology.L2 terminals ~root:0 in
    Array.map (fun s -> (hnet.Hypernet.id, s)) (Topology.segments topo)

let stage_baselines =
  Pipeline.stage Instrument.Baselines (fun rc (design, params, hnets) ->
      let results =
        Executor.try_parallel_mapi rc.Runctx.exec
          (fun _ hnet ->
            Runctx.check_inject rc ~stage:Instrument.Baselines ~net:hnet.Hypernet.id ();
            baseline_tree_segments hnet)
          hnets
      in
      let per_net =
        Array.mapi
          (fun i result ->
            match result with
            | Ok segs -> segs
            | Error (e, bt) ->
                degrade_or_raise rc ~stage:Instrument.Baselines
                  ~net:hnets.(i).Hypernet.id e bt;
                [||])
          results
      in
      let segments = Array.concat (Array.to_list per_net) in
      Instrument.incr rc.Runctx.sink Instrument.Baselines "segments"
        (Array.length segments);
      let index = Crossing.build_index ~die:design.Signal.die segments in
      (design, params, hnets, index))

let stage_codesign =
  Pipeline.stage Instrument.Codesign (fun rc (design, params, hnets, index) ->
      let max_total = rc.Runctx.config.Runctx.max_cands_per_net in
      (* Nets already quarantined upstream (baselines faults) skip the DP
         outright: their crossing estimates would be built from segments
         that were never generated. *)
      let upstream = Runctx.quarantined rc in
      let is_quarantined id = Array.exists (fun q -> q = id) upstream in
      (* Per-net PRNG streams, split off in net-id order *before* the
         fan-out. Any randomized decision a per-net task ever makes must
         draw from its own stream, never from [rc.rng], so that results
         cannot depend on domain scheduling. Today's DP kernels are fully
         deterministic and retire the stream unused; the split discipline
         is the contract parallel candidate generation relies on. *)
      let net_rngs = Array.map (fun _ -> Prng.split rc.Runctx.rng) hnets in
      let results =
        Executor.try_parallel_mapi rc.Runctx.exec
          (fun i hnet ->
            Runctx.check_inject rc ~stage:Instrument.Codesign ~net:hnet.Hypernet.id ();
            let _net_rng = net_rngs.(i) in
            if is_quarantined hnet.Hypernet.id then
              (Codesign.electrical_only params hnet,
               { Codesign.raw = 1; deduped = 1; kept = 1 },
               [||])
            else
              let crossing_est = Crossing.estimator index ~net:hnet.Hypernet.id in
              let counts = Codesign.crossing_counts ~crossing_est hnet in
              let cands, stats =
                Codesign.for_hypernet_counted ~max_total ~counts params hnet
              in
              (cands, stats, counts))
          hnets
      in
      (* Merge counters — and quarantine per-net failures — on the
         coordinator, in net-id order. The fallback candidate is built
         here, after the fan-out, so healthy nets' results are untouched. *)
      let sink = rc.Runctx.sink in
      let xcounts = Array.make (Array.length hnets) ([||] : Codesign.xcounts) in
      let cand_lists =
        Array.mapi
          (fun i result ->
            match result with
            | Ok (cands, s, counts) ->
                Instrument.incr sink Instrument.Codesign "raw" s.Codesign.raw;
                Instrument.incr sink Instrument.Codesign "kept" s.Codesign.kept;
                Instrument.incr sink Instrument.Codesign "pruned"
                  (s.Codesign.raw - s.Codesign.kept);
                xcounts.(i) <- counts;
                cands
            | Error (e, bt) ->
                degrade_or_raise rc ~stage:Instrument.Codesign
                  ~net:hnets.(i).Hypernet.id e bt;
                Codesign.electrical_only params hnets.(i))
          results
      in
      let quarantined = Runctx.quarantined rc in
      if Array.length quarantined > 0 then
        Instrument.incr sink Instrument.Codesign "quarantined"
          (Array.length quarantined);
      (design, params, hnets, cand_lists, xcounts))

(* Building the selection context is charged to Codesign, as it was when
   the two lived in one stage; it is split out so the ECO path can build
   the context with per-net reuse on recycled candidate lists. *)
let record_xmatrix sink ctx =
  let xs = Xmatrix.stats ctx.Selection.xmat in
  if xs.Xmatrix.enabled then begin
    Instrument.incr sink Instrument.Codesign "xmatrix_pairs" xs.Xmatrix.pairs;
    Instrument.incr sink Instrument.Codesign "xmatrix_entries" xs.Xmatrix.entries;
    Instrument.incr sink Instrument.Codesign "xmatrix_build_ms"
      (int_of_float (Float.round (xs.Xmatrix.build_seconds *. 1000.0)))
  end

let stage_ctx partition =
  Pipeline.stage Instrument.Codesign
    (fun rc (design, params, hnets, cand_lists, xcounts) ->
      (* A partitioned run builds per-region crossing caches during
         selection; precomputing the design-wide matrix here would be
         thrown-away work, so the full context stays direct (the
         partitioned path reports the aggregated per-region cache
         stats instead). *)
      let cache =
        rc.Runctx.config.Runctx.cache
        && resolve_partition partition ~nets:(Array.length cand_lists) = None
      in
      let ctx =
        Selection.make_ctx ~exec:rc.Runctx.exec ~cache params cand_lists
      in
      record_xmatrix rc.Runctx.sink ctx;
      (design, params, hnets, cand_lists, xcounts, ctx))

type selected = {
  s_design : Signal.design;
  s_hnets : Hypernet.t array;
  s_ctx : Selection.ctx;
  s_choice : int array;
  s_seconds : float;
  s_ilp : Ilp_select.result option;
  s_lr : Lr_select.result option;
  s_solver_path : string;
  s_partition : partition_stats option;
  s_cache : Xmatrix.stats option;
      (* overrides the final context's own cache stats when selection ran
         partitioned: the aggregate over the per-region matrices, which
         is what a flat run's single matrix would have reported when the
         cut severs no interactions *)
  s_plan : Partition.t option;
      (* the region plan when selection ran partitioned — carried forward
         so the WDM realization stages can decompose along the same
         regions *)
}

(* Outcome of one region's selection, computed inside a Domain task.
   Pure data: faults are constructed in the task but recorded on the
   coordinator in region order, so the fault log, the counters and the
   merged choice are identical at any --jobs. *)
type region_out = {
  ro_choice : int array;
  ro_depth : int;  (* fallback hops consumed; 0 = the primary engine *)
  ro_ilp : Ilp_select.result option;
  ro_lr : Lr_select.result option;
  ro_faults : Fault.t list;  (* in occurrence order *)
  ro_cache : Xmatrix.stats;
}

(* Selection runs a fallback chain with explicit budgets: the configured
   engine first (ILP under its wall-clock/pivot budget, LR under its
   iteration/wall-clock budget), then the cheaper engines in order, down
   to the solver-free greedy feasibility repair. Every hop is recorded as
   a Select-stage fault; strict mode stops at the first one.

   With an active partition spec, selection instead plans a region
   decomposition, solves every region independently on the Domain pool
   through the same engine chain (full budget each — regions run
   concurrently, so the wall-clock budget is per region by
   construction), merges in region order and repairs the corridor nets
   with a restricted polish pass. When the cut severs no interactions
   the merged ILP/greedy result is bit-identical to the flat run's; LR
   couples nets globally through its convergence tests, so partitioned
   LR is only power-bounded, not bit-equal (DESIGN.md §16). A partition
   failure of any kind degrades to the flat chain. *)
let stage_select partition =
  Pipeline.stage Instrument.Select (fun rc (design, hnets, ctx, initial) ->
      let cfg = rc.Runctx.config in
      let sink = rc.Runctx.sink in
      (match initial with
       | Some _ -> Instrument.incr sink Instrument.Select "warm_start" 1
       | None -> ());
      let path = ref [] in
      let attempt name f =
        path := name :: !path;
        match f () with
        | r -> Some r
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            degrade_or_raise rc ~stage:Instrument.Select ?net:None e bt;
            Instrument.incr sink Instrument.Select "fallbacks" 1;
            None
      in
      let run_ilp () =
        Runctx.check_inject rc ~stage:Instrument.Select ();
        let r =
          Ilp_select.select ~budget_seconds:cfg.Runctx.ilp_budget
            ~core:cfg.Runctx.solver_core ?initial ctx
        in
        Instrument.incr sink Instrument.Select "components" r.Ilp_select.components;
        Instrument.incr sink Instrument.Select "timed_out" r.Ilp_select.timed_out;
        Instrument.incr sink Instrument.Select "nodes" r.Ilp_select.nodes;
        Instrument.incr sink Instrument.Select "lp_solves" r.Ilp_select.lp_solves;
        Instrument.incr sink Instrument.Select "pivots" r.Ilp_select.pivots;
        Instrument.incr sink Instrument.Select "refactorizations"
          r.Ilp_select.refactorizations;
        (r.Ilp_select.choice, r.Ilp_select.elapsed, Some r, None)
      in
      let run_lr () =
        Runctx.check_inject rc ~stage:Instrument.Select ();
        let r =
          Lr_select.select ~budget_seconds:cfg.Runctx.ilp_budget ?initial ctx
        in
        Instrument.incr sink Instrument.Select "iterations" r.Lr_select.iterations;
        Instrument.incr sink Instrument.Select "demoted" r.Lr_select.demoted;
        (r.Lr_select.choice, r.Lr_select.elapsed, None, Some r)
      in
      let run_greedy () =
        (* Terminal repair: deterministic, solver-free, always feasible. *)
        let choice, dt =
          Timer.time (fun () -> Selection.polish ctx (Selection.greedy ctx))
        in
        (choice, dt, None, None)
      in
      let chain =
        match cfg.Runctx.mode with
        | Ilp -> [ ("ilp", run_ilp); ("lr", run_lr); ("greedy", run_greedy) ]
        | Lr -> [ ("lr", run_lr); ("greedy", run_greedy) ]
      in
      let rec first = function
        | [] ->
            (* Even the greedy repair crashed: the all-electrical
               selection (the paper's Eq. 6 baseline) cannot fail. *)
            path := "electrical" :: !path;
            (Selection.all_electrical ctx, 0.0, None, None)
        | (name, f) :: rest -> (
            match attempt name f with Some r -> r | None -> first rest)
      in
      let flat_select () =
        let before = Xmatrix.stats ctx.Selection.xmat in
        let choice, seconds, ilp, lr = first chain in
        let after = Xmatrix.stats ctx.Selection.xmat in
        Instrument.incr sink Instrument.Select "cache_hits"
          (after.Xmatrix.hits - before.Xmatrix.hits);
        Instrument.incr sink Instrument.Select "cache_misses"
          (after.Xmatrix.misses - before.Xmatrix.misses);
        { s_design = design; s_hnets = hnets; s_ctx = ctx; s_choice = choice;
          s_seconds = seconds; s_ilp = ilp; s_lr = lr;
          s_solver_path = String.concat "->" (List.rev !path);
          s_partition = None; s_cache = None; s_plan = None }
      in
      let chain_names =
        match cfg.Runctx.mode with
        | Ilp -> [ "ilp"; "lr"; "greedy" ]
        | Lr -> [ "lr"; "greedy" ]
      in
      (* The deepest fallback any region reached names the whole run's
         solver path — a prefix chain of the same engine names the flat
         run would print, so a clean partitioned ILP run reports "ilp"
         exactly like a clean flat one. *)
      let path_of_depth d =
        let names = chain_names @ [ "electrical" ] in
        let rec take k = function
          | x :: rest when k > 0 -> x :: take (k - 1) rest
          | _ -> []
        in
        String.concat "->" (take (d + 1) names)
      in
      (* One region's selection, on a context sliced to its member nets.
         Runs inside a Domain task: no sink, no run-context, no shared
         mutation — everything observable is returned and merged by the
         coordinator. Each region gets the full selection budget
         (regions run concurrently). *)
      let region_select ids =
        let sub_lists =
          Array.map (fun i -> Array.to_list ctx.Selection.cands.(i)) ids
        in
        let sub_ctx =
          Selection.make_ctx ~cache:cfg.Runctx.cache ctx.Selection.params
            sub_lists
        in
        let sub_ctx =
          match ctx.Selection.thermal with
          | None -> sub_ctx
          | Some th ->
              (* The penalty tensor is per-net and choice-independent, so
                 a slice of it is exactly the profile a regional
                 [thermal_profile] would compute. *)
              let profile =
                { Selection.penalty =
                    Array.map (fun i -> th.Selection.penalty.(i)) ids;
                  tcost = Array.map (fun i -> th.Selection.tcost.(i)) ids;
                  weight = 0.0 }
              in
              Selection.with_thermal sub_ctx profile ~weight:th.Selection.weight
        in
        let sub_initial =
          match initial with
          | Some init when Array.length init = Array.length ctx.Selection.cands
            ->
              (* Per-net candidate indices translate directly; the region
                 engines sanitize out-of-range entries themselves, as the
                 flat engines would. *)
              Some (Array.map (fun i -> init.(i)) ids)
          | _ -> None
        in
        let faults = ref [] in
        let caught f =
          match f () with
          | r -> Some r
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              faults := Fault.of_exn ~stage:Instrument.Select e bt :: !faults;
              None
        in
        let engines =
          let ilp () =
            let r =
              Ilp_select.select ~budget_seconds:cfg.Runctx.ilp_budget
                ~core:cfg.Runctx.solver_core ?initial:sub_initial sub_ctx
            in
            (r.Ilp_select.choice, Some r, None)
          in
          let lr () =
            let r =
              Lr_select.select ~budget_seconds:cfg.Runctx.ilp_budget
                ?initial:sub_initial sub_ctx
            in
            (r.Lr_select.choice, None, Some r)
          in
          let greedy () =
            (Selection.polish sub_ctx (Selection.greedy sub_ctx), None, None)
          in
          match cfg.Runctx.mode with
          | Ilp -> [ ilp; lr; greedy ]
          | Lr -> [ lr; greedy ]
        in
        let rec go depth = function
          | [] -> (Selection.all_electrical sub_ctx, depth, None, None)
          | f :: rest -> (
              match caught f with
              | Some (choice, ilp, lr) -> (choice, depth, ilp, lr)
              | None -> go (depth + 1) rest)
        in
        let choice, depth, ilp, lr = go 0 engines in
        { ro_choice = choice;
          ro_depth = depth;
          ro_ilp = ilp;
          ro_lr = lr;
          ro_faults = List.rev !faults;
          ro_cache = Xmatrix.stats sub_ctx.Selection.xmat }
      in
      let run_partitioned regions =
        Runctx.check_inject rc ~stage:Instrument.Select ();
        let t0 = Timer.now () in
        let plan, plan_dt =
          Instrument.timed sink Instrument.Partition (fun () ->
              Timer.time (fun () ->
                  Partition.make ~regions ctx.Selection.bboxes
                    ~neighbors:ctx.Selection.neighbors))
        in
        let n = Array.length ctx.Selection.cands in
        let nregions = Array.length plan.Partition.regions in
        let largest =
          Array.fold_left
            (fun acc ids -> Stdlib.max acc (Array.length ids))
            0 plan.Partition.regions
        in
        Instrument.incr sink Instrument.Partition "regions" nregions;
        Instrument.incr sink Instrument.Partition "corridor_nets"
          (Array.length plan.Partition.corridor);
        Instrument.incr sink Instrument.Partition "cut_pairs"
          plan.Partition.cut_pairs;
        Instrument.incr sink Instrument.Partition "total_pairs"
          plan.Partition.total_pairs;
        Instrument.incr sink Instrument.Partition "boundary_components"
          (Array.length plan.Partition.boundary);
        Instrument.incr sink Instrument.Partition "cut_permille"
          (int_of_float (Float.round (1000.0 *. Partition.cut_fraction plan)));
        let results =
          Executor.try_parallel_mapi rc.Runctx.exec
            (fun _ ids -> region_select ids)
            plan.Partition.regions
        in
        (* Merge on the coordinator, in region order. *)
        let merged = Array.make n 0 in
        let depth = ref 0 in
        let chain_len = List.length chain_names in
        let agg =
          ref
            { Xmatrix.enabled = cfg.Runctx.cache;
              pairs = 0;
              entries = 0;
              build_seconds = 0.0;
              hits = 0;
              misses = 0 }
        in
        Array.iteri
          (fun r ids ->
            match results.(r) with
            | Ok out ->
                Array.iteri (fun k i -> merged.(i) <- out.ro_choice.(k)) ids;
                if out.ro_depth > !depth then depth := out.ro_depth;
                List.iter
                  (fun f ->
                    if cfg.Runctx.strict then raise (Fault.Error f);
                    Runctx.record_fault rc f;
                    Instrument.incr sink Instrument.Select "fallbacks" 1)
                  out.ro_faults;
                (match out.ro_ilp with
                 | Some res ->
                     Instrument.incr sink Instrument.Select "components"
                       res.Ilp_select.components;
                     Instrument.incr sink Instrument.Select "timed_out"
                       res.Ilp_select.timed_out;
                     Instrument.incr sink Instrument.Select "nodes"
                       res.Ilp_select.nodes;
                     Instrument.incr sink Instrument.Select "lp_solves"
                       res.Ilp_select.lp_solves;
                     Instrument.incr sink Instrument.Select "pivots"
                       res.Ilp_select.pivots;
                     Instrument.incr sink Instrument.Select "refactorizations"
                       res.Ilp_select.refactorizations
                 | None -> ());
                (match out.ro_lr with
                 | Some res ->
                     Instrument.incr sink Instrument.Select "iterations"
                       res.Lr_select.iterations;
                     Instrument.incr sink Instrument.Select "demoted"
                       res.Lr_select.demoted
                 | None -> ());
                let c = out.ro_cache in
                agg :=
                  { !agg with
                    Xmatrix.pairs = !agg.Xmatrix.pairs + c.Xmatrix.pairs;
                    entries = !agg.Xmatrix.entries + c.Xmatrix.entries;
                    build_seconds =
                      !agg.Xmatrix.build_seconds +. c.Xmatrix.build_seconds;
                    hits = !agg.Xmatrix.hits + c.Xmatrix.hits;
                    misses = !agg.Xmatrix.misses + c.Xmatrix.misses }
            | Error (e, bt) ->
                (* The whole region task died outside the engine chain
                   (context construction, slicing): its nets fall back to
                   their electrical candidates — the same floor the chain
                   bottoms out on. *)
                degrade_or_raise rc ~stage:Instrument.Select e bt;
                Instrument.incr sink Instrument.Select "fallbacks" 1;
                depth := chain_len;
                Array.iter (fun i -> merged.(i) <- ctx.Selection.elec_idx.(i)) ids)
          plan.Partition.regions;
        (* Corridor stitch: regional solutions are feasible within their
           regions, so repairing (and then improving) just the corridor
           nets restores global feasibility. A cut severing no
           interactions needs no stitch — the merge is already the flat
           answer for the component-local engines. *)
        let stitched, stitch_dt =
          if plan.Partition.cut_pairs = 0 then (merged, 0.0)
          else
            Instrument.timed sink Instrument.Partition (fun () ->
                Timer.time (fun () ->
                    Selection.polish ~only:plan.Partition.corridor ctx merged))
        in
        let changed = ref 0 in
        Array.iteri (fun i j -> if merged.(i) <> j then incr changed) stitched;
        Instrument.incr sink Instrument.Partition "stitch_changed" !changed;
        { s_design = design;
          s_hnets = hnets;
          s_ctx = ctx;
          s_choice = stitched;
          s_seconds = Timer.now () -. t0;
          s_ilp = None;
          s_lr = None;
          s_solver_path = path_of_depth !depth;
          s_partition =
            Some
              { pt_regions = nregions;
                pt_corridor_nets = Array.length plan.Partition.corridor;
                pt_cut_pairs = plan.Partition.cut_pairs;
                pt_total_pairs = plan.Partition.total_pairs;
                pt_boundary_components = Array.length plan.Partition.boundary;
                pt_largest_region = largest;
                pt_stitch_changed = !changed;
                pt_plan_seconds = plan_dt;
                pt_stitch_seconds = stitch_dt };
          s_cache = Some !agg;
          s_plan = Some plan }
      in
      match
        resolve_partition partition ~nets:(Array.length ctx.Selection.cands)
      with
      | Some regions -> (
          match attempt "partition" (fun () -> run_partitioned regions) with
          | Some sel -> sel
          | None -> flat_select ())
      | None -> flat_select ())

(* Per-region WDM realization, produced by [stage_wdm] when selection
   ran partitioned and consumed by [stage_assign]: each region's
   connections were placed on that region's own tracks (with local
   dense connection ids), so the superlinear retirement/min-cost-flow
   solves decompose along the same cut as selection did.
   [rw_globals.(r).(k)] is the global connection id of region [r]'s
   local connection [k]. *)
type region_wdm = {
  rw_placements : Wdm_place.placement array;
  rw_globals : int array array;
}

let stage_wdm =
  Pipeline.stage Instrument.Wdm (fun rc sel ->
      let params = sel.s_ctx.Selection.params in
      let sink = rc.Runctx.sink in
      let conns = Wdm_place.connections_of_selection sel.s_ctx sel.s_choice in
      let monolithic () =
        let placement = Wdm_place.place params conns in
        ignore (Wdm_place.legalize params placement.Wdm_place.tracks);
        (placement, None)
      in
      (* Place each region's connections on its own tracks (pool tasks
         are pure; the merge below is in region order, so the result is
         identical at any --jobs), then legalize the merged array once:
         track spacing is a global constraint, and running the pass at
         the same point as the flat flow means the per-region assignment
         sees exactly the coordinates a flat assignment would. *)
      let per_region (plan : Partition.t) =
        let nregions = Array.length plan.Partition.regions in
        let buckets = Array.make nregions [] in
        for i = Array.length conns - 1 downto 0 do
          let r = plan.Partition.region_of.(conns.(i).Operon_optical.Wdm.net) in
          buckets.(r) <- i :: buckets.(r)
        done;
        let globals = Array.map Array.of_list buckets in
        let results =
          Executor.try_parallel_mapi rc.Runctx.exec
            (fun _ ids ->
              let local =
                Array.mapi (fun k gi -> { conns.(gi) with Operon_optical.Wdm.id = k }) ids
              in
              Wdm_place.place params local)
            globals
        in
        if
          Array.exists
            (function Error _ -> true | Ok _ -> false)
            results
        then begin
          Array.iter
            (function
              | Error (e, bt) ->
                  degrade_or_raise rc ~stage:Instrument.Wdm e bt;
                  Instrument.incr sink Instrument.Wdm "fallbacks" 1
              | Ok _ -> ())
            results;
          monolithic ()
        end
        else begin
          let placements =
            Array.map (function Ok p -> p | Error _ -> assert false) results
          in
          let offsets = Array.make nregions 0 in
          let total = ref 0 in
          Array.iteri
            (fun r p ->
              offsets.(r) <- !total;
              total := !total + Array.length p.Wdm_place.tracks)
            placements;
          let tracks =
            Array.concat
              (Array.to_list
                 (Array.map (fun p -> p.Wdm_place.tracks) placements))
          in
          let assignment = Array.make (Array.length conns) (-1) in
          Array.iteri
            (fun r p ->
              Array.iteri
                (fun k t ->
                  if t >= 0 then
                    assignment.(globals.(r).(k)) <- offsets.(r) + t)
                p.Wdm_place.assignment)
            placements;
          ignore (Wdm_place.legalize params tracks);
          Instrument.incr sink Instrument.Wdm "regions" nregions;
          ( { Wdm_place.conns; tracks; assignment },
            Some { rw_placements = placements; rw_globals = globals } )
        end
      in
      let placement, regional =
        match sel.s_plan with
        | Some plan when Array.length plan.Partition.regions > 1 ->
            per_region plan
        | _ -> monolithic ()
      in
      Instrument.incr sink Instrument.Wdm "connections" (Array.length conns);
      Instrument.incr sink Instrument.Wdm "tracks"
        (Array.length placement.Wdm_place.tracks);
      (sel, placement, regional))

let stage_assign =
  Pipeline.stage Instrument.Assign (fun rc (sel, placement, regional) ->
      let params = sel.s_ctx.Selection.params in
      let sink = rc.Runctx.sink in
      let monolithic () = Assign.run params placement in
      (* Retirement and min-cost re-assignment per region: a region's
         connections are only eligible for its own tracks, so the region
         solves are exact sub-problems and the merge (tracks in region
         order, flow track-indices rebased) is deterministic at any
         --jobs. Cross-region track sharing is forfeited; the bench and
         the partition-smoke CI job bound the resulting track-count
         delta. *)
      let assignment =
        match regional with
        | None -> monolithic ()
        | Some rw -> (
            let results =
              Executor.try_parallel_mapi rc.Runctx.exec
                (fun _ p -> Assign.run params p)
                rw.rw_placements
            in
            if
              Array.exists
                (function Error _ -> true | Ok _ -> false)
                results
            then begin
              Array.iter
                (function
                  | Error (e, bt) ->
                      degrade_or_raise rc ~stage:Instrument.Assign e bt;
                      Instrument.incr sink Instrument.Assign "fallbacks" 1
                  | Ok _ -> ())
                results;
              monolithic ()
            end
            else
              let rs =
                Array.map
                  (function Ok r -> r | Error _ -> assert false)
                  results
              in
              let offsets = Array.make (Array.length rs) 0 in
              let total = ref 0 in
              Array.iteri
                (fun r (a : Assign.result) ->
                  offsets.(r) <- !total;
                  total := !total + a.Assign.final_count)
                rs;
              let tracks =
                Array.concat
                  (Array.to_list
                     (Array.map (fun (a : Assign.result) -> a.Assign.tracks) rs))
              in
              let flows =
                Array.make (Array.length placement.Wdm_place.conns) []
              in
              Array.iteri
                (fun r (a : Assign.result) ->
                  Array.iteri
                    (fun k fl ->
                      flows.(rw.rw_globals.(r).(k)) <-
                        List.map (fun (wi, f) -> (offsets.(r) + wi, f)) fl)
                    a.Assign.flows)
                rs;
              Instrument.incr sink Instrument.Assign "regions"
                (Array.length rs);
              { Assign.tracks;
                flows;
                initial_count =
                  Array.fold_left
                    (fun acc (a : Assign.result) ->
                      acc + a.Assign.initial_count)
                    0 rs;
                final_count = Array.length tracks;
                displacement_cost =
                  Array.fold_left
                    (fun acc (a : Assign.result) ->
                      acc +. a.Assign.displacement_cost)
                    0.0 rs })
      in
      Instrument.incr sink Instrument.Assign "initial" assignment.Assign.initial_count;
      Instrument.incr sink Instrument.Assign "final" assignment.Assign.final_count;
      { design = sel.s_design;
        hnets = sel.s_hnets;
        ctx = sel.s_ctx;
        mode = rc.Runctx.config.Runctx.mode;
        choice = sel.s_choice;
        power = Selection.power sel.s_ctx sel.s_choice;
        select_seconds = sel.s_seconds;
        ilp = sel.s_ilp;
        lr = sel.s_lr;
        placement;
        assignment;
        trace = sink;
        faults = Runctx.faults rc;
        quarantined_nets = Runctx.quarantined rc;
        solver_path = sel.s_solver_path;
        cache =
          (match sel.s_cache with
           | Some stats -> stats
           | None -> Xmatrix.stats sel.s_ctx.Selection.xmat);
        thermal = None;
        partition = sel.s_partition })

let prepare_pipeline processing partition =
  Pipeline.(
    stage_processing processing >>> stage_baselines >>> stage_codesign
    >>> stage_ctx partition)

let select_pipeline partition =
  Pipeline.(stage_select partition >>> stage_wdm >>> stage_assign)

(* ------------------------------------------------------------------ *)
(* Thermal Pareto sweep.                                              *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the choice vector: a stable, printable identity for "the
   same selection" across weights, job counts and processes. *)
let choice_hash choice =
  let h =
    Array.fold_left
      (fun h j ->
        Int64.mul (Int64.logxor h (Int64.of_int j)) 0x100000001b3L)
      0xcbf29ce484222325L choice
  in
  Printf.sprintf "%016Lx" h

(* Duplicate selections collapse to their first (lowest-weight)
   occurrence; the survivors keep only the non-dominated points. Sorted
   by power ascending (ties broken margin-descending), a point survives
   iff its margin strictly exceeds the best margin so far — so the front
   is strictly ascending in both power and margin. *)
let pareto_front points =
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p.tp_hash then false
        else begin
          Hashtbl.add seen p.tp_hash ();
          true
        end)
      points
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare a.tp_power b.tp_power with
        | 0 -> Float.compare b.tp_margin a.tp_margin
        | c -> c)
      uniq
  in
  List.rev
    (List.fold_left
       (fun acc p ->
         match acc with
         | q :: _ when p.tp_margin <= q.tp_margin -> acc
         | _ -> p :: acc)
       [] sorted)

(* A thermal scenario with no positive weight is inert by contract
   (weight 0 must reproduce the plain flow bit for bit), so only specs
   with a positive weight switch the entry points onto the sweep path. *)
let active_thermal (config : Config.t) =
  match config.Config.thermal with
  | Some spec when Array.exists (fun w -> w > 0.0) spec.Config.weights ->
      Some spec
  | _ -> None

(* Run selection once per ladder weight over one shared context (the
   detuning profile is choice-independent, so candidates, neighbourhoods
   and the crossing cache are computed once). Weight 0 deliberately uses
   the plain context — same expression trees, bit-identical selection to
   a thermal-free run. Margins of every point are evaluated under the
   weight-0 thermal context: penalties applied, objective untouched, so
   each exported point is recomputable from its choice vector alone. The
   first weight's selection carries on through the WDM stages as the
   flow's primary result. *)
let thermal_run rc ?initial ?(partition = Config.Off) (spec : Config.thermal)
    (design, hnets, ctx) =
  let sink = rc.Runctx.sink in
  let t0 = Timer.now () in
  let profile =
    Instrument.timed sink Instrument.Pareto (fun () ->
        Selection.thermal_profile ctx spec.Config.map)
  in
  let eval_ctx = Selection.with_thermal ctx profile ~weight:0.0 in
  let sels =
    Array.map
      (fun w ->
        let ctx_w =
          if w = 0.0 then ctx else Selection.with_thermal ctx profile ~weight:w
        in
        let sel =
          Pipeline.run rc (stage_select partition)
            (design, hnets, ctx_w, initial)
        in
        let pt =
          { tp_weight = w;
            tp_power = Selection.power ctx sel.s_choice;
            tp_margin = Selection.thermal_margin eval_ctx sel.s_choice;
            tp_hash = choice_hash sel.s_choice;
            tp_choice = Array.copy sel.s_choice;
            tp_seconds = sel.s_seconds }
        in
        (pt, sel))
      spec.Config.weights
  in
  let points = Array.to_list (Array.map fst sels) in
  let front = pareto_front points in
  let swept = List.length points in
  Instrument.incr sink Instrument.Pareto "weights" swept;
  Instrument.incr sink Instrument.Pareto "front" (List.length front);
  Instrument.incr sink Instrument.Pareto "dropped" (swept - List.length front);
  let _, first_sel = sels.(0) in
  let flow = Pipeline.run rc Pipeline.(stage_wdm >>> stage_assign) first_sel in
  { flow with
    thermal =
      Some
        { tr_front = front;
          tr_swept = swept;
          tr_dropped = swept - List.length front;
          tr_map = Operon_thermal.Thermal_map.summary spec.Config.map;
          tr_seconds = Timer.now () -. t0 } }

(* ------------------------------------------------------------------ *)
(* Prepared artifacts and the ECO re-preparation path.                *)
(* ------------------------------------------------------------------ *)

type eco_stats = {
  nets_reused : int;
  nets_recomputed : int;
  xrows_reused : int;
  dirty : int;
  interaction_dirty : int;
  added : int;
  removed : int;
  dirty_closure : int;
  cold_fallback : bool;
}

type prepared = {
  p_design : Signal.design;
  p_config : Config.t;
  p_hnets : Hypernet.t array;
  p_cands : Candidate.t list array;
  p_xcounts : Codesign.xcounts array;
  p_ctx : Selection.ctx;
  p_quarantined : int array;
  p_eco : eco_stats option;
}

(* ------------------------------------------------------------------ *)
(* Entry points.                                                      *)
(* ------------------------------------------------------------------ *)

let run_ctx ?processing ?(partition = Config.Off) rc design =
  let design, _params, hnets, _cands, _xcounts, ctx =
    Pipeline.run rc (prepare_pipeline processing partition) design
  in
  Pipeline.run rc (select_pipeline partition) (design, hnets, ctx, None)

(* A fresh run-context for one Config-driven entry point; callers seed
   via [Config.seed]. *)
let runctx_of ?sink (cfg : Config.t) =
  let rc = Runctx.create ~seed:cfg.Config.seed (Config.to_runctx_config cfg) in
  match sink with None -> rc | Some sink -> { rc with Runctx.sink = sink }

let synthesize ?sink config design =
  let rc = runctx_of ?sink config in
  match active_thermal config with
  | None ->
      run_ctx ?processing:config.Config.processing
        ~partition:config.Config.partition rc design
  | Some spec ->
      let design, _params, hnets, _cands, _xcounts, ctx =
        Pipeline.run rc
          (prepare_pipeline config.Config.processing config.Config.partition)
          design
      in
      thermal_run rc ~partition:config.Config.partition spec
        (design, hnets, ctx)

let prepare ?sink config design =
  let rc = runctx_of ?sink config in
  let design, _params, hnets, cand_lists, xcounts, ctx =
    Pipeline.run rc
      (prepare_pipeline config.Config.processing config.Config.partition)
      design
  in
  { p_design = design;
    p_config = config;
    p_hnets = hnets;
    p_cands = cand_lists;
    p_xcounts = xcounts;
    p_ctx = ctx;
    p_quarantined = Runctx.quarantined rc;
    p_eco = None }

let prepare_with ?sink config design =
  let p = prepare ?sink config design in
  (p.p_hnets, p.p_ctx)

let select_with ?sink ?initial config design hnets ctx =
  (* Selection and the WDM stages draw no randomness; the seed only
     matters to the (already finished) processing stage. *)
  let rc = runctx_of ?sink config in
  match active_thermal config with
  | None ->
      Pipeline.run rc
        (select_pipeline config.Config.partition)
        (design, hnets, ctx, initial)
  | Some spec ->
      thermal_run rc ?initial ~partition:config.Config.partition spec
        (design, hnets, ctx)

let select_prepared ?sink ?initial config p =
  select_with ?sink ?initial config p.p_design p.p_hnets p.p_ctx

(* --- ECO re-preparation --- *)

(* The configuration slice [prepare] actually reads. Two preparations
   with equal slices and equal designs produce identical artifacts, so
   per-net reuse across them is sound. *)
let prep_config_equal (a : Config.t) (b : Config.t) =
  a.Config.seed = b.Config.seed
  && a.Config.max_cands_per_net = b.Config.max_cands_per_net
  && a.Config.cache = b.Config.cache
  && a.Config.params = b.Config.params
  && a.Config.processing = b.Config.processing

let cold_eco_stats n =
  { nets_reused = 0;
    nets_recomputed = n;
    xrows_reused = 0;
    dirty = 0;
    interaction_dirty = 0;
    added = 0;
    removed = 0;
    dirty_closure = n;
    cold_fallback = true }

let prepare_eco ?sink ~(prev : prepared) config design =
  let cold () =
    let p = prepare ?sink config design in
    (match sink with
     | Some s -> Instrument.incr s Instrument.Eco "cold_fallback" 1
     | None -> ());
    { p with p_eco = Some (cold_eco_stats (Array.length p.p_hnets)) }
  in
  (* Gates: anything that could make the previous artifacts incomparable
     to what a cold preparation of [design] would compute falls back to
     the cold path. Injections perturb per-net work, a quarantined net's
     stored candidates are fallbacks rather than true DP output, and a
     differing preparation config changes every net's artifacts. *)
  if
    config.Config.injections <> []
    || prev.p_config.Config.injections <> []
    || Array.length prev.p_quarantined > 0
    || not (prep_config_equal config prev.p_config)
  then cold ()
  else begin
    let rc = runctx_of ?sink config in
    let sink = rc.Runctx.sink in
    (* Processing always runs in full: it is cheap, and running it makes
       the hyper nets — and the PRNG state every later stage sees — the
       cold run's, by construction. *)
    let design, params, hnets =
      Pipeline.run rc (stage_processing config.Config.processing) design
    in
    let diff =
      Instrument.timed sink Instrument.Eco (fun () ->
          Design_diff.diff ~neighbors:prev.p_ctx.Selection.neighbors
            prev.p_hnets hnets)
    in
    if
      (not diff.Design_diff.compatible)
      || params <> prev.p_ctx.Selection.params
    then cold ()
    else begin
      (* Baselines are recomputed for every net: the crossing index is a
         single design-wide structure and rebuilding it exactly matches
         the cold run's; per-net baseline cost is negligible next to the
         co-design DP. *)
      let design, params, hnets, index =
        Pipeline.run rc stage_baselines (design, params, hnets)
      in
      let closure = diff.Design_diff.closure in
      let status = diff.Design_diff.status in
      let cand_lists, xcounts, ctx, reused =
        Instrument.timed sink Instrument.Codesign (fun () ->
            let max_total = rc.Runctx.config.Runctx.max_cands_per_net in
            let upstream = Runctx.quarantined rc in
            let is_quarantined id = Array.exists (fun q -> q = id) upstream in
            (* Delta indices over just the changed nets' baseline trees,
               old and new. Crossing counts are additive over any
               partition of the design's segment set, and the grid
               geometry (die, cell count) matches the design-wide index,
               so for an unchanged net [cached - old_delta + new_delta]
               is exactly the count a cold recount would produce.
               [d_new] mirrors the design-wide index: a net the
               baselines stage just quarantined contributes no segments
               there, so it contributes none to the delta either. *)
            let die = design.Signal.die in
            let d_old =
              let acc = ref [] in
              Array.iteri
                (fun i h ->
                  if status.(i) = Design_diff.Dirty then
                    acc := baseline_tree_segments h :: !acc)
                prev.p_hnets;
              Array.concat !acc
            in
            let d_new =
              let acc = ref [] in
              Array.iteri
                (fun i h ->
                  if
                    status.(i) = Design_diff.Dirty
                    && not (is_quarantined h.Hypernet.id)
                  then
                    match baseline_tree_segments h with
                    | segs -> acc := segs :: !acc
                    | exception _ -> ())
                hnets;
              Array.concat !acc
            in
            let idx_old = Crossing.build_index ~die d_old in
            let idx_new = Crossing.build_index ~die d_new in
            (* Same per-net split discipline as the cold stage: streams
               are split for every net, reused or not, so the PRNG state
               and any randomized per-net decision match the cold run. *)
            let net_rngs =
              Array.map (fun _ -> Prng.split rc.Runctx.rng) hnets
            in
            (* A recomputation whose output equals the previous candidate
               list still certifies full reuse — the list is carried over
               and its crossing-matrix rows and neighbour links stay
               valid, since both depend only on the candidate values.
               Only the refreshed counts must be kept: they are this
               run's true counts, the base the next ECO patch builds on.
               This matters because a moved net rarely changes its
               neighbours' DP outcome: their counts shift, but the same
               trees win, so most of the closure collapses back to
               reuse. *)
            let fresh i hnet counts =
              let cands, s =
                Codesign.for_hypernet_counted ~max_total ~counts params hnet
              in
              if cands = prev.p_cands.(i) then `Same counts
              else `Fresh (cands, s, counts)
            in
            (* Dirty nets recount against the whole design, but only a
               few nets ever query — the flat form of the same index
               answers each query in one pass instead of a bucket walk,
               with identical counts. *)
            let flat_index = Crossing.flatten index in
            let full_recount i (hnet : Hypernet.t) =
              let crossing_est =
                Crossing.estimator flat_index ~net:hnet.Hypernet.id
              in
              fresh i hnet (Codesign.crossing_counts ~crossing_est hnet)
            in
            let results =
              Executor.try_parallel_mapi rc.Runctx.exec
                (fun i hnet ->
                  Runctx.check_inject rc ~stage:Instrument.Codesign
                    ~net:hnet.Hypernet.id ();
                  let _net_rng = net_rngs.(i) in
                  if not closure.(i) then
                    (* No changed geometry overlaps this net's bbox: no
                       queried segment's count can have moved. *)
                    `Reused
                  else if is_quarantined hnet.Hypernet.id then
                    `Fresh
                      ( Codesign.electrical_only params hnet,
                        { Codesign.raw = 1; deduped = 1; kept = 1 },
                        ([||] : Codesign.xcounts) )
                  else if status.(i) = Design_diff.Dirty then
                    (* The net itself changed: cached counts are keyed to
                       topologies that no longer exist. Recount against
                       the design-wide index. *)
                    full_recount i hnet
                  else begin
                    (* Clean content key, but inside the closure: same
                       terminals, same topologies, same queried segments
                       — patch the cached counts with the delta. Counts
                       that come out unchanged certify the whole
                       candidate list (and its Xmatrix rows) for reuse;
                       changed counts replay the DP locally, with no
                       design-wide index queries at all. *)
                    let id = hnet.Hypernet.id in
                    let sub s = Crossing.count_crossings idx_old ~exclude_net:id s in
                    let add s = Crossing.count_crossings idx_new ~exclude_net:id s in
                    match
                      Codesign.adjust_counts ~sub ~add hnet prev.p_xcounts.(i)
                    with
                    | Some counts when counts = prev.p_xcounts.(i) -> `Reused
                    | Some counts -> fresh i hnet counts
                    | None ->
                        (* Unreachable for a clean-keyed net (identical
                           terminals imply identical topology shapes);
                           recount from scratch to stay safe. *)
                        full_recount i hnet
                  end)
                hnets
            in
            let xcounts =
              Array.make (Array.length hnets) ([||] : Codesign.xcounts)
            in
            let reused = Array.make (Array.length hnets) false in
            let cand_lists =
              Array.mapi
                (fun i result ->
                  match result with
                  | Ok `Reused ->
                      reused.(i) <- true;
                      xcounts.(i) <- prev.p_xcounts.(i);
                      prev.p_cands.(i)
                  | Ok (`Same counts) ->
                      reused.(i) <- true;
                      xcounts.(i) <- counts;
                      prev.p_cands.(i)
                  | Ok (`Fresh (cands, s, counts)) ->
                      Instrument.incr sink Instrument.Codesign "raw"
                        s.Codesign.raw;
                      Instrument.incr sink Instrument.Codesign "kept"
                        s.Codesign.kept;
                      Instrument.incr sink Instrument.Codesign "pruned"
                        (s.Codesign.raw - s.Codesign.kept);
                      xcounts.(i) <- counts;
                      cands
                  | Error (e, bt) ->
                      degrade_or_raise rc ~stage:Instrument.Codesign
                        ~net:hnets.(i).Hypernet.id e bt;
                      Codesign.electrical_only params hnets.(i))
                results
            in
            let quarantined = Runctx.quarantined rc in
            if Array.length quarantined > 0 then
              Instrument.incr sink Instrument.Codesign "quarantined"
                (Array.length quarantined);
            (* A net that faulted during recomputation holds a fallback
               candidate, not the cold DP output; it was never marked
               reused, so it is never certified for Xmatrix row reuse. *)
            let ctx =
              Selection.make_ctx ~exec:rc.Runctx.exec
                ~cache:rc.Runctx.config.Runctx.cache
                ~reuse:(prev.p_ctx, reused) params cand_lists
            in
            record_xmatrix sink ctx;
            (cand_lists, xcounts, ctx, reused))
      in
      let nets_reused =
        Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 reused
      in
      let nets_recomputed = Array.length hnets - nets_reused in
      let xrows_reused = Xmatrix.reused_rows ctx.Selection.xmat in
      Instrument.incr sink Instrument.Eco "nets_reused" nets_reused;
      Instrument.incr sink Instrument.Eco "nets_recomputed" nets_recomputed;
      Instrument.incr sink Instrument.Eco "xrows_reused" xrows_reused;
      { p_design = design;
        p_config = config;
        p_hnets = hnets;
        p_cands = cand_lists;
        p_xcounts = xcounts;
        p_ctx = ctx;
        p_quarantined = Runctx.quarantined rc;
        p_eco =
          Some
            { nets_reused;
              nets_recomputed;
              xrows_reused;
              dirty = diff.Design_diff.n_dirty;
              interaction_dirty = diff.Design_diff.n_interaction;
              added = diff.Design_diff.n_added;
              removed = diff.Design_diff.n_removed;
              dirty_closure = Design_diff.closure_size diff;
              cold_fallback = false } }
    end
  end
