open Operon_util
open Operon_steiner
open Operon_engine

type mode = Runctx.mode = Ilp | Lr

module Config = struct
  type t = {
    params : Operon_optical.Params.t;
    processing : Processing.config option;
    mode : mode;
    ilp_budget : float;
    max_cands_per_net : int;
    jobs : int;
    strict : bool;
    injections : Fault.injection list;
    cache : bool;
    seed : int;
  }

  let default params =
    { params;
      processing = None;
      mode = Lr;
      ilp_budget = 3000.0;
      max_cands_per_net = 10;
      jobs = 1;
      strict = false;
      injections = [];
      cache = true;
      seed = 42 }

  let make ?processing ?(mode = Lr) ?(ilp_budget = 3000.0)
      ?(max_cands_per_net = 10) ?(jobs = 1) ?(strict = false)
      ?(injections = []) ?(cache = true) ?(seed = 42) params =
    { params; processing; mode; ilp_budget; max_cands_per_net; jobs; strict;
      injections; cache; seed }

  let with_mode mode t = { t with mode }
  let with_jobs jobs t = { t with jobs }
  let with_cache cache t = { t with cache }
  let with_processing processing t = { t with processing = Some processing }
  let with_seed seed t = { t with seed }

  let to_runctx_config t =
    { Runctx.params = t.params;
      mode = t.mode;
      ilp_budget = t.ilp_budget;
      max_cands_per_net = t.max_cands_per_net;
      jobs = t.jobs;
      strict = t.strict;
      injections = t.injections;
      cache = t.cache }
end

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;
  power : float;
  select_seconds : float;
  ilp : Ilp_select.result option;
  lr : Lr_select.result option;
  placement : Wdm_place.placement;
  assignment : Assign.result;
  trace : Instrument.sink;
  faults : Fault.t list;
  quarantined_nets : int array;
  solver_path : string;
  cache : Xmatrix.stats;
}

(* ------------------------------------------------------------------ *)
(* Fault handling at stage boundaries.                                *)
(* ------------------------------------------------------------------ *)

(* Per-item failure policy of the fan-out stages: strict runs re-raise
   the structured fault (lowest-index first, since results arrive in
   input order), degraded runs record it and let the caller substitute a
   deterministic fallback. *)
let degrade_or_raise rc ~stage ?net e bt =
  let fault = Fault.of_exn ~stage ?net e bt in
  if rc.Runctx.config.Runctx.strict then
    Printexc.raise_with_backtrace (Fault.Error fault) bt;
  Runctx.record_fault rc fault

(* ------------------------------------------------------------------ *)
(* The six pipeline stages (paper Figure 2).                          *)
(* ------------------------------------------------------------------ *)

let stage_processing processing =
  Pipeline.stage Instrument.Processing (fun rc design ->
      let params = rc.Runctx.config.Runctx.params in
      let hnets = Processing.run ?config:processing rc.Runctx.rng params design in
      let nets, hn, hpins = Processing.stats hnets in
      (* Crossing loss is bundled by the design's expected waveguide channel
         occupancy; the adjusted parameters travel inside the ctx. *)
      let params =
        if hn = 0 then params
        else
          Operon_optical.Params.auto_bundle params
            ~mean_bits:(float_of_int nets /. float_of_int hn)
      in
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Processing "nets" nets;
      Instrument.incr sink Instrument.Processing "hnets" hn;
      Instrument.incr sink Instrument.Processing "hpins" hpins;
      (design, params, hnets))

(* Optical baseline segments of every hyper net feed the crossing
   estimator used while pruning the co-design DP. One task per net;
   the executor preserves net order, so the concatenated segment array —
   and hence the crossing index — is identical whichever backend ran it.
   A net whose baseline task faults is quarantined: it contributes no
   optical segments and the codesign stage will route it all-electrical. *)
let stage_baselines =
  Pipeline.stage Instrument.Baselines (fun rc (design, params, hnets) ->
      let results =
        Executor.try_parallel_mapi rc.Runctx.exec
          (fun _ hnet ->
            Runctx.check_inject rc ~stage:Instrument.Baselines ~net:hnet.Hypernet.id ();
            let terminals = Hypernet.centers hnet in
            if Array.length terminals <= 1 then [||]
            else
              let topo = Bi1s.build Topology.L2 terminals ~root:0 in
              Array.map (fun s -> (hnet.Hypernet.id, s)) (Topology.segments topo))
          hnets
      in
      let per_net =
        Array.mapi
          (fun i result ->
            match result with
            | Ok segs -> segs
            | Error (e, bt) ->
                degrade_or_raise rc ~stage:Instrument.Baselines
                  ~net:hnets.(i).Hypernet.id e bt;
                [||])
          results
      in
      let segments = Array.concat (Array.to_list per_net) in
      Instrument.incr rc.Runctx.sink Instrument.Baselines "segments"
        (Array.length segments);
      let index = Crossing.build_index ~die:design.Signal.die segments in
      (design, params, hnets, index))

let stage_codesign =
  Pipeline.stage Instrument.Codesign (fun rc (design, params, hnets, index) ->
      let max_total = rc.Runctx.config.Runctx.max_cands_per_net in
      (* Nets already quarantined upstream (baselines faults) skip the DP
         outright: their crossing estimates would be built from segments
         that were never generated. *)
      let upstream = Runctx.quarantined rc in
      let is_quarantined id = Array.exists (fun q -> q = id) upstream in
      (* Per-net PRNG streams, split off in net-id order *before* the
         fan-out. Any randomized decision a per-net task ever makes must
         draw from its own stream, never from [rc.rng], so that results
         cannot depend on domain scheduling. Today's DP kernels are fully
         deterministic and retire the stream unused; the split discipline
         is the contract parallel candidate generation relies on. *)
      let net_rngs = Array.map (fun _ -> Prng.split rc.Runctx.rng) hnets in
      let results =
        Executor.try_parallel_mapi rc.Runctx.exec
          (fun i hnet ->
            Runctx.check_inject rc ~stage:Instrument.Codesign ~net:hnet.Hypernet.id ();
            let _net_rng = net_rngs.(i) in
            if is_quarantined hnet.Hypernet.id then
              (Codesign.electrical_only params hnet,
               { Codesign.raw = 1; deduped = 1; kept = 1 })
            else
              let crossing_est = Crossing.estimator index ~net:hnet.Hypernet.id in
              Codesign.for_hypernet_stats ~max_total ~crossing_est params hnet)
          hnets
      in
      (* Merge counters — and quarantine per-net failures — on the
         coordinator, in net-id order. The fallback candidate is built
         here, after the fan-out, so healthy nets' results are untouched. *)
      let sink = rc.Runctx.sink in
      let cand_lists =
        Array.mapi
          (fun i result ->
            match result with
            | Ok (cands, s) ->
                Instrument.incr sink Instrument.Codesign "raw" s.Codesign.raw;
                Instrument.incr sink Instrument.Codesign "kept" s.Codesign.kept;
                Instrument.incr sink Instrument.Codesign "pruned"
                  (s.Codesign.raw - s.Codesign.kept);
                cands
            | Error (e, bt) ->
                degrade_or_raise rc ~stage:Instrument.Codesign
                  ~net:hnets.(i).Hypernet.id e bt;
                Codesign.electrical_only params hnets.(i))
          results
      in
      let quarantined = Runctx.quarantined rc in
      if Array.length quarantined > 0 then
        Instrument.incr sink Instrument.Codesign "quarantined"
          (Array.length quarantined);
      let ctx =
        Selection.make_ctx ~exec:rc.Runctx.exec
          ~cache:rc.Runctx.config.Runctx.cache params cand_lists
      in
      let xs = Xmatrix.stats ctx.Selection.xmat in
      if xs.Xmatrix.enabled then begin
        Instrument.incr sink Instrument.Codesign "xmatrix_pairs" xs.Xmatrix.pairs;
        Instrument.incr sink Instrument.Codesign "xmatrix_entries" xs.Xmatrix.entries;
        Instrument.incr sink Instrument.Codesign "xmatrix_build_ms"
          (int_of_float (Float.round (xs.Xmatrix.build_seconds *. 1000.0)))
      end;
      (design, hnets, ctx))

type selected = {
  s_design : Signal.design;
  s_hnets : Hypernet.t array;
  s_ctx : Selection.ctx;
  s_choice : int array;
  s_seconds : float;
  s_ilp : Ilp_select.result option;
  s_lr : Lr_select.result option;
  s_solver_path : string;
}

(* Selection runs a fallback chain with explicit budgets: the configured
   engine first (ILP under its wall-clock/pivot budget, LR under its
   iteration/wall-clock budget), then the cheaper engines in order, down
   to the solver-free greedy feasibility repair. Every hop is recorded as
   a Select-stage fault; strict mode stops at the first one. *)
let stage_select =
  Pipeline.stage Instrument.Select (fun rc (design, hnets, ctx) ->
      let cfg = rc.Runctx.config in
      let sink = rc.Runctx.sink in
      let path = ref [] in
      let attempt name f =
        path := name :: !path;
        match f () with
        | r -> Some r
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            degrade_or_raise rc ~stage:Instrument.Select ?net:None e bt;
            Instrument.incr sink Instrument.Select "fallbacks" 1;
            None
      in
      let run_ilp () =
        Runctx.check_inject rc ~stage:Instrument.Select ();
        let r = Ilp_select.select ~budget_seconds:cfg.Runctx.ilp_budget ctx in
        Instrument.incr sink Instrument.Select "components" r.Ilp_select.components;
        Instrument.incr sink Instrument.Select "timed_out" r.Ilp_select.timed_out;
        Instrument.incr sink Instrument.Select "nodes" r.Ilp_select.nodes;
        (r.Ilp_select.choice, r.Ilp_select.elapsed, Some r, None)
      in
      let run_lr () =
        Runctx.check_inject rc ~stage:Instrument.Select ();
        let r = Lr_select.select ~budget_seconds:cfg.Runctx.ilp_budget ctx in
        Instrument.incr sink Instrument.Select "iterations" r.Lr_select.iterations;
        Instrument.incr sink Instrument.Select "demoted" r.Lr_select.demoted;
        (r.Lr_select.choice, r.Lr_select.elapsed, None, Some r)
      in
      let run_greedy () =
        (* Terminal repair: deterministic, solver-free, always feasible. *)
        let choice, dt =
          Timer.time (fun () -> Selection.polish ctx (Selection.greedy ctx))
        in
        (choice, dt, None, None)
      in
      let chain =
        match cfg.Runctx.mode with
        | Ilp -> [ ("ilp", run_ilp); ("lr", run_lr); ("greedy", run_greedy) ]
        | Lr -> [ ("lr", run_lr); ("greedy", run_greedy) ]
      in
      let rec first = function
        | [] ->
            (* Even the greedy repair crashed: the all-electrical
               selection (the paper's Eq. 6 baseline) cannot fail. *)
            path := "electrical" :: !path;
            (Selection.all_electrical ctx, 0.0, None, None)
        | (name, f) :: rest -> (
            match attempt name f with Some r -> r | None -> first rest)
      in
      let before = Xmatrix.stats ctx.Selection.xmat in
      let choice, seconds, ilp, lr = first chain in
      let after = Xmatrix.stats ctx.Selection.xmat in
      Instrument.incr sink Instrument.Select "cache_hits"
        (after.Xmatrix.hits - before.Xmatrix.hits);
      Instrument.incr sink Instrument.Select "cache_misses"
        (after.Xmatrix.misses - before.Xmatrix.misses);
      { s_design = design; s_hnets = hnets; s_ctx = ctx; s_choice = choice;
        s_seconds = seconds; s_ilp = ilp; s_lr = lr;
        s_solver_path = String.concat "->" (List.rev !path) })

let stage_wdm =
  Pipeline.stage Instrument.Wdm (fun rc sel ->
      let params = sel.s_ctx.Selection.params in
      let conns = Wdm_place.connections_of_selection sel.s_ctx sel.s_choice in
      let placement = Wdm_place.place params conns in
      ignore (Wdm_place.legalize params placement.Wdm_place.tracks);
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Wdm "connections" (Array.length conns);
      Instrument.incr sink Instrument.Wdm "tracks"
        (Array.length placement.Wdm_place.tracks);
      (sel, placement))

let stage_assign =
  Pipeline.stage Instrument.Assign (fun rc (sel, placement) ->
      let params = sel.s_ctx.Selection.params in
      let assignment = Assign.run params placement in
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Assign "initial" assignment.Assign.initial_count;
      Instrument.incr sink Instrument.Assign "final" assignment.Assign.final_count;
      { design = sel.s_design;
        hnets = sel.s_hnets;
        ctx = sel.s_ctx;
        mode = rc.Runctx.config.Runctx.mode;
        choice = sel.s_choice;
        power = Selection.power sel.s_ctx sel.s_choice;
        select_seconds = sel.s_seconds;
        ilp = sel.s_ilp;
        lr = sel.s_lr;
        placement;
        assignment;
        trace = sink;
        faults = Runctx.faults rc;
        quarantined_nets = Runctx.quarantined rc;
        solver_path = sel.s_solver_path;
        cache = Xmatrix.stats sel.s_ctx.Selection.xmat })

let prepare_pipeline processing =
  Pipeline.(stage_processing processing >>> stage_baselines >>> stage_codesign)

let select_pipeline = Pipeline.(stage_select >>> stage_wdm >>> stage_assign)

let full_pipeline processing = Pipeline.(prepare_pipeline processing >>> select_pipeline)

(* ------------------------------------------------------------------ *)
(* Entry points.                                                      *)
(* ------------------------------------------------------------------ *)

let run_ctx ?processing rc design = Pipeline.run rc (full_pipeline processing) design

(* A fresh run-context for one Config-driven entry point; callers seed
   via [Config.seed]. *)
let runctx_of ?sink (cfg : Config.t) =
  let rc = Runctx.create ~seed:cfg.Config.seed (Config.to_runctx_config cfg) in
  match sink with None -> rc | Some sink -> { rc with Runctx.sink = sink }

let synthesize ?sink config design =
  let rc = runctx_of ?sink config in
  Pipeline.run rc (full_pipeline config.Config.processing) design

let prepare_with ?sink config design =
  let rc = runctx_of ?sink config in
  let _, hnets, ctx =
    Pipeline.run rc (prepare_pipeline config.Config.processing) design
  in
  (hnets, ctx)

let select_with ?sink config design hnets ctx =
  (* Selection and the WDM stages draw no randomness; the seed only
     matters to the (already finished) processing stage. *)
  let rc = runctx_of ?sink config in
  Pipeline.run rc select_pipeline (design, hnets, ctx)
