open Operon_util
open Operon_steiner
open Operon_engine

type mode = Runctx.mode = Ilp | Lr

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;
  power : float;
  select_seconds : float;
  ilp : Ilp_select.result option;
  lr : Lr_select.result option;
  placement : Wdm_place.placement;
  assignment : Assign.result;
  trace : Instrument.sink;
}

(* ------------------------------------------------------------------ *)
(* The six pipeline stages (paper Figure 2).                          *)
(* ------------------------------------------------------------------ *)

let stage_processing processing =
  Pipeline.stage Instrument.Processing (fun rc design ->
      let params = rc.Runctx.config.Runctx.params in
      let hnets = Processing.run ?config:processing rc.Runctx.rng params design in
      let nets, hn, hpins = Processing.stats hnets in
      (* Crossing loss is bundled by the design's expected waveguide channel
         occupancy; the adjusted parameters travel inside the ctx. *)
      let params =
        if hn = 0 then params
        else
          Operon_optical.Params.auto_bundle params
            ~mean_bits:(float_of_int nets /. float_of_int hn)
      in
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Processing "nets" nets;
      Instrument.incr sink Instrument.Processing "hnets" hn;
      Instrument.incr sink Instrument.Processing "hpins" hpins;
      (design, params, hnets))

(* Optical baseline segments of every hyper net feed the crossing
   estimator used while pruning the co-design DP. One task per net;
   the executor preserves net order, so the concatenated segment array —
   and hence the crossing index — is identical whichever backend ran it. *)
let stage_baselines =
  Pipeline.stage Instrument.Baselines (fun rc (design, params, hnets) ->
      let per_net =
        Executor.parallel_map rc.Runctx.exec
          (fun hnet ->
            let terminals = Hypernet.centers hnet in
            if Array.length terminals <= 1 then [||]
            else
              let topo = Bi1s.build Topology.L2 terminals ~root:0 in
              Array.map (fun s -> (hnet.Hypernet.id, s)) (Topology.segments topo))
          hnets
      in
      let segments = Array.concat (Array.to_list per_net) in
      Instrument.incr rc.Runctx.sink Instrument.Baselines "segments"
        (Array.length segments);
      let index = Crossing.build_index ~die:design.Signal.die segments in
      (design, params, hnets, index))

let stage_codesign =
  Pipeline.stage Instrument.Codesign (fun rc (design, params, hnets, index) ->
      let max_total = rc.Runctx.config.Runctx.max_cands_per_net in
      (* Per-net PRNG streams, split off in net-id order *before* the
         fan-out. Any randomized decision a per-net task ever makes must
         draw from its own stream, never from [rc.rng], so that results
         cannot depend on domain scheduling. Today's DP kernels are fully
         deterministic and retire the stream unused; the split discipline
         is the contract parallel candidate generation relies on. *)
      let net_rngs = Array.map (fun _ -> Prng.split rc.Runctx.rng) hnets in
      let results =
        Executor.parallel_mapi rc.Runctx.exec
          (fun i hnet ->
            let _net_rng = net_rngs.(i) in
            let crossing_est = Crossing.estimator index ~net:hnet.Hypernet.id in
            Codesign.for_hypernet_stats ~max_total ~crossing_est params hnet)
          hnets
      in
      (* Merge counters on the coordinator, in net-id order. *)
      let sink = rc.Runctx.sink in
      Array.iter
        (fun (_, s) ->
          Instrument.incr sink Instrument.Codesign "raw" s.Codesign.raw;
          Instrument.incr sink Instrument.Codesign "kept" s.Codesign.kept;
          Instrument.incr sink Instrument.Codesign "pruned"
            (s.Codesign.raw - s.Codesign.kept))
        results;
      let ctx = Selection.make_ctx params (Array.map fst results) in
      (design, hnets, ctx))

type selected = {
  s_design : Signal.design;
  s_hnets : Hypernet.t array;
  s_ctx : Selection.ctx;
  s_choice : int array;
  s_seconds : float;
  s_ilp : Ilp_select.result option;
  s_lr : Lr_select.result option;
}

let stage_select =
  Pipeline.stage Instrument.Select (fun rc (design, hnets, ctx) ->
      let cfg = rc.Runctx.config in
      let sink = rc.Runctx.sink in
      let choice, seconds, ilp, lr =
        match cfg.Runctx.mode with
        | Ilp ->
            let r = Ilp_select.select ~budget_seconds:cfg.Runctx.ilp_budget ctx in
            Instrument.incr sink Instrument.Select "components" r.Ilp_select.components;
            Instrument.incr sink Instrument.Select "timed_out" r.Ilp_select.timed_out;
            Instrument.incr sink Instrument.Select "nodes" r.Ilp_select.nodes;
            (r.Ilp_select.choice, r.Ilp_select.elapsed, Some r, None)
        | Lr ->
            let r = Lr_select.select ctx in
            Instrument.incr sink Instrument.Select "iterations" r.Lr_select.iterations;
            Instrument.incr sink Instrument.Select "demoted" r.Lr_select.demoted;
            (r.Lr_select.choice, r.Lr_select.elapsed, None, Some r)
      in
      { s_design = design; s_hnets = hnets; s_ctx = ctx; s_choice = choice;
        s_seconds = seconds; s_ilp = ilp; s_lr = lr })

let stage_wdm =
  Pipeline.stage Instrument.Wdm (fun rc sel ->
      let params = sel.s_ctx.Selection.params in
      let conns = Wdm_place.connections_of_selection sel.s_ctx sel.s_choice in
      let placement = Wdm_place.place params conns in
      ignore (Wdm_place.legalize params placement.Wdm_place.tracks);
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Wdm "connections" (Array.length conns);
      Instrument.incr sink Instrument.Wdm "tracks"
        (Array.length placement.Wdm_place.tracks);
      (sel, placement))

let stage_assign =
  Pipeline.stage Instrument.Assign (fun rc (sel, placement) ->
      let params = sel.s_ctx.Selection.params in
      let assignment = Assign.run params placement in
      let sink = rc.Runctx.sink in
      Instrument.incr sink Instrument.Assign "initial" assignment.Assign.initial_count;
      Instrument.incr sink Instrument.Assign "final" assignment.Assign.final_count;
      { design = sel.s_design;
        hnets = sel.s_hnets;
        ctx = sel.s_ctx;
        mode = rc.Runctx.config.Runctx.mode;
        choice = sel.s_choice;
        power = Selection.power sel.s_ctx sel.s_choice;
        select_seconds = sel.s_seconds;
        ilp = sel.s_ilp;
        lr = sel.s_lr;
        placement;
        assignment;
        trace = sink })

let prepare_pipeline processing =
  Pipeline.(stage_processing processing >>> stage_baselines >>> stage_codesign)

let select_pipeline = Pipeline.(stage_select >>> stage_wdm >>> stage_assign)

let full_pipeline processing = Pipeline.(prepare_pipeline processing >>> select_pipeline)

(* ------------------------------------------------------------------ *)
(* Entry points.                                                      *)
(* ------------------------------------------------------------------ *)

let run_ctx ?processing rc design = Pipeline.run rc (full_pipeline processing) design

let sink_or_fresh = function Some s -> s | None -> Instrument.create ()

let prepare ?processing ?(max_cands_per_net = 10) ?(exec = Executor.sequential)
    ?sink rng params design =
  let config =
    { (Runctx.default_config params) with
      Runctx.max_cands_per_net;
      jobs = Executor.jobs exec }
  in
  let rc = { Runctx.config; rng; exec; sink = sink_or_fresh sink } in
  let _, hnets, ctx = Pipeline.run rc (prepare_pipeline processing) design in
  (hnets, ctx)

let run_prepared ?(mode = Lr) ?(ilp_budget = 3000.0) ?sink params design hnets ctx =
  (* Selection and the WDM stages draw no randomness; the context's PRNG
     only feeds the (already finished) processing stage. *)
  let config = { (Runctx.default_config params) with Runctx.mode; ilp_budget } in
  let rc =
    { Runctx.config; rng = Prng.create 0; exec = Executor.sequential;
      sink = sink_or_fresh sink }
  in
  Pipeline.run rc select_pipeline (design, hnets, ctx)

let run ?processing ?(max_cands_per_net = 10) ?(mode = Lr) ?(ilp_budget = 3000.0)
    ?(exec = Executor.sequential) ?sink rng params design =
  let config =
    { Runctx.params; mode; ilp_budget; max_cands_per_net; jobs = Executor.jobs exec }
  in
  let rc = { Runctx.config; rng; exec; sink = sink_or_fresh sink } in
  run_ctx ?processing rc design
