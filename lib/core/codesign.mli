(** Optical-electrical route co-design (paper Section 3.2).

    For each baseline tree topology, a bottom-up dynamic program — in the
    spirit of classic buffer insertion — labels every edge Optical or
    Electrical, tracking per-subtree (power, loss) behaviour and pruning
    dominated configurations, exactly as Fig. 5(b) of the paper sketches.
    Surviving root configurations are materialized as {!Candidate.t}
    values; the paper's Fig. 5(c) list corresponds to the output of
    {!enumerate} on the example topology.

    State per node [v], for the two scenarios the parent may impose:
    - [pow_e]: per-bit subtree power when the parent edge is electrical
      (or [v] is the root) — any optical subtrees topped at [v] are closed
      there by a modulator, so their loss is checked against the budget;
    - [pow_o]: per-bit subtree power when the parent edge is optical —
      light arrives from above, [v] taps it (detector) and/or relays it;
    - [up_loss]: in the parent-optical scenario, the worst accumulated
      loss from [v] down to any detector, including splitting at [v].

    A scenario that violates the detection budget is priced [infinity].
    Dominated states (all three fields no better) are pruned. *)

open Operon_geom
open Operon_optical
open Operon_steiner

val enumerate :
  ?max_cands:int ->
  ?edge_crossings:(int -> int) ->
  Params.t ->
  Hypernet.t ->
  Topology.t ->
  Candidate.t list
(** All non-dominated labellings of one topology, cheapest first.
    [max_cands] bounds the states kept per node (default 16).
    [edge_crossings v] estimates how many foreign optical segments cross
    the parent edge of node [v] (default: none); the estimate feeds the
    DP's loss pruning, while exact pairwise coupling is re-computed later
    by the ILP/LR stages. The all-electrical labelling is always present.
    Trivial single-pin hyper nets yield a single zero-power candidate. *)

val for_hypernet :
  ?max_cands:int ->
  ?max_total:int ->
  ?crossing_est:(Segment.t -> int) ->
  Params.t ->
  Hypernet.t ->
  Candidate.t list
(** Candidate set over all diverse baselines ({!Bi1s.baselines}) plus the
    dedicated rectilinear-Steiner electrical fallback, deduplicated and
    truncated to [max_total] (default 10) keeping the cheapest; the best
    pure-electrical candidate is always retained (Formula (3)'s [a_ie]). *)

type gen_stats = {
  raw : int;  (** candidates materialized across all baselines *)
  deduped : int;  (** after identical-labelling dedup *)
  kept : int;  (** after the [max_total] truncation *)
}

val for_hypernet_stats :
  ?max_cands:int ->
  ?max_total:int ->
  ?crossing_est:(Segment.t -> int) ->
  Params.t ->
  Hypernet.t ->
  Candidate.t list * gen_stats
(** {!for_hypernet} plus generation/prune counters for the pipeline's
    instrumentation sink. *)

val electrical_only : Params.t -> Hypernet.t -> Candidate.t list
(** The deterministic quarantine fallback: just the dedicated
    rectilinear-Steiner all-electrical candidate (the paper's Eq. 6
    baseline realisation of [a_ie]), with no DP and no crossing
    estimates. This is what a faulting hyper net is routed with so the
    rest of the design can proceed. *)

val dp_power_of : Candidate.t -> float
(** The power the DP bookkeeping assigns to a materialized candidate —
    exposed for cross-checking against {!Candidate.of_labels} in tests. *)
