(** Optical-electrical route co-design (paper Section 3.2).

    For each baseline tree topology, a bottom-up dynamic program — in the
    spirit of classic buffer insertion — labels every edge Optical or
    Electrical, tracking per-subtree (power, loss) behaviour and pruning
    dominated configurations, exactly as Fig. 5(b) of the paper sketches.
    Surviving root configurations are materialized as {!Candidate.t}
    values; the paper's Fig. 5(c) list corresponds to the output of
    {!enumerate} on the example topology.

    State per node [v], for the two scenarios the parent may impose:
    - [pow_e]: per-bit subtree power when the parent edge is electrical
      (or [v] is the root) — any optical subtrees topped at [v] are closed
      there by a modulator, so their loss is checked against the budget;
    - [pow_o]: per-bit subtree power when the parent edge is optical —
      light arrives from above, [v] taps it (detector) and/or relays it;
    - [up_loss]: in the parent-optical scenario, the worst accumulated
      loss from [v] down to any detector, including splitting at [v].

    A scenario that violates the detection budget is priced [infinity].
    Dominated states (all three fields no better) are pruned. *)

open Operon_geom
open Operon_optical
open Operon_steiner

val enumerate :
  ?max_cands:int ->
  ?edge_crossings:(int -> int) ->
  Params.t ->
  Hypernet.t ->
  Topology.t ->
  Candidate.t list
(** All non-dominated labellings of one topology, cheapest first.
    [max_cands] bounds the states kept per node (default 16).
    [edge_crossings v] estimates how many foreign optical segments cross
    the parent edge of node [v] (default: none); the estimate feeds the
    DP's loss pruning, while exact pairwise coupling is re-computed later
    by the ILP/LR stages. The all-electrical labelling is always present.
    Trivial single-pin hyper nets yield a single zero-power candidate. *)

val for_hypernet :
  ?max_cands:int ->
  ?max_total:int ->
  ?crossing_est:(Segment.t -> int) ->
  Params.t ->
  Hypernet.t ->
  Candidate.t list
(** Candidate set over all diverse baselines ({!Bi1s.baselines}) plus the
    dedicated rectilinear-Steiner electrical fallback, deduplicated and
    truncated to [max_total] (default 10) keeping the cheapest; the best
    pure-electrical candidate is always retained (Formula (3)'s [a_ie]). *)

type gen_stats = {
  raw : int;  (** candidates materialized across all baselines *)
  deduped : int;  (** after identical-labelling dedup *)
  kept : int;  (** after the [max_total] truncation *)
}

val for_hypernet_stats :
  ?max_cands:int ->
  ?max_total:int ->
  ?crossing_est:(Segment.t -> int) ->
  Params.t ->
  Hypernet.t ->
  Candidate.t list * gen_stats
(** {!for_hypernet} plus generation/prune counters for the pipeline's
    instrumentation sink. Equivalent to {!crossing_counts} followed by
    {!for_hypernet_counted}. *)

type xcounts = int array array
(** The crossing counts one hyper net's candidate generation consumes:
    one row per baseline topology (in {!Bi1s.baselines} order), indexed
    by node, holding the estimate for the node's parent edge (0 in the
    root's slot). [[||]] for trivial single-pin nets. The shape and the
    queried segments are a pure function of the hyper net's terminals. *)

val crossing_counts : crossing_est:(Segment.t -> int) -> Hypernet.t -> xcounts
(** Materialize every crossing estimate {!for_hypernet_counted} will
    read. Splitting the queries from the DP is what makes the counts a
    cacheable per-net artifact: an ECO re-preparation can patch them
    instead of re-querying the whole design's segment index. *)

val adjust_counts :
  sub:(Segment.t -> int) ->
  add:(Segment.t -> int) ->
  Hypernet.t ->
  xcounts ->
  xcounts option
(** [adjust_counts ~sub ~add hnet cached] re-derives the count table for
    an unchanged hyper net when {e other} nets moved: each cached entry
    becomes [cached - sub seg + add seg], with [sub]/[add] counting
    crossings against only the changed nets' old/new baseline segments.
    Exact because crossing counts are additive over any partition of the
    design's segment set. [None] if [cached]'s shape does not match the
    net's topologies (the net itself changed — the caller must fall back
    to a full recount). *)

val for_hypernet_counted :
  ?max_cands:int ->
  ?max_total:int ->
  counts:xcounts ->
  Params.t ->
  Hypernet.t ->
  Candidate.t list * gen_stats
(** {!for_hypernet_stats} with every crossing estimate supplied up
    front. Given the counts a cold run would have queried, the output is
    bit-identical to the cold run's — the heart of the ECO per-net
    memoization. Raises [Invalid_argument] on a shape mismatch. *)

val electrical_only : Params.t -> Hypernet.t -> Candidate.t list
(** The deterministic quarantine fallback: just the dedicated
    rectilinear-Steiner all-electrical candidate (the paper's Eq. 6
    baseline realisation of [a_ie]), with no DP and no crossing
    estimates. This is what a faulting hyper net is routed with so the
    rest of the design can proceed. *)

val dp_power_of : Candidate.t -> float
(** The power the DP bookkeeping assigns to a materialized candidate —
    exposed for cross-checking against {!Candidate.of_labels} in tests. *)
