(** Crossing-loss coupling support.

    Waveguide crossings couple the loss of different hyper nets: Formula
    (3c) contains the quadratic term [l_x(i,j,m,n,p) * a_ij * a_mn]. Two
    facilities live here:

    - a spatial index over baseline optical segments that gives the
      co-design DP a cheap estimate of how contested an edge is;
    - the Section 3.3 {e speed-up}: crossing variables are only kept for
      hyper net pairs whose bounding boxes overlap, and the interaction
      graph decomposes the ILP into independent components. *)

open Operon_geom

type index

val build_index : die:Rect.t -> ?cells:int -> (int * Segment.t) array -> index
(** [build_index ~die segments] indexes [(net_id, segment)] pairs on a
    uniform [cells] x [cells] bucket grid (default 32). *)

val flatten : index -> index
(** Convert a bucket-grid index into one that answers queries by linear
    scan over its distinct entries. Counts are identical either way;
    the flat form is faster when only a few nets will ever be queried
    (a long segment's bbox covers most of the grid, so a bucket walk
    touches far more entries than a single pass). Used by the ECO
    recount path. Identity on already-flat indexes. *)

val count_crossings : index -> exclude_net:int -> Segment.t -> int
(** Proper crossings between a query segment and every indexed segment
    belonging to a different net. *)

val estimator : index -> net:int -> Segment.t -> int
(** Estimation closure handed to {!Codesign.for_hypernet}. *)

val interaction_components : Rect.t array -> int array array
(** Group nets whose bounding boxes overlap (transitively) into connected
    components — each becomes one independent selection subproblem.
    Input: per-net bounding box; output: arrays of net ids. *)

val interacting_pairs : Rect.t array -> (int * int) list
(** All pairs (i < j) with overlapping bounding boxes — the pairs whose
    crossing variables the reduced formulation retains. *)
