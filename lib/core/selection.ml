open Operon_geom
open Operon_optical
open Operon_thermal
open Operon_util

(* Thermal scenario state of a context: per-(net, candidate, path)
   detuning penalties precomputed against a static thermal map, the
   per-candidate worst-path penalty [tcost], and the objective weight
   trading power against thermal cost. The map is fixed per run and the
   penalty of a path never depends on the neighbours' choices, so one
   profile serves a whole Pareto weight ladder (and the crossing cache
   stays valid across it). *)
type thermal = {
  penalty : float array array array;
      (* [i][j][p]: detuning dB added to path p of candidate j of net i *)
  tcost : float array array;  (* [i][j] = max over p of penalty *)
  weight : float;  (* objective weight on tcost; >= 0 *)
}

type ctx = {
  params : Params.t;
  cands : Candidate.t array array;
  bboxes : Rect.t option array;
  neighbors : int array array;
  elec_idx : int array;
  xmat : Xmatrix.t;
  thermal : thermal option;
}

let optical_bbox (cands : Candidate.t array) =
  let pts = ref [] in
  Array.iter
    (fun (c : Candidate.t) ->
      Array.iter
        (fun (s : Segment.t) ->
          pts := s.Segment.a :: s.Segment.b :: !pts)
        c.Candidate.opt_segments)
    cands;
  match !pts with [] -> None | l -> Some (Rect.of_points (Array.of_list l))

(* Is [j] in the sorted-ascending neighbour row [arr]? The rows built
   below are ascending by construction (see the List.rev note), which the
   ECO reuse path depends on. *)
let mem_sorted arr j =
  let lo = ref 0 and hi = ref (Array.length arr) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = arr.(mid) in
    if v = j then found := true else if v < j then lo := mid + 1 else hi := mid
  done;
  !found

let make_ctx ?(exec = Executor.sequential) ?(cache = true) ?reuse params
    cand_lists =
  let cands = Array.map Array.of_list cand_lists in
  Array.iteri
    (fun i arr ->
      if Array.length arr = 0 then
        invalid_arg (Printf.sprintf "Selection.make_ctx: net %d has no candidates" i))
    cands;
  let elec_idx =
    Array.mapi
      (fun i arr ->
        let best = ref (-1) in
        Array.iteri
          (fun j (c : Candidate.t) ->
            if c.Candidate.pure_electrical
               && (!best = -1 || c.Candidate.power < arr.(!best).Candidate.power)
            then best := j)
          arr;
        if !best = -1 then
          invalid_arg
            (Printf.sprintf "Selection.make_ctx: net %d lacks an electrical fallback" i);
        !best)
      cands
  in
  let bboxes = Array.map optical_bbox cands in
  let n = Array.length cands in
  (* Pooled optical geometry per net, for refining the bbox filter: two
     nets are true neighbours only when some candidate pair actually
     crosses — overlapping boxes of long parallel corridors are common
     and coupling-free. *)
  let pooled =
    Array.map
      (fun arr ->
        Array.to_list arr
        |> List.concat_map (fun (c : Candidate.t) ->
               Array.to_list c.Candidate.opt_segments)
        |> Array.of_list)
      cands
  in
  (* ECO reuse: [ok.(i)] certifies net [i]'s candidate list is carried
     over from [prev] unchanged. For a pair of carried-over nets the
     crossing geometry is identical, so the previous adjacency answers
     the (expensive) pooled-crossing question exactly; any pair touching
     a recomputed net falls back to the geometry. *)
  let reuse =
    match reuse with
    | Some ((prev : ctx), ok)
      when Array.length ok = n && Array.length prev.cands = n ->
        Some (prev, ok)
    | _ -> None
  in
  let crossing_pair i j =
    match (bboxes.(i), bboxes.(j)) with
    | Some bi, Some bj ->
        Rect.overlaps bi bj && Segment.count_crossings pooled.(i) pooled.(j) > 0
    | _ -> false
  in
  let linked =
    match reuse with
    | None -> crossing_pair
    | Some (prev, ok) ->
        fun i j ->
          if ok.(i) && ok.(j) then mem_sorted prev.neighbors.(i) j
          else crossing_pair i j
  in
  (* Enumerate candidate pairs through the spatial index over the
     optical subset instead of the O(n²) sweep. Only bbox-overlapping
     pairs can be linked: [crossing_pair] requires overlap outright, and
     a reused adjacency row only ever contains pairs whose (identical,
     certified by [ok]) geometry overlapped when the row was built — so
     restricting [linked] to the index's pairs loses nothing. *)
  let compact =
    let buf = Growbuf.create ~capacity:n () in
    for i = 0 to n - 1 do
      if bboxes.(i) <> None then Growbuf.push buf i
    done;
    Growbuf.to_array buf
  in
  let rects =
    Array.map
      (fun i ->
        match bboxes.(i) with Some r -> r | None -> assert false)
      compact
  in
  let pairs = Growbuf.create ~capacity:(4 * (n + 1)) () in
  let idx = Overlap.build rects in
  Overlap.iter_pairs idx (fun a b ->
      (* [compact] is ascending, so a < b implies i < j. *)
      let i = compact.(a) and j = compact.(b) in
      if linked i j then Growbuf.push pairs ((i * n) + j));
  (* Sorting the encoded pairs ascending makes the fill below emit every
     row ascending — smaller partners (from pairs where the row is the
     second coordinate, which sort first) before larger ones — the
     property [mem_sorted] and the ECO diff rely on. *)
  Growbuf.sort pairs;
  let deg = Array.make n 0 in
  Growbuf.iter
    (fun v ->
      deg.(v / n) <- deg.(v / n) + 1;
      deg.(v mod n) <- deg.(v mod n) + 1)
    pairs;
  let neighbors = Array.init n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n 0 in
  Growbuf.iter
    (fun v ->
      let i = v / n and j = v mod n in
      neighbors.(i).(fill.(i)) <- j;
      fill.(i) <- fill.(i) + 1;
      neighbors.(j).(fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1)
    pairs;
  let xmat =
    if cache then
      let xreuse =
        Option.map
          (fun ((prev : ctx), ok) ->
            (prev.xmat, fun i m -> ok.(i) && ok.(m)))
          reuse
      in
      Xmatrix.build ~exec ?reuse:xreuse cands neighbors
    else Xmatrix.direct cands
  in
  { params; cands; bboxes; neighbors; elec_idx; xmat; thermal = None }

let uncached ctx = { ctx with xmat = Xmatrix.direct ctx.cands }

let thermal_profile ctx map =
  let t_ref = ctx.params.Params.t_ref in
  (* Zero-penalty trim: outside the map's thermal support every sample
     detunes by exactly 0.0 ([Thermal_map.support] extends boundary
     support cells to infinity, covering the out-of-die clamp), so nets
     far from the heated region skip sampling entirely and the sweep
     cost scales with the hotspot footprint, not the design. *)
  let support = Thermal_map.support ~t_ref map in
  let segment_dt seg =
    match support with
    | None -> 0.0
    | Some s ->
        if Rect.overlaps s (Segment.bbox seg) then
          Thermal_map.segment_detuning map ~t_ref seg
        else 0.0
  in
  let penalty =
    Array.map
      (fun arr ->
        Array.map
          (fun (c : Candidate.t) ->
            Array.map
              (fun (path : Candidate.path) ->
                let dts = Array.map segment_dt path.Candidate.segments in
                Loss.path_thermal ctx.params ~base:0.0 ~dts)
              c.Candidate.paths)
          arr)
      ctx.cands
  in
  let tcost =
    Array.map (Array.map (Array.fold_left Float.max 0.0)) penalty
  in
  { penalty; tcost; weight = 0.0 }

let with_thermal ctx profile ~weight =
  if not (Float.is_finite weight) || weight < 0.0 then
    invalid_arg "Selection.with_thermal: weight must be finite and non-negative";
  if Array.length profile.penalty <> Array.length ctx.cands then
    invalid_arg "Selection.with_thermal: profile shape mismatch";
  { ctx with thermal = Some { profile with weight } }

let selected ctx choice i = ctx.cands.(i).(choice.(i))

let power ctx choice =
  let acc = ref 0.0 in
  Array.iteri (fun i j -> acc := !acc +. ctx.cands.(i).(j).Candidate.power) choice;
  !acc

(* Selection objective of one candidate: physical power, plus the
   weighted worst-path thermal cost when the context carries a thermal
   scenario. The [None] arm is today's exact expression, so a context
   without thermal state optimizes bit-identically to the pre-thermal
   code. *)
let objective ctx i j =
  let c = ctx.cands.(i).(j) in
  match ctx.thermal with
  | None -> c.Candidate.power
  | Some t -> c.Candidate.power +. (t.weight *. t.tcost.(i).(j))

let total_objective ctx choice =
  let acc = ref 0.0 in
  Array.iteri (fun i j -> acc := !acc +. objective ctx i j) choice;
  !acc

(* Canonical per-net loss evaluation; everything else (full recompute,
   incremental Eval, signoff) derives its numbers from this one function
   so they are bit-identical by construction. Summation runs over the
   neighbours in array order; a neighbour without optical geometry
   contributes a bundled zero (exactly 0.0), matching the pre-cache
   skip. With a thermal scenario, each path additionally pays its
   precomputed detuning penalty — feasibility and margins then speak the
   temperature-aware loss; without one, the expression tree is exactly
   the historical one. *)
let net_path_losses ctx choice i =
  let j = choice.(i) in
  let c = ctx.cands.(i).(j) in
  Array.mapi
    (fun p (path : Candidate.path) ->
      let crossing =
        Array.fold_left
          (fun acc m ->
            acc +. Xmatrix.loss_on_path ctx.xmat ctx.params ~i ~j ~p ~m ~n:choice.(m))
          0.0 ctx.neighbors.(i)
      in
      match ctx.thermal with
      | None -> path.Candidate.intrinsic_loss +. crossing
      | Some t ->
          path.Candidate.intrinsic_loss +. crossing +. t.penalty.(i).(j).(p))
    c.Candidate.paths

let worst_violation ctx choice =
  let l_max = ctx.params.Params.l_max in
  let worst = ref neg_infinity in
  Array.iteri
    (fun i _ ->
      Array.iter
        (fun loss -> if loss -. l_max > !worst then worst := loss -. l_max)
        (net_path_losses ctx choice i))
    ctx.cands;
  if !worst = neg_infinity then 0.0 else !worst

let feasible ctx choice = worst_violation ctx choice <= 1e-9

(* Worst path loss of a selection under this context's loss model
   (thermal-aware when the context carries a scenario); 0.0 for a
   selection with no optical paths at all. *)
let worst_path_loss ctx choice =
  let worst = ref 0.0 in
  Array.iteri
    (fun i _ ->
      Array.iter
        (fun loss -> if loss > !worst then worst := loss)
        (net_path_losses ctx choice i))
    ctx.cands;
  !worst

let thermal_margin ctx choice =
  ctx.params.Params.l_max -. worst_path_loss ctx choice

let all_electrical ctx = Array.copy ctx.elec_idx

let greedy ctx =
  Array.mapi
    (fun i arr ->
      let best = ref 0 in
      Array.iteri
        (fun j _ ->
          if objective ctx i j < objective ctx i !best then best := j)
        arr;
      !best)
    ctx.cands

let sanitize_initial ctx initial =
  let n = Array.length ctx.cands in
  if Array.length initial <> n then None
  else
    Some
      (Array.mapi
         (fun i j ->
           if j >= 0 && j < Array.length ctx.cands.(i) then j
           else ctx.elec_idx.(i))
         initial)

(* ------------------------------------------------------------------ *)
(* Incremental selection evaluation.                                  *)
(* ------------------------------------------------------------------ *)

module Eval = struct
  type eval = {
    ctx : ctx;
    choice : int array;
    losses : float array array;
    dirty : bool array;
    mutable recomputes : int;
  }

  type t = eval

  let create ctx choice0 =
    let n = Array.length ctx.cands in
    { ctx;
      choice = Array.copy choice0;
      losses = Array.make n [||];
      dirty = Array.make n true;
      recomputes = 0 }

  (* Invariant after [refresh t i]: [t.losses.(i)] equals
     [net_path_losses t.ctx t.choice i] — the canonical evaluation of the
     current assignment. Because crossing terms couple only neighbour
     pairs, flipping net [i] can change the loss arrays of [i] and of
     [ctx.neighbors.(i)] only; everyone else's cached array stays
     canonical untouched. *)
  let refresh t i =
    if t.dirty.(i) then begin
      t.losses.(i) <- net_path_losses t.ctx t.choice i;
      t.dirty.(i) <- false;
      t.recomputes <- t.recomputes + 1
    end

  let get t i = t.choice.(i)

  let choice t = Array.copy t.choice

  let set t i j =
    if t.choice.(i) <> j then begin
      t.choice.(i) <- j;
      t.dirty.(i) <- true;
      Array.iter (fun m -> t.dirty.(m) <- true) t.ctx.neighbors.(i)
    end

  let losses t i =
    refresh t i;
    t.losses.(i)

  let power t = power t.ctx t.choice

  let worst_violation t =
    let l_max = t.ctx.params.Params.l_max in
    let worst = ref neg_infinity in
    Array.iteri
      (fun i _ ->
        Array.iter
          (fun loss -> if loss -. l_max > !worst then worst := loss -. l_max)
          (losses t i))
      t.ctx.cands;
    if !worst = neg_infinity then 0.0 else !worst

  let feasible t = worst_violation t <= 1e-9

  (* Does net i currently sit on any violated path, either as the owner
     of the path or as a crosser of a neighbour's path? Checking only i
     and its neighbours keeps repair local. *)
  let net_ok t i =
    let l_max = t.ctx.params.Params.l_max in
    let check m =
      Array.for_all (fun loss -> loss <= l_max +. 1e-9) (losses t m)
    in
    check i && Array.for_all check t.ctx.neighbors.(i)

  let recomputes t = t.recomputes
end

let polish ?(rounds = 3) ?only ctx choice0 =
  let n = Array.length ctx.cands in
  (* [only] restricts both the repair scan and the improve loops to the
     given nets (the corridor-stitch fix-up pass); nets outside it are
     never flipped, though their losses still participate in the local
     feasibility checks. Absent, the scan is every net in order —
     exactly the historical behavior. *)
  let scan =
    match only with None -> Array.init n (fun i -> i) | Some ids -> ids
  in
  let ev = Eval.create ctx choice0 in
  (* Repair: demote offending nets to their electrical fallback until the
     selection is feasible. Electrical candidates have no optical paths
     and no crossings, so this terminates at the all-electrical point. *)
  let guard = ref 0 in
  while (not (Eval.feasible ev)) && !guard <= n do
    incr guard;
    let fixed = ref false in
    Array.iter
      (fun i ->
        if (not !fixed) && Eval.get ev i <> ctx.elec_idx.(i) && not (Eval.net_ok ev i)
        then begin
          Eval.set ev i ctx.elec_idx.(i);
          fixed := true
        end)
      scan;
    if not !fixed then
      (* Violations exist but no single demotable net found: demote the
         first non-electrical net outright. *)
      (try
         Array.iter
           (fun i ->
             if Eval.get ev i <> ctx.elec_idx.(i) then begin
               Eval.set ev i ctx.elec_idx.(i);
               raise Exit
             end)
           scan
       with Exit -> ())
  done;
  (* Improve: per net, adopt the cheapest candidate that keeps the local
     neighbourhood (and hence the whole selection) feasible. Only the
     flipped net and its neighbours are re-evaluated per trial. *)
  for _ = 1 to rounds do
    Array.iter
      (fun i ->
        let old = Eval.get ev i in
        let best = ref old and best_obj = ref (objective ctx i old) in
        Array.iteri
          (fun j _ ->
            let obj = objective ctx i j in
            if j <> old && obj < !best_obj then begin
              Eval.set ev i j;
              if Eval.net_ok ev i then begin
                best := j;
                best_obj := obj
              end
            end)
          ctx.cands.(i);
        Eval.set ev i !best)
      scan
  done;
  Eval.choice ev
