open Operon_geom
open Operon_optical
open Operon_solver
open Operon_util

type result = {
  choice : int array;
  power : float;
  proven : bool;
  components : int;
  timed_out : int;
  nodes : int;
  lp_solves : int;
  pivots : int;
  refactorizations : int;
  elapsed : float;
}

(* Solve the Formula (3) ILP for the nets of [block], with every net
   outside the block frozen at [current]. Frozen neighbours contribute
   constants to the block nets' path constraints, and the frozen nets'
   own paths become x-linear rows so a block move can never break them —
   the invariant "the global selection stays feasible" holds after every
   block. Returns the updated choices and whether optimality was proven. *)
let solve_block ?(max_cands_per_net = max_int) ?(max_pivots = max_int)
    ?(core = Solver.Sparse) ctx ~budget ~current block =
  let params = ctx.Selection.params in
  let l_max = params.Params.l_max in
  let in_block = Hashtbl.create 16 in
  Array.iter (fun i -> Hashtbl.add in_block i ()) block;
  (* Admissible candidates per block net: the frozen-crossing-adjusted
     intrinsic loss must leave room under the budget. The current choice
     and the electrical fallback always qualify. To keep the linearized
     model dense-simplex-sized, only the cheapest few candidates per net
     enter the block program (the rest are dominated in practice). *)
  let xmat = ctx.Selection.xmat in
  let thermal = ctx.Selection.thermal in
  let frozen_intrinsic i j =
    let c = ctx.Selection.cands.(i).(j) in
    Array.mapi
      (fun p (path : Candidate.path) ->
        let frozen =
          Array.fold_left
            (fun acc m ->
              if Hashtbl.mem in_block m then acc
              else
                acc +. Xmatrix.loss_on_path xmat params ~i ~j ~p ~m ~n:current.(m))
            0.0 ctx.Selection.neighbors.(i)
        in
        match thermal with
        | None -> path.Candidate.intrinsic_loss +. frozen
        | Some t ->
            path.Candidate.intrinsic_loss +. frozen
            +. t.Selection.penalty.(i).(j).(p))
      c.Candidate.paths
  in
  let admissible =
    Array.map
      (fun i ->
        let js = ref [] in
        Array.iteri
          (fun j _ ->
            let adjusted = frozen_intrinsic i j in
            if Array.for_all (fun l -> l <= l_max +. 1e-9) adjusted
               || j = current.(i)
            then js := (j, adjusted) :: !js)
          ctx.Selection.cands.(i);
        let all = List.rev !js in
        let keep =
          List.sort
            (fun (a, _) (b, _) ->
              Float.compare (Selection.objective ctx i a)
                (Selection.objective ctx i b))
            all
          |> List.filteri (fun rank _ -> rank < max_cands_per_net)
        in
        let keep =
          if List.exists (fun (j, _) -> j = current.(i)) keep then keep
          else
            keep
            @ List.filter (fun (j, _) -> j = current.(i)) all
        in
        (i, keep))
      block
  in
  (* Variable layout: x variables per admissible candidate, then y. *)
  let x_var = Hashtbl.create 64 in
  let nx = ref 0 in
  Array.iter
    (fun (i, js) ->
      List.iter
        (fun (j, _) ->
          Hashtbl.add x_var (i, j) !nx;
          incr nx)
        js)
    admissible;
  let y_var = Hashtbl.create 64 in
  let ny = ref 0 in
  let y_of a b =
    let key = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt y_var key with
    | Some v -> v
    | None ->
        let v = !ny in
        Hashtbl.add y_var key v;
        incr ny;
        v
  in
  (* Path rows of block candidates: adjusted intrinsic * x + coupling to
     other block nets via y. *)
  let block_rows = ref [] in
  Array.iter
    (fun (i, js) ->
      List.iter
        (fun (j, adjusted) ->
          let c = ctx.Selection.cands.(i).(j) in
          Array.iteri
            (fun p _ ->
              let terms = ref [] in
              Array.iter
                (fun m ->
                  if Hashtbl.mem in_block m && m <> i then
                    Array.iteri
                      (fun n _ ->
                        if Hashtbl.mem x_var (m, n) then begin
                          let crossings = Xmatrix.count xmat ~i ~j ~p ~m ~n in
                          if crossings > 0 then
                            terms :=
                              (y_of (i, j) (m, n), Loss.crossing_bundled params crossings)
                              :: !terms
                        end)
                      ctx.Selection.cands.(m))
                ctx.Selection.neighbors.(i);
              if !terms <> [] then
                block_rows := ((i, j), adjusted.(p), !terms) :: !block_rows)
            c.Candidate.paths)
        js)
    admissible;
  (* Guard rows for frozen neighbours' paths: their loss must stay within
     budget as block nets move. *)
  let frozen_rows = ref [] in
  let frozen_seen = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      Array.iter
        (fun m ->
          if (not (Hashtbl.mem in_block m)) && not (Hashtbl.mem frozen_seen m)
          then begin
            Hashtbl.add frozen_seen m ();
            let fc = ctx.Selection.cands.(m).(current.(m)) in
            Array.iteri
              (fun q (path : Candidate.path) ->
                (* Constant: intrinsic + crossings from all non-block
                   neighbours of m (also frozen). *)
                let base =
                  match thermal with
                  | None -> path.Candidate.intrinsic_loss
                  | Some t ->
                      path.Candidate.intrinsic_loss
                      +. t.Selection.penalty.(m).(current.(m)).(q)
                in
                let const =
                  Array.fold_left
                    (fun acc k ->
                      if Hashtbl.mem in_block k then acc
                      else
                        acc
                        +. Xmatrix.loss_on_path xmat params ~i:m ~j:current.(m) ~p:q
                             ~m:k ~n:current.(k))
                    base
                    ctx.Selection.neighbors.(m)
                in
                let terms = ref [] in
                Array.iter
                  (fun k ->
                    if Hashtbl.mem in_block k then
                      Array.iteri
                        (fun n _ ->
                          if Hashtbl.mem x_var (k, n) then begin
                            let crossings =
                              Xmatrix.count xmat ~i:m ~j:current.(m) ~p:q ~m:k ~n
                            in
                            if crossings > 0 then
                              terms :=
                                ((k, n), Loss.crossing_bundled params crossings) :: !terms
                          end)
                        ctx.Selection.cands.(k))
                  ctx.Selection.neighbors.(m);
                if !terms <> [] then frozen_rows := (const, !terms) :: !frozen_rows)
              fc.Candidate.paths
          end)
        ctx.Selection.neighbors.(i))
    block;
  let total_vars = Stdlib.max 1 (!nx + !ny) in
  let xv key = Hashtbl.find x_var key in
  let yv idx = !nx + idx in
  (* Assemble the whole program as one immutable Problem: minimize the
     selected candidates' power; x binaries carry their [0,1] range as
     variable bounds (no synthetic bound rows), the y product variables
     stay continuous and non-negative. *)
  let obj =
    Array.to_list admissible
    |> List.concat_map (fun (i, js) ->
           List.map
             (fun (j, _) -> (xv (i, j), Selection.objective ctx i j))
             js)
  in
  let pick_rows =
    Array.to_list admissible
    |> List.map (fun (i, js) ->
           (List.map (fun (j, _) -> (xv (i, j), 1.0)) js, Problem.Eq, 1.0))
  in
  let path_rows =
    List.map
      (fun ((i, j), intrinsic, terms) ->
        ( (xv (i, j), intrinsic) :: List.map (fun (y, w) -> (yv y, w)) terms,
          Problem.Le, l_max ))
      !block_rows
  in
  let guard_rows =
    List.map
      (fun (const, terms) ->
        (List.map (fun (key, w) -> (xv key, w)) terms, Problem.Le,
         l_max -. const))
      !frozen_rows
  in
  let link_rows = ref [] in
  Hashtbl.iter
    (fun (a, b) y ->
      link_rows :=
        ([ (xv a, 1.0); (xv b, 1.0); (yv y, -1.0) ], Problem.Le, 1.0)
        :: !link_rows)
    y_var;
  let rows = pick_rows @ path_rows @ guard_rows @ !link_rows in
  let upper = List.init !nx (fun v -> (v, 1.0)) in
  let integer = List.init !nx (fun v -> v) in
  let problem = Problem.of_rows ~nvars:total_vars ~obj ~upper ~integer rows in
  (* Incumbent: the current (feasible) selection restricted to the block. *)
  let seed_values = Array.make total_vars 0.0 in
  Array.iter (fun i -> seed_values.(xv (i, current.(i))) <- 1.0) block;
  Hashtbl.iter
    (fun ((i, j), (m, n)) y ->
      if current.(i) = j && current.(m) = n then seed_values.(yv y) <- 1.0)
    y_var;
  let incumbent : Solver.solution option =
    if Problem.feasible problem seed_values then
      Some
        { Solver.objective = Problem.eval_objective problem seed_values;
          values = seed_values }
    else None
  in
  let res =
    Solver.solve
      ~opts:(Solver.opts ~core ~budget ~max_pivots ?incumbent ())
      problem
  in
  let stats = res.Solver.Result.stats in
  let adopt (sol : Solver.solution) =
    Array.iter
      (fun (i, js) ->
        let best = ref current.(i) and best_val = ref 0.5 in
        List.iter
          (fun (j, _) ->
            let v = sol.Solver.values.(xv (i, j)) in
            if v > !best_val then begin
              best_val := v;
              best := j
            end)
          js;
        current.(i) <- !best)
      admissible
  in
  match res.Solver.Result.status with
  | Solver.Optimal sol ->
      adopt sol;
      (true, stats)
  | Solver.Feasible sol ->
      adopt sol;
      (false, stats)
  | Solver.Infeasible | Solver.Unbounded | Solver.Unknown -> (false, stats)

(* Split an oversized component into geographically compact blocks of at
   most [max_block] nets (sorted by bounding-box centre, snake order). *)
let blocks_of_component ctx comp ~max_block =
  let keyed =
    Array.map
      (fun i ->
        let center =
          match ctx.Selection.bboxes.(i) with
          | Some b -> Rect.center b
          | None -> Point.origin
        in
        (center, i))
      comp
  in
  Array.sort
    (fun (a, _) (b, _) -> Point.compare a b)
    keyed;
  let nets = Array.map snd keyed in
  let n = Array.length nets in
  let nblocks = (n + max_block - 1) / max_block in
  List.init nblocks (fun b ->
      let lo = b * max_block in
      let hi = Stdlib.min n (lo + max_block) in
      Array.sub nets lo (hi - lo))

let select ?(budget_seconds = 3000.0) ?(max_pivots = max_int)
    ?(max_component_vars = 150) ?(core = Solver.Sparse) ?initial ctx =
  let t0 = Timer.now () in
  (* Always-feasible starting point: repaired greedy — or, warm starting
     (ECO), a sanitized previous selection when it is still feasible
     under this context. Either way [current] is feasible, which the
     block solver's incumbent logic requires. *)
  let start =
    match Option.map (Selection.sanitize_initial ctx) initial with
    | Some (Some w) when Selection.feasible ctx w -> w
    | _ -> Selection.greedy ctx
  in
  let current = Selection.polish ctx start in
  let boxes =
    Array.map
      (function
        | Some b -> b
        | None -> Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:(-1e9) ~ymax:(-1e9))
      ctx.Selection.bboxes
  in
  let comps = Crossing.interaction_components boxes in
  (* The placeholder boxes all collide at (-1e9, -1e9): split that bucket
     back into singletons. *)
  let comps =
    Array.to_list comps
    |> List.concat_map (fun comp ->
           let real, fake =
             Array.to_list comp
             |> List.partition (fun i -> ctx.Selection.bboxes.(i) <> None)
           in
           let singles = List.map (fun i -> [| i |]) fake in
           match real with
           | [] -> singles
           | _ -> Array.of_list real :: singles)
    |> Array.of_list
  in
  let proven = ref true and timed_out = ref 0 in
  let nodes = ref 0 and lp_solves = ref 0 in
  let pivots = ref 0 and refactorizations = ref 0 in
  let absorb (s : Solver.stats) =
    nodes := !nodes + s.Solver.nodes;
    lp_solves := !lp_solves + s.Solver.lp_solves;
    pivots := !pivots + s.Solver.pivots;
    refactorizations := !refactorizations + s.Solver.refactorizations
  in
  let remaining = ref (Array.length comps) in
  let overall = Timer.budget budget_seconds in
  Array.iter
    (fun comp ->
      let comp_budget_s =
        Float.max 0.05 (Timer.remaining overall /. float_of_int (Stdlib.max 1 !remaining))
      in
      decr remaining;
      if Array.length comp = 1 && Array.length ctx.Selection.neighbors.(comp.(0)) = 0
      then begin
        (* Isolated net: its intrinsic-feasible minimum is exact. *)
        let i = comp.(0) in
        let best = ref 0 in
        Array.iteri
          (fun j _ ->
            if Selection.objective ctx i j < Selection.objective ctx i !best
            then best := j)
          ctx.Selection.cands.(i);
        current.(i) <- !best
      end
      else begin
        let var_estimate =
          Array.fold_left
            (fun acc i -> acc + Array.length ctx.Selection.cands.(i))
            0 comp
        in
        let budget = Timer.budget comp_budget_s in
        if var_estimate <= max_component_vars then begin
          let ok, stats = solve_block ~max_pivots ~core ctx ~budget ~current comp in
          absorb stats;
          if not ok then begin
            proven := false;
            incr timed_out
          end
        end
        else begin
          (* Oversized component: block-coordinate descent with exact
             block ILPs. The result is an incumbent, never a proof —
             reproducing the paper's time-limit rows. *)
          proven := false;
          incr timed_out;
          let max_block = 6 in
          let blocks = blocks_of_component ctx comp ~max_block in
          let passes = 2 in
          let per_solve =
            comp_budget_s /. float_of_int (Stdlib.max 1 (passes * List.length blocks))
          in
          for _ = 1 to passes do
            List.iter
              (fun block ->
                if not (Timer.expired budget) then begin
                  let block_budget = Timer.budget per_solve in
                  let _, stats =
                    solve_block ~max_cands_per_net:5 ~max_pivots ~core ctx
                      ~budget:block_budget ~current block
                  in
                  absorb stats
                end)
              blocks
          done
        end
      end)
    comps;
  (* Safety net: never return an infeasible selection. *)
  let choice =
    if Selection.feasible ctx current then current else Selection.polish ctx current
  in
  { choice;
    power = Selection.power ctx choice;
    proven = !proven;
    components = Array.length comps;
    timed_out = !timed_out;
    nodes = !nodes;
    lp_solves = !lp_solves;
    pivots = !pivots;
    refactorizations = !refactorizations;
    elapsed = Timer.now () -. t0 }
