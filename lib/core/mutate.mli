(** Deterministic design perturbation — the ECO workload generator.

    An engineering change order in this codebase is "the same design
    with some groups' pins nudged": {!design} picks a deterministic
    subset of signal groups and jitters every pin of those groups by up
    to ±2 % of the die dimensions (clamped to the die). Because whole
    groups move, the dirty fraction of {e hyper nets} downstream tracks
    the requested group ratio closely — which is what the ECO bench
    sweeps and the CI smoke job mutate.

    Everything is a pure function of [(ratio, seed, design)]: the chosen
    groups come from one shuffle of a [Prng] seeded with [seed], and each
    group jitters from its own split stream, so a group's displacement
    does not depend on which other groups were selected. *)

val group_count : ratio:float -> int -> int
(** [group_count ~ratio n] = number of groups a mutation touches:
    [ceil (ratio * n)] clamped to \[1, n\], or 0 when [ratio <= 0] or
    [n = 0]. *)

val design : ratio:float -> seed:int -> Signal.design -> Signal.design
(** Jitter the pins of [group_count ~ratio] groups. [ratio <= 0] returns
    the design unchanged (physically equal). The result is a valid
    design on the same die. *)
