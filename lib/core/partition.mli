(** Region decomposition for hierarchical partition-and-route.

    Recursive bisection of the net set by optical-bbox centers into a
    requested number of regions, plus the {e corridor}: the nets whose
    interaction-graph edges the cut severs, grouped into boundary
    components for the stitching pass.

    The plan is a pure function of its inputs — no PRNG, no
    parallelism, ties broken by net id — which is what lets the
    partitioned flow stay byte-identical at any [--jobs]. *)

open Operon_geom

type t = {
  regions : int array array;
      (** member net ids, ascending; regions in bisection (spatial)
          order. Never more than requested, fewer when the design is
          small. Every net is in exactly one region. *)
  region_of : int array;  (** net id -> index into [regions] *)
  corridor : int array;
      (** nets with at least one neighbor in another region, ascending *)
  boundary : int array array;
      (** connected components of the interaction graph restricted to
          corridor nets — members ascending, components sorted by first
          member, like {!Crossing.interaction_components} *)
  cut_pairs : int;  (** interacting pairs split across regions *)
  total_pairs : int;  (** all interacting pairs *)
}

val make : regions:int -> Rect.t option array -> neighbors:int array array -> t
(** [make ~regions bboxes ~neighbors] plans a decomposition into at most
    [regions] regions (at least 1). [bboxes] and [neighbors] are the
    selection context's per-net optical boxes and interaction rows; a
    net without a bbox has no interactions and lands where the bisection
    puts its origin placeholder. *)

val cut_fraction : t -> float
(** [cut_pairs / total_pairs], 0 when there are no interacting pairs —
    the cut-quality number surfaced by the instrument counters. *)
