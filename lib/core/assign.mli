(** Network-flow WDM re-assignment (paper Section 4.2, Figs. 6-7).

    The sweep placement is sequential and leaves sharable capacity on the
    table; re-assigning connections {e concurrently} through a min-cost
    max-flow network retires idle waveguides. The network is the paper's:
    source -> connections -> nearby WDMs (within [dis_u]) -> sink, with
    connection bit counts as capacities, perpendicular displacement as
    connection-to-WDM cost and a WDM usage cost on the sink arcs. Because
    the network is a transportation network the optimum is integral (the
    paper's uni-modularity remark).

    Waveguide retirement works by feasibility probing: tracks are visited
    lightest-loaded first, and a track is removed whenever a max-flow
    check proves the remaining tracks still carry every connection bit.
    The final min-cost max-flow computes the cheapest concurrent
    assignment onto the surviving tracks. *)

open Operon_optical

type result = {
  tracks : Wdm.track array;  (** surviving tracks, usage updated *)
  flows : (int * int) list array;
      (** per connection id: (surviving-track index, bits) — a connection
          may split across parallel waveguides *)
  initial_count : int;
  final_count : int;
  displacement_cost : float;  (** total perpendicular movement, cm-bits *)
}

val feasible :
  Params.t -> Wdm.conn array -> Wdm.orientation -> Wdm.track array -> bool
(** Max-flow certificate: can the given track subset (all of one
    orientation) carry every bit of that orientation's connections?
    This is the predicate the retirement pass answers incrementally;
    it is exported so tests can check the incremental pass against the
    direct rebuild-per-subset definition. *)

val survivors :
  Params.t -> Wdm.conn array -> Wdm.orientation -> Wdm.track array -> int list
(** Indices (into the full track array) of one orientation's surviving
    tracks, in retirement order (lightest-loaded first): visiting tracks
    lightest-first, a track is retired whenever {!feasible} holds for
    the remaining set. Computed on a single incrementally-edited flow
    network; the result is identical to probing each subset from
    scratch. *)

val run : Params.t -> Wdm_place.placement -> result
(** Raises nothing on well-formed placements; a placement is always a
    feasible assignment, so [final_count <= initial_count]. *)

val reduction_ratio : result -> float
(** [(initial - final) / initial]; 0 when no track could be removed. The
    paper reports 8.9 % on average (Fig. 8). *)
