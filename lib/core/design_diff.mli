(** Hyper-net level diff between two revisions of a design — the first
    half of the ECO re-synthesis path.

    Both revisions are compared {e after} signal processing, as hyper-net
    arrays, because that is the granularity every expensive artifact
    (baseline, candidate set, Xmatrix row) is keyed by. Hyper nets are
    matched positionally — processing assigns dense sequential ids, so
    position [i] in both arrays names "the same" net — and classified by
    exact content key:

    - {e clean}: identical key; its per-net artifacts may be reused;
    - {e dirty}: same slot, different key (pins moved, clustering
      shifted);
    - {e interaction-dirty}: clean, but inside the {e dirty closure} —
      it was a previous Xmatrix neighbour of a changed net, or its pin
      bbox overlaps a changed net's old or new bbox, so its crossing
      estimates (taken against other nets' baselines) could differ;
    - {e added}: a slot beyond the old array's length.

    Nets past the new array's length are {e removed}. Either makes the
    revisions [compatible = false]: the per-slot artifact store cannot
    line up and the caller must fall back to a cold preparation (the
    classification counts are still reported).

    Soundness of reuse rests on geometry containment: a net's baseline
    segments and candidate paths stay inside its pin bounding box, so a
    clean net outside every changed bbox sees bit-identical crossing
    estimates and therefore produces bit-identical candidates. The
    closure errs toward recomputation — overlap does not imply actual
    crossings. *)

type status = Clean | Dirty | InteractionDirty | Added

val status_name : status -> string

type t = {
  compatible : bool;
      (** same hyper-net count — the precondition for per-slot reuse *)
  status : status array;  (** per new hyper net *)
  closure : bool array;
      (** per new hyper net: must be recomputed ([status <> Clean]) *)
  n_clean : int;
  n_dirty : int;
  n_interaction : int;
  n_added : int;
  n_removed : int;
}

val hnet_key : Hypernet.t -> string
(** Exact content key (hex digest) of one hyper net: id, group, bit
    count, root and every hyper pin's exact centre coordinates and
    counts. Equal keys iff every downstream stage would treat the nets
    identically. *)

val diff :
  ?neighbors:int array array -> Hypernet.t array -> Hypernet.t array -> t
(** [diff ~neighbors old_hnets new_hnets] classifies the new revision
    against the old. [neighbors] is the {e old} preparation's
    [Selection.ctx.neighbors] adjacency (indexed by old net id); when
    given, previous crossing-pair neighbours of changed nets are pulled
    into the closure directly, in addition to the bbox-overlap sweep. *)

val closure_size : t -> int
(** Number of nets in the dirty closure — the upper bound the ECO
    invariant holds [nets_recomputed] to. *)
