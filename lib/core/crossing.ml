open Operon_geom
open Operon_graph
open Operon_util

type entry = { net : int; seg : Segment.t }

type index = {
  die : Rect.t;
  cells : int;
  buckets : entry list array;  (* cells x cells, row-major *)
  flat : entry array option;
      (* small indexes keep the raw entries and answer queries by linear
         scan: a query visits every cell of its bbox rectangle, so a long
         diagonal segment walks hundreds of near-empty buckets — far more
         work than testing a few dozen entries directly. Both schemes
         count exactly the proper crossings with an intersection point,
         each once, so which one answers is pure performance. *)
}

let flat_threshold = 256

let cell_range idx (r : Rect.t) =
  let die = idx.die in
  let w = Rect.width die and h = Rect.height die in
  let clamp v = Stdlib.max 0 (Stdlib.min (idx.cells - 1) v) in
  let fx x = if w <= 0.0 then 0 else clamp (int_of_float ((x -. die.Rect.xmin) /. w *. float_of_int idx.cells)) in
  let fy y = if h <= 0.0 then 0 else clamp (int_of_float ((y -. die.Rect.ymin) /. h *. float_of_int idx.cells)) in
  (fx r.Rect.xmin, fy r.Rect.ymin, fx r.Rect.xmax, fy r.Rect.ymax)

let build_index ~die ?(cells = 32) segments =
  if Array.length segments <= flat_threshold then
    { die;
      cells;
      buckets = [||];
      flat = Some (Array.map (fun (net, seg) -> { net; seg }) segments) }
  else begin
    let idx =
      { die; cells; buckets = Array.make (cells * cells) []; flat = None }
    in
    Array.iter
      (fun (net, seg) ->
        let i0, j0, i1, j1 = cell_range idx (Segment.bbox seg) in
        for j = j0 to j1 do
          for i = i0 to i1 do
            idx.buckets.((j * cells) + i) <- { net; seg } :: idx.buckets.((j * cells) + i)
          done
        done)
      segments;
    idx
  end

let flatten idx =
  match idx.flat with
  | Some _ -> idx
  | None ->
      (* Collapse the grid back to its distinct entries (a segment sits
         in every bucket its bbox overlaps). Queries against the result
         count exactly as against the grid — linear scan and bucket
         attribution both count each proper crossing with an
         intersection point once — but a query is one pass over the
         entries instead of a walk over its bbox's bucket rectangle,
         which is the cheaper regime when only a few nets are queried
         (the ECO recount path). *)
      let tbl = Hashtbl.create 256 in
      Array.iter
        (List.iter (fun e -> Hashtbl.replace tbl (e.net, e.seg) e))
        idx.buckets;
      let entries = Array.make (Hashtbl.length tbl) { net = 0; seg = Segment.make Point.origin Point.origin } in
      let i = ref 0 in
      Hashtbl.iter (fun _ e -> entries.(!i) <- e; incr i) tbl;
      { idx with buckets = [||]; flat = Some entries }

let cell_of_point idx p =
  let i0, j0, _, _ =
    cell_range idx (Rect.make ~xmin:p.Point.x ~ymin:p.Point.y ~xmax:p.Point.x ~ymax:p.Point.y)
  in
  (i0, j0)

let count_crossings idx ~exclude_net query =
  match idx.flat with
  | Some entries ->
      let count = ref 0 in
      Array.iter
        (fun e ->
          if
            e.net <> exclude_net
            && Segment.crosses_properly e.seg query
            && Segment.intersection_point e.seg query <> None
          then incr count)
        entries;
      !count
  | None ->
  let i0, j0, i1, j1 = cell_range idx (Segment.bbox query) in
  (* A segment sits in every bucket its bbox overlaps; to count each
     crossing exactly once without a seen-set, attribute it to the single
     bucket containing the intersection point. *)
  let count = ref 0 in
  for j = j0 to j1 do
    for i = i0 to i1 do
      List.iter
        (fun e ->
          if e.net <> exclude_net && Segment.crosses_properly e.seg query then
            match Segment.intersection_point e.seg query with
            | Some p ->
                let pi, pj = cell_of_point idx p in
                if pi = i && pj = j then incr count
            | None -> ())
        idx.buckets.((j * idx.cells) + i)
    done
  done;
  !count

let estimator idx ~net seg = count_crossings idx ~exclude_net:net seg

let interaction_components bboxes =
  let n = Array.length bboxes in
  let dsu = Dsu.create n in
  (* Union via the spatial index instead of the O(n²) sweep. Duplicate
     groups are cliques, so chaining their members and adding one edge
     per overlapping distinct-rect pair yields exactly the connectivity
     of the all-pairs sweep. *)
  let idx = Overlap.build bboxes in
  Overlap.iter_groups idx (fun g ->
      for k = 1 to Array.length g - 1 do
        ignore (Dsu.union dsu g.(0) g.(k))
      done);
  Overlap.iter_group_pairs idx (fun ga gb -> ignore (Dsu.union dsu ga.(0) gb.(0)));
  let groups = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = Dsu.find dsu i in
    let existing = try Hashtbl.find groups r with Not_found -> [] in
    Hashtbl.replace groups r (i :: existing)
  done;
  Hashtbl.fold (fun _ members acc -> Array.of_list members :: acc) groups []
  |> List.sort (fun a b -> compare a.(0) b.(0))
  |> Array.of_list

let interacting_pairs bboxes =
  let n = Array.length bboxes in
  if n = 0 then []
  else begin
    (* Enumerate via the spatial index into a preallocated growable
       buffer of (i * n + j) encodings, then sort — the index reports
       pairs in grid order, and the historical contract is ascending
       lexicographic. *)
    let idx = Overlap.build bboxes in
    let buf = Growbuf.create ~capacity:(4 * n) () in
    Overlap.iter_pairs idx (fun i j -> Growbuf.push buf ((i * n) + j));
    Growbuf.sort buf;
    List.init (Growbuf.length buf) (fun k ->
        let v = Growbuf.get buf k in
        (v / n, v mod n))
  end
