(** End-to-end OPERON flow (paper Figure 2), as a staged pipeline.

    signal processing -> baseline generation -> co-design candidates ->
    candidate selection (ILP or LR) -> WDM placement -> network-flow
    assignment.

    Each arrow is an {!Operon_engine.Pipeline} stage threading one
    {!Operon_engine.Runctx.t}: the run-context carries the configuration
    (parameters, mode, budgets, worker count), the deterministic PRNG,
    the {!Operon_util.Executor.t} parallel backend, and the
    {!Operon_engine.Instrument} sink every stage reports wall-clock and
    counters into. The per-hypernet baseline and co-design work fans out
    on the executor; results are merged in net-id order and each net owns
    a pre-split PRNG stream, so runs are bit-identical whatever [jobs]
    setting executed them.

    Entry points take a {!Config.t}: build one with {!Config.default} or
    {!Config.make}, refine it with the [with_*] setters, and hand it to
    {!synthesize} (whole flow), {!prepare_with} (candidate generation
    only) or {!select_with} (selection + WDM on existing candidates).

    Fault tolerance: unless [strict] is set, a per-net failure in the
    Baselines or Codesign stages quarantines just that hyper net — it is
    routed with the deterministic all-electrical fallback
    ({!Codesign.electrical_only}) while every healthy net's result is
    bit-identical to a fault-free run. Selection failures walk a
    fallback chain (ILP -> LR -> greedy repair -> all-electrical), each
    hop recorded in the run's {!Operon_engine.Fault.log}. Strict mode
    re-raises the first structured {!Operon_engine.Fault.Error} with its
    original backtrace instead. *)

open Operon_optical
open Operon_engine

type mode = Runctx.mode = Ilp | Lr

(** Everything a flow run is parameterized by, in one value. *)
module Config : sig
  (** Thermal-reliability scenario: a static die temperature map plus
      the objective-weight ladder the Pareto sweep runs selection over.
      The spec lives outside the preparation slice — candidate
      generation never reads it — so prepared artifacts (and registry
      entries in the service) are shared between thermal and plain
      jobs. *)
  type thermal = {
    map : Operon_thermal.Thermal_map.t;
    weights : float array;
        (** sweep ladder; the first entry's selection is the flow's
            primary result *)
  }

  (** Hierarchical partition-and-route control. [Off] (the default) is
      the historical flat flow and stays the parity oracle. [Regions r]
      bisects the net set into at most [r] spatial regions, runs one
      independent selection per region on the executor, and stitches
      the corridor nets whose interactions the cut severed with a
      bounded fix-up pass. [Auto] picks a region count from the design
      size (one region per ~1024 nets, capped at 64) and degrades to
      the flat flow below the activation threshold. *)
  type partition = Off | Auto | Regions of int

  type t = {
    params : Params.t;  (** optical device/loss parameters *)
    processing : Processing.config option;
        (** signal-processing overrides ([None] = defaults) *)
    mode : mode;
    ilp_budget : float;  (** selection wall-clock cap, seconds *)
    max_cands_per_net : int;  (** co-design candidates kept per hyper net *)
    jobs : int;  (** executor workers; 1 = sequential *)
    strict : bool;  (** fail fast instead of degrading gracefully *)
    injections : Fault.injection list;
        (** deterministic fault-injection sites (tests/CI) *)
    cache : bool;
        (** precompute the {!Xmatrix} crossing cache (default [true];
            results are bit-identical either way) *)
    seed : int;  (** PRNG seed of the run *)
    solver_core : Operon_solver.Solver.core;
        (** LP engine behind ILP selection (default [Sparse]; [Dense]
            is the pre-redesign tableau core kept for parity runs —
            selections are identical either way) *)
    thermal : thermal option;
        (** thermal scenario ([None] = the historical, temperature-blind
            flow). A spec whose ladder holds no positive weight is inert:
            the run is bit-identical to a thermal-free one. *)
    partition : partition;
        (** hierarchical partition-and-route ([Off] = the flat flow).
            When the cut severs no interacting pairs, a partitioned
            ILP-mode run is bit-identical to the flat one at any
            [jobs]. *)
  }

  val default_thermal_weights : float array
  (** The default sweep ladder, [0; 0.5; 1; 2; 4; 8]. *)

  val default : Params.t -> t
  (** LR mode, 3000 s budget (the paper's cap), 10 candidates per net,
      sequential, graceful degradation, no injections, cache enabled,
      seed 42 (the repo-wide reproducibility seed). *)

  val make :
    ?processing:Processing.config ->
    ?mode:mode ->
    ?ilp_budget:float ->
    ?max_cands_per_net:int ->
    ?jobs:int ->
    ?strict:bool ->
    ?injections:Fault.injection list ->
    ?cache:bool ->
    ?seed:int ->
    ?solver_core:Operon_solver.Solver.core ->
    ?thermal:thermal ->
    ?partition:partition ->
    Params.t ->
    t
  (** Labelled constructor over the same defaults as {!default}. *)

  val with_mode : mode -> t -> t
  val with_jobs : int -> t -> t
  val with_cache : bool -> t -> t
  val with_processing : Processing.config -> t -> t
  val with_seed : int -> t -> t
  val with_solver_core : Operon_solver.Solver.core -> t -> t
  val with_partition : partition -> t -> t

  val with_thermal :
    ?weights:float array -> Operon_thermal.Thermal_map.t -> t -> t
  (** Attach a thermal scenario ([weights] defaults to
      {!default_thermal_weights}). Raises [Invalid_argument] on an empty
      ladder or a negative / non-finite weight. *)

  val to_runctx_config : t -> Runctx.config
  (** The engine-level view of this configuration (drops [processing]
      and [seed], which live above the run-context). *)
end

(** One evaluated point of the thermal Pareto sweep: the selection found
    at one objective weight. Power and margin are both recomputable from
    [tp_choice] alone ({!Selection.power} on the plain context,
    {!Selection.thermal_margin} on the weight-0 thermal context). *)
type thermal_point = {
  tp_weight : float;
  tp_power : float;  (** physical power of the selection, pJ/bit *)
  tp_margin : float;
      (** [l_max] minus the worst temperature-aware path loss, dB *)
  tp_hash : string;
      (** FNV-1a 64 of the choice vector, 16 hex digits — a stable
          identity for "the same selection" across weights, job counts
          and processes *)
  tp_choice : int array;
  tp_seconds : float;  (** selection wall-clock of this weight *)
}

(** Outcome of a whole sweep: the Pareto front over the evaluated
    points, power strictly ascending and margin strictly ascending. *)
type thermal_result = {
  tr_front : thermal_point list;
  tr_swept : int;  (** weights evaluated *)
  tr_dropped : int;  (** points removed as duplicate or dominated *)
  tr_map : string;  (** {!Operon_thermal.Thermal_map.summary} of the map *)
  tr_seconds : float;  (** whole-sweep wall-clock *)
}

(** Statistics of one partitioned selection — the decomposition shape,
    the cut quality, and what the stitch pass did. Mirrored into the
    run trace as [partition] counters and, under schema 7, into the
    export's [partition] block. *)
type partition_stats = {
  pt_regions : int;  (** regions actually formed (>= 2 when active) *)
  pt_corridor_nets : int;
      (** nets with an interacting partner in another region *)
  pt_cut_pairs : int;  (** interacting pairs the cut severed *)
  pt_total_pairs : int;  (** all interacting pairs of the design *)
  pt_boundary_components : int;
      (** connected components of the corridor interaction graph *)
  pt_largest_region : int;  (** nets in the biggest region *)
  pt_stitch_changed : int;
      (** corridor nets whose choice the stitch pass revised *)
  pt_plan_seconds : float;  (** decomposition wall-clock *)
  pt_stitch_seconds : float;  (** corridor fix-up wall-clock *)
}

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;  (** selected candidate per hyper net *)
  power : float;  (** total selected power, pJ/bit units *)
  select_seconds : float;
  ilp : Ilp_select.result option;  (** present when [mode = Ilp] *)
  lr : Lr_select.result option;  (** present when [mode = Lr] *)
  placement : Wdm_place.placement;
  assignment : Assign.result;
  trace : Instrument.sink;  (** per-stage seconds and counters *)
  faults : Fault.t list;  (** chronological degradations of this run *)
  quarantined_nets : int array;
      (** hyper nets routed with the all-electrical fallback *)
  solver_path : string;
      (** selection engines tried, in order, e.g. ["ilp->lr->greedy"] *)
  cache : Xmatrix.stats;
      (** crossing-matrix statistics at the end of selection: build
          size/time plus hit/miss counters *)
  thermal : thermal_result option;
      (** [Some] iff a thermal Pareto sweep ran (the config carried a
          scenario with a positive weight); the flow's own selection is
          then the ladder's first weight's *)
  partition : partition_stats option;
      (** [Some] iff the partitioned flow actually ran (config asked for
          it and the design cleared the activation threshold) *)
}

val synthesize : ?sink:Instrument.sink -> Config.t -> Signal.design -> t
(** The complete flow under a configuration. The returned selection is
    feasible and the WDM stages are run on it. [sink] overrides the
    fresh per-run instrumentation sink (pass one to accumulate several
    runs into a single report). *)

(** Per-run statistics of an {!prepare_eco} incremental re-preparation.
    Also mirrored into the run trace as [eco] counters ([nets_reused],
    [nets_recomputed], [xrows_reused]). *)
type eco_stats = {
  nets_reused : int;  (** nets whose candidate sets were carried over *)
  nets_recomputed : int;  (** nets re-run through the co-design DP *)
  xrows_reused : int;  (** crossing-matrix rows aliased from the
                           previous context *)
  dirty : int;  (** nets whose own pins changed *)
  interaction_dirty : int;
      (** clean nets pulled into recomputation because a changed net
          could affect their crossing estimates *)
  added : int;
  removed : int;
  dirty_closure : int;  (** total nets in the recomputation closure *)
  cold_fallback : bool;
      (** the incremental path was not applicable (injections,
          quarantined nets, config change, incompatible diff) and a
          full cold preparation ran instead *)
}

(** The full output of a preparation, keyed for reuse: the per-net
    candidate lists and the selection context (with its crossing
    matrix), plus everything {!prepare_eco} needs to certify per-net
    reuse against a revised design. *)
type prepared = {
  p_design : Signal.design;
  p_config : Config.t;
  p_hnets : Hypernet.t array;
  p_cands : Candidate.t list array;
  p_xcounts : Codesign.xcounts array;
      (** per-net crossing counts the candidates were generated from —
          the cacheable artifact an ECO re-preparation patches with the
          changed nets' delta instead of re-querying the whole design *)
  p_ctx : Selection.ctx;
  p_quarantined : int array;
  p_eco : eco_stats option;  (** [Some] iff produced by {!prepare_eco} *)
}

val prepare : ?sink:Instrument.sink -> Config.t -> Signal.design -> prepared
(** Processing plus candidate generation: hyper nets, then co-design
    candidates for each (crossing estimates taken against the other
    nets' optical baselines). The returned context carries the crossing
    cache per [config.cache]. *)

val prepare_eco :
  ?sink:Instrument.sink ->
  prev:prepared ->
  Config.t ->
  Signal.design ->
  prepared
(** Incremental re-preparation of a revised [design] against a previous
    preparation. Hyper-net extraction and baselines always re-run in
    full (they are cheap and fix the PRNG state to the cold run's);
    {!Design_diff} then classifies each net, and only nets in the dirty
    closure go back through the co-design DP — the rest reuse their
    previous candidate lists and crossing-matrix rows.

    Invariant: the returned artifacts are bit-identical to
    [prepare config design], so any selection run on them matches a
    cold run byte for byte. Whenever that cannot be certified — fault
    injections on either run, quarantined nets in [prev], a different
    preparation-relevant config, or an incompatible diff — the whole
    preparation falls back to the cold path and [cold_fallback] is set
    in the returned [p_eco]. *)

val prepare_with :
  ?sink:Instrument.sink ->
  Config.t ->
  Signal.design ->
  Hypernet.t array * Selection.ctx
(** [prepare] restricted to the pair of artifacts the selection entry
    points consume. *)

val select_with :
  ?sink:Instrument.sink ->
  ?initial:int array ->
  Config.t ->
  Signal.design ->
  Hypernet.t array ->
  Selection.ctx ->
  t
(** Selection + WDM stages on an existing candidate context — lets
    Table 1 compare ILP and LR on identical candidates without
    re-preparing. Only [mode], [ilp_budget], [strict] and [injections]
    of the configuration still matter here; the context already fixed
    the candidate set and its cache. [initial] warm-starts the solver
    from a previous run's [choice] (see {!Ilp_select.select} and
    {!Lr_select.select}); it is sanitized against the context and
    silently dropped when infeasible, and it never changes the set of
    feasible results — only how fast the solver reaches one. *)

val select_prepared :
  ?sink:Instrument.sink -> ?initial:int array -> Config.t -> prepared -> t
(** [select_with] over a {!prepared} value's own design and artifacts. *)

val run_ctx :
  ?processing:Processing.config ->
  ?partition:Config.partition ->
  Runctx.t ->
  Signal.design ->
  t
(** The whole pipeline under an explicit run-context — the low-level
    escape hatch when the caller owns the {!Runctx.t} (custom executor,
    shared fault log). Most callers want {!synthesize}. *)
