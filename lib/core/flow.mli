(** End-to-end OPERON flow (paper Figure 2), as a staged pipeline.

    signal processing -> baseline generation -> co-design candidates ->
    candidate selection (ILP or LR) -> WDM placement -> network-flow
    assignment.

    Each arrow is an {!Operon_engine.Pipeline} stage threading one
    {!Operon_engine.Runctx.t}: the run-context carries the configuration
    (parameters, mode, budgets, worker count), the deterministic PRNG,
    the {!Operon_util.Executor.t} parallel backend, and the
    {!Operon_engine.Instrument} sink every stage reports wall-clock and
    counters into. The per-hypernet baseline and co-design work fans out
    on the executor; results are merged in net-id order and each net owns
    a pre-split PRNG stream, so runs are bit-identical whatever [jobs]
    setting executed them.

    Fault tolerance: unless [config.strict] is set, a per-net failure in
    the Baselines or Codesign stages quarantines just that hyper net —
    it is routed with the deterministic all-electrical fallback
    ({!Codesign.electrical_only}) while every healthy net's result is
    bit-identical to a fault-free run. Selection failures walk a
    fallback chain (ILP -> LR -> greedy repair -> all-electrical), each
    hop recorded in the run's {!Operon_engine.Fault.log}. Strict mode
    re-raises the first structured {!Operon_engine.Fault.Error} with its
    original backtrace instead. *)

open Operon_util
open Operon_optical
open Operon_engine

type mode = Runctx.mode = Ilp | Lr

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;  (** selected candidate per hyper net *)
  power : float;  (** total selected power, pJ/bit units *)
  select_seconds : float;
  ilp : Ilp_select.result option;  (** present when [mode = Ilp] *)
  lr : Lr_select.result option;  (** present when [mode = Lr] *)
  placement : Wdm_place.placement;
  assignment : Assign.result;
  trace : Instrument.sink;  (** per-stage seconds and counters *)
  faults : Fault.t list;  (** chronological degradations of this run *)
  quarantined_nets : int array;
      (** hyper nets routed with the all-electrical fallback *)
  solver_path : string;
      (** selection engines tried, in order, e.g. ["ilp->lr->greedy"] *)
}

val run_ctx : ?processing:Processing.config -> Runctx.t -> Signal.design -> t
(** The whole pipeline under an explicit run-context — what the CLI's
    [--jobs]/[--trace] path uses. The context's sink accumulates the
    stage report returned in [trace]. *)

val prepare :
  ?processing:Processing.config ->
  ?max_cands_per_net:int ->
  ?exec:Executor.t ->
  ?sink:Instrument.sink ->
  Prng.t ->
  Params.t ->
  Signal.design ->
  Hypernet.t array * Selection.ctx
(** Processing plus candidate generation: hyper nets, then co-design
    candidates for each (crossing estimates taken against the other nets'
    optical baselines). [exec] parallelizes the per-net work (default
    sequential); [sink] collects stage timings (default: a fresh sink
    that is dropped). *)

val run :
  ?processing:Processing.config ->
  ?max_cands_per_net:int ->
  ?mode:mode ->
  ?ilp_budget:float ->
  ?exec:Executor.t ->
  ?sink:Instrument.sink ->
  Prng.t ->
  Params.t ->
  Signal.design ->
  t
(** The complete flow ([mode] defaults to [Lr]; [ilp_budget] defaults to
    3000 s as in the paper). The returned selection is feasible and the
    WDM stages are run on it. *)

val run_prepared :
  ?mode:mode ->
  ?ilp_budget:float ->
  ?sink:Instrument.sink ->
  Params.t ->
  Signal.design ->
  Hypernet.t array ->
  Selection.ctx ->
  t
(** Selection + WDM stages on an existing candidate context — lets Table 1
    compare ILP and LR on identical candidates without re-preparing. *)
