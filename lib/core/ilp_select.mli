(** Exact candidate selection — the Formula (3) ILP (paper Section 3.3).

    Minimize total power subject to (3b) pick-one-per-net and (3c)
    detection constraints, whose crossing terms couple pairs of selected
    candidates quadratically. The standard linearization introduces a
    product variable [y = a_ij * a_mn] per interacting candidate pair with
    [y >= a_ij + a_mn - 1] (the only direction a <=-constraint needs), so
    the program becomes a 0/1 ILP.

    Each component ILP is assembled as one immutable
    {!Operon_solver.Solver.Problem.t} — binary ranges ride on the
    variables as bounds rather than synthetic rows — and handed to
    {!Operon_solver.Solver.solve}, which defaults to the sparse revised
    simplex core ([core] selects the dense parity core instead).

    Two paper speed-ups are applied before solving:
    - crossing variables are dropped for hyper net pairs with
      non-overlapping bounding boxes (Section 3.3), and
    - the interaction graph is decomposed into connected components, each
      an independent ILP (a consequence of the first reduction).

    Small components are solved exactly. Oversized components (model
    above [max_component_vars]) run block-coordinate descent with exact
    block ILPs: each block of nets is re-optimized while the rest stays
    frozen, with guard rows keeping the frozen nets' paths legal, so the
    global selection remains feasible and its power decreases
    monotonically. Those components are reported as timed out — the
    analogue of the paper's ">3000 s" GUROBI rows, where the incumbent at
    the time limit is what gets reported. *)

type result = {
  choice : int array;  (** selected candidate index per hyper net *)
  power : float;
  proven : bool;  (** every component solved to optimality *)
  components : int;
  timed_out : int;  (** components that hit the budget or size cap *)
  nodes : int;  (** total branch-and-bound nodes *)
  lp_solves : int;  (** total LP relaxations solved *)
  pivots : int;  (** total simplex pivots (incl. bound flips) *)
  refactorizations : int;  (** sparse-core basis rebuilds; 0 on dense *)
  elapsed : float;  (** seconds *)
}

val select :
  ?budget_seconds:float ->
  ?max_pivots:int ->
  ?max_component_vars:int ->
  ?core:Operon_solver.Solver.core ->
  ?initial:int array ->
  Selection.ctx ->
  result
(** [initial] warm-starts the incumbent from a previous selection (ECO
    resubmission): sanitized to this context (out-of-range indices fall
    to the electrical candidate), repaired by {!Selection.polish}, and
    discarded for the cold greedy start when infeasible. Exactly solved
    components reach their optimum from any incumbent.

    [select ctx] runs the ILP per interaction component.
    [budget_seconds] (default 3000, the paper's cap) is shared across
    components; [max_pivots] (default unlimited) caps each node LP's
    simplex pivots, downgrading affected components to unproven;
    [core] picks the LP engine (default [Sparse]; [Dense] is the
    pre-redesign tableau core kept for parity testing);
    [max_component_vars] (default 150) is the model-size cap above which
    a component is declared timed out immediately. The returned
    selection is always feasible. *)
