(* Tests for the co-design dynamic program: agreement with exhaustive
   enumeration on small nets (the DP pruning ablation), presence of the
   electrical fallback, loss feasibility of everything it emits, and the
   Fig. 5 candidate structure. *)

open Operon_geom
open Operon_optical
open Operon_steiner
open Operon

let p = Point.make

let params = Params.default

let hnet_of_centers ?(bits = 8) ?(id = 0) centers =
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 1; source_count = (if i = 0 then 1 else 0) })
      centers
  in
  Hypernet.make ~id ~group:0 ~bits ~pins

(* Exhaustive reference: all 2^(n-1) labelings of a topology, keeping the
   loss-feasible ones (ignoring crossings, as the DP does with a zero
   estimate). *)
let exhaustive hnet topo =
  let n = Topology.node_count topo in
  let root = Topology.root topo in
  let non_root = List.filter (fun v -> v <> root) (List.init n Fun.id) in
  let k = List.length non_root in
  let best = ref infinity in
  for mask = 0 to (1 lsl k) - 1 do
    let labels = Array.make n Candidate.Electrical in
    List.iteri
      (fun bit v ->
        if mask land (1 lsl bit) <> 0 then labels.(v) <- Candidate.Optical)
      non_root;
    match Candidate.of_labels params hnet topo labels with
    | exception Invalid_argument _ -> ()
    | c ->
        if Candidate.loss_feasible params c && c.Candidate.power < !best then
          best := c.Candidate.power
  done;
  !best

let test_dp_matches_exhaustive_small () =
  (* several deterministic small instances *)
  List.iter
    (fun seed ->
      let rng = Operon_util.Prng.create seed in
      let n = 3 + Operon_util.Prng.int rng 3 in
      let centers =
        Array.init n (fun i ->
            if i = 0 then p 0.0 0.0
            else p (Operon_util.Prng.float rng 4.0) (Operon_util.Prng.float rng 4.0))
      in
      let hnet = hnet_of_centers ~bits:(1 + Operon_util.Prng.int rng 31) centers in
      let topo = Bi1s.build Topology.L2 centers ~root:0 in
      let cands = Codesign.enumerate params hnet topo in
      Alcotest.(check bool) "dp produced something" true (cands <> []);
      let dp_best = (List.hd cands).Candidate.power in
      let brute = exhaustive hnet topo in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: dp %.4f = brute %.4f" seed dp_best brute)
        true
        (Float.abs (dp_best -. brute) < 1e-6))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_dp_candidates_feasible () =
  List.iter
    (fun seed ->
      let rng = Operon_util.Prng.create seed in
      let centers =
        Array.init 5 (fun i ->
            if i = 0 then p 0.0 0.0
            else p (Operon_util.Prng.float rng 4.0) (Operon_util.Prng.float rng 4.0))
      in
      let hnet = hnet_of_centers centers in
      let topo = Bi1s.build Topology.L2 centers ~root:0 in
      List.iter
        (fun c ->
          Alcotest.(check bool) "intrinsically feasible" true
            (Candidate.loss_feasible params c))
        (Codesign.enumerate params hnet topo))
    [ 11; 12; 13 ]

let test_dp_sorted_by_power () =
  let centers = [| p 0.0 0.0; p 3.0 0.0; p 0.0 3.0; p 3.0 3.0 |] in
  let hnet = hnet_of_centers centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  let cands = Codesign.enumerate params hnet topo in
  let rec sorted = function
    | (a : Candidate.t) :: (b :: _ as rest) ->
        a.Candidate.power <= b.Candidate.power +. 1e-9 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending power" true (sorted cands)

let test_dp_includes_electrical () =
  let centers = [| p 0.0 0.0; p 2.5 0.0 |] in
  let hnet = hnet_of_centers centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  let cands = Codesign.enumerate params hnet topo in
  Alcotest.(check bool) "electrical labeling present" true
    (List.exists (fun c -> c.Candidate.pure_electrical) cands)

let test_dp_power_cross_check () =
  (* dp_power_of must match the DP's own root pow_e via materialization *)
  let centers = [| p 0.0 0.0; p 2.0 1.0; p 1.0 3.0 |] in
  let hnet = hnet_of_centers centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "power consistent" true
        (Float.abs (Codesign.dp_power_of c -. c.Candidate.power) < 1e-9))
    (Codesign.enumerate params hnet topo)

let test_wide_bus_prefers_optical () =
  (* 32-bit bus over 3 cm: conversions (~0.9) beat 32 wires x 2.7 each. *)
  let centers = [| p 0.0 0.0; p 3.0 0.0 |] in
  let hnet = hnet_of_centers ~bits:32 centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  let best = List.hd (Codesign.enumerate params hnet topo) in
  Alcotest.(check bool) "optical wins" false best.Candidate.pure_electrical

let test_short_thin_net_prefers_electrical () =
  (* 1-bit net over 0.2 cm: one wire at ~0.18 pJ beats 0.885 pJ devices. *)
  let centers = [| p 0.0 0.0; p 0.2 0.0 |] in
  let hnet = hnet_of_centers ~bits:1 centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  let best = List.hd (Codesign.enumerate params hnet topo) in
  Alcotest.(check bool) "electrical wins" true best.Candidate.pure_electrical

let test_crossover_distance () =
  (* With site-amortized conversions the optical/electrical crossover for
     a 1-bit point-to-point net sits at conversion/unit ~ 0.98 cm. *)
  let unit = Params.electrical_unit_energy params in
  let crossover = (params.Params.p_mod +. params.Params.p_det) /. unit in
  let best_at d =
    let centers = [| p 0.0 0.0; p d 0.0 |] in
    let hnet = hnet_of_centers ~bits:1 centers in
    let topo = Bi1s.build Topology.L2 centers ~root:0 in
    List.hd (Codesign.enumerate params hnet topo)
  in
  Alcotest.(check bool) "below crossover electrical" true
    (best_at (0.8 *. crossover)).Candidate.pure_electrical;
  Alcotest.(check bool) "above crossover optical" false
    (best_at (1.2 *. crossover)).Candidate.pure_electrical

let test_loss_budget_forces_electrical () =
  (* A hopelessly tight budget leaves only the electrical labeling. *)
  let tight = { params with Params.l_max = 0.01 } in
  let centers = [| p 0.0 0.0; p 3.0 0.0; p 0.0 3.0 |] in
  let hnet = hnet_of_centers ~bits:32 centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  let cands = Codesign.enumerate tight hnet topo in
  List.iter
    (fun c -> Alcotest.(check bool) "only electrical survives" true c.Candidate.pure_electrical)
    cands

let test_crossing_estimate_prunes () =
  (* A huge crossing estimate on every edge must push the DP fully
     electrical. *)
  let centers = [| p 0.0 0.0; p 3.0 0.0 |] in
  let hnet = hnet_of_centers ~bits:32 centers in
  let topo = Bi1s.build Topology.L2 centers ~root:0 in
  let cands = Codesign.enumerate ~edge_crossings:(fun _ -> 10_000) params hnet topo in
  List.iter
    (fun c -> Alcotest.(check bool) "electrical only" true c.Candidate.pure_electrical)
    cands

let test_for_hypernet_trivial () =
  let hnet = hnet_of_centers [| p 1.0 1.0 |] in
  match Codesign.for_hypernet params hnet with
  | [ c ] ->
      Alcotest.(check bool) "single zero-power candidate" true
        (c.Candidate.pure_electrical && c.Candidate.power = 0.0)
  | _ -> Alcotest.fail "expected exactly one candidate"

let test_for_hypernet_has_fallback_and_cap () =
  let rng = Operon_util.Prng.create 77 in
  let centers =
    Array.init 6 (fun i ->
        if i = 0 then p 0.0 0.0
        else p (Operon_util.Prng.float rng 5.0) (Operon_util.Prng.float rng 5.0))
  in
  let hnet = hnet_of_centers ~bits:16 centers in
  let cands = Codesign.for_hypernet ~max_total:5 params hnet in
  Alcotest.(check bool) "within cap (+fallback)" true (List.length cands <= 6);
  Alcotest.(check bool) "has electrical fallback" true
    (List.exists (fun c -> c.Candidate.pure_electrical) cands)

let test_fig5_shapes () =
  (* The paper's example keeps hybrid configurations like OEO/EEO; the DP
     over the Fig. 5 topology must produce at least one candidate that
     mixes optical and electrical edges when geometry warrants it. *)
  let centers = [| p 0.0 3.0; p 0.0 0.0; p 3.0 0.0 |] in
  let hnet = hnet_of_centers ~bits:12 centers in
  let cands = Codesign.for_hypernet params hnet in
  Alcotest.(check bool) "several candidates" true (List.length cands >= 2);
  let kinds =
    List.map
      (fun (c : Candidate.t) ->
        if c.Candidate.pure_electrical then `E
        else if c.Candidate.elec_wirelength > 1e-9 then `Hybrid
        else `O)
      cands
  in
  Alcotest.(check bool) "contains a fully-labelled variety" true
    (List.mem `E kinds && (List.mem `O kinds || List.mem `Hybrid kinds))

let prop_dp_optimal_on_random_small =
  QCheck.Test.make ~name:"dp equals exhaustive on random 4-pin nets" ~count:50
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Operon_util.Prng.create seed in
      let centers =
        Array.init 4 (fun i ->
            if i = 0 then p 0.0 0.0
            else p (Operon_util.Prng.float rng 4.0) (Operon_util.Prng.float rng 4.0))
      in
      let hnet = hnet_of_centers ~bits:(1 + Operon_util.Prng.int rng 31) centers in
      let topo = Bi1s.build Topology.L2 centers ~root:0 in
      match Codesign.enumerate params hnet topo with
      | [] -> false
      | best :: _ -> Float.abs (best.Candidate.power -. exhaustive hnet topo) < 1e-6)

let () =
  Alcotest.run "codesign"
    [ ( "codesign",
        [ Alcotest.test_case "matches exhaustive" `Quick test_dp_matches_exhaustive_small;
          Alcotest.test_case "feasible output" `Quick test_dp_candidates_feasible;
          Alcotest.test_case "sorted" `Quick test_dp_sorted_by_power;
          Alcotest.test_case "electrical present" `Quick test_dp_includes_electrical;
          Alcotest.test_case "power cross-check" `Quick test_dp_power_cross_check;
          Alcotest.test_case "wide bus optical" `Quick test_wide_bus_prefers_optical;
          Alcotest.test_case "thin short electrical" `Quick test_short_thin_net_prefers_electrical;
          Alcotest.test_case "crossover distance" `Quick test_crossover_distance;
          Alcotest.test_case "tight budget" `Quick test_loss_budget_forces_electrical;
          Alcotest.test_case "crossing estimate prunes" `Quick test_crossing_estimate_prunes;
          Alcotest.test_case "trivial hypernet" `Quick test_for_hypernet_trivial;
          Alcotest.test_case "fallback and cap" `Quick test_for_hypernet_has_fallback_and_cap;
          Alcotest.test_case "fig5 shapes" `Quick test_fig5_shapes;
          QCheck_alcotest.to_alcotest prop_dp_optimal_on_random_small ] ) ]
