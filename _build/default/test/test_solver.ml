(* Tests for the LP/ILP solver substrate: simplex on textbook programs,
   infeasible/unbounded detection, and branch-and-bound against exhaustive
   enumeration on random 0/1 programs. *)

open Operon_solver

let check_float = Alcotest.(check (float 1e-6))

(* --- lp model --- *)

let test_lp_model () =
  let m = Lp.create ~nvars:3 in
  Lp.set_objective m 0 2.0;
  Alcotest.(check (float 0.0)) "objective coeff" 2.0 (Lp.objective_coeff m 0);
  Lp.add_constraint m [ (0, 1.0); (1, 1.0) ] Lp.Le 4.0;
  Alcotest.(check int) "rows" 1 (Lp.constraint_count m);
  check_float "eval" 2.0 (Lp.eval_objective m [| 1.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "feasible" true (Lp.feasible m [| 1.0; 3.0; 0.0 |]);
  Alcotest.(check bool) "infeasible" false (Lp.feasible m [| 3.0; 3.0; 0.0 |]);
  Alcotest.(check bool) "negative var" false (Lp.feasible m [| -1.0; 0.0; 0.0 |])

let test_lp_invalid_var () =
  let m = Lp.create ~nvars:2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Lp: variable out of range")
    (fun () -> Lp.add_constraint m [ (5, 1.0) ] Lp.Le 1.0)

(* --- simplex --- *)

(* max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18  => minimize -(3x+5y), optimum
   x=2,y=6, objective -36. The classic Dantzig example. *)
let test_simplex_classic () =
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 (-3.0);
  Lp.set_objective m 1 (-5.0);
  Lp.add_constraint m [ (0, 1.0) ] Lp.Le 4.0;
  Lp.add_constraint m [ (1, 2.0) ] Lp.Le 12.0;
  Lp.add_constraint m [ (0, 3.0); (1, 2.0) ] Lp.Le 18.0;
  match Simplex.solve m with
  | Simplex.Optimal { objective; solution } ->
      check_float "objective" (-36.0) objective;
      check_float "x" 2.0 solution.(0);
      check_float "y" 6.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  (* min x + 2y st x + y = 3, x <= 1 => x=1, y=2, obj 5 *)
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 1.0;
  Lp.set_objective m 1 2.0;
  Lp.add_constraint m [ (0, 1.0); (1, 1.0) ] Lp.Eq 3.0;
  Lp.add_constraint m [ (0, 1.0) ] Lp.Le 1.0;
  match Simplex.solve m with
  | Simplex.Optimal { objective; _ } -> check_float "objective" 5.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_ge () =
  (* min 2x + 3y st x + y >= 4, x <= 3 => y >= 1; optimum x=3,y=1 obj 9 *)
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 2.0;
  Lp.set_objective m 1 3.0;
  Lp.add_constraint m [ (0, 1.0); (1, 1.0) ] Lp.Ge 4.0;
  Lp.add_constraint m [ (0, 1.0) ] Lp.Le 3.0;
  match Simplex.solve m with
  | Simplex.Optimal { objective; _ } -> check_float "objective" 9.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let m = Lp.create ~nvars:1 in
  Lp.add_constraint m [ (0, 1.0) ] Lp.Ge 5.0;
  Lp.add_constraint m [ (0, 1.0) ] Lp.Le 2.0;
  Alcotest.(check bool) "infeasible" true (Simplex.solve m = Simplex.Infeasible)

let test_simplex_unbounded () =
  let m = Lp.create ~nvars:1 in
  Lp.set_objective m 0 (-1.0);
  Lp.add_constraint m [ (0, 1.0) ] Lp.Ge 0.0;
  Alcotest.(check bool) "unbounded" true (Simplex.solve m = Simplex.Unbounded)

let test_simplex_no_constraints () =
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 1.0;
  (match Simplex.solve m with
   | Simplex.Optimal { objective; _ } -> check_float "zero" 0.0 objective
   | _ -> Alcotest.fail "expected optimal");
  Lp.set_objective m 1 (-1.0);
  Alcotest.(check bool) "unbounded down" true (Simplex.solve m = Simplex.Unbounded)

let test_simplex_negative_rhs () =
  (* min x st -x <= -2  (i.e. x >= 2) *)
  let m = Lp.create ~nvars:1 in
  Lp.set_objective m 0 1.0;
  Lp.add_constraint m [ (0, -1.0) ] Lp.Le (-2.0);
  match Simplex.solve m with
  | Simplex.Optimal { objective; _ } -> check_float "x=2" 2.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_degenerate () =
  (* Degenerate vertex should still terminate (anti-cycling). *)
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 (-1.0);
  Lp.set_objective m 1 (-1.0);
  Lp.add_constraint m [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
  Lp.add_constraint m [ (0, 1.0) ] Lp.Le 1.0;
  Lp.add_constraint m [ (1, 1.0) ] Lp.Le 1.0;
  Lp.add_constraint m [ (0, 1.0); (1, -1.0) ] Lp.Le 0.0;
  match Simplex.solve m with
  | Simplex.Optimal { objective; _ } -> check_float "objective" (-1.0) objective
  | _ -> Alcotest.fail "expected optimal"

(* --- ilp --- *)

(* Knapsack-flavoured: min -(5a + 4b + 3c) st 2a + 3b + c <= 4, binary.
   Optimum a=1,c=1 -> -8 (b would exceed the budget). *)
let test_ilp_knapsack () =
  let m = Lp.create ~nvars:3 in
  Lp.set_objective m 0 (-5.0);
  Lp.set_objective m 1 (-4.0);
  Lp.set_objective m 2 (-3.0);
  Lp.add_constraint m [ (0, 2.0); (1, 3.0); (2, 1.0) ] Lp.Le 4.0;
  match Ilp.solve m ~binary:[ 0; 1; 2 ] with
  | Ilp.Proven { objective; values }, _ ->
      check_float "objective" (-8.0) objective;
      check_float "a" 1.0 values.(0);
      check_float "b" 0.0 values.(1);
      check_float "c" 1.0 values.(2)
  | _ -> Alcotest.fail "expected proven optimum"

let test_ilp_integrality_gap () =
  (* LP relaxation would take fractional x=y=0.5; ILP must pick one. *)
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 (-1.0);
  Lp.set_objective m 1 (-1.0);
  Lp.add_constraint m [ (0, 2.0); (1, 2.0) ] Lp.Le 2.1;
  match Ilp.solve m ~binary:[ 0; 1 ] with
  | Ilp.Proven { objective; _ }, _ -> check_float "one selected" (-1.0) objective
  | _ -> Alcotest.fail "expected proven"

let test_ilp_infeasible () =
  let m = Lp.create ~nvars:2 in
  Lp.add_constraint m [ (0, 1.0); (1, 1.0) ] Lp.Ge 3.0;
  (* binaries sum to at most 2 *)
  match Ilp.solve m ~binary:[ 0; 1 ] with
  | Ilp.No_solution, _ -> ()
  | _ -> Alcotest.fail "expected no solution"

let test_ilp_incumbent_respected () =
  let m = Lp.create ~nvars:1 in
  Lp.set_objective m 0 1.0;
  let incumbent = { Ilp.objective = 0.0; values = [| 0.0 |] } in
  match Ilp.solve ~incumbent m ~binary:[ 0 ] with
  | Ilp.Proven { objective; _ }, _ -> check_float "keeps 0" 0.0 objective
  | _ -> Alcotest.fail "expected proven"

let test_ilp_budget_expiry () =
  (* An already-expired budget returns the incumbent as Best. *)
  let m = Lp.create ~nvars:2 in
  Lp.set_objective m 0 (-1.0);
  Lp.set_objective m 1 (-1.0);
  Lp.add_constraint m [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
  let budget = Operon_util.Timer.budget 1e-9 in
  Unix.sleepf 0.01;
  let incumbent = { Ilp.objective = 0.0; values = [| 0.0; 0.0 |] } in
  match Ilp.solve ~budget ~incumbent m ~binary:[ 0; 1 ] with
  | Ilp.Best { objective; _ }, _ -> check_float "incumbent" 0.0 objective
  | Ilp.Proven _, _ -> Alcotest.fail "should not have had time to prove"
  | _ -> Alcotest.fail "expected Best"

(* Exhaustive cross-check on random small 0/1 programs. *)
let brute_force nvars objective rows =
  let best = ref None in
  for mask = 0 to (1 lsl nvars) - 1 do
    let x = Array.init nvars (fun v -> if mask land (1 lsl v) <> 0 then 1.0 else 0.0) in
    let ok =
      List.for_all
        (fun (coeffs, rhs) ->
          List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 coeffs <= rhs +. 1e-9)
        rows
    in
    if ok then begin
      let obj = Array.fold_left ( +. ) 0.0 (Array.mapi (fun v xv -> objective.(v) *. xv) x) in
      match !best with
      | Some b when b <= obj -> ()
      | _ -> best := Some obj
    end
  done;
  !best

let prop_ilp_matches_brute_force =
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun nvars ->
      array_size (return nvars) (float_range (-5.0) 5.0) >>= fun objective ->
      list_size (int_range 0 4)
        (pair
           (list_size (int_range 1 nvars)
              (pair (int_range 0 (nvars - 1)) (float_range (-3.0) 3.0)))
           (float_range 0.0 5.0))
      >|= fun rows -> (nvars, objective, rows))
  in
  QCheck.Test.make ~name:"ilp matches brute force" ~count:150
    (QCheck.make ~print:(fun (n, _, rows) -> Printf.sprintf "n=%d rows=%d" n (List.length rows)) gen)
    (fun (nvars, objective, rows) ->
      let m = Lp.create ~nvars in
      Array.iteri (fun v c -> Lp.set_objective m v c) objective;
      List.iter (fun (coeffs, rhs) -> Lp.add_constraint m coeffs Lp.Le rhs) rows;
      let expected = brute_force nvars objective rows in
      match (Ilp.solve m ~binary:(List.init nvars Fun.id), expected) with
      | (Ilp.Proven { objective = got; _ }, _), Some want -> Float.abs (got -. want) < 1e-5
      | (Ilp.No_solution, _), None -> true
      | _ -> false)

(* Rebuild a model with explicit x <= 1 rows so the plain simplex solves
   the same relaxation B&B uses internally. *)
let with_bounds m nvars =
  let relax = Lp.create ~nvars in
  for v = 0 to nvars - 1 do
    Lp.set_objective relax v (Lp.objective_coeff m v);
    Lp.add_constraint relax [ (v, 1.0) ] Lp.Le 1.0
  done;
  List.iter (fun r -> Lp.add_constraint relax r.Lp.coeffs r.Lp.rel r.Lp.rhs) (Lp.constraints m);
  relax

let prop_simplex_below_ilp =
  (* LP relaxation is a valid lower bound for the 0/1 program. *)
  let gen =
    QCheck.Gen.(
      int_range 2 5 >>= fun nvars ->
      array_size (return nvars) (float_range 0.0 5.0) >>= fun objective ->
      list_size (int_range 1 3)
        (pair
           (list_size (int_range 1 nvars)
              (pair (int_range 0 (nvars - 1)) (float_range 0.5 3.0)))
           (float_range 1.0 5.0))
      >|= fun rows -> (nvars, objective, rows))
  in
  QCheck.Test.make ~name:"lp relaxation bounds ilp" ~count:100
    (QCheck.make ~print:(fun (n, _, _) -> string_of_int n) gen)
    (fun (nvars, objective, rows) ->
      let m = Lp.create ~nvars in
      Array.iteri (fun v c -> Lp.set_objective m v c) objective;
      (* force at least one selection so the problem is not trivially 0 *)
      Lp.add_constraint m (List.init nvars (fun v -> (v, 1.0))) Lp.Ge 1.0;
      List.iter (fun (coeffs, rhs) -> Lp.add_constraint m coeffs Lp.Le rhs) rows;
      let relax = with_bounds m nvars in
      match (Simplex.solve relax, Ilp.solve m ~binary:(List.init nvars Fun.id)) with
      | Simplex.Optimal { objective = lp; _ }, (Ilp.Proven { objective = ip; _ }, _) ->
          lp <= ip +. 1e-6
      | Simplex.Infeasible, (Ilp.No_solution, _) -> true
      | _, (Ilp.No_solution, _) -> true
      | _ -> false)

let () =
  Alcotest.run "solver"
    [ ( "lp",
        [ Alcotest.test_case "model" `Quick test_lp_model;
          Alcotest.test_case "invalid var" `Quick test_lp_invalid_var ] );
      ( "simplex",
        [ Alcotest.test_case "classic" `Quick test_simplex_classic;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "ge rows" `Quick test_simplex_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "no constraints" `Quick test_simplex_no_constraints;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate ] );
      ( "ilp",
        [ Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "integrality gap" `Quick test_ilp_integrality_gap;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "incumbent" `Quick test_ilp_incumbent_respected;
          Alcotest.test_case "budget expiry" `Quick test_ilp_budget_expiry;
          QCheck_alcotest.to_alcotest prop_ilp_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_simplex_below_ilp ] ) ]
