(* Tests for the geometry substrate: points, rectangles, segment crossing
   semantics (the loss model depends on "proper crossing" being exactly
   transversal-interior), and the hotspot grid. *)

open Operon_geom

let p = Point.make

let check_float = Alcotest.(check (float 1e-9))

(* --- points --- *)

let test_distances () =
  check_float "l1" 7.0 (Point.l1 (p 0.0 0.0) (p 3.0 4.0));
  check_float "l2" 5.0 (Point.l2 (p 0.0 0.0) (p 3.0 4.0));
  check_float "l2_sq" 25.0 (Point.l2_sq (p 0.0 0.0) (p 3.0 4.0))

let test_point_ops () =
  let a = p 1.0 2.0 and b = p 3.0 5.0 in
  Alcotest.(check bool) "midpoint" true (Point.equal (Point.midpoint a b) (p 2.0 3.5));
  Alcotest.(check bool) "add" true (Point.equal (Point.add a b) (p 4.0 7.0));
  Alcotest.(check bool) "sub" true (Point.equal (Point.sub b a) (p 2.0 3.0));
  check_float "dot" 13.0 (Point.dot a b);
  check_float "cross" (-1.0) (Point.cross a b)

let test_centroid () =
  let c = Point.centroid [| p 0.0 0.0; p 2.0 0.0; p 1.0 3.0 |] in
  Alcotest.(check bool) "centroid" true (Point.close c (p 1.0 1.0));
  Alcotest.check_raises "empty" (Invalid_argument "Point.centroid: empty array")
    (fun () -> ignore (Point.centroid [||]))

let test_compare_order () =
  Alcotest.(check bool) "x first" true (Point.compare (p 0.0 9.0) (p 1.0 0.0) < 0);
  Alcotest.(check bool) "then y" true (Point.compare (p 1.0 0.0) (p 1.0 1.0) < 0);
  Alcotest.(check int) "equal" 0 (Point.compare (p 1.0 1.0) (p 1.0 1.0))

(* --- rectangles --- *)

let test_rect_basic () =
  let r = Rect.make ~xmin:0.0 ~ymin:1.0 ~xmax:4.0 ~ymax:3.0 in
  check_float "width" 4.0 (Rect.width r);
  check_float "height" 2.0 (Rect.height r);
  check_float "area" 8.0 (Rect.area r);
  check_float "hpwl" 6.0 (Rect.half_perimeter r);
  Alcotest.(check bool) "contains" true (Rect.contains r (p 2.0 2.0));
  Alcotest.(check bool) "boundary contains" true (Rect.contains r (p 0.0 1.0));
  Alcotest.(check bool) "outside" false (Rect.contains r (p 5.0 2.0))

let test_rect_invalid () =
  Alcotest.check_raises "inverted" (Invalid_argument "Rect.make: inverted bounds")
    (fun () -> ignore (Rect.make ~xmin:1.0 ~ymin:0.0 ~xmax:0.0 ~ymax:1.0))

let test_rect_overlap () =
  let a = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.0 ~ymax:2.0 in
  let b = Rect.make ~xmin:1.0 ~ymin:1.0 ~xmax:3.0 ~ymax:3.0 in
  let c = Rect.make ~xmin:2.0 ~ymin:2.0 ~xmax:3.0 ~ymax:3.0 in
  let d = Rect.make ~xmin:5.0 ~ymin:5.0 ~xmax:6.0 ~ymax:6.0 in
  Alcotest.(check bool) "proper overlap" true (Rect.overlaps a b);
  Alcotest.(check bool) "touching counts" true (Rect.overlaps a c);
  Alcotest.(check bool) "disjoint" false (Rect.overlaps a d)

let test_rect_intersection_union () =
  let a = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.0 ~ymax:2.0 in
  let b = Rect.make ~xmin:1.0 ~ymin:1.0 ~xmax:3.0 ~ymax:3.0 in
  (match Rect.intersection a b with
   | Some r ->
       check_float "ixmin" 1.0 r.Rect.xmin;
       check_float "ixmax" 2.0 r.Rect.xmax
   | None -> Alcotest.fail "expected intersection");
  let u = Rect.union a b in
  check_float "uxmax" 3.0 u.Rect.xmax;
  let far = Rect.make ~xmin:10.0 ~ymin:10.0 ~xmax:11.0 ~ymax:11.0 in
  Alcotest.(check bool) "no intersection" true (Rect.intersection a far = None)

let test_rect_inflate () =
  let a = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.0 ~ymax:2.0 in
  let big = Rect.inflate a 1.0 in
  check_float "grown" 4.0 (Rect.width big);
  let collapsed = Rect.inflate a (-5.0) in
  check_float "collapsed to center" 0.0 (Rect.width collapsed);
  Alcotest.(check bool) "center preserved" true
    (Point.close (Rect.center collapsed) (p 1.0 1.0))

let test_rect_of_points () =
  let r = Rect.of_points [| p 1.0 5.0; p 3.0 2.0; p 2.0 4.0 |] in
  check_float "xmin" 1.0 r.Rect.xmin;
  check_float "ymax" 5.0 r.Rect.ymax

(* --- segments --- *)

let seg a b = Segment.make a b

let test_segment_lengths () =
  let s = seg (p 0.0 0.0) (p 3.0 4.0) in
  check_float "l2 length" 5.0 (Segment.length s);
  check_float "l1 length" 7.0 (Segment.length_l1 s)

let test_segment_orientation_classes () =
  Alcotest.(check bool) "horizontal" true (Segment.is_horizontal (seg (p 0.0 1.0) (p 5.0 1.0)));
  Alcotest.(check bool) "vertical" true (Segment.is_vertical (seg (p 2.0 0.0) (p 2.0 5.0)));
  Alcotest.(check bool) "diagonal not horizontal" false
    (Segment.is_horizontal (seg (p 0.0 0.0) (p 1.0 1.0)))

let test_proper_crossing () =
  let s1 = seg (p 0.0 0.0) (p 2.0 2.0) in
  let s2 = seg (p 0.0 2.0) (p 2.0 0.0) in
  Alcotest.(check bool) "X crosses" true (Segment.crosses_properly s1 s2);
  Alcotest.(check bool) "symmetric" true (Segment.crosses_properly s2 s1)

let test_endpoint_touch_not_proper () =
  (* Shared endpoints are tree branch points, not waveguide crossings. *)
  let s1 = seg (p 0.0 0.0) (p 1.0 1.0) in
  let s2 = seg (p 1.0 1.0) (p 2.0 0.0) in
  Alcotest.(check bool) "intersects" true (Segment.intersects s1 s2);
  Alcotest.(check bool) "not proper" false (Segment.crosses_properly s1 s2)

let test_t_junction_not_proper () =
  let s1 = seg (p 0.0 0.0) (p 2.0 0.0) in
  let s2 = seg (p 1.0 0.0) (p 1.0 1.0) in
  Alcotest.(check bool) "T intersects" true (Segment.intersects s1 s2);
  Alcotest.(check bool) "T not proper" false (Segment.crosses_properly s1 s2)

let test_collinear_overlap_not_proper () =
  let s1 = seg (p 0.0 0.0) (p 2.0 0.0) in
  let s2 = seg (p 1.0 0.0) (p 3.0 0.0) in
  Alcotest.(check bool) "collinear intersects" true (Segment.intersects s1 s2);
  Alcotest.(check bool) "collinear not proper" false (Segment.crosses_properly s1 s2)

let test_disjoint_segments () =
  let s1 = seg (p 0.0 0.0) (p 1.0 0.0) in
  let s2 = seg (p 0.0 1.0) (p 1.0 1.0) in
  Alcotest.(check bool) "parallel disjoint" false (Segment.intersects s1 s2);
  Alcotest.(check bool) "not proper either" false (Segment.crosses_properly s1 s2)

let test_intersection_point () =
  let s1 = seg (p 0.0 0.0) (p 2.0 2.0) in
  let s2 = seg (p 0.0 2.0) (p 2.0 0.0) in
  (match Segment.intersection_point s1 s2 with
   | Some q -> Alcotest.(check bool) "center" true (Point.close q (p 1.0 1.0))
   | None -> Alcotest.fail "expected intersection");
  let s3 = seg (p 0.0 5.0) (p 1.0 5.0) in
  Alcotest.(check bool) "parallel -> none" true (Segment.intersection_point s1 s3 = None)

let test_count_crossings () =
  let fam1 = [| seg (p 0.0 0.0) (p 4.0 0.0); seg (p 0.0 1.0) (p 4.0 1.0) |] in
  let fam2 = [| seg (p 1.0 (-1.0)) (p 1.0 2.0); seg (p 3.0 (-1.0)) (p 3.0 2.0) |] in
  Alcotest.(check int) "4 crossings" 4 (Segment.count_crossings fam1 fam2);
  Alcotest.(check int) "no self crossings among parallels" 0
    (Segment.count_self_crossings fam1)

let test_self_crossings () =
  let fam =
    [| seg (p 0.0 0.0) (p 2.0 2.0); seg (p 0.0 2.0) (p 2.0 0.0);
       seg (p 5.0 5.0) (p 6.0 6.0) |]
  in
  Alcotest.(check int) "one pair" 1 (Segment.count_self_crossings fam)

let test_distance_point () =
  let s = seg (p 0.0 0.0) (p 4.0 0.0) in
  check_float "perpendicular" 2.0 (Segment.distance_point (p 2.0 2.0) s);
  check_float "beyond endpoint" 5.0 (Segment.distance_point (p 7.0 4.0) s);
  check_float "on segment" 0.0 (Segment.distance_point (p 1.0 0.0) s)

(* --- gridmap --- *)

let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:4.0 ~ymax:4.0

let test_grid_point_deposit () =
  let g = Gridmap.create die ~nx:4 ~ny:4 in
  Gridmap.deposit_point g (p 0.5 0.5) 2.0;
  Gridmap.deposit_point g (p 3.9 3.9) 3.0;
  check_float "cell 0,0" 2.0 (Gridmap.get g 0 0);
  check_float "cell 3,3" 3.0 (Gridmap.get g 3 3);
  check_float "total" 5.0 (Gridmap.total g);
  check_float "peak" 3.0 (Gridmap.peak g)

let test_grid_clamping () =
  let g = Gridmap.create die ~nx:4 ~ny:4 in
  Gridmap.deposit_point g (p (-1.0) 10.0) 1.0;
  check_float "clamped to border" 1.0 (Gridmap.get g 0 3)

let test_grid_segment_mass_conserved () =
  let g = Gridmap.create die ~nx:4 ~ny:4 in
  Gridmap.deposit_segment g (seg (p 0.2 0.2) (p 3.8 3.8)) 10.0;
  Alcotest.(check bool) "mass conserved" true (Float.abs (Gridmap.total g -. 10.0) < 1e-6);
  (* a diagonal must heat all diagonal cells *)
  Alcotest.(check bool) "diagonal coverage" true
    (Gridmap.get g 0 0 > 0.0 && Gridmap.get g 1 1 > 0.0 && Gridmap.get g 2 2 > 0.0
     && Gridmap.get g 3 3 > 0.0)

let test_grid_normalized () =
  let g = Gridmap.create die ~nx:2 ~ny:2 in
  Gridmap.deposit_point g (p 0.5 0.5) 4.0;
  Gridmap.deposit_point g (p 3.5 3.5) 2.0;
  let n = Gridmap.normalized g in
  check_float "peak 1" 1.0 n.(0).(0);
  check_float "half" 0.5 n.(1).(1)

let test_grid_correlation () =
  let g1 = Gridmap.create die ~nx:2 ~ny:2 in
  let g2 = Gridmap.create die ~nx:2 ~ny:2 in
  Gridmap.deposit_point g1 (p 0.5 0.5) 1.0;
  Gridmap.deposit_point g2 (p 0.5 0.5) 5.0;
  Alcotest.(check bool) "self-similar maps correlate" true (Gridmap.correlation g1 g2 > 0.99);
  let g3 = Gridmap.create die ~nx:2 ~ny:2 in
  Gridmap.deposit_point g3 (p 3.5 3.5) 1.0;
  Alcotest.(check bool) "different hotspots anti-correlate" true (Gridmap.correlation g1 g3 < 0.0)

let test_grid_render () =
  let g = Gridmap.create die ~nx:3 ~ny:2 in
  Gridmap.deposit_point g (p 0.5 0.5) 1.0;
  let s = Gridmap.render g in
  let newlines = String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s in
  Alcotest.(check int) "one newline per row" 2 newlines;
  Alcotest.(check int) "rows are nx wide (+newline)" (2 * 4) (String.length s)

(* --- properties --- *)

let point_gen =
  QCheck.Gen.(map2 (fun x y -> p x y) (float_bound_exclusive 10.0) (float_bound_exclusive 10.0))

let arb_point = QCheck.make ~print:(fun q -> Format.asprintf "%a" Point.pp q) point_gen

let prop_triangle_l1 =
  QCheck.Test.make ~name:"L1 triangle inequality" ~count:500
    QCheck.(triple arb_point arb_point arb_point)
    (fun (a, b, c) -> Point.l1 a c <= Point.l1 a b +. Point.l1 b c +. 1e-9)

let prop_triangle_l2 =
  QCheck.Test.make ~name:"L2 triangle inequality" ~count:500
    QCheck.(triple arb_point arb_point arb_point)
    (fun (a, b, c) -> Point.l2 a c <= Point.l2 a b +. Point.l2 b c +. 1e-9)

let prop_l1_ge_l2 =
  QCheck.Test.make ~name:"L1 >= L2" ~count:500
    QCheck.(pair arb_point arb_point)
    (fun (a, b) -> Point.l1 a b >= Point.l2 a b -. 1e-9)

let prop_crossing_symmetric =
  QCheck.Test.make ~name:"proper crossing is symmetric" ~count:500
    QCheck.(quad arb_point arb_point arb_point arb_point)
    (fun (a, b, c, d) ->
      let s1 = seg a b and s2 = seg c d in
      Segment.crosses_properly s1 s2 = Segment.crosses_properly s2 s1)

let prop_proper_implies_intersects =
  QCheck.Test.make ~name:"proper crossing implies intersection" ~count:500
    QCheck.(quad arb_point arb_point arb_point arb_point)
    (fun (a, b, c, d) ->
      let s1 = seg a b and s2 = seg c d in
      (not (Segment.crosses_properly s1 s2)) || Segment.intersects s1 s2)

let prop_bbox_contains_endpoints =
  QCheck.Test.make ~name:"bbox contains its points" ~count:500
    QCheck.(array_of_size Gen.(int_range 1 20) arb_point)
    (fun pts ->
      let r = Rect.of_points pts in
      Array.for_all (Rect.contains r) pts)

let () =
  Alcotest.run "geom"
    [ ( "point",
        [ Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "ops" `Quick test_point_ops;
          Alcotest.test_case "centroid" `Quick test_centroid;
          Alcotest.test_case "compare" `Quick test_compare_order;
          QCheck_alcotest.to_alcotest prop_triangle_l1;
          QCheck_alcotest.to_alcotest prop_triangle_l2;
          QCheck_alcotest.to_alcotest prop_l1_ge_l2 ] );
      ( "rect",
        [ Alcotest.test_case "basic" `Quick test_rect_basic;
          Alcotest.test_case "invalid" `Quick test_rect_invalid;
          Alcotest.test_case "overlap" `Quick test_rect_overlap;
          Alcotest.test_case "intersection/union" `Quick test_rect_intersection_union;
          Alcotest.test_case "inflate" `Quick test_rect_inflate;
          Alcotest.test_case "of_points" `Quick test_rect_of_points;
          QCheck_alcotest.to_alcotest prop_bbox_contains_endpoints ] );
      ( "segment",
        [ Alcotest.test_case "lengths" `Quick test_segment_lengths;
          Alcotest.test_case "orientation" `Quick test_segment_orientation_classes;
          Alcotest.test_case "proper crossing" `Quick test_proper_crossing;
          Alcotest.test_case "endpoint touch" `Quick test_endpoint_touch_not_proper;
          Alcotest.test_case "T junction" `Quick test_t_junction_not_proper;
          Alcotest.test_case "collinear overlap" `Quick test_collinear_overlap_not_proper;
          Alcotest.test_case "disjoint" `Quick test_disjoint_segments;
          Alcotest.test_case "intersection point" `Quick test_intersection_point;
          Alcotest.test_case "count crossings" `Quick test_count_crossings;
          Alcotest.test_case "self crossings" `Quick test_self_crossings;
          Alcotest.test_case "distance to point" `Quick test_distance_point;
          QCheck_alcotest.to_alcotest prop_crossing_symmetric;
          QCheck_alcotest.to_alcotest prop_proper_implies_intersects ] );
      ( "gridmap",
        [ Alcotest.test_case "point deposit" `Quick test_grid_point_deposit;
          Alcotest.test_case "clamping" `Quick test_grid_clamping;
          Alcotest.test_case "segment mass" `Quick test_grid_segment_mass_conserved;
          Alcotest.test_case "normalized" `Quick test_grid_normalized;
          Alcotest.test_case "correlation" `Quick test_grid_correlation;
          Alcotest.test_case "render" `Quick test_grid_render ] ) ]
