(* Tests for the synthetic benchmark generator and the I1-I5 case
   definitions, including the Table 1 statistics targets. *)

open Operon_util
open Operon_optical
open Operon
open Operon_benchgen

let params = Params.default

let test_generate_deterministic () =
  let d1 = Gen.generate Cases.i1 in
  let d2 = Gen.generate Cases.i1 in
  Alcotest.(check int) "same net count" (Signal.net_count d1) (Signal.net_count d2);
  Alcotest.(check int) "same pin count" (Signal.pin_count d1) (Signal.pin_count d2)

let test_generate_seed_changes_design () =
  let d1 = Gen.generate Cases.i1 in
  let d2 = Gen.generate { Cases.i1 with Gen.seed = 999 } in
  (* group count fixed, but pin geometry differs *)
  let pin d = (Array.get (Array.get d.Signal.groups 0).Signal.bits 0).Signal.source in
  Alcotest.(check bool) "different geometry" false
    (Operon_geom.Point.equal (pin d1) (pin d2))

let test_pins_inside_die () =
  List.iter
    (fun spec ->
      let d = Gen.generate spec in
      Array.iter
        (fun (g : Signal.group) ->
          Array.iter
            (fun b ->
              Array.iter
                (fun pin ->
                  Alcotest.(check bool) "inside die" true
                    (Operon_geom.Rect.contains d.Signal.die pin))
                (Signal.bit_pins b))
            g.Signal.bits)
        d.Signal.groups)
    Cases.all

let test_group_counts () =
  List.iter
    (fun spec ->
      let d = Gen.generate spec in
      Alcotest.(check int)
        (spec.Gen.name ^ " group count")
        spec.Gen.n_groups
        (Array.length d.Signal.groups))
    Cases.all

let test_bits_within_spec () =
  let d = Gen.generate Cases.i3 in
  Array.iter
    (fun (g : Signal.group) ->
      let n = Array.length g.Signal.bits in
      Alcotest.(check bool) "bits in range" true
        (n >= Cases.i3.Gen.bits_min && n <= Cases.i3.Gen.bits_max))
    d.Signal.groups

(* Table 1 statistics: our synthetic cases must land near the published
   #Net / #HNet / #HPin (within 15%). *)
let paper_stats =
  [ ("I1", 2660, 356, 1306); ("I2", 1782, 837, 1701); ("I3", 5072, 168, 336);
    ("I4", 3224, 403, 1474); ("I5", 1994, 933, 1897) ]

let within_pct pct target got =
  Float.abs (float_of_int (got - target)) <= pct /. 100.0 *. float_of_int target

let test_table1_statistics () =
  List.iter
    (fun (name, nets_t, hnets_t, hpins_t) ->
      match Cases.by_name name with
      | None -> Alcotest.fail ("missing case " ^ name)
      | Some spec ->
          let d = Gen.generate spec in
          let hnets = Processing.run (Prng.create 42) params d in
          let nets, hn, hp = Processing.stats hnets in
          Alcotest.(check bool)
            (Printf.sprintf "%s #Net %d ~ %d" name nets nets_t)
            true (within_pct 15.0 nets_t nets);
          Alcotest.(check bool)
            (Printf.sprintf "%s #HNet %d ~ %d" name hn hnets_t)
            true (within_pct 15.0 hnets_t hn);
          Alcotest.(check bool)
            (Printf.sprintf "%s #HPin %d ~ %d" name hp hpins_t)
            true (within_pct 15.0 hpins_t hp))
    paper_stats

let test_by_name () =
  Alcotest.(check bool) "finds i3" true (Cases.by_name "i3" <> None);
  Alcotest.(check bool) "finds I3" true (Cases.by_name "I3" <> None);
  Alcotest.(check bool) "unknown" true (Cases.by_name "I9" = None)

let test_small_and_tiny () =
  let s = Cases.small () in
  let t = Cases.tiny () in
  Alcotest.(check bool) "small bigger than tiny" true
    (Signal.net_count s > Signal.net_count t);
  Alcotest.(check bool) "tiny non-empty" true (Signal.net_count t > 0)

let test_invalid_spec () =
  Alcotest.check_raises "zero groups"
    (Invalid_argument "Gen.generate: need at least one group") (fun () ->
      ignore (Gen.generate { Cases.i1 with Gen.n_groups = 0 }));
  Alcotest.check_raises "bad bits"
    (Invalid_argument "Gen.generate: bad bits range") (fun () ->
      ignore (Gen.generate { Cases.i1 with Gen.bits_min = 5; bits_max = 2 }))

let test_describe () =
  let s = Gen.describe Cases.i1 in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 2 && String.sub s 0 2 = "I1")

let prop_any_seed_valid_design =
  QCheck.Test.make ~name:"any seed yields a valid design" ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let d = Gen.generate { Cases.i3 with Gen.seed = seed; n_groups = 10 } in
      Signal.net_count d > 0
      && Array.for_all
           (fun (g : Signal.group) -> Array.length g.Signal.bits > 0)
           d.Signal.groups)

let () =
  Alcotest.run "benchgen"
    [ ( "gen",
        [ Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "seed changes design" `Quick test_generate_seed_changes_design;
          Alcotest.test_case "pins inside die" `Quick test_pins_inside_die;
          Alcotest.test_case "group counts" `Quick test_group_counts;
          Alcotest.test_case "bits within spec" `Quick test_bits_within_spec;
          Alcotest.test_case "invalid spec" `Quick test_invalid_spec;
          Alcotest.test_case "describe" `Quick test_describe;
          QCheck_alcotest.to_alcotest prop_any_seed_valid_design ] );
      ( "cases",
        [ Alcotest.test_case "table1 statistics" `Slow test_table1_statistics;
          Alcotest.test_case "by name" `Quick test_by_name;
          Alcotest.test_case "small/tiny" `Quick test_small_and_tiny ] ) ]
