(* Tests for the graph substrate: union-find, heap ordering, MST
   algorithms agreeing with each other, and shortest paths. *)

open Operon_graph

let check_float = Alcotest.(check (float 1e-9))

(* --- dsu --- *)

let test_dsu_basic () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "initial sets" 5 (Dsu.count d);
  Alcotest.(check bool) "union" true (Dsu.union d 0 1);
  Alcotest.(check bool) "redundant union" false (Dsu.union d 0 1);
  Alcotest.(check bool) "same" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 2);
  Alcotest.(check int) "sets after" 4 (Dsu.count d);
  Alcotest.(check int) "size" 2 (Dsu.size d 1)

let test_dsu_transitive () =
  let d = Dsu.create 6 in
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 1 2);
  Alcotest.(check bool) "transitive" true (Dsu.same d 0 3);
  Alcotest.(check int) "size 4" 4 (Dsu.size d 0)

(* --- heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  let order = List.init 5 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_peek_and_clear () =
  let h = Heap.create () in
  Heap.push h 2.0 "b";
  Heap.push h 1.0 "a";
  (match Heap.peek h with
   | Some (k, v) ->
       check_float "peek key" 1.0 k;
       Alcotest.(check string) "peek value" "a" v
   | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not pop" 2 (Heap.length h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_heap_grows () =
  let h = Heap.create () in
  for i = 100 downto 1 do
    Heap.push h (float_of_int i) i
  done;
  (match Heap.pop h with
   | Some (_, v) -> Alcotest.(check int) "min of 100" 1 v
   | None -> Alcotest.fail "expected pop")

(* --- mst --- *)

let square_graph () =
  let g = Wgraph.create 4 in
  Wgraph.add_edge g 0 1 1.0;
  Wgraph.add_edge g 1 2 2.0;
  Wgraph.add_edge g 2 3 1.0;
  Wgraph.add_edge g 3 0 2.5;
  Wgraph.add_edge g 0 2 4.0;
  g

let test_mst_kruskal () =
  let mst = Mst.kruskal (square_graph ()) in
  check_float "weight" 4.0 (Mst.weight mst);
  Alcotest.(check int) "edges" 3 (List.length mst)

let test_mst_prim () =
  let mst = Mst.prim (square_graph ()) in
  check_float "weight" 4.0 (Mst.weight mst);
  Alcotest.(check int) "edges" 3 (List.length mst)

let test_mst_disconnected () =
  let g = Wgraph.create 4 in
  Wgraph.add_edge g 0 1 1.0;
  Wgraph.add_edge g 2 3 2.0;
  Alcotest.(check int) "forest kruskal" 2 (List.length (Mst.kruskal g));
  Alcotest.(check int) "forest prim" 2 (List.length (Mst.prim g))

let test_prim_dense_matches () =
  (* Euclidean points: dense Prim must agree with Kruskal on the complete
     graph. *)
  let pts = [| (0.0, 0.0); (1.0, 0.2); (2.0, 1.0); (0.5, 2.0); (3.0, 0.0) |] in
  let d i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))
  in
  let dense = Mst.prim_dense (Array.length pts) d in
  let dense_weight = List.fold_left (fun acc (u, v) -> acc +. d u v) 0.0 dense in
  let g = Wgraph.complete_of_weights (Array.length pts) d in
  let kruskal_weight = Mst.weight (Mst.kruskal g) in
  check_float "same MST weight" kruskal_weight dense_weight

let test_prim_dense_trivial () =
  Alcotest.(check (list (pair int int))) "n=0" [] (Mst.prim_dense 0 (fun _ _ -> 0.0));
  Alcotest.(check (list (pair int int))) "n=1" [] (Mst.prim_dense 1 (fun _ _ -> 0.0))

(* --- shortest paths --- *)

let line_graph () =
  let g = Wgraph.create 4 in
  Wgraph.add_edge g 0 1 1.0;
  Wgraph.add_edge g 1 2 2.0;
  Wgraph.add_edge g 2 3 3.0;
  Wgraph.add_edge g 0 3 10.0;
  g

let test_dijkstra () =
  let r = Spath.dijkstra (line_graph ()) 0 in
  check_float "dist 3" 6.0 r.Spath.dist.(3);
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Spath.path_to r 3)

let test_dijkstra_unreachable () =
  let g = Wgraph.create 3 in
  Wgraph.add_edge g 0 1 1.0;
  let r = Spath.dijkstra g 0 in
  check_float "unreachable" infinity r.Spath.dist.(2);
  Alcotest.(check (list int)) "empty path" [] (Spath.path_to r 2)

let test_dijkstra_negative_rejected () =
  let g = Wgraph.create 2 in
  Wgraph.add_edge g 0 1 (-1.0) ;
  Alcotest.check_raises "negative" (Invalid_argument "Spath.dijkstra: negative weight")
    (fun () -> ignore (Spath.dijkstra g 0))

let test_bellman_ford_agrees () =
  let g = line_graph () in
  let d = Spath.dijkstra g 0 in
  match Spath.bellman_ford g 0 with
  | Some b ->
      Array.iteri (fun i dv -> check_float (Printf.sprintf "dist %d" i) dv b.Spath.dist.(i)) d.Spath.dist
  | None -> Alcotest.fail "no negative cycle expected"

let test_bellman_ford_negative_cycle () =
  (* An undirected negative edge is a negative cycle. *)
  let g = Wgraph.create 2 in
  Wgraph.add_edge g 0 1 (-1.0);
  Alcotest.(check bool) "detected" true (Spath.bellman_ford g 0 = None)

(* --- properties --- *)

let random_graph_gen =
  QCheck.Gen.(
    int_range 2 12 >>= fun n ->
    list_size (int_range 1 30)
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_bound_exclusive 10.0))
    >|= fun edges -> (n, edges))

let arb_graph =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (u, v, w) -> Printf.sprintf "(%d,%d,%.2f)" u v w) edges)))
    random_graph_gen

let build (n, edges) =
  let g = Wgraph.create n in
  List.iter (fun (u, v, w) -> if u <> v then Wgraph.add_edge g u v w) edges;
  g

let prop_mst_algorithms_agree =
  QCheck.Test.make ~name:"kruskal and prim agree on weight" ~count:300 arb_graph
    (fun spec ->
      let g = build spec in
      Float.abs (Mst.weight (Mst.kruskal g) -. Mst.weight (Mst.prim g)) < 1e-6)

let prop_mst_spanning =
  QCheck.Test.make ~name:"mst spans each component" ~count:300 arb_graph
    (fun spec ->
      let g = build spec in
      let n = Wgraph.vertex_count g in
      let dsu_all = Dsu.create n in
      List.iter (fun { Wgraph.u; v; _ } -> ignore (Dsu.union dsu_all u v)) (Wgraph.edges g);
      let dsu_mst = Dsu.create n in
      List.iter (fun { Wgraph.u; v; _ } -> ignore (Dsu.union dsu_mst u v)) (Mst.kruskal g);
      Dsu.count dsu_all = Dsu.count dsu_mst)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra satisfies edge relaxation" ~count:300 arb_graph
    (fun spec ->
      let g = build spec in
      let r = Spath.dijkstra g 0 in
      List.for_all
        (fun { Wgraph.u; v; w } ->
          r.Spath.dist.(v) <= r.Spath.dist.(u) +. w +. 1e-9
          && r.Spath.dist.(u) <= r.Spath.dist.(v) +. w +. 1e-9)
        (Wgraph.edges g))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in order" ~count:300
    QCheck.(list (float_bound_exclusive 100.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) keys;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (k, _) -> k >= prev && drain k
      in
      drain neg_infinity)

let () =
  Alcotest.run "graph"
    [ ( "dsu",
        [ Alcotest.test_case "basic" `Quick test_dsu_basic;
          Alcotest.test_case "transitive" `Quick test_dsu_transitive ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/clear" `Quick test_heap_peek_and_clear;
          Alcotest.test_case "grows" `Quick test_heap_grows;
          QCheck_alcotest.to_alcotest prop_heap_sorts ] );
      ( "mst",
        [ Alcotest.test_case "kruskal" `Quick test_mst_kruskal;
          Alcotest.test_case "prim" `Quick test_mst_prim;
          Alcotest.test_case "disconnected" `Quick test_mst_disconnected;
          Alcotest.test_case "dense matches" `Quick test_prim_dense_matches;
          Alcotest.test_case "dense trivial" `Quick test_prim_dense_trivial;
          QCheck_alcotest.to_alcotest prop_mst_algorithms_agree;
          QCheck_alcotest.to_alcotest prop_mst_spanning ] );
      ( "spath",
        [ Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "negative rejected" `Quick test_dijkstra_negative_rejected;
          Alcotest.test_case "bellman-ford agrees" `Quick test_bellman_ford_agrees;
          Alcotest.test_case "negative cycle" `Quick test_bellman_ford_negative_cycle;
          QCheck_alcotest.to_alcotest prop_dijkstra_triangle ] ) ]
