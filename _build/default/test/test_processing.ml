(* Tests for signal processing: hyper nets respect the WDM capacity, the
   stats accounting, hyper-pin structure, and determinism. *)

open Operon_util
open Operon_geom
open Operon_optical
open Operon

let p = Point.make

let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:10.0 ~ymax:10.0

let params = Params.default

(* A bus of [n] bits from (x0, 0) to (x0, 5): sources in a pitch row,
   sinks likewise. *)
let bus ?(name = "bus") ?(x0 = 1.0) n =
  let bits =
    Array.init n (fun i ->
        let off = 0.002 *. float_of_int i in
        Signal.bit
          ~source:(p (x0 +. off) 0.5)
          ~sinks:[| p (x0 +. off) 5.0 |])
  in
  Signal.group ~name ~bits

let test_capacity_respected () =
  let d = Signal.design ~die ~groups:[| bus 100 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  Array.iter
    (fun h ->
      Alcotest.(check bool) "bits within capacity" true
        (h.Hypernet.bits <= params.Params.wdm_capacity))
    hnets;
  (* ceil(100/32) = 4 clusters *)
  Alcotest.(check bool) "at least 4 hyper nets" true (Array.length hnets >= 4)

let test_small_group_single_hnet () =
  let d = Signal.design ~die ~groups:[| bus 8 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  Alcotest.(check int) "one hyper net" 1 (Array.length hnets);
  Alcotest.(check int) "all bits" 8 hnets.(0).Hypernet.bits

let test_stats () =
  let d = Signal.design ~die ~groups:[| bus 8; bus ~name:"b2" ~x0:6.0 5 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  let nets, hn, hp = Processing.stats hnets in
  Alcotest.(check int) "nets" 13 nets;
  Alcotest.(check int) "hnets" 2 hn;
  Alcotest.(check bool) "hpins at least 2 per hnet" true (hp >= 2 * hn)

let test_hyper_pins_merge_bus () =
  (* All 8 source pins sit within the merge threshold: they must fuse
     into one driving hyper pin; same for sinks. *)
  let d = Signal.design ~die ~groups:[| bus 8 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  let h = hnets.(0) in
  Alcotest.(check int) "two hyper pins" 2 (Hypernet.pin_count h);
  let root_pin = h.Hypernet.pins.(h.Hypernet.root) in
  Alcotest.(check int) "root holds all 8 drivers" 8 root_pin.Hypernet.source_count

let test_threshold_zero_no_merging () =
  let config = { Processing.default_config with Processing.merge_threshold = 0.0 } in
  let d = Signal.design ~die ~groups:[| bus 4 |] in
  let hnets = Processing.run ~config (Prng.create 1) params d in
  (* 4 bits x 2 pins, no merging: 8 hyper pins *)
  Alcotest.(check int) "all pins separate" 8 (Hypernet.pin_count hnets.(0))

let test_ids_dense () =
  let d = Signal.design ~die ~groups:[| bus 100; bus ~name:"b2" ~x0:6.0 40 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  Array.iteri
    (fun i h -> Alcotest.(check int) "dense id" i h.Hypernet.id)
    hnets

let test_group_attribution () =
  let d = Signal.design ~die ~groups:[| bus 8; bus ~name:"b2" ~x0:6.0 8 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  Alcotest.(check int) "first group" 0 hnets.(0).Hypernet.group;
  Alcotest.(check int) "second group" 1 hnets.(1).Hypernet.group

let test_deterministic () =
  let d = Signal.design ~die ~groups:[| bus 100 |] in
  let a = Processing.run (Prng.create 5) params d in
  let b = Processing.run (Prng.create 5) params d in
  Alcotest.(check int) "same count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i h -> Alcotest.(check int) "same bits" h.Hypernet.bits b.(i).Hypernet.bits)
    a

let test_bits_conserved () =
  let d = Signal.design ~die ~groups:[| bus 100; bus ~name:"b2" ~x0:6.0 37 |] in
  let hnets = Processing.run (Prng.create 1) params d in
  let nets, _, _ = Processing.stats hnets in
  Alcotest.(check int) "no bit lost" 137 nets

(* Property: processing any generated design conserves bits and respects
   capacity. *)
let prop_processing_invariants =
  QCheck.Test.make ~name:"processing invariants on random designs" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let design = Operon_benchgen.Cases.small ~seed () in
      let hnets = Processing.run (Prng.create seed) params design in
      let nets, _, _ = Processing.stats hnets in
      nets = Signal.net_count design
      && Array.for_all (fun h -> h.Hypernet.bits <= params.Params.wdm_capacity) hnets
      && Array.for_all
           (fun h -> h.Hypernet.pins.(h.Hypernet.root).Hypernet.source_count > 0)
           hnets)

let () =
  Alcotest.run "processing"
    [ ( "processing",
        [ Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
          Alcotest.test_case "small group single hnet" `Quick test_small_group_single_hnet;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "bus pins merge" `Quick test_hyper_pins_merge_bus;
          Alcotest.test_case "threshold zero" `Quick test_threshold_zero_no_merging;
          Alcotest.test_case "dense ids" `Quick test_ids_dense;
          Alcotest.test_case "group attribution" `Quick test_group_attribution;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "bits conserved" `Quick test_bits_conserved;
          QCheck_alcotest.to_alcotest prop_processing_invariants ] ) ]
