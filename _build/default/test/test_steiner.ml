(* Tests for Steiner-tree construction: topology invariants, BI1S never
   losing to the plain MST, Hanan candidates, subdivision, and the RSMT
   bracketing HPWL <= RSMT <= RMST. *)

open Operon_geom
open Operon_steiner

let p = Point.make

let check_float = Alcotest.(check (float 1e-9))

(* --- topology --- *)

let three_pin () =
  (* root 0 at origin, terminals at (2,0) and (1,1), one Steiner node. *)
  Topology.make
    ~positions:[| p 0.0 0.0; p 2.0 0.0; p 1.0 1.0; p 1.0 0.0 |]
    ~nterminals:3
    ~edges:[ (0, 3); (3, 1); (3, 2) ]
    ~root:0

let test_topology_structure () =
  let t = three_pin () in
  Alcotest.(check int) "nodes" 4 (Topology.node_count t);
  Alcotest.(check int) "terminals" 3 (Topology.terminal_count t);
  Alcotest.(check int) "root" 0 (Topology.root t);
  Alcotest.(check bool) "terminal" true (Topology.is_terminal t 2);
  Alcotest.(check bool) "steiner" false (Topology.is_terminal t 3);
  Alcotest.(check int) "root parent" (-1) (Topology.parent t 0);
  Alcotest.(check int) "steiner parent" 0 (Topology.parent t 3);
  Alcotest.(check (list int)) "steiner children" [ 2; 1 ]
    (List.sort (fun a b -> compare b a) (Topology.children t 3))

let test_topology_postorder () =
  let t = three_pin () in
  let order = Topology.postorder t in
  Alcotest.(check int) "all nodes" 4 (List.length order);
  (* every child must appear before its parent *)
  let position = Hashtbl.create 4 in
  List.iteri (fun i v -> Hashtbl.add position v i) order;
  List.iter
    (fun (parent, child) ->
      Alcotest.(check bool) "child before parent" true
        (Hashtbl.find position child < Hashtbl.find position parent))
    (Topology.edges t)

let test_topology_lengths () =
  let t = three_pin () in
  check_float "L1 length" 3.0 (Topology.length Topology.L1 t);
  check_float "L2 length" 3.0 (Topology.length Topology.L2 t);
  check_float "edge length" 1.0 (Topology.edge_length Topology.L1 t 3)

let test_topology_subtree_terminals () =
  let t = three_pin () in
  let counts = Topology.subtree_terminals t in
  Alcotest.(check int) "root sees all" 3 counts.(0);
  Alcotest.(check int) "steiner sees two" 2 counts.(3);
  Alcotest.(check int) "leaf sees itself" 1 counts.(1)

let test_topology_invalid () =
  Alcotest.check_raises "not spanning"
    (Invalid_argument "Topology.make: edge count must be n-1") (fun () ->
      ignore
        (Topology.make ~positions:[| p 0.0 0.0; p 1.0 0.0 |] ~nterminals:2 ~edges:[]
           ~root:0));
  Alcotest.check_raises "root not terminal"
    (Invalid_argument "Topology.make: root must be a terminal") (fun () ->
      ignore
        (Topology.make
           ~positions:[| p 0.0 0.0; p 1.0 0.0; p 2.0 0.0 |]
           ~nterminals:2
           ~edges:[ (0, 1); (1, 2) ]
           ~root:2))

let test_topology_segments () =
  let t = three_pin () in
  Alcotest.(check int) "one segment per edge" 3 (Array.length (Topology.segments t))

let test_topology_bends () =
  (* straight chain has no bends; an L has one *)
  let straight =
    Topology.make
      ~positions:[| p 0.0 0.0; p 2.0 0.0; p 1.0 0.0 |]
      ~nterminals:2 ~edges:[ (0, 2); (2, 1) ] ~root:0
  in
  Alcotest.(check int) "straight" 0 (Topology.bends straight);
  let bent =
    Topology.make
      ~positions:[| p 0.0 0.0; p 1.0 1.0; p 1.0 0.0 |]
      ~nterminals:2 ~edges:[ (0, 2); (2, 1) ] ~root:0
  in
  Alcotest.(check int) "L shape" 1 (Topology.bends bent)

(* --- hanan --- *)

let test_hanan_points () =
  let pts = [| p 0.0 0.0; p 1.0 1.0 |] in
  let hanan = Bi1s.hanan_points pts in
  Alcotest.(check int) "two off-diagonal" 2 (Array.length hanan);
  Array.iter
    (fun h ->
      Alcotest.(check bool) "is grid point" true
        (Point.equal h (p 0.0 1.0) || Point.equal h (p 1.0 0.0)))
    hanan

let test_hanan_excludes_inputs () =
  let pts = [| p 0.0 0.0; p 1.0 0.0; p 0.0 1.0 |] in
  let hanan = Bi1s.hanan_points pts in
  Array.iter
    (fun h ->
      Array.iter
        (fun q -> Alcotest.(check bool) "not an input" false (Point.equal h q))
        pts)
    hanan

(* --- BI1S --- *)

let test_bi1s_cross_instance () =
  (* Four corners of a unit square: the rectilinear Steiner tree saves
     length over the rectilinear MST (3.0 -> but with Hanan points the
     cross shape achieves 3.0 too; use the classic plus shape). *)
  let pts = [| p 0.0 1.0; p 2.0 1.0; p 1.0 0.0; p 1.0 2.0 |] in
  let tree = Bi1s.build Topology.L2 pts ~root:0 in
  let mst = Bi1s.mst_tree Topology.L2 pts ~root:0 in
  Alcotest.(check bool) "steiner no worse" true
    (Topology.length Topology.L2 tree <= Topology.length Topology.L2 mst +. 1e-9);
  (* optimal Euclidean length for the plus is 4; MST costs 3*sqrt2+... *)
  Alcotest.(check bool) "near optimal" true (Topology.length Topology.L2 tree <= 4.3)

let test_bi1s_two_pins () =
  let pts = [| p 0.0 0.0; p 3.0 4.0 |] in
  let t = Bi1s.build Topology.L2 pts ~root:0 in
  check_float "direct chord" 5.0 (Topology.length Topology.L2 t)

let test_bi1s_single_pin () =
  let t = Bi1s.build Topology.L2 [| p 1.0 1.0 |] ~root:0 in
  Alcotest.(check int) "one node" 1 (Topology.node_count t)

let test_bi1s_terminals_preserved () =
  let pts = [| p 0.0 0.0; p 2.0 0.0; p 0.0 2.0; p 2.0 2.0; p 1.0 3.0 |] in
  let t = Bi1s.build Topology.L1 pts ~root:0 in
  Alcotest.(check int) "terminal count" 5 (Topology.terminal_count t);
  for i = 0 to 4 do
    Alcotest.(check bool) (Printf.sprintf "terminal %d position" i) true
      (Point.equal (Topology.position t i) pts.(i))
  done

let test_bi1s_no_low_degree_steiner () =
  let pts = [| p 0.0 1.0; p 2.0 1.0; p 1.0 0.0; p 1.0 2.0; p 3.0 3.0 |] in
  let t = Bi1s.build Topology.L1 pts ~root:0 in
  for v = Topology.terminal_count t to Topology.node_count t - 1 do
    Alcotest.(check bool) "steiner degree >= 3" true (Topology.degree t v >= 3)
  done

(* --- subdivision --- *)

let test_subdivide () =
  let pts = [| p 0.0 0.0; p 4.0 0.0 |] in
  let t = Bi1s.build Topology.L2 pts ~root:0 in
  let s = Bi1s.subdivide t ~max_len:1.0 in
  Alcotest.(check int) "terminals kept" 2 (Topology.terminal_count s);
  Alcotest.(check int) "4 pieces -> 3 interior nodes" 5 (Topology.node_count s);
  check_float "length preserved" 4.0 (Topology.length Topology.L2 s);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "piece short enough" true
        (Topology.edge_length Topology.L2 s v <= 1.0 +. 1e-9))
    (Topology.edges s)

let test_subdivide_noop () =
  let pts = [| p 0.0 0.0; p 0.5 0.0 |] in
  let t = Bi1s.build Topology.L2 pts ~root:0 in
  let s = Bi1s.subdivide t ~max_len:1.0 in
  Alcotest.(check int) "unchanged" (Topology.node_count t) (Topology.node_count s)

(* --- baselines --- *)

let test_baselines_diverse () =
  let pts = [| p 0.0 0.0; p 2.0 0.0; p 0.0 2.0; p 2.0 2.0 |] in
  let bs = Bi1s.baselines pts ~root:0 in
  Alcotest.(check bool) "at least two shapes" true (List.length bs >= 2);
  List.iter
    (fun t ->
      Alcotest.(check int) "terminals" 4 (Topology.terminal_count t);
      Alcotest.(check int) "root" 0 (Topology.root t))
    bs

(* --- rsmt --- *)

let test_rsmt_bracketing () =
  let pts = [| p 0.0 0.0; p 3.0 1.0; p 1.0 4.0; p 4.0 4.0 |] in
  let hp = Rsmt.hpwl pts in
  let wl = Rsmt.wirelength pts in
  let rm = Rsmt.rmst_length pts in
  Alcotest.(check bool) "hpwl <= rsmt" true (hp <= wl +. 1e-9);
  Alcotest.(check bool) "rsmt <= rmst" true (wl <= rm +. 1e-9)

let test_rsmt_two_pin_exact () =
  let pts = [| p 0.0 0.0; p 2.0 3.0 |] in
  check_float "L1 distance" 5.0 (Rsmt.wirelength pts);
  check_float "hpwl equals" 5.0 (Rsmt.hpwl pts)

let test_rsmt_degenerate () =
  check_float "single pin" 0.0 (Rsmt.wirelength [| p 1.0 1.0 |])

(* --- properties --- *)

let arb_points =
  QCheck.make
    ~print:(fun pts ->
      String.concat ";" (Array.to_list (Array.map (Format.asprintf "%a" Point.pp) pts)))
    QCheck.Gen.(
      array_size (int_range 2 8)
        (map2 (fun x y -> p (Float.round (x *. 10.0) /. 10.0) (Float.round (y *. 10.0) /. 10.0))
           (float_bound_exclusive 5.0) (float_bound_exclusive 5.0)))

let prop_bi1s_beats_mst =
  QCheck.Test.make ~name:"bi1s never longer than MST" ~count:100 arb_points
    (fun pts ->
      let tree = Bi1s.build Topology.L2 pts ~root:0 in
      let mst = Bi1s.mst_tree Topology.L2 pts ~root:0 in
      Topology.length Topology.L2 tree <= Topology.length Topology.L2 mst +. 1e-6)

let prop_rsmt_bracketing =
  QCheck.Test.make ~name:"hpwl <= rsmt <= rmst" ~count:100 arb_points
    (fun pts ->
      let hp = Rsmt.hpwl pts in
      let wl = Rsmt.wirelength pts in
      let rm = Rsmt.rmst_length pts in
      hp <= wl +. 1e-6 && wl <= rm +. 1e-6)

let prop_subdivide_preserves_length =
  QCheck.Test.make ~name:"subdivision preserves length" ~count:100 arb_points
    (fun pts ->
      let t = Bi1s.build Topology.L2 pts ~root:0 in
      let s = Bi1s.subdivide t ~max_len:0.7 in
      Float.abs (Topology.length Topology.L2 t -. Topology.length Topology.L2 s) < 1e-6)

let prop_postorder_child_first =
  QCheck.Test.make ~name:"postorder is child-first" ~count:100 arb_points
    (fun pts ->
      let t = Bi1s.build Topology.L2 pts ~root:0 in
      let position = Hashtbl.create 8 in
      List.iteri (fun i v -> Hashtbl.add position v i) (Topology.postorder t);
      List.for_all
        (fun (parent, child) -> Hashtbl.find position child < Hashtbl.find position parent)
        (Topology.edges t))

let () =
  Alcotest.run "steiner"
    [ ( "topology",
        [ Alcotest.test_case "structure" `Quick test_topology_structure;
          Alcotest.test_case "postorder" `Quick test_topology_postorder;
          Alcotest.test_case "lengths" `Quick test_topology_lengths;
          Alcotest.test_case "subtree terminals" `Quick test_topology_subtree_terminals;
          Alcotest.test_case "invalid" `Quick test_topology_invalid;
          Alcotest.test_case "segments" `Quick test_topology_segments;
          Alcotest.test_case "bends" `Quick test_topology_bends;
          QCheck_alcotest.to_alcotest prop_postorder_child_first ] );
      ( "bi1s",
        [ Alcotest.test_case "hanan points" `Quick test_hanan_points;
          Alcotest.test_case "hanan excludes inputs" `Quick test_hanan_excludes_inputs;
          Alcotest.test_case "cross instance" `Quick test_bi1s_cross_instance;
          Alcotest.test_case "two pins" `Quick test_bi1s_two_pins;
          Alcotest.test_case "single pin" `Quick test_bi1s_single_pin;
          Alcotest.test_case "terminals preserved" `Quick test_bi1s_terminals_preserved;
          Alcotest.test_case "steiner degrees" `Quick test_bi1s_no_low_degree_steiner;
          Alcotest.test_case "subdivide" `Quick test_subdivide;
          Alcotest.test_case "subdivide noop" `Quick test_subdivide_noop;
          Alcotest.test_case "baselines diverse" `Quick test_baselines_diverse;
          QCheck_alcotest.to_alcotest prop_bi1s_beats_mst;
          QCheck_alcotest.to_alcotest prop_subdivide_preserves_length ] );
      ( "rsmt",
        [ Alcotest.test_case "bracketing" `Quick test_rsmt_bracketing;
          Alcotest.test_case "two pin exact" `Quick test_rsmt_two_pin_exact;
          Alcotest.test_case "degenerate" `Quick test_rsmt_degenerate;
          QCheck_alcotest.to_alcotest prop_rsmt_bracketing ] ) ]
