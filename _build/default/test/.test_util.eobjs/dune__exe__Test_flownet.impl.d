test/test_flownet.ml: Alcotest Array List Maxflow Mcmf Operon_flow Printf QCheck QCheck_alcotest
