test/test_signal.ml: Alcotest Array Hypernet Operon Operon_geom Point Rect Signal
