test/test_cluster.ml: Agglom Alcotest Array Fun Kmeans Operon_cluster Operon_geom Operon_util Point Prng QCheck QCheck_alcotest
