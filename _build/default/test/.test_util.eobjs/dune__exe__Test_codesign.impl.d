test/test_codesign.ml: Alcotest Array Bi1s Candidate Codesign Float Fun Hypernet List Operon Operon_geom Operon_optical Operon_steiner Operon_util Params Point Printf QCheck QCheck_alcotest Topology
