test/test_processing.mli:
