test/test_candidate.ml: Alcotest Array Candidate Float Hypernet Loss Operon Operon_geom Operon_optical Operon_steiner Operon_util Params Point Power Printf QCheck QCheck_alcotest String Topology
