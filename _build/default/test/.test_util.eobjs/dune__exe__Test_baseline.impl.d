test/test_baseline.ml: Alcotest Array Baseline Candidate Float Loss Operon Operon_geom Operon_optical Operon_util Params Point Prng Processing Rect Segment Selection Signal
