test/test_benchgen.ml: Alcotest Array Cases Float Gen List Operon Operon_benchgen Operon_geom Operon_optical Operon_util Params Printf Prng Processing QCheck QCheck_alcotest Signal String
