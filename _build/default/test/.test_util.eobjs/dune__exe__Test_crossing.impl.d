test/test_crossing.ml: Alcotest Array Crossing Gen List Operon Operon_geom Operon_util Point QCheck QCheck_alcotest Rect Segment
