test/test_optical.mli:
