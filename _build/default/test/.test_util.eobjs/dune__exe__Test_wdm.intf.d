test/test_wdm.mli:
