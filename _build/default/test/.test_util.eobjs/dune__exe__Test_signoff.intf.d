test/test_signoff.mli:
