test/test_signoff.ml: Alcotest Cases Flow Gen Operon Operon_benchgen Operon_optical Operon_util Params Prng QCheck QCheck_alcotest Selection Signoff
