test/test_candidate.mli:
