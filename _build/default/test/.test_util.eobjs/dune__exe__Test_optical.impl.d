test/test_optical.ml: Alcotest Float List Loss Operon_geom Operon_optical Params Point Power Printf QCheck QCheck_alcotest Segment Splitter Wdm
