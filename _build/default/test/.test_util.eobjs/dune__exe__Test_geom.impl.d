test/test_geom.ml: Alcotest Array Float Format Gen Gridmap Operon_geom Point QCheck QCheck_alcotest Rect Segment String
