test/test_graph.ml: Alcotest Array Dsu Float Heap List Mst Operon_graph Printf QCheck QCheck_alcotest Spath String Wgraph
