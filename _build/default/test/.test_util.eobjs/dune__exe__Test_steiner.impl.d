test/test_steiner.ml: Alcotest Array Bi1s Float Format Hashtbl List Operon_geom Operon_steiner Point Printf QCheck QCheck_alcotest Rsmt String Topology
