test/test_codesign.mli:
