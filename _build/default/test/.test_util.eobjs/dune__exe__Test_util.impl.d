test/test_util.ml: Alcotest Array Float Fun Gen Operon_util Prng QCheck QCheck_alcotest Stats Timer
