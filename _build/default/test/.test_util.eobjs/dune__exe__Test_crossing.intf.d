test/test_crossing.mli:
