test/test_wdm.ml: Alcotest Array Assign List Operon Operon_geom Operon_optical Operon_util Params Point QCheck QCheck_alcotest Segment Wdm Wdm_place
