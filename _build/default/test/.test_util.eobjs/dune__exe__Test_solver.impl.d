test/test_solver.ml: Alcotest Array Float Fun Ilp List Lp Operon_solver Operon_util Printf QCheck QCheck_alcotest Simplex Unix
