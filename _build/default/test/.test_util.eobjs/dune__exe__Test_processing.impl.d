test/test_processing.ml: Alcotest Array Hypernet Operon Operon_benchgen Operon_geom Operon_optical Operon_util Params Point Prng Processing QCheck QCheck_alcotest Rect Signal
