test/test_selection.ml: Alcotest Array Candidate Float Hypernet Ilp_select Loss Lr_select Operon Operon_geom Operon_optical Operon_steiner Operon_util Params Point QCheck QCheck_alcotest Selection
