test/test_selection.mli:
