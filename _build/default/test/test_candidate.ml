(* Tests for candidate materialization: conversion placement, Eq. (1)/(6)
   power bookkeeping, optical path extraction with splitting loss, and the
   Fig. 5 example structure. *)

open Operon_geom
open Operon_optical
open Operon_steiner
open Operon

let p = Point.make

let params = Params.default

let close name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (want %.6f got %.6f)" name expected got)
    true
    (Float.abs (expected -. got) < 1e-6)

let hnet_of_centers ?(bits = 4) centers =
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 1; source_count = (if i = 0 then 1 else 0) })
      centers
  in
  Hypernet.make ~id:0 ~group:0 ~bits ~pins

(* Two-pin net: root (0,0) -> sink (2,0). *)
let two_pin () =
  let centers = [| p 0.0 0.0; p 2.0 0.0 |] in
  let hnet = hnet_of_centers centers in
  let topo =
    Topology.make ~positions:centers ~nterminals:2 ~edges:[ (0, 1) ] ~root:0
  in
  (hnet, topo)

(* Fig. 5-like net: root 1 at (0,2); steiner node at (1,1); terminals
   3 (0,0) and 4 (2,0). Node ids: terminals 0..2 then steiner 3.
   Terminal 0 = hyper pin 1 (root), 1 = node3, 2 = node4. *)
let fig5 () =
  let centers = [| p 0.0 2.0; p 0.0 0.0; p 2.0 0.0 |] in
  let hnet = hnet_of_centers centers in
  let positions = Array.append centers [| p 1.0 1.0 |] in
  let topo =
    Topology.make ~positions ~nterminals:3 ~edges:[ (0, 3); (3, 1); (3, 2) ] ~root:0
  in
  (hnet, topo)

let test_all_electrical () =
  let hnet, topo = two_pin () in
  let c = Candidate.electrical params hnet topo in
  Alcotest.(check bool) "pure electrical" true c.Candidate.pure_electrical;
  Alcotest.(check int) "no modulators" 0 c.Candidate.n_mod;
  Alcotest.(check int) "no detectors" 0 c.Candidate.n_det;
  Alcotest.(check int) "no paths" 0 (Array.length c.Candidate.paths);
  close "wirelength" 2.0 c.Candidate.elec_wirelength;
  close "power = bits * unit * wl"
    (4.0 *. Params.electrical_unit_energy params *. 2.0)
    c.Candidate.power;
  close "conversion zero" 0.0 c.Candidate.conversion_power

let test_all_optical_two_pin () =
  let hnet, topo = two_pin () in
  let labels = [| Candidate.Electrical; Candidate.Optical |] in
  let c = Candidate.of_labels params hnet topo labels in
  Alcotest.(check int) "one modulator at root" 1 c.Candidate.n_mod;
  Alcotest.(check int) "one detector at sink" 1 c.Candidate.n_det;
  Alcotest.(check (array int)) "mod at root" [| 0 |] c.Candidate.mod_nodes;
  Alcotest.(check (array int)) "det at sink" [| 1 |] c.Candidate.det_nodes;
  close "conversion power" (params.Params.p_mod +. params.Params.p_det)
    c.Candidate.conversion_power;
  close "no wiring" 0.0 c.Candidate.wiring_power;
  Alcotest.(check int) "one path" 1 (Array.length c.Candidate.paths);
  let path = c.Candidate.paths.(0) in
  Alcotest.(check int) "path start" 0 path.Candidate.start_node;
  Alcotest.(check int) "path sink" 1 path.Candidate.sink_node;
  (* single sink: no splitting, only propagation over 2 cm *)
  close "path loss" (Loss.propagation params 2.0) path.Candidate.intrinsic_loss;
  Alcotest.(check int) "one segment" 1 (Array.length path.Candidate.segments)

let test_fig5_all_optical () =
  let hnet, topo = fig5 () in
  let labels = Array.make 4 Candidate.Optical in
  let c = Candidate.of_labels params hnet topo labels in
  Alcotest.(check int) "one modulator" 1 c.Candidate.n_mod;
  Alcotest.(check int) "two detectors" 2 c.Candidate.n_det;
  Alcotest.(check int) "two paths" 2 (Array.length c.Candidate.paths);
  (* the steiner node splits into 2 arms: both paths carry split loss *)
  let expected_split = Loss.splitting_arm params 2 in
  Array.iter
    (fun (path : Candidate.path) ->
      let hop1 = Loss.propagation params (sqrt 2.0) in
      close "path = 2 hops + split" (hop1 +. hop1 +. expected_split)
        path.Candidate.intrinsic_loss)
    c.Candidate.paths

let test_fig5_hybrid_oeo () =
  (* Paper Fig. 5(c) third candidate: trunk optical, bottom branches
     electrical — (2-3)(2-4)(1-2) = EEO. Edge (root->steiner) optical,
     steiner->terminals electrical. *)
  let hnet, topo = fig5 () in
  let labels =
    [| Candidate.Electrical (* root, ignored *); Candidate.Electrical;
       Candidate.Electrical; Candidate.Optical (* steiner's parent edge *) |]
  in
  let c = Candidate.of_labels params hnet topo labels in
  Alcotest.(check int) "modulator at root" 1 c.Candidate.n_mod;
  Alcotest.(check int) "detector at steiner (O->E handover)" 1 c.Candidate.n_det;
  Alcotest.(check (array int)) "det at steiner" [| 3 |] c.Candidate.det_nodes;
  Alcotest.(check int) "single path to the handover" 1 (Array.length c.Candidate.paths);
  close "no split on a single tap" (Loss.propagation params (sqrt 2.0))
    c.Candidate.paths.(0).Candidate.intrinsic_loss;
  close "wiring covers both branches"
    (float_of_int hnet.Hypernet.bits
     *. Params.electrical_unit_energy params *. (2.0 +. 2.0))
    c.Candidate.wiring_power

let test_fig5_one_optical_branch () =
  (* Steiner edge electrical, one leaf optical: modulator sits at the
     steiner node. *)
  let hnet, topo = fig5 () in
  let labels =
    [| Candidate.Electrical; Candidate.Optical; Candidate.Electrical;
       Candidate.Electrical |]
  in
  let c = Candidate.of_labels params hnet topo labels in
  Alcotest.(check (array int)) "mod at steiner" [| 3 |] c.Candidate.mod_nodes;
  Alcotest.(check (array int)) "det at leaf" [| 1 |] c.Candidate.det_nodes;
  Alcotest.(check int) "one path" 1 (Array.length c.Candidate.paths);
  Alcotest.(check int) "path starts at steiner" 3 c.Candidate.paths.(0).Candidate.start_node

let test_power_totals () =
  let hnet, topo = fig5 () in
  let labels = Array.make 4 Candidate.Optical in
  let c = Candidate.of_labels params hnet topo labels in
  close "power = conversion + wiring" (c.Candidate.conversion_power +. c.Candidate.wiring_power)
    c.Candidate.power;
  close "conversion = eq1"
    (Power.optical params ~n_mod:c.Candidate.n_mod ~n_det:c.Candidate.n_det)
    c.Candidate.conversion_power

let test_label_count_checked () =
  let hnet, topo = two_pin () in
  Alcotest.check_raises "wrong label count"
    (Invalid_argument "Candidate.of_labels: label count") (fun () ->
      ignore (Candidate.of_labels params hnet topo [| Candidate.Optical |]))

let test_crossing_between_candidates () =
  let h1, t1 = two_pin () in
  let c1 =
    Candidate.of_labels params h1 t1 [| Candidate.Electrical; Candidate.Optical |]
  in
  (* perpendicular crossing net *)
  let centers = [| p 1.0 (-1.0); p 1.0 1.0 |] in
  let h2 = hnet_of_centers centers in
  let t2 = Topology.make ~positions:centers ~nterminals:2 ~edges:[ (0, 1) ] ~root:0 in
  let c2 = Candidate.of_labels params h2 t2 [| Candidate.Electrical; Candidate.Optical |] in
  Alcotest.(check int) "one crossing" 1 (Candidate.crossings_between c1 c2);
  close "crossing loss on path" (Loss.crossing_bundled params 1)
    (Candidate.crossing_loss_on_path params c1 0 c2);
  (* electrical candidate has no optical geometry: no crossings *)
  let e2 = Candidate.electrical params h2 t2 in
  Alcotest.(check int) "no optical no crossing" 0 (Candidate.crossings_between c1 e2)

let test_loss_feasible () =
  let hnet, topo = two_pin () in
  let c = Candidate.of_labels params hnet topo [| Candidate.Electrical; Candidate.Optical |] in
  Alcotest.(check bool) "short link feasible" true (Candidate.loss_feasible params c);
  let tight = { params with Params.l_max = 0.1 } in
  Alcotest.(check bool) "tight budget infeasible" false (Candidate.loss_feasible tight c)

let test_describe () =
  let hnet, topo = two_pin () in
  let c = Candidate.electrical params hnet topo in
  let s = Candidate.describe c in
  Alcotest.(check bool) "mentions pureE" true
    (String.length s > 0
     &&
     match String.index_opt s 'p' with
     | Some _ -> true
     | None -> false)

(* Property: for random labelings of a random net, power decomposes and
   paths stay within the topology. *)
let prop_candidate_consistency =
  QCheck.Test.make ~name:"random labelings are consistent" ~count:200
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Operon_util.Prng.create seed in
      let n_extra = 1 + Operon_util.Prng.int rng 4 in
      let centers =
        Array.init (1 + n_extra) (fun i ->
            if i = 0 then p 0.0 0.0
            else
              p (Operon_util.Prng.float rng 3.0) (Operon_util.Prng.float rng 3.0))
      in
      let hnet = hnet_of_centers ~bits:(1 + Operon_util.Prng.int rng 31) centers in
      let topo = Operon_steiner.Bi1s.build Topology.L2 centers ~root:0 in
      let labels =
        Array.init (Topology.node_count topo) (fun _ ->
            if Operon_util.Prng.bool rng then Candidate.Optical else Candidate.Electrical)
      in
      match Candidate.of_labels params hnet topo labels with
      | exception Invalid_argument _ -> true (* inconsistent labeling rejected *)
      | c ->
          Float.abs (c.Candidate.power -. (c.Candidate.conversion_power +. c.Candidate.wiring_power))
          < 1e-9
          && Array.length c.Candidate.mod_nodes = c.Candidate.n_mod
          && Array.length c.Candidate.det_nodes = c.Candidate.n_det
          && Array.for_all
               (fun (path : Candidate.path) ->
                 path.Candidate.intrinsic_loss >= 0.0
                 && Array.length path.Candidate.segments > 0)
               c.Candidate.paths
          && (c.Candidate.n_mod = 0) = c.Candidate.pure_electrical)

let () =
  Alcotest.run "candidate"
    [ ( "candidate",
        [ Alcotest.test_case "all electrical" `Quick test_all_electrical;
          Alcotest.test_case "all optical 2-pin" `Quick test_all_optical_two_pin;
          Alcotest.test_case "fig5 all optical" `Quick test_fig5_all_optical;
          Alcotest.test_case "fig5 hybrid O->E" `Quick test_fig5_hybrid_oeo;
          Alcotest.test_case "fig5 branch modulator" `Quick test_fig5_one_optical_branch;
          Alcotest.test_case "power totals" `Quick test_power_totals;
          Alcotest.test_case "label count" `Quick test_label_count_checked;
          Alcotest.test_case "crossings between" `Quick test_crossing_between_candidates;
          Alcotest.test_case "loss feasible" `Quick test_loss_feasible;
          Alcotest.test_case "describe" `Quick test_describe;
          QCheck_alcotest.to_alcotest prop_candidate_consistency ] ) ]
