(* Tests for the signal model and hyper net structure. *)

open Operon_geom
open Operon

let p = Point.make

let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:10.0 ~ymax:10.0

let bit x = Signal.bit ~source:(p x 0.0) ~sinks:[| p x 1.0; p x 2.0 |]

let test_bit_requires_sink () =
  Alcotest.check_raises "no sinks"
    (Invalid_argument "Signal.bit: a bit needs at least one sink") (fun () ->
      ignore (Signal.bit ~source:(p 0.0 0.0) ~sinks:[||]))

let test_bit_pins () =
  let b = bit 1.0 in
  let pins = Signal.bit_pins b in
  Alcotest.(check int) "source + sinks" 3 (Array.length pins);
  Alcotest.(check bool) "source first" true (Point.equal pins.(0) (p 1.0 0.0))

let test_group_requires_bits () =
  Alcotest.check_raises "empty group"
    (Invalid_argument "Signal.group: a group needs at least one bit") (fun () ->
      ignore (Signal.group ~name:"g" ~bits:[||]))

let test_design_counts () =
  let g1 = Signal.group ~name:"a" ~bits:[| bit 1.0; bit 2.0 |] in
  let g2 = Signal.group ~name:"b" ~bits:[| bit 3.0 |] in
  let d = Signal.design ~die ~groups:[| g1; g2 |] in
  Alcotest.(check int) "net count" 3 (Signal.net_count d);
  Alcotest.(check int) "pin count" 9 (Signal.pin_count d)

let test_design_rejects_outside_pins () =
  let stray = Signal.bit ~source:(p 50.0 0.0) ~sinks:[| p 1.0 1.0 |] in
  let g = Signal.group ~name:"bad" ~bits:[| stray |] in
  try
    ignore (Signal.design ~die ~groups:[| g |]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_group_bbox () =
  let g = Signal.group ~name:"a" ~bits:[| bit 1.0; bit 4.0 |] in
  let r = Signal.group_bbox g in
  Alcotest.(check (float 1e-9)) "xmin" 1.0 r.Rect.xmin;
  Alcotest.(check (float 1e-9)) "xmax" 4.0 r.Rect.xmax;
  Alcotest.(check (float 1e-9)) "ymax" 2.0 r.Rect.ymax

(* --- hypernet --- *)

let hp ?(sources = 0) x y count =
  { Hypernet.center = p x y; pin_count = count; source_count = sources }

let test_hypernet_root_selection () =
  let pins = [| hp 0.0 0.0 3; hp ~sources:2 1.0 0.0 4; hp ~sources:1 2.0 0.0 2 |] in
  let h = Hypernet.make ~id:0 ~group:0 ~bits:8 ~pins in
  Alcotest.(check int) "root is max-driver pin" 1 h.Hypernet.root

let test_hypernet_centers_root_first () =
  let pins = [| hp 0.0 0.0 1; hp ~sources:1 1.0 0.0 1; hp 2.0 0.0 1 |] in
  let h = Hypernet.make ~id:0 ~group:0 ~bits:4 ~pins in
  let centers = Hypernet.centers h in
  Alcotest.(check bool) "root first" true (Point.equal centers.(0) (p 1.0 0.0));
  Alcotest.(check int) "all present" 3 (Array.length centers);
  (* remaining centers are the non-root ones, order preserved *)
  Alcotest.(check bool) "second" true (Point.equal centers.(1) (p 0.0 0.0));
  Alcotest.(check bool) "third" true (Point.equal centers.(2) (p 2.0 0.0))

let test_hypernet_invalid () =
  Alcotest.check_raises "no pins" (Invalid_argument "Hypernet.make: no hyper pins")
    (fun () -> ignore (Hypernet.make ~id:0 ~group:0 ~bits:1 ~pins:[||]));
  Alcotest.check_raises "no bits"
    (Invalid_argument "Hypernet.make: non-positive bit count") (fun () ->
      ignore (Hypernet.make ~id:0 ~group:0 ~bits:0 ~pins:[| hp 0.0 0.0 1 |]))

let test_hypernet_bbox_trivial () =
  let h1 = Hypernet.make ~id:0 ~group:0 ~bits:1 ~pins:[| hp ~sources:1 1.0 2.0 1 |] in
  Alcotest.(check bool) "trivial" true (Hypernet.is_trivial h1);
  let h2 =
    Hypernet.make ~id:1 ~group:0 ~bits:1
      ~pins:[| hp ~sources:1 0.0 0.0 1; hp 3.0 4.0 1 |]
  in
  Alcotest.(check bool) "not trivial" false (Hypernet.is_trivial h2);
  let bbox = Hypernet.bbox h2 in
  Alcotest.(check (float 1e-9)) "bbox xmax" 3.0 bbox.Rect.xmax;
  Alcotest.(check int) "pin count" 2 (Hypernet.pin_count h2)

let () =
  Alcotest.run "signal"
    [ ( "signal",
        [ Alcotest.test_case "bit requires sink" `Quick test_bit_requires_sink;
          Alcotest.test_case "bit pins" `Quick test_bit_pins;
          Alcotest.test_case "group requires bits" `Quick test_group_requires_bits;
          Alcotest.test_case "design counts" `Quick test_design_counts;
          Alcotest.test_case "outside pins rejected" `Quick test_design_rejects_outside_pins;
          Alcotest.test_case "group bbox" `Quick test_group_bbox ] );
      ( "hypernet",
        [ Alcotest.test_case "root selection" `Quick test_hypernet_root_selection;
          Alcotest.test_case "centers root first" `Quick test_hypernet_centers_root_first;
          Alcotest.test_case "invalid" `Quick test_hypernet_invalid;
          Alcotest.test_case "bbox/trivial" `Quick test_hypernet_bbox_trivial ] ) ]
