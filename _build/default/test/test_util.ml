(* Unit and property tests for the util substrate: PRNG determinism and
   distribution sanity, statistics helpers, timing budgets. *)

open Operon_util

let check_float = Alcotest.(check (float 1e-9))

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  ignore (Prng.bits64 a);
  (* advancing a further must not touch b *)
  let b' = Prng.copy b in
  Alcotest.(check int64) "copy isolated" (Prng.bits64 b) (Prng.bits64 b')

let test_prng_split_diverges () =
  let parent = Prng.create 3 in
  let child = Prng.split parent in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Prng.bits64 parent = Prng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 3)

let test_prng_int_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let g = Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_bounds () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_float_range () =
  let g = Prng.create 9 in
  for _ = 1 to 100 do
    let v = Prng.float_range g (-3.0) (-1.0) in
    Alcotest.(check bool) "in range" true (v >= -3.0 && v < -1.0)
  done

let test_prng_gaussian_moments () =
  let g = Prng.create 11 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Prng.gaussian g ~mu:5.0 ~sigma:2.0) in
  let m = Stats.mean samples in
  let s = Stats.stddev samples in
  Alcotest.(check bool) "mean near 5" true (Float.abs (m -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (s -. 2.0) < 0.1)

let test_prng_shuffle_permutes () =
  let g = Prng.create 13 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_stats_mean_empty () = check_float "empty mean" 0.0 (Stats.mean [||])

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "variance" 1.25 (Stats.variance a);
  check_float "sum" 10.0 (Stats.sum a);
  let lo, hi = Stats.min_max a in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi

let test_stats_median () =
  check_float "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile a 0.0);
  check_float "p100" 50.0 (Stats.percentile a 100.0);
  check_float "p50" 30.0 (Stats.percentile a 50.0);
  check_float "p25" 20.0 (Stats.percentile a 25.0)

let test_stats_normalize () =
  let a = Stats.normalize [| 2.0; 4.0; 1.0 |] in
  check_float "peak is 1" 1.0 a.(1);
  check_float "half" 0.5 a.(0);
  let z = Stats.normalize [| 0.0; 0.0 |] in
  check_float "all-zero stays zero" 0.0 z.(0)

let test_timer_budget () =
  let b = Timer.budget 100.0 in
  Alcotest.(check bool) "not expired" false (Timer.expired b);
  Alcotest.(check bool) "remaining positive" true (Timer.remaining b > 0.0);
  let unlimited = Timer.budget 0.0 in
  Alcotest.(check bool) "unlimited never expires" false (Timer.expired unlimited);
  check_float "unlimited remaining" infinity (Timer.remaining unlimited)

let test_timer_time () =
  let v, dt = Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check bool) "non-negative elapsed" true (dt >= 0.0)

(* Property: Kahan sum matches naive sum on well-conditioned inputs. *)
let prop_sum_matches =
  QCheck.Test.make ~name:"stats sum matches fold" ~count:200
    QCheck.(array (float_bound_exclusive 1000.0))
    (fun a ->
      let naive = Array.fold_left ( +. ) 0.0 a in
      Float.abs (Stats.sum a -. naive) <= 1e-6 *. Float.max 1.0 (Float.abs naive))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
              (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (a, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let prop_int_uniformish =
  QCheck.Test.make ~name:"prng int covers range" ~count:20
    QCheck.(int_range 2 20)
    (fun bound ->
      let g = Prng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Prng.int g bound) <- true
      done;
      Array.for_all Fun.id seen)

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_int_uniformish ] );
      ( "stats",
        [ Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "normalize" `Quick test_stats_normalize;
          QCheck_alcotest.to_alcotest prop_sum_matches;
          QCheck_alcotest.to_alcotest prop_percentile_monotone ] );
      ( "timer",
        [ Alcotest.test_case "budget" `Quick test_timer_budget;
          Alcotest.test_case "time" `Quick test_timer_time ] ) ]
