(* Tests for the flow-network substrate (Dinic max-flow and min-cost
   max-flow), including the bipartite transportation shape used by the WDM
   assignment and a brute-force cross-check on small instances. *)

open Operon_flow

let check_float = Alcotest.(check (float 1e-6))

(* --- max flow --- *)

let test_maxflow_simple_path () =
  let g = Maxflow.create 3 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:3);
  Alcotest.(check int) "bottleneck" 3 (Maxflow.max_flow g ~source:0 ~sink:2)

let test_maxflow_parallel_paths () =
  let g = Maxflow.create 4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:2);
  ignore (Maxflow.add_edge g ~src:0 ~dst:2 ~cap:3);
  ignore (Maxflow.add_edge g ~src:1 ~dst:3 ~cap:4);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:1);
  Alcotest.(check int) "sum of cuts" 3 (Maxflow.max_flow g ~source:0 ~sink:3)

let test_maxflow_classic () =
  (* CLRS-style example with a known max flow of 23. *)
  let g = Maxflow.create 6 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:16);
  ignore (Maxflow.add_edge g ~src:0 ~dst:2 ~cap:13);
  ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:10);
  ignore (Maxflow.add_edge g ~src:2 ~dst:1 ~cap:4);
  ignore (Maxflow.add_edge g ~src:1 ~dst:3 ~cap:12);
  ignore (Maxflow.add_edge g ~src:3 ~dst:2 ~cap:9);
  ignore (Maxflow.add_edge g ~src:2 ~dst:4 ~cap:14);
  ignore (Maxflow.add_edge g ~src:4 ~dst:3 ~cap:7);
  ignore (Maxflow.add_edge g ~src:3 ~dst:5 ~cap:20);
  ignore (Maxflow.add_edge g ~src:4 ~dst:5 ~cap:4);
  Alcotest.(check int) "CLRS 23" 23 (Maxflow.max_flow g ~source:0 ~sink:5)

let test_maxflow_disconnected () =
  let g = Maxflow.create 4 in
  ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5);
  ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5);
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow g ~source:0 ~sink:3)

let test_maxflow_flow_on () =
  let g = Maxflow.create 3 in
  let a = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5 in
  let b = Maxflow.add_edge g ~src:1 ~dst:2 ~cap:3 in
  ignore (Maxflow.max_flow g ~source:0 ~sink:2);
  Alcotest.(check int) "flow a" 3 (Maxflow.flow_on g a);
  Alcotest.(check int) "flow b" 3 (Maxflow.flow_on g b)

let test_maxflow_invalid () =
  let g = Maxflow.create 2 in
  Alcotest.check_raises "bad vertex"
    (Invalid_argument "Maxflow.add_edge: vertex out of range") (fun () ->
      ignore (Maxflow.add_edge g ~src:0 ~dst:7 ~cap:1));
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:(-1)))

(* --- min-cost max-flow --- *)

let test_mcmf_prefers_cheap_path () =
  let g = Mcmf.create 4 in
  ignore (Mcmf.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1.0);
  ignore (Mcmf.add_edge g ~src:0 ~dst:2 ~cap:1 ~cost:10.0);
  ignore (Mcmf.add_edge g ~src:1 ~dst:3 ~cap:1 ~cost:1.0);
  ignore (Mcmf.add_edge g ~src:2 ~dst:3 ~cap:1 ~cost:1.0);
  let flow, cost = Mcmf.solve g ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow 2" 2 flow;
  check_float "cost" 13.0 cost

let test_mcmf_single_unit_cheapest () =
  let g = Mcmf.create 4 in
  ignore (Mcmf.add_edge g ~src:0 ~dst:1 ~cap:5 ~cost:1.0);
  ignore (Mcmf.add_edge g ~src:0 ~dst:2 ~cap:5 ~cost:2.0);
  ignore (Mcmf.add_edge g ~src:1 ~dst:3 ~cap:5 ~cost:1.0);
  ignore (Mcmf.add_edge g ~src:2 ~dst:3 ~cap:5 ~cost:0.5);
  let flow, cost = Mcmf.solve_bounded g ~source:0 ~sink:3 ~max_flow:1 in
  Alcotest.(check int) "one unit" 1 flow;
  check_float "cheapest route" 2.0 cost

let test_mcmf_negative_costs () =
  let g = Mcmf.create 3 in
  ignore (Mcmf.add_edge g ~src:0 ~dst:1 ~cap:2 ~cost:(-3.0));
  ignore (Mcmf.add_edge g ~src:1 ~dst:2 ~cap:2 ~cost:1.0);
  let flow, cost = Mcmf.solve g ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 2 flow;
  check_float "negative total" (-4.0) cost

let test_mcmf_flow_on () =
  let g = Mcmf.create 3 in
  let a = Mcmf.add_edge g ~src:0 ~dst:1 ~cap:4 ~cost:1.0 in
  ignore (Mcmf.add_edge g ~src:1 ~dst:2 ~cap:3 ~cost:1.0);
  ignore (Mcmf.solve g ~source:0 ~sink:2);
  Alcotest.(check int) "readback" 3 (Mcmf.flow_on g a)

(* Transportation instance: 3 connections (20 bits each) onto 3 WDMs of
   capacity 32 — the Fig. 6 example; two WDMs suffice only if bits split,
   which min-cost flow does channel-wise. *)
let test_mcmf_wdm_shape () =
  let nc = 3 and nw = 2 in
  let g = Mcmf.create (nc + nw + 2) in
  let source = 0 and sink = nc + nw + 1 in
  for c = 0 to nc - 1 do
    ignore (Mcmf.add_edge g ~src:source ~dst:(1 + c) ~cap:20 ~cost:0.0);
    for w = 0 to nw - 1 do
      ignore
        (Mcmf.add_edge g ~src:(1 + c) ~dst:(1 + nc + w) ~cap:20
           ~cost:(float_of_int (abs (c - w))))
    done
  done;
  for w = 0 to nw - 1 do
    ignore (Mcmf.add_edge g ~src:(1 + nc + w) ~dst:sink ~cap:32 ~cost:0.1)
  done;
  let flow, _ = Mcmf.solve g ~source ~sink in
  Alcotest.(check int) "60 bits fit in 2x32" 60 flow

(* Brute force assignment check: 2 items x 2 bins, unit flows. *)
let test_mcmf_matches_brute_force () =
  let costs = [| [| 4.0; 1.0 |]; [| 2.0; 3.0 |] |] in
  let g = Mcmf.create 6 in
  let source = 0 and sink = 5 in
  ignore (Mcmf.add_edge g ~src:source ~dst:1 ~cap:1 ~cost:0.0);
  ignore (Mcmf.add_edge g ~src:source ~dst:2 ~cap:1 ~cost:0.0);
  for item = 0 to 1 do
    for bin = 0 to 1 do
      ignore (Mcmf.add_edge g ~src:(1 + item) ~dst:(3 + bin) ~cap:1 ~cost:costs.(item).(bin))
    done
  done;
  ignore (Mcmf.add_edge g ~src:3 ~dst:sink ~cap:1 ~cost:0.0);
  ignore (Mcmf.add_edge g ~src:4 ~dst:sink ~cap:1 ~cost:0.0);
  let flow, cost = Mcmf.solve g ~source ~sink in
  Alcotest.(check int) "perfect matching" 2 flow;
  (* optimal: item0->bin1 (1.0) + item1->bin0 (2.0) *)
  check_float "optimal assignment" 3.0 cost

(* Property: mcmf flow value equals Dinic max flow on the same network. *)
let prop_mcmf_flow_equals_maxflow =
  let gen =
    QCheck.Gen.(
      int_range 3 8 >>= fun n ->
      list_size (int_range 2 20)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 10))
      >|= fun edges -> (n, edges))
  in
  QCheck.Test.make ~name:"mcmf max flow equals dinic" ~count:200
    (QCheck.make
       ~print:(fun (n, e) -> Printf.sprintf "n=%d #e=%d" n (List.length e))
       gen)
    (fun (n, edges) ->
      let mf = Maxflow.create n in
      let mc = Mcmf.create n in
      List.iter
        (fun (u, v, c) ->
          if u <> v then begin
            ignore (Maxflow.add_edge mf ~src:u ~dst:v ~cap:c);
            ignore (Mcmf.add_edge mc ~src:u ~dst:v ~cap:c ~cost:(float_of_int ((u + v) mod 3)))
          end)
        edges;
      let f1 = Maxflow.max_flow mf ~source:0 ~sink:(n - 1) in
      let f2, _ = Mcmf.solve mc ~source:0 ~sink:(n - 1) in
      f1 = f2)

let () =
  Alcotest.run "flownet"
    [ ( "maxflow",
        [ Alcotest.test_case "simple path" `Quick test_maxflow_simple_path;
          Alcotest.test_case "parallel paths" `Quick test_maxflow_parallel_paths;
          Alcotest.test_case "classic" `Quick test_maxflow_classic;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "flow readback" `Quick test_maxflow_flow_on;
          Alcotest.test_case "invalid args" `Quick test_maxflow_invalid ] );
      ( "mcmf",
        [ Alcotest.test_case "cheap path first" `Quick test_mcmf_prefers_cheap_path;
          Alcotest.test_case "bounded single unit" `Quick test_mcmf_single_unit_cheapest;
          Alcotest.test_case "negative costs" `Quick test_mcmf_negative_costs;
          Alcotest.test_case "flow readback" `Quick test_mcmf_flow_on;
          Alcotest.test_case "wdm transportation" `Quick test_mcmf_wdm_shape;
          Alcotest.test_case "matches brute force" `Quick test_mcmf_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_mcmf_flow_equals_maxflow ] ) ]
