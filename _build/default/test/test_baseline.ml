(* Tests for the Table 1 comparison baselines: the Streak-like electrical
   estimate and the GLOW-like optical-only flow. *)

open Operon_geom
open Operon_util
open Operon_optical
open Operon

let p = Point.make

let params = Params.default

let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:10.0 ~ymax:10.0

let bit src snk = Signal.bit ~source:src ~sinks:[| snk |]

let test_electrical_power_two_pin () =
  let g = Signal.group ~name:"g" ~bits:[| bit (p 0.0 0.0) (p 3.0 4.0) |] in
  let d = Signal.design ~die ~groups:[| g |] in
  Alcotest.(check (float 1e-9)) "wirelength = L1" 7.0
    (Baseline.electrical_wirelength params d);
  Alcotest.(check (float 1e-9)) "power"
    (7.0 *. Params.electrical_unit_energy params)
    (Baseline.electrical_power params d)

let test_electrical_scales_with_bits () =
  let mk n =
    let bits = Array.init n (fun i ->
        let off = 0.001 *. float_of_int i in
        bit (p (0.0 +. off) 0.0) (p (3.0 +. off) 0.0))
    in
    Signal.design ~die ~groups:[| Signal.group ~name:"g" ~bits |]
  in
  let p1 = Baseline.electrical_power params (mk 1) in
  let p4 = Baseline.electrical_power params (mk 4) in
  Alcotest.(check bool) "4 bits ~ 4x power" true (Float.abs (p4 -. (4.0 *. p1)) < 1e-6)

let bus ?(name = "bus") ~from_ ~to_ n =
  let bits =
    Array.init n (fun i ->
        let off = 0.002 *. float_of_int i in
        bit (Point.add from_ (p off 0.0)) (Point.add to_ (p off 0.0)))
  in
  Signal.group ~name ~bits

let test_glow_prefers_optical_for_long_bus () =
  let d =
    Signal.design ~die
      ~groups:[| bus ~from_:(p 1.0 1.0) ~to_:(p 8.0 8.0) 16 |]
  in
  let hnets = Processing.run (Prng.create 1) params d in
  let g = Baseline.glow params hnets in
  Alcotest.(check int) "optical" 1 g.Baseline.optical_nets;
  Alcotest.(check int) "no fallback" 0 g.Baseline.electrical_nets;
  Alcotest.(check bool) "beats electrical" true
    (g.Baseline.power < Baseline.electrical_power params d)

let test_glow_falls_back_under_tight_budget () =
  let d =
    Signal.design ~die
      ~groups:[| bus ~from_:(p 1.0 1.0) ~to_:(p 8.0 8.0) 16 |]
  in
  let hnets = Processing.run (Prng.create 1) params d in
  let tight = { params with Params.l_max = 0.5 } in
  let g = Baseline.glow tight hnets in
  Alcotest.(check int) "fallback" 1 g.Baseline.electrical_nets;
  Alcotest.(check int) "nothing optical" 0 g.Baseline.optical_nets

let test_glow_ignores_splitting_loss () =
  (* A multi-sink net whose splitting loss breaks the budget while
     propagation+crossing alone fit: GLOW accepts it (its known blind
     spot) and the [underestimated] counter flags it. *)
  let from_ = p 1.0 5.0 in
  let bits =
    Array.init 8 (fun i ->
        let off = 0.002 *. float_of_int i in
        Signal.bit
          ~source:(Point.add from_ (p off 0.0))
          ~sinks:
            [| p (8.0 +. off) 1.0; p (8.0 +. off) 3.5; p (8.0 +. off) 6.5;
               p (8.0 +. off) 9.0 |])
  in
  let d = Signal.design ~die ~groups:[| Signal.group ~name:"multi" ~bits |] in
  let hnets = Processing.run (Prng.create 1) params d in
  (* pick a budget between prop-only loss and prop+split loss *)
  let all_opt =
    match Baseline.glow { params with Params.l_max = 1000.0 } hnets with
    | { Baseline.ctx; _ } -> ctx.Selection.cands.(0).(0)
  in
  let with_split = all_opt.Candidate.max_intrinsic_loss in
  let prop_only =
    Array.fold_left
      (fun acc (path : Candidate.path) ->
        Float.max acc
          (Loss.propagation params
             (Array.fold_left (fun a s -> a +. Segment.length s) 0.0 path.Candidate.segments)))
      0.0 all_opt.Candidate.paths
  in
  Alcotest.(check bool) "splitting adds loss" true (with_split > prop_only +. 1.0);
  let budget = (with_split +. prop_only) /. 2.0 in
  let g = Baseline.glow { params with Params.l_max = budget } hnets in
  Alcotest.(check int) "GLOW accepts anyway" 1 g.Baseline.optical_nets;
  Alcotest.(check int) "flagged as undetectable" 1 g.Baseline.underestimated

let test_glow_trivial_nets () =
  (* Single-hyper-pin nets have no routing: GLOW treats them as
     electrical with zero cost. *)
  let bits = [| bit (p 5.0 5.0) (p 5.01 5.0) |] in
  let d = Signal.design ~die ~groups:[| Signal.group ~name:"local" ~bits |] in
  let hnets = Processing.run (Prng.create 1) params d in
  let g = Baseline.glow params hnets in
  Alcotest.(check int) "handled" 1 (g.Baseline.optical_nets + g.Baseline.electrical_nets);
  Alcotest.(check bool) "negligible power" true (g.Baseline.power < 0.1)

let test_glow_power_consistent_with_choice () =
  let d =
    Signal.design ~die
      ~groups:
        [| bus ~from_:(p 1.0 1.0) ~to_:(p 8.0 8.0) 16;
           bus ~name:"b2" ~from_:(p 1.0 8.0) ~to_:(p 8.0 1.0) 16 |]
  in
  let hnets = Processing.run (Prng.create 1) params d in
  let g = Baseline.glow params hnets in
  Alcotest.(check (float 1e-6)) "power matches selection"
    (Selection.power g.Baseline.ctx g.Baseline.choice)
    g.Baseline.power

let () =
  Alcotest.run "baseline"
    [ ( "electrical",
        [ Alcotest.test_case "two pin" `Quick test_electrical_power_two_pin;
          Alcotest.test_case "scales with bits" `Quick test_electrical_scales_with_bits ] );
      ( "glow",
        [ Alcotest.test_case "long bus optical" `Quick test_glow_prefers_optical_for_long_bus;
          Alcotest.test_case "tight budget fallback" `Quick test_glow_falls_back_under_tight_budget;
          Alcotest.test_case "ignores splitting loss" `Quick test_glow_ignores_splitting_loss;
          Alcotest.test_case "trivial nets" `Quick test_glow_trivial_nets;
          Alcotest.test_case "power consistency" `Quick test_glow_power_consistent_with_choice ] ) ]
