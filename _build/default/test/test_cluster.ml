(* Tests for the clustering substrate: capacity-constrained K-Means and
   bottom-up hyper-pin agglomeration. *)

open Operon_util
open Operon_geom
open Operon_cluster

let p = Point.make

let rng () = Prng.create 1234

let grid_points n =
  Array.init n (fun i -> p (float_of_int (i mod 10)) (float_of_int (i / 10)))

(* --- kmeans --- *)

let test_kmeans_respects_capacity () =
  let pts = grid_points 100 in
  let r = Kmeans.run (rng ()) pts ~k:5 ~capacity:25 in
  Array.iter
    (fun c -> Alcotest.(check bool) "capacity" true (Array.length c <= 25))
    r.Kmeans.clusters

let test_kmeans_partitions_all () =
  let pts = grid_points 60 in
  let r = Kmeans.run (rng ()) pts ~k:3 ~capacity:25 in
  let seen = Array.make 60 false in
  Array.iter (Array.iter (fun i -> seen.(i) <- true)) r.Kmeans.clusters;
  Alcotest.(check bool) "every point assigned" true (Array.for_all Fun.id seen);
  let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 r.Kmeans.clusters in
  Alcotest.(check int) "exactly once" 60 total

let test_kmeans_no_empty_clusters () =
  let pts = grid_points 20 in
  let r = Kmeans.run (rng ()) pts ~k:10 ~capacity:20 in
  Array.iter
    (fun c -> Alcotest.(check bool) "non-empty" true (Array.length c > 0))
    r.Kmeans.clusters

let test_kmeans_tight_capacity () =
  (* k * capacity = n exactly: every cluster must be full. *)
  let pts = grid_points 40 in
  let r = Kmeans.run (rng ()) pts ~k:4 ~capacity:10 in
  Alcotest.(check int) "4 clusters" 4 (Array.length r.Kmeans.clusters);
  Array.iter
    (fun c -> Alcotest.(check int) "full" 10 (Array.length c))
    r.Kmeans.clusters

let test_kmeans_invalid () =
  let pts = grid_points 10 in
  Alcotest.check_raises "too small" (Invalid_argument "Kmeans.run: k * capacity < n")
    (fun () -> ignore (Kmeans.run (rng ()) pts ~k:2 ~capacity:4));
  Alcotest.check_raises "no points" (Invalid_argument "Kmeans.run: no points")
    (fun () -> ignore (Kmeans.run (rng ()) [||] ~k:1 ~capacity:1))

let test_kmeans_separated_clusters () =
  (* Two well-separated blobs must be recovered exactly. *)
  let blob cx cy = Array.init 10 (fun i -> p (cx +. (0.01 *. float_of_int i)) cy) in
  let pts = Array.append (blob 0.0 0.0) (blob 100.0 100.0) in
  let r = Kmeans.run (rng ()) pts ~k:2 ~capacity:10 in
  Alcotest.(check int) "two clusters" 2 (Array.length r.Kmeans.clusters);
  Array.iter
    (fun c ->
      let side i = pts.(i).Point.x < 50.0 in
      let first = side c.(0) in
      Array.iter
        (fun i -> Alcotest.(check bool) "pure cluster" first (side i))
        c)
    r.Kmeans.clusters

let test_partition_under_capacity () =
  let pts = grid_points 10 in
  let r = Kmeans.partition (rng ()) pts ~capacity:32 in
  Alcotest.(check int) "single cluster" 1 (Array.length r.Kmeans.clusters);
  Alcotest.(check int) "holds all" 10 (Array.length r.Kmeans.clusters.(0))

let test_partition_chooses_k () =
  let pts = grid_points 100 in
  let r = Kmeans.partition (rng ()) pts ~capacity:32 in
  (* ceil(100/32) = 4 clusters requested; empties may be dropped *)
  Alcotest.(check bool) "at least 4 needed" true (Array.length r.Kmeans.clusters >= 4);
  Array.iter
    (fun c -> Alcotest.(check bool) "capacity" true (Array.length c <= 32))
    r.Kmeans.clusters

(* --- agglomerative --- *)

let test_agglom_merges_neighbors () =
  let pins = [| p 0.0 0.0; p 0.01 0.0; p 5.0 5.0 |] in
  let hps = Agglom.merge pins ~threshold:0.1 in
  Alcotest.(check int) "two hyper pins" 2 (Array.length hps);
  let sizes = Array.map (fun h -> Array.length h.Agglom.members) hps in
  Array.sort compare sizes;
  Alcotest.(check (array int)) "sizes" [| 1; 2 |] sizes

let test_agglom_threshold_zero () =
  let pins = [| p 0.0 0.0; p 0.0 0.0; p 1.0 1.0 |] in
  let hps = Agglom.merge pins ~threshold:0.0 in
  Alcotest.(check int) "all singletons" 3 (Array.length hps)

let test_agglom_empty () =
  Alcotest.(check int) "empty input" 0 (Array.length (Agglom.merge [||] ~threshold:1.0))

let test_agglom_gravity_center () =
  let pins = [| p 0.0 0.0; p 1.0 0.0; p 0.5 0.6 |] in
  let hps = Agglom.merge pins ~threshold:10.0 in
  Alcotest.(check int) "single hyper pin" 1 (Array.length hps);
  Alcotest.(check bool) "gravity center" true
    (Point.close ~eps:1e-9 hps.(0).Agglom.center (p 0.5 0.2))

let test_agglom_chain_merging () =
  (* Pins at pitch 0.04 under threshold 0.05: closest pairs merge first,
     after which the pair gravity centres sit 0.08 apart -- beyond the
     threshold -- so the chain stabilises at 5 two-pin hyper pins. A bus
     at a much finer pitch (0.002) still collapses fully. *)
  let pins = Array.init 10 (fun i -> p (0.04 *. float_of_int i) 0.0) in
  let hps = Agglom.merge pins ~threshold:0.05 in
  Alcotest.(check int) "pairwise stall at 6" 6 (Array.length hps);
  Array.iter
    (fun h ->
      Alcotest.(check bool) "clusters stay small" true
        (Array.length h.Agglom.members <= 2))
    hps;
  let fine = Array.init 10 (fun i -> p (0.002 *. float_of_int i) 0.0) in
  Alcotest.(check int) "fine bus fully merges" 1
    (Array.length (Agglom.merge fine ~threshold:0.05))

let test_agglom_members_partition () =
  let pins = Array.init 20 (fun i -> p (float_of_int (i mod 5)) (float_of_int (i / 5))) in
  let hps = Agglom.merge pins ~threshold:0.5 in
  let seen = Array.make 20 0 in
  Array.iter (fun h -> Array.iter (fun i -> seen.(i) <- seen.(i) + 1) h.Agglom.members) hps;
  Alcotest.(check (array int)) "each pin exactly once" (Array.make 20 1) seen

(* --- properties --- *)

let arb_pins =
  QCheck.make
    ~print:(fun pts -> string_of_int (Array.length pts))
    QCheck.Gen.(
      array_size (int_range 1 40)
        (map2 p (float_bound_exclusive 4.0) (float_bound_exclusive 4.0)))

let prop_kmeans_capacity =
  QCheck.Test.make ~name:"partition respects capacity" ~count:100 arb_pins
    (fun pts ->
      let r = Kmeans.partition (Prng.create 99) pts ~capacity:7 in
      Array.for_all (fun c -> Array.length c <= 7 && Array.length c > 0) r.Kmeans.clusters)

let prop_kmeans_covers =
  QCheck.Test.make ~name:"partition covers all points" ~count:100 arb_pins
    (fun pts ->
      let r = Kmeans.partition (Prng.create 7) pts ~capacity:5 in
      let total = Array.fold_left (fun a c -> a + Array.length c) 0 r.Kmeans.clusters in
      total = Array.length pts)

let prop_agglom_partition =
  QCheck.Test.make ~name:"agglom partitions pins" ~count:100
    (QCheck.pair arb_pins (QCheck.float_range 0.0 2.0))
    (fun (pts, threshold) ->
      let hps = Agglom.merge pts ~threshold in
      let total = Array.fold_left (fun a h -> a + Array.length h.Agglom.members) 0 hps in
      total = Array.length pts)

let prop_agglom_separated_stay_apart =
  QCheck.Test.make ~name:"far singleton stays apart" ~count:100 arb_pins
    (fun pts ->
      (* add a pin far outside any threshold reach *)
      let far = p 1000.0 1000.0 in
      let hps = Agglom.merge (Array.append pts [| far |]) ~threshold:1.0 in
      Array.exists
        (fun h ->
          Array.length h.Agglom.members = 1 && Point.close h.Agglom.center far)
        hps)

let () =
  Alcotest.run "cluster"
    [ ( "kmeans",
        [ Alcotest.test_case "capacity" `Quick test_kmeans_respects_capacity;
          Alcotest.test_case "partitions all" `Quick test_kmeans_partitions_all;
          Alcotest.test_case "no empty clusters" `Quick test_kmeans_no_empty_clusters;
          Alcotest.test_case "tight capacity" `Quick test_kmeans_tight_capacity;
          Alcotest.test_case "invalid" `Quick test_kmeans_invalid;
          Alcotest.test_case "separated blobs" `Quick test_kmeans_separated_clusters;
          Alcotest.test_case "partition small" `Quick test_partition_under_capacity;
          Alcotest.test_case "partition chooses k" `Quick test_partition_chooses_k;
          QCheck_alcotest.to_alcotest prop_kmeans_capacity;
          QCheck_alcotest.to_alcotest prop_kmeans_covers ] );
      ( "agglom",
        [ Alcotest.test_case "merges neighbors" `Quick test_agglom_merges_neighbors;
          Alcotest.test_case "threshold zero" `Quick test_agglom_threshold_zero;
          Alcotest.test_case "empty" `Quick test_agglom_empty;
          Alcotest.test_case "gravity center" `Quick test_agglom_gravity_center;
          Alcotest.test_case "chain merging" `Quick test_agglom_chain_merging;
          Alcotest.test_case "members partition" `Quick test_agglom_members_partition;
          QCheck_alcotest.to_alcotest prop_agglom_partition;
          QCheck_alcotest.to_alcotest prop_agglom_separated_stay_apart ] ) ]
