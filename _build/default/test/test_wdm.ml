(* Tests for Section 4: WDM sweep placement, legalization, and the
   network-flow re-assignment (Figs. 6-7), including the paper's own
   three-connection example. *)

open Operon_geom
open Operon_optical
open Operon

let p = Point.make

let params = Params.default

let seg x1 y1 x2 y2 = Segment.make (p x1 y1) (p x2 y2)

let conn id net s bits = { Wdm.id; net; seg = s; bits }

(* Paper Fig. 6: three 20-bit parallel connections, capacity 32. The
   sweep places them on >= 2 tracks; re-assignment shows 2 suffice
   (splitting one connection across tracks channel-wise). *)
let fig6_conns () =
  [| conn 0 0 (seg 0.0 1.00 3.0 1.00) 20;
     conn 1 1 (seg 0.5 1.02 3.5 1.02) 20;
     conn 2 2 (seg 1.0 1.04 4.0 1.04) 20 |]

let test_place_all_assigned () =
  let placement = Wdm_place.place params (fig6_conns ()) in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "assigned" true
        (placement.Wdm_place.assignment.(c.Wdm.id) >= 0))
    placement.Wdm_place.conns

let test_place_capacity () =
  let placement = Wdm_place.place params (fig6_conns ()) in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "capacity respected" true (t.Wdm.used <= t.Wdm.capacity))
    placement.Wdm_place.tracks;
  (* 60 bits cannot fit a single 32-channel track *)
  Alcotest.(check bool) "at least 2 tracks" true (Wdm_place.track_count placement >= 2)

let test_fig6_assignment_saves_one () =
  let placement = Wdm_place.place params (fig6_conns ()) in
  let r = Assign.run params placement in
  Alcotest.(check int) "two tracks suffice" 2 r.Assign.final_count;
  Alcotest.(check bool) "reduction happened" true
    (r.Assign.final_count <= r.Assign.initial_count);
  (* all 60 bits still carried *)
  let carried =
    Array.fold_left
      (fun acc flows -> List.fold_left (fun a (_, b) -> a + b) acc flows)
      0 r.Assign.flows
  in
  Alcotest.(check int) "all bits carried" 60 carried

let test_assignment_respects_capacity () =
  let placement = Wdm_place.place params (fig6_conns ()) in
  let r = Assign.run params placement in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "final track capacity" true (t.Wdm.used <= t.Wdm.capacity))
    r.Assign.tracks

let test_assignment_distance_bound () =
  let placement = Wdm_place.place params (fig6_conns ()) in
  let r = Assign.run params placement in
  Array.iteri
    (fun ci flows ->
      let c = placement.Wdm_place.conns.(ci) in
      List.iter
        (fun (wi, _) ->
          Alcotest.(check bool) "within dis_u" true
            (Wdm.track_distance r.Assign.tracks.(wi) c <= params.Params.dis_u +. 1e-9))
        flows)
    r.Assign.flows

let test_orientations_separate () =
  let conns =
    [| conn 0 0 (seg 0.0 1.0 3.0 1.0) 8; conn 1 1 (seg 1.0 0.0 1.0 3.0) 8 |]
  in
  let placement = Wdm_place.place params conns in
  Alcotest.(check int) "one track each" 2 (Wdm_place.track_count placement);
  let orients =
    Array.map (fun t -> t.Wdm.orient) placement.Wdm_place.tracks
  in
  Alcotest.(check bool) "one horizontal one vertical" true
    (Array.exists (fun o -> o = Wdm.Horizontal) orients
     && Array.exists (fun o -> o = Wdm.Vertical) orients)

let test_far_connections_not_shared () =
  (* Connections separated by more than dis_u must get distinct tracks. *)
  let conns =
    [| conn 0 0 (seg 0.0 0.0 3.0 0.0) 4; conn 1 1 (seg 0.0 2.0 3.0 2.0) 4 |]
  in
  let placement = Wdm_place.place params conns in
  Alcotest.(check int) "two tracks" 2 (Wdm_place.track_count placement)

let test_legalize_spacing () =
  let conns =
    [| conn 0 0 (seg 0.0 1.0 3.0 1.0) 30; conn 1 1 (seg 0.0 1.0001 3.0 1.0001) 30 |]
  in
  let placement = Wdm_place.place params conns in
  (* two crowded tracks (each connection fills most of a track) *)
  Alcotest.(check int) "two tracks" 2 (Wdm_place.track_count placement);
  let moved = Wdm_place.legalize params placement.Wdm_place.tracks in
  Alcotest.(check bool) "legalization moved a track" true (moved >= 1);
  let coords =
    Array.to_list placement.Wdm_place.tracks
    |> List.filter (fun t -> t.Wdm.orient = Wdm.Horizontal)
    |> List.map (fun t -> t.Wdm.coord)
    |> List.sort compare
  in
  let rec spaced = function
    | a :: (b :: _ as rest) -> b -. a >= params.Params.dis_l -. 1e-12 && spaced rest
    | _ -> true
  in
  Alcotest.(check bool) "dis_l spacing" true (spaced coords)

let test_empty_placement () =
  let placement = Wdm_place.place params [||] in
  Alcotest.(check int) "no tracks" 0 (Wdm_place.track_count placement);
  let r = Assign.run params placement in
  Alcotest.(check int) "nothing to do" 0 r.Assign.final_count;
  Alcotest.(check (float 1e-9)) "reduction ratio" 0.0 (Assign.reduction_ratio r)

let test_reduction_ratio () =
  let r =
    { Assign.tracks = [||]; flows = [||]; initial_count = 10; final_count = 9;
      displacement_cost = 0.0 }
  in
  Alcotest.(check (float 1e-9)) "10%" 0.1 (Assign.reduction_ratio r)

(* Property: on random bundles the assignment never loses bits, never
   exceeds capacity, and never increases the track count. *)
let prop_assignment_invariants =
  QCheck.Test.make ~name:"assignment invariants" ~count:50
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Operon_util.Prng.create seed in
      let n = 2 + Operon_util.Prng.int rng 12 in
      let conns =
        Array.init n (fun i ->
            let y = Operon_util.Prng.float rng 0.5 in
            let x0 = Operon_util.Prng.float rng 2.0 in
            let len = 0.5 +. Operon_util.Prng.float rng 2.0 in
            conn i i (seg x0 y (x0 +. len) (y +. (0.001 *. Operon_util.Prng.float rng 1.0)))
              (1 + Operon_util.Prng.int rng 31))
      in
      let placement = Wdm_place.place params conns in
      let r = Assign.run params placement in
      let total_bits = Array.fold_left (fun a c -> a + c.Wdm.bits) 0 conns in
      let carried =
        Array.fold_left
          (fun acc flows -> List.fold_left (fun a (_, b) -> a + b) acc flows)
          0 r.Assign.flows
      in
      carried = total_bits
      && r.Assign.final_count <= r.Assign.initial_count
      && Array.for_all (fun t -> t.Wdm.used <= t.Wdm.capacity) r.Assign.tracks)

let () =
  Alcotest.run "wdm_stages"
    [ ( "placement",
        [ Alcotest.test_case "all assigned" `Quick test_place_all_assigned;
          Alcotest.test_case "capacity" `Quick test_place_capacity;
          Alcotest.test_case "orientations separate" `Quick test_orientations_separate;
          Alcotest.test_case "far not shared" `Quick test_far_connections_not_shared;
          Alcotest.test_case "legalize spacing" `Quick test_legalize_spacing;
          Alcotest.test_case "empty" `Quick test_empty_placement ] );
      ( "assignment",
        [ Alcotest.test_case "fig6 saves a wdm" `Quick test_fig6_assignment_saves_one;
          Alcotest.test_case "capacity" `Quick test_assignment_respects_capacity;
          Alcotest.test_case "distance bound" `Quick test_assignment_distance_bound;
          Alcotest.test_case "reduction ratio" `Quick test_reduction_ratio;
          QCheck_alcotest.to_alcotest prop_assignment_invariants ] ) ]
