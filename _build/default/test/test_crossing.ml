(* Tests for the crossing index and the Section 3.3 interaction
   machinery (bounding-box variable reduction + component decomposition). *)

open Operon_geom
open Operon

let p = Point.make

let seg x1 y1 x2 y2 = Segment.make (p x1 y1) (p x2 y2)

let die = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:10.0 ~ymax:10.0

let test_index_counts_cross () =
  let idx =
    Crossing.build_index ~die
      [| (0, seg 0.0 5.0 10.0 5.0); (1, seg 5.0 0.0 5.0 10.0) |]
  in
  Alcotest.(check int) "query crosses both nets" 2
    (Crossing.count_crossings idx ~exclude_net:2 (seg 3.0 0.0 6.0 10.0));
  Alcotest.(check int) "excluding net 0 leaves the vertical" 1
    (Crossing.count_crossings idx ~exclude_net:0 (seg 3.0 0.0 6.0 10.0));
  Alcotest.(check int) "parallel query crosses the horizontal once" 1
    (Crossing.count_crossings idx ~exclude_net:1 (seg 2.0 0.0 2.0 10.0))

let test_index_excludes_own_net () =
  let idx = Crossing.build_index ~die [| (7, seg 0.0 5.0 10.0 5.0) |] in
  Alcotest.(check int) "own net ignored" 0
    (Crossing.count_crossings idx ~exclude_net:7 (seg 5.0 0.0 5.0 10.0));
  Alcotest.(check int) "other net counted" 1
    (Crossing.count_crossings idx ~exclude_net:99 (seg 5.0 0.0 5.0 10.0))

let test_index_no_double_counting () =
  (* A long diagonal spans many buckets; it must still count once. *)
  let idx = Crossing.build_index ~die [| (0, seg 0.0 0.0 10.0 10.0) |] in
  Alcotest.(check int) "counted once" 1
    (Crossing.count_crossings idx ~exclude_net:1 (seg 0.0 10.0 10.0 0.0))

let test_index_matches_brute_force () =
  let rng = Operon_util.Prng.create 31 in
  let random_seg () =
    seg (Operon_util.Prng.float rng 10.0) (Operon_util.Prng.float rng 10.0)
      (Operon_util.Prng.float rng 10.0) (Operon_util.Prng.float rng 10.0)
  in
  let entries = Array.init 50 (fun i -> (i mod 7, random_seg ())) in
  let idx = Crossing.build_index ~die entries in
  for _ = 1 to 50 do
    let q = random_seg () in
    let exclude = Operon_util.Prng.int rng 7 in
    let brute =
      Array.fold_left
        (fun acc (net, s) ->
          if net <> exclude && Segment.crosses_properly s q then acc + 1 else acc)
        0 entries
    in
    Alcotest.(check int) "matches brute force" brute
      (Crossing.count_crossings idx ~exclude_net:exclude q)
  done

let test_estimator_closure () =
  let idx = Crossing.build_index ~die [| (0, seg 0.0 5.0 10.0 5.0) |] in
  let est = Crossing.estimator idx ~net:1 in
  Alcotest.(check int) "closure counts" 1 (est (seg 5.0 0.0 5.0 10.0))

let rect x1 y1 x2 y2 = Rect.make ~xmin:x1 ~ymin:y1 ~xmax:x2 ~ymax:y2

let test_components () =
  let boxes =
    [| rect 0.0 0.0 2.0 2.0; (* overlaps 1 *)
       rect 1.0 1.0 3.0 3.0; (* overlaps 0 and 2 *)
       rect 2.5 2.5 4.0 4.0; (* overlaps 1 *)
       rect 8.0 8.0 9.0 9.0 (* isolated *) |]
  in
  let comps = Crossing.interaction_components boxes in
  Alcotest.(check int) "two components" 2 (Array.length comps);
  let sizes = Array.map Array.length comps in
  Array.sort compare sizes;
  Alcotest.(check (array int)) "sizes 1 and 3" [| 1; 3 |] sizes

let test_components_all_disjoint () =
  let boxes = Array.init 5 (fun i -> rect (float_of_int (3 * i)) 0.0 (float_of_int ((3 * i) + 1)) 1.0) in
  let comps = Crossing.interaction_components boxes in
  Alcotest.(check int) "all singletons" 5 (Array.length comps)

let test_interacting_pairs () =
  let boxes = [| rect 0.0 0.0 2.0 2.0; rect 1.0 1.0 3.0 3.0; rect 9.0 9.0 10.0 10.0 |] in
  Alcotest.(check (list (pair int int))) "single pair" [ (0, 1) ]
    (Crossing.interacting_pairs boxes)

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the nets" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20)
              (quad (float_range 0.0 8.0) (float_range 0.0 8.0)
                 (float_range 0.1 2.0) (float_range 0.1 2.0)))
    (fun specs ->
      let boxes =
        Array.of_list
          (List.map (fun (x, y, w, h) -> rect x y (x +. w) (y +. h)) specs)
      in
      let comps = Crossing.interaction_components boxes in
      let seen = Array.make (Array.length boxes) 0 in
      Array.iter (Array.iter (fun i -> seen.(i) <- seen.(i) + 1)) comps;
      Array.for_all (fun c -> c = 1) seen)

let prop_pairs_within_components =
  QCheck.Test.make ~name:"interacting pairs stay within one component" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 15)
              (quad (float_range 0.0 8.0) (float_range 0.0 8.0)
                 (float_range 0.1 2.0) (float_range 0.1 2.0)))
    (fun specs ->
      let boxes =
        Array.of_list
          (List.map (fun (x, y, w, h) -> rect x y (x +. w) (y +. h)) specs)
      in
      let comps = Crossing.interaction_components boxes in
      let comp_of = Array.make (Array.length boxes) (-1) in
      Array.iteri (fun ci members -> Array.iter (fun i -> comp_of.(i) <- ci) members) comps;
      List.for_all (fun (i, j) -> comp_of.(i) = comp_of.(j))
        (Crossing.interacting_pairs boxes))

let () =
  Alcotest.run "crossing"
    [ ( "index",
        [ Alcotest.test_case "counts crossings" `Quick test_index_counts_cross;
          Alcotest.test_case "excludes own net" `Quick test_index_excludes_own_net;
          Alcotest.test_case "no double counting" `Quick test_index_no_double_counting;
          Alcotest.test_case "matches brute force" `Quick test_index_matches_brute_force;
          Alcotest.test_case "estimator closure" `Quick test_estimator_closure ] );
      ( "interaction",
        [ Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "disjoint" `Quick test_components_all_disjoint;
          Alcotest.test_case "pairs" `Quick test_interacting_pairs;
          QCheck_alcotest.to_alcotest prop_components_partition;
          QCheck_alcotest.to_alcotest prop_pairs_within_components ] ) ]
