lib/optical/params.mli:
