lib/optical/loss.ml: Float List Params
