lib/optical/power.mli: Params
