lib/optical/wdm.mli: Operon_geom Segment
