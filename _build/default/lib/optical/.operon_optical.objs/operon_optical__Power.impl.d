lib/optical/power.ml: Params
