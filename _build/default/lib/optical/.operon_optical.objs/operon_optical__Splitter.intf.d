lib/optical/splitter.mli: Params
