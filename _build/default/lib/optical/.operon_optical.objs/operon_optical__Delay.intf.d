lib/optical/delay.mli:
