lib/optical/delay.ml:
