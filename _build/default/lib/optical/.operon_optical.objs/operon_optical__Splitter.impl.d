lib/optical/splitter.ml: Float List Loss Params
