lib/optical/wdm.ml: Float Operon_geom Point Segment
