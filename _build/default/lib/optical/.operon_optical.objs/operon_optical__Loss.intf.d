lib/optical/loss.mli: Params
