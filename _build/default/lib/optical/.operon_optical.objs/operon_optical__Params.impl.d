lib/optical/params.ml: Float List
