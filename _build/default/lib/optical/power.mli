(** Power model.

    Optical power follows Eq. (1): [p_o = p_mod * n_mod + p_det * n_det],
    where [n_mod]/[n_det] count conversion {e sites} of the hyper net
    topology — the WDM carries all of a hyper net's bits through the same
    conversion sites, which is exactly why wide buses amortize the EO/OE
    overhead (and why Table 1's optical powers undercut electrical by
    3.5x; see DESIGN.md Section 6 for the consistency derivation).
    Electrical power follows Eq. (6): every bit needs its own copper
    wire, so it scales with both wirelength and bit count. *)

val optical : Params.t -> n_mod:int -> n_det:int -> float
(** Eq. (1) for the given modulator and detector site counts. *)

val electrical : Params.t -> wirelength:float -> float
(** Energy per bit of an electrical route of the given rectilinear
    wirelength (cm). *)

val electrical_watts : Params.t -> wirelength:float -> float
(** Eq. (6) proper: dynamic power in Watts at the configured frequency
    (1 pJ/bit at 1 GHz = 1 mW). *)

val wiring : Params.t -> bits:int -> wirelength:float -> float
(** Electrical power of a hyper net: [bits] parallel wires of the given
    total tree wirelength. *)
