type stage_report = {
  stage : int;
  outputs : int;
  power_fraction : float;
  loss_db : float;
}

let ideal_split_db = 10.0 *. Float.log10 2.0

let cascade (p : Params.t) ~stages =
  if stages < 0 then invalid_arg "Splitter.cascade: negative stage count";
  let excess = p.Params.splitter_excess in
  List.init (stages + 1) (fun s ->
      let loss_db = float_of_int s *. (ideal_split_db +. excess) in
      { stage = s;
        outputs = 1 lsl s;
        power_fraction = Loss.db_to_fraction loss_db;
        loss_db })

let fanout_tree p ~sinks =
  if sinks <= 0 then invalid_arg "Splitter.fanout_tree: need at least one sink";
  if sinks = 1 then 0.0
  else begin
    let stages = int_of_float (Float.ceil (Float.log2 (float_of_int sinks))) in
    (10.0 *. Float.log10 (float_of_int sinks))
    +. (p.Params.splitter_excess *. float_of_int stages)
  end
