open Operon_geom

type orientation = Horizontal | Vertical

let orientation_of (s : Segment.t) =
  let dx = Float.abs (s.Segment.a.Point.x -. s.Segment.b.Point.x) in
  let dy = Float.abs (s.Segment.a.Point.y -. s.Segment.b.Point.y) in
  if dx >= dy then Horizontal else Vertical

type conn = { id : int; net : int; seg : Segment.t; bits : int }

let conn_coord c =
  let m = Point.midpoint c.seg.Segment.a c.seg.Segment.b in
  match orientation_of c.seg with
  | Horizontal -> m.Point.y
  | Vertical -> m.Point.x

let conn_span c =
  let a = c.seg.Segment.a and b = c.seg.Segment.b in
  match orientation_of c.seg with
  | Horizontal -> (Float.min a.Point.x b.Point.x, Float.max a.Point.x b.Point.x)
  | Vertical -> (Float.min a.Point.y b.Point.y, Float.max a.Point.y b.Point.y)

type track = {
  orient : orientation;
  mutable coord : float;
  mutable lo : float;
  mutable hi : float;
  capacity : int;
  mutable used : int;
}

let track_of_conn ~capacity c =
  if c.bits > capacity then invalid_arg "Wdm.track_of_conn: connection exceeds capacity";
  let lo, hi = conn_span c in
  { orient = orientation_of c.seg;
    coord = conn_coord c;
    lo;
    hi;
    capacity;
    used = c.bits }

let track_distance t c = Float.abs (t.coord -. conn_coord c)

let track_fits t c ~max_dist =
  t.used + c.bits <= t.capacity && track_distance t c <= max_dist

let track_add t c =
  if t.used + c.bits > t.capacity then invalid_arg "Wdm.track_add: capacity exceeded";
  let lo, hi = conn_span c in
  t.used <- t.used + c.bits;
  if lo < t.lo then t.lo <- lo;
  if hi > t.hi then t.hi <- hi

let track_length t = t.hi -. t.lo
