type t = {
  t_elec_per_cm : float;
  t_conversion : float;
  group_index : float;
}

let default = { t_elec_per_cm = 550.0; t_conversion = 50.0; group_index = 4.2 }

(* speed of light: 3e10 cm/s -> 1/(3e10) s/cm = 33.356 ps/cm in vacuum *)
let vacuum_ps_per_cm = 1e12 /. 2.99792458e10

let flight_ps_per_cm d = d.group_index *. vacuum_ps_per_cm

let electrical d ~length_cm =
  if length_cm < 0.0 then invalid_arg "Delay.electrical: negative length";
  d.t_elec_per_cm *. length_cm

let optical_link d ~length_cm =
  if length_cm < 0.0 then invalid_arg "Delay.optical_link: negative length";
  d.t_conversion +. (flight_ps_per_cm d *. length_cm)

let crossover_cm d =
  let per_cm_gap = d.t_elec_per_cm -. flight_ps_per_cm d in
  if per_cm_gap <= 0.0 then infinity else d.t_conversion /. per_cm_gap
