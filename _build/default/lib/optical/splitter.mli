(** Y-branch splitter cascades — the Figure 3(b) simulation.

    A 50-50 Y-branch halves the input power onto each of its two arms (a
    3.01 dB ideal split) and adds a small excess loss. Cascading [k]
    stages yields [2^k] outputs, each carrying [2^-k] of the input (times
    the accumulated excess). The paper's Fig. 3(b) shows exactly this for
    two cascaded stages. *)

type stage_report = {
  stage : int;  (** 0 = source, k = after k Y-branches *)
  outputs : int;  (** number of arms at this depth: 2^stage *)
  power_fraction : float;  (** normalized power on each arm *)
  loss_db : float;  (** per-arm loss relative to the source *)
}

val cascade : Params.t -> stages:int -> stage_report list
(** Reports for stage 0 .. [stages]. Raises [Invalid_argument] on a
    negative stage count. *)

val fanout_tree : Params.t -> sinks:int -> float
(** Per-sink dB loss of the minimal Y-branch tree reaching [sinks]
    endpoints (a [ceil(log2 sinks)]-stage cascade); 0 for a single sink.
    Equals {!Loss.splitting_arm} on power-of-two arm counts. *)

val ideal_split_db : float
(** 10*log10(2) ~ 3.0103 dB, the lossless 50-50 split. *)
