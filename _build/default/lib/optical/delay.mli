(** Interconnect delay model — an extension quantifying the paper's
    opening motivation ("interconnect delay becomes a bottleneck").

    Electrical wires follow a distributed-RC estimate with optimally
    repeated segments: delay grows linearly in length at
    [t_e_per_cm] ps/cm (repeatered global copper). Optical paths pay a
    fixed EO + OE conversion latency plus time-of-flight at [c / n_g]
    (group index ~4.2 for silicon waveguides): ~140 ps/cm of light flight
    versus ~500+ ps/cm of repeatered copper, so long hops win big and the
    crossover sits at a few millimetres. *)

type t = {
  t_elec_per_cm : float;  (** repeatered copper delay, ps/cm *)
  t_conversion : float;  (** EO + OE conversion latency, ps *)
  group_index : float;  (** waveguide group index (flight time = n_g/c) *)
}

val default : t
(** 550 ps/cm copper, 50 ps conversion, group index 4.2. *)

val flight_ps_per_cm : t -> float
(** Optical time of flight per centimetre: [n_g / c] in ps/cm (~140 at
    n_g = 4.2). *)

val electrical : t -> length_cm:float -> float
(** Source-to-sink delay of a repeatered copper route, ps. *)

val optical_link : t -> length_cm:float -> float
(** Delay of one optical link: conversion latency + time of flight, ps. *)

val crossover_cm : t -> float
(** Length where an optical link starts beating copper. *)
