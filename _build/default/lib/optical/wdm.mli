(** WDM waveguide tracks and the optical connections they carry.

    After co-design, each hyper net's optical part decomposes into
    point-to-point {e connections}; Section 4 of the paper shares WDM
    waveguides among parallel connections. A {e track} is an axis-aligned
    waveguide at a fixed perpendicular coordinate with a longitudinal span
    and a channel capacity. *)

open Operon_geom

type orientation = Horizontal | Vertical

val orientation_of : Segment.t -> orientation
(** Dominant direction of a segment (ties go to Horizontal). *)

type conn = {
  id : int;  (** dense connection index *)
  net : int;  (** owning hyper net *)
  seg : Segment.t;
  bits : int;  (** channels this connection occupies *)
}

val conn_coord : conn -> float
(** Perpendicular coordinate of the connection (midpoint y for horizontal
    connections, midpoint x for vertical ones). *)

val conn_span : conn -> float * float
(** Longitudinal extent [(lo, hi)] along the track direction. *)

type track = {
  orient : orientation;
  mutable coord : float;  (** perpendicular position of the waveguide *)
  mutable lo : float;  (** longitudinal span start *)
  mutable hi : float;  (** longitudinal span end *)
  capacity : int;
  mutable used : int;  (** channels currently assigned *)
}

val track_of_conn : capacity:int -> conn -> track
(** A fresh track placed exactly on a connection, loaded with its bits. *)

val track_fits : track -> conn -> max_dist:float -> bool
(** Can the connection ride this track: same orientation class is assumed;
    checks remaining capacity and perpendicular distance <= [max_dist]. *)

val track_add : track -> conn -> unit
(** Assign the connection: consumes capacity and extends the span. Raises
    [Invalid_argument] if capacity would be exceeded. *)

val track_length : track -> float

val track_distance : track -> conn -> float
(** Perpendicular distance between track and connection. *)
