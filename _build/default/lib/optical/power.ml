let optical (p : Params.t) ~n_mod ~n_det =
  if n_mod < 0 || n_det < 0 then invalid_arg "Power.optical: negative count";
  (p.Params.p_mod *. float_of_int n_mod) +. (p.Params.p_det *. float_of_int n_det)

let electrical p ~wirelength =
  if wirelength < 0.0 then invalid_arg "Power.electrical: negative length";
  Params.electrical_unit_energy p *. wirelength

let electrical_watts (p : Params.t) ~wirelength =
  (* pJ/bit * bits/s = pJ/s; 1e-12 converts to Watts. *)
  electrical p ~wirelength *. p.Params.freq *. 1e-12

let wiring p ~bits ~wirelength =
  if bits < 0 then invalid_arg "Power.wiring: negative bit count";
  float_of_int bits *. electrical p ~wirelength
