let sum a =
  (* Kahan compensated summation: benchmark power accumulations add many
     numbers spanning several orders of magnitude. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    a;
  !total

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) a in
    sum acc /. float_of_int n

let stddev a = sqrt (variance a)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let median a =
  if Array.length a = 0 then invalid_arg "Stats.median: empty array";
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then b.(lo)
  else
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let normalize a =
  let hi = Array.fold_left Float.max 0.0 a in
  if hi <= 0.0 then Array.copy a else Array.map (fun x -> x /. hi) a
