type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finalizer: the state advances by a fixed odd gamma and the
   output is a bijective scramble of the new state. *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Reject the low-entropy modulo bias only when bound is large; for the
     bounds used in this project (< 2^30) masking the high bits suffices. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let float g bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (mantissa *. 0x1.0p-53)

let float_range g lo hi =
  if lo > hi then invalid_arg "Prng.float_range: lo > hi";
  lo +. float g (hi -. lo)

let bool g = Int64.logand (bits64 g) 1L = 1L

let gaussian g ~mu ~sigma =
  let rec draw () =
    let u1 = float g 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float g 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))
