lib/util/prng.mli:
