lib/util/timer.mli:
