lib/util/stats.mli:
