let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

type budget = { deadline : float }

let budget s =
  if s <= 0.0 then { deadline = infinity } else { deadline = now () +. s }

let expired b = now () > b.deadline

let remaining b =
  if b.deadline = infinity then infinity else Float.max 0.0 (b.deadline -. now ())
