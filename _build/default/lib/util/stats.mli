(** Small summary-statistics helpers used by the benchmark harness and the
    experiment reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance; 0 for arrays shorter than 2. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** [(min, max)] of a non-empty array. Raises [Invalid_argument] if empty. *)

val sum : float array -> float
(** Compensated (Kahan) sum, stable for long benchmark accumulations. *)

val median : float array -> float
(** Median (does not mutate its argument); raises on empty input. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in \[0,100\], linear interpolation between
    order statistics; raises on empty input. *)

val normalize : float array -> float array
(** Scale so that the maximum becomes 1.0 (all-zero arrays stay zero). *)
