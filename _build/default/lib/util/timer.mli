(** Wall-clock timing for the Table 1 CPU columns and for budgeted solver
    runs (the ILP's 3000 s cap). *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)

type budget
(** A deadline that solvers poll to honour wall-clock caps. *)

val budget : float -> budget
(** [budget s] expires [s] seconds from now. Non-positive [s] never expires
    (an unlimited budget). *)

val expired : budget -> bool
(** Has the deadline passed? *)

val remaining : budget -> float
(** Seconds left; [infinity] for unlimited budgets. *)
