(** Deterministic pseudo-random number generation.

    All randomized components of OPERON (benchmark generation, K-Means
    seeding, tie-breaking) draw from this generator so that every run of the
    test suite and of the benchmark harness is reproducible bit-for-bit.
    The core is splitmix64, which passes BigCrush and needs only 64 bits of
    state, making independent streams cheap to fork. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators built from the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] duplicates the state so the copy can diverge from [g]. *)

val split : t -> t
(** [split g] advances [g] and returns an independent child generator.
    Streams of parent and child are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in \[0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform in \[0, bound). *)

val float_range : t -> float -> float -> float
(** [float_range g lo hi] is uniform in \[lo, hi). Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box-Muller transform. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty arrays. *)
