open Operon_optical
open Operon_steiner

type stats = { mean_worst_ps : float; max_worst_ps : float }

let candidate_worst_ps d (c : Candidate.t) =
  let topo = c.Candidate.topo in
  let root = Topology.root topo in
  let worst = ref 0.0 in
  (* DFS accumulating delay; a new optical link (EO+OE conversion pair)
     starts whenever an optical edge leaves an electrically-fed node. *)
  let rec walk v delay =
    if Topology.is_terminal topo v && v <> root then
      worst := Float.max !worst delay;
    List.iter
      (fun child ->
        let hop =
          match c.Candidate.labels.(child) with
          | Candidate.Electrical ->
              Delay.electrical d ~length_cm:(Topology.edge_length Topology.L1 topo child)
          | Candidate.Optical ->
              let flight =
                Delay.flight_ps_per_cm d
                *. Topology.edge_length Topology.L2 topo child
              in
              let entering_link =
                v = root || c.Candidate.labels.(v) = Candidate.Electrical
              in
              flight +. if entering_link then d.Delay.t_conversion else 0.0
        in
        walk child (delay +. hop))
      (Topology.children topo v)
  in
  walk root 0.0;
  !worst

let of_choice d ctx choice =
  let worsts =
    Array.mapi
      (fun i j -> candidate_worst_ps d ctx.Selection.cands.(i).(j))
      choice
  in
  { mean_worst_ps = Operon_util.Stats.mean worsts;
    max_worst_ps = Array.fold_left Float.max 0.0 worsts }

let selection d ctx choice = of_choice d ctx choice

let electrical_reference d ctx = of_choice d ctx (Selection.all_electrical ctx)
