(** Power-hotspot maps (paper Figure 9).

    Optical power (EO/OE conversion energy) is deposited at modulator and
    detector sites; electrical power is smeared along the copper wires.
    Normalized grids of GLOW vs OPERON visualize how co-design cools the
    electrical layer while keeping a similar optical conversion pattern. *)

open Operon_geom

type maps = {
  optical : Gridmap.t;
  electrical : Gridmap.t;
}

val of_selection :
  ?nx:int -> ?ny:int -> die:Rect.t -> Selection.ctx -> int array -> maps
(** Build both layers' maps for a selection (default 24x24 grid). *)

val electrical_of_design :
  ?nx:int -> ?ny:int -> Operon_optical.Params.t -> Signal.design -> Gridmap.t
(** Electrical map of the pure-electrical baseline: per-bit RSMT trees
    smeared onto the grid. *)

val summary : maps -> string
(** Peak and total of both layers, for EXPERIMENTS.md. *)
