(** End-to-end OPERON flow (paper Figure 2).

    signal processing -> baseline generation -> co-design candidates ->
    candidate selection (ILP or LR) -> WDM placement -> network-flow
    assignment. *)

open Operon_util
open Operon_optical

type mode = Ilp | Lr

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;  (** selected candidate per hyper net *)
  power : float;  (** total selected power, pJ/bit units *)
  select_seconds : float;
  ilp : Ilp_select.result option;  (** present when [mode = Ilp] *)
  lr : Lr_select.result option;  (** present when [mode = Lr] *)
  placement : Wdm_place.placement;
  assignment : Assign.result;
}

val prepare :
  ?processing:Processing.config ->
  ?max_cands_per_net:int ->
  Prng.t ->
  Params.t ->
  Signal.design ->
  Hypernet.t array * Selection.ctx
(** Processing plus candidate generation: hyper nets, then co-design
    candidates for each (crossing estimates taken against the other nets'
    optical baselines). *)

val run :
  ?processing:Processing.config ->
  ?max_cands_per_net:int ->
  ?mode:mode ->
  ?ilp_budget:float ->
  Prng.t ->
  Params.t ->
  Signal.design ->
  t
(** The complete flow ([mode] defaults to [Lr]; [ilp_budget] defaults to
    3000 s as in the paper). The returned selection is feasible and the
    WDM stages are run on it. *)

val run_prepared :
  ?mode:mode ->
  ?ilp_budget:float ->
  Params.t ->
  Signal.design ->
  Hypernet.t array ->
  Selection.ctx ->
  t
(** Selection + WDM stages on an existing candidate context — lets Table 1
    compare ILP and LR on identical candidates without re-preparing. *)
