(** Shared machinery for the two candidate-selection engines (Formula 3).

    A {!ctx} precomputes, for the whole design: the candidate arrays, the
    optical bounding box of every hyper net, the Section 3.3 interaction
    neighbourhoods (only nets with overlapping boxes can cross), and each
    net's electrical fallback. Both the ILP and the Lagrangian solver
    evaluate selections through this context, so "feasible" and "power"
    mean exactly the same thing to both. *)

open Operon_geom
open Operon_optical

type ctx = {
  params : Params.t;
  cands : Candidate.t array array;  (** candidates per hyper net *)
  bboxes : Rect.t option array;
      (** optical bounding box per net ([None] if no candidate has optical
          geometry) *)
  neighbors : int array array;
      (** nets whose optical boxes overlap this net's box *)
  elec_idx : int array;  (** per net: index of its cheapest pure-electrical
                             candidate — the Formula (3) [a_ie] variable *)
}

val make_ctx : Params.t -> Candidate.t list array -> ctx
(** Raises [Invalid_argument] if some net has no candidates or lacks a
    pure-electrical fallback. *)

val selected : ctx -> int array -> int -> Candidate.t
(** Candidate currently chosen for a net. *)

val power : ctx -> int array -> float
(** Total power of a selection (sum over nets of candidate power). *)

val net_path_losses : ctx -> int array -> int -> float array
(** Actual loss per optical path of a net's chosen candidate: intrinsic
    plus crossing loss against the neighbours' current choices. *)

val worst_violation : ctx -> int array -> float
(** Max over all nets and paths of [loss - l_max]; <= 0 means the whole
    selection meets the detection constraints. *)

val feasible : ctx -> int array -> bool

val all_electrical : ctx -> int array
(** The always-feasible selection that picks every net's fallback. *)

val greedy : ctx -> int array
(** Min-power candidate per net, ignoring crossing coupling (intrinsic
    feasibility is guaranteed by construction). May be infeasible. *)

val polish : ?rounds:int -> ctx -> int array -> int array
(** Local improvement: first repair (nets on violated paths revert to
    their electrical fallback until feasible), then greedily retry
    cheaper candidates per net while global feasibility holds. The result
    is always feasible. *)
