open Operon_geom
open Operon_optical

type ctx = {
  params : Params.t;
  cands : Candidate.t array array;
  bboxes : Rect.t option array;
  neighbors : int array array;
  elec_idx : int array;
}

let optical_bbox (cands : Candidate.t array) =
  let pts = ref [] in
  Array.iter
    (fun (c : Candidate.t) ->
      Array.iter
        (fun (s : Segment.t) ->
          pts := s.Segment.a :: s.Segment.b :: !pts)
        c.Candidate.opt_segments)
    cands;
  match !pts with [] -> None | l -> Some (Rect.of_points (Array.of_list l))

let make_ctx params cand_lists =
  let cands = Array.map Array.of_list cand_lists in
  Array.iteri
    (fun i arr ->
      if Array.length arr = 0 then
        invalid_arg (Printf.sprintf "Selection.make_ctx: net %d has no candidates" i))
    cands;
  let elec_idx =
    Array.mapi
      (fun i arr ->
        let best = ref (-1) in
        Array.iteri
          (fun j (c : Candidate.t) ->
            if c.Candidate.pure_electrical
               && (!best = -1 || c.Candidate.power < arr.(!best).Candidate.power)
            then best := j)
          arr;
        if !best = -1 then
          invalid_arg
            (Printf.sprintf "Selection.make_ctx: net %d lacks an electrical fallback" i);
        !best)
      cands
  in
  let bboxes = Array.map optical_bbox cands in
  let n = Array.length cands in
  (* Pooled optical geometry per net, for refining the bbox filter: two
     nets are true neighbours only when some candidate pair actually
     crosses — overlapping boxes of long parallel corridors are common
     and coupling-free. *)
  let pooled =
    Array.map
      (fun arr ->
        Array.to_list arr
        |> List.concat_map (fun (c : Candidate.t) ->
               Array.to_list c.Candidate.opt_segments)
        |> Array.of_list)
      cands
  in
  let lists = Array.make n [] in
  for i = 0 to n - 1 do
    match bboxes.(i) with
    | None -> ()
    | Some bi ->
        for j = i + 1 to n - 1 do
          match bboxes.(j) with
          | Some bj
            when Rect.overlaps bi bj
                 && Segment.count_crossings pooled.(i) pooled.(j) > 0 ->
              lists.(i) <- j :: lists.(i);
              lists.(j) <- i :: lists.(j)
          | _ -> ()
        done
  done;
  let neighbors = Array.map (fun l -> Array.of_list (List.rev l)) lists in
  { params; cands; bboxes; neighbors; elec_idx }

let selected ctx choice i = ctx.cands.(i).(choice.(i))

let power ctx choice =
  let acc = ref 0.0 in
  Array.iteri (fun i j -> acc := !acc +. ctx.cands.(i).(j).Candidate.power) choice;
  !acc

let net_path_losses ctx choice i =
  let c = selected ctx choice i in
  Array.mapi
    (fun p (path : Candidate.path) ->
      let crossing =
        Array.fold_left
          (fun acc m ->
            let other = selected ctx choice m in
            if Array.length other.Candidate.opt_segments = 0 then acc
            else acc +. Candidate.crossing_loss_on_path ctx.params c p other)
          0.0 ctx.neighbors.(i)
      in
      path.Candidate.intrinsic_loss +. crossing)
    c.Candidate.paths

let worst_violation ctx choice =
  let l_max = ctx.params.Params.l_max in
  let worst = ref neg_infinity in
  Array.iteri
    (fun i _ ->
      Array.iter
        (fun loss -> if loss -. l_max > !worst then worst := loss -. l_max)
        (net_path_losses ctx choice i))
    ctx.cands;
  if !worst = neg_infinity then 0.0 else !worst

let feasible ctx choice = worst_violation ctx choice <= 1e-9

let all_electrical ctx = Array.copy ctx.elec_idx

let greedy ctx =
  Array.map
    (fun arr ->
      let best = ref 0 in
      Array.iteri
        (fun j (c : Candidate.t) ->
          if c.Candidate.power < arr.(!best).Candidate.power then best := j)
        arr;
      !best)
    ctx.cands

(* Does net i currently sit on any violated path, either as the owner of
   the path or as a crosser of a neighbour's path? Checking only i and its
   neighbours keeps repair local. *)
let net_ok ctx choice i =
  let l_max = ctx.params.Params.l_max in
  let check m =
    Array.for_all (fun loss -> loss <= l_max +. 1e-9) (net_path_losses ctx choice m)
  in
  check i && Array.for_all check ctx.neighbors.(i)

let polish ?(rounds = 3) ctx choice0 =
  let n = Array.length ctx.cands in
  let choice = Array.copy choice0 in
  (* Repair: demote offending nets to their electrical fallback until the
     selection is feasible. Electrical candidates have no optical paths
     and no crossings, so this terminates at the all-electrical point. *)
  let guard = ref 0 in
  while (not (feasible ctx choice)) && !guard <= n do
    incr guard;
    let fixed = ref false in
    for i = 0 to n - 1 do
      if (not !fixed) && choice.(i) <> ctx.elec_idx.(i) && not (net_ok ctx choice i)
      then begin
        choice.(i) <- ctx.elec_idx.(i);
        fixed := true
      end
    done;
    if not !fixed then
      (* Violations exist but no single demotable net found: demote the
         first non-electrical net outright. *)
      (try
         for i = 0 to n - 1 do
           if choice.(i) <> ctx.elec_idx.(i) then begin
             choice.(i) <- ctx.elec_idx.(i);
             raise Exit
           end
         done
       with Exit -> ())
  done;
  (* Improve: per net, adopt the cheapest candidate that keeps the local
     neighbourhood (and hence the whole selection) feasible. *)
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      let current_power = ctx.cands.(i).(choice.(i)).Candidate.power in
      let old = choice.(i) in
      let best = ref old and best_power = ref current_power in
      Array.iteri
        (fun j (c : Candidate.t) ->
          if j <> old && c.Candidate.power < !best_power then begin
            choice.(i) <- j;
            if net_ok ctx choice i then begin
              best := j;
              best_power := c.Candidate.power
            end
          end)
        ctx.cands.(i);
      choice.(i) <- !best
    done
  done;
  choice
