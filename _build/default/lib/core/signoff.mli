(** Post-route loss signoff.

    Selection reasons about chord geometry and a bundled crossing
    estimate (DESIGN.md §6); after WDM placement and assignment the
    design has {e physical} geometry — every connection rides an actual
    waveguide track, reached by perpendicular jogs. This module rebuilds
    that physical view and re-verifies every optical path:

    - routed length = jog + track run + jog (detour over the chord);
    - crossings are counted between physical waveguides (track-track
      intersections restricted to the portions a connection traverses),
      which is the quantity the bundle factor approximates;
    - splitting loss carries over unchanged from the candidate.

    The report quantifies both the detection margin of the final design
    and the quality of the estimation model the optimizer used. *)

type report = {
  nets_checked : int;  (** nets with optical geometry *)
  paths_checked : int;
  worst_loss_db : float;  (** max physical path loss *)
  violations : int;  (** paths whose physical loss exceeds the budget *)
  mean_detour_ratio : float;
      (** routed length / chord length, averaged over connections (>= 1) *)
  waveguide_crossings : int;
      (** physical track-track crossing count of the whole design *)
  mean_estimated_crossing_db : float;
      (** mean per-path crossing loss the optimizer assumed (bundled) *)
  mean_physical_crossing_db : float;
      (** mean per-path crossing loss after routing *)
}

val run :
  Operon_optical.Params.t ->
  Selection.ctx ->
  int array ->
  Wdm_place.placement ->
  Assign.result ->
  report
(** Signoff of a completed flow. The placement must be the one produced
    from exactly this selection ({!Wdm_place.connections_of_selection}
    ordering is relied upon). *)
