(** Timing analysis over selected routes — quantifies the paper's opening
    motivation (interconnect delay) on the synthesized topologies.

    The worst source-to-sink delay of a candidate walks its labelled tree:
    electrical edges at the repeatered-copper rate, optical links at
    conversion latency + time of flight (see {!Operon_optical.Delay}). *)

open Operon_optical

type stats = {
  mean_worst_ps : float;  (** mean over hyper nets of worst sink delay *)
  max_worst_ps : float;  (** slowest sink in the design *)
}

val candidate_worst_ps : Delay.t -> Candidate.t -> float
(** Worst source-to-sink delay of one candidate, ps (0 for trivial
    single-pin nets). *)

val selection : Delay.t -> Selection.ctx -> int array -> stats
(** Delay statistics of a selection. *)

val electrical_reference : Delay.t -> Selection.ctx -> stats
(** The same statistics with every net forced onto its electrical
    fallback — the "before optics" yardstick. *)
