(** Signal processing: from raw signal groups to hyper nets (Section 3.1).

    Two clustering passes run per group:
    - {e top-down}: capacity-constrained K-Means over the bits (keyed by
      each bit's pin centroid) splits groups that exceed the WDM channel
      capacity;
    - {e bottom-up}: agglomerative merging of the cluster's electrical pins
      under a distance threshold builds the hyper pins.

    The root hyper pin is the one holding the most bit drivers. *)

open Operon_util
open Operon_optical

type config = {
  merge_threshold : float;
      (** hyper-pin merge distance, cm (default 0.05 = 500 um) *)
  kmeans_max_iter : int;
  kmeans_threshold : float;  (** variance-decrease stopping ratio *)
}

val default_config : config

val run : ?config:config -> Prng.t -> Params.t -> Signal.design -> Hypernet.t array
(** Build the hyper nets of a design. Every produced hyper net respects
    [Params.wdm_capacity]; ids are dense in emission order. *)

val stats : Hypernet.t array -> int * int * int
(** [(net_total, hnet_count, hpin_count)] — the paper's #Net/#HNet/#HPin
    columns for a processed design. *)
