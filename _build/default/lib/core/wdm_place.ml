open Operon_optical

type placement = {
  conns : Wdm.conn array;
  tracks : Wdm.track array;
  assignment : int array;
}

let connections_of_selection ctx choice =
  let acc = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i j ->
      let c = ctx.Selection.cands.(i).(j) in
      Array.iter
        (fun seg ->
          acc :=
            { Wdm.id = !next;
              net = c.Candidate.hnet.Hypernet.id;
              seg;
              bits = c.Candidate.hnet.Hypernet.bits }
            :: !acc;
          incr next)
        c.Candidate.opt_segments)
    choice;
  Array.of_list (List.rev !acc)

let place params conns =
  let capacity = params.Params.wdm_capacity in
  let dis_u = params.Params.dis_u in
  let assignment = Array.make (Array.length conns) (-1) in
  let tracks = ref [] in
  let ntracks = ref 0 in
  let sweep orient =
    let mine =
      Array.to_list conns
      |> List.filter (fun c -> Wdm.orientation_of c.Wdm.seg = orient)
      |> List.sort (fun a b -> Float.compare (Wdm.conn_coord a) (Wdm.conn_coord b))
    in
    let current = ref None in
    List.iter
      (fun c ->
        let open_track () =
          let t = Wdm.track_of_conn ~capacity c in
          tracks := t :: !tracks;
          assignment.(c.Wdm.id) <- !ntracks;
          incr ntracks;
          current := Some (t, !ntracks - 1)
        in
        match !current with
        | None -> open_track ()
        | Some (t, idx) ->
            if Wdm.track_fits t c ~max_dist:dis_u then begin
              Wdm.track_add t c;
              assignment.(c.Wdm.id) <- idx
            end
            else open_track ())
      mine
  in
  sweep Wdm.Horizontal;
  sweep Wdm.Vertical;
  { conns; tracks = Array.of_list (List.rev !tracks); assignment }

let legalize params tracks =
  let dis_l = params.Params.dis_l in
  let moved = ref 0 in
  let fix orient =
    let mine =
      Array.to_list tracks
      |> List.filter (fun t -> t.Wdm.orient = orient)
      |> List.sort (fun a b -> Float.compare a.Wdm.coord b.Wdm.coord)
    in
    let rec sweep = function
      | a :: (b :: _ as rest) ->
          if b.Wdm.coord -. a.Wdm.coord < dis_l then begin
            b.Wdm.coord <- a.Wdm.coord +. dis_l;
            incr moved
          end;
          sweep rest
      | _ -> ()
    in
    sweep mine
  in
  fix Wdm.Horizontal;
  fix Wdm.Vertical;
  !moved

let track_count p = Array.length p.tracks
