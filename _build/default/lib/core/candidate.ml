open Operon_geom
open Operon_optical
open Operon_steiner

type label = Optical | Electrical

type path = {
  start_node : int;
  sink_node : int;
  intrinsic_loss : float;
  segments : Segment.t array;
}

type t = {
  hnet : Hypernet.t;
  topo : Topology.t;
  labels : label array;
  conversion_power : float;
  wiring_power : float;
  power : float;
  n_mod : int;
  n_det : int;
  mod_nodes : int array;
  det_nodes : int array;
  elec_wirelength : float;
  opt_wirelength : float;
  opt_segments : Segment.t array;
  elec_segments : Segment.t array;
  paths : path array;
  max_intrinsic_loss : float;
  pure_electrical : bool;
}

(* Structural facts about one node under a labelling. *)
type node_role = {
  incoming_optical : bool;  (* parent edge labelled O (false at the root) *)
  o_children : int list;
  e_children : int list;
  has_modulator : bool;
  has_detector : bool;
  arms : int;  (* splitting arms where this node distributes light *)
}

let role topo labels v =
  let incoming_optical = Topology.parent topo v >= 0 && labels.(v) = Optical in
  let o_children, e_children =
    List.partition (fun c -> labels.(c) = Optical) (Topology.children topo v)
  in
  let n_o = List.length o_children in
  let is_term = Topology.is_terminal topo v in
  if incoming_optical then begin
    (* Light arrives from above: it is detected here (terminal or handover
       to electrical children) and/or relayed into optical children. *)
    let tap = is_term || e_children <> [] in
    let arms = n_o + if tap then 1 else 0 in
    if arms = 0 then
      invalid_arg "Candidate: optical edge delivers light nowhere";
    { incoming_optical;
      o_children;
      e_children;
      has_modulator = false;
      has_detector = tap;
      arms }
  end
  else begin
    (* Electrically fed (or the root driver): optical children need a
       modulator here. *)
    let arms = n_o in
    { incoming_optical;
      o_children;
      e_children;
      has_modulator = n_o > 0;
      has_detector = false;
      arms }
  end

let of_labels params hnet topo labels =
  let n = Topology.node_count topo in
  if Array.length labels <> n then invalid_arg "Candidate.of_labels: label count";
  let labels = Array.copy labels in
  labels.(Topology.root topo) <- Electrical;
  let roles = Array.init n (role topo labels) in
  let mod_nodes = ref [] and det_nodes = ref [] in
  Array.iteri
    (fun v r ->
      if r.has_modulator then mod_nodes := v :: !mod_nodes;
      if r.has_detector then det_nodes := v :: !det_nodes)
    roles;
  let mod_nodes = Array.of_list (List.rev !mod_nodes) in
  let det_nodes = Array.of_list (List.rev !det_nodes) in
  let n_mod = ref (Array.length mod_nodes) and n_det = ref (Array.length det_nodes) in
  let elec_wl = ref 0.0 and opt_wl = ref 0.0 in
  let opt_segs = ref [] and elec_segs = ref [] in
  for v = 0 to n - 1 do
    if Topology.parent topo v >= 0 then begin
      let seg = Topology.segment_of_edge topo v in
      match labels.(v) with
      | Optical ->
          opt_wl := !opt_wl +. Topology.edge_length Topology.L2 topo v;
          opt_segs := seg :: !opt_segs
      | Electrical ->
          elec_wl := !elec_wl +. Topology.edge_length Topology.L1 topo v;
          elec_segs := seg :: !elec_segs
    end
  done;
  (* Optical paths: descend from every modulator node through contiguous
     optical edges, accumulating propagation and splitting; emit a path at
     every detector reached. *)
  let paths = ref [] in
  let rec descend ~start ~loss ~segs v =
    let r = roles.(v) in
    let loss = loss +. Loss.splitting_arm params r.arms in
    if r.has_detector then
      paths :=
        { start_node = start;
          sink_node = v;
          intrinsic_loss = loss;
          segments = Array.of_list (List.rev segs) }
        :: !paths;
    List.iter
      (fun c ->
        let seg = Topology.segment_of_edge topo c in
        let hop = Loss.propagation params (Topology.edge_length Topology.L2 topo c) in
        descend ~start ~loss:(loss +. hop) ~segs:(seg :: segs) c)
      r.o_children
  in
  Array.iteri
    (fun v r -> if r.has_modulator then descend ~start:v ~loss:0.0 ~segs:[] v)
    roles;
  let paths = Array.of_list (List.rev !paths) in
  let max_intrinsic =
    Array.fold_left (fun acc p -> Float.max acc p.intrinsic_loss) 0.0 paths
  in
  let conversion_power = Power.optical params ~n_mod:!n_mod ~n_det:!n_det in
  let wiring_power =
    Power.wiring params ~bits:hnet.Hypernet.bits ~wirelength:!elec_wl
  in
  { hnet;
    topo;
    labels;
    conversion_power;
    wiring_power;
    power = conversion_power +. wiring_power;
    n_mod = !n_mod;
    n_det = !n_det;
    mod_nodes;
    det_nodes;
    elec_wirelength = !elec_wl;
    opt_wirelength = !opt_wl;
    opt_segments = Array.of_list !opt_segs;
    elec_segments = Array.of_list !elec_segs;
    paths;
    max_intrinsic_loss = max_intrinsic;
    pure_electrical = !n_mod = 0 && !n_det = 0 }

let electrical params hnet topo =
  of_labels params hnet topo
    (Array.make (Topology.node_count topo) Electrical)

let crossings_between a b =
  Segment.count_crossings a.opt_segments b.opt_segments

let crossing_loss_on_path params c p other =
  if p < 0 || p >= Array.length c.paths then
    invalid_arg "Candidate.crossing_loss_on_path: bad path index";
  let crossings =
    Segment.count_crossings c.paths.(p).segments other.opt_segments
  in
  Loss.crossing_bundled params crossings

let loss_feasible params c =
  Array.for_all (fun p -> Loss.detectable params p.intrinsic_loss) c.paths

let describe c =
  let label_string =
    String.concat ""
      (List.map
         (fun (_, v) -> match c.labels.(v) with Optical -> "O" | Electrical -> "E")
         (List.sort compare (Topology.edges c.topo)))
  in
  Printf.sprintf
    "cand(hnet=%d bits=%d labels=%s mod=%d det=%d powr=%.3f loss=%.2fdB%s)"
    c.hnet.Hypernet.id c.hnet.Hypernet.bits label_string c.n_mod c.n_det c.power
    c.max_intrinsic_loss
    (if c.pure_electrical then " pureE" else "")
