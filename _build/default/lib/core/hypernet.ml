open Operon_geom

type hyper_pin = { center : Point.t; pin_count : int; source_count : int }

type t = {
  id : int;
  group : int;
  bits : int;
  pins : hyper_pin array;
  root : int;
}

let make ~id ~group ~bits ~pins =
  if Array.length pins = 0 then invalid_arg "Hypernet.make: no hyper pins";
  if bits <= 0 then invalid_arg "Hypernet.make: non-positive bit count";
  let root = ref 0 in
  Array.iteri
    (fun i hp -> if hp.source_count > pins.(!root).source_count then root := i)
    pins;
  { id; group; bits; pins; root = !root }

let centers t =
  let n = Array.length t.pins in
  Array.init n (fun i ->
      if i = 0 then t.pins.(t.root).center
      else if i <= t.root then t.pins.(i - 1).center
      else t.pins.(i).center)

let bbox t = Rect.of_points (Array.map (fun hp -> hp.center) t.pins)

let pin_count t = Array.length t.pins

let is_trivial t = Array.length t.pins <= 1
