open Operon_geom
open Operon_optical
open Operon_steiner

type maps = { optical : Gridmap.t; electrical : Gridmap.t }

let of_selection ?(nx = 24) ?(ny = 24) ~die ctx choice =
  let params = ctx.Selection.params in
  let optical = Gridmap.create die ~nx ~ny in
  let electrical = Gridmap.create die ~nx ~ny in
  let unit_e = Params.electrical_unit_energy params in
  Array.iteri
    (fun i j ->
      let c = ctx.Selection.cands.(i).(j) in
      let bits = float_of_int c.Candidate.hnet.Hypernet.bits in
      Array.iter
        (fun v ->
          Gridmap.deposit_point optical
            (Topology.position c.Candidate.topo v)
            params.Params.p_mod)
        c.Candidate.mod_nodes;
      Array.iter
        (fun v ->
          Gridmap.deposit_point optical
            (Topology.position c.Candidate.topo v)
            params.Params.p_det)
        c.Candidate.det_nodes;
      Array.iter
        (fun seg ->
          (* Electrical dissipation scales with rectilinear length even
             though the drawn segment is the direct chord. *)
          let mass = bits *. unit_e *. Segment.length_l1 seg in
          Gridmap.deposit_segment electrical seg mass)
        c.Candidate.elec_segments)
    choice;
  { optical; electrical }

let electrical_of_design ?(nx = 24) ?(ny = 24) params (design : Signal.design) =
  let grid = Gridmap.create design.Signal.die ~nx ~ny in
  let unit_e = Params.electrical_unit_energy params in
  Array.iter
    (fun (g : Signal.group) ->
      Array.iter
        (fun b ->
          let pins = Signal.bit_pins b in
          if Array.length pins > 1 then begin
            let topo = Rsmt.tree pins ~root:0 in
            Array.iter
              (fun seg ->
                Gridmap.deposit_segment grid seg (unit_e *. Segment.length_l1 seg))
              (Topology.segments topo)
          end)
        g.Signal.bits)
    design.Signal.groups;
  grid

let summary m =
  Printf.sprintf
    "optical: peak=%.3f total=%.3f | electrical: peak=%.3f total=%.3f"
    (Gridmap.peak m.optical) (Gridmap.total m.optical)
    (Gridmap.peak m.electrical) (Gridmap.total m.electrical)
