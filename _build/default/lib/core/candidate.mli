(** Materialized optical-electrical route candidates.

    A candidate is one complete labelling of a baseline topology: every
    tree edge is implemented either as an optical WDM connection or as
    electrical wires (paper Fig. 5c). Materialization derives everything
    the later stages need — EO/OE conversion counts, per-bit power,
    optical-link paths with their intrinsic (propagation + splitting)
    losses, and the segment geometry used for crossing-loss coupling, WDM
    assignment and hotspot maps.

    Conversion semantics: the driver is electrical at the root hyper pin.
    A modulator is placed where an electrical region feeds one or more
    optical child edges; light splits where several optical branches (or a
    detector tap) leave one node; a detector is placed where light reaches
    a terminal hyper pin or must hand over to electrical child edges. *)

open Operon_geom
open Operon_optical
open Operon_steiner

type label = Optical | Electrical

type path = {
  start_node : int;  (** modulator node topping the optical link *)
  sink_node : int;  (** detector node this path reaches *)
  intrinsic_loss : float;
      (** propagation + splitting loss, dB (crossing loss is coupled to
          other nets' selections and added by the ILP/LR stages) *)
  segments : Segment.t array;  (** optical edges from start to sink *)
}

type t = {
  hnet : Hypernet.t;
  topo : Topology.t;
  labels : label array;
      (** [labels.(v)] labels the edge from node [v] to its parent; the
          root entry is meaningless and fixed to [Electrical] *)
  conversion_power : float;
      (** Eq. (1): modulator + detector sites, amortized over the WDM's
          parallel bits *)
  wiring_power : float;  (** Eq. (6): bits x unit energy x L1 wirelength *)
  power : float;  (** [conversion_power + wiring_power] *)
  n_mod : int;  (** modulators per bit *)
  n_det : int;  (** detectors per bit *)
  mod_nodes : int array;  (** topology nodes carrying a modulator *)
  det_nodes : int array;  (** topology nodes carrying a detector *)
  elec_wirelength : float;  (** rectilinear (L1) length of E edges, cm *)
  opt_wirelength : float;  (** Euclidean (L2) length of O edges, cm *)
  opt_segments : Segment.t array;
  elec_segments : Segment.t array;
  paths : path array;  (** one per optical source-to-detector path *)
  max_intrinsic_loss : float;  (** max over [paths] (0 when none) *)
  pure_electrical : bool;  (** no optical edge at all *)
}

val of_labels : Params.t -> Hypernet.t -> Topology.t -> label array -> t
(** Evaluate a labelling. Raises [Invalid_argument] when the labelling is
    inconsistent: an optical edge must deliver its light somewhere (every
    node whose parent edge is optical must be a terminal or have an
    optical or electrical continuation that consumes it — concretely, a
    Steiner node with an optical parent edge and no children at all, which
    cannot occur in pruned topologies). *)

val electrical : Params.t -> Hypernet.t -> Topology.t -> t
(** The all-electrical labelling of a topology — the [a_ie] fallback
    variable of Formula (3), always loss-feasible. *)

val crossings_between : t -> t -> int
(** Proper crossings between the optical segments of two candidates. *)

val crossing_loss_on_path : Params.t -> t -> int -> t -> float
(** [crossing_loss_on_path params c p other] — the Formula (3c) term
    [l_x(i,j,m,n,p)]: beta times the number of crossings between path [p]
    of candidate [c] and the optical segments of [other]. *)

val loss_feasible : Params.t -> t -> bool
(** Intrinsic losses of all paths within the detection budget. *)

val describe : t -> string
(** One-line summary for logs and the Fig. 5 example output. *)
