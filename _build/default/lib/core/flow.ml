open Operon_steiner

type mode = Ilp | Lr

type t = {
  design : Signal.design;
  hnets : Hypernet.t array;
  ctx : Selection.ctx;
  mode : mode;
  choice : int array;
  power : float;
  select_seconds : float;
  ilp : Ilp_select.result option;
  lr : Lr_select.result option;
  placement : Wdm_place.placement;
  assignment : Assign.result;
}

let prepare ?processing ?(max_cands_per_net = 10) rng params design =
  let hnets = Processing.run ?config:processing rng params design in
  (* Crossing loss is bundled by the design's expected waveguide channel
     occupancy; the adjusted parameters travel inside the ctx. *)
  let params =
    let nets, hn, _ = Processing.stats hnets in
    if hn = 0 then params
    else
      Operon_optical.Params.auto_bundle params
        ~mean_bits:(float_of_int nets /. float_of_int hn)
  in
  (* Optical baseline segments of every hyper net feed the crossing
     estimator used while pruning the co-design DP. *)
  let baseline_segments =
    Array.to_list hnets
    |> List.concat_map (fun hnet ->
           let terminals = Hypernet.centers hnet in
           if Array.length terminals <= 1 then []
           else
             let topo = Bi1s.build Topology.L2 terminals ~root:0 in
             Array.to_list (Topology.segments topo)
             |> List.map (fun s -> (hnet.Hypernet.id, s)))
    |> Array.of_list
  in
  let index = Crossing.build_index ~die:design.Signal.die baseline_segments in
  let cand_lists =
    Array.map
      (fun hnet ->
        let crossing_est = Crossing.estimator index ~net:hnet.Hypernet.id in
        Codesign.for_hypernet ~max_total:max_cands_per_net ~crossing_est params hnet)
      hnets
  in
  (hnets, Selection.make_ctx params cand_lists)

let run_prepared ?(mode = Lr) ?(ilp_budget = 3000.0) params design hnets ctx =
  let (choice, select_seconds, ilp, lr) =
    match mode with
    | Ilp ->
        let r = Ilp_select.select ~budget_seconds:ilp_budget ctx in
        (r.Ilp_select.choice, r.Ilp_select.elapsed, Some r, None)
    | Lr ->
        let r = Lr_select.select ctx in
        (r.Lr_select.choice, r.Lr_select.elapsed, None, Some r)
  in
  let conns = Wdm_place.connections_of_selection ctx choice in
  let placement = Wdm_place.place params conns in
  ignore (Wdm_place.legalize params placement.Wdm_place.tracks);
  let assignment = Assign.run params placement in
  { design;
    hnets;
    ctx;
    mode;
    choice;
    power = Selection.power ctx choice;
    select_seconds;
    ilp;
    lr;
    placement;
    assignment }

let run ?processing ?max_cands_per_net ?mode ?ilp_budget rng params design =
  let hnets, ctx = prepare ?processing ?max_cands_per_net rng params design in
  run_prepared ?mode ?ilp_budget params design hnets ctx
