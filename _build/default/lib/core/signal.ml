open Operon_geom

type bit = { source : Point.t; sinks : Point.t array }

let bit ~source ~sinks =
  if Array.length sinks = 0 then invalid_arg "Signal.bit: a bit needs at least one sink";
  { source; sinks }

let bit_pins b = Array.append [| b.source |] b.sinks

type group = { name : string; bits : bit array }

let group ~name ~bits =
  if Array.length bits = 0 then invalid_arg "Signal.group: a group needs at least one bit";
  { name; bits }

type design = { die : Rect.t; groups : group array }

let design ~die ~groups =
  Array.iter
    (fun g ->
      Array.iter
        (fun b ->
          Array.iter
            (fun p ->
              if not (Rect.contains die p) then
                invalid_arg
                  (Printf.sprintf "Signal.design: pin of group %S outside the die" g.name))
            (bit_pins b))
        g.bits)
    groups;
  { die; groups }

let net_count d =
  Array.fold_left (fun acc g -> acc + Array.length g.bits) 0 d.groups

let pin_count d =
  Array.fold_left
    (fun acc g ->
      Array.fold_left (fun acc b -> acc + 1 + Array.length b.sinks) acc g.bits)
    0 d.groups

let group_bbox g =
  let pins =
    Array.concat (Array.to_list (Array.map bit_pins g.bits))
  in
  Rect.of_points pins
