open Operon_geom
open Operon_optical

type report = {
  nets_checked : int;
  paths_checked : int;
  worst_loss_db : float;
  violations : int;
  mean_detour_ratio : float;
  waveguide_crossings : int;
  mean_estimated_crossing_db : float;
  mean_physical_crossing_db : float;
}

(* The waveguide a connection physically uses: the assigned track with the
   largest share of its bits (a split connection's secondary tracks run in
   parallel and add no loss to the primary analysis). Falls back to the
   placement track when the assignment has no flow (cannot happen for
   Assign.run results). *)
let primary_track (assignment : Assign.result) placement ci =
  match
    List.sort (fun (_, b1) (_, b2) -> compare b2 b1) assignment.Assign.flows.(ci)
  with
  | (w, _) :: _ -> Some assignment.Assign.tracks.(w)
  | [] ->
      let w = placement.Wdm_place.assignment.(ci) in
      if w >= 0 && w < Array.length placement.Wdm_place.tracks then
        Some placement.Wdm_place.tracks.(w)
      else None

(* Physical route of a connection on its track: perpendicular jog from
   each endpoint onto the track coordinate, plus the longitudinal run. *)
let routed_length (t : Wdm.track) (c : Wdm.conn) =
  let a = c.Wdm.seg.Segment.a and b = c.Wdm.seg.Segment.b in
  match t.Wdm.orient with
  | Wdm.Horizontal ->
      Float.abs (a.Point.y -. t.Wdm.coord)
      +. Float.abs (b.Point.y -. t.Wdm.coord)
      +. Float.abs (a.Point.x -. b.Point.x)
  | Wdm.Vertical ->
      Float.abs (a.Point.x -. t.Wdm.coord)
      +. Float.abs (b.Point.x -. t.Wdm.coord)
      +. Float.abs (a.Point.y -. b.Point.y)

(* Physical waveguide crossings met by a connection: perpendicular tracks
   whose coordinate falls inside the connection's longitudinal run and
   whose own span covers this track's coordinate. *)
let crossings_on_run tracks (t : Wdm.track) (c : Wdm.conn) =
  let lo, hi = Wdm.conn_span c in
  Array.fold_left
    (fun acc (other : Wdm.track) ->
      if other.Wdm.orient <> t.Wdm.orient
         && other.Wdm.coord >= lo -. 1e-12
         && other.Wdm.coord <= hi +. 1e-12
         && other.Wdm.lo <= t.Wdm.coord +. 1e-12
         && other.Wdm.hi >= t.Wdm.coord -. 1e-12
      then acc + 1
      else acc)
    0 tracks

(* Total physical waveguide crossings of the design: every H/V track pair
   whose spans intersect transversally. *)
let total_crossings tracks =
  let n = Array.length tracks in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = tracks.(i) and b = tracks.(j) in
      if a.Wdm.orient <> b.Wdm.orient then begin
        let h, v = if a.Wdm.orient = Wdm.Horizontal then (a, b) else (b, a) in
        if v.Wdm.coord >= h.Wdm.lo && v.Wdm.coord <= h.Wdm.hi
           && h.Wdm.coord >= v.Wdm.lo && h.Wdm.coord <= v.Wdm.hi
        then incr count
      end
    done
  done;
  !count

let run params ctx choice placement (assignment : Assign.result) =
  let l_max = params.Params.l_max in
  let conns = placement.Wdm_place.conns in
  (* Rebuild the (net, segment endpoints) -> connection mapping that
     Wdm_place.connections_of_selection produced. *)
  let conn_of = Hashtbl.create (Array.length conns) in
  Array.iter
    (fun (c : Wdm.conn) ->
      Hashtbl.replace conn_of
        (c.Wdm.net, c.Wdm.seg.Segment.a, c.Wdm.seg.Segment.b)
        c)
    conns;
  let alpha = params.Params.alpha and beta = params.Params.beta in
  let nets = ref 0 and paths = ref 0 and violations = ref 0 in
  let worst = ref 0.0 in
  let detours = ref [] in
  let est_crossing = ref [] and phys_crossing = ref [] in
  Array.iteri
    (fun i j ->
      let cand = ctx.Selection.cands.(i).(j) in
      if Array.length cand.Candidate.opt_segments > 0 then begin
        incr nets;
        (* estimated crossing loss per path under the optimizer's model *)
        let losses = Selection.net_path_losses ctx choice i in
        Array.iteri
          (fun p (path : Candidate.path) ->
            incr paths;
            let est =
              losses.(p) -. path.Candidate.intrinsic_loss
            in
            est_crossing := Float.max 0.0 est :: !est_crossing;
            (* physical re-evaluation *)
            let chord_len =
              Array.fold_left (fun acc s -> acc +. Segment.length s) 0.0
                path.Candidate.segments
            in
            let split_part = path.Candidate.intrinsic_loss -. (alpha *. chord_len) in
            let routed = ref 0.0 and crossings = ref 0 in
            Array.iter
              (fun (s : Segment.t) ->
                let key = (cand.Candidate.hnet.Hypernet.id, s.Segment.a, s.Segment.b) in
                match Hashtbl.find_opt conn_of key with
                | None ->
                    (* unrouted segment (should not happen): fall back to
                       the chord itself *)
                    routed := !routed +. Segment.length s
                | Some conn -> (
                    match primary_track assignment placement conn.Wdm.id with
                    | None -> routed := !routed +. Segment.length s
                    | Some t ->
                        routed := !routed +. routed_length t conn;
                        crossings := !crossings + crossings_on_run assignment.Assign.tracks t conn))
              path.Candidate.segments;
            detours :=
              (if chord_len > 1e-12 then !routed /. chord_len else 1.0) :: !detours;
            let phys = beta *. float_of_int !crossings in
            phys_crossing := phys :: !phys_crossing;
            let loss = split_part +. (alpha *. !routed) +. phys in
            if loss > !worst then worst := loss;
            if loss > l_max +. 1e-9 then incr violations)
          cand.Candidate.paths
      end)
    choice;
  let mean l =
    match l with [] -> 0.0 | _ -> Operon_util.Stats.mean (Array.of_list l)
  in
  { nets_checked = !nets;
    paths_checked = !paths;
    worst_loss_db = !worst;
    violations = !violations;
    mean_detour_ratio = mean !detours;
    waveguide_crossings = total_crossings assignment.Assign.tracks;
    mean_estimated_crossing_db = mean !est_crossing;
    mean_physical_crossing_db = mean !phys_crossing }
