lib/core/baseline.ml: Array Bi1s Candidate Float Hypernet List Loss Operon_geom Operon_optical Operon_steiner Params Rsmt Segment Selection Signal Topology
