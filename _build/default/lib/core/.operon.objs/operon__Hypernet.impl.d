lib/core/hypernet.ml: Array Operon_geom Point Rect
