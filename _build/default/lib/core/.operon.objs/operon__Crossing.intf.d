lib/core/crossing.mli: Operon_geom Rect Segment
