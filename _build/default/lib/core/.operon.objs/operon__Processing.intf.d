lib/core/processing.mli: Hypernet Operon_optical Operon_util Params Prng Signal
