lib/core/candidate.ml: Array Float Hypernet List Loss Operon_geom Operon_optical Operon_steiner Power Printf Segment String Topology
