lib/core/hotspot.ml: Array Candidate Gridmap Hypernet Operon_geom Operon_optical Operon_steiner Params Printf Rsmt Segment Selection Signal Topology
