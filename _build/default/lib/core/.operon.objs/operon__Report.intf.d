lib/core/report.mli:
