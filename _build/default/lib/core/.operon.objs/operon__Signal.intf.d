lib/core/signal.mli: Operon_geom Point Rect
