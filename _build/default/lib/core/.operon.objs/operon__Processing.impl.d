lib/core/processing.ml: Agglom Array Hypernet Kmeans List Operon_cluster Operon_geom Operon_optical Params Point Signal
