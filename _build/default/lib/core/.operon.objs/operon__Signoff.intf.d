lib/core/signoff.mli: Assign Operon_optical Selection Wdm_place
