lib/core/ilp_select.ml: Array Candidate Crossing Float Hashtbl Ilp List Loss Lp Operon_geom Operon_optical Operon_solver Operon_util Params Point Rect Segment Selection Stdlib Timer
