lib/core/report.ml: Buffer List Printf Stdlib String
