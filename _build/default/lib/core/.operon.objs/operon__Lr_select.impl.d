lib/core/lr_select.ml: Array Candidate Float Hashtbl Operon_optical Operon_util Params Selection Timer
