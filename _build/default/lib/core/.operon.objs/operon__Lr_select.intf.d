lib/core/lr_select.mli: Selection
