lib/core/flow.ml: Array Assign Bi1s Codesign Crossing Hypernet Ilp_select List Lr_select Operon_optical Operon_steiner Processing Selection Signal Topology Wdm_place
